/**
 * @file
 * Tests for the serving autotuner (src/tune): seed determinism (same
 * seed -> same winning genome AND same TuningArtifact bytes, with
 * probes on or off — measured timings must never leak into the
 * search), the artifact's serialization round trip and error paths,
 * the predicted-vs-measured error report (computed, finite, bounded),
 * and the apply path: a checkpoint carrying the artifact auto-applies
 * through Session::fromCheckpoint and serve::Server::addTenant, and
 * the applied session still serves bit-identically. CMake re-runs
 * this binary under TWOINONE_THREADS=1/4 and TWOINONE_BACKEND=naive —
 * the tuner's virtual-time objective must not notice.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "common/clock.hh"
#include "nn/model_zoo.hh"
#include "optimizer/serving_space.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "tune/autotuner.hh"

namespace twoinone {
namespace {

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "twoinone_tune_" +
           std::to_string(::getpid()) + "_" + name + ".ckpt";
}

Network
makeTinyNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    return convNetTiny(cfg, rng);
}

SessionConfig
tunableConfig()
{
    SessionConfig cfg;
    cfg.serving.maxBatch = 16;
    cfg.serving.microBatch = 4;
    cfg.serving.seed = 77;
    cfg.serving.lazyPlanWarmup = true;
    cfg.inputShape = {3, 8, 8};
    return cfg;
}

tune::TuneConfig
quickBudget(bool probes)
{
    tune::TuneConfig tc;
    tc.seed = 1234;
    tc.population = 6;
    tc.cycles = 3;
    tc.measuredProbes = probes;
    tc.probeRows = 4;
    return tc;
}

/** Same seed, fresh sessions: the winning genome and the artifact
 * bytes reproduce exactly. Probes on vs off must not change either —
 * measured timings feed only the reports. */
TEST(Autotune, SeedDeterministicWinnerAndArtifactBytes)
{
    Network net = makeTinyNet(50);
    Rng cal_rng(7);
    Calibrator(net).calibrate(
        {Tensor::uniform({4, 3, 8, 8}, cal_rng, 0.0f, 1.0f)});

    Session a = Session::attach(net, tunableConfig());
    tune::TuneResult r1 = tune::autotune(a, quickBudget(true));
    ASSERT_TRUE(r1.found);

    Session b = Session::attach(net, tunableConfig());
    tune::TuneResult r2 = tune::autotune(b, quickBudget(true));
    ASSERT_TRUE(r2.found);
    EXPECT_EQ(r1.artifact.genome, r2.artifact.genome);
    EXPECT_EQ(r1.artifact.bytes(), r2.artifact.bytes());
    EXPECT_EQ(r1.bestCost, r2.bestCost);
    EXPECT_EQ(r1.evaluated, r2.evaluated);

    Session c = Session::attach(net, tunableConfig());
    tune::TuneResult r3 = tune::autotune(c, quickBudget(false));
    ASSERT_TRUE(r3.found);
    EXPECT_EQ(r1.artifact.genome, r3.artifact.genome);
    EXPECT_EQ(r1.artifact.bytes(), r3.artifact.bytes());

    // A different seed explores a different trajectory (coarse check:
    // the evaluation trace differs; the winner may coincide).
    tune::TuneConfig other = quickBudget(false);
    other.seed = 4321;
    Session d = Session::attach(net, tunableConfig());
    tune::TuneResult r4 = tune::autotune(d, other);
    ASSERT_TRUE(r4.found);
    EXPECT_EQ(r4.artifact.seed, other.seed);
}

/** The winner is a valid member of the search space and beats (or
 * ties) the seed configuration's own objective value. */
TEST(Autotune, WinnerIsValidAndNoWorseThanTheDefault)
{
    Network net = makeTinyNet(51);
    Session s = Session::attach(net, tunableConfig());
    tune::TuneResult r = tune::autotune(s, quickBudget(false));
    ASSERT_TRUE(r.found);

    ServingSearchSpace space(s.engine().set().bits());
    EXPECT_TRUE(space.valid(r.artifact.genome));
    ASSERT_FALSE(r.costHistory.empty());
    // Convergence trace is monotone non-increasing.
    for (size_t i = 1; i < r.costHistory.size(); ++i)
        EXPECT_LE(r.costHistory[i], r.costHistory[i - 1]) << i;
    EXPECT_GT(r.bestCost, 0.0);
    EXPECT_GE(r.evaluated, r.candidates.size());
}

/** Probes fill the falsifiability report: every finite candidate gets
 * a measured and a predicted per-row time, the error is the stated
 * formula, and the mean is bounded (the tiny test model is timing-
 * noisy, so the bound is an order-of-magnitude sanity rail, not a
 * precision claim). */
TEST(Autotune, PredictedVsMeasuredErrorComputedAndBounded)
{
    Network net = makeTinyNet(52);
    Session s = Session::attach(net, tunableConfig());
    tune::TuneResult r = tune::autotune(s, quickBudget(true));
    ASSERT_TRUE(r.found);

    size_t probed = 0;
    for (const tune::CandidateReport &c : r.candidates) {
        if (!std::isfinite(c.cost))
            continue;
        EXPECT_GT(c.measuredRowNs, 0.0) << c.genome.describe();
        EXPECT_GT(c.predictedRowNs, 0.0) << c.genome.describe();
        EXPECT_NEAR(c.errorPct,
                    std::abs(c.predictedRowNs - c.measuredRowNs) /
                        c.measuredRowNs * 100.0,
                    1e-9);
        ++probed;
    }
    EXPECT_GT(probed, 0u);
    EXPECT_TRUE(std::isfinite(r.meanErrorPct));
    EXPECT_GT(r.meanErrorPct, 0.0);
    EXPECT_LT(r.meanErrorPct, 400.0);

    // Probes off: the report stays empty, the mean stays zero.
    Session s2 = Session::attach(net, tunableConfig());
    tune::TuneResult r2 = tune::autotune(s2, quickBudget(false));
    EXPECT_EQ(r2.meanErrorPct, 0.0);
    for (const tune::CandidateReport &c : r2.candidates)
        EXPECT_EQ(c.measuredRowNs, 0.0);
}

/** Artifact serialization: bytes() -> fromBytes() is the identity;
 * truncated bytes and a future version throw CheckpointError. */
TEST(TuningArtifact, RoundTripAndErrorPaths)
{
    tune::TuningArtifact a;
    a.seed = 99;
    a.genome.maxBatch = 32;
    a.genome.microBatch = 8;
    a.genome.maxDelayUs = 250.0;
    a.genome.replicas = 2;
    a.genome.policy = 1;
    a.genome.drawBits = {4, 8, 16};
    a.genome.drawWeights = {3, 1, 2};
    a.predictedCost = 123.5f;

    std::vector<uint8_t> bytes = a.bytes();
    tune::TuningArtifact b = tune::TuningArtifact::fromBytes(bytes);
    EXPECT_EQ(a, b);
    EXPECT_EQ(b.genome.describe(), a.genome.describe());

    std::vector<uint8_t> cut(bytes.begin(),
                             bytes.begin() + bytes.size() / 2);
    EXPECT_THROW(tune::TuningArtifact::fromBytes(cut),
                 io::CheckpointError);

    std::vector<uint8_t> vfuture = bytes;
    vfuture[0] = 0xFF; // version little-endian low byte
    EXPECT_THROW(tune::TuningArtifact::fromBytes(vfuture),
                 io::CheckpointError);
}

/** The apply path end to end: tune, embed the artifact, save, reload
 * through Session::fromCheckpoint — the reloaded session carries the
 * winner's serving config, still serves bit-identically, and the
 * async Server adopts the server-scoped knobs from its artifact. A
 * reload with applyTuning=false keeps the caller's config but still
 * exposes the artifact. */
TEST(Autotune, CheckpointRoundTripAutoAppliesTheWinner)
{
    Network net = makeTinyNet(53);
    Rng x_rng(9);
    Tensor x = Tensor::uniform({4, 3, 8, 8}, x_rng, 0.0f, 1.0f);
    Calibrator(net).calibrate({x});

    std::string path = tmpPath("apply");
    tune::TuneResult r;
    {
        Session s = Session::attach(net, tunableConfig());
        r = tune::autotune(s, quickBudget(false));
        ASSERT_TRUE(r.found);
        s.setTuningArtifact(r.artifact);
        s.save(path); // default save keeps the embedded artifact
    }
    const ServingGenome &g = r.artifact.genome;

    SessionConfig lc;
    lc.inputShape = {3, 8, 8};
    Session loaded = Session::fromCheckpoint(path, lc);
    ASSERT_NE(loaded.tuningArtifact(), nullptr);
    EXPECT_EQ(*loaded.tuningArtifact(), r.artifact);
    EXPECT_EQ(loaded.config().serving.maxBatch, g.maxBatch);
    EXPECT_EQ(loaded.config().serving.microBatch, g.microBatch);
    EXPECT_EQ(loaded.config().serving.replicas, g.replicas);
    EXPECT_EQ(loaded.config().serving.drawBits, g.drawBits);

    // Bit-identity survives the applied config: same logits as the
    // source engine at every precision the winner draws from.
    RpsEngine ref(net);
    for (int bits : g.drawBits) {
        loaded.switchPrecision(bits);
        Tensor got = loaded.forwardQuantized(x);
        Tensor want = ref.forwardQuantizedAt(bits, x);
        ASSERT_EQ(got.shape(), want.shape());
        for (size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(got[i], want[i]) << "bits=" << bits;
    }

    // The async Server adopts max-delay + policy from the artifact.
    {
        ManualClock clock;
        serve::ServerConfig sc;
        sc.clock = &clock;
        sc.startPaused = true;
        serve::Server server(sc);
        server.addTenant(loaded);
        EXPECT_EQ(server.config().maxBatchDelayUs, g.maxDelayUs);
        EXPECT_EQ(server.config().policy,
                  g.policy == 1
                      ? serve::SchedulingPolicy::EarliestDeadlineFirst
                      : serve::SchedulingPolicy::RoundRobin);
        server.stop();
    }

    // Opt-out reload: the artifact is exposed but not applied.
    SessionConfig keep = tunableConfig();
    keep.applyTuning = false;
    Session raw = Session::fromCheckpoint(path, keep);
    ASSERT_NE(raw.tuningArtifact(), nullptr);
    EXPECT_EQ(raw.config().serving.maxBatch, 16);
    EXPECT_EQ(raw.config().serving.microBatch, 4);
    std::remove(path.c_str());
}

/** applyGenome maps exactly the session-scoped knobs. */
TEST(Autotune, ApplyGenomeMapsSessionScopedKnobs)
{
    ServingGenome g;
    g.maxBatch = 32;
    g.microBatch = 2;
    g.maxDelayUs = 500.0;
    g.replicas = 4;
    g.policy = 1;
    g.drawBits = {5, 12};
    g.drawWeights = {2, 3};

    serve::ServeConfig cfg;
    tune::applyGenome(g, cfg);
    EXPECT_EQ(cfg.maxBatch, 32);
    EXPECT_EQ(cfg.microBatch, 2);
    EXPECT_EQ(cfg.replicas, 4);
    EXPECT_EQ(cfg.drawBits, g.drawBits);
    ASSERT_EQ(cfg.drawWeights.size(), 2u);
    EXPECT_FLOAT_EQ(cfg.drawWeights[0], 2.0f);
    EXPECT_FLOAT_EQ(cfg.drawWeights[1], 3.0f);
}

/** The search space's operators stay closed over valid genomes (the
 * evolutionary loop never needs repair beyond the space's own). */
TEST(ServingSpace, OperatorsStayClosedOverValidGenomes)
{
    ServingSearchSpace space({4, 5, 6, 8, 12, 16}, 128);
    Rng rng(2021);
    ServingGenome a = space.random(rng);
    ServingGenome b = space.random(rng);
    EXPECT_TRUE(space.valid(a));
    EXPECT_TRUE(space.valid(b));
    for (int i = 0; i < 200; ++i) {
        ServingGenome c = space.crossover(a, b, rng);
        ServingGenome m = space.mutate(c, rng);
        ASSERT_TRUE(space.valid(c)) << c.describe();
        ASSERT_TRUE(space.valid(m)) << m.describe();
        a = c;
        b = m;
    }
}

} // namespace
} // namespace twoinone
