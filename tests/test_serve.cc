/**
 * @file
 * Tests for the compiled execution plans and the batched RPS serving
 * runtime (ISSUE 4): plan forwards must be bit-identical to the
 * legacy per-layer loops at every candidate precision (cached,
 * uncached, calibrated, full precision), allocate zero tensors after
 * compile, reuse the arena safely across batch sizes, and the
 * serving runtime must sample precisions deterministically from its
 * seed with outputs independent of the thread count (CMake re-runs
 * this binary under TWOINONE_THREADS=1/4 and TWOINONE_BACKEND=naive).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/thread_pool.hh"
#include "nn/model_zoo.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "serve/runtime.hh"

namespace twoinone {
namespace {

Network
makeResidualNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 8;
    return preActResNetMini(cfg, rng);
}

Network
makeTinyNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    return convNetTiny(cfg, rng);
}

Tensor
makeInput(uint64_t seed, int batch = 4)
{
    Rng rng(seed);
    return Tensor::uniform({batch, 3, 8, 8}, rng, 0.0f, 1.0f);
}

void
expectBitIdentical(const Tensor &a, const Tensor &b, int bits)
{
    ASSERT_EQ(a.shape(), b.shape()) << "bits=" << bits;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "bits=" << bits << " i=" << i;
}

/** Float-mode plans reproduce the legacy eval forward bit-for-bit at
 * every candidate (cached and uncached) and at full precision. */
TEST(ExecutionPlan, FloatBitIdenticalToLegacyAllPrecisions)
{
    Network net = makeResidualNet(42);
    Tensor x = makeInput(7);
    RpsEngine engine(net);
    std::unique_ptr<serve::ExecutionPlan> plan = net.compile(
        net.precisionSet(), serve::PlanMode::Float, x.shape());

    for (int bits : net.precisionSet().bits()) {
        // Cached path (engine-installed weights).
        engine.setPrecision(bits);
        Tensor y_ref = net.forward(x, /*train=*/false);
        expectBitIdentical(y_ref, plan->run(x), bits);

        // Uncached path (per-forward re-quantization).
        engine.detach();
        net.setPrecision(bits);
        Tensor y_unc = net.forward(x, /*train=*/false);
        expectBitIdentical(y_unc, plan->run(x), bits);
    }
    engine.setPrecision(0);
    Tensor y_fp = net.forward(x, /*train=*/false);
    expectBitIdentical(y_fp, plan->run(x), 0);
}

/** Quantized-mode plans reproduce the legacy integer forward
 * bit-for-bit — dynamic activation ranges and calibrated static
 * scales, every candidate, plus the full-precision passthrough. */
TEST(ExecutionPlan, QuantizedBitIdenticalToLegacyAllPrecisions)
{
    Network net = makeResidualNet(43);
    Tensor x = makeInput(8);
    RpsEngine engine(net);
    std::unique_ptr<serve::ExecutionPlan> plan = net.compile(
        net.precisionSet(), serve::PlanMode::Quantized, x.shape());

    // Dynamic ranges first.
    for (int bits : net.precisionSet().bits()) {
        engine.setPrecision(bits);
        Tensor y_ref = net.forwardQuantized(x);
        expectBitIdentical(y_ref, plan->run(x), bits);
    }

    // Calibrated static scales.
    Calibrator cal(net);
    cal.calibrate({x});
    for (int bits : net.precisionSet().bits()) {
        engine.setPrecision(bits);
        Tensor y_ref = net.forwardQuantized(x);
        expectBitIdentical(y_ref, plan->run(x), bits);
    }

    engine.setPrecision(0);
    Tensor y_fp = net.forwardQuantized(x);
    expectBitIdentical(y_fp, plan->run(x), 0);
}

/** Same property on the Linear-headed tiny net (covers Linear and
 * GlobalAvgPool emitters). */
TEST(ExecutionPlan, QuantizedBitIdenticalTinyNet)
{
    Network net = makeTinyNet(44);
    Tensor x = makeInput(9);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);
    std::unique_ptr<serve::ExecutionPlan> plan = net.compile(
        net.precisionSet(), serve::PlanMode::Quantized, x.shape());

    for (int bits : net.precisionSet().bits()) {
        engine.setPrecision(bits);
        Tensor y_ref = net.forwardQuantized(x);
        expectBitIdentical(y_ref, plan->run(x), bits);
    }
}

/** The arena contract: once compiled (and with the engine cache
 * installed), plan forwards perform zero tensor allocations. */
TEST(ExecutionPlan, ZeroTensorAllocationsAfterCompile)
{
    Network net = makeResidualNet(45);
    Tensor x = makeInput(10);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);
    std::unique_ptr<serve::ExecutionPlan> qplan = net.compile(
        net.precisionSet(), serve::PlanMode::Quantized, x.shape());
    std::unique_ptr<serve::ExecutionPlan> fplan = net.compile(
        net.precisionSet(), serve::PlanMode::Float, x.shape());

    // One pass over every precision so engine-side float views and
    // plan buffers are at their high-water marks.
    for (int bits : net.precisionSet().bits()) {
        engine.setPrecision(bits);
        qplan->run(x);
        fplan->run(x);
    }

    uint64_t before = Tensor::allocationCount();
    for (int rep = 0; rep < 3; ++rep) {
        for (int bits : net.precisionSet().bits()) {
            engine.setPrecision(bits);
            qplan->run(x);
            fplan->run(x);
        }
    }
    EXPECT_EQ(Tensor::allocationCount(), before)
        << "plan forwards allocated tensors after warm-up";
}

/** Arena reuse across batch sizes: smaller batches run correctly in
 * the max-sized arena, and returning to the larger batch is still
 * allocation-free and bit-identical. */
TEST(ExecutionPlan, ArenaReuseAcrossBatchSizes)
{
    Network net = makeTinyNet(46);
    Tensor x4 = makeInput(11, 4);
    Tensor x2 = x4.slice0(0, 2);
    RpsEngine engine(net);
    std::unique_ptr<serve::ExecutionPlan> plan = net.compile(
        net.precisionSet(), serve::PlanMode::Quantized, x4.shape());

    engine.setPrecision(8);
    Tensor ref4 = net.forwardQuantized(x4);
    Tensor ref2 = net.forwardQuantized(x2);

    expectBitIdentical(ref4, plan->run(x4), 8);
    expectBitIdentical(ref2, plan->run(x2), 8);
    uint64_t before = Tensor::allocationCount();
    expectBitIdentical(ref4, plan->run(x4), 8);
    expectBitIdentical(ref2, plan->run(x2), 8);
    EXPECT_EQ(Tensor::allocationCount(), before);

    // runRows serves row windows of a larger batch bit-identically.
    expectBitIdentical(ref2, plan->runRows(x4, 0, 2), 8);
}

/** Serial and pooled executions of the same plan agree bit-for-bit
 * (the in-process arm of the TWOINONE_THREADS matrix). */
TEST(ExecutionPlan, DeterministicAcrossThreadCounts)
{
    Network net = makeResidualNet(47);
    Tensor x = makeInput(12);
    RpsEngine engine(net);
    std::unique_ptr<serve::ExecutionPlan> plan = net.compile(
        net.precisionSet(), serve::PlanMode::Quantized, x.shape());

    for (int bits : net.precisionSet().bits()) {
        engine.setPrecision(bits);
        Tensor serial;
        {
            ThreadPool::ScopedSerial guard;
            serial = plan->run(x);
        }
        expectBitIdentical(serial, plan->run(x), bits);
    }
}

/** Network entry points route through the internal plans when
 * enabled, with identical predictions either way. */
TEST(ExecutionPlan, EntryPointsRouteThroughPlans)
{
    Network net = makeTinyNet(48);
    Tensor x = makeInput(13);
    RpsEngine engine(net);
    engine.setPrecision(6);

    std::vector<int> legacy_f = net.predict(x);
    std::vector<int> legacy_q = net.predictQuantized(x);
    Tensor legacy_fq = net.forwardQuantized(x);

    net.enablePlanExecution(x.shape());
    EXPECT_TRUE(net.planExecutionEnabled());
    EXPECT_EQ(net.predict(x), legacy_f);
    EXPECT_EQ(net.predictQuantized(x), legacy_q);
    expectBitIdentical(legacy_fq, net.forwardQuantized(x), 6);

    // Inputs outside the compiled shape fall back to the legacy loop.
    Tensor big = makeInput(14, 8);
    std::vector<int> pred_big = net.predict(big);
    net.disablePlanExecution();
    EXPECT_FALSE(net.planExecutionEnabled());
    EXPECT_EQ(net.predict(big), pred_big);
}

/** im2col gather tables are geometry-pure and come from a shared
 * registry: plan replicas of the same geometry hold pointers to the
 * SAME table instead of private copies (PR 4 follow-up — shrinks the
 * per-worker serving arena). */
TEST(ExecutionPlan, GatherTablesSharedAcrossReplicas)
{
    Network net = makeResidualNet(52);
    Tensor x = makeInput(15);
    RpsEngine engine(net);
    std::unique_ptr<serve::ExecutionPlan> a = net.compile(
        net.precisionSet(), serve::PlanMode::Quantized, x.shape());
    std::unique_ptr<serve::ExecutionPlan> b = net.compile(
        net.precisionSet(), serve::PlanMode::Quantized, x.shape());

    // Run both replicas at a quantized precision so every conv step
    // has touched its gather table.
    engine.setPrecision(8);
    a->run(x);
    b->run(x);

    auto tables = [](const serve::ExecutionPlan &p) {
        std::vector<const void *> out;
        for (size_t i = 0; i < p.numScratch(); ++i) {
            const IntGemmScratch &ig =
                p.scratchAt(static_cast<int>(i)).ig;
            if (ig.gather)
                out.push_back(ig.gather.get());
        }
        return out;
    };
    std::vector<const void *> ta = tables(*a);
    std::vector<const void *> tb = tables(*b);
    ASSERT_FALSE(ta.empty()) << "no conv step built a gather table";
    ASSERT_EQ(ta.size(), tb.size());
    // Same geometry, same scratch order: replica B's conv steps must
    // point at replica A's tables, not private copies.
    EXPECT_EQ(ta, tb);
}

/** Precision sampling in the serving runtime is a pure function of
 * the seed, and the served logits are bit-identical run to run. */
TEST(ServingRuntime, DeterministicPrecisionSampling)
{
    Network net = makeTinyNet(49);
    RpsEngine engine(net);
    serve::ServeConfig cfg;
    cfg.maxBatch = 8;
    cfg.microBatch = 4;
    cfg.seed = 1234;

    auto run_once = [&](bool serial) {
        serve::ServingRuntime srv(net, engine, {3, 8, 8}, cfg);
        Rng req_rng(5);
        for (int i = 0; i < 6; ++i)
            srv.submit(Tensor::uniform({4, 3, 8, 8}, req_rng, 0.0f,
                                       1.0f));
        if (serial) {
            ThreadPool::ScopedSerial guard;
            srv.drain();
        } else {
            srv.drain();
        }
        std::pair<std::vector<int>, std::vector<Tensor>> out;
        out.first = srv.precisionTrace();
        for (size_t i = 0; i < 6; ++i)
            out.second.push_back(srv.result(i));
        return out;
    };

    auto a = run_once(false);
    auto b = run_once(false);
    auto c = run_once(true); // serial drain: same results, same trace

    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.first, c.first);
    ASSERT_FALSE(a.first.empty());
    for (int bits : a.first)
        EXPECT_TRUE(engine.set().contains(bits));
    for (size_t i = 0; i < a.second.size(); ++i) {
        expectBitIdentical(a.second[i], b.second[i], a.first[0]);
        expectBitIdentical(a.second[i], c.second[i], a.first[0]);
    }
}

/** Served logits equal a direct engine forward at the precision the
 * runtime sampled for that batch. Calibrated static scales make the
 * result independent of the micro-batch sharding (dynamic ranges are
 * per-shard by construction — see serve/runtime.hh). */
TEST(ServingRuntime, ResultsMatchEngineForward)
{
    Network net = makeTinyNet(50);
    {
        Rng cal_rng(60);
        Calibrator cal(net);
        cal.calibrate(
            {Tensor::uniform({8, 3, 8, 8}, cal_rng, 0.0f, 1.0f)});
    }
    RpsEngine engine(net);
    serve::ServeConfig cfg;
    cfg.maxBatch = 4; // one request per serving batch
    cfg.microBatch = 2;
    cfg.seed = 99;
    serve::ServingRuntime srv(net, engine, {3, 8, 8}, cfg);

    Rng req_rng(6);
    std::vector<Tensor> xs;
    for (int i = 0; i < 5; ++i) {
        xs.push_back(Tensor::uniform({4, 3, 8, 8}, req_rng, 0.0f, 1.0f));
        srv.submit(xs.back());
    }
    srv.drain();

    const std::vector<int> &trace = srv.precisionTrace();
    ASSERT_EQ(trace.size(), xs.size()); // maxBatch == request rows
    for (size_t i = 0; i < xs.size(); ++i) {
        Tensor y_ref = engine.forwardQuantizedAt(trace[i], xs[i]);
        expectBitIdentical(y_ref, srv.result(i), trace[i]);
    }

    serve::ServeStats st = srv.stats();
    EXPECT_EQ(st.requests, xs.size());
    EXPECT_EQ(st.rows, 4 * xs.size());
    EXPECT_EQ(st.batches, xs.size());
    EXPECT_GT(st.qps, 0.0);
    EXPECT_LE(st.p50Us, st.p99Us);

    // Long-lived loops release served requests; later submissions
    // keep working and stats keep accumulating.
    srv.clearServed();
    size_t id = srv.submit(xs[0]);
    srv.drain();
    Tensor y_ref = engine.forwardQuantizedAt(srv.precisionTrace().back(),
                                             xs[0]);
    expectBitIdentical(y_ref, srv.result(id),
                       srv.precisionTrace().back());
    EXPECT_EQ(srv.stats().requests, xs.size() + 1);
}

/** Malformed submissions — wrong rank, wrong image shape, empty,
 * oversized — are rejected with ServeError, counted in
 * ServeStats::rejected, and leave the runtime serving healthy
 * traffic bit-identically to an undisturbed run. */
TEST(ServingRuntime, MalformedSubmissionsRejectedWithoutDisruption)
{
    Network net = makeTinyNet(51);
    RpsEngine engine(net);
    serve::ServeConfig cfg;
    cfg.maxBatch = 8;
    cfg.microBatch = 4;
    cfg.seed = 321;

    Rng req_rng(7);
    std::vector<Tensor> good;
    for (int i = 0; i < 4; ++i)
        good.push_back(Tensor::uniform({4, 3, 8, 8}, req_rng, 0.0f,
                                       1.0f));

    // Reference: the same healthy traffic with no garbage mixed in.
    serve::ServingRuntime ref(net, engine, {3, 8, 8}, cfg);
    for (const Tensor &x : good)
        ref.submit(x);
    ref.drain();

    serve::ServingRuntime srv(net, engine, {3, 8, 8}, cfg);
    Rng junk_rng(8);
    std::vector<size_t> ids;
    ids.push_back(srv.submit(good[0]));
    // Wrong rank: 2-d tensor where [N, C, H, W] is expected.
    EXPECT_THROW(srv.submit(Tensor::uniform({4, 9}, junk_rng, 0.0f,
                                            1.0f)),
                 serve::ServeError);
    ids.push_back(srv.submit(good[1]));
    // Wrong image shape: trailing dims disagree with the runtime's.
    EXPECT_THROW(srv.submit(Tensor::uniform({4, 3, 8, 9}, junk_rng,
                                            0.0f, 1.0f)),
                 serve::ServeError);
    // Oversized: more rows than the serving-batch capacity.
    EXPECT_THROW(srv.submit(Tensor::uniform({cfg.maxBatch + 1, 3, 8, 8},
                                            junk_rng, 0.0f, 1.0f)),
                 serve::ServeError);
    ids.push_back(srv.submit(good[2]));
    ids.push_back(srv.submit(good[3]));
    srv.drain();

    // The rejection messages name the offending dimension.
    try {
        srv.submit(Tensor::uniform({cfg.maxBatch + 1, 3, 8, 8},
                                   junk_rng, 0.0f, 1.0f));
        FAIL() << "oversized request accepted";
    } catch (const serve::ServeError &e) {
        EXPECT_NE(std::string(e.what()).find("batch"),
                  std::string::npos);
    }

    serve::ServeStats st = srv.stats();
    EXPECT_EQ(st.rejected, 4u);
    EXPECT_EQ(st.requests, good.size());
    EXPECT_EQ(st.rows, 4 * good.size());

    // Healthy traffic was untouched by the rejections: same sampled
    // precisions, bit-identical results as the undisturbed run.
    EXPECT_EQ(srv.precisionTrace(), ref.precisionTrace());
    for (size_t i = 0; i < good.size(); ++i)
        expectBitIdentical(ref.result(i), srv.result(ids[i]),
                           srv.precisionTrace().front());
    EXPECT_EQ(ref.stats().rejected, 0u);
}

/** Reading a result slot after clearServed() released it is a
 * use-after-free in waiting: the runtime panics (TWOINONE_ASSERT →
 * abort) instead of returning a dangling reference. */
TEST(ServingRuntimeDeathTest, ResultAfterClearServedPanics)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    Network net = makeTinyNet(52);
    RpsEngine engine(net);
    serve::ServeConfig cfg;
    cfg.maxBatch = 8;
    cfg.microBatch = 4;
    cfg.seed = 77;
    serve::ServingRuntime srv(net, engine, {3, 8, 8}, cfg);

    Rng req_rng(9);
    size_t id =
        srv.submit(Tensor::uniform({4, 3, 8, 8}, req_rng, 0.0f, 1.0f));
    srv.drain();
    (void)srv.result(id); // valid while served and not yet released
    srv.clearServed();
    EXPECT_DEATH((void)srv.result(id),
                 "released by clearServed");
}

} // namespace
} // namespace twoinone
