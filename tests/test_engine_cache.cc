/**
 * @file
 * Tests for the byte-budgeted engine cache and the streaming artifact
 * path (ISSUE 10): the cacheBytes() <= budget invariant under switch
 * churn, pinned precisions surviving eviction, evict -> rehydrate /
 * evict -> rebuild forward bit-identity at every rps4to16 candidate,
 * lazy per-(layer, precision) hydration from the section directory,
 * and the corrupt-cell rebuild fallback. CMake re-runs this binary
 * under TWOINONE_THREADS=1/4 and TWOINONE_BACKEND=naive; the tsan CI
 * job runs it under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "io/checkpoint.hh"
#include "io/stream.hh"
#include "nn/model_zoo.hh"
#include "quant/rps_engine.hh"
#include "serve/session.hh"

namespace twoinone {
namespace {

std::string
tmpPath(const std::string &name)
{
    // PID-qualified: the thread/backend matrix may run variants of
    // this binary in parallel.
    return testing::TempDir() + "twoinone_cache_" +
           std::to_string(::getpid()) + "_" + name + ".ckpt";
}

Network
makeResidualNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 8;
    return preActResNetMini(cfg, rng);
}

Tensor
makeInput(uint64_t seed)
{
    Rng rng(seed);
    return Tensor::uniform({4, 3, 8, 8}, rng, 0.0f, 1.0f);
}

void
expectBitIdentical(const Tensor &a, const Tensor &b, int bits)
{
    ASSERT_EQ(a.shape(), b.shape()) << "bits=" << bits;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "bits=" << bits << " i=" << i;
}

/** Populate every cached column (codes, float views, packs). */
void
populate(RpsEngine &eng)
{
    for (int bits : eng.set().bits())
        eng.setPrecision(bits);
}

/** The invariant: once a budget is set, cacheBytes() never exceeds it
 * — not after the initial trim, not at any point of a random switch
 * churn. */
TEST(EngineCache, BudgetRespectedUnderChurn)
{
    Network net = makeResidualNet(42);
    RpsEngine eng(net);
    populate(eng);
    size_t full = eng.cacheBytes();
    ASSERT_GT(full, 0u);

    EngineCacheConfig cfg;
    cfg.budgetBytes = full * 2 / 5; // ~40%
    eng.setCacheConfig(cfg);
    EXPECT_LE(eng.cacheBytes(), cfg.budgetBytes);
    EXPECT_GT(eng.cacheEvictions(), 0u);

    Rng rng(99);
    for (int i = 0; i < 60; ++i) {
        eng.setPrecision(eng.samplePrecision(rng));
        ASSERT_LE(eng.cacheBytes(), cfg.budgetBytes) << "switch " << i;
    }

    // A default config restores unlimited caching.
    eng.setCacheConfig(EngineCacheConfig());
    populate(eng);
    EXPECT_GT(eng.cacheBytes(), cfg.budgetBytes);
}

/** The acceptance criterion: with the budget at ~40% of the full
 * cache, a full rps4to16 switch sweep (ascending, descending, and
 * random order — forcing evict -> rebuild round trips) stays
 * bit-identical to the unbudgeted engine on both datapaths. */
TEST(EngineCache, BudgetedSweepBitIdenticalToUnbudgeted)
{
    Network net_ref = makeResidualNet(43);
    Network net_bud = makeResidualNet(43);
    Tensor x = makeInput(7);
    RpsEngine ref(net_ref);
    RpsEngine bud(net_bud);
    populate(bud);

    EngineCacheConfig cfg;
    cfg.budgetBytes = bud.cacheBytes() * 2 / 5;
    bud.setCacheConfig(cfg);

    std::vector<int> order = bud.set().bits();
    std::vector<int> sweep(order);
    sweep.insert(sweep.end(), order.rbegin(), order.rend());
    Rng rng(17);
    for (int i = 0; i < 12; ++i)
        sweep.push_back(bud.samplePrecision(rng));

    for (int bits : sweep) {
        expectBitIdentical(ref.forwardAt(bits, x),
                           bud.forwardAt(bits, x), bits);
        expectBitIdentical(ref.forwardQuantizedAt(bits, x),
                           bud.forwardQuantizedAt(bits, x), bits);
        ASSERT_LE(bud.cacheBytes(), cfg.budgetBytes);
    }
    EXPECT_GT(bud.cacheEvictions(), 0u);
    EXPECT_GT(bud.columnRebuilds(), 0u); // evicted cells came back
}

/** Pinned precisions ride out any churn: their cells stay resident
 * while unpinned columns are evicted around them. */
TEST(EngineCache, PinnedPrecisionNeverEvicted)
{
    Network net = makeResidualNet(44);
    RpsEngine eng(net);
    populate(eng);

    int pinned = eng.set().bits().front();
    EngineCacheConfig cfg;
    cfg.budgetBytes = eng.cacheBytes() / 3;
    cfg.pinnedBits = {pinned};
    eng.setCacheConfig(cfg);

    Rng rng(5);
    for (int i = 0; i < 40; ++i) {
        eng.setPrecision(eng.samplePrecision(rng));
        for (size_t l = 0; l < eng.numQuantLayers(); ++l)
            ASSERT_TRUE(eng.cellResident(l, pinned))
                << "layer " << l << " after switch " << i;
    }
    EXPECT_GT(eng.cacheEvictions(), 0u);
}

/** An infeasible budget (smaller than installed + pinned) stops at
 * the evictable floor instead of breaking serving: forwards stay
 * bit-identical even though the ceiling cannot be met. */
TEST(EngineCache, InfeasibleBudgetKeepsServing)
{
    Network net_ref = makeResidualNet(45);
    Network net_bud = makeResidualNet(45);
    Tensor x = makeInput(8);
    RpsEngine ref(net_ref);
    RpsEngine bud(net_bud);

    EngineCacheConfig cfg;
    cfg.budgetBytes = 1;
    bud.setCacheConfig(cfg);
    for (int bits : bud.set().bits()) {
        expectBitIdentical(ref.forwardAt(bits, x),
                           bud.forwardAt(bits, x), bits);
        // The installed column itself is never evictable, so the
        // cache floor sits above this absurd budget — by design.
        EXPECT_GT(bud.cacheBytes(), cfg.budgetBytes);
    }
    EXPECT_GT(bud.cacheEvictions(), 0u);
}

/** Streaming warm start: only the directory + eager sections are read
 * at open; each (layer, precision) cell hydrates on first install
 * (with its pack — zero rebuilds, zero pack builds), and untouched
 * columns never leave the disk. */
TEST(EngineCache, StreamingWarmStartHydratesLazily)
{
    Network net = makeResidualNet(46);
    Tensor x = makeInput(9);
    RpsEngine engine(net);
    populate(engine);

    std::string path = tmpPath("stream");
    checkpoint::SaveOptions opts;
    opts.includeEnginePacks = true;
    checkpoint::save(path, net, &engine, opts);

    auto sckpt = std::make_shared<checkpoint::StreamingCheckpoint>(path);
    ASSERT_TRUE(sckpt->hasEngineCache());
    // The open hydrated spec + state, not the cells: most of the
    // artifact (the cache payload) is still unread.
    size_t eager_bytes = sckpt->reader().bytesRead();
    EXPECT_LT(eager_bytes, sckpt->reader().fileSize() / 2);

    Network net2 = sckpt->instantiate();
    std::unique_ptr<RpsEngine> eng2 =
        checkpoint::StreamingCheckpoint::restoreEngine(sckpt, net2);
    ASSERT_NE(eng2, nullptr);
    EXPECT_EQ(eng2->cellHydrations(), 0u); // nothing touched yet

    int first = eng2->set().bits().front();
    expectBitIdentical(engine.forwardAt(first, x),
                       eng2->forwardAt(first, x), first);
    // One column hydrated — no quantization pass, no pack pass, and
    // the other columns' sections are still on disk.
    EXPECT_EQ(eng2->cellHydrations(), eng2->numQuantLayers());
    EXPECT_EQ(eng2->columnRebuilds(), 0u);
    EXPECT_EQ(eng2->packBuilds(), 0u);
    EXPECT_LT(sckpt->reader().bytesRead(), sckpt->reader().fileSize());

    for (int bits : eng2->set().bits()) {
        expectBitIdentical(engine.forwardAt(bits, x),
                           eng2->forwardAt(bits, x), bits);
        expectBitIdentical(engine.forwardQuantizedAt(bits, x),
                           eng2->forwardQuantizedAt(bits, x), bits);
    }
    EXPECT_EQ(eng2->columnRebuilds(), 0u);
    EXPECT_EQ(eng2->packBuilds(), 0u);
    std::remove(path.c_str());
}

/** Evict -> rehydrate bit-identity: a streaming engine under a 40%
 * budget keeps serving every candidate bit-identically, refilling
 * evicted cells from the artifact instead of re-quantizing. */
TEST(EngineCache, EvictedCellsRehydrateBitIdentically)
{
    Network net = makeResidualNet(47);
    Tensor x = makeInput(10);
    RpsEngine engine(net);
    populate(engine);
    size_t full = engine.cacheBytes();

    std::string path = tmpPath("rehydrate");
    checkpoint::SaveOptions opts;
    opts.includeEnginePacks = true;
    checkpoint::save(path, net, &engine, opts);

    auto sckpt = std::make_shared<checkpoint::StreamingCheckpoint>(path);
    Network net2 = sckpt->instantiate();
    std::unique_ptr<RpsEngine> eng2 =
        checkpoint::StreamingCheckpoint::restoreEngine(sckpt, net2);
    ASSERT_NE(eng2, nullptr);
    EngineCacheConfig cfg;
    cfg.budgetBytes = full * 2 / 5;
    eng2->setCacheConfig(cfg);

    std::vector<int> bits = eng2->set().bits();
    std::vector<int> sweep(bits);
    sweep.insert(sweep.end(), bits.rbegin(), bits.rend());
    sweep.insert(sweep.end(), bits.begin(), bits.end());
    for (int b : sweep) {
        expectBitIdentical(engine.forwardAt(b, x),
                           eng2->forwardAt(b, x), b);
        ASSERT_LE(eng2->cacheBytes(), cfg.budgetBytes);
    }
    EXPECT_GT(eng2->cacheEvictions(), 0u);
    // Every refill came from the artifact: more hydrations than
    // cells, and still not one quantization pass.
    EXPECT_GT(eng2->cellHydrations(),
              eng2->numQuantLayers() * bits.size());
    EXPECT_EQ(eng2->columnRebuilds(), 0u);
    std::remove(path.c_str());
}

/** A corrupted cell section is caught by its checksum at hydration
 * and falls back to re-quantizing from the masters — bit-identical,
 * serving uninterrupted. */
TEST(EngineCache, CorruptCellHydrationFallsBackToRebuild)
{
    Network net = makeResidualNet(48);
    Tensor x = makeInput(11);
    RpsEngine engine(net);
    populate(engine);

    std::string path = tmpPath("corrupt");
    checkpoint::save(path, net, &engine);

    // Flip one byte inside the first CELL payload: the directory
    // still verifies, so the damage surfaces exactly at that cell's
    // hydration.
    uint64_t off = 0;
    int bad_bits = 0;
    {
        io::SectionReader sr(path);
        const io::SectionInfo *cell = sr.find("CELL");
        ASSERT_NE(cell, nullptr);
        off = cell->offset + cell->size / 2;
        bad_bits = cell->b;
    }
    {
        std::fstream f(path, std::ios::in | std::ios::out |
                                 std::ios::binary);
        f.seekg(static_cast<std::streamoff>(off));
        char c = 0;
        f.get(c);
        f.seekp(static_cast<std::streamoff>(off));
        f.put(static_cast<char>(c ^ 0x5a));
    }

    auto sckpt = std::make_shared<checkpoint::StreamingCheckpoint>(path);
    Network net2 = sckpt->instantiate();
    std::unique_ptr<RpsEngine> eng2 =
        checkpoint::StreamingCheckpoint::restoreEngine(sckpt, net2);
    ASSERT_NE(eng2, nullptr);

    expectBitIdentical(engine.forwardAt(bad_bits, x),
                       eng2->forwardAt(bad_bits, x), bad_bits);
    // Exactly the damaged cell rebuilt; its healthy column-mates
    // hydrated.
    EXPECT_EQ(eng2->columnRebuilds(), 1u);
    EXPECT_EQ(eng2->cellHydrations(), eng2->numQuantLayers() - 1);
    std::remove(path.c_str());
}

/** SessionConfig pass-through: streamArtifact + cacheBudgetBytes +
 * pinnedBits reach the session-owned engine, and serving matches the
 * eager unbudgeted session bit for bit. */
TEST(SessionCache, StreamingBudgetPassThrough)
{
    Network net = makeResidualNet(49);
    Tensor x = makeInput(12);
    RpsEngine engine(net);
    populate(engine);
    size_t full = engine.cacheBytes();

    std::string path = tmpPath("session");
    checkpoint::SaveOptions opts;
    opts.includeEnginePacks = true;
    checkpoint::save(path, net, &engine, opts);

    SessionConfig cfg;
    cfg.streamArtifact = true;
    cfg.cacheBudgetBytes = full * 2 / 5;
    cfg.pinnedBits = {net.precisionSet().bits().front()};
    Session s = Session::fromCheckpoint(path, cfg);
    EXPECT_EQ(s.engine().cacheConfig().budgetBytes,
              cfg.cacheBudgetBytes);

    for (int bits : s.candidates().bits()) {
        s.switchPrecision(bits);
        expectBitIdentical(engine.forwardAt(bits, x), s.forward(x),
                           bits);
        ASSERT_LE(s.engine().cacheBytes(), cfg.cacheBudgetBytes);
    }
    EXPECT_GT(s.engine().cellHydrations(), 0u);
    EXPECT_EQ(s.engine().columnRebuilds(), 0u);
    std::remove(path.c_str());
}

/** A pinned precision outside the cache set is caller data gone
 * wrong: the session rejects it recoverably instead of panicking in
 * the engine. */
TEST(SessionCache, RejectsPinOutsideCacheSet)
{
    Network net = makeResidualNet(50);
    RpsEngine engine(net);
    std::string path = tmpPath("badpin");
    checkpoint::save(path, net, &engine);

    SessionConfig cfg;
    cfg.cacheBudgetBytes = 1 << 20;
    cfg.pinnedBits = {7}; // not an rps4to16 member
    EXPECT_THROW(Session::fromCheckpoint(path, cfg),
                 serve::ServeError);
    std::remove(path.c_str());
}

} // namespace
} // namespace twoinone
