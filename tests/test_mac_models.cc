/**
 * @file
 * Tests for the three MAC-unit performance/area/energy models: the
 * paper's Fig. 3 area breakdowns, the Sec. 3.2.3 synthesized ratios,
 * and the qualitative throughput orderings of Sec. 3.1.1.
 */

#include <gtest/gtest.h>

#include "accel/spatial_mac.hh"
#include "accel/spatial_temporal_mac.hh"
#include "accel/temporal_mac.hh"

namespace twoinone {
namespace {

TEST(MacArea, Fig3BreakdownFractions)
{
    TemporalMacModel temporal;
    SpatialMacModel spatial;
    SpatialTemporalMacModel ours;
    // Paper Fig. 3: shift-add fractions 60.9% / 67.0% / 39.7%.
    EXPECT_NEAR(temporal.area().shiftAddFraction(), 0.609, 1e-3);
    EXPECT_NEAR(spatial.area().shiftAddFraction(), 0.670, 1e-3);
    EXPECT_NEAR(ours.area().shiftAddFraction(), 0.397, 1e-3);
}

TEST(MacArea, OursReducesShiftAddShare)
{
    TemporalMacModel temporal;
    SpatialMacModel spatial;
    SpatialTemporalMacModel ours;
    EXPECT_LT(ours.area().shiftAddFraction(),
              temporal.area().shiftAddFraction());
    EXPECT_LT(ours.area().shiftAddFraction(),
              spatial.area().shiftAddFraction());
}

TEST(MacRatios, Sec323ThroughputPerArea)
{
    SpatialMacModel bf;
    SpatialTemporalMacModel ours;
    // 2.3x throughput/area over Bit Fusion at 8-bit x 8-bit.
    double ratio = ours.macsPerCyclePerArea(8, 8) /
                   bf.macsPerCyclePerArea(8, 8);
    EXPECT_NEAR(ratio, 2.3, 0.1);
}

TEST(MacRatios, Sec323EnergyPerOp)
{
    SpatialMacModel bf;
    SpatialTemporalMacModel ours;
    const TechModel &tech = TechModel::defaults();
    // 4.88x energy-efficiency/operation over Bit Fusion at 8-bit.
    double ratio =
        bf.energyPerMac(8, 8, tech) / ours.energyPerMac(8, 8, tech);
    EXPECT_NEAR(ratio, 4.88, 0.35);
}

TEST(Temporal, CyclesScaleWithSerialPrecision)
{
    TemporalMacModel m;
    EXPECT_DOUBLE_EQ(m.cyclesPerPass(8, 8), 8.0);
    EXPECT_DOUBLE_EQ(m.cyclesPerPass(8, 3), 3.0);
    EXPECT_DOUBLE_EQ(m.cyclesPerPass(16, 16), 16.0);
    // Throughput improves monotonically as precision drops (the
    // Stripes property in Fig. 2).
    double prev = 0.0;
    for (int q = 16; q >= 1; --q) {
        double t = m.macsPerCycle(q, q);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(Spatial, SupportedPrecisionRounding)
{
    SpatialMacModel m;
    EXPECT_EQ(m.effectivePrecision(2), 2);
    EXPECT_EQ(m.effectivePrecision(3), 4);
    EXPECT_EQ(m.effectivePrecision(5), 8);
    EXPECT_EQ(m.effectivePrecision(8), 8);
    EXPECT_EQ(m.effectivePrecision(9), 16);
}

TEST(Spatial, UnsupportedPrecisionWastesThroughput)
{
    SpatialMacModel m;
    // 3-bit executes as 4-bit; 5/6/7-bit as 8-bit (Fig. 2 staircase).
    EXPECT_DOUBLE_EQ(m.macsPerCycle(3, 3), m.macsPerCycle(4, 4));
    EXPECT_DOUBLE_EQ(m.macsPerCycle(5, 5), m.macsPerCycle(8, 8));
    EXPECT_DOUBLE_EQ(m.macsPerCycle(6, 6), m.macsPerCycle(8, 8));
}

TEST(Spatial, SixteenBitNeedsFourPasses)
{
    SpatialMacModel m;
    EXPECT_DOUBLE_EQ(m.cyclesPerPass(16, 16), 4.0);
    EXPECT_DOUBLE_EQ(m.productsPerPass(16, 16), 1.0);
}

TEST(Spatial, BrickComposition)
{
    SpatialMacModel m;
    // 2-bit: 16 independent bricks; 4-bit: 4 products; 8-bit: 1.
    EXPECT_DOUBLE_EQ(m.productsPerPass(2, 2), 16.0);
    EXPECT_DOUBLE_EQ(m.productsPerPass(4, 4), 4.0);
    EXPECT_DOUBLE_EQ(m.productsPerPass(8, 8), 1.0);
}

TEST(SpatialTemporal, ScheduleThroughput)
{
    SpatialTemporalMacModel m(4);
    // <=4-bit: 16 independent units.
    EXPECT_DOUBLE_EQ(m.productsPerPass(4, 4), 16.0);
    EXPECT_DOUBLE_EQ(m.cyclesPerPass(4, 4), 4.0);
    // 8-bit: 4 products per 4 cycles.
    EXPECT_DOUBLE_EQ(m.productsPerPass(8, 8), 4.0);
    EXPECT_DOUBLE_EQ(m.cyclesPerPass(8, 8), 4.0);
    // 6-bit: 4 products per 3 cycles — precisions Bit Fusion cannot
    // run natively (Sec. 3.2.1 flexibility claim).
    EXPECT_DOUBLE_EQ(m.productsPerPass(6, 6), 4.0);
    EXPECT_DOUBLE_EQ(m.cyclesPerPass(6, 6), 3.0);
}

TEST(SpatialTemporal, ThroughputMonotoneInPrecision)
{
    SpatialTemporalMacModel m;
    double prev = 0.0;
    for (int q = 16; q >= 1; --q) {
        double t = m.macsPerCycle(q, q);
        EXPECT_GE(t, prev) << "q=" << q;
        prev = t;
    }
}

TEST(SpatialTemporal, WinsAtEveryPrecisionPerArea)
{
    // Fig. 10: ours outperforms both baselines at every precision
    // under iso-area at the MAC level or ties within the dataflow
    // margin.
    TemporalMacModel stripes;
    SpatialMacModel bf;
    SpatialTemporalMacModel ours;
    for (int q = 1; q <= 16; ++q) {
        double o = ours.macsPerCyclePerArea(q, q);
        double s = stripes.macsPerCyclePerArea(q, q);
        double b = bf.macsPerCyclePerArea(q, q);
        EXPECT_GE(o, s) << "q=" << q;
        EXPECT_GE(o, b * 0.99) << "q=" << q;
    }
}

TEST(SpatialTemporal, CrossoverBitFusionVsStripes)
{
    // Fig. 2: Bit Fusion wins below 8-bit, Stripes wins above 8-bit
    // (per area).
    TemporalMacModel stripes;
    SpatialMacModel bf;
    EXPECT_GT(bf.macsPerCyclePerArea(4, 4),
              stripes.macsPerCyclePerArea(4, 4));
    EXPECT_GT(bf.macsPerCyclePerArea(8, 8),
              stripes.macsPerCyclePerArea(8, 8));
    EXPECT_GT(stripes.macsPerCyclePerArea(16, 16),
              bf.macsPerCyclePerArea(16, 16));
}

TEST(SpatialTemporal, ReductionWaysMatchesProducts)
{
    SpatialTemporalMacModel m(4);
    EXPECT_DOUBLE_EQ(m.reductionWays(4, 4), 16.0);
    EXPECT_DOUBLE_EQ(m.reductionWays(8, 8), 4.0);
    // Baselines parallelize outputs, not reductions.
    TemporalMacModel stripes;
    EXPECT_DOUBLE_EQ(stripes.reductionWays(8, 8), 1.0);
}

TEST(MacEnergy, OursBeatsBaselinesAcrossPrecisions)
{
    TemporalMacModel stripes;
    SpatialMacModel bf;
    SpatialTemporalMacModel ours;
    const TechModel &tech = TechModel::defaults();
    for (int q : {2, 4, 8, 16}) {
        double o = ours.energyPerMac(q, q, tech);
        EXPECT_LT(o, bf.energyPerMac(q, q, tech)) << "q=" << q;
        EXPECT_LT(o, stripes.energyPerMac(q, q, tech)) << "q=" << q;
    }
}

} // namespace
} // namespace twoinone
