/**
 * @file
 * Tests for the evolutionary dataflow optimizer (Alg. 2) and the
 * joint micro-architecture search mode.
 */

#include <gtest/gtest.h>

#include "accel/spatial_temporal_mac.hh"
#include "optimizer/arch_search.hh"
#include "optimizer/evolutionary.hh"
#include "workloads/model_library.hh"

namespace twoinone {
namespace {

class OptimizerFixture : public ::testing::Test
{
  protected:
    OptimizerFixture()
        : mac_(), hierarchy_(MemoryHierarchy::makeDefault(
                      TechModel::defaults(), 256)),
          predictor_(mac_, hierarchy_, TechModel::defaults(), 256)
    {
        shape_.name = "res5";
        shape_.k = 128;
        shape_.c = 64;
        shape_.oy = shape_.ox = 14;
        shape_.r = shape_.s = 3;
        constraints_.numUnits = 256;
    }

    SpatialTemporalMacModel mac_;
    MemoryHierarchy hierarchy_;
    PerformancePredictor predictor_;
    ConvShape shape_;
    SearchConstraints constraints_;
};

TEST_F(OptimizerFixture, RandomDataflowsAreWellFormed)
{
    DataflowSpace space(shape_, constraints_);
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        Dataflow df = space.random(rng);
        EXPECT_TRUE(df.covers(shape_));
        EXPECT_LE(df.spatialUnits(), constraints_.numUnits);
    }
}

TEST_F(OptimizerFixture, CrossoverAndMutationPreserveValidityShape)
{
    DataflowSpace space(shape_, constraints_);
    Rng rng(8);
    Dataflow a = space.random(rng);
    Dataflow b = space.random(rng);
    for (int i = 0; i < 30; ++i) {
        Dataflow c = space.crossover(a, b, rng);
        Dataflow m = space.mutate(a, rng);
        EXPECT_TRUE(c.covers(shape_));
        EXPECT_TRUE(m.covers(shape_));
        EXPECT_LE(c.spatialUnits(), constraints_.numUnits);
        EXPECT_LE(m.spatialUnits(), constraints_.numUnits);
    }
}

TEST_F(OptimizerFixture, GbOrderOnlyKeepsTilingFixed)
{
    SearchConstraints c = constraints_;
    c.freedom = DataflowFreedom::GbOrderOnly;
    DataflowSpace space(shape_, c);
    Rng rng(9);
    Dataflow ref = Dataflow::bitFusionFixed(shape_, c.numUnits);
    for (int i = 0; i < 10; ++i) {
        Dataflow df = space.random(rng);
        for (int l = 0; l < kNumLevels; ++l) {
            for (int d = 0; d < kNumDims; ++d) {
                EXPECT_EQ(df.trips(static_cast<Level>(l),
                                   static_cast<Dim>(d)),
                          ref.trips(static_cast<Level>(l),
                                    static_cast<Dim>(d)));
            }
        }
    }
}

TEST_F(OptimizerFixture, SearchFindsValidDesign)
{
    EvoConfig cfg;
    cfg.populationSize = 16;
    cfg.totalCycles = 5;
    EvolutionarySearch search(predictor_, cfg);
    SearchResult r = search.searchLayer(shape_, 8, 8, constraints_);
    ASSERT_TRUE(r.found);
    EXPECT_TRUE(std::isfinite(r.bestCost));
    EXPECT_TRUE(r.best.covers(shape_));
}

TEST_F(OptimizerFixture, SearchBeatsGreedyDefault)
{
    EvoConfig cfg;
    cfg.populationSize = 24;
    cfg.totalCycles = 8;
    cfg.objective = Objective::EnergyDelay;
    EvolutionarySearch search(predictor_, cfg);
    SearchResult r = search.searchLayer(shape_, 4, 4, constraints_);
    ASSERT_TRUE(r.found);

    Dataflow greedy = Dataflow::greedyDefault(shape_, 256);
    double greedy_cost = search.cost(shape_, 4, 4, greedy);
    EXPECT_LE(r.bestCost, greedy_cost);
}

TEST_F(OptimizerFixture, ConvergenceIsMonotone)
{
    EvoConfig cfg;
    cfg.populationSize = 16;
    cfg.totalCycles = 8;
    EvolutionarySearch search(predictor_, cfg);
    SearchResult r = search.searchLayer(shape_, 8, 8, constraints_);
    ASSERT_TRUE(r.found);
    for (size_t i = 1; i < r.costHistory.size(); ++i)
        EXPECT_LE(r.costHistory[i], r.costHistory[i - 1] + 1e-9);
}

TEST_F(OptimizerFixture, MultiPrecisionSearchWorks)
{
    EvoConfig cfg;
    cfg.populationSize = 12;
    cfg.totalCycles = 4;
    EvolutionarySearch search(predictor_, cfg);
    SearchResult r = search.searchLayerMultiPrecision(
        shape_, PrecisionSet({4, 8, 16}), constraints_);
    ASSERT_TRUE(r.found);
    EXPECT_TRUE(std::isfinite(r.bestCost));
}

TEST_F(OptimizerFixture, ObjectivesChangeTheWinner)
{
    EvoConfig lat_cfg;
    lat_cfg.populationSize = 16;
    lat_cfg.totalCycles = 5;
    lat_cfg.objective = Objective::Latency;
    EvoConfig en_cfg = lat_cfg;
    en_cfg.objective = Objective::Energy;

    EvolutionarySearch lat(predictor_, lat_cfg);
    EvolutionarySearch en(predictor_, en_cfg);
    SearchResult rl = lat.searchLayer(shape_, 8, 8, constraints_);
    SearchResult re = en.searchLayer(shape_, 8, 8, constraints_);
    ASSERT_TRUE(rl.found && re.found);
    // The latency-optimal design is at least as fast as the
    // energy-optimal one in cycles.
    LayerPrediction pl =
        predictor_.predictLayer(shape_, 8, 8, rl.best);
    LayerPrediction pe =
        predictor_.predictLayer(shape_, 8, 8, re.best);
    EXPECT_LE(pl.totalCycles, pe.totalCycles * 1.05);
    // And vice versa for energy.
    EXPECT_LE(pe.totalEnergyPj(), pl.totalEnergyPj() * 1.05);
}

TEST(OptimizeNetwork, PerLayerDataflows)
{
    const TechModel &tech = TechModel::defaults();
    Accelerator accel(AcceleratorKind::TwoInOne,
                      Accelerator::defaultAreaBudget(), tech);
    NetworkWorkload net = workloads::alexNet();
    EvoConfig cfg;
    cfg.populationSize = 8;
    cfg.totalCycles = 2;
    cfg.objective = Objective::Latency; // compared on cycles below
    std::vector<Dataflow> dfs =
        optimizeNetworkDataflows(accel, net, 8, 8, cfg);
    ASSERT_EQ(dfs.size(), net.layers.size());
    NetworkPrediction np =
        accel.predictor().predictNetwork(net, 8, 8, dfs);
    EXPECT_EQ(np.invalidLayers, 0);
    // Optimized is no worse than greedy defaults.
    NetworkPrediction greedy = accel.run(net, 8, 8);
    EXPECT_LE(np.totalCycles, greedy.totalCycles * 1.01);
}

TEST(ArchSearch, DefaultSpaceRespectsBudget)
{
    ArchSearchSpace space = ArchSearchSpace::makeDefault(600.0);
    auto cands = space.candidates();
    ASSERT_FALSE(cands.empty());
    for (const auto &c : cands) {
        EXPECT_LE(c.macArrayArea + c.gbCapacityBits * space.sramAreaPerBit,
                  600.0 + 1e-9);
    }
}

TEST(ArchSearch, FindsACandidate)
{
    ArchSearchSpace space = ArchSearchSpace::makeDefault(600.0);
    // Single-layer "network" keeps this quick.
    NetworkWorkload net;
    net.name = "single";
    ConvShape s;
    s.name = "conv";
    s.k = 64;
    s.c = 32;
    s.oy = s.ox = 14;
    s.r = s.s = 3;
    net.layers.push_back(s);

    EvoConfig cfg;
    cfg.populationSize = 8;
    cfg.totalCycles = 2;
    ArchSearchResult r = searchMicroArchitecture(
        AcceleratorKind::TwoInOne, space, net, PrecisionSet({4, 8}), cfg,
        TechModel::defaults());
    ASSERT_TRUE(r.found);
    EXPECT_GT(r.evaluated.size(), 1u);
    for (const auto &[cand, cost] : r.evaluated)
        EXPECT_GE(cost, r.bestCost);
}

} // namespace
} // namespace twoinone
