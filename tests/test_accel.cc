/**
 * @file
 * Tests for the thread-pooled accelerator sweeps: the parallel
 * per-layer predictor passes and the layers x precisions sweep must
 * return results identical to the serial path (per-layer predictions
 * are pure, and totals accumulate serially in layer order).
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "common/thread_pool.hh"
#include "workloads/model_library.hh"

namespace twoinone {
namespace {

void
expectIdentical(const NetworkPrediction &a, const NetworkPrediction &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.totalEnergyPj, b.totalEnergyPj);
    EXPECT_EQ(a.macEnergyPj, b.macEnergyPj);
    EXPECT_EQ(a.invalidLayers, b.invalidLayers);
    for (int lv = 0; lv < kNumLevels; ++lv)
        EXPECT_EQ(a.memEnergyPj[static_cast<size_t>(lv)],
                  b.memEnergyPj[static_cast<size_t>(lv)]);
}

TEST(AcceleratorSweep, ParallelRunMatchesSerial)
{
    Accelerator ours(AcceleratorKind::TwoInOne,
                     Accelerator::defaultAreaBudget(),
                     TechModel::defaults());
    NetworkWorkload net = workloads::resNet18Cifar(1);

    for (int bits : {4, 8, 16}) {
        NetworkPrediction serial;
        {
            ThreadPool::ScopedSerial guard;
            serial = ours.run(net, bits, bits);
        }
        NetworkPrediction parallel = ours.run(net, bits, bits);
        expectIdentical(serial, parallel);
    }
}

TEST(AcceleratorSweep, ParallelSweepMatchesSerial)
{
    Accelerator ours(AcceleratorKind::TwoInOne,
                     Accelerator::defaultAreaBudget(),
                     TechModel::defaults());
    NetworkWorkload net = workloads::resNet18Cifar(1);
    PrecisionSet set = PrecisionSet::rps4to16();

    std::vector<NetworkPrediction> serial;
    {
        ThreadPool::ScopedSerial guard;
        serial = ours.sweep(net, set);
    }
    std::vector<NetworkPrediction> parallel = ours.sweep(net, set);

    ASSERT_EQ(serial.size(), set.size());
    ASSERT_EQ(parallel.size(), set.size());
    for (size_t i = 0; i < set.size(); ++i)
        expectIdentical(serial[i], parallel[i]);
}

TEST(AcceleratorSweep, SweepEntriesMatchIndividualRuns)
{
    Accelerator ours(AcceleratorKind::TwoInOne,
                     Accelerator::defaultAreaBudget(),
                     TechModel::defaults());
    NetworkWorkload net = workloads::alexNet();
    PrecisionSet set = PrecisionSet::rps4to16();

    std::vector<NetworkPrediction> swept = ours.sweep(net, set);
    ASSERT_EQ(swept.size(), set.size());
    for (size_t i = 0; i < set.size(); ++i) {
        int bits = set.bits()[i];
        NetworkPrediction single = ours.run(net, bits, bits);
        expectIdentical(single, swept[i]);
    }
}

TEST(AcceleratorSweep, SweepCyclesIncreaseWithPrecision)
{
    Accelerator ours(AcceleratorKind::TwoInOne,
                     Accelerator::defaultAreaBudget(),
                     TechModel::defaults());
    NetworkWorkload net = workloads::resNet18Cifar(1);
    std::vector<NetworkPrediction> swept =
        ours.sweep(net, PrecisionSet::rps4to16());
    for (size_t i = 1; i < swept.size(); ++i)
        EXPECT_LT(swept[i - 1].totalCycles, swept[i].totalCycles) << i;
}

/** The static-scale activation-quant mode (calibrated datapath) is
 * strictly cheaper than dynamic fake-quant — the dropped range
 * reduction pass — and never touches the MAC-side numbers. */
TEST(ActQuantCost, StaticScaleCheaperThanDynamic)
{
    Accelerator ours(AcceleratorKind::TwoInOne,
                     Accelerator::defaultAreaBudget(),
                     TechModel::defaults());
    NetworkWorkload net = workloads::resNet18Cifar(1);

    for (int bits : {4, 8, 16}) {
        NetworkPrediction dyn =
            ours.run(net, bits, bits, ActQuantMode::DynamicFakeQuant);
        NetworkPrediction stat =
            ours.run(net, bits, bits, ActQuantMode::StaticScale);
        EXPECT_LT(stat.totalCycles, dyn.totalCycles) << bits;
        EXPECT_LT(stat.totalEnergyPj, dyn.totalEnergyPj) << bits;
        EXPECT_EQ(stat.macEnergyPj, dyn.macEnergyPj) << bits;
    }
}

/** The documented 3:2 touch ratio of the requant overhead: per-layer
 * dynamic act-quant energy is exactly 1.5x the static one. */
TEST(ActQuantCost, LayerOverheadMatchesTouchModel)
{
    Accelerator ours(AcceleratorKind::TwoInOne,
                     Accelerator::defaultAreaBudget(),
                     TechModel::defaults());
    NetworkWorkload net = workloads::resNet18Cifar(1);
    const ConvShape &layer = net.layers[3];
    Dataflow df = ours.defaultLayerDataflow(layer);

    LayerPrediction dyn = ours.predictor().predictLayer(
        layer, 8, 8, df, ActQuantMode::DynamicFakeQuant);
    LayerPrediction stat = ours.predictor().predictLayer(
        layer, 8, 8, df, ActQuantMode::StaticScale);
    ASSERT_TRUE(dyn.valid);
    ASSERT_TRUE(stat.valid);
    EXPECT_GT(stat.actQuantEnergyPj, 0.0);
    EXPECT_DOUBLE_EQ(dyn.actQuantEnergyPj, 1.5 * stat.actQuantEnergyPj);
    EXPECT_DOUBLE_EQ(dyn.actQuantCycles, 1.5 * stat.actQuantCycles);
}

/** sweep() under a mode matches run() under the same mode exactly. */
TEST(AcceleratorSweep, StaticModeSweepMatchesRuns)
{
    Accelerator ours(AcceleratorKind::TwoInOne,
                     Accelerator::defaultAreaBudget(),
                     TechModel::defaults());
    NetworkWorkload net = workloads::alexNet();
    PrecisionSet set = PrecisionSet::rps4to8();

    std::vector<NetworkPrediction> swept =
        ours.sweep(net, set, ActQuantMode::StaticScale);
    ASSERT_EQ(swept.size(), set.size());
    for (size_t i = 0; i < set.size(); ++i) {
        int bits = set.bits()[i];
        NetworkPrediction single =
            ours.run(net, bits, bits, ActQuantMode::StaticScale);
        expectIdentical(single, swept[i]);
    }
}

TEST(AcceleratorSweep, SweepWorksForAllDesigns)
{
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    NetworkWorkload net = workloads::alexNet();
    PrecisionSet set = PrecisionSet::rps4to8();
    for (AcceleratorKind kind :
         {AcceleratorKind::TwoInOne, AcceleratorKind::Stripes,
          AcceleratorKind::BitFusion}) {
        Accelerator acc(kind, budget, tech);
        std::vector<NetworkPrediction> swept = acc.sweep(net, set);
        ASSERT_EQ(swept.size(), set.size()) << acc.name();
        for (const NetworkPrediction &np : swept) {
            EXPECT_EQ(np.invalidLayers, 0) << acc.name();
            EXPECT_GT(np.totalCycles, 0.0) << acc.name();
        }
    }
}

} // namespace
} // namespace twoinone
