/**
 * @file
 * Unit tests for the ThreadPool parallelFor primitive: full range
 * coverage with disjoint chunks, grain cutoff, nested-call inlining,
 * and env-var thread-count parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hh"

namespace twoinone {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(0, 1000, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            hits[static_cast<size_t>(i)].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps)
{
    ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
    pool.parallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, GrainCutoffRunsInlineAsOneChunk)
{
    ThreadPool pool(4);
    int calls = 0;
    int64_t got_lo = -1, got_hi = -1;
    // Range (100) <= grain (256): must be one inline fn invocation.
    pool.parallelFor(0, 100, 256, [&](int64_t lo, int64_t hi) {
        ++calls;
        got_lo = lo;
        got_hi = hi;
    });
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(got_lo, 0);
    EXPECT_EQ(got_hi, 100);
}

TEST(ThreadPool, ChunkCountRespectsGrain)
{
    ThreadPool pool(8);
    // Range 30 with grain 10 allows at most 3 chunks even with 8
    // threads.
    std::atomic<int> calls{0};
    pool.parallelFor(0, 30, 10, [&](int64_t lo, int64_t hi) {
        calls.fetch_add(1);
        EXPECT_GE(hi - lo, 10);
    });
    EXPECT_LE(calls.load(), 3);
    EXPECT_GE(calls.load(), 1);
}

TEST(ThreadPool, NestedCallsRunInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64 * 32);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(0, 64, 1, [&](int64_t olo, int64_t ohi) {
        for (int64_t o = olo; o < ohi; ++o) {
            EXPECT_TRUE(ThreadPool::inParallelRegion());
            // Nested parallelFor must execute inline on this thread.
            ThreadPool::global().parallelFor(
                0, 32, 1, [&, o](int64_t ilo, int64_t ihi) {
                    for (int64_t i = ilo; i < ihi; ++i)
                        hits[static_cast<size_t>(o * 32 + i)].fetch_add(1);
                });
        }
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, SingleChunkTopLevelLeavesRegionUnmarked)
{
    // A top-level call that collapses to one chunk (e.g. batch of 1
    // in Conv2d) must NOT mark the parallel region: nested kernels
    // still get the full pool.
    ThreadPool pool(4);
    pool.parallelFor(0, 1, 1, [&](int64_t, int64_t) {
        EXPECT_FALSE(ThreadPool::inParallelRegion());
        std::atomic<int> chunks{0};
        pool.parallelFor(0, 1000, 1,
                         [&](int64_t, int64_t) { chunks.fetch_add(1); });
        EXPECT_EQ(chunks.load(), 4);
    });
}

TEST(ThreadPool, ScopedSerialForcesInline)
{
    ThreadPool pool(4);
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    {
        ThreadPool::ScopedSerial serial;
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        int calls = 0;
        pool.parallelFor(0, 10000, 1,
                         [&](int64_t, int64_t) { ++calls; });
        EXPECT_EQ(calls, 1);
    }
    EXPECT_FALSE(ThreadPool::inParallelRegion());
}

TEST(ThreadPool, SingleThreadPoolAlwaysInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    int calls = 0;
    pool.parallelFor(0, 100000, 1, [&](int64_t, int64_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, EnvThreadCountIsPositive)
{
    // Whatever the environment says, the result must be usable.
    EXPECT_GE(ThreadPool::envThreadCount(), 1);
    EXPECT_GE(ThreadPool::global().threads(), 1);
}

TEST(ThreadPool, ConcurrentTopLevelCallsFromWorkers)
{
    // Two pools at once: tasks of an outer pool issuing parallelFor
    // on the global pool; the global pool treats those as top-level
    // (they are not ITS workers)... they ARE marked in-region by the
    // outer pool's depth guard, so they run inline — either way this
    // must complete and cover everything.
    ThreadPool outer(3);
    std::vector<std::atomic<int>> hits(300);
    for (auto &h : hits)
        h = 0;
    outer.parallelFor(0, 3, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t c = lo; c < hi; ++c) {
            ThreadPool::global().parallelFor(
                c * 100, (c + 1) * 100, 1, [&](int64_t ilo, int64_t ihi) {
                    for (int64_t i = ilo; i < ihi; ++i)
                        hits[static_cast<size_t>(i)].fetch_add(1);
                });
        }
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

} // namespace
} // namespace twoinone
