/**
 * @file
 * Unit and property tests for the quantization library.
 */

#include <gtest/gtest.h>

#include "quant/linear_quantizer.hh"
#include "quant/precision.hh"
#include "tensor/ops.hh"

namespace twoinone {
namespace {

TEST(LinearQuantizer, QmaxValues)
{
    EXPECT_EQ(LinearQuantizer::signedQmax(8), 127);
    EXPECT_EQ(LinearQuantizer::signedQmax(4), 7);
    EXPECT_EQ(LinearQuantizer::signedQmax(2), 1);
    EXPECT_EQ(LinearQuantizer::signedQmax(1), 1);
    EXPECT_EQ(LinearQuantizer::unsignedQmax(8), 255);
    EXPECT_EQ(LinearQuantizer::unsignedQmax(1), 1);
}

TEST(LinearQuantizer, FullPrecisionPassThrough)
{
    Rng rng(1);
    Tensor x = Tensor::randn({16}, rng);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 0);
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(r.values[i], x[i]);
        EXPECT_EQ(r.steMask[i], 1.0f);
    }
}

TEST(LinearQuantizer, ZeroInputGivesZeroOutput)
{
    Tensor x({8}, 0.0f);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 8);
    EXPECT_EQ(r.scale, 0.0f);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(r.values[i], 0.0f);
}

TEST(LinearQuantizer, SymmetricPreservesSignAndZero)
{
    Tensor x({3});
    x[0] = -0.7f; x[1] = 0.0f; x[2] = 0.9f;
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 6);
    EXPECT_LT(r.values[0], 0.0f);
    EXPECT_EQ(r.values[1], 0.0f);
    EXPECT_GT(r.values[2], 0.0f);
}

TEST(LinearQuantizer, MaxMagnitudeIsExactlyRepresentable)
{
    Tensor x({4});
    x[0] = 0.1f; x[1] = -1.5f; x[2] = 0.4f; x[3] = 0.9f;
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 8);
    EXPECT_NEAR(r.values[1], -1.5f, 1e-6f);
}

TEST(LinearQuantizer, UnsignedClipsNegativeToZeroAndCutsGradient)
{
    Tensor x({3});
    x[0] = -0.5f; x[1] = 0.25f; x[2] = 1.0f;
    QuantResult r = LinearQuantizer::fakeQuantUnsigned(x, 4);
    EXPECT_EQ(r.values[0], 0.0f);
    EXPECT_EQ(r.steMask[0], 0.0f);
    EXPECT_EQ(r.steMask[1], 1.0f);
}

TEST(LinearQuantizer, AllNegativeUnsignedInputIsAllZero)
{
    Tensor x({4}, -1.0f);
    QuantResult r = LinearQuantizer::fakeQuantUnsigned(x, 4);
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(r.values[i], 0.0f);
        EXPECT_EQ(r.steMask[i], 0.0f);
    }
}

TEST(LinearQuantizer, IntCodesMatchFakeQuant)
{
    Rng rng(3);
    Tensor x = Tensor::randn({64}, rng);
    float scale = 0.0f;
    std::vector<int32_t> codes =
        LinearQuantizer::quantizeToIntSymmetric(x, 8, &scale);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 8);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(static_cast<float>(codes[i]) * scale, r.values[i],
                    1e-5f);
}

/** Property sweep: quantization error is bounded by scale/2 and
 * shrinks monotonically in representable levels. */
class QuantErrorSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantErrorSweep, ErrorBoundedByHalfScale)
{
    int bits = GetParam();
    Rng rng(100 + static_cast<uint64_t>(bits));
    Tensor x = Tensor::randn({256}, rng);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
    for (size_t i = 0; i < x.size(); ++i) {
        // In-range elements round to the nearest grid point.
        if (r.steMask[i] == 1.0f)
            EXPECT_LE(std::fabs(r.values[i] - x[i]),
                      0.5f * r.scale + 1e-6f);
    }
}

TEST_P(QuantErrorSweep, ValuesLieOnGrid)
{
    int bits = GetParam();
    Rng rng(200 + static_cast<uint64_t>(bits));
    Tensor x = Tensor::randn({128}, rng);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
    if (r.scale == 0.0f)
        return;
    // float32 can only resolve the grid up to ~qmax * eps_f32, so the
    // tolerance scales with the level count.
    float qmax = static_cast<float>(LinearQuantizer::signedQmax(bits));
    float tol = 1e-3f + qmax * 1e-5f;
    for (size_t i = 0; i < x.size(); ++i) {
        float code = r.values[i] / r.scale;
        EXPECT_NEAR(code, std::nearbyint(code), tol);
        EXPECT_LE(std::fabs(code), qmax + tol);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBits, QuantErrorSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12,
                                           16));

/** Higher precision gives no larger mean quantization error. */
TEST(LinearQuantizer, ErrorDecreasesWithPrecision)
{
    Rng rng(17);
    Tensor x = Tensor::randn({1024}, rng);
    double prev_err = 1e30;
    for (int bits : {2, 4, 6, 8, 12}) {
        QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
        double err = 0.0;
        for (size_t i = 0; i < x.size(); ++i)
            err += std::fabs(r.values[i] - x[i]);
        err /= static_cast<double>(x.size());
        EXPECT_LT(err, prev_err);
        prev_err = err;
    }
}

TEST(PrecisionSet, DefaultPaperSet)
{
    PrecisionSet s = PrecisionSet::rps4to16();
    EXPECT_EQ(s.size(), 6u);
    EXPECT_EQ(s.minBits(), 4);
    EXPECT_EQ(s.maxBits(), 16);
    EXPECT_TRUE(s.contains(8));
    EXPECT_FALSE(s.contains(7));
}

TEST(PrecisionSet, IndexOf)
{
    PrecisionSet s({2, 4, 8});
    EXPECT_EQ(s.indexOf(2), 0);
    EXPECT_EQ(s.indexOf(8), 2);
}

TEST(PrecisionSet, RangeConstruction)
{
    PrecisionSet s = PrecisionSet::range(3, 6);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_TRUE(s.contains(5));
}

TEST(PrecisionSet, SampleOnlyReturnsMembers)
{
    PrecisionSet s({4, 8, 12});
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(s.contains(s.sample(rng)));
}

TEST(PrecisionSet, SampleHitsAllMembers)
{
    PrecisionSet s({4, 8});
    Rng rng(6);
    bool saw4 = false, saw8 = false;
    for (int i = 0; i < 100; ++i) {
        int q = s.sample(rng);
        saw4 |= (q == 4);
        saw8 |= (q == 8);
    }
    EXPECT_TRUE(saw4);
    EXPECT_TRUE(saw8);
}

TEST(PrecisionSet, Name)
{
    EXPECT_EQ(PrecisionSet({4, 8}).name(), "{4,8}");
}

TEST(PrecisionSet, Fig11Variants)
{
    EXPECT_EQ(PrecisionSet::rps4to12().maxBits(), 12);
    EXPECT_EQ(PrecisionSet::rps4to8().maxBits(), 8);
    EXPECT_EQ(PrecisionSet::static4().size(), 1u);
}

} // namespace
} // namespace twoinone
