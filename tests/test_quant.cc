/**
 * @file
 * Unit and property tests for the quantization library.
 */

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "quant/linear_quantizer.hh"
#include "quant/precision.hh"
#include "tensor/ops.hh"

namespace twoinone {
namespace {

TEST(LinearQuantizer, QmaxValues)
{
    EXPECT_EQ(LinearQuantizer::signedQmax(8), 127);
    EXPECT_EQ(LinearQuantizer::signedQmax(4), 7);
    EXPECT_EQ(LinearQuantizer::signedQmax(2), 1);
    EXPECT_EQ(LinearQuantizer::signedQmax(1), 1);
    EXPECT_EQ(LinearQuantizer::unsignedQmax(8), 255);
    EXPECT_EQ(LinearQuantizer::unsignedQmax(1), 1);
}

TEST(LinearQuantizer, FullPrecisionPassThrough)
{
    Rng rng(1);
    Tensor x = Tensor::randn({16}, rng);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 0);
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(r.values[i], x[i]);
        EXPECT_EQ(r.steMask[i], 1.0f);
    }
}

TEST(LinearQuantizer, ZeroInputGivesZeroOutput)
{
    Tensor x({8}, 0.0f);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 8);
    EXPECT_EQ(r.scale, 0.0f);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(r.values[i], 0.0f);
}

TEST(LinearQuantizer, SymmetricPreservesSignAndZero)
{
    Tensor x({3});
    x[0] = -0.7f; x[1] = 0.0f; x[2] = 0.9f;
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 6);
    EXPECT_LT(r.values[0], 0.0f);
    EXPECT_EQ(r.values[1], 0.0f);
    EXPECT_GT(r.values[2], 0.0f);
}

TEST(LinearQuantizer, MaxMagnitudeIsExactlyRepresentable)
{
    Tensor x({4});
    x[0] = 0.1f; x[1] = -1.5f; x[2] = 0.4f; x[3] = 0.9f;
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 8);
    EXPECT_NEAR(r.values[1], -1.5f, 1e-6f);
}

TEST(LinearQuantizer, UnsignedClipsNegativeToZeroAndCutsGradient)
{
    Tensor x({3});
    x[0] = -0.5f; x[1] = 0.25f; x[2] = 1.0f;
    QuantResult r = LinearQuantizer::fakeQuantUnsigned(x, 4);
    EXPECT_EQ(r.values[0], 0.0f);
    EXPECT_EQ(r.steMask[0], 0.0f);
    EXPECT_EQ(r.steMask[1], 1.0f);
}

TEST(LinearQuantizer, AllNegativeUnsignedInputIsAllZero)
{
    Tensor x({4}, -1.0f);
    QuantResult r = LinearQuantizer::fakeQuantUnsigned(x, 4);
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(r.values[i], 0.0f);
        EXPECT_EQ(r.steMask[i], 0.0f);
    }
}

TEST(LinearQuantizer, IntCodesMatchFakeQuant)
{
    Rng rng(3);
    Tensor x = Tensor::randn({64}, rng);
    float scale = 0.0f;
    std::vector<int32_t> codes =
        LinearQuantizer::quantizeToIntSymmetric(x, 8, &scale);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, 8);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(static_cast<float>(codes[i]) * scale, r.values[i],
                    1e-5f);
}

/**
 * Bit-true/fake-quant consistency: the integer codes, dequantized via
 * the returned scale, must equal the fake-quant values *elementwise
 * and exactly* — both paths compute float(code) * scale from the same
 * maxAbs-derived scale, so the accelerator datapath codes and the
 * QAT forward see the same grid.
 */
class BitTrueConsistency : public ::testing::TestWithParam<int>
{
};

TEST_P(BitTrueConsistency, CodesDequantizeExactlyToFakeQuant)
{
    int bits = GetParam();
    Rng rng(300 + static_cast<uint64_t>(bits));
    Tensor x = Tensor::randn({512}, rng);
    float scale = 0.0f;
    std::vector<int32_t> codes =
        LinearQuantizer::quantizeToIntSymmetric(x, bits, &scale);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
    ASSERT_EQ(scale, r.scale);
    ASSERT_EQ(r.bits, bits);
    int qmax = LinearQuantizer::signedQmax(bits);
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_LE(std::abs(codes[i]), qmax) << i;
        EXPECT_EQ(static_cast<float>(codes[i]) * scale, r.values[i])
            << "bits=" << bits << " i=" << i;
    }
}

TEST_P(BitTrueConsistency, AllZeroTensor)
{
    int bits = GetParam();
    Tensor x({16}, 0.0f);
    float scale = -1.0f;
    std::vector<int32_t> codes =
        LinearQuantizer::quantizeToIntSymmetric(x, bits, &scale);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
    EXPECT_EQ(scale, 0.0f);
    EXPECT_EQ(r.scale, 0.0f);
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(codes[i], 0);
        EXPECT_EQ(r.values[i], 0.0f);
        EXPECT_EQ(r.steMask[i], 1.0f);
    }
}

TEST_P(BitTrueConsistency, SingleElement)
{
    int bits = GetParam();
    Tensor x({1});
    x[0] = -0.37f;
    float scale = 0.0f;
    std::vector<int32_t> codes =
        LinearQuantizer::quantizeToIntSymmetric(x, bits, &scale);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
    // A single element is its own max magnitude: it maps to -qmax and
    // dequantizes back to itself up to one float rounding.
    EXPECT_EQ(codes[0], -LinearQuantizer::signedQmax(bits));
    EXPECT_EQ(static_cast<float>(codes[0]) * scale, r.values[0]);
    EXPECT_NEAR(r.values[0], x[0], 1e-6f);
    EXPECT_EQ(r.steMask[0], 1.0f);
}

TEST_P(BitTrueConsistency, NegativeOnlyInput)
{
    int bits = GetParam();
    Rng rng(400 + static_cast<uint64_t>(bits));
    Tensor x = Tensor::uniform({64}, rng, -2.0f, -0.1f);
    float scale = 0.0f;
    std::vector<int32_t> codes =
        LinearQuantizer::quantizeToIntSymmetric(x, bits, &scale);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
    ASSERT_GT(scale, 0.0f);
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_LE(codes[i], 0) << i;
        EXPECT_LE(r.values[i], 0.0f) << i;
        EXPECT_EQ(static_cast<float>(codes[i]) * scale, r.values[i]) << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Bits, BitTrueConsistency,
                         ::testing::Values(2, 4, 8, 16));

/** Golden-value regression for the fakeQuantUnsigned STE mask: inputs
 * below -scale/2 round to a negative level, clip to zero, and must
 * cut the gradient; in-range inputs pass it. */
TEST(LinearQuantizer, UnsignedSteMaskGoldenValues)
{
    // bits=4, max = 1.5 -> scale = 0.1.
    Tensor x({6});
    x[0] = -2.0f;
    x[1] = -0.6f;
    x[2] = 0.0f;
    x[3] = 0.3f;
    x[4] = 0.9f;
    x[5] = 1.5f;
    QuantResult r = LinearQuantizer::fakeQuantUnsigned(x, 4);
    EXPECT_NEAR(r.scale, 0.1f, 1e-6f);

    const float expected_mask[6] = {0.0f, 0.0f, 1.0f, 1.0f, 1.0f, 1.0f};
    const float expected_values[6] = {0.0f, 0.0f, 0.0f, 0.3f, 0.9f, 1.5f};
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(r.steMask[i], expected_mask[i]) << i;
        EXPECT_NEAR(r.values[i], expected_values[i], 1e-6f) << i;
    }
}

/** The parallel quantizer passes are bit-identical to the serial
 * reference (float max is exact under any chunking; the grid pass
 * writes disjoint elements). */
TEST(LinearQuantizer, ParallelPassesMatchSerialBitwise)
{
    Rng rng(55);
    // Large enough to clear the parallel grain cutoff.
    Tensor x = Tensor::randn({300000}, rng);

    for (int bits : {2, 4, 8, 16}) {
        QuantResult serial_sym, serial_uns;
        std::vector<int32_t> serial_codes;
        float serial_scale = 0.0f;
        {
            ThreadPool::ScopedSerial guard;
            serial_sym = LinearQuantizer::fakeQuantSymmetric(x, bits);
            serial_uns = LinearQuantizer::fakeQuantUnsigned(x, bits);
            serial_codes = LinearQuantizer::quantizeToIntSymmetric(
                x, bits, &serial_scale);
        }
        QuantResult par_sym = LinearQuantizer::fakeQuantSymmetric(x, bits);
        QuantResult par_uns = LinearQuantizer::fakeQuantUnsigned(x, bits);
        float par_scale = 0.0f;
        std::vector<int32_t> par_codes =
            LinearQuantizer::quantizeToIntSymmetric(x, bits, &par_scale);

        ASSERT_EQ(serial_sym.scale, par_sym.scale) << bits;
        ASSERT_EQ(serial_uns.scale, par_uns.scale) << bits;
        ASSERT_EQ(serial_scale, par_scale) << bits;
        ASSERT_EQ(serial_codes, par_codes) << bits;
        for (size_t i = 0; i < x.size(); ++i) {
            ASSERT_EQ(serial_sym.values[i], par_sym.values[i]) << i;
            ASSERT_EQ(serial_sym.steMask[i], par_sym.steMask[i]) << i;
            ASSERT_EQ(serial_uns.values[i], par_uns.values[i]) << i;
            ASSERT_EQ(serial_uns.steMask[i], par_uns.steMask[i]) << i;
        }
    }
}

/** Property sweep: quantization error is bounded by scale/2 and
 * shrinks monotonically in representable levels. */
class QuantErrorSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantErrorSweep, ErrorBoundedByHalfScale)
{
    int bits = GetParam();
    Rng rng(100 + static_cast<uint64_t>(bits));
    Tensor x = Tensor::randn({256}, rng);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
    for (size_t i = 0; i < x.size(); ++i) {
        // In-range elements round to the nearest grid point.
        if (r.steMask[i] == 1.0f) {
            EXPECT_LE(std::fabs(r.values[i] - x[i]),
                      0.5f * r.scale + 1e-6f);
        }
    }
}

TEST_P(QuantErrorSweep, ValuesLieOnGrid)
{
    int bits = GetParam();
    Rng rng(200 + static_cast<uint64_t>(bits));
    Tensor x = Tensor::randn({128}, rng);
    QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
    if (r.scale == 0.0f)
        return;
    // float32 can only resolve the grid up to ~qmax * eps_f32, so the
    // tolerance scales with the level count.
    float qmax = static_cast<float>(LinearQuantizer::signedQmax(bits));
    float tol = 1e-3f + qmax * 1e-5f;
    for (size_t i = 0; i < x.size(); ++i) {
        float code = r.values[i] / r.scale;
        EXPECT_NEAR(code, std::nearbyint(code), tol);
        EXPECT_LE(std::fabs(code), qmax + tol);
    }
}

INSTANTIATE_TEST_SUITE_P(AllBits, QuantErrorSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10, 12,
                                           16));

/** Higher precision gives no larger mean quantization error. */
TEST(LinearQuantizer, ErrorDecreasesWithPrecision)
{
    Rng rng(17);
    Tensor x = Tensor::randn({1024}, rng);
    double prev_err = 1e30;
    for (int bits : {2, 4, 6, 8, 12}) {
        QuantResult r = LinearQuantizer::fakeQuantSymmetric(x, bits);
        double err = 0.0;
        for (size_t i = 0; i < x.size(); ++i)
            err += std::fabs(r.values[i] - x[i]);
        err /= static_cast<double>(x.size());
        EXPECT_LT(err, prev_err);
        prev_err = err;
    }
}

TEST(PrecisionSet, DefaultPaperSet)
{
    PrecisionSet s = PrecisionSet::rps4to16();
    EXPECT_EQ(s.size(), 6u);
    EXPECT_EQ(s.minBits(), 4);
    EXPECT_EQ(s.maxBits(), 16);
    EXPECT_TRUE(s.contains(8));
    EXPECT_FALSE(s.contains(7));
}

TEST(PrecisionSet, IndexOf)
{
    PrecisionSet s({2, 4, 8});
    EXPECT_EQ(s.indexOf(2), 0);
    EXPECT_EQ(s.indexOf(8), 2);
}

TEST(PrecisionSet, RangeConstruction)
{
    PrecisionSet s = PrecisionSet::range(3, 6);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_TRUE(s.contains(5));
}

TEST(PrecisionSet, SampleOnlyReturnsMembers)
{
    PrecisionSet s({4, 8, 12});
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(s.contains(s.sample(rng)));
}

TEST(PrecisionSet, SampleHitsAllMembers)
{
    PrecisionSet s({4, 8});
    Rng rng(6);
    bool saw4 = false, saw8 = false;
    for (int i = 0; i < 100; ++i) {
        int q = s.sample(rng);
        saw4 |= (q == 4);
        saw8 |= (q == 8);
    }
    EXPECT_TRUE(saw4);
    EXPECT_TRUE(saw8);
}

TEST(PrecisionSet, Name)
{
    EXPECT_EQ(PrecisionSet({4, 8}).name(), "{4,8}");
}

TEST(PrecisionSet, Fig11Variants)
{
    EXPECT_EQ(PrecisionSet::rps4to12().maxBits(), 12);
    EXPECT_EQ(PrecisionSet::rps4to8().maxBits(), 8);
    EXPECT_EQ(PrecisionSet::static4().size(), 1u);
}

} // namespace
} // namespace twoinone
