/**
 * @file
 * Tests for the core 2-in-1 integration: the RPS controller, the
 * system facade with cost accounting, and the instant trade-off
 * controller.
 */

#include <gtest/gtest.h>

#include "adversarial/pgd.hh"
#include "core/system.hh"
#include "core/tradeoff.hh"
#include "nn/model_zoo.hh"
#include "workloads/model_library.hh"

namespace twoinone {
namespace {

class CoreFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        rng_ = std::make_unique<Rng>(42);
        ModelConfig mcfg;
        mcfg.baseWidth = 4;
        mcfg.precisions = PrecisionSet::rps4to16();
        net_ = std::make_unique<Network>(convNetTiny(mcfg, *rng_));

        SyntheticConfig dcfg;
        dcfg.trainSize = 128;
        dcfg.testSize = 64;
        data_ = makeSynthetic(dcfg, "core-test");
    }

    std::unique_ptr<Rng> rng_;
    std::unique_ptr<Network> net_;
    DatasetPair data_;
};

TEST_F(CoreFixture, ControllerSamplesFromSet)
{
    RpsController ctl(*net_, PrecisionSet::rps4to16(), 5);
    for (int i = 0; i < 50; ++i) {
        int q = ctl.samplePrecision();
        EXPECT_TRUE(PrecisionSet::rps4to16().contains(q));
    }
}

TEST_F(CoreFixture, ClassifySwitchesPrecision)
{
    RpsController ctl(*net_, PrecisionSet::rps4to16(), 5);
    Tensor x = data_.test.images.slice0(0, 4);
    std::vector<int> seen;
    for (int i = 0; i < 20; ++i) {
        ctl.classify(x);
        seen.push_back(ctl.lastPrecision());
        EXPECT_EQ(net_->activePrecision(), ctl.lastPrecision());
    }
    // Multiple distinct precisions must appear over 20 draws.
    std::sort(seen.begin(), seen.end());
    seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
    EXPECT_GT(seen.size(), 1u);
}

TEST_F(CoreFixture, SubsetSwitchIsAllowed)
{
    RpsController ctl(*net_, PrecisionSet::rps4to16(), 5);
    ctl.setPrecisionSet(PrecisionSet::rps4to8());
    for (int i = 0; i < 20; ++i)
        EXPECT_LE(ctl.samplePrecision(), 8);
}

TEST_F(CoreFixture, RpsTrainHelper)
{
    TrainConfig cfg;
    cfg.method = TrainMethod::Fgsm;
    cfg.epochs = 1;
    cfg.batchSize = 32;
    float loss = rpsTrain(*net_, data_.train, cfg);
    EXPECT_GT(loss, 0.0f);
}

TEST_F(CoreFixture, SystemAccountsCycleAndEnergy)
{
    TwoInOneSystem system(*net_, workloads::resNet18Cifar(),
                          PrecisionSet::rps4to16());
    Tensor x = data_.test.images.slice0(0, 4);
    InferenceStats stats = system.classify(x);
    EXPECT_EQ(stats.predictions.size(), 4u);
    EXPECT_GT(stats.cycles, 0.0);
    EXPECT_GT(stats.energyPj, 0.0);
    EXPECT_TRUE(PrecisionSet::rps4to16().contains(stats.precision));
}

TEST_F(CoreFixture, LowerPrecisionSetsAreCheaper)
{
    TwoInOneSystem system(*net_, workloads::resNet18Cifar(),
                          PrecisionSet::rps4to16());
    double e_full = system.avgEnergyPjPerInference();
    system.controller().setPrecisionSet(PrecisionSet::rps4to8());
    double e_low = system.avgEnergyPjPerInference();
    system.controller().setPrecisionSet(PrecisionSet::static4());
    double e_static = system.avgEnergyPjPerInference();
    EXPECT_LT(e_low, e_full);
    EXPECT_LT(e_static, e_low);
}

TEST_F(CoreFixture, EnergyAtIsMonotoneInPrecision)
{
    TwoInOneSystem system(*net_, workloads::resNet18Cifar(),
                          PrecisionSet::rps4to16());
    EXPECT_LT(system.energyPjAt(4), system.energyPjAt(8));
    EXPECT_LT(system.energyPjAt(8), system.energyPjAt(16));
    EXPECT_LT(system.cyclesAt(4), system.cyclesAt(16));
}

TEST(Tradeoff, ConditionToSetMapping)
{
    EXPECT_EQ(precisionSetFor(SafetyCondition::Hostile).maxBits(), 16);
    EXPECT_EQ(precisionSetFor(SafetyCondition::Elevated).maxBits(), 12);
    EXPECT_EQ(precisionSetFor(SafetyCondition::Normal).maxBits(), 8);
    EXPECT_EQ(precisionSetFor(SafetyCondition::Safe).size(), 1u);
    EXPECT_STREQ(safetyConditionName(SafetyCondition::Hostile),
                 "hostile");
}

TEST(Tradeoff, CurveIsEfficiencyOrdered)
{
    Rng rng(77);
    ModelConfig mcfg;
    mcfg.baseWidth = 4;
    mcfg.precisions = PrecisionSet::rps4to16();
    Network net = convNetTiny(mcfg, rng);

    SyntheticConfig dcfg;
    dcfg.trainSize = 64;
    dcfg.testSize = 48;
    DatasetPair data = makeSynthetic(dcfg, "tradeoff");

    TwoInOneSystem system(net, workloads::resNet18Cifar(),
                          PrecisionSet::rps4to16());
    AttackConfig acfg = AttackConfig::fromEps255(8.0f, 2.0f, 2);
    PgdAttack attack(acfg);

    auto points = evaluateTradeoffCurve(system, data.test, attack, rng);
    ASSERT_EQ(points.size(), 4u);
    // Efficiency strictly improves from hostile -> safe.
    for (size_t i = 1; i < points.size(); ++i)
        EXPECT_GT(points[i].normalizedEfficiency,
                  points[i - 1].normalizedEfficiency);
    // The hostile point is the reference (1.0x).
    EXPECT_NEAR(points[0].normalizedEfficiency, 1.0, 1e-9);
    // The controller's set is restored.
    EXPECT_EQ(system.controller().precisionSet().name(),
              PrecisionSet::rps4to16().name());
}

} // namespace
} // namespace twoinone
