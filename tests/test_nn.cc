/**
 * @file
 * Unit tests for the nn substrate: forward shapes, numerical gradient
 * checks for every layer, SBN bank behaviour, losses, SGD, and the
 * network precision switch.
 */

#include <gtest/gtest.h>

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv2d.hh"
#include "nn/linear.hh"
#include "nn/loss.hh"
#include "nn/model_zoo.hh"
#include "nn/pooling.hh"
#include "nn/residual.hh"
#include "nn/sgd.hh"
#include "tensor/ops.hh"
#include "test_util.hh"

namespace twoinone {
namespace {

using testutil::numericalGradient;
using testutil::relativeMaxError;

/** Sum-of-outputs scalar head used by input-gradient checks. */
float
sumForward(Layer &layer, const Tensor &x, bool train)
{
    Tensor y = layer.forward(x, train);
    return ops::sum(y);
}

/** Analytic input gradient of the sum-of-outputs objective. */
Tensor
analyticInputGrad(Layer &layer, const Tensor &x, bool train)
{
    Tensor y = layer.forward(x, train);
    Tensor g = Tensor::ones(y.shape());
    return layer.backward(g);
}

TEST(Conv2d, OutputShape)
{
    Rng rng(1);
    Conv2d conv(3, 8, 3, 1, 1, false, rng);
    Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
    Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.dim(0), 2);
    EXPECT_EQ(y.dim(1), 8);
    EXPECT_EQ(y.dim(2), 8);
    EXPECT_EQ(y.dim(3), 8);
}

TEST(Conv2d, StridedOutputShape)
{
    Rng rng(1);
    Conv2d conv(4, 6, 3, 2, 1, false, rng);
    Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
    Tensor y = conv.forward(x, false);
    EXPECT_EQ(y.dim(2), 4);
    EXPECT_EQ(y.dim(3), 4);
}

TEST(Conv2d, IdentityKernelReproducesInput)
{
    Rng rng(1);
    Conv2d conv(1, 1, 1, 1, 0, false, rng);
    conv.weight().value[0] = 1.0f;
    Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
    Tensor y = conv.forward(x, false);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_NEAR(y[i], x[i], 1e-6f);
}

TEST(Conv2d, InputGradientMatchesNumerical)
{
    Rng rng(2);
    Conv2d conv(2, 3, 3, 1, 1, true, rng);
    Tensor x = Tensor::randn({1, 2, 4, 4}, rng);

    Tensor analytic = analyticInputGrad(conv, x, false);
    Tensor numeric = numericalGradient(
        [&](const Tensor &xv) { return sumForward(conv, xv, false); }, x);
    EXPECT_LT(relativeMaxError(analytic, numeric), 2e-2f);
}

TEST(Conv2d, WeightGradientMatchesNumerical)
{
    Rng rng(3);
    Conv2d conv(2, 2, 3, 1, 1, false, rng);
    Tensor x = Tensor::randn({1, 2, 4, 4}, rng);

    conv.zeroGrad();
    Tensor y = conv.forward(x, false);
    conv.backward(Tensor::ones(y.shape()));
    Tensor analytic = conv.weight().grad;

    Tensor w0 = conv.weight().value;
    Tensor numeric = numericalGradient(
        [&](const Tensor &wv) {
            conv.weight().value = wv;
            float v = sumForward(conv, x, false);
            conv.weight().value = w0;
            return v;
        },
        w0);
    EXPECT_LT(relativeMaxError(analytic, numeric), 2e-2f);
}

TEST(Conv2d, BiasGradientIsOutputCount)
{
    Rng rng(4);
    Conv2d conv(1, 2, 3, 1, 1, true, rng);
    Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
    conv.zeroGrad();
    Tensor y = conv.forward(x, false);
    conv.backward(Tensor::ones(y.shape()));
    // d(sum)/d(bias_k) = N * OH * OW = 2*4*4.
    EXPECT_NEAR(conv.bias().grad[0], 32.0f, 1e-4f);
    EXPECT_NEAR(conv.bias().grad[1], 32.0f, 1e-4f);
}

TEST(Conv2d, QuantizedForwardUsesGridWeights)
{
    Rng rng(5);
    Conv2d conv(1, 1, 1, 1, 0, false, rng);
    conv.weight().value[0] = 0.777f;
    QuantState qs;
    qs.weightBits = 2; // grid {-0.777, 0, 0.777}
    conv.setQuantState(qs);
    Tensor x = Tensor::ones({1, 1, 2, 2});
    Tensor y = conv.forward(x, false);
    EXPECT_NEAR(y[0], 0.777f, 1e-6f);
}

TEST(Linear, ForwardMatchesHandComputed)
{
    Rng rng(6);
    Linear lin(2, 2, true, rng);
    lin.weight().value.at2(0, 0) = 1.0f;
    lin.weight().value.at2(0, 1) = 2.0f;
    lin.weight().value.at2(1, 0) = -1.0f;
    lin.weight().value.at2(1, 1) = 0.5f;
    lin.bias().value[0] = 0.1f;
    lin.bias().value[1] = -0.2f;
    Tensor x({1, 2});
    x.at2(0, 0) = 3.0f;
    x.at2(0, 1) = 4.0f;
    Tensor y = lin.forward(x, false);
    EXPECT_NEAR(y.at2(0, 0), 11.1f, 1e-5f);
    EXPECT_NEAR(y.at2(0, 1), -1.2f, 1e-5f);
}

TEST(Linear, GradientsMatchNumerical)
{
    Rng rng(7);
    Linear lin(3, 4, true, rng);
    Tensor x = Tensor::randn({2, 3}, rng);

    Tensor analytic_in = analyticInputGrad(lin, x, false);
    Tensor numeric_in = numericalGradient(
        [&](const Tensor &xv) { return sumForward(lin, xv, false); }, x);
    EXPECT_LT(relativeMaxError(analytic_in, numeric_in), 2e-2f);

    lin.zeroGrad();
    Tensor y = lin.forward(x, false);
    lin.backward(Tensor::ones(y.shape()));
    Tensor w0 = lin.weight().value;
    Tensor numeric_w = numericalGradient(
        [&](const Tensor &wv) {
            lin.weight().value = wv;
            float v = sumForward(lin, x, false);
            lin.weight().value = w0;
            return v;
        },
        w0);
    EXPECT_LT(relativeMaxError(lin.weight().grad, numeric_w), 2e-2f);
}

TEST(ReLU, ForwardAndMask)
{
    ReLU relu;
    Tensor x({4});
    x[0] = -1.0f; x[1] = 0.0f; x[2] = 2.0f; x[3] = -0.5f;
    Tensor y = relu.forward(x, false);
    EXPECT_EQ(y[0], 0.0f);
    EXPECT_EQ(y[2], 2.0f);
    Tensor g = relu.backward(Tensor::ones(x.shape()));
    EXPECT_EQ(g[0], 0.0f);
    EXPECT_EQ(g[2], 1.0f);
}

TEST(ActQuant, IdentityAtFullPrecision)
{
    ActQuant q;
    Rng rng(8);
    Tensor x = Tensor::randn({16}, rng);
    Tensor y = q.forward(x, false);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(y[i], x[i]);
}

TEST(ActQuant, QuantizesAtLowPrecision)
{
    ActQuant q;
    QuantState qs;
    qs.actBits = 2;
    q.setQuantState(qs);
    Tensor x({4});
    x[0] = 0.0f; x[1] = 0.3f; x[2] = 0.6f; x[3] = 0.9f;
    Tensor y = q.forward(x, false);
    // 2-bit unsigned grid over [0, 0.9]: step 0.3.
    EXPECT_NEAR(y[1], 0.3f, 1e-6f);
    EXPECT_NEAR(y[3], 0.9f, 1e-6f);
}

TEST(BatchNorm, TrainNormalizesBatch)
{
    SwitchableBatchNorm2d bn(2, 1);
    Rng rng(9);
    Tensor x = Tensor::randn({4, 2, 3, 3}, rng, 2.0f);
    Tensor y = bn.forward(x, true);
    // Per-channel mean ~0, var ~1.
    for (int c = 0; c < 2; ++c) {
        double s = 0.0, s2 = 0.0;
        int m = 4 * 3 * 3;
        for (int n = 0; n < 4; ++n)
            for (int h = 0; h < 3; ++h)
                for (int w = 0; w < 3; ++w) {
                    double v = y.at4(n, c, h, w);
                    s += v;
                    s2 += v * v;
                }
        EXPECT_NEAR(s / m, 0.0, 1e-4);
        EXPECT_NEAR(s2 / m, 1.0, 1e-2);
    }
}

TEST(BatchNorm, EvalUsesRunningStats)
{
    SwitchableBatchNorm2d bn(1, 1);
    Rng rng(10);
    // Train a few times to move the running stats.
    for (int i = 0; i < 20; ++i) {
        Tensor x = Tensor::randn({8, 1, 2, 2}, rng);
        ops::addScalar(x, 3.0f);
        bn.forward(ops::addScalar(x, 3.0f), true);
    }
    // In eval, a constant input maps deterministically.
    Tensor x0 = Tensor::full({1, 1, 2, 2}, 3.0f);
    Tensor y1 = bn.forward(x0, false);
    Tensor y2 = bn.forward(x0, false);
    for (size_t i = 0; i < y1.size(); ++i)
        EXPECT_EQ(y1[i], y2[i]);
}

TEST(BatchNorm, TrainInputGradientMatchesNumerical)
{
    // NOTE: a plain sum of BN outputs is constant wrt the input (the
    // normalized activations sum to zero per channel), so the test
    // uses a fixed random weighting as a non-degenerate objective.
    SwitchableBatchNorm2d bn(2, 1);
    Rng rng(11);
    Tensor x = Tensor::randn({3, 2, 2, 2}, rng);
    Tensor w = Tensor::randn({3, 2, 2, 2}, rng);

    // Randomize gamma/beta so the test is not trivial.
    std::vector<Parameter *> ps;
    bn.collectParameters(ps);
    for (Parameter *p : ps)
        for (size_t i = 0; i < p->value.size(); ++i)
            p->value[i] = static_cast<float>(rng.uniform(0.5, 1.5));

    bn.forward(x, true);
    Tensor analytic = bn.backward(w);
    Tensor numeric = numericalGradient(
        [&](const Tensor &xv) {
            Tensor y = bn.forward(xv, true);
            return ops::sum(ops::mul(y, w));
        },
        x, 1e-2f);
    EXPECT_LT(relativeMaxError(analytic, numeric), 5e-2f);
}

TEST(BatchNorm, EvalInputGradientMatchesNumerical)
{
    SwitchableBatchNorm2d bn(2, 1);
    Rng rng(12);
    // Seed running stats.
    for (int i = 0; i < 5; ++i)
        bn.forward(Tensor::randn({4, 2, 2, 2}, rng), true);

    Tensor x = Tensor::randn({2, 2, 2, 2}, rng);
    Tensor analytic = analyticInputGrad(bn, x, false);
    Tensor numeric = numericalGradient(
        [&](const Tensor &xv) { return sumForward(bn, xv, false); }, x);
    EXPECT_LT(relativeMaxError(analytic, numeric), 2e-2f);
}

TEST(BatchNorm, SbnBanksAreIndependent)
{
    SwitchableBatchNorm2d bn(1, 3);
    Rng rng(13);

    QuantState qs;
    qs.bnIndex = 1;
    bn.setQuantState(qs);
    for (int i = 0; i < 10; ++i)
        bn.forward(ops::addScalar(Tensor::randn({8, 1, 2, 2}, rng), 5.0f),
                   true);

    // Bank 1 moved toward mean 5; banks 0 and 2 untouched.
    EXPECT_GT(bn.runningMean(1)[0], 1.0f);
    EXPECT_EQ(bn.runningMean(0)[0], 0.0f);
    EXPECT_EQ(bn.runningMean(2)[0], 0.0f);
}

TEST(Pooling, GlobalAvgPoolForwardBackward)
{
    GlobalAvgPool pool;
    Tensor x({1, 2, 2, 2});
    for (size_t i = 0; i < x.size(); ++i)
        x[i] = static_cast<float>(i);
    Tensor y = pool.forward(x, false);
    EXPECT_EQ(y.ndim(), 2);
    EXPECT_NEAR(y.at2(0, 0), 1.5f, 1e-6f); // mean of 0..3
    EXPECT_NEAR(y.at2(0, 1), 5.5f, 1e-6f); // mean of 4..7

    Tensor g = pool.backward(Tensor::ones({1, 2}));
    for (size_t i = 0; i < g.size(); ++i)
        EXPECT_NEAR(g[i], 0.25f, 1e-6f);
}

TEST(Pooling, AvgPool2x2)
{
    AvgPool2x2 pool;
    Tensor x({1, 1, 2, 2});
    x[0] = 1.0f; x[1] = 2.0f; x[2] = 3.0f; x[3] = 4.0f;
    Tensor y = pool.forward(x, false);
    EXPECT_NEAR(y[0], 2.5f, 1e-6f);
    Tensor g = pool.backward(Tensor::ones(y.shape()));
    for (size_t i = 0; i < g.size(); ++i)
        EXPECT_NEAR(g[i], 0.25f, 1e-6f);
}

TEST(Pooling, FlattenRoundTrip)
{
    Flatten fl;
    Rng rng(14);
    Tensor x = Tensor::randn({2, 3, 2, 2}, rng);
    Tensor y = fl.forward(x, false);
    EXPECT_EQ(y.dim(0), 2);
    EXPECT_EQ(y.dim(1), 12);
    Tensor g = fl.backward(y);
    EXPECT_TRUE(g.sameShape(x));
}

TEST(PreActBlock, IdentityShapePreserved)
{
    Rng rng(15);
    PreActBlock block(4, 4, 1, 1, rng);
    EXPECT_FALSE(block.hasProjection());
    Tensor x = Tensor::randn({2, 4, 4, 4}, rng);
    Tensor y = block.forward(x, false);
    EXPECT_TRUE(y.sameShape(x));
}

TEST(PreActBlock, ProjectionOnDownsample)
{
    Rng rng(16);
    PreActBlock block(4, 8, 2, 1, rng);
    EXPECT_TRUE(block.hasProjection());
    Tensor x = Tensor::randn({2, 4, 4, 4}, rng);
    Tensor y = block.forward(x, false);
    EXPECT_EQ(y.dim(1), 8);
    EXPECT_EQ(y.dim(2), 2);
}

TEST(PreActBlock, InputGradientMatchesNumericalIdentity)
{
    Rng rng(17);
    PreActBlock block(2, 2, 1, 1, rng);
    // Seed BN running stats, then check in eval mode (deterministic).
    for (int i = 0; i < 5; ++i)
        block.forward(Tensor::randn({4, 2, 4, 4}, rng), true);
    Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
    Tensor analytic = analyticInputGrad(block, x, false);
    Tensor numeric = numericalGradient(
        [&](const Tensor &xv) { return sumForward(block, xv, false); }, x,
        1e-2f);
    EXPECT_LT(relativeMaxError(analytic, numeric), 5e-2f);
}

TEST(PreActBlock, InputGradientMatchesNumericalProjection)
{
    Rng rng(18);
    PreActBlock block(2, 4, 2, 1, rng);
    for (int i = 0; i < 5; ++i)
        block.forward(Tensor::randn({4, 2, 4, 4}, rng), true);
    Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
    Tensor analytic = analyticInputGrad(block, x, false);
    Tensor numeric = numericalGradient(
        [&](const Tensor &xv) { return sumForward(block, xv, false); }, x,
        1e-2f);
    EXPECT_LT(relativeMaxError(analytic, numeric), 5e-2f);
}

TEST(Loss, SoftmaxRowsSumToOne)
{
    Rng rng(19);
    Tensor logits = Tensor::randn({3, 5}, rng, 3.0f);
    Tensor p = softmax(logits);
    for (int i = 0; i < 3; ++i) {
        double s = 0.0;
        for (int j = 0; j < 5; ++j)
            s += p.at2(i, j);
        EXPECT_NEAR(s, 1.0, 1e-5);
    }
}

TEST(Loss, CrossEntropyOfPerfectPredictionIsSmall)
{
    Tensor logits({1, 3});
    logits.at2(0, 1) = 20.0f;
    SoftmaxCrossEntropy loss;
    EXPECT_LT(loss.forward(logits, {1}), 1e-4f);
}

TEST(Loss, CrossEntropyGradientMatchesNumerical)
{
    Rng rng(20);
    Tensor logits = Tensor::randn({2, 4}, rng);
    std::vector<int> labels = {1, 3};
    SoftmaxCrossEntropy loss;
    loss.forward(logits, labels);
    Tensor analytic = loss.backward();
    Tensor numeric = numericalGradient(
        [&](const Tensor &lv) {
            SoftmaxCrossEntropy l2;
            return l2.forward(lv, labels);
        },
        logits);
    EXPECT_LT(relativeMaxError(analytic, numeric), 2e-2f);
}

TEST(Loss, CwMarginGradientMatchesNumerical)
{
    Rng rng(21);
    Tensor logits = Tensor::randn({3, 4}, rng);
    std::vector<int> labels = {0, 2, 1};
    CwMarginLoss loss(0.0f);
    loss.forward(logits, labels);
    Tensor analytic = loss.backward();
    Tensor numeric = numericalGradient(
        [&](const Tensor &lv) {
            CwMarginLoss l2(0.0f);
            return l2.forward(lv, labels);
        },
        logits);
    EXPECT_LT(relativeMaxError(analytic, numeric), 2e-2f);
}

TEST(Sgd, SingleStepWithoutMomentum)
{
    Parameter p(Tensor::full({2}, 1.0f));
    p.grad.fill(0.5f);
    Sgd sgd(0.1f, 0.0f, 0.0f);
    sgd.step({&p});
    EXPECT_NEAR(p.value[0], 0.95f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates)
{
    Parameter p(Tensor::full({1}, 0.0f));
    Sgd sgd(1.0f, 0.5f, 0.0f);
    p.grad.fill(1.0f);
    sgd.step({&p}); // v=1, p=-1
    p.grad.fill(1.0f);
    sgd.step({&p}); // v=1.5, p=-2.5
    EXPECT_NEAR(p.value[0], -2.5f, 1e-6f);
}

TEST(Sgd, WeightDecayPullsTowardZero)
{
    Parameter p(Tensor::full({1}, 2.0f));
    p.grad.fill(0.0f);
    Sgd sgd(0.1f, 0.0f, 0.5f);
    sgd.step({&p});
    EXPECT_LT(p.value[0], 2.0f);
}

TEST(Network, ForwardShapeAndPredict)
{
    Rng rng(22);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    Network net = convNetTiny(cfg, rng);
    Tensor x = Tensor::randn({3, 3, 8, 8}, rng);
    Tensor y = net.forward(x, false);
    EXPECT_EQ(y.dim(0), 3);
    EXPECT_EQ(y.dim(1), 10);
    std::vector<int> pred = net.predict(x);
    EXPECT_EQ(pred.size(), 3u);
}

TEST(Network, PrecisionSwitchChangesOutputs)
{
    Rng rng(23);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    Network net = convNetTiny(cfg, rng);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);

    net.setPrecision(0);
    Tensor y_fp = net.forward(x, false);
    net.setPrecision(4);
    Tensor y_q4 = net.forward(x, false);
    EXPECT_GT(ops::linfDistance(y_fp, y_q4), 0.0f);
}

TEST(Network, PrecisionZeroRestoresFullPrecision)
{
    Rng rng(24);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    Network net = convNetTiny(cfg, rng);
    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);

    Tensor y1 = net.forward(x, false);
    net.setPrecision(8);
    net.forward(x, false);
    net.setPrecision(0);
    Tensor y2 = net.forward(x, false);
    EXPECT_NEAR(ops::linfDistance(y1, y2), 0.0f, 1e-6f);
}

TEST(Network, BnBanksCountsPrecisionsPlusFp)
{
    Rng rng(25);
    ModelConfig cfg;
    cfg.precisions = PrecisionSet({4, 8});
    Network net = convNetTiny(cfg, rng);
    EXPECT_EQ(net.bnBanks(), 3);
}

TEST(Network, EndToEndInputGradient)
{
    Rng rng(26);
    ModelConfig cfg;
    cfg.baseWidth = 2;
    cfg.numClasses = 3;
    Network net = convNetTiny(cfg, rng);
    // Seed BN stats for a deterministic eval-mode check.
    for (int i = 0; i < 5; ++i)
        net.forward(Tensor::randn({4, 3, 8, 8}, rng), true);

    Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
    std::vector<int> labels = {1};

    Tensor logits = net.forward(x, false);
    SoftmaxCrossEntropy loss;
    loss.forward(logits, labels);
    Tensor analytic = net.backward(loss.backward());

    Tensor numeric = numericalGradient(
        [&](const Tensor &xv) {
            Tensor l = net.forward(xv, false);
            SoftmaxCrossEntropy sl;
            return sl.forward(l, labels);
        },
        x, 1e-2f);
    // End-to-end float32 error accumulates across ~10 layers; the
    // per-layer checks above are the tight ones.
    EXPECT_LT(relativeMaxError(analytic, numeric), 1e-1f);
}

TEST(ModelZoo, ParameterCountsOrdering)
{
    Rng rng(27);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    Network tiny = convNetTiny(cfg, rng);
    Network pre = preActResNetMini(cfg, rng);
    Network wide = wideResNetMini(cfg, rng);
    EXPECT_LT(tiny.parameterCount(), pre.parameterCount());
    EXPECT_LT(pre.parameterCount(), wide.parameterCount());
}

TEST(ModelZoo, ResNetMiniHandlesImageNetLikeInput)
{
    Rng rng(28);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    cfg.numClasses = 16;
    Network net = resNetMini(cfg, rng);
    Tensor x = Tensor::randn({2, 3, 12, 12}, rng);
    Tensor y = net.forward(x, false);
    EXPECT_EQ(y.dim(1), 16);
}

TEST(ModelZoo, TrainingReducesLoss)
{
    Rng rng(29);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    cfg.numClasses = 2;
    Network net = convNetTiny(cfg, rng);

    // Two linearly separable blobs rendered as images.
    Tensor x({16, 3, 8, 8});
    std::vector<int> y(16);
    for (int i = 0; i < 16; ++i) {
        float base = (i % 2 == 0) ? 0.2f : 0.8f;
        y[static_cast<size_t>(i)] = i % 2;
        for (int c = 0; c < 3; ++c)
            for (int h = 0; h < 8; ++h)
                for (int w = 0; w < 8; ++w)
                    x.at4(i, c, h, w) =
                        base + static_cast<float>(rng.normal(0.0, 0.05));
    }

    Sgd sgd(0.1f, 0.9f, 0.0f);
    SoftmaxCrossEntropy loss;
    float first = 0.0f, last = 0.0f;
    for (int it = 0; it < 30; ++it) {
        Tensor logits = net.forward(x, true);
        float l = loss.forward(logits, y);
        if (it == 0)
            first = l;
        last = l;
        net.zeroGrad();
        net.backward(loss.backward());
        sgd.step(net.parameters());
        net.zeroGrad();
    }
    EXPECT_LT(last, first * 0.5f);
}

} // namespace
} // namespace twoinone
