/**
 * @file
 * Tests for the asynchronous multi-tenant serving front-end
 * (serve/server.hh): adaptive micro-batch closing (size vs age vs
 * flush), deadline load shedding before compute, admission control,
 * fair round-robin scheduling across tenants, bit-identity with the
 * synchronous drain at every candidate precision, clean shutdown with
 * in-flight requests, and a multi-producer submit hammer. Every
 * batching decision runs against an injected ManualClock, so the
 * asserted quantities are deterministic — including under the
 * TWOINONE_THREADS=1/4 and TWOINONE_BACKEND=naive ctest matrix and
 * under TSan.
 */

#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "common/clock.hh"
#include "nn/model_zoo.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "serve/server.hh"
#include "serve/session.hh"

namespace twoinone {
namespace {

Network
makeTinyNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    return convNetTiny(cfg, rng);
}

Tensor
makeInput(uint64_t seed, int batch = 4)
{
    Rng rng(seed);
    return Tensor::uniform({batch, 3, 8, 8}, rng, 0.0f, 1.0f);
}

void
expectBitIdentical(const Tensor &a, const Tensor &b,
                   const std::string &what)
{
    ASSERT_EQ(a.shape(), b.shape()) << what;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << " i=" << i;
}

SessionConfig
tenantConfig(uint64_t seed, int max_batch = 8, int micro_batch = 4)
{
    SessionConfig cfg;
    cfg.serving.maxBatch = max_batch;
    cfg.serving.microBatch = micro_batch;
    cfg.serving.seed = seed;
    cfg.serving.lazyPlanWarmup = true;
    cfg.inputShape = {3, 8, 8};
    return cfg;
}

/** A frozen clock + paused start make batch composition a pure
 * function of the submission order. */
serve::ServerConfig
frozenConfig(const ManualClock &clock, double delay_us = 0.0)
{
    serve::ServerConfig sc;
    sc.clock = &clock;
    sc.maxBatchDelayUs = delay_us;
    sc.startPaused = true;
    return sc;
}

/** With the clock frozen and age close armed, nothing closes until
 * the clock moves — and then everything pending serves as ONE batch:
 * a premature per-request close would show up as extra batches (and
 * differing per-batch precision draws). */
TEST(Server, ClosesOnAgeOnlyWhenTheClockSaysSo)
{
    Network net = makeTinyNet(11);
    ManualClock clock;
    serve::Server server(frozenConfig(clock, /*delay_us=*/100.0));
    Session session = Session::attach(net, tenantConfig(21));
    int tenant = server.addTenant(session);

    std::future<serve::Reply> f1 =
        server.submit(tenant, makeInput(1, 2));
    std::future<serve::Reply> f2 =
        server.submit(tenant, makeInput(2, 2));

    // 4 of 8 rows pending: under the frozen clock this batch can only
    // close on age, and the clock has not moved yet.
    clock.advanceUs(101);
    server.resume();

    serve::Reply r1 = f1.get();
    serve::Reply r2 = f2.get();
    serve::ServeStats s = server.stats();
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.rows, 4u);
    EXPECT_EQ(s.shed, 0u);
    EXPECT_EQ(r1.precision, r2.precision); // one draw for the batch
    server.stop();
}

/** A full batch closes on size with the clock frozen at zero — age
 * never fires, yet the requests serve. */
TEST(Server, ClosesOnSizeWithoutAnyClockMovement)
{
    Network net = makeTinyNet(12);
    ManualClock clock;
    serve::Server server(frozenConfig(clock, /*delay_us=*/1000.0));
    Session session = Session::attach(net, tenantConfig(22));
    int tenant = server.addTenant(session);

    std::future<serve::Reply> f1 =
        server.submit(tenant, makeInput(3, 4));
    std::future<serve::Reply> f2 =
        server.submit(tenant, makeInput(4, 4));
    server.resume();

    f1.get();
    f2.get();
    serve::ServeStats s = server.stats();
    EXPECT_EQ(s.batches, 1u); // 4 + 4 = maxBatch: one size close
    EXPECT_EQ(s.rows, 8u);
    server.stop();
}

/** An expired deadline sheds the request before compute: the future
 * delivers ServeError, no precision is drawn for it, and the shed is
 * counted. */
TEST(Server, DeadlineExpiryShedsBeforeCompute)
{
    Network net = makeTinyNet(13);
    ManualClock clock;
    serve::Server server(frozenConfig(clock));
    Session session = Session::attach(net, tenantConfig(23));
    int tenant = server.addTenant(session);

    std::future<serve::Reply> doomed =
        server.submit(tenant, makeInput(5, 2), /*deadline_us=*/100);
    clock.advanceUs(200); // past the deadline before any batch forms
    server.resume();
    server.flush();

    EXPECT_THROW(doomed.get(), serve::ServeError);
    serve::ServeStats s = server.stats();
    EXPECT_EQ(s.shed, 1u);
    EXPECT_EQ(s.batches, 0u); // the batch emptied: no compute, no draw
    EXPECT_TRUE(server.precisionTrace(tenant).empty());

    // The server keeps serving after the shed.
    std::future<serve::Reply> ok =
        server.submit(tenant, makeInput(6, 2), /*deadline_us=*/100);
    server.flush();
    EXPECT_EQ(ok.get().y.dim(0), 2);
    server.stop();
}

/** A full admission queue sheds at submit() with ServeError — counted,
 * and the queued requests still serve. */
TEST(Server, AdmissionControlShedsWhenQueueIsFull)
{
    Network net = makeTinyNet(14);
    ManualClock clock;
    serve::ServerConfig sc = frozenConfig(clock);
    sc.queueCapacity = 3;
    serve::Server server(sc);
    Session session = Session::attach(net, tenantConfig(24));
    int tenant = server.addTenant(session);

    std::vector<std::future<serve::Reply>> admitted;
    int sheds = 0;
    for (int i = 0; i < 5; ++i) {
        try {
            admitted.push_back(
                server.submit(tenant, makeInput(100 + i, 2)));
        } catch (const serve::ServeError &) {
            ++sheds;
        }
    }
    EXPECT_EQ(sheds, 2);
    EXPECT_EQ(server.stats().shed, 2u);

    server.resume();
    server.flush();
    for (auto &f : admitted)
        EXPECT_EQ(f.get().y.dim(0), 2);
    EXPECT_EQ(server.stats().rows, 6u);
    server.stop();
}

/** A malformed request is rejected synchronously at submit, counted,
 * and does not disturb the well-formed traffic around it. */
TEST(Server, MalformedRequestsRejectedWithoutDisruption)
{
    Network net = makeTinyNet(15);
    ManualClock clock;
    serve::Server server(frozenConfig(clock));
    Session session = Session::attach(net, tenantConfig(25));
    int tenant = server.addTenant(session);

    std::future<serve::Reply> good =
        server.submit(tenant, makeInput(7, 2));
    EXPECT_THROW(server.submit(tenant, Tensor({2, 3}, 0.5f)),
                 serve::ServeError); // wrong rank
    EXPECT_THROW(server.submit(tenant, makeInput(8, 9)),
                 serve::ServeError); // rows > maxBatch
    server.resume();
    server.flush();
    EXPECT_EQ(good.get().y.dim(0), 2);
    serve::ServeStats s = server.stats();
    EXPECT_EQ(s.rejected, 2u);
    EXPECT_EQ(s.shed, 0u);
    EXPECT_EQ(s.requests, 1u);
    server.stop();
}

/** Round-robin fairness: with both tenants backlogged, batch
 * completions alternate — the heavier tenant cannot starve the
 * lighter one. */
TEST(Server, FairSchedulingAcrossTwoTenants)
{
    Network net = makeTinyNet(16);
    ManualClock clock;
    serve::Server server(frozenConfig(clock));

    // Tenants of one model share its engine.
    Session a = Session::attach(net, tenantConfig(26));
    Session b =
        Session::attach(net, a.engine(), tenantConfig(27));
    int ta = server.addTenant(a);
    int tb = server.addTenant(b);

    // Every request fills a whole batch, so each turn serves exactly
    // one request. A floods; B sends two.
    for (int i = 0; i < 6; ++i)
        server.submit(ta, makeInput(200 + i, 8));
    for (int i = 0; i < 2; ++i)
        server.submit(tb, makeInput(300 + i, 8));
    server.resume();
    server.flush();

    std::vector<int> expected = {ta, tb, ta, tb, ta, ta, ta, ta};
    EXPECT_EQ(server.batchLog(), expected);
    EXPECT_EQ(server.tenantStats(ta).batches, 6u);
    EXPECT_EQ(server.tenantStats(tb).batches, 2u);
    // Per-tenant precision streams are independent and seeded.
    EXPECT_EQ(server.precisionTrace(ta).size(), 6u);
    EXPECT_EQ(server.precisionTrace(tb).size(), 2u);
    server.stop();
}

/** The async server reproduces the synchronous drain bit for bit:
 * same requests, same packing, same precision draws, same logits —
 * pinned per candidate by serving through single-candidate engines,
 * and across the full rps4to16 set via the seeded sampler. */
TEST(Server, BitIdenticalToSynchronousDrainAtEveryCandidate)
{
    // Mixed request sizes exercise the whole-request packing rule.
    const std::vector<int> rows = {4, 3, 8, 2, 5, 1, 6, 7};

    Network net = makeTinyNet(17);
    for (int bits : net.precisionSet().bits()) {
        // A single-candidate engine pins every draw to `bits`.
        RpsEngine engine(net, PrecisionSet({bits}));
        serve::ServeConfig scfg;
        scfg.maxBatch = 8;
        scfg.microBatch = 4;
        scfg.seed = 99;
        serve::ServingRuntime sync(net, engine, {3, 8, 8}, scfg);
        std::vector<size_t> ids;
        for (size_t i = 0; i < rows.size(); ++i)
            ids.push_back(sync.submit(
                makeInput(500 + i, rows[i])));
        sync.drain();

        ManualClock clock;
        serve::Server server(frozenConfig(clock));
        SessionConfig tcfg = tenantConfig(99);
        Session session = Session::attach(net, engine, tcfg);
        int tenant = server.addTenant(session);
        std::vector<std::future<serve::Reply>> futs;
        for (size_t i = 0; i < rows.size(); ++i)
            futs.push_back(server.submit(
                tenant, makeInput(500 + i, rows[i])));
        server.resume();
        server.flush();

        for (size_t i = 0; i < rows.size(); ++i) {
            serve::Reply r = futs[i].get();
            EXPECT_EQ(r.precision, bits);
            expectBitIdentical(sync.result(ids[i]), r.y,
                               "bits=" + std::to_string(bits) +
                                   " req=" + std::to_string(i));
        }
        EXPECT_EQ(server.precisionTrace(tenant),
                  sync.precisionTrace());
        server.stop();
    }

    // Full candidate set: the async tenant's seeded sampler replays
    // the sync runtime's draws, so packing AND precisions agree.
    RpsEngine engine(net);
    serve::ServeConfig scfg;
    scfg.maxBatch = 8;
    scfg.microBatch = 4;
    scfg.seed = 4242;
    serve::ServingRuntime sync(net, engine, {3, 8, 8}, scfg);
    std::vector<size_t> ids;
    for (size_t i = 0; i < rows.size(); ++i)
        ids.push_back(sync.submit(makeInput(600 + i, rows[i])));
    sync.drain();

    ManualClock clock;
    serve::Server server(frozenConfig(clock));
    Session session = Session::attach(net, engine, tenantConfig(4242));
    int tenant = server.addTenant(session);
    std::vector<std::future<serve::Reply>> futs;
    for (size_t i = 0; i < rows.size(); ++i)
        futs.push_back(
            server.submit(tenant, makeInput(600 + i, rows[i])));
    server.resume();
    server.flush();
    for (size_t i = 0; i < rows.size(); ++i)
        expectBitIdentical(sync.result(ids[i]), futs[i].get().y,
                           "rps req=" + std::to_string(i));
    EXPECT_EQ(server.precisionTrace(tenant), sync.precisionTrace());
    server.stop();
}

/** Stopping with requests still queued shed them all through their
 * futures — no hang, no leak (the ASan job runs this binary). */
TEST(Server, ShutdownShedsInFlightRequests)
{
    Network net = makeTinyNet(18);
    ManualClock clock;
    serve::Server server(frozenConfig(clock));
    Session session = Session::attach(net, tenantConfig(28));
    int tenant = server.addTenant(session);

    std::vector<std::future<serve::Reply>> futs;
    for (int i = 0; i < 5; ++i)
        futs.push_back(server.submit(tenant, makeInput(700 + i, 3)));
    server.stop(); // still paused: nothing was served

    for (auto &f : futs)
        EXPECT_THROW(f.get(), serve::ServeError);
    serve::ServeStats s = server.stats();
    EXPECT_EQ(s.shed, 5u);
    EXPECT_EQ(s.requests, 0u);
}

/** Destruction without an explicit stop() sheds the same way. */
TEST(Server, DestructorShedsWithoutExplicitStop)
{
    Network net = makeTinyNet(19);
    ManualClock clock;
    std::vector<std::future<serve::Reply>> futs;
    {
        serve::Server server(frozenConfig(clock));
        Session session = Session::attach(net, tenantConfig(29));
        int tenant = server.addTenant(session);
        for (int i = 0; i < 3; ++i)
            futs.push_back(
                server.submit(tenant, makeInput(800 + i, 2)));
    }
    for (auto &f : futs)
        EXPECT_THROW(f.get(), serve::ServeError);
}

/** Multi-producer hammer: N threads submit M requests each through
 * the sharded queue while the dispatcher serves. Every future
 * completes, nothing is shed or lost, and every reply matches the
 * engine's reference forward at the reply's own precision — correct
 * for any interleaving, deterministic in the counted quantities via
 * the frozen clock. */
TEST(Server, MultiProducerSubmitHammer)
{
    const int kThreads = 4;
    const int kPerThread = 16;

    Network net = makeTinyNet(20);
    {
        // Static activation scales: the per-request reference forward
        // below must not depend on which batch the request landed in.
        Rng cal_rng(61);
        Calibrator cal(net);
        cal.calibrate(
            {Tensor::uniform({8, 3, 8, 8}, cal_rng, 0.0f, 1.0f)});
    }
    RpsEngine engine(net, net.precisionSet());
    ManualClock clock;
    serve::ServerConfig sc;
    sc.clock = &clock; // frozen: batches close on size/flush only
    sc.maxBatchDelayUs = 0.0;
    sc.queueCapacity = kThreads * kPerThread;
    serve::Server server(sc);
    Session session = Session::attach(net, engine, tenantConfig(30));
    int tenant = server.addTenant(session);

    struct Sent
    {
        Tensor x;
        std::future<serve::Reply> fut;
    };
    std::vector<std::vector<Sent>> sent(
        static_cast<size_t>(kThreads));
    std::vector<std::thread> producers;
    producers.reserve(static_cast<size_t>(kThreads));
    for (int p = 0; p < kThreads; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerThread; ++i) {
                Sent s;
                s.x = makeInput(
                    static_cast<uint64_t>(1000 + p * 100 + i), 2);
                s.fut = server.submit(tenant, s.x);
                sent[static_cast<size_t>(p)].push_back(std::move(s));
            }
        });
    }
    for (std::thread &t : producers)
        t.join();
    server.flush();

    serve::ServeStats s = server.stats();
    EXPECT_EQ(s.requests,
              static_cast<uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(s.rows,
              static_cast<uint64_t>(kThreads * kPerThread * 2));
    EXPECT_EQ(s.shed, 0u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(server.precisionTrace(tenant).size(), s.batches);

    // Each reply must equal the reference forward at its own batch's
    // precision — independent of how the producers interleaved.
    for (auto &per_thread : sent) {
        for (Sent &rec : per_thread) {
            serve::Reply r = rec.fut.get();
            Tensor ref = engine.forwardQuantizedAt(r.precision, rec.x);
            expectBitIdentical(ref, r.y, "hammer");
        }
    }
    server.stop();
}

/** Round-robin stays the default policy: specs and servers predating
 * the knob keep their batch order bit-identical. */
TEST(Server, RoundRobinIsTheDefaultPolicy)
{
    serve::ServerConfig sc;
    EXPECT_EQ(sc.policy, serve::SchedulingPolicy::RoundRobin);
    EXPECT_STREQ(serve::schedulingPolicyName(sc.policy),
                 "round_robin");
    EXPECT_STREQ(serve::schedulingPolicyName(
                     serve::SchedulingPolicy::EarliestDeadlineFirst),
                 "edf");
}

/** EDF picks the tenant whose oldest pending request has the nearest
 * deadline; deadline-free tenants queue behind every deadline-bearing
 * one. The same submission order under round-robin alternates (the
 * fairness test above) — the policy genuinely changes the pick. */
TEST(Server, EdfServesTheDeadlineUrgentTenantFirst)
{
    Network net = makeTinyNet(33);
    ManualClock clock;
    serve::ServerConfig sc = frozenConfig(clock);
    sc.policy = serve::SchedulingPolicy::EarliestDeadlineFirst;
    serve::Server server(sc);

    Session a = Session::attach(net, tenantConfig(34));
    Session b = Session::attach(net, a.engine(), tenantConfig(35));
    Session c = Session::attach(net, a.engine(), tenantConfig(36));
    int ta = server.addTenant(a);
    int tb = server.addTenant(b);
    int tc = server.addTenant(c);

    // A floods first, without deadlines; B's deadline is looser than
    // C's. Every request fills a whole batch (one pick per turn).
    for (int i = 0; i < 3; ++i)
        server.submit(ta, makeInput(400 + i, 8));
    for (int i = 0; i < 2; ++i)
        server.submit(tb, makeInput(500 + i, 8),
                      /*deadline_us=*/800000);
    for (int i = 0; i < 2; ++i)
        server.submit(tc, makeInput(600 + i, 8),
                      /*deadline_us=*/400000);
    server.resume();
    server.flush();

    std::vector<int> expected = {tc, tc, tb, tb, ta, ta, ta};
    EXPECT_EQ(server.batchLog(), expected);
    EXPECT_EQ(server.tenantStats(ta).batches, 3u);
    EXPECT_EQ(server.tenantStats(tb).batches, 2u);
    EXPECT_EQ(server.tenantStats(tc).batches, 2u);
    EXPECT_EQ(server.stats().shed, 0u); // ordered, nothing expired
    server.stop();
}

/** With every tenant deadline-free, EDF ties resolve to the lowest
 * tenant id — deterministic, and a backlogged heavy tenant drains
 * before a later-registered one (documented starvation trade-off the
 * scheduling term of the autotuner weighs against round-robin). */
TEST(Server, EdfTiesResolveToTheLowestTenantId)
{
    Network net = makeTinyNet(37);
    ManualClock clock;
    serve::ServerConfig sc = frozenConfig(clock);
    sc.policy = serve::SchedulingPolicy::EarliestDeadlineFirst;
    serve::Server server(sc);

    Session a = Session::attach(net, tenantConfig(38));
    Session b = Session::attach(net, a.engine(), tenantConfig(39));
    int ta = server.addTenant(a);
    int tb = server.addTenant(b);

    for (int i = 0; i < 2; ++i)
        server.submit(ta, makeInput(700 + i, 8));
    for (int i = 0; i < 2; ++i)
        server.submit(tb, makeInput(800 + i, 8));
    server.resume();
    server.flush();

    std::vector<int> expected = {ta, ta, tb, tb};
    EXPECT_EQ(server.batchLog(), expected);
    server.stop();
}

/** pause() halts batch formation while admission stays open; resume()
 * serves the accumulated backlog. */
TEST(Server, PauseHoldsTrafficResumeReleasesIt)
{
    Network net = makeTinyNet(31);
    ManualClock clock;
    serve::Server server(frozenConfig(clock));
    Session session = Session::attach(net, tenantConfig(32));
    int tenant = server.addTenant(session);

    std::future<serve::Reply> f =
        server.submit(tenant, makeInput(900, 8));
    EXPECT_EQ(server.queued(tenant), 1u);
    EXPECT_EQ(server.stats().batches, 0u);
    server.resume();
    EXPECT_EQ(f.get().y.dim(0), 8);
    EXPECT_EQ(server.stats().batches, 1u);
    server.stop();
}

} // namespace
} // namespace twoinone
