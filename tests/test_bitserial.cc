/**
 * @file
 * Bit-true datapath tests: the cycle-accurate bit-serial unit, the
 * Bit Fusion spatial composition, and the proposed grouped MAC must
 * all be exactly equivalent to integer arithmetic across every
 * supported precision — the functional-correctness backbone of the
 * accelerator simulator.
 */

#include <gtest/gtest.h>

#include "accel/bitserial.hh"
#include "common/rng.hh"

namespace twoinone {
namespace {

TEST(BitSerialMultiplier, SimpleProducts)
{
    BitSerialMultiplier unit(4);
    EXPECT_EQ(unit.multiply(3, 5), 15);
    EXPECT_EQ(unit.multiply(7, 7), 49);
    EXPECT_EQ(unit.multiply(0, 9), 0);
    EXPECT_EQ(unit.multiply(1, 1), 1);
}

TEST(BitSerialMultiplier, SignHandling)
{
    BitSerialMultiplier unit(4);
    EXPECT_EQ(unit.multiply(-3, 5), -15);
    EXPECT_EQ(unit.multiply(3, -5), -15);
    EXPECT_EQ(unit.multiply(-3, -5), 15);
}

TEST(BitSerialMultiplier, TakesExactlySerialBitsCycles)
{
    BitSerialMultiplier unit(6);
    unit.load(33, 40);
    int cycles = 0;
    while (!unit.done()) {
        unit.step();
        ++cycles;
    }
    EXPECT_EQ(cycles, 6);
    EXPECT_EQ(unit.result(), 33 * 40);
}

TEST(BitSerialMultiplier, StepReportsProgress)
{
    BitSerialMultiplier unit(2);
    unit.load(1, 1);
    EXPECT_TRUE(unit.step());  // one bit left
    EXPECT_FALSE(unit.step()); // done
    EXPECT_TRUE(unit.done());
}

/** Exhaustive equivalence sweep per precision. */
class BitSerialSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BitSerialSweep, MatchesIntegerMultiply)
{
    int bits = GetParam();
    BitSerialMultiplier unit(bits);
    int qmax = (bits == 1) ? 1 : (1 << (bits - 1)) - 1;
    Rng rng(1000 + static_cast<uint64_t>(bits));
    for (int trial = 0; trial < 300; ++trial) {
        int64_t a = rng.uniformInt(-qmax, qmax);
        int64_t b = rng.uniformInt(-qmax, qmax);
        EXPECT_EQ(unit.multiply(a, b), a * b)
            << "bits=" << bits << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSerialWidths, BitSerialSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class ComposeSpatialSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ComposeSpatialSweep, MatchesIntegerMultiply)
{
    int bits = GetParam();
    int qmax = (bits == 1) ? 1 : (1 << (bits - 1)) - 1;
    Rng rng(2000 + static_cast<uint64_t>(bits));
    for (int trial = 0; trial < 300; ++trial) {
        int64_t a = rng.uniformInt(-qmax, qmax);
        int64_t b = rng.uniformInt(-qmax, qmax);
        EXPECT_EQ(composeSpatial(a, b, bits), a * b)
            << "bits=" << bits << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, ComposeSpatialSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12,
                                           16));

TEST(ComposeSpatial, BrickCountMatchesDecomposition)
{
    int bricks = 0;
    composeSpatial(3, 3, 2, &bricks);
    EXPECT_EQ(bricks, 1); // one 2-bit digit each
    composeSpatial(7, 7, 4, &bricks);
    EXPECT_EQ(bricks, 4); // 2x2 digits
    composeSpatial(100, 100, 8, &bricks);
    EXPECT_EQ(bricks, 16); // 4x4 digits
}

class GroupedMacSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(GroupedMacSweep, MultiOperandMacMatchesInteger)
{
    int bits = GetParam();
    int qmax = (bits == 1) ? 1 : (1 << (bits - 1)) - 1;
    GroupedMacDatapath mac(4);
    Rng rng(3000 + static_cast<uint64_t>(bits));
    for (int trial = 0; trial < 120; ++trial) {
        std::vector<int64_t> a(4), b(4);
        int64_t expect = 0;
        for (int i = 0; i < 4; ++i) {
            a[static_cast<size_t>(i)] = rng.uniformInt(-qmax, qmax);
            b[static_cast<size_t>(i)] = rng.uniformInt(-qmax, qmax);
            expect += a[static_cast<size_t>(i)] *
                      b[static_cast<size_t>(i)];
        }
        EXPECT_EQ(mac.macReduce(a, b, bits), expect) << "bits=" << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, GroupedMacSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                           12, 14, 16));

TEST(GroupedMac, PaperScheduleCycleCounts)
{
    // Fig. 4 and Sec. 3.2.1: 8-bit x 8-bit takes 4 cycles on ours.
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(8, 8), 4);
    // <= 4-bit runs serially over the precision.
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(4, 4), 4);
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(2, 2), 2);
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(3, 3), 3);
    // 6-bit: four 3x3 sub-products -> 3 cycles.
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(6, 6), 3);
    // 5-bit: (3+2) split -> 3 cycles.
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(5, 5), 3);
    // 7-bit: (4+3) split -> 4 cycles.
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(7, 7), 4);
    // 12-bit: four 6x6 chunks -> 12 cycles (Sec. 3.2.1 example).
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(12, 12), 12);
    // 16-bit: four 8x8 chunks -> 16 cycles.
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(16, 16), 16);
}

TEST(GroupedMac, AsymmetricPrecisions)
{
    // Paper: 4-bit x 2-bit takes two cycles per bit-serial unit.
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(4, 2), 2);
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(2, 4), 2);
    // 16-bit x 8-bit: two 8x8 chunk passes -> 8 cycles.
    EXPECT_EQ(GroupedMacDatapath::cyclesForPrecision(16, 8), 8);
}

TEST(GroupedMac, AsymmetricValuesAreExact)
{
    GroupedMacDatapath mac(4);
    Rng rng(4000);
    for (int trial = 0; trial < 100; ++trial) {
        int64_t a = rng.uniformInt(-127, 127);  // 8-bit
        int64_t b = rng.uniformInt(-7, 7);      // 4-bit
        // Execute at the max precision (datapath chunking rule).
        EXPECT_EQ(mac.macReduce({a}, {b}, 8), a * b);
    }
}

TEST(GroupedMac, FewerOperandsThanUnitsIsFine)
{
    GroupedMacDatapath mac(4);
    EXPECT_EQ(mac.macReduce({5}, {6}, 6), 30);
    EXPECT_EQ(mac.macReduce({5, -5}, {6, 6}, 6), 0);
}

} // namespace
} // namespace twoinone
