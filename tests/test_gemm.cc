/**
 * @file
 * Unit tests for the blocked/parallel GEMM backend against the naive
 * reference, over a shape grid that covers unit dimensions, tile-size
 * non-multiples, and zero-size edges.
 *
 * Tolerance note: naive and blocked both accumulate in float but in
 * different orders (blocked sums k in KC-sized register-tile blocks),
 * so they agree only to float rounding. For k <= 192 and O(1)-scale
 * operands the observed divergence is < 1e-6 relative; the asserts
 * use 1e-4 (the same bound test_tensor.cc uses between the matmul
 * variants) to stay slack-free across -march=native FMA contraction.
 * Within ONE backend, results must be bit-identical for any thread
 * count — that is asserted exactly, not with a tolerance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/thread_pool.hh"
#include "tensor/gemm.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace twoinone {
namespace {

float
relErr(const Tensor &a, const Tensor &b)
{
    float max_err = 0.0f, max_mag = 1e-8f;
    for (size_t i = 0; i < a.size(); ++i) {
        max_err = std::max(max_err, std::fabs(a[i] - b[i]));
        max_mag = std::max({max_mag, std::fabs(a[i]), std::fabs(b[i])});
    }
    return max_err / max_mag;
}

/** Run one (trans_a, trans_b) case through both backends and compare. */
void
compareBackends(bool ta, bool tb, int m, int n, int k, Rng &rng)
{
    // Stored shapes for the given transpose flags.
    Tensor a = Tensor::randn(ta ? std::vector<int>{k, m}
                                : std::vector<int>{m, k},
                             rng);
    Tensor b = Tensor::randn(tb ? std::vector<int>{n, k}
                                : std::vector<int>{k, n},
                             rng);
    int lda = ta ? m : k;
    int ldb = tb ? k : n;
    Tensor c_naive({m, n});
    Tensor c_blocked({m, n});
    gemm::sgemm(gemm::Backend::Naive, ta, tb, m, n, k, a.data(), lda,
                b.data(), ldb, c_naive.data(), n);
    gemm::sgemm(gemm::Backend::Blocked, ta, tb, m, n, k, a.data(), lda,
                b.data(), ldb, c_blocked.data(), n);
    EXPECT_LT(relErr(c_naive, c_blocked), 1e-4f)
        << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
        << " k=" << k;
}

TEST(Gemm, BlockedMatchesNaiveOverShapeGrid)
{
    Rng rng(11);
    // Unit dims, values straddling the MR=6 / NR=16 / MC=96 / KC=256
    // tile sizes, exact tile multiples, and sizes crossing the MC
    // row-block seam (m > 96) and the KC accumulate seam (k > 256) —
    // a boundary bug there would be invisible to the smaller shapes
    // and to the blocked-vs-blocked determinism test.
    const std::vector<int> ms = {1, 2, 3, 5, 17, 33, 64, 96, 97, 200};
    const std::vector<int> ns = {1, 3, 15, 16, 17, 48, 130};
    const std::vector<int> ks = {1, 2, 31, 64, 192, 300};
    for (int m : ms)
        for (int n : ns)
            for (int k : ks)
                for (int variant = 0; variant < 3; ++variant) {
                    bool ta = variant == 1;
                    bool tb = variant == 2;
                    compareBackends(ta, tb, m, n, k, rng);
                }
}

TEST(Gemm, ColumnBlockSeamBeyondNC)
{
    // n > NC = 1024 exercises the outer jc loop with more than one
    // column block (the shape grid stays below it for runtime).
    Rng rng(29);
    compareBackends(false, false, 70, 1100, 80, rng);
    compareBackends(false, true, 70, 1100, 80, rng);
}

TEST(Gemm, ZeroSizedDimensions)
{
    Rng rng(3);
    // k == 0: the product is empty, so C must become exactly zero.
    Tensor a({4, 0}), b({0, 5});
    Tensor c = ops::matmul(a, b);
    ASSERT_EQ(c.dim(0), 4);
    ASSERT_EQ(c.dim(1), 5);
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(c[i], 0.0f);

    // m == 0 and n == 0: empty outputs, no crash.
    Tensor c2 = ops::matmul(Tensor({0, 3}), Tensor::randn({3, 4}, rng));
    EXPECT_EQ(c2.dim(0), 0);
    EXPECT_EQ(c2.size(), 0u);
    Tensor c3 = ops::matmul(Tensor::randn({3, 4}, rng), Tensor({4, 0}));
    EXPECT_EQ(c3.dim(1), 0);
    EXPECT_EQ(c3.size(), 0u);
}

TEST(Gemm, AccumulateAddsOntoExistingOutput)
{
    Rng rng(5);
    int m = 33, n = 47, k = 65;
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    for (auto backend : {gemm::Backend::Naive, gemm::Backend::Blocked}) {
        Tensor once({m, n});
        gemm::sgemm(backend, false, false, m, n, k, a.data(), k, b.data(),
                    n, once.data(), n, /*accumulate=*/false);
        Tensor twice = once;
        gemm::sgemm(backend, false, false, m, n, k, a.data(), k, b.data(),
                    n, twice.data(), n, /*accumulate=*/true);
        // The naive path folds each product term directly into C, so
        // the accumulated result matches 2x only to float rounding.
        Tensor doubled({m, n});
        for (size_t i = 0; i < once.size(); ++i)
            doubled[i] = once[i] + once[i];
        EXPECT_LT(relErr(twice, doubled), 1e-5f)
            << gemm::backendName(backend);
    }
}

TEST(Gemm, FusedRowBias)
{
    Rng rng(7);
    int m = 19, n = 70, k = 40;
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({n, k}, rng); // used transposed
    Tensor bias = Tensor::randn({m}, rng);
    for (auto backend : {gemm::Backend::Naive, gemm::Backend::Blocked}) {
        Tensor plain({m, n});
        gemm::sgemm(backend, false, true, m, n, k, a.data(), k, b.data(),
                    k, plain.data(), n);
        Tensor biased({m, n});
        gemm::sgemm(backend, false, true, m, n, k, a.data(), k, b.data(),
                    k, biased.data(), n, false, bias.data());
        for (int i = 0; i < m; ++i)
            for (int j = 0; j < n; ++j)
                EXPECT_FLOAT_EQ(biased.at2(i, j),
                                plain.at2(i, j) + bias[static_cast<size_t>(
                                                      i)])
                    << gemm::backendName(backend);
    }
}

TEST(Gemm, BitIdenticalSerialVsParallel)
{
    // The blocked kernel's accumulation order is fixed by the KC loop
    // structure and parallelism only partitions disjoint row blocks,
    // so forcing the whole computation onto the calling thread must
    // reproduce the pooled result exactly — this is what makes
    // results reproducible across TWOINONE_THREADS settings (this
    // test also runs under TWOINONE_THREADS=1 and =8 via ctest).
    Rng rng(13);
    int m = 200, n = 150, k = 300; // several MC/KC blocks
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);

    Tensor c_par({m, n});
    gemm::sgemm(gemm::Backend::Blocked, false, false, m, n, k, a.data(), k,
                b.data(), n, c_par.data(), n);

    Tensor c_ser({m, n});
    {
        ThreadPool::ScopedSerial serial;
        gemm::sgemm(gemm::Backend::Blocked, false, false, m, n, k,
                    a.data(), k, b.data(), n, c_ser.data(), n);
    }
    for (size_t i = 0; i < c_par.size(); ++i)
        ASSERT_EQ(c_par[i], c_ser[i]) << "element " << i;
}

TEST(Gemm, OpsLayerRoutesThroughActiveBackend)
{
    // ops::matmul* must honor setActiveBackend (the bench harness and
    // the TWOINONE_BACKEND=naive ctest variants rely on it).
    Rng rng(17);
    Tensor a = Tensor::randn({40, 50}, rng);
    Tensor b = Tensor::randn({50, 60}, rng);
    gemm::Backend saved = gemm::activeBackend();
    gemm::setActiveBackend(gemm::Backend::Naive);
    Tensor c_naive = ops::matmul(a, b);
    gemm::setActiveBackend(gemm::Backend::Blocked);
    Tensor c_blocked = ops::matmul(a, b);
    gemm::setActiveBackend(saved);
    EXPECT_LT(relErr(c_naive, c_blocked), 1e-4f);
}

TEST(Gemm, TransposeVariantsAgainstEachOther)
{
    // ops::matmulTransposeA/B against explicitly transposed matmul,
    // at sizes large enough to hit the blocked path.
    Rng rng(19);
    int m = 70, k = 90, n = 80;
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c_ref = ops::matmul(a, b);

    Tensor bt({n, k});
    for (int i = 0; i < k; ++i)
        for (int j = 0; j < n; ++j)
            bt.at2(j, i) = b.at2(i, j);
    EXPECT_LT(relErr(ops::matmulTransposeB(a, bt), c_ref), 1e-4f);

    Tensor at({k, m});
    for (int i = 0; i < m; ++i)
        for (int j = 0; j < k; ++j)
            at.at2(j, i) = a.at2(i, j);
    EXPECT_LT(relErr(ops::matmulTransposeA(at, b), c_ref), 1e-4f);
}

} // namespace
} // namespace twoinone
