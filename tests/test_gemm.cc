/**
 * @file
 * Unit tests for the blocked/parallel GEMM backend against the naive
 * reference, over a shape grid that covers unit dimensions, tile-size
 * non-multiples, and zero-size edges.
 *
 * Tolerance note: naive and blocked both accumulate in float but in
 * different orders (blocked sums k in KC-sized register-tile blocks),
 * so they agree only to float rounding. For k <= 192 and O(1)-scale
 * operands the observed divergence is < 1e-6 relative; the asserts
 * use 1e-4 (the same bound test_tensor.cc uses between the matmul
 * variants) to stay slack-free across -march=native FMA contraction.
 * Within ONE backend, results must be bit-identical for any thread
 * count — that is asserted exactly, not with a tolerance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/thread_pool.hh"
#include "tensor/gemm.hh"
#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace twoinone {
namespace {

float
relErr(const Tensor &a, const Tensor &b)
{
    float max_err = 0.0f, max_mag = 1e-8f;
    for (size_t i = 0; i < a.size(); ++i) {
        max_err = std::max(max_err, std::fabs(a[i] - b[i]));
        max_mag = std::max({max_mag, std::fabs(a[i]), std::fabs(b[i])});
    }
    return max_err / max_mag;
}

/** Run one (trans_a, trans_b) case through both backends and compare. */
void
compareBackends(bool ta, bool tb, int m, int n, int k, Rng &rng)
{
    // Stored shapes for the given transpose flags.
    Tensor a = Tensor::randn(ta ? std::vector<int>{k, m}
                                : std::vector<int>{m, k},
                             rng);
    Tensor b = Tensor::randn(tb ? std::vector<int>{n, k}
                                : std::vector<int>{k, n},
                             rng);
    int lda = ta ? m : k;
    int ldb = tb ? k : n;
    Tensor c_naive({m, n});
    Tensor c_blocked({m, n});
    gemm::sgemm(gemm::Backend::Naive, ta, tb, m, n, k, a.data(), lda,
                b.data(), ldb, c_naive.data(), n);
    gemm::sgemm(gemm::Backend::Blocked, ta, tb, m, n, k, a.data(), lda,
                b.data(), ldb, c_blocked.data(), n);
    EXPECT_LT(relErr(c_naive, c_blocked), 1e-4f)
        << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
        << " k=" << k;
}

TEST(Gemm, BlockedMatchesNaiveOverShapeGrid)
{
    Rng rng(11);
    // Unit dims, values straddling the MR=6 / NR=16 / MC=96 / KC=256
    // tile sizes, exact tile multiples, and sizes crossing the MC
    // row-block seam (m > 96) and the KC accumulate seam (k > 256) —
    // a boundary bug there would be invisible to the smaller shapes
    // and to the blocked-vs-blocked determinism test.
    const std::vector<int> ms = {1, 2, 3, 5, 17, 33, 64, 96, 97, 200};
    const std::vector<int> ns = {1, 3, 15, 16, 17, 48, 130};
    const std::vector<int> ks = {1, 2, 31, 64, 192, 300};
    for (int m : ms)
        for (int n : ns)
            for (int k : ks)
                for (int variant = 0; variant < 3; ++variant) {
                    bool ta = variant == 1;
                    bool tb = variant == 2;
                    compareBackends(ta, tb, m, n, k, rng);
                }
}

TEST(Gemm, ColumnBlockSeamBeyondNC)
{
    // n > NC = 1024 exercises the outer jc loop with more than one
    // column block (the shape grid stays below it for runtime).
    Rng rng(29);
    compareBackends(false, false, 70, 1100, 80, rng);
    compareBackends(false, true, 70, 1100, 80, rng);
}

TEST(Gemm, ZeroSizedDimensions)
{
    Rng rng(3);
    // k == 0: the product is empty, so C must become exactly zero.
    Tensor a({4, 0}), b({0, 5});
    Tensor c = ops::matmul(a, b);
    ASSERT_EQ(c.dim(0), 4);
    ASSERT_EQ(c.dim(1), 5);
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(c[i], 0.0f);

    // m == 0 and n == 0: empty outputs, no crash.
    Tensor c2 = ops::matmul(Tensor({0, 3}), Tensor::randn({3, 4}, rng));
    EXPECT_EQ(c2.dim(0), 0);
    EXPECT_EQ(c2.size(), 0u);
    Tensor c3 = ops::matmul(Tensor::randn({3, 4}, rng), Tensor({4, 0}));
    EXPECT_EQ(c3.dim(1), 0);
    EXPECT_EQ(c3.size(), 0u);
}

TEST(Gemm, AccumulateAddsOntoExistingOutput)
{
    Rng rng(5);
    int m = 33, n = 47, k = 65;
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    for (auto backend : {gemm::Backend::Naive, gemm::Backend::Blocked}) {
        Tensor once({m, n});
        gemm::sgemm(backend, false, false, m, n, k, a.data(), k, b.data(),
                    n, once.data(), n, /*accumulate=*/false);
        Tensor twice = once;
        gemm::sgemm(backend, false, false, m, n, k, a.data(), k, b.data(),
                    n, twice.data(), n, /*accumulate=*/true);
        // The naive path folds each product term directly into C, so
        // the accumulated result matches 2x only to float rounding.
        Tensor doubled({m, n});
        for (size_t i = 0; i < once.size(); ++i)
            doubled[i] = once[i] + once[i];
        EXPECT_LT(relErr(twice, doubled), 1e-5f)
            << gemm::backendName(backend);
    }
}

TEST(Gemm, FusedRowBias)
{
    Rng rng(7);
    int m = 19, n = 70, k = 40;
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({n, k}, rng); // used transposed
    Tensor bias = Tensor::randn({m}, rng);
    for (auto backend : {gemm::Backend::Naive, gemm::Backend::Blocked}) {
        Tensor plain({m, n});
        gemm::sgemm(backend, false, true, m, n, k, a.data(), k, b.data(),
                    k, plain.data(), n);
        Tensor biased({m, n});
        gemm::sgemm(backend, false, true, m, n, k, a.data(), k, b.data(),
                    k, biased.data(), n, false, bias.data());
        for (int i = 0; i < m; ++i)
            for (int j = 0; j < n; ++j)
                EXPECT_FLOAT_EQ(biased.at2(i, j),
                                plain.at2(i, j) + bias[static_cast<size_t>(
                                                      i)])
                    << gemm::backendName(backend);
    }
}

TEST(Gemm, BitIdenticalSerialVsParallel)
{
    // The blocked kernel's accumulation order is fixed by the KC loop
    // structure and parallelism only partitions disjoint row blocks,
    // so forcing the whole computation onto the calling thread must
    // reproduce the pooled result exactly — this is what makes
    // results reproducible across TWOINONE_THREADS settings (this
    // test also runs under TWOINONE_THREADS=1 and =8 via ctest).
    Rng rng(13);
    int m = 200, n = 150, k = 300; // several MC/KC blocks
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);

    Tensor c_par({m, n});
    gemm::sgemm(gemm::Backend::Blocked, false, false, m, n, k, a.data(), k,
                b.data(), n, c_par.data(), n);

    Tensor c_ser({m, n});
    {
        ThreadPool::ScopedSerial serial;
        gemm::sgemm(gemm::Backend::Blocked, false, false, m, n, k,
                    a.data(), k, b.data(), n, c_ser.data(), n);
    }
    for (size_t i = 0; i < c_par.size(); ++i)
        ASSERT_EQ(c_par[i], c_ser[i]) << "element " << i;
}

TEST(Gemm, OpsLayerRoutesThroughActiveBackend)
{
    // ops::matmul* must honor setActiveBackend (the bench harness and
    // the TWOINONE_BACKEND=naive ctest variants rely on it).
    Rng rng(17);
    Tensor a = Tensor::randn({40, 50}, rng);
    Tensor b = Tensor::randn({50, 60}, rng);
    gemm::Backend saved = gemm::activeBackend();
    gemm::setActiveBackend(gemm::Backend::Naive);
    Tensor c_naive = ops::matmul(a, b);
    gemm::setActiveBackend(gemm::Backend::Blocked);
    Tensor c_blocked = ops::matmul(a, b);
    gemm::setActiveBackend(saved);
    EXPECT_LT(relErr(c_naive, c_blocked), 1e-4f);
}

TEST(Gemm, TransposeVariantsAgainstEachOther)
{
    // ops::matmulTransposeA/B against explicitly transposed matmul,
    // at sizes large enough to hit the blocked path.
    Rng rng(19);
    int m = 70, k = 90, n = 80;
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c_ref = ops::matmul(a, b);

    Tensor bt({n, k});
    for (int i = 0; i < k; ++i)
        for (int j = 0; j < n; ++j)
            bt.at2(j, i) = b.at2(i, j);
    EXPECT_LT(relErr(ops::matmulTransposeB(a, bt), c_ref), 1e-4f);

    Tensor at({k, m});
    for (int i = 0; i < m; ++i)
        for (int j = 0; j < k; ++j)
            at.at2(j, i) = a.at2(i, j);
    EXPECT_LT(relErr(ops::matmulTransposeA(at, b), c_ref), 1e-4f);
}

// ---------------------------------------------------------------------------
// Packed integer GEMM: every ISA tier the CPU offers must be
// bit-identical to the unpacked igemmTransB reference at every bit
// width — integer accumulation is exact in all tiers, so these are
// ASSERT_EQ, never a tolerance.
// ---------------------------------------------------------------------------

std::vector<gemm::IsaTier>
availableTiers()
{
    std::vector<gemm::IsaTier> tiers = {gemm::IsaTier::Scalar};
    if (gemm::detectedIsaTier() >= gemm::IsaTier::Avx2)
        tiers.push_back(gemm::IsaTier::Avx2);
    if (gemm::detectedIsaTier() >= gemm::IsaTier::Avx512Vnni)
        tiers.push_back(gemm::IsaTier::Avx512Vnni);
    return tiers;
}

/** RAII guard: tests override the dispatch tier, this puts it back. */
struct TierRestore
{
    gemm::IsaTier saved = gemm::activeIsaTier();
    ~TierRestore() { gemm::setActiveIsaTier(saved); }
};

int
signedQmax(int bits)
{
    return bits <= 1 ? 1 : (1 << (bits - 1)) - 1;
}

std::vector<int32_t>
randCodes(Rng &rng, size_t n, int lo, int hi)
{
    std::vector<int32_t> v(n);
    for (auto &x : v)
        x = rng.uniformInt(lo, hi);
    return v;
}

/** Packed (all tiers) vs unpacked reference, one (shape, widths) case. */
void
comparePackedAllTiers(int m, int n, int k, int w_bits, int a_bits, Rng &rng)
{
    const int qw = signedQmax(w_bits);
    const int qa = static_cast<int>((int64_t{1} << a_bits) - 1);
    std::vector<int32_t> wcodes =
        randCodes(rng, static_cast<size_t>(m) * k, -qw, qw);
    std::vector<int32_t> acodes =
        randCodes(rng, static_cast<size_t>(n) * k, 0, qa);
    const bool narrow = w_bits <= 8 && a_bits <= 8;
    std::vector<int64_t> ref(static_cast<size_t>(m) * n);
    std::vector<uint8_t> a8;
    std::vector<uint16_t> a16(acodes.begin(), acodes.end());
    if (narrow) {
        a8.assign(acodes.begin(), acodes.end());
        std::vector<int8_t> w8(wcodes.begin(), wcodes.end());
        gemm::igemmTransB(m, n, k, w8.data(), k, a8.data(), k, ref.data(),
                          n, w_bits, a_bits);
    } else {
        std::vector<int16_t> w16(wcodes.begin(), wcodes.end());
        gemm::igemmTransB(m, n, k, w16.data(), k, a16.data(), k, ref.data(),
                          n, w_bits, a_bits);
    }
    gemm::PackedIntWeights pack;
    gemm::packWeights(wcodes.data(), m, k, w_bits, pack);
    for (gemm::IsaTier tier : availableTiers()) {
        gemm::setActiveIsaTier(tier);
        if (narrow) {
            std::vector<int64_t> got(static_cast<size_t>(m) * n, -7);
            gemm::igemmPackedTransB(pack, n, a8.data(), k, got.data(), n,
                                    a_bits);
            for (size_t i = 0; i < ref.size(); ++i)
                ASSERT_EQ(ref[i], got[i])
                    << "u8 tier=" << gemm::isaTierName(tier) << " m=" << m
                    << " n=" << n << " k=" << k << " w_bits=" << w_bits
                    << " a_bits=" << a_bits << " i=" << i;
        }
        // The int16-packed overload serves every width (it is also the
        // fallback the AVX2 tier takes for maddubs-unsafe widths), so
        // cross-check it on narrow widths too.
        std::vector<int64_t> got16(static_cast<size_t>(m) * n, -7);
        gemm::igemmPackedTransB(pack, n, a16.data(), k, got16.data(), n,
                                a_bits);
        for (size_t i = 0; i < ref.size(); ++i)
            ASSERT_EQ(ref[i], got16[i])
                << "u16 tier=" << gemm::isaTierName(tier) << " m=" << m
                << " n=" << n << " k=" << k << " w_bits=" << w_bits
                << " a_bits=" << a_bits << " i=" << i;
    }
}

TEST(PackedIgemm, BitIdenticalToReferenceAcrossTiersAndWidths)
{
    Rng rng(23);
    TierRestore restore;
    // Tail/edge shapes: unit dims, m/n/k off every tile and group
    // multiple, one exact-tile shape, k crossing several 4-groups.
    const std::vector<std::array<int, 3>> shapes = {
        {1, 1, 1},   {3, 5, 7},    {16, 64, 36},
        {17, 19, 23}, {33, 7, 130}, {64, 16, 64}};
    for (const auto &s : shapes)
        for (int bits : {1, 2, 4, 5, 6, 8, 12, 16})
            comparePackedAllTiers(s[0], s[1], s[2], bits, bits, rng);
}

TEST(PackedIgemm, MixedWeightActivationWidths)
{
    Rng rng(29);
    TierRestore restore;
    // Off-diagonal (w_bits, a_bits) combos: maddubs-safe (2w x 8a),
    // maddubs-unsafe (8w x 8a is in the diagonal test; 8w x 2a safe),
    // and the 16-bit-activation bias trick against narrow weights.
    const std::vector<std::array<int, 2>> widths = {
        {2, 8}, {8, 2}, {5, 3}, {4, 16}, {12, 16}, {16, 12}, {16, 16}};
    for (const auto &wb : widths) {
        comparePackedAllTiers(17, 19, 23, wb[0], wb[1], rng);
        comparePackedAllTiers(33, 7, 130, wb[0], wb[1], rng);
    }
}

TEST(PackedIgemm, Int32AccumulationOverflowBoundary)
{
    // All-extreme codes at a k chosen so qw * qa * k straddles
    // INT32_MAX: one below (int32-accumulating SIMD kernels), one
    // above (the u8 entry must fall back to exact int64). Worst-case
    // magnitudes make any wrap visible.
    TierRestore restore;
    const int m = 17, n = 3;
    for (int k : {66051, 66053}) { // qw*qa*k around 2^31 for 8w x 8a
        std::vector<int32_t> wcodes(static_cast<size_t>(m) * k);
        for (size_t i = 0; i < wcodes.size(); ++i)
            wcodes[i] = (i % 2) ? 127 : -127;
        std::vector<int32_t> acodes(static_cast<size_t>(n) * k, 255);
        std::vector<int8_t> w8(wcodes.begin(), wcodes.end());
        std::vector<uint8_t> a8(acodes.begin(), acodes.end());
        std::vector<int64_t> ref(static_cast<size_t>(m) * n);
        gemm::igemmTransB(m, n, k, w8.data(), k, a8.data(), k, ref.data(),
                          n, 8, 8);
        gemm::PackedIntWeights pack;
        gemm::packWeights(wcodes.data(), m, k, 8, pack);
        for (gemm::IsaTier tier : availableTiers()) {
            gemm::setActiveIsaTier(tier);
            std::vector<int64_t> got(static_cast<size_t>(m) * n, -7);
            gemm::igemmPackedTransB(pack, n, a8.data(), k, got.data(), n,
                                    8);
            for (size_t i = 0; i < ref.size(); ++i)
                ASSERT_EQ(ref[i], got[i])
                    << "tier=" << gemm::isaTierName(tier) << " k=" << k
                    << " i=" << i;
        }
    }
}

TEST(PackedIgemm, WideActivationsMatchInt32Reference)
{
    // The Linear classifier-head path: unsigned activation codes that
    // have outgrown 16 bits (GlobalAvgPool partial sums), split into
    // lo/hi int16 passes. Reference is the wide int32 igemmTransB.
    Rng rng(31);
    TierRestore restore;
    const std::vector<std::array<int, 3>> shapes = {
        {10, 3, 64}, {17, 5, 130}, {16, 8, 36}, {1, 1, 1}};
    for (const auto &s : shapes)
        for (int w_bits : {4, 8, 12, 16})
            for (int a_bits : {8, 15, 16, 20, 26, 30}) {
                const int m = s[0], n = s[1], k = s[2];
                const int qw = signedQmax(w_bits);
                const int qa =
                    static_cast<int>((int64_t{1} << a_bits) - 1);
                std::vector<int32_t> wcodes =
                    randCodes(rng, static_cast<size_t>(m) * k, -qw, qw);
                std::vector<int32_t> acodes =
                    randCodes(rng, static_cast<size_t>(n) * k, 0, qa);
                std::vector<int64_t> ref(static_cast<size_t>(n) * m);
                gemm::igemmTransB(n, m, k, acodes.data(), k, wcodes.data(),
                                  k, ref.data(), m);
                gemm::PackedIntWeights pack;
                gemm::packWeights(wcodes.data(), m, k, w_bits, pack);
                std::vector<uint16_t> stage;
                for (gemm::IsaTier tier : availableTiers()) {
                    gemm::setActiveIsaTier(tier);
                    std::vector<int64_t> got(static_cast<size_t>(n) * m,
                                             -7);
                    gemm::igemmPackedWideTransA(pack, n, acodes.data(), k,
                                                got.data(), m, a_bits,
                                                stage);
                    for (size_t i = 0; i < ref.size(); ++i)
                        ASSERT_EQ(ref[i], got[i])
                            << "tier=" << gemm::isaTierName(tier)
                            << " m=" << m << " n=" << n << " k=" << k
                            << " w_bits=" << w_bits
                            << " a_bits=" << a_bits << " i=" << i;
                }
            }
}

TEST(PackedIgemm, PackIsDeterministicAndAccountsBytes)
{
    Rng rng(37);
    std::vector<int32_t> codes = randCodes(rng, 33 * 23, -7, 7);
    gemm::PackedIntWeights a, b;
    gemm::packWeights(codes.data(), 33, 23, 4, a);
    gemm::packWeights(codes.data(), 33, 23, 4, b);
    EXPECT_EQ(a.p8, b.p8);
    EXPECT_EQ(a.p16, b.p16);
    EXPECT_EQ(a.rowSum, b.rowSum);
    EXPECT_GT(a.bytes(), 0u);
    // bits > 8 skips the int8 plane entirely.
    gemm::PackedIntWeights wide;
    gemm::packWeights(codes.data(), 33, 23, 12, wide);
    EXPECT_TRUE(wide.p8.empty());
    EXPECT_FALSE(wide.p16.empty());
    a.clear();
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.bytes(), 0u);
}

TEST(PackedIgemm, SerialMatchesPooled)
{
    // Column-parallel dispatch must not change results (it cannot —
    // disjoint columns — but this pins the contract under
    // TWOINONE_THREADS variants like the float test above).
    Rng rng(41);
    const int m = 48, n = 200, k = 96;
    std::vector<int32_t> wcodes =
        randCodes(rng, static_cast<size_t>(m) * k, -127, 127);
    std::vector<int32_t> acodes =
        randCodes(rng, static_cast<size_t>(n) * k, 0, 255);
    std::vector<uint8_t> a8(acodes.begin(), acodes.end());
    gemm::PackedIntWeights pack;
    gemm::packWeights(wcodes.data(), m, k, 8, pack);
    std::vector<int64_t> pooled(static_cast<size_t>(m) * n);
    gemm::igemmPackedTransB(pack, n, a8.data(), k, pooled.data(), n, 8);
    std::vector<int64_t> serial(static_cast<size_t>(m) * n, -7);
    {
        ThreadPool::ScopedSerial guard;
        gemm::igemmPackedTransB(pack, n, a8.data(), k, serial.data(), n, 8);
    }
    ASSERT_EQ(pooled, serial);
}

} // namespace
} // namespace twoinone
