/**
 * @file
 * Shared helpers for the test suite: numerical gradient checking and
 * tiny-model factories.
 */

#ifndef TWOINONE_TESTS_TEST_UTIL_HH
#define TWOINONE_TESTS_TEST_UTIL_HH

#include <functional>

#include "nn/network.hh"
#include "tensor/tensor.hh"

namespace twoinone {
namespace testutil {

/**
 * Central-difference numerical gradient of a scalar function wrt a
 * tensor, evaluated element by element.
 */
inline Tensor
numericalGradient(const std::function<float(const Tensor &)> &f, Tensor x,
                  float h = 1e-3f)
{
    Tensor grad(x.shape());
    for (size_t i = 0; i < x.size(); ++i) {
        float orig = x[i];
        x[i] = orig + h;
        float fp = f(x);
        x[i] = orig - h;
        float fm = f(x);
        x[i] = orig;
        grad[i] = (fp - fm) / (2.0f * h);
    }
    return grad;
}

/**
 * Max absolute difference between two tensors, normalized by the max
 * magnitude (so the tolerance is scale-free).
 */
inline float
relativeMaxError(const Tensor &a, const Tensor &b)
{
    float max_err = 0.0f, max_mag = 1e-8f;
    for (size_t i = 0; i < a.size(); ++i) {
        max_err = std::max(max_err, std::fabs(a[i] - b[i]));
        max_mag = std::max({max_mag, std::fabs(a[i]), std::fabs(b[i])});
    }
    return max_err / max_mag;
}

} // namespace testutil
} // namespace twoinone

#endif // TWOINONE_TESTS_TEST_UTIL_HH
