/**
 * @file
 * Tests for workloads, dataflows, the memory hierarchy and the
 * performance predictor: shape arithmetic, coverage/validity rules,
 * traffic sanity, roofline behaviour, and qualitative monotonicity
 * properties.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.hh"
#include "accel/dnnguard.hh"
#include "accel/spatial_temporal_mac.hh"
#include "workloads/model_library.hh"

namespace twoinone {
namespace {

TEST(ConvShape, MacCounting)
{
    ConvShape s;
    s.k = 8;
    s.c = 4;
    s.oy = s.ox = 6;
    s.r = s.s = 3;
    EXPECT_EQ(s.macs(), 8ull * 4 * 6 * 6 * 3 * 3);
    EXPECT_EQ(s.weightCount(), 8ull * 4 * 3 * 3);
    EXPECT_EQ(s.outputCount(), 8ull * 6 * 6);
}

TEST(ConvShape, InputHalo)
{
    ConvShape s;
    s.oy = s.ox = 8;
    s.r = s.s = 3;
    s.stride = 2;
    EXPECT_EQ(s.inY(), 8 * 2 + 3 - 2);
}

TEST(ConvShape, FullyConnected)
{
    ConvShape fc = ConvShape::fullyConnected("fc", 512, 10);
    EXPECT_EQ(fc.macs(), 5120ull);
    EXPECT_EQ(fc.oy, 1);
    EXPECT_EQ(fc.r, 1);
}

TEST(Workloads, KnownMacTotals)
{
    // Sanity-check against the published MAC counts (+-15%:
    // projection convs and FC handling vary between papers).
    double alex = static_cast<double>(workloads::alexNet().totalMacs());
    EXPECT_NEAR(alex / 1e9, 0.72, 0.72 * 0.25);

    double vgg = static_cast<double>(workloads::vgg16().totalMacs());
    EXPECT_NEAR(vgg / 1e9, 15.5, 15.5 * 0.15);

    double r50 = static_cast<double>(workloads::resNet50().totalMacs());
    EXPECT_NEAR(r50 / 1e9, 4.1, 4.1 * 0.15);

    double r18 =
        static_cast<double>(workloads::resNet18ImageNet().totalMacs());
    EXPECT_NEAR(r18 / 1e9, 1.8, 1.8 * 0.15);
}

TEST(Workloads, BenchmarkSuiteHasSixNetworks)
{
    auto suite = workloads::benchmarkSuite();
    EXPECT_EQ(suite.size(), 6u);
    for (const auto &net : suite) {
        EXPECT_FALSE(net.layers.empty()) << net.name;
        EXPECT_GT(net.totalMacs(), 0u) << net.name;
    }
}

TEST(Workloads, WideResNetIsWider)
{
    EXPECT_GT(workloads::wideResNet32Cifar().totalMacs(),
              workloads::resNet18Cifar().totalMacs());
}

TEST(Dataflow, DefaultIsAllOnes)
{
    Dataflow df;
    for (int l = 0; l < kNumLevels; ++l)
        for (int d = 0; d < kNumDims; ++d)
            EXPECT_EQ(df.trips(static_cast<Level>(l),
                               static_cast<Dim>(d)),
                      1);
    EXPECT_EQ(df.spatialUnits(), 1);
}

TEST(Dataflow, TileExtentAccumulates)
{
    Dataflow df;
    df.trips(Level::Rf, Dim::C) = 2;
    df.trips(Level::Gb, Dim::C) = 3;
    df.trips(Level::Dram, Dim::C) = 5;
    EXPECT_EQ(df.tileExtent(Dim::C, Level::Rf), 2);
    EXPECT_EQ(df.tileExtent(Dim::C, Level::Gb), 6);
    EXPECT_EQ(df.paddedExtent(Dim::C), 30);
}

TEST(Dataflow, GreedyDefaultCoversEveryLayer)
{
    for (const auto &net : workloads::benchmarkSuite()) {
        for (const ConvShape &layer : net.layers) {
            Dataflow df = Dataflow::greedyDefault(layer, 256);
            EXPECT_TRUE(df.covers(layer)) << net.name << "/" << layer.name;
            EXPECT_LE(df.spatialUnits(), 256) << layer.name;
            EXPECT_GE(df.paddingFactor(layer), 1.0);
        }
    }
}

TEST(Dataflow, DescribeMentionsActiveLoops)
{
    ConvShape s;
    s.k = 64;
    s.c = 32;
    s.oy = s.ox = 14;
    s.r = s.s = 3;
    Dataflow df = Dataflow::greedyDefault(s, 64);
    std::string text = df.describe();
    EXPECT_NE(text.find("DRAM"), std::string::npos);
    EXPECT_NE(text.find("NoC"), std::string::npos);
}

class PredictorFixture : public ::testing::Test
{
  protected:
    PredictorFixture()
        : mac_(), hierarchy_(MemoryHierarchy::makeDefault(
                      TechModel::defaults(), 256)),
          predictor_(mac_, hierarchy_, TechModel::defaults(), 256)
    {
        shape_.name = "test";
        shape_.k = 64;
        shape_.c = 32;
        shape_.oy = shape_.ox = 14;
        shape_.r = shape_.s = 3;
    }

    SpatialTemporalMacModel mac_;
    MemoryHierarchy hierarchy_;
    PerformancePredictor predictor_;
    ConvShape shape_;
};

TEST_F(PredictorFixture, ValidDefaultPrediction)
{
    Dataflow df = Dataflow::greedyDefault(shape_, 256);
    LayerPrediction p = predictor_.predictLayer(shape_, 8, 8, df);
    ASSERT_TRUE(p.valid) << p.invalidReason;
    EXPECT_GT(p.totalCycles, 0.0);
    EXPECT_GT(p.totalEnergyPj(), 0.0);
    EXPECT_GT(p.spatialUtilization, 0.0);
    EXPECT_LE(p.spatialUtilization, 1.0);
}

TEST_F(PredictorFixture, TotalAtLeastCompute)
{
    Dataflow df = Dataflow::greedyDefault(shape_, 256);
    LayerPrediction p = predictor_.predictLayer(shape_, 8, 8, df);
    ASSERT_TRUE(p.valid);
    EXPECT_GE(p.totalCycles, p.computeCycles);
    EXPECT_GE(p.stallCycles, 0.0);
}

TEST_F(PredictorFixture, LowerPrecisionIsFasterAndCheaper)
{
    Dataflow df = Dataflow::greedyDefault(shape_, 256);
    LayerPrediction p4 = predictor_.predictLayer(shape_, 4, 4, df);
    LayerPrediction p8 = predictor_.predictLayer(shape_, 8, 8, df);
    LayerPrediction p16 = predictor_.predictLayer(shape_, 16, 16, df);
    ASSERT_TRUE(p4.valid && p8.valid && p16.valid);
    EXPECT_LT(p4.totalCycles, p8.totalCycles);
    EXPECT_LT(p8.totalCycles, p16.totalCycles);
    EXPECT_LT(p4.totalEnergyPj(), p8.totalEnergyPj());
    EXPECT_LT(p8.totalEnergyPj(), p16.totalEnergyPj());
}

TEST_F(PredictorFixture, DramTrafficAtLeastCompulsory)
{
    Dataflow df = Dataflow::greedyDefault(shape_, 256);
    LayerPrediction p = predictor_.predictLayer(shape_, 8, 8, df);
    ASSERT_TRUE(p.valid);
    // Compulsory DRAM traffic: every weight + input in, output out.
    double compulsory =
        static_cast<double>(shape_.weightCount()) * 8 +
        static_cast<double>(shape_.inputCount()) * 8 +
        static_cast<double>(shape_.outputCount()) * 16;
    EXPECT_GE(p.trafficBits[static_cast<size_t>(Level::Dram)],
              compulsory * 0.9);
}

TEST_F(PredictorFixture, SpatialOverflowIsInvalid)
{
    Dataflow df = Dataflow::greedyDefault(shape_, 256);
    df.trips(Level::Noc, Dim::K) = 1024; // way over 256 units
    LayerPrediction p = predictor_.predictLayer(shape_, 8, 8, df);
    EXPECT_FALSE(p.valid);
}

TEST_F(PredictorFixture, BufferOverflowIsInvalid)
{
    // A GB tile holding the whole layer overflows the 512 KB buffer.
    Dataflow df;
    df.trips(Level::Gb, Dim::K) = shape_.k;
    df.trips(Level::Gb, Dim::C) = shape_.c;
    df.trips(Level::Gb, Dim::OY) = shape_.oy;
    df.trips(Level::Gb, Dim::OX) = shape_.ox;
    df.trips(Level::Gb, Dim::R) = shape_.r;
    df.trips(Level::Gb, Dim::S) = shape_.s;
    // Make the buffer tiny to force the overflow deterministically.
    MemoryHierarchy small = hierarchy_;
    small.level(Level::Gb).capacityBits = 1024.0;
    PerformancePredictor tight(mac_, small, TechModel::defaults(), 256);
    LayerPrediction p = tight.predictLayer(shape_, 8, 8, df);
    EXPECT_FALSE(p.valid);
    EXPECT_NE(p.invalidReason.find("buffer"), std::string::npos);
}

TEST_F(PredictorFixture, NonCoveringDataflowIsInvalid)
{
    Dataflow df; // all ones: cannot cover k=64
    LayerPrediction p = predictor_.predictLayer(shape_, 8, 8, df);
    EXPECT_FALSE(p.valid);
}

TEST_F(PredictorFixture, MoreUnitsNeverSlower)
{
    PerformancePredictor small(
        mac_, MemoryHierarchy::makeDefault(TechModel::defaults(), 64),
        TechModel::defaults(), 64);
    Dataflow df_small = Dataflow::greedyDefault(shape_, 64);
    Dataflow df_big = Dataflow::greedyDefault(shape_, 256);
    LayerPrediction ps = small.predictLayer(shape_, 8, 8, df_small);
    LayerPrediction pb = predictor_.predictLayer(shape_, 8, 8, df_big);
    ASSERT_TRUE(ps.valid && pb.valid);
    EXPECT_LE(pb.totalCycles, ps.totalCycles * 1.01);
}

TEST_F(PredictorFixture, NetworkPredictionAggregates)
{
    NetworkWorkload net = workloads::alexNet();
    NetworkPrediction np = predictor_.predictNetworkDefault(net, 8, 8);
    EXPECT_EQ(np.invalidLayers, 0);
    EXPECT_GT(np.totalCycles, 0.0);
    EXPECT_GT(np.fps(1.0, 1), 0.0);
    EXPECT_GT(np.inferencesPerJoule(1), 0.0);
}

TEST(Accelerator, IsoAreaUnitCounts)
{
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    Accelerator ours(AcceleratorKind::TwoInOne, budget, tech);
    Accelerator stripes(AcceleratorKind::Stripes, budget, tech);
    Accelerator bf(AcceleratorKind::BitFusion, budget, tech);
    // Same budget, different per-unit areas -> ordered unit counts.
    EXPECT_EQ(bf.numUnits(), 256);
    EXPECT_GT(ours.numUnits(), bf.numUnits());
    EXPECT_GT(stripes.numUnits(), ours.numUnits());
}

TEST(Accelerator, FreedomFollowsPaper)
{
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    EXPECT_EQ(Accelerator(AcceleratorKind::BitFusion, budget, tech)
                  .freedom(),
              DataflowFreedom::GbOrderOnly);
    EXPECT_EQ(Accelerator(AcceleratorKind::TwoInOne, budget, tech)
                  .freedom(),
              DataflowFreedom::Full);
}

TEST(Accelerator, OursBeatsBaselinesAt4Bit)
{
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    Accelerator ours(AcceleratorKind::TwoInOne, budget, tech);
    Accelerator stripes(AcceleratorKind::Stripes, budget, tech);
    Accelerator bf(AcceleratorKind::BitFusion, budget, tech);
    NetworkWorkload net = workloads::resNet50();

    double c_ours = ours.run(net, 4, 4).totalCycles;
    double c_stripes = stripes.run(net, 4, 4).totalCycles;
    double c_bf = bf.run(net, 4, 4).totalCycles;
    EXPECT_LT(c_ours, c_stripes);
    EXPECT_LT(c_ours, c_bf);
}

TEST(DnnGuard, DetectorCostsThroughput)
{
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    DnnGuardModel guard(budget, tech, workloads::resNet18ImageNet());
    DnnGuardModel no_detect(budget, tech, NetworkWorkload{"none", {}});

    NetworkWorkload target = workloads::alexNet();
    EXPECT_LT(guard.fps(target, 1.0), no_detect.fps(target, 1.0));
}

TEST(DnnGuard, SmallTargetsPayProportionallyMore)
{
    const TechModel &tech = TechModel::defaults();
    double budget = Accelerator::defaultAreaBudget();
    DnnGuardModel guard(budget, tech, workloads::resNet18ImageNet());
    // AlexNet (small) loses a larger fraction than VGG-16 (large).
    DnnGuardModel no_detect(budget, tech, NetworkWorkload{"none", {}});
    double alex_frac = guard.fps(workloads::alexNet(), 1.0) /
                       no_detect.fps(workloads::alexNet(), 1.0);
    double vgg_frac = guard.fps(workloads::vgg16(), 1.0) /
                      no_detect.fps(workloads::vgg16(), 1.0);
    EXPECT_LT(alex_frac, vgg_frac);
}

} // namespace
} // namespace twoinone
