/**
 * @file
 * Tests for the int-code-first quantized execution path: QuantTensor
 * as the canonical representation (bit-identity with the float
 * fake-quant view), the integer GEMM kernels, activation-range
 * calibration (static-scale == dynamic when ranges match; determinism
 * across thread counts), the integer forward path's golden tolerance
 * against the float fake-quant forward, and exact bit-identity of the
 * codes the integer forward consumes with the bit-serial array
 * simulator's inputs and outputs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "accel/array_sim.hh"
#include "common/thread_pool.hh"
#include "nn/activation.hh"
#include "nn/conv2d.hh"
#include "nn/linear.hh"
#include "nn/model_zoo.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "tensor/gemm.hh"
#include "tensor/ops.hh"

namespace twoinone {
namespace {

Network
makeTinyNet(uint64_t seed, PrecisionSet set = PrecisionSet::rps4to16())
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    cfg.precisions = std::move(set);
    return convNetTiny(cfg, rng);
}

Tensor
makeInput(uint64_t seed, int batch = 4)
{
    Rng rng(seed);
    return Tensor::uniform({batch, 3, 8, 8}, rng, 0.0f, 1.0f);
}

// ---------------------------------------------------------------------------
// QuantTensor <-> fake-quant bit-identity
// ---------------------------------------------------------------------------

TEST(QuantTensor, SymmetricMatchesFakeQuantBitExactly)
{
    Rng rng(11);
    Tensor x = Tensor::randn({64, 7}, rng);
    for (int bits : {2, 4, 5, 8, 12, 16}) {
        QuantResult ref = LinearQuantizer::fakeQuantSymmetric(x, bits);
        Tensor mask, values;
        QuantTensor q =
            QuantTensor::quantizeSymmetric(x, bits, &mask, &values);

        EXPECT_EQ(q.bits, bits);
        EXPECT_EQ(q.scale, ref.scale) << "bits=" << bits;
        Tensor dq = q.dequantize();
        ASSERT_EQ(dq.size(), ref.values.size());
        for (size_t i = 0; i < dq.size(); ++i) {
            ASSERT_EQ(dq[i], ref.values[i]) << "bits=" << bits;
            ASSERT_EQ(values[i], ref.values[i]) << "bits=" << bits;
            ASSERT_EQ(mask[i], ref.steMask[i]) << "bits=" << bits;
        }
        // Codes match the long-standing int-code helper.
        float scale = 0.0f;
        std::vector<int32_t> codes =
            LinearQuantizer::quantizeToIntSymmetric(x, bits, &scale);
        EXPECT_EQ(q.codes, codes);
        EXPECT_EQ(q.scale, scale);
    }
}

TEST(QuantTensor, UnsignedStaticMatchesDynamicAtObservedRange)
{
    Rng rng(12);
    Tensor x = Tensor::uniform({32, 9}, rng, -0.2f, 3.0f);
    for (int bits : {2, 4, 8}) {
        QuantResult dyn = LinearQuantizer::fakeQuantUnsigned(x, bits);
        float max_v = ops::maxVal(x);
        QuantResult stat =
            LinearQuantizer::fakeQuantUnsignedStatic(x, bits, max_v);
        Tensor mask;
        QuantTensor q =
            QuantTensor::quantizeUnsigned(x, bits, max_v, &mask);
        EXPECT_EQ(stat.scale, dyn.scale);
        EXPECT_EQ(q.scale, dyn.scale);
        Tensor dq = q.dequantize();
        for (size_t i = 0; i < x.size(); ++i) {
            ASSERT_EQ(stat.values[i], dyn.values[i]) << "bits=" << bits;
            ASSERT_EQ(stat.steMask[i], dyn.steMask[i]);
            ASSERT_EQ(dq[i], dyn.values[i]) << "bits=" << bits;
            ASSERT_EQ(mask[i], dyn.steMask[i]);
        }
    }
}

TEST(QuantTensor, ZeroTensorQuantizesToZeroScale)
{
    Tensor x = Tensor::zeros({4, 4});
    QuantTensor q = QuantTensor::quantizeSymmetric(x, 8);
    EXPECT_EQ(q.scale, 0.0f);
    Tensor dq = q.dequantize();
    for (size_t i = 0; i < dq.size(); ++i)
        EXPECT_EQ(dq[i], 0.0f);
}

// ---------------------------------------------------------------------------
// Integer GEMM kernels
// ---------------------------------------------------------------------------

TEST(IGemm, MatchesReferenceAcrossWidths)
{
    Rng rng(13);
    const int m = 9, n = 17, k = 33;
    for (int bits : {4, 8, 12, 16}) {
        int qw = (1 << (bits - 1)) - 1;
        int qa = (1 << bits) - 1;
        std::vector<int32_t> a(static_cast<size_t>(m) * k);
        std::vector<int32_t> b(static_cast<size_t>(n) * k);
        for (auto &v : a)
            v = rng.uniformInt(-qw, qw);
        for (auto &v : b)
            v = rng.uniformInt(0, qa);

        std::vector<int64_t> ref(static_cast<size_t>(m) * n, 0);
        for (int i = 0; i < m; ++i)
            for (int j = 0; j < n; ++j) {
                int64_t acc = 0;
                for (int p = 0; p < k; ++p)
                    acc += static_cast<int64_t>(
                               a[static_cast<size_t>(i) * k + p]) *
                           b[static_cast<size_t>(j) * k + p];
                ref[static_cast<size_t>(i) * n + j] = acc;
            }

        std::vector<int64_t> c(static_cast<size_t>(m) * n, -1);
        if (bits <= 8) {
            std::vector<int8_t> a8(a.begin(), a.end());
            std::vector<uint8_t> b8(b.begin(), b.end());
            gemm::igemmTransB(m, n, k, a8.data(), k, b8.data(), k,
                              c.data(), n, bits, bits);
            EXPECT_EQ(c, ref) << "int8 path bits=" << bits;
        }
        std::vector<int16_t> a16(a.begin(), a.end());
        std::vector<uint16_t> b16(b.begin(), b.end());
        std::fill(c.begin(), c.end(), -1);
        gemm::igemmTransB(m, n, k, a16.data(), k, b16.data(), k, c.data(),
                          n, bits, bits);
        EXPECT_EQ(c, ref) << "int16 path bits=" << bits;

        std::fill(c.begin(), c.end(), -1);
        gemm::igemmTransB(m, n, k, a.data(), k, b.data(), k, c.data(), n);
        EXPECT_EQ(c, ref) << "int32 path bits=" << bits;
    }
}

TEST(IGemm, ParallelMatchesSerialBitExactly)
{
    Rng rng(14);
    const int m = 64, n = 48, k = 96; // large enough to chunk rows
    std::vector<int16_t> a(static_cast<size_t>(m) * k);
    std::vector<uint16_t> b(static_cast<size_t>(n) * k);
    for (auto &v : a)
        v = static_cast<int16_t>(rng.uniformInt(-32767, 32767));
    for (auto &v : b)
        v = static_cast<uint16_t>(rng.uniformInt(0, 65535));

    std::vector<int64_t> serial(static_cast<size_t>(m) * n);
    {
        ThreadPool::ScopedSerial guard;
        gemm::igemmTransB(m, n, k, a.data(), k, b.data(), k,
                          serial.data(), n, 16, 16);
    }
    std::vector<int64_t> parallel(static_cast<size_t>(m) * n);
    gemm::igemmTransB(m, n, k, a.data(), k, b.data(), k, parallel.data(),
                      n, 16, 16);
    EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// Small-GEMM light parallel path (ISSUE 3 satellite)
// ---------------------------------------------------------------------------

TEST(SmallGemm, LightParallelPathBitIdenticalToSerialNaive)
{
    Rng rng(15);
    // Below the blocked path's packing cutoff (m*n*k <= 16K).
    const int m = 16, n = 32, k = 24;
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor bias = Tensor::randn({m}, rng);

    for (bool trans_a : {false, true}) {
        for (bool trans_b : {false, true}) {
            // Operands are reinterpreted per trans flag; square-ish
            // dims keep every variant in bounds.
            Tensor aa = Tensor::randn({trans_a ? k : m, trans_a ? m : k},
                                      rng);
            Tensor bb = Tensor::randn({trans_b ? n : k, trans_b ? k : n},
                                      rng);
            int lda = aa.dim(1), ldb = bb.dim(1);

            Tensor c_serial({m, n});
            {
                ThreadPool::ScopedSerial guard;
                gemm::sgemm(gemm::Backend::Blocked, trans_a, trans_b, m,
                            n, k, aa.data(), lda, bb.data(), ldb,
                            c_serial.data(), n, false, bias.data());
            }
            Tensor c_parallel({m, n});
            gemm::sgemm(gemm::Backend::Blocked, trans_a, trans_b, m, n,
                        k, aa.data(), lda, bb.data(), ldb,
                        c_parallel.data(), n, false, bias.data());
            Tensor c_naive({m, n});
            gemm::sgemm(gemm::Backend::Naive, trans_a, trans_b, m, n, k,
                        aa.data(), lda, bb.data(), ldb, c_naive.data(),
                        n, false, bias.data());
            for (size_t i = 0; i < c_serial.size(); ++i) {
                ASSERT_EQ(c_serial[i], c_parallel[i])
                    << "ta=" << trans_a << " tb=" << trans_b;
                ASSERT_EQ(c_serial[i], c_naive[i])
                    << "ta=" << trans_a << " tb=" << trans_b;
            }
        }
    }
}

TEST(SmallGemm, PathQueryIsConsistent)
{
    // Big products never take the small path.
    EXPECT_FALSE(gemm::smallGemmRunsParallel(256, 256, 256));
    if (ThreadPool::global().threads() > 1 &&
        gemm::activeBackend() == gemm::Backend::Blocked) {
        // A sub-cutoff product with enough rows dispatches parallel.
        EXPECT_TRUE(gemm::smallGemmRunsParallel(16, 32, 24));
    } else {
        EXPECT_FALSE(gemm::smallGemmRunsParallel(16, 32, 24));
    }
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

/** When the recorded ranges equal the observed ones (calibrate on the
 * same batch), the static-scale forward is bit-identical to the
 * dynamic fake-quant forward. */
TEST(Calibration, StaticScaleBitIdenticalWhenRangesMatch)
{
    Network net = makeTinyNet(21);
    Tensor x = makeInput(22);

    // Dynamic reference, before any calibration.
    std::vector<Tensor> refs;
    for (int bits : net.precisionSet().bits()) {
        net.setPrecision(bits);
        refs.push_back(net.forward(x, false));
    }

    Calibrator cal(net);
    cal.calibrate({x});
    ASSERT_TRUE(cal.calibrated());

    const std::vector<int> &bits = net.precisionSet().bits();
    for (size_t i = 0; i < bits.size(); ++i) {
        net.setPrecision(bits[i]);
        Tensor y = net.forward(x, false);
        ASSERT_EQ(y.shape(), refs[i].shape());
        for (size_t t = 0; t < y.size(); ++t)
            ASSERT_EQ(y[t], refs[i][t]) << "bits=" << bits[i];
    }

    // Disabling static mode restores the dynamic path (trivially
    // identical here, but must not crash or change results).
    cal.setStaticScale(false);
    net.setPrecision(bits[0]);
    Tensor y = net.forward(x, false);
    for (size_t t = 0; t < y.size(); ++t)
        ASSERT_EQ(y[t], refs[0][t]);
}

/** Recorded ranges and post-calibration forwards are bit-identical
 * for any thread count. */
TEST(Calibration, DeterministicAcrossThreadCounts)
{
    Tensor x = makeInput(23);

    Network net_serial = makeTinyNet(24);
    Network net_parallel = makeTinyNet(24);

    std::vector<Tensor> serial_out;
    std::vector<std::vector<float>> serial_ranges;
    {
        ThreadPool::ScopedSerial guard;
        Calibrator cal(net_serial);
        cal.calibrate({x});
        for (ActQuant *a : cal.quantizers())
            serial_ranges.push_back(a->calibrationMax());
        for (int bits : net_serial.precisionSet().bits()) {
            net_serial.setPrecision(bits);
            serial_out.push_back(net_serial.forward(x, false));
        }
    }

    Calibrator cal(net_parallel);
    cal.calibrate({x});
    std::vector<std::vector<float>> parallel_ranges;
    for (ActQuant *a : cal.quantizers())
        parallel_ranges.push_back(a->calibrationMax());
    EXPECT_EQ(serial_ranges, parallel_ranges);

    const std::vector<int> &bits = net_parallel.precisionSet().bits();
    for (size_t i = 0; i < bits.size(); ++i) {
        net_parallel.setPrecision(bits[i]);
        Tensor y = net_parallel.forward(x, false);
        for (size_t t = 0; t < y.size(); ++t)
            ASSERT_EQ(y[t], serial_out[i][t]) << "bits=" << bits[i];
    }
}

// ---------------------------------------------------------------------------
// Integer forward path
// ---------------------------------------------------------------------------


/**
 * The documented tolerance contract of the integer forward: the int
 * path re-associates each reduction in exact integer arithmetic while
 * the float path rounds per float-FMA, so values landing on an
 * activation-grid rounding boundary can snap to adjacent codes
 * (coarse grids feel this most, and the two float GEMM backends
 * round differently too). Bounded as max |diff| <= 5% of the logit
 * range and relative L2 <= 5%.
 */
void
expectWithinQuantTolerance(const Tensor &y_int, const Tensor &y_float,
                           int bits)
{
    ASSERT_EQ(y_int.shape(), y_float.shape());
    float max_abs = ops::maxAbs(y_float);
    double l2_diff = 0.0, l2_ref = 0.0;
    float max_diff = 0.0f;
    for (size_t i = 0; i < y_float.size(); ++i) {
        float d = y_int[i] - y_float[i];
        max_diff = std::max(max_diff, std::fabs(d));
        l2_diff += static_cast<double>(d) * d;
        l2_ref += static_cast<double>(y_float[i]) * y_float[i];
    }
    EXPECT_LE(max_diff, 0.05f * (1.0f + max_abs)) << "bits=" << bits;
    EXPECT_LE(std::sqrt(l2_diff), 0.05 * (std::sqrt(l2_ref) + 1e-6))
        << "bits=" << bits;
}

/** forwardQuantized matches the float fake-quant forward within the
 * documented rounding tolerance at every candidate precision. */
TEST(ForwardQuantized, MatchesFloatForwardWithinTolerance)
{
    Network net = makeTinyNet(31);
    Tensor x = makeInput(32);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);

    for (int bits : net.precisionSet().bits()) {
        Tensor y_float = engine.forwardAt(bits, x);
        Tensor y_int = engine.forwardQuantizedAt(bits, x);
        expectWithinQuantTolerance(y_int, y_float, bits);
    }
}

/** Same check on the residual model (covers PreActBlock's quantized
 * routing and the projection shortcut). */
TEST(ForwardQuantized, ResidualModelWithinTolerance)
{
    Rng rng(33);
    ModelConfig cfg;
    cfg.baseWidth = 8;
    Network net = preActResNetMini(cfg, rng);
    Tensor x = makeInput(34);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);

    for (int bits : net.precisionSet().bits()) {
        Tensor y_float = engine.forwardAt(bits, x);
        Tensor y_int = engine.forwardQuantizedAt(bits, x);
        expectWithinQuantTolerance(y_int, y_float, bits);
    }
}

/** Without calibration the integer path still runs (dynamic ranges),
 * staying within the same tolerance. */
TEST(ForwardQuantized, DynamicRangeFallback)
{
    Network net = makeTinyNet(35);
    Tensor x = makeInput(36);
    RpsEngine engine(net);

    Tensor y_float = engine.forwardAt(8, x);
    Tensor y_int = engine.forwardQuantizedAt(8, x);
    expectWithinQuantTolerance(y_int, y_float, 8);
}

/** Full precision passes through the float path unchanged. */
TEST(ForwardQuantized, FullPrecisionBitIdentical)
{
    Network net = makeTinyNet(37);
    Tensor x = makeInput(38);
    net.setPrecision(0);
    Tensor y_ref = net.forward(x, false);
    Tensor y_q = net.forwardQuantized(x);
    for (size_t i = 0; i < y_ref.size(); ++i)
        ASSERT_EQ(y_ref[i], y_q[i]);
}

// ---------------------------------------------------------------------------
// Bit-identity with the bit-serial array simulator
// ---------------------------------------------------------------------------

/** Cross-check one traced conv layer against the bit-serial MAC
 * array: its weight codes must be the engine's cached ones, and the
 * array fed the same canonical codes must reproduce the integer
 * accumulators exactly, image by image. */
void
expectConvMatchesBitSerial(RpsEngine &engine, Conv2d *conv,
                           size_t wq_index, int bits,
                           MacArraySimulator &sim)
{
    // (a) The weight codes the conv consumed ARE the cached ones.
    const QuantTensor &cached = engine.codesFor(wq_index, bits);
    const QuantTensor &used = conv->tracedWeightCodes();
    ASSERT_EQ(used.bits, bits);
    ASSERT_EQ(used.codes, cached.codes) << "bits=" << bits;
    ASSERT_EQ(used.scale, cached.scale);

    // (b) The bit-serial array, fed the same canonical codes,
    // reproduces the integer accumulators bit-exactly.
    const QuantTensor &acts = conv->tracedActCodes();
    ASSERT_EQ(acts.shape.size(), 4u);
    int n = acts.shape[0], c = acts.shape[1], h = acts.shape[2],
        w = acts.shape[3];
    int oh = conv->outSize(h), ow = conv->outSize(w);
    size_t img = static_cast<size_t>(c) * h * w;
    size_t out_img = static_cast<size_t>(conv->outChannels()) * oh * ow;
    const std::vector<int64_t> &acc = conv->tracedAccumulators();
    ASSERT_EQ(acc.size(), out_img * static_cast<size_t>(n));

    for (int ni = 0; ni < n; ++ni) {
        QuantTensor slice;
        slice.shape = {c, h, w};
        slice.codes.assign(acts.codes.begin() + ni * img,
                           acts.codes.begin() + (ni + 1) * img);
        slice.scale = acts.scale;
        slice.bits = acts.bits;
        slice.isSigned = acts.isSigned;

        ArraySimResult r =
            sim.runConv(used, slice, conv->stride(), conv->padding());
        ASSERT_EQ(r.output.size(), out_img);
        for (size_t i = 0; i < out_img; ++i) {
            ASSERT_EQ(r.output.data[i], acc[ni * out_img + i])
                << "bits=" << bits << " image=" << ni << " i=" << i;
        }
    }
}

/** The int codes forwardQuantized consumes are bit-identical to the
 * engine's cached codes, and running those very codes through the
 * cycle-accurate bit-serial MAC array reproduces the layer's integer
 * accumulators exactly — for bits {2,4,8,16}. */
TEST(ForwardQuantized, CodesBitIdenticalToBitSerialDatapath)
{
    PrecisionSet set({2, 4, 8, 16});
    Network net = makeTinyNet(41, set);
    Tensor x = makeInput(42, /*batch=*/2);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);

    // convNetTiny layer 4 is the conv fed by the first ActQuant; it
    // is weight-quantized layer #1 in collection order.
    auto *conv = dynamic_cast<Conv2d *>(&net.layer(4));
    ASSERT_NE(conv, nullptr);
    conv->setQuantTrace(true);

    MacArraySimulator sim(8);
    for (int bits : set.bits()) {
        engine.forwardQuantizedAt(bits, x);
        expectConvMatchesBitSerial(engine, conv, 1, bits, sim);
    }
}

/** The stem conv runs the integer datapath too (ISSUE 4: the network
 * input is quantized), and its accumulators are bit-exact against the
 * bit-serial array at bits {2,4,8,16} — no float GEMM remains in the
 * quantized forward at quantized precisions. */
TEST(ForwardQuantized, StemConvBitIdenticalToBitSerialDatapath)
{
    PrecisionSet set({2, 4, 8, 16});
    Network net = makeTinyNet(45, set);
    Tensor x = makeInput(46, /*batch=*/2);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);

    // Layer 0 is the stem conv: weight-quantized layer #0, fed by the
    // network's input quantizer (16-bit floor, unit image range).
    auto *stem = dynamic_cast<Conv2d *>(&net.layer(0));
    ASSERT_NE(stem, nullptr);
    stem->setQuantTrace(true);

    MacArraySimulator sim(8);
    for (int bits : set.bits()) {
        engine.forwardQuantizedAt(bits, x);

        // The stem consumed the quantized input: unsigned codes at
        // the image-precision floor.
        const QuantTensor &acts = stem->tracedActCodes();
        ASSERT_FALSE(acts.empty()) << "stem fell off the integer path";
        EXPECT_FALSE(acts.isSigned);
        EXPECT_EQ(acts.bits, std::max(bits, 16));

        expectConvMatchesBitSerial(engine, stem, 0, bits, sim);
    }
}

// ---------------------------------------------------------------------------
// Packed-kernel ISA tiers: end-to-end bit-identity
// ---------------------------------------------------------------------------

/** RAII guard: force an ISA tier for one scope, restore on exit. */
struct TierRestore
{
    gemm::IsaTier saved = gemm::activeIsaTier();
    ~TierRestore() { gemm::setActiveIsaTier(saved); }
};

/** The full quantized forward — conv stack through the Linear head —
 * is bit-identical between the dispatched SIMD tier and the forced
 * scalar reference tier at every rps4to16 candidate. The scalar tier
 * runs the legacy reference igemm rows (the packed gate turns off),
 * so this is also the packed-fast-path vs legacy-rows diff for both
 * Conv2d and the classifier's wide Linear GEMM. */
TEST(ForwardQuantized, ScalarTierBitIdenticalEndToEnd)
{
    Network net = makeTinyNet(61);
    Tensor x = makeInput(62, /*batch=*/2);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);

    for (int bits : net.precisionSet().bits()) {
        TierRestore guard;
        gemm::setActiveIsaTier(gemm::IsaTier::Scalar);
        Tensor y_ref = engine.forwardQuantizedAt(bits, x);
        gemm::setActiveIsaTier(guard.saved);
        Tensor y_simd = engine.forwardQuantizedAt(bits, x);
        ASSERT_EQ(y_ref.shape(), y_simd.shape()) << "bits=" << bits;
        for (size_t i = 0; i < y_ref.size(); ++i)
            ASSERT_EQ(y_ref[i], y_simd[i]) << "bits=" << bits
                                           << " i=" << i;
    }
}

/** Same end-to-end diff on the residual model (projection shortcuts,
 * deeper conv stack), per candidate and per intermediate tier. */
TEST(ForwardQuantized, ResidualModelTiersBitIdentical)
{
    Rng rng(63);
    ModelConfig cfg;
    cfg.baseWidth = 8;
    Network net = preActResNetMini(cfg, rng);
    Tensor x = makeInput(64, /*batch=*/2);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);

    std::vector<gemm::IsaTier> tiers = {gemm::IsaTier::Scalar};
    if (gemm::detectedIsaTier() >= gemm::IsaTier::Avx2)
        tiers.push_back(gemm::IsaTier::Avx2);
    if (gemm::detectedIsaTier() >= gemm::IsaTier::Avx512Vnni)
        tiers.push_back(gemm::IsaTier::Avx512Vnni);

    for (int bits : net.precisionSet().bits()) {
        TierRestore guard;
        gemm::setActiveIsaTier(gemm::IsaTier::Scalar);
        Tensor y_ref = engine.forwardQuantizedAt(bits, x);
        for (gemm::IsaTier t : tiers) {
            gemm::setActiveIsaTier(t);
            Tensor y = engine.forwardQuantizedAt(bits, x);
            ASSERT_EQ(y_ref.shape(), y.shape()) << "bits=" << bits;
            for (size_t i = 0; i < y_ref.size(); ++i)
                ASSERT_EQ(y_ref[i], y[i])
                    << "bits=" << bits << " tier="
                    << gemm::isaTierName(t) << " i=" << i;
        }
    }
}

/** Linear consumes the GlobalAvgPool's integer partial sums: the
 * traced activation codes into the classifier are exact integer sums
 * of the upstream ActQuant codes. */
TEST(ForwardQuantized, LinearHeadStaysOnIntegerPath)
{
    Network net = makeTinyNet(43);
    Tensor x = makeInput(44, /*batch=*/2);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);

    auto *fc = dynamic_cast<Linear *>(&net.layer(9));
    ASSERT_NE(fc, nullptr);
    fc->setQuantTrace(true);
    engine.forwardQuantizedAt(8, x);

    const QuantTensor &acts = fc->tracedActCodes();
    ASSERT_FALSE(acts.empty()) << "Linear fell off the integer path";
    ASSERT_EQ(acts.shape.size(), 2u);
    // Pool folded 1/(H*W) into the scale and widened the codes.
    EXPECT_GT(acts.bits, 8);
}

} // namespace
} // namespace twoinone
