/**
 * @file
 * Unit tests for the tensor substrate.
 */

#include <gtest/gtest.h>

#include "tensor/ops.hh"
#include "tensor/tensor.hh"

namespace twoinone {
namespace {

TEST(Tensor, DefaultConstructedIsEmpty)
{
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.ndim(), 0);
    EXPECT_EQ(t.size(), 0u);
}

TEST(Tensor, ZeroFilledConstruction)
{
    Tensor t({2, 3});
    EXPECT_EQ(t.ndim(), 2);
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(1), 3);
    EXPECT_EQ(t.size(), 6u);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstruction)
{
    Tensor t({4}, 2.5f);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, OnesAndFull)
{
    Tensor a = Tensor::ones({3, 2});
    Tensor b = Tensor::full({3, 2}, -1.25f);
    EXPECT_EQ(a[5], 1.0f);
    EXPECT_EQ(b[0], -1.25f);
}

TEST(Tensor, RandnIsSeededDeterministic)
{
    Rng r1(42), r2(42);
    Tensor a = Tensor::randn({32}, r1);
    Tensor b = Tensor::randn({32}, r2);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Tensor, UniformRange)
{
    Rng rng(7);
    Tensor t = Tensor::uniform({256}, rng, -0.5f, 0.5f);
    for (size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], -0.5f);
        EXPECT_LT(t[i], 0.5f);
    }
}

TEST(Tensor, At2Indexing)
{
    Tensor t({2, 3});
    t.at2(1, 2) = 5.0f;
    EXPECT_EQ(t[5], 5.0f);
    EXPECT_EQ(t.at2(1, 2), 5.0f);
}

TEST(Tensor, At4IndexingRowMajorNchw)
{
    Tensor t({2, 3, 4, 5});
    t.at4(1, 2, 3, 4) = 9.0f;
    // ((1*3+2)*4+3)*5+4 = 119
    EXPECT_EQ(t[119], 9.0f);
}

TEST(Tensor, SameShape)
{
    Tensor a({2, 3}), b({2, 3}), c({3, 2});
    EXPECT_TRUE(a.sameShape(b));
    EXPECT_FALSE(a.sameShape(c));
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t({2, 3});
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(i);
    Tensor r = t.reshape({3, 2});
    EXPECT_EQ(r.ndim(), 2);
    EXPECT_EQ(r.dim(0), 3);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(r[i], t[i]);
}

TEST(Tensor, Slice0AndSetSlice0RoundTrip)
{
    Tensor t({4, 2, 2, 2});
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(i);
    Tensor s = t.slice0(1, 2);
    EXPECT_EQ(s.dim(0), 2);
    EXPECT_EQ(s[0], t[8]); // element (1,0,0,0)

    Tensor u({4, 2, 2, 2});
    u.setSlice0(1, s);
    for (int i = 8; i < 24; ++i)
        EXPECT_EQ(u[static_cast<size_t>(i)],
                  t[static_cast<size_t>(i)]);
}

TEST(Tensor, FillOverwrites)
{
    Tensor t({3}, 1.0f);
    t.fill(-2.0f);
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t[i], -2.0f);
}

TEST(Ops, AddSubMulElementwise)
{
    Tensor a({3}), b({3});
    a[0] = 1; a[1] = 2; a[2] = 3;
    b[0] = 4; b[1] = -1; b[2] = 0.5;
    Tensor s = ops::add(a, b);
    Tensor d = ops::sub(a, b);
    Tensor m = ops::mul(a, b);
    EXPECT_FLOAT_EQ(s[0], 5.0f);
    EXPECT_FLOAT_EQ(d[1], 3.0f);
    EXPECT_FLOAT_EQ(m[2], 1.5f);
}

TEST(Ops, ScalarOps)
{
    Tensor a({2}, 3.0f);
    EXPECT_FLOAT_EQ(ops::addScalar(a, 1.0f)[0], 4.0f);
    EXPECT_FLOAT_EQ(ops::mulScalar(a, -2.0f)[1], -6.0f);
}

TEST(Ops, InPlaceOps)
{
    Tensor a({2}, 1.0f), b({2}, 2.0f);
    ops::addInPlace(a, b);
    EXPECT_FLOAT_EQ(a[0], 3.0f);
    ops::subInPlace(a, b);
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    ops::axpyInPlace(a, 0.5f, b);
    EXPECT_FLOAT_EQ(a[0], 2.0f);
    ops::mulScalarInPlace(a, 2.0f);
    EXPECT_FLOAT_EQ(a[0], 4.0f);
}

TEST(Ops, ClampInPlace)
{
    Tensor a({3});
    a[0] = -2.0f; a[1] = 0.5f; a[2] = 3.0f;
    ops::clampInPlace(a, 0.0f, 1.0f);
    EXPECT_FLOAT_EQ(a[0], 0.0f);
    EXPECT_FLOAT_EQ(a[1], 0.5f);
    EXPECT_FLOAT_EQ(a[2], 1.0f);
}

TEST(Ops, SignValues)
{
    Tensor a({3});
    a[0] = -0.1f; a[1] = 0.0f; a[2] = 7.0f;
    Tensor s = ops::sign(a);
    EXPECT_FLOAT_EQ(s[0], -1.0f);
    EXPECT_FLOAT_EQ(s[1], 0.0f);
    EXPECT_FLOAT_EQ(s[2], 1.0f);
}

TEST(Ops, Reductions)
{
    Tensor a({4});
    a[0] = 1; a[1] = -2; a[2] = 3; a[3] = -4;
    EXPECT_FLOAT_EQ(ops::sum(a), -2.0f);
    EXPECT_FLOAT_EQ(ops::mean(a), -0.5f);
    EXPECT_FLOAT_EQ(ops::maxAbs(a), 4.0f);
    EXPECT_FLOAT_EQ(ops::l2Norm(a),
                    std::sqrt(1.0f + 4.0f + 9.0f + 16.0f));
}

TEST(Ops, ArgmaxRow)
{
    Tensor logits({2, 3});
    logits.at2(0, 0) = 0.1f; logits.at2(0, 1) = 0.9f;
    logits.at2(0, 2) = 0.3f;
    logits.at2(1, 0) = 2.0f; logits.at2(1, 1) = -1.0f;
    logits.at2(1, 2) = 1.0f;
    EXPECT_EQ(ops::argmaxRow(logits, 0), 1);
    EXPECT_EQ(ops::argmaxRow(logits, 1), 0);
}

TEST(Ops, LinfDistance)
{
    Tensor a({3}, 0.0f), b({3}, 0.0f);
    b[1] = 0.25f;
    b[2] = -0.5f;
    EXPECT_FLOAT_EQ(ops::linfDistance(a, b), 0.5f);
}

TEST(Ops, MatmulAgainstHandComputed)
{
    Tensor a({2, 3}), b({3, 2});
    // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
    for (int i = 0; i < 6; ++i)
        a[static_cast<size_t>(i)] = static_cast<float>(i + 1);
    for (int i = 0; i < 6; ++i)
        b[static_cast<size_t>(i)] = static_cast<float>(i + 7);
    Tensor c = ops::matmul(a, b);
    EXPECT_FLOAT_EQ(c.at2(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at2(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at2(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at2(1, 1), 154.0f);
}

TEST(Ops, MatmulTransposeVariantsAgreeWithMatmul)
{
    Rng rng(3);
    Tensor a = Tensor::randn({4, 5}, rng);
    Tensor b = Tensor::randn({5, 6}, rng);
    Tensor c_ref = ops::matmul(a, b);

    // matmulTransposeB(a, b^T) == a*b.
    Tensor bt({6, 5});
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 6; ++j)
            bt.at2(j, i) = b.at2(i, j);
    Tensor c1 = ops::matmulTransposeB(a, bt);
    for (size_t i = 0; i < c_ref.size(); ++i)
        EXPECT_NEAR(c1[i], c_ref[i], 1e-4f);

    // matmulTransposeA(a^T, b) == a*b.
    Tensor at({5, 4});
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 5; ++j)
            at.at2(j, i) = a.at2(i, j);
    Tensor c2 = ops::matmulTransposeA(at, b);
    for (size_t i = 0; i < c_ref.size(); ++i)
        EXPECT_NEAR(c2[i], c_ref[i], 1e-4f);
}

TEST(Ops, ProjectLinfStaysInBall)
{
    Rng rng(5);
    Tensor center = Tensor::randn({64}, rng);
    Tensor x = Tensor::randn({64}, rng, 3.0f);
    ops::projectLinf(center, 0.3f, x);
    EXPECT_LE(ops::linfDistance(center, x), 0.3f + 1e-6f);
}

TEST(Ops, ProjectLinfIdempotentInsideBall)
{
    Tensor center({4}, 0.0f);
    Tensor x({4});
    x[0] = 0.1f; x[1] = -0.2f; x[2] = 0.0f; x[3] = 0.25f;
    Tensor before = x;
    ops::projectLinf(center, 0.3f, x);
    for (size_t i = 0; i < x.size(); ++i)
        EXPECT_FLOAT_EQ(x[i], before[i]);
}

TEST(Rng, ForkProducesDifferentStreams)
{
    Rng parent(1);
    Rng c1 = parent.fork();
    Rng c2 = parent.fork();
    EXPECT_NE(c1.uniform(), c2.uniform());
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        int v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
    }
}

} // namespace
} // namespace twoinone
