/**
 * @file
 * Tests for the RpsEngine precision-switchable inference engine: the
 * cached forwardAt(bits) path must be bit-identical to a from-scratch
 * fake-quant forward at every candidate precision, and deterministic
 * for a fixed RNG seed regardless of the thread count (CMake re-runs
 * this binary under TWOINONE_THREADS=1 and =4; within one process the
 * ScopedSerial guard pins the serial-vs-parallel comparison).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/thread_pool.hh"
#include "nn/model_zoo.hh"
#include "quant/rps_engine.hh"

namespace twoinone {
namespace {

Network
makeResidualNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 8;
    return preActResNetMini(cfg, rng);
}

Network
makeTinyNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    return convNetTiny(cfg, rng);
}

Tensor
makeInput(uint64_t seed)
{
    Rng rng(seed);
    return Tensor::uniform({4, 3, 8, 8}, rng, 0.0f, 1.0f);
}

void
expectBitIdentical(const Tensor &a, const Tensor &b, int bits)
{
    ASSERT_EQ(a.shape(), b.shape()) << "bits=" << bits;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "bits=" << bits << " i=" << i;
}

/** Cached forward == uncached fake-quant forward, every candidate. */
TEST(RpsEngine, CachedForwardBitIdenticalAllPrecisions)
{
    Network net = makeResidualNet(42);
    Tensor x = makeInput(7);
    RpsEngine engine(net);
    EXPECT_EQ(engine.set().bits(), PrecisionSet::rps4to16().bits());

    for (int bits : engine.set().bits()) {
        // Reference: detach the caches and run the re-quantizing path.
        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, /*train=*/false);

        Tensor y_cached = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, y_cached, bits);
    }
}

/** Same property on the Linear-headed tiny net (covers Linear). */
TEST(RpsEngine, CachedForwardBitIdenticalTinyNet)
{
    Network net = makeTinyNet(43);
    Tensor x = makeInput(8);
    RpsEngine engine(net);

    for (int bits : engine.set().bits()) {
        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, false);
        Tensor y_cached = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, y_cached, bits);
    }
}

/** bits = 0 clears the caches and runs the full-precision path. */
TEST(RpsEngine, FullPrecisionPassThrough)
{
    Network net = makeTinyNet(44);
    Tensor x = makeInput(9);
    RpsEngine engine(net);
    engine.forwardAt(4, x); // install some cache first

    Tensor y_fp = engine.forwardAt(0, x);
    engine.detach();
    net.setPrecision(0);
    Tensor y_ref = net.forward(x, false);
    expectBitIdentical(y_ref, y_fp, 0);
}

/** A serially built+run engine matches a parallel one bit-for-bit. */
TEST(RpsEngine, DeterministicAcrossThreadCounts)
{
    Tensor x = makeInput(11);

    Network net_serial = makeResidualNet(77);
    Network net_parallel = makeResidualNet(77);
    std::unique_ptr<RpsEngine> serial_engine;
    std::vector<Tensor> serial_out;
    {
        ThreadPool::ScopedSerial guard;
        serial_engine = std::make_unique<RpsEngine>(net_serial);
        for (int bits : serial_engine->set().bits())
            serial_out.push_back(serial_engine->forwardAt(bits, x));
    }

    RpsEngine parallel_engine(net_parallel);
    const std::vector<int> &bits = parallel_engine.set().bits();
    for (size_t i = 0; i < bits.size(); ++i) {
        Tensor y = parallel_engine.forwardAt(bits[i], x);
        expectBitIdentical(serial_out[i], y, bits[i]);
    }
}

/** forwardRandom is reproducible for a fixed RNG seed. */
TEST(RpsEngine, RandomPrecisionForwardDeterministic)
{
    Network net = makeTinyNet(45);
    Tensor x = makeInput(12);
    RpsEngine engine(net);

    Rng rng_a(123), rng_b(123);
    for (int step = 0; step < 8; ++step) {
        int bits_a = 0, bits_b = 0;
        Tensor ya = engine.forwardRandom(x, rng_a, &bits_a);
        Tensor yb = engine.forwardRandom(x, rng_b, &bits_b);
        ASSERT_EQ(bits_a, bits_b);
        EXPECT_TRUE(engine.set().contains(bits_a));
        expectBitIdentical(ya, yb, bits_a);
    }
}

/** Switching installs state on the network, and predictAt agrees
 * with a plain predict at the same precision. */
TEST(RpsEngine, SwitchTracksNetworkPrecision)
{
    Network net = makeTinyNet(46);
    Tensor x = makeInput(13);
    RpsEngine engine(net);

    engine.setPrecision(8);
    EXPECT_EQ(net.activePrecision(), 8);
    EXPECT_EQ(engine.activePrecision(), 8);
    std::vector<int> cached = engine.predictAt(4, x);

    engine.detach();
    net.setPrecision(4);
    EXPECT_EQ(net.predict(x), cached);
}

/** refresh() re-syncs the cache after a weight update. */
TEST(RpsEngine, RefreshTracksWeightUpdates)
{
    Network net = makeTinyNet(47);
    Tensor x = makeInput(14);
    RpsEngine engine(net);

    // Perturb every weight through the parameter view.
    for (Parameter *p : net.parameters())
        for (size_t i = 0; i < p->value.size(); ++i)
            p->value[i] += 0.01f * static_cast<float>(i % 5);
    engine.refresh();

    for (int bits : engine.set().bits()) {
        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, false);
        Tensor y_cached = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, y_cached, bits);
    }
}

/** A subset-cached engine serves cached members from the cache and
 * the rest of the bound set uncached — all bit-identical. */
TEST(RpsEngine, SubsetCacheServesAllBoundPrecisions)
{
    Network net = makeTinyNet(49);
    Tensor x = makeInput(15);
    PrecisionSet subset({4, 8});
    RpsEngine engine(net, subset);
    EXPECT_EQ(engine.set().bits(), subset.bits());

    for (int bits : net.precisionSet().bits()) {
        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, false);
        Tensor y = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, y, bits);
    }
}

/** Cache accounting: every Conv2d/Linear at every candidate, two
 * float tensors each. */
TEST(RpsEngine, CacheAccounting)
{
    Network net = makeResidualNet(48);
    RpsEngine engine(net);

    EXPECT_EQ(engine.numQuantLayers(),
              net.weightQuantizedLayers().size());
    EXPECT_GT(engine.numQuantLayers(), 0u);

    size_t weight_scalars = 0;
    for (WeightQuantizedLayer *l : net.weightQuantizedLayers())
        weight_scalars += l->masterWeight().size();
    EXPECT_EQ(engine.cacheBytes(),
              2 * sizeof(float) * weight_scalars * engine.set().size());
}

} // namespace
} // namespace twoinone
