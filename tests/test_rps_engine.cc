/**
 * @file
 * Tests for the RpsEngine precision-switchable inference engine: the
 * cached forwardAt(bits) path must be bit-identical to a from-scratch
 * fake-quant forward at every candidate precision, and deterministic
 * for a fixed RNG seed regardless of the thread count (CMake re-runs
 * this binary under TWOINONE_THREADS=1 and =4; within one process the
 * ScopedSerial guard pins the serial-vs-parallel comparison).
 */

#include <gtest/gtest.h>

#include <memory>

#include "adversarial/epgd.hh"
#include "adversarial/trainer.hh"
#include "common/thread_pool.hh"
#include "data/synthetic.hh"
#include "nn/conv2d.hh"
#include "nn/model_zoo.hh"
#include "nn/sgd.hh"
#include "quant/rps_engine.hh"

namespace twoinone {
namespace {

Network
makeResidualNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 8;
    return preActResNetMini(cfg, rng);
}

Network
makeTinyNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    return convNetTiny(cfg, rng);
}

Tensor
makeInput(uint64_t seed)
{
    Rng rng(seed);
    return Tensor::uniform({4, 3, 8, 8}, rng, 0.0f, 1.0f);
}

void
expectBitIdentical(const Tensor &a, const Tensor &b, int bits)
{
    ASSERT_EQ(a.shape(), b.shape()) << "bits=" << bits;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "bits=" << bits << " i=" << i;
}

/** Cached forward == uncached fake-quant forward, every candidate. */
TEST(RpsEngine, CachedForwardBitIdenticalAllPrecisions)
{
    Network net = makeResidualNet(42);
    Tensor x = makeInput(7);
    RpsEngine engine(net);
    EXPECT_EQ(engine.set().bits(), PrecisionSet::rps4to16().bits());

    for (int bits : engine.set().bits()) {
        // Reference: detach the caches and run the re-quantizing path.
        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, /*train=*/false);

        Tensor y_cached = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, y_cached, bits);
    }
}

/** Same property on the Linear-headed tiny net (covers Linear). */
TEST(RpsEngine, CachedForwardBitIdenticalTinyNet)
{
    Network net = makeTinyNet(43);
    Tensor x = makeInput(8);
    RpsEngine engine(net);

    for (int bits : engine.set().bits()) {
        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, false);
        Tensor y_cached = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, y_cached, bits);
    }
}

/** bits = 0 clears the caches and runs the full-precision path. */
TEST(RpsEngine, FullPrecisionPassThrough)
{
    Network net = makeTinyNet(44);
    Tensor x = makeInput(9);
    RpsEngine engine(net);
    engine.forwardAt(4, x); // install some cache first

    Tensor y_fp = engine.forwardAt(0, x);
    engine.detach();
    net.setPrecision(0);
    Tensor y_ref = net.forward(x, false);
    expectBitIdentical(y_ref, y_fp, 0);
}

/** A serially built+run engine matches a parallel one bit-for-bit. */
TEST(RpsEngine, DeterministicAcrossThreadCounts)
{
    Tensor x = makeInput(11);

    Network net_serial = makeResidualNet(77);
    Network net_parallel = makeResidualNet(77);
    std::unique_ptr<RpsEngine> serial_engine;
    std::vector<Tensor> serial_out;
    {
        ThreadPool::ScopedSerial guard;
        serial_engine = std::make_unique<RpsEngine>(net_serial);
        for (int bits : serial_engine->set().bits())
            serial_out.push_back(serial_engine->forwardAt(bits, x));
    }

    RpsEngine parallel_engine(net_parallel);
    const std::vector<int> &bits = parallel_engine.set().bits();
    for (size_t i = 0; i < bits.size(); ++i) {
        Tensor y = parallel_engine.forwardAt(bits[i], x);
        expectBitIdentical(serial_out[i], y, bits[i]);
    }
}

/** forwardRandom is reproducible for a fixed RNG seed. */
TEST(RpsEngine, RandomPrecisionForwardDeterministic)
{
    Network net = makeTinyNet(45);
    Tensor x = makeInput(12);
    RpsEngine engine(net);

    Rng rng_a(123), rng_b(123);
    for (int step = 0; step < 8; ++step) {
        int bits_a = 0, bits_b = 0;
        Tensor ya = engine.forwardRandom(x, rng_a, &bits_a);
        Tensor yb = engine.forwardRandom(x, rng_b, &bits_b);
        ASSERT_EQ(bits_a, bits_b);
        EXPECT_TRUE(engine.set().contains(bits_a));
        expectBitIdentical(ya, yb, bits_a);
    }
}

/** Switching installs state on the network, and predictAt agrees
 * with a plain predict at the same precision. */
TEST(RpsEngine, SwitchTracksNetworkPrecision)
{
    Network net = makeTinyNet(46);
    Tensor x = makeInput(13);
    RpsEngine engine(net);

    engine.setPrecision(8);
    EXPECT_EQ(net.activePrecision(), 8);
    EXPECT_EQ(engine.activePrecision(), 8);
    std::vector<int> cached = engine.predictAt(4, x);

    engine.detach();
    net.setPrecision(4);
    EXPECT_EQ(net.predict(x), cached);
}

/** refresh() re-syncs the cache after a weight update. */
TEST(RpsEngine, RefreshTracksWeightUpdates)
{
    Network net = makeTinyNet(47);
    Tensor x = makeInput(14);
    RpsEngine engine(net);

    // Perturb every weight through the parameter view.
    for (Parameter *p : net.parameters())
        for (size_t i = 0; i < p->value.size(); ++i)
            p->value[i] += 0.01f * static_cast<float>(i % 5);
    engine.refresh();

    for (int bits : engine.set().bits()) {
        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, false);
        Tensor y_cached = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, y_cached, bits);
    }
}

/** A subset-cached engine serves cached members from the cache and
 * the rest of the bound set uncached — all bit-identical. */
TEST(RpsEngine, SubsetCacheServesAllBoundPrecisions)
{
    Network net = makeTinyNet(49);
    Tensor x = makeInput(15);
    PrecisionSet subset({4, 8});
    RpsEngine engine(net, subset);
    EXPECT_EQ(engine.set().bits(), subset.bits());

    for (int bits : net.precisionSet().bits()) {
        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, false);
        Tensor y = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, y, bits);
    }
}

/** Cache accounting: every Conv2d/Linear at every candidate holds
 * int32 codes + a float STE mask; the float view AND the tile-packed
 * kernel weights of a precision are materialized lazily on its first
 * install. */
TEST(RpsEngine, CacheAccounting)
{
    Network net = makeResidualNet(48);
    RpsEngine engine(net);

    EXPECT_EQ(engine.numQuantLayers(),
              net.weightQuantizedLayers().size());
    EXPECT_GT(engine.numQuantLayers(), 0u);

    size_t weight_scalars = 0;
    for (WeightQuantizedLayer *l : net.weightQuantizedLayers())
        weight_scalars += l->masterWeight().size();
    // Codes (4B) + mask (4B) per scalar per candidate; no float view
    // or tile pack materialized before the first switch.
    size_t base =
        2 * sizeof(float) * weight_scalars * engine.set().size();
    EXPECT_EQ(engine.cacheBytes(), base);

    // Switching to one candidate materializes exactly that column's
    // float values (one extra float per scalar) and its tile packs —
    // reproduced independently here from the cached codes.
    int bits0 = engine.set().bits()[0];
    engine.setPrecision(bits0);
    size_t pack_bytes = 0;
    for (size_t l = 0; l < engine.numQuantLayers(); ++l) {
        const QuantTensor &codes = engine.codesFor(l, bits0);
        int m = codes.shape.empty() ? 0 : codes.shape[0];
        int k = m > 0 ? static_cast<int>(codes.size()) / m : 0;
        gemm::PackedIntWeights pw;
        gemm::packWeights(codes.codes.data(), m, k, codes.bits, pw);
        pack_bytes += pw.bytes();
    }
    EXPECT_GT(pack_bytes, 0u);
    EXPECT_EQ(engine.cacheBytes(),
              base + sizeof(float) * weight_scalars + pack_bytes);
}

/** A precision switch installs ready-to-run tile-packed kernel
 * weights into every layer; detach and full-precision switches clear
 * them (the layers fall back to per-forward scratch packing). */
TEST(RpsEngine, PackedWeightsInstalledAndCleared)
{
    Network net = makeResidualNet(52);
    RpsEngine engine(net);
    std::vector<WeightQuantizedLayer *> layers =
        net.weightQuantizedLayers();

    for (int bits : engine.set().bits()) {
        engine.setPrecision(bits);
        for (WeightQuantizedLayer *l : layers) {
            const gemm::PackedIntWeights *p = l->weightPacked();
            ASSERT_NE(p, nullptr) << "bits=" << bits;
            EXPECT_FALSE(p->empty()) << "bits=" << bits;
            EXPECT_EQ(p->bits, bits);
            EXPECT_EQ(static_cast<size_t>(p->m) * p->k,
                      l->masterWeight().size());
        }
    }

    engine.detach();
    for (WeightQuantizedLayer *l : layers)
        EXPECT_EQ(l->weightPacked(), nullptr);

    engine.setPrecision(engine.set().bits()[0]);
    engine.setPrecision(0); // full precision clears the installs too
    for (WeightQuantizedLayer *l : layers)
        EXPECT_EQ(l->weightPacked(), nullptr);
}

/** After a training step, refreshDirty() keeps the installed column's
 * live tile packs current: the packed codes must re-agree with the
 * freshly quantized cell codes. */
TEST(RpsEngine, RefreshDirtyRepacksInstalledColumn)
{
    Network net = makeTinyNet(53);
    Tensor x = makeInput(18);
    RpsEngine engine(net);
    int bits = engine.set().bits()[0];
    engine.setPrecision(bits);

    // Nudge the masters like an optimizer step would (version bump).
    for (Parameter *p : net.parameters()) {
        for (size_t i = 0; i < p->value.size(); ++i)
            p->value[i] *= 1.5f;
        p->bumpVersion();
    }
    engine.refreshDirty();

    std::vector<WeightQuantizedLayer *> layers =
        net.weightQuantizedLayers();
    for (size_t l = 0; l < layers.size(); ++l) {
        const gemm::PackedIntWeights *inst = layers[l]->weightPacked();
        ASSERT_NE(inst, nullptr);
        const QuantTensor &codes = engine.codesFor(l, bits);
        int m = codes.shape.empty() ? 0 : codes.shape[0];
        int k = m > 0 ? static_cast<int>(codes.size()) / m : 0;
        gemm::PackedIntWeights fresh;
        gemm::packWeights(codes.codes.data(), m, k, codes.bits, fresh);
        EXPECT_EQ(inst->p8, fresh.p8) << "layer=" << l;
        EXPECT_EQ(inst->p16, fresh.p16) << "layer=" << l;
        EXPECT_EQ(inst->rowSum, fresh.rowSum) << "layer=" << l;
    }
}

/** EPGD cycling precisions mid-attack behind the engine's back: the
 * installed precision serves every lookup from the cache, every other
 * candidate falls back to re-quantization — counted exactly. */
TEST(RpsEngine, EpgdMidAttackCacheAccounting)
{
    Network net = makeTinyNet(50);
    Tensor x = makeInput(16);
    std::vector<int> labels(static_cast<size_t>(x.dim(0)), 1);
    RpsEngine engine(net);
    const size_t nlayers = engine.numQuantLayers();
    const size_t nprec = engine.set().size();

    engine.setPrecision(4);
    engine.resetCacheStats();

    AttackConfig acfg;
    acfg.steps = 3;
    EpgdAttack attack(acfg, net.precisionSet());
    Rng rng(99);
    attack.perturb(net, x, labels, rng);

    // Per step and per candidate, every weight layer quantizes twice
    // (forward + backward input-gradient). Only the installed
    // precision (4) hits the cache.
    uint64_t per_candidate = static_cast<uint64_t>(acfg.steps) * 2 *
                             nlayers;
    EXPECT_EQ(engine.cacheHits(), per_candidate);
    EXPECT_EQ(engine.cacheMisses(), per_candidate * (nprec - 1));

    engine.resetCacheStats();
    EXPECT_EQ(engine.cacheHits(), 0u);
    EXPECT_EQ(engine.cacheMisses(), 0u);
}

/** refreshDirty() notes exactly the layers whose Parameter::version
 * moved (without re-quantizing anything), and the lazily rebuilt
 * cache serves bit-identical forwards. */
TEST(RpsEngine, DirtyRefreshTracksVersions)
{
    Network net = makeTinyNet(51);
    Tensor x = makeInput(17);
    RpsEngine engine(net);

    // Nothing dirty yet.
    EXPECT_EQ(engine.refreshDirty(), 0u);

    // Touch one layer's weights through the Parameter view with a
    // version bump: exactly one layer is newly noted. With no column
    // installed (nothing consumes the cache yet), noting is pure
    // bookkeeping — no cell re-quantizes until install time.
    std::vector<WeightQuantizedLayer *> wl = net.weightQuantizedLayers();
    auto *conv = dynamic_cast<Conv2d *>(wl[0]);
    ASSERT_NE(conv, nullptr);
    for (size_t i = 0; i < conv->weight().value.size(); ++i)
        conv->weight().value[i] += 0.01f;
    conv->weight().bumpVersion();
    uint64_t rebuilds_before = engine.columnRebuilds();
    EXPECT_EQ(engine.refreshDirty(), 1u);
    EXPECT_EQ(engine.refreshDirty(), 0u); // noted already
    EXPECT_EQ(engine.columnRebuilds(), rebuilds_before);

    // The lazily refreshed cache serves bit-identical forwards.
    for (int bits : engine.set().bits()) {
        engine.detach();
        net.setPrecision(bits);
        Tensor y_ref = net.forward(x, false);
        Tensor y = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, y, bits);
    }
}

/** The lazy column rebuild: a stale layer re-quantizes one cell for
 * the installed column (kept current by refreshDirty) and one per
 * newly installed precision — never the whole |set| column fan — and
 * a clean install rebuilds nothing. */
TEST(RpsEngine, LazyColumnRebuildOnInstall)
{
    Network net = makeTinyNet(54);
    RpsEngine engine(net);
    const size_t nlayers = engine.numQuantLayers();
    const size_t nprec = engine.set().size();

    // Construction built every cell once.
    EXPECT_EQ(engine.columnRebuilds(), nlayers * nprec);

    // Clean installs rebuild nothing.
    uint64_t base = engine.columnRebuilds();
    for (int bits : engine.set().bits())
        engine.setPrecision(bits);
    EXPECT_EQ(engine.columnRebuilds(), base);

    // Dirty one layer with precision 4 installed: refreshDirty keeps
    // exactly the installed column current (one cell — forwards may
    // consume it before any switch), the rest stays lazy.
    engine.setPrecision(4);
    std::vector<WeightQuantizedLayer *> wl = net.weightQuantizedLayers();
    auto *conv = dynamic_cast<Conv2d *>(wl[0]);
    ASSERT_NE(conv, nullptr);
    conv->weight().value[0] += 0.5f;
    conv->weight().bumpVersion();
    EXPECT_EQ(engine.refreshDirty(), 1u);
    EXPECT_EQ(engine.columnRebuilds(), base + 1);
    // Re-installing the current precision stays clean...
    engine.setPrecision(4);
    EXPECT_EQ(engine.columnRebuilds(), base + 1);
    // ...every other precision pays its one cell on first install.
    engine.setPrecision(8);
    engine.setPrecision(8);
    EXPECT_EQ(engine.columnRebuilds(), base + 2);

    // An SGD-style full dirtying rebuilds one cell per layer for the
    // installed column plus one per layer at the next switch — not
    // nlayers x |set| up front.
    for (Parameter *p : net.parameters())
        p->bumpVersion();
    base = engine.columnRebuilds();
    EXPECT_EQ(engine.refreshDirty(), nlayers);
    EXPECT_EQ(engine.columnRebuilds(), base + nlayers); // column 8
    engine.setPrecision(6);
    EXPECT_EQ(engine.columnRebuilds(), base + 2 * nlayers);

    // Detached, refreshDirty is bookkeeping only.
    engine.detach();
    for (Parameter *p : net.parameters())
        p->bumpVersion();
    base = engine.columnRebuilds();
    EXPECT_EQ(engine.refreshDirty(), nlayers);
    EXPECT_EQ(engine.columnRebuilds(), base);
}

/** An SGD step bumps every parameter version, so a subsequent
 * dirty refresh touches all weight layers. */
TEST(RpsEngine, SgdStepDirtiesAllLayers)
{
    Network net = makeTinyNet(52);
    Tensor x = makeInput(18);
    RpsEngine engine(net);

    engine.setPrecision(4);
    Tensor y = net.forward(x, /*train=*/true);
    net.zeroGrad();
    net.backward(Tensor::ones(y.shape()));
    Sgd sgd(0.01f);
    sgd.step(net.parameters());
    net.zeroGrad();

    EXPECT_EQ(engine.refreshDirty(), engine.numQuantLayers());
}

/** Free adversarial training replays several optimizer steps per
 * precision draw, so the installed column is consumed between steps
 * without a switch — refreshDirty() must keep it current. Cached
 * trajectories stay bit-identical to uncached ones. */
TEST(RpsEngine, CachedFreeTrainingMatchesUncached)
{
    SyntheticConfig dcfg;
    dcfg.trainSize = 32;
    dcfg.testSize = 8;
    Dataset data = makeSynthetic(dcfg, "rps-engine-free-test").train;

    TrainConfig base;
    base.method = TrainMethod::Free;
    base.rps = true;
    base.epochs = 1;
    base.batchSize = 16;
    base.freeReplays = 3;
    base.seed = 11;

    Network cached_net = makeTinyNet(55);
    Network uncached_net = makeTinyNet(55);

    TrainConfig cached_cfg = base;
    cached_cfg.cachedEngine = true;
    TrainConfig uncached_cfg = base;
    uncached_cfg.cachedEngine = false;

    Trainer cached(cached_net, cached_cfg);
    float l_cached = cached.fit(data);
    Trainer uncached(uncached_net, uncached_cfg);
    float l_uncached = uncached.fit(data);

    EXPECT_EQ(l_cached, l_uncached);
    std::vector<Parameter *> pa = cached_net.parameters();
    std::vector<Parameter *> pb = uncached_net.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size());
        for (size_t t = 0; t < pa[i]->value.size(); ++t)
            ASSERT_EQ(pa[i]->value[t], pb[i]->value[t])
                << "param " << i << " elem " << t;
    }
}

/** Cached RPS adversarial training (the Trainer engine hook) is
 * bit-identical to the uncached path: the dirty-refreshed cache never
 * serves stale codes. */
TEST(RpsEngine, CachedTrainingMatchesUncached)
{
    SyntheticConfig dcfg;
    dcfg.trainSize = 32;
    dcfg.testSize = 8;
    Dataset data = makeSynthetic(dcfg, "rps-engine-test").train;

    TrainConfig base;
    base.method = TrainMethod::Fgsm;
    base.rps = true;
    base.epochs = 1;
    base.batchSize = 16;
    base.seed = 7;

    Network cached_net = makeTinyNet(53);
    Network uncached_net = makeTinyNet(53);

    TrainConfig cached_cfg = base;
    cached_cfg.cachedEngine = true;
    TrainConfig uncached_cfg = base;
    uncached_cfg.cachedEngine = false;

    Trainer cached(cached_net, cached_cfg);
    float l_cached = cached.fit(data);
    Trainer uncached(uncached_net, uncached_cfg);
    float l_uncached = uncached.fit(data);

    EXPECT_EQ(l_cached, l_uncached);
    std::vector<Parameter *> pa = cached_net.parameters();
    std::vector<Parameter *> pb = uncached_net.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size());
        for (size_t t = 0; t < pa[i]->value.size(); ++t)
            ASSERT_EQ(pa[i]->value[t], pb[i]->value[t])
                << "param " << i << " elem " << t;
    }
}

} // namespace
} // namespace twoinone
