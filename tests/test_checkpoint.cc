/**
 * @file
 * Tests for the versioned model artifact and the Session facade
 * (ISSUE 5): spec-driven reconstruction, save -> load -> bit-identical
 * inference at every rps4to16 candidate (legacy and plan-executed),
 * calibration-bank persistence, engine warm start from the serialized
 * code cache (no rebuild, no cache miss), and the
 * corrupted/truncated/version-mismatch error paths. CMake re-runs
 * this binary under TWOINONE_THREADS=1/4 and TWOINONE_BACKEND=naive.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "io/checkpoint.hh"
#include "nn/loss.hh"
#include "nn/model_zoo.hh"
#include "nn/sgd.hh"
#include "quant/calibration.hh"
#include "quant/rps_engine.hh"
#include "serve/session.hh"

namespace twoinone {
namespace {

std::string
tmpPath(const std::string &name)
{
    // PID-qualified: ctest runs this binary four times (plain +
    // thread/backend matrix), possibly in parallel — fixed names
    // would let the variants delete each other's artifacts mid-test.
    return testing::TempDir() + "twoinone_" +
           std::to_string(::getpid()) + "_" + name + ".ckpt";
}

Network
makeResidualNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 8;
    return preActResNetMini(cfg, rng);
}

Network
makeTinyNet(uint64_t seed)
{
    Rng rng(seed);
    ModelConfig cfg;
    cfg.baseWidth = 4;
    return convNetTiny(cfg, rng);
}

Tensor
makeInput(uint64_t seed, int batch = 4)
{
    Rng rng(seed);
    return Tensor::uniform({batch, 3, 8, 8}, rng, 0.0f, 1.0f);
}

/** Touch BN banks the way training would: running stats move and the
 * banks claim independence from bank 0, so the checkpoint has
 * non-trivial SBN state to carry. */
void
trainBanks(Network &net, const Tensor &x)
{
    for (int bits : {0, net.precisionSet().bits().front(),
                     net.precisionSet().bits().back()}) {
        net.setPrecision(bits);
        net.forward(x, /*train=*/true);
    }
    net.setPrecision(0);
}

void
expectBitIdentical(const Tensor &a, const Tensor &b, int bits)
{
    ASSERT_EQ(a.shape(), b.shape()) << "bits=" << bits;
    for (size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "bits=" << bits << " i=" << i;
}

/** Spec round trip: a rebuilt network has the same architecture. */
TEST(Checkpoint, SpecRebuildsIdenticalArchitecture)
{
    Network net = makeResidualNet(42);
    Network rebuilt = buildFromSpec(net.spec());
    ASSERT_EQ(rebuilt.numLayers(), net.numLayers());
    for (size_t i = 0; i < net.numLayers(); ++i)
        EXPECT_EQ(rebuilt.layer(i).describe(), net.layer(i).describe());
    EXPECT_EQ(rebuilt.precisionSet().bits(), net.precisionSet().bits());
    EXPECT_EQ(rebuilt.parameterCount(), net.parameterCount());
}

/** The acceptance criterion: save (weights + BN stats + calibration
 * banks + code cache), reload via Session::fromCheckpoint in a fresh
 * Network, and get bit-identical logits at every rps4to16 candidate —
 * cached float forward, integer forward, and plan-executed. */
TEST(Checkpoint, SaveLoadBitIdenticalAtEveryCandidate)
{
    Network net = makeResidualNet(43);
    Tensor x = makeInput(7);
    trainBanks(net, x);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);

    std::string path = tmpPath("roundtrip");
    checkpoint::save(path, net, &engine);

    Session s = Session::fromCheckpoint(path);
    for (int bits : net.precisionSet().bits()) {
        Tensor f_ref = engine.forwardAt(bits, x);
        Tensor q_ref = engine.forwardQuantizedAt(bits, x);
        s.switchPrecision(bits);
        // Plan-routed session forwards against the original's legacy
        // loops: bit-identity must hold across the process boundary
        // AND the execution-path boundary.
        expectBitIdentical(f_ref, s.forward(x), bits);
        expectBitIdentical(q_ref, s.forwardQuantized(x), bits);
    }
    engine.setPrecision(0);
    s.switchPrecision(0);
    expectBitIdentical(net.forward(x, false), s.forward(x), 0);
    std::remove(path.c_str());
}

/** Calibration banks persist: the static-scale path is active after
 * reload and reproduces the original's quantization-free forward. */
TEST(Checkpoint, CalibrationBanksPersist)
{
    Network net = makeTinyNet(44);
    Tensor x = makeInput(8);
    Calibrator cal(net);
    cal.calibrate({x});
    RpsEngine engine(net);

    std::string path = tmpPath("calib");
    checkpoint::save(path, net, &engine);
    Session s = Session::fromCheckpoint(path);

    // Every reloaded quantizer still holds the recorded ranges and
    // static-scale mode.
    std::vector<ActQuant *> orig = net.actQuantLayers();
    std::vector<ActQuant *> restored = s.network().actQuantLayers();
    ASSERT_EQ(orig.size(), restored.size());
    for (size_t i = 0; i < orig.size(); ++i) {
        EXPECT_TRUE(restored[i]->staticScale());
        EXPECT_EQ(restored[i]->calibrationMax(),
                  orig[i]->calibrationMax());
    }
    for (int bits : net.precisionSet().bits()) {
        Tensor q_ref = engine.forwardQuantizedAt(bits, x);
        s.switchPrecision(bits);
        expectBitIdentical(q_ref, s.forwardQuantized(x), bits);
    }
    std::remove(path.c_str());
}

/** Warm start: restoring the serialized code cache skips the engine
 * rebuild entirely — zero cells quantized at load, zero cache misses
 * on the first switch-and-forward. */
TEST(Checkpoint, EngineCacheWarmStartSkipsRebuild)
{
    Network net = makeResidualNet(45);
    Tensor x = makeInput(9);
    RpsEngine engine(net);
    std::string path = tmpPath("warmstart");
    checkpoint::save(path, net, &engine);

    checkpoint::Checkpoint ckpt = checkpoint::Checkpoint::read(path);
    ASSERT_TRUE(ckpt.hasEngineCache());
    Network net2 = ckpt.instantiate();
    std::unique_ptr<RpsEngine> engine2 = ckpt.restoreEngine(net2);
    ASSERT_NE(engine2, nullptr);
    EXPECT_EQ(engine2->columnRebuilds(), 0u);

    engine2->resetCacheStats();
    for (int bits : net.precisionSet().bits()) {
        Tensor y_ref = engine.forwardAt(bits, x);
        expectBitIdentical(y_ref, engine2->forwardAt(bits, x), bits);
        Tensor q_ref = engine.forwardQuantizedAt(bits, x);
        expectBitIdentical(q_ref, engine2->forwardQuantizedAt(bits, x),
                           bits);
        // The restored codes are the saved codes, bit for bit.
        for (size_t l = 0; l < engine.numQuantLayers(); ++l) {
            EXPECT_EQ(engine2->codesFor(l, bits).codes,
                      engine.codesFor(l, bits).codes);
            EXPECT_EQ(engine2->codesFor(l, bits).scale,
                      engine.codesFor(l, bits).scale);
        }
    }
    // Every lookup above hit the imported cells: nothing was
    // re-quantized, nothing missed.
    EXPECT_EQ(engine2->columnRebuilds(), 0u);
    EXPECT_EQ(engine2->cacheMisses(), 0u);
    EXPECT_GT(engine2->cacheHits(), 0u);

    // Session::fromCheckpoint takes the same warm-start path.
    Session s = Session::fromCheckpoint(path);
    s.engine().resetCacheStats();
    s.switchPrecision(net.precisionSet().bits().front());
    s.forward(x);
    EXPECT_EQ(s.engine().columnRebuilds(), 0u);
    EXPECT_EQ(s.engine().cacheMisses(), 0u);
    std::remove(path.c_str());
}

/** Pack persistence (opt-in SaveOptions::includeEnginePacks): the
 * tile-packed kernel weights ride the artifact, so a warm start
 * serves every cached precision with zero column rebuilds AND zero
 * pack builds — and the restored pack bytes equal a freshly built
 * engine's, tile for tile. */
TEST(Checkpoint, EnginePacksPersistBehindTheFlag)
{
    Network net = makeResidualNet(48);
    Tensor x = makeInput(11);
    RpsEngine engine(net);
    for (int bits : net.precisionSet().bits())
        for (size_t l = 0; l < engine.numQuantLayers(); ++l)
            engine.packedFor(l, bits); // build the source packs

    std::string path = tmpPath("packs");
    checkpoint::SaveOptions opts;
    opts.includeEnginePacks = true;
    checkpoint::save(path, net, &engine, opts);

    checkpoint::Checkpoint ckpt = checkpoint::Checkpoint::read(path);
    ASSERT_TRUE(ckpt.hasEngineCache());
    ASSERT_TRUE(ckpt.hasEnginePacks());

    Session s = Session::fromCheckpoint(path);
    for (int bits : net.precisionSet().bits()) {
        Tensor q_ref = engine.forwardQuantizedAt(bits, x);
        s.switchPrecision(bits);
        expectBitIdentical(q_ref, s.forwardQuantized(x), bits);
    }
    // Pack bytes equal the source engine's (packedFor on the restored
    // engine must hit the imported pack, not rebuild one).
    for (int bits : net.precisionSet().bits())
        for (size_t l = 0; l < engine.numQuantLayers(); ++l) {
            const gemm::PackedIntWeights &a = engine.packedFor(l, bits);
            const gemm::PackedIntWeights &b =
                s.engine().packedFor(l, bits);
            EXPECT_EQ(a.m, b.m);
            EXPECT_EQ(a.k, b.k);
            EXPECT_EQ(a.bits, b.bits);
            EXPECT_EQ(a.p8, b.p8);
            EXPECT_EQ(a.p16, b.p16);
            EXPECT_EQ(a.rowSum, b.rowSum);
        }
    EXPECT_EQ(s.engine().columnRebuilds(), 0u);
    EXPECT_EQ(s.engine().packBuilds(), 0u);

    // The default save stays pack-free: the flag is opt-in, and
    // artifacts predating it parse unchanged.
    std::string plain = tmpPath("packs_plain");
    checkpoint::save(plain, net, &engine);
    EXPECT_FALSE(
        checkpoint::Checkpoint::read(plain).hasEnginePacks());

    // Session::save(path, opts) carries the packs through its own
    // round trip as well.
    std::string again = tmpPath("packs_again");
    s.save(again, opts);
    Session s2 = Session::fromCheckpoint(again);
    for (int bits : net.precisionSet().bits()) {
        Tensor q_ref = engine.forwardQuantizedAt(bits, x);
        s2.switchPrecision(bits);
        expectBitIdentical(q_ref, s2.forwardQuantized(x), bits);
    }
    EXPECT_EQ(s2.engine().columnRebuilds(), 0u);
    EXPECT_EQ(s2.engine().packBuilds(), 0u);
    std::remove(path.c_str());
    std::remove(plain.c_str());
    std::remove(again.c_str());
}

/** A cache-less artifact still loads; the session builds its engine
 * the ordinary (quantizing) way. */
TEST(Checkpoint, LoadsWithoutEngineCache)
{
    Network net = makeTinyNet(46);
    Tensor x = makeInput(10);
    RpsEngine engine(net);
    std::string path = tmpPath("nocache");
    checkpoint::save(path, net, /*engine=*/nullptr);

    checkpoint::Checkpoint ckpt = checkpoint::Checkpoint::read(path);
    EXPECT_FALSE(ckpt.hasEngineCache());
    Session s = Session::fromCheckpoint(path);
    EXPECT_GT(s.engine().columnRebuilds(), 0u);
    for (int bits : net.precisionSet().bits()) {
        Tensor y_ref = engine.forwardAt(bits, x);
        s.switchPrecision(bits);
        expectBitIdentical(y_ref, s.forward(x), bits);
    }
    std::remove(path.c_str());
}

/** Truncated, corrupted, wrong-version, and non-checkpoint inputs
 * all fail with CheckpointError — never a crash, never a silently
 * wrong model. */
TEST(Checkpoint, MalformedArtifactsThrow)
{
    Network net = makeTinyNet(47);
    RpsEngine engine(net);
    std::string path = tmpPath("malformed");
    checkpoint::save(path, net, &engine);
    std::vector<uint8_t> good = io::readFile(path);
    ASSERT_GT(good.size(), 64u);

    // Missing file.
    EXPECT_THROW(checkpoint::Checkpoint::read(tmpPath("nonexistent")),
                 io::CheckpointError);

    // Truncation at several depths: inside the header, inside the
    // payload, and just short of the checksum.
    for (size_t keep :
         {size_t(4), size_t(20), good.size() / 2, good.size() - 4}) {
        std::vector<uint8_t> cut(good.begin(),
                                 good.begin() +
                                     static_cast<ptrdiff_t>(keep));
        io::writeFile(path, cut);
        EXPECT_THROW(checkpoint::Checkpoint::read(path),
                     io::CheckpointError)
            << "kept " << keep << " bytes";
    }

    // Bit corruption in the payload: the checksum catches it.
    {
        std::vector<uint8_t> bad = good;
        bad[bad.size() / 2] ^= 0xff;
        io::writeFile(path, bad);
        EXPECT_THROW(checkpoint::Checkpoint::read(path),
                     io::CheckpointError);
    }

    // Header corruption: a flipped flags bit must read as corruption
    // (the checksum covers the header), not silently drop the engine
    // cache section.
    {
        std::vector<uint8_t> bad = good;
        bad[12] ^= 0x01; // flags u32 follows the magic + version
        io::writeFile(path, bad);
        EXPECT_THROW(checkpoint::Checkpoint::read(path),
                     io::CheckpointError);
    }

    // Future format version: refused with a version message, not
    // misparsed.
    {
        std::vector<uint8_t> bad = good;
        bad[8] = 99; // version u32 follows the 8-byte magic
        io::writeFile(path, bad);
        try {
            checkpoint::Checkpoint::read(path);
            FAIL() << "version mismatch not detected";
        } catch (const io::CheckpointError &e) {
            EXPECT_NE(std::string(e.what()).find("version"),
                      std::string::npos);
        }
    }

    // Not a checkpoint at all.
    {
        std::vector<uint8_t> junk(256, 0x5a);
        io::writeFile(path, junk);
        EXPECT_THROW(checkpoint::Checkpoint::read(path),
                     io::CheckpointError);
    }
    std::remove(path.c_str());
}

/** A checksum-valid but internally inconsistent artifact (vector
 * blobs of the wrong length) must fail checkState — the guard
 * instantiate() runs after restoring blobs, so the load throws
 * instead of reading out of bounds at inference. */
TEST(Checkpoint, InconsistentVectorStateIsRejected)
{
    Network net = makeResidualNet(50);
    EXPECT_EQ(net.checkState(), "");

    // Shrink one SBN trained-flag vector and one ActQuant calibration
    // bank through the restore pointers — exactly what loading such
    // an artifact would do before the guard.
    StateDict dict;
    net.collectState(dict);
    for (StateEntry &e : dict) {
        if (e.flags && e.name.find(".trained") != std::string::npos) {
            e.flags->resize(1);
            break;
        }
    }
    EXPECT_NE(net.checkState(), "");

    Network net2 = makeTinyNet(51);
    Calibrator cal(net2);
    Tensor x = makeInput(14);
    cal.calibrate({x});
    StateDict dict2;
    net2.collectState(dict2);
    for (StateEntry &e : dict2) {
        if (e.floats && e.name.find(".calib_max") != std::string::npos) {
            e.floats->resize(1);
            break;
        }
    }
    EXPECT_NE(net2.checkState(), "");
}

/** The Session facade end to end: fromNetwork wiring, batched
 * serving with a deterministic precision trace, and results matching
 * a direct engine forward at the traced precision. */
TEST(Session, ServeMatchesEngineForward)
{
    Network net = makeTinyNet(48);
    Tensor calx = makeInput(11, 8);
    {
        Calibrator cal(net);
        cal.calibrate({calx});
    }

    SessionConfig cfg;
    cfg.serving.maxBatch = 4; // one request per serving batch
    cfg.serving.microBatch = 2;
    cfg.serving.seed = 77;
    Session s = Session::fromNetwork(std::move(net), cfg);

    Rng req_rng(12);
    std::vector<Tensor> requests;
    for (int i = 0; i < 5; ++i)
        requests.push_back(
            Tensor::uniform({4, 3, 8, 8}, req_rng, 0.0f, 1.0f));
    std::vector<Tensor> results = s.serve(requests);
    ASSERT_EQ(results.size(), requests.size());

    const std::vector<int> &trace = s.precisionTrace();
    ASSERT_EQ(trace.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        Tensor y_ref =
            s.engine().forwardQuantizedAt(trace[i], requests[i]);
        // serve() runs plan replicas; the direct forward runs the
        // legacy loop — bit-identical with calibrated static scales.
        ASSERT_EQ(y_ref.size(), results[i].size());
        for (size_t j = 0; j < y_ref.size(); ++j)
            ASSERT_EQ(y_ref[j], results[i][j]) << "req " << i;
    }

    serve::ServeStats st = s.stats();
    EXPECT_EQ(st.requests, requests.size());
    EXPECT_EQ(st.rows, 4 * requests.size());
    EXPECT_GT(st.qps, 0.0);

    // A second session with the same seed replays the same trace.
    std::string path = tmpPath("session");
    s.save(path);
    Session s2 = Session::fromCheckpoint(path, cfg);
    std::vector<Tensor> results2 = s2.serve(requests);
    EXPECT_EQ(s2.precisionTrace(), trace);
    for (size_t i = 0; i < results.size(); ++i)
        for (size_t j = 0; j < results[i].size(); ++j)
            ASSERT_EQ(results[i][j], results2[i][j]);
    std::remove(path.c_str());
}

/** A write fault that tears the save mid-stream must surface
 * CheckpointError AND leave the previous artifact untouched: save()
 * writes to <path>.tmp and renames only on success, so the torn
 * bytes never reach the live path. */
TEST(Checkpoint, TornSaveLeavesPreviousArtifactIntact)
{
    Network net = makeTinyNet(60);
    Tensor x = makeInput(15);
    std::string path = tmpPath("torn");
    checkpoint::save(path, net);
    std::vector<uint8_t> before = io::readFile(path);
    Tensor y_ref = Session::fromCheckpoint(path).forward(x);

    io::FaultHooks hooks;
    hooks.onWrite = [](const std::string &, size_t size) {
        return size / 2; // tear every write at half its bytes
    };
    io::setFaultHooks(hooks);
    Network net2 = makeTinyNet(61); // different weights
    EXPECT_THROW(checkpoint::save(path, net2), io::CheckpointError);
    io::clearFaultHooks();

    // The artifact still holds the *previous* model, byte for byte.
    EXPECT_EQ(io::readFile(path), before);
    expectBitIdentical(y_ref, Session::fromCheckpoint(path).forward(x),
                       0);
    std::remove(path.c_str());
}

/** A transiently corrupt read (flaky storage, racing writer) is
 * healed by the retry budget: attempt 1 fails, the retry sees clean
 * bytes, and the loaded session is bit-identical to a clean load. */
TEST(Session, TransientCorruptReadRecoversViaRetry)
{
    Network net = makeTinyNet(62);
    Tensor x = makeInput(16);
    std::string path = tmpPath("transient");
    checkpoint::save(path, net);
    Tensor y_ref = Session::fromCheckpoint(path).forward(x);

    auto fired = std::make_shared<bool>(false);
    io::FaultHooks hooks;
    hooks.onRead = [fired](const std::string &,
                           std::vector<uint8_t> &bytes) {
        if (*fired)
            return; // transient: only the first read is corrupt
        *fired = true;
        bytes[bytes.size() / 2] ^= 0xff;
    };
    io::setFaultHooks(hooks);

    SessionConfig cfg;
    cfg.loadRetries = 1;
    int attempts = 0;
    std::string lastError;
    cfg.onLoadRetry = [&](int attempt, const std::string &error) {
        attempts = attempt;
        lastError = error;
    };
    Session s = Session::fromCheckpoint(path, cfg);
    io::clearFaultHooks();

    EXPECT_TRUE(*fired);
    EXPECT_EQ(attempts, 1);
    EXPECT_FALSE(lastError.empty());
    expectBitIdentical(y_ref, s.forward(x), 0);
    std::remove(path.c_str());
}

/** When the artifact stays malformed through every retry, the
 * exhausted load surfaces io::CheckpointError — a recoverable
 * condition the caller can degrade on, never a crash — after
 * observing exactly loadRetries failed attempts. */
TEST(Session, LoadRetryExhaustionIsRecoverable)
{
    Network net = makeTinyNet(63);
    std::string path = tmpPath("exhaust");
    checkpoint::save(path, net);

    io::FaultHooks hooks;
    hooks.onRead = [](const std::string &,
                      std::vector<uint8_t> &bytes) {
        bytes[bytes.size() / 2] ^= 0xff; // persistent corruption
    };
    io::setFaultHooks(hooks);

    SessionConfig cfg;
    cfg.loadRetries = 2;
    std::vector<int> attempts;
    cfg.onLoadRetry = [&](int attempt, const std::string &) {
        attempts.push_back(attempt);
    };
    EXPECT_THROW(Session::fromCheckpoint(path, cfg),
                 io::CheckpointError);
    io::clearFaultHooks();
    EXPECT_EQ(attempts, (std::vector<int>{1, 2}));

    // The process stays healthy: a clean load still works.
    Tensor x = makeInput(17);
    Session s = Session::fromCheckpoint(path);
    s.forward(x);
    std::remove(path.c_str());
}

/** A rejected precision switch (bits outside the candidate set)
 * throws serve::ServeError and leaves the previously active
 * precision serving bit-identically — the session never lands in a
 * half-switched state. */
TEST(Session, FailedSwitchPrecisionKeepsPriorPrecisionServing)
{
    Network net = makeTinyNet(64);
    Tensor x = makeInput(18);
    {
        // Static scales: forwards are a pure function of the input.
        Calibrator cal(net);
        cal.calibrate({makeInput(19, 8)});
    }
    Session s = Session::attach(net);
    int bits = s.candidates().bits().front();
    s.switchPrecision(bits);
    Tensor y_ref = s.forward(x);

    EXPECT_THROW(s.switchPrecision(7), serve::ServeError);
    EXPECT_THROW(s.switchPrecision(-1), serve::ServeError);

    EXPECT_EQ(s.activePrecision(), bits);
    expectBitIdentical(y_ref, s.forward(x), bits);
}

/** attach() leaves the caller's network routing as it found it. */
TEST(Session, AttachRestoresPlanRouting)
{
    Network net = makeTinyNet(49);
    Tensor x = makeInput(13);
    ASSERT_FALSE(net.planExecutionEnabled());
    {
        Session s = Session::attach(net);
        s.switchPrecision(8);
        s.predict(x);
        EXPECT_TRUE(net.planExecutionEnabled());
    }
    EXPECT_FALSE(net.planExecutionEnabled());
}

/** Deterministic training fixture shared by the momentum round-trip
 * tests: a fixed input batch, fixed labels, and N full-precision SGD
 * steps applied to `net` through `sgd`. */
void
trainSteps(Network &net, Sgd &sgd, int steps)
{
    Tensor x = makeInput(23, 8);
    std::vector<int> labels = {0, 1, 2, 3, 0, 1, 2, 3};
    SoftmaxCrossEntropy loss;
    net.setPrecision(0);
    for (int it = 0; it < steps; ++it) {
        Tensor logits = net.forward(x, true);
        loss.forward(logits, labels);
        net.zeroGrad();
        net.backward(loss.backward());
        sgd.step(net.parameters());
        net.zeroGrad();
    }
}

void
expectParamsBitIdentical(Network &a, Network &b)
{
    auto pa = a.parameters();
    auto pb = b.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i]->value.size(), pb[i]->value.size()) << "param " << i;
        for (size_t t = 0; t < pa[i]->value.size(); ++t)
            ASSERT_EQ(pa[i]->value[t], pb[i]->value[t])
                << "param " << i << " elem " << t;
    }
}

/** Satellite (a) acceptance: save mid-run with the optimizer, reload,
 * continue — N further steps match the uninterrupted run bit for bit,
 * because the format now carries the SGD velocity buffers. */
TEST(Checkpoint, OptimizerResumeMatchesUninterruptedRun)
{
    // Uninterrupted reference: K + M steps in one process.
    Network ref = makeTinyNet(77);
    Sgd ref_sgd(0.05f, 0.9f, 5e-4f);
    trainSteps(ref, ref_sgd, 4);

    // Interrupted twin: K steps, save with the optimizer, reload into
    // a fresh network + fresh Sgd, then the remaining M steps.
    Network net = makeTinyNet(77);
    Sgd sgd(0.05f, 0.9f, 5e-4f);
    trainSteps(net, sgd, 2);

    std::string path = tmpPath("momentum");
    checkpoint::SaveOptions opts;
    opts.optimizer = &sgd;
    checkpoint::save(path, net, nullptr, opts);

    checkpoint::Checkpoint ckpt = checkpoint::Checkpoint::read(path);
    ASSERT_TRUE(ckpt.hasOptimizerState());
    Network resumed = ckpt.instantiate();
    Sgd sgd2(0.05f, 0.9f, 5e-4f);
    ckpt.restoreOptimizer(sgd2, resumed);

    trainSteps(resumed, sgd2, 2);
    trainSteps(net, sgd, 2); // in-process continuation, same result

    expectParamsBitIdentical(net, ref);
    expectParamsBitIdentical(resumed, ref);
    std::remove(path.c_str());
}

/** The control: dropping the velocity (fresh Sgd, no restore) after
 * the same interruption diverges from the uninterrupted run — the
 * momentum section is load-bearing, not decorative. */
TEST(Checkpoint, ResumeWithoutOptimizerStateDiverges)
{
    Network ref = makeTinyNet(78);
    Sgd ref_sgd(0.05f, 0.9f, 0.0f);
    trainSteps(ref, ref_sgd, 4);

    Network net = makeTinyNet(78);
    Sgd sgd(0.05f, 0.9f, 0.0f);
    trainSteps(net, sgd, 2);

    std::string path = tmpPath("momentum_ctrl");
    checkpoint::save(path, net); // no optimizer in the artifact

    checkpoint::Checkpoint ckpt = checkpoint::Checkpoint::read(path);
    EXPECT_FALSE(ckpt.hasOptimizerState());
    Network resumed = ckpt.instantiate();
    Sgd cold(0.05f, 0.9f, 0.0f); // velocity starts at zero
    EXPECT_THROW(ckpt.restoreOptimizer(cold, resumed),
                 io::CheckpointError);
    trainSteps(resumed, cold, 2);

    auto pa = resumed.parameters();
    auto pb = ref.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    bool differs = false;
    for (size_t i = 0; i < pa.size() && !differs; ++i)
        for (size_t t = 0; t < pa[i]->value.size(); ++t)
            if (pa[i]->value[t] != pb[i]->value[t]) {
                differs = true;
                break;
            }
    EXPECT_TRUE(differs);
    std::remove(path.c_str());
}

} // namespace
} // namespace twoinone
