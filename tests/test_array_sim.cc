/**
 * @file
 * Tests for the cycle-stepped MAC-array simulator: bit-exactness
 * against a reference integer convolution, cross-module equivalence
 * with the nn library's quantized Conv2d, and schedule/cycle
 * consistency with the analytical MAC model.
 */

#include <gtest/gtest.h>

#include "accel/array_sim.hh"
#include "accel/spatial_temporal_mac.hh"
#include "nn/conv2d.hh"
#include "quant/linear_quantizer.hh"

namespace twoinone {
namespace {

/** Plain integer convolution reference. */
IntTensor
referenceConv(const IntTensor &w, const IntTensor &x, int stride,
              int padding)
{
    int k = w.shape[0], c = w.shape[1], r = w.shape[2], s = w.shape[3];
    int iy = x.shape[1], ix = x.shape[2];
    int oy = (iy + 2 * padding - r) / stride + 1;
    int ox = (ix + 2 * padding - s) / stride + 1;
    IntTensor out = IntTensor::zeros({k, oy, ox});
    for (int ki = 0; ki < k; ++ki)
        for (int y = 0; y < oy; ++y)
            for (int xx = 0; xx < ox; ++xx) {
                int64_t acc = 0;
                for (int ci = 0; ci < c; ++ci)
                    for (int ry = 0; ry < r; ++ry)
                        for (int sx = 0; sx < s; ++sx) {
                            int in_y = y * stride - padding + ry;
                            int in_x = xx * stride - padding + sx;
                            if (in_y < 0 || in_y >= iy || in_x < 0 ||
                                in_x >= ix)
                                continue;
                            acc += w.at({ki, ci, ry, sx}) *
                                   x.at({ci, in_y, in_x});
                        }
                out.at({ki, y, xx}) = acc;
            }
    return out;
}

IntTensor
randomCodes(std::vector<int> shape, int bits, Rng &rng)
{
    IntTensor t = IntTensor::zeros(std::move(shape));
    int qmax = (bits == 1) ? 1 : (1 << (bits - 1)) - 1;
    for (size_t i = 0; i < t.size(); ++i)
        t.data[i] = rng.uniformInt(-qmax, qmax);
    return t;
}

class ArraySimPrecisionSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ArraySimPrecisionSweep, BitExactAgainstReferenceConv)
{
    int bits = GetParam();
    Rng rng(500 + static_cast<uint64_t>(bits));
    IntTensor w = randomCodes({3, 2, 3, 3}, bits, rng);
    IntTensor x = randomCodes({2, 6, 6}, bits, rng);

    MacArraySimulator sim(8);
    ArraySimResult r = sim.runConv(w, x, 1, 1, bits, bits);
    IntTensor ref = referenceConv(w, x, 1, 1);

    ASSERT_EQ(r.output.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(r.output.data[i], ref.data[i]) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, ArraySimPrecisionSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16));

TEST(ArraySim, StridedAndPaddedLayers)
{
    Rng rng(42);
    IntTensor w = randomCodes({4, 3, 3, 3}, 6, rng);
    IntTensor x = randomCodes({3, 8, 8}, 6, rng);
    MacArraySimulator sim(16);
    for (int stride : {1, 2}) {
        for (int padding : {0, 1}) {
            ArraySimResult r = sim.runConv(w, x, stride, padding, 6, 6);
            IntTensor ref = referenceConv(w, x, stride, padding);
            for (size_t i = 0; i < ref.size(); ++i)
                EXPECT_EQ(r.output.data[i], ref.data[i])
                    << "stride=" << stride << " pad=" << padding;
        }
    }
}

TEST(ArraySim, AsymmetricPrecision)
{
    Rng rng(43);
    IntTensor w = randomCodes({2, 2, 3, 3}, 8, rng);
    IntTensor x = randomCodes({2, 5, 5}, 4, rng);
    MacArraySimulator sim(4);
    ArraySimResult r = sim.runConv(w, x, 1, 0, 8, 4);
    IntTensor ref = referenceConv(w, x, 1, 0);
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(r.output.data[i], ref.data[i]);
}

TEST(ArraySim, CyclesScaleWithArraySize)
{
    Rng rng(44);
    IntTensor w = randomCodes({8, 4, 3, 3}, 8, rng);
    IntTensor x = randomCodes({4, 8, 8}, 8, rng);
    MacArraySimulator small(2), big(32);
    uint64_t c_small = small.runConv(w, x, 1, 1, 8, 8).cycles;
    uint64_t c_big = big.runConv(w, x, 1, 1, 8, 8).cycles;
    EXPECT_GT(c_small, c_big);
    // 16x more units -> close to 16x fewer cycles on a large layer.
    EXPECT_NEAR(static_cast<double>(c_small) / c_big, 16.0, 2.0);
}

TEST(ArraySim, CyclesMatchMacModelSchedule)
{
    // One unit, reduction that exactly fills passes: the cycle count
    // must equal passes x cyclesPerPass of the analytic model.
    Rng rng(45);
    IntTensor w = randomCodes({1, 4, 1, 1}, 8, rng); // reduction 4 = ways
    IntTensor x = randomCodes({4, 2, 2}, 8, rng);
    MacArraySimulator sim(1);
    ArraySimResult r = sim.runConv(w, x, 1, 0, 8, 8);

    SpatialTemporalMacModel model(4);
    // 4 output pixels, each one pass of 4 pairs at 4 cycles.
    EXPECT_EQ(r.cycles,
              4u * static_cast<uint64_t>(model.cyclesPerPass(8, 8)));
    EXPECT_EQ(r.macs, 16u);
    EXPECT_EQ(r.idleMacSlots, 0u);
}

TEST(ArraySim, IdleSlotsOnRaggedReduction)
{
    Rng rng(46);
    // Reduction length 5 at 8-bit (ways=4): 2 passes, 3 idle slots
    // per output pixel.
    IntTensor w = randomCodes({1, 5, 1, 1}, 8, rng);
    IntTensor x = randomCodes({5, 1, 1}, 8, rng);
    MacArraySimulator sim(1);
    ArraySimResult r = sim.runConv(w, x, 1, 0, 8, 8);
    EXPECT_EQ(r.macs, 5u);
    EXPECT_EQ(r.idleMacSlots, 3u);
}

TEST(ArraySim, MatchesNnQuantizedConvolution)
{
    // Cross-module invariant: quantize a Conv2d's weights and inputs
    // with the nn-side quantizer, run the integer codes through the
    // bit-true array, dequantize, and match the nn library's
    // fake-quantized forward pass.
    Rng rng(47);
    Conv2d conv(2, 3, 3, 1, 1, false, rng);
    Tensor x = Tensor::uniform({1, 2, 6, 6}, rng, 0.0f, 1.0f);

    const int bits = 6;
    QuantState qs;
    qs.weightBits = bits;
    conv.setQuantState(qs);

    // nn-side execution: fake-quant weights, real-valued activations
    // quantized explicitly here so both sides see identical codes.
    float a_scale = 0.0f;
    std::vector<int32_t> a_codes =
        LinearQuantizer::quantizeToIntSymmetric(x, bits, &a_scale);
    Tensor x_q(x.shape());
    for (size_t i = 0; i < x.size(); ++i)
        x_q[i] = static_cast<float>(a_codes[i]) * a_scale;
    Tensor y_nn = conv.forward(x_q, false);

    // Array-side execution on the integer codes.
    float w_scale = 0.0f;
    std::vector<int32_t> w_codes = LinearQuantizer::quantizeToIntSymmetric(
        conv.weight().value, bits, &w_scale);
    IntTensor w_int = IntTensor::zeros({3, 2, 3, 3});
    for (size_t i = 0; i < w_int.size(); ++i)
        w_int.data[i] = w_codes[i];
    IntTensor x_int = IntTensor::zeros({2, 6, 6});
    for (size_t i = 0; i < x_int.size(); ++i)
        x_int.data[i] = a_codes[i];

    MacArraySimulator sim(8);
    ArraySimResult r = sim.runConv(w_int, x_int, 1, 1, bits, bits);

    for (size_t i = 0; i < r.output.size(); ++i) {
        float dequant = static_cast<float>(r.output.data[i]) * w_scale *
                        a_scale;
        EXPECT_NEAR(dequant, y_nn[i], 2e-3f) << "at " << i;
    }
}

} // namespace
} // namespace twoinone
