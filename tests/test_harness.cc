/**
 * @file
 * Tests for the scenario harness (ISSUE 6): the deterministic JSON
 * toolchain, path-addressed spec validation, the bounded quantile
 * sketch, seed-deterministic fault corruption, baseline diffing with
 * named missing/extra keys, the event journal's byte/digest
 * stability, and an end-to-end scenario run covering the three
 * headline faults (corrupted checkpoint load, cache-eviction storm,
 * thread-pool starvation) with same-seed rerun determinism. CMake
 * re-runs this binary under TWOINONE_THREADS=1/4 and
 * TWOINONE_BACKEND=naive — scenario digests must not change.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/rng.hh"
#include "common/stats.hh"
#include "harness/baseline.hh"
#include "harness/event_journal.hh"
#include "harness/fault_injector.hh"
#include "harness/json.hh"
#include "harness/runner.hh"
#include "harness/scenario.hh"

namespace twoinone {
namespace harness {
namespace {

std::string
tmpDir(const std::string &name)
{
    // PID-qualified: the ctest matrix runs this binary several times,
    // possibly in parallel.
    return testing::TempDir() + "twoinone_harness_" +
           std::to_string(::getpid()) + "_" + name;
}

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

// ---------------------------------------------------------------------------
// JSON toolchain
// ---------------------------------------------------------------------------

TEST(HarnessJson, RoundTripPreservesOrderAndValues)
{
    std::string text =
        "{\"zeta\":1,\"alpha\":[true,null,\"x\\n\"],\"n\":-2.5}";
    Json j = Json::parse(text);
    EXPECT_EQ(j.dump(), text); // insertion order + number formatting
    EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(HarnessJson, IntegralNumbersPrintWithoutDecimalPoint)
{
    EXPECT_EQ(formatJsonNumber(42.0), "42");
    EXPECT_EQ(formatJsonNumber(-3.0), "-3");
    EXPECT_EQ(Json::parse(formatJsonNumber(0.1)).asNumber(), 0.1);
}

TEST(HarnessJson, ParseErrorsCarryLineAndColumn)
{
    try {
        Json::parse("{\n  \"a\": 1,\n  \"a\": 2\n}");
        FAIL() << "duplicate key accepted";
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("duplicate object key"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos);
    }
    EXPECT_THROW(Json::parse("[1, 2"), JsonError);
    EXPECT_THROW(Json::parse("{\"a\": tru}"), JsonError);
    EXPECT_THROW(Json::parse("1 2"), JsonError);
}

// ---------------------------------------------------------------------------
// Bounded quantile sketch (ServingRuntime latency stats)
// ---------------------------------------------------------------------------

TEST(QuantileSketch, QuantilesWithinRelativeErrorAtFixedMemory)
{
    QuantileSketch sketch(0.05);
    Rng rng(7);
    std::vector<double> exact;
    for (int i = 0; i < 20000; ++i) {
        double v = std::exp(rng.uniform(std::log(10.0),
                                        std::log(1e6)));
        sketch.add(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double q : {0.5, 0.9, 0.99}) {
        double want =
            exact[static_cast<size_t>(q * (exact.size() - 1))];
        double got = sketch.quantile(q);
        EXPECT_NEAR(got, want, want * 0.12)
            << "q=" << q; // 2*relError + bucket midpoint slack
    }
    // Memory is a function of the value range, not the sample count.
    EXPECT_LT(sketch.buckets(), 2000u);
    sketch.clear();
    EXPECT_EQ(sketch.count(), 0u);
    EXPECT_EQ(sketch.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// Scenario validation: one actionable line with the JSON path
// ---------------------------------------------------------------------------

Json
minimalSpec()
{
    return Json::parse(R"({
      "name": "t",
      "phases": [{"type": "steady", "batches": 1}]
    })");
}

void
expectSpecError(Json doc, const std::string &wantPath,
                const std::string &wantSubstring)
{
    try {
        parseScenario(doc);
        FAIL() << "expected SpecError at " << wantPath;
    } catch (const SpecError &e) {
        EXPECT_EQ(e.path(), wantPath);
        EXPECT_NE(std::string(e.what()).find(wantSubstring),
                  std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(ScenarioSpec, UnknownKeyNamesThePathAndAllowedKeys)
{
    Json doc = minimalSpec();
    Json model = Json::object();
    model.set("archh", Json("convnet_tiny"));
    doc.set("model", model);
    expectSpecError(doc, "$.model.archh", "unknown key");
    expectSpecError(doc, "$.model.archh", "allowed: arch");
}

TEST(ScenarioSpec, OutOfRangeNamesTheBounds)
{
    Json doc = minimalSpec();
    Json data = Json::object();
    data.set("classes", Json(1));
    doc.set("data", data);
    expectSpecError(doc, "$.data.classes", "out of range [2, 1000]");
}

TEST(ScenarioSpec, MissingRequiredFieldsAreNamed)
{
    Json noName = Json::object();
    noName.set("phases", minimalSpec().members()[1].second);
    expectSpecError(noName, "$.name", "missing required field");

    Json noPhases = Json::object();
    noPhases.set("name", Json("t"));
    expectSpecError(noPhases, "$.phases", "missing required field");
}

TEST(ScenarioSpec, FaultCoordinatesValidatedAgainstPhases)
{
    Json doc = minimalSpec();
    Json faults = Json::array();
    Json f = Json::object();
    f.set("type", Json("cache_storm"));
    f.set("phase", Json(0));
    f.set("at", Json(5)); // phase 0 has a single point
    faults.push(f);
    doc.set("faults", faults);
    expectSpecError(doc, "$.faults[0].at", "out of range [0, 0]");

    // Checkpoint faults need a phase that saves/loads artifacts.
    Json doc2 = minimalSpec();
    Json f2 = Json::object();
    f2.set("type", Json("torn_save"));
    Json faults2 = Json::array();
    faults2.push(f2);
    doc2.set("faults", faults2);
    expectSpecError(doc2, "$.faults[0].phase", "requires a soak phase");
}

TEST(ScenarioSpec, BadEnumListsTheAlternatives)
{
    Json doc = minimalSpec();
    Json serving = Json::object();
    serving.set("mode", Json("int8"));
    doc.set("serving", serving);
    expectSpecError(doc, "$.serving.mode", "quantized | float");
}

// ---------------------------------------------------------------------------
// Fault corruption determinism
// ---------------------------------------------------------------------------

TEST(FaultInjector, CorruptionIsSeedDeterministic)
{
    FaultSpec f;
    f.type = "corrupt_checkpoint";
    f.mode = "bitflip";
    f.flips = 5;
    std::vector<uint8_t> a(256, 0xAB), b(256, 0xAB), c(256, 0xAB);
    corruptBytes(a, f, 99);
    corruptBytes(b, f, 99);
    corruptBytes(c, f, 100);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(a, std::vector<uint8_t>(256, 0xAB));

    f.mode = "truncate";
    std::vector<uint8_t> t(256, 0xAB);
    corruptBytes(t, f, 99);
    EXPECT_EQ(t.size(), 128u);
}

// ---------------------------------------------------------------------------
// Baseline diffing
// ---------------------------------------------------------------------------

TEST(Baseline, MissingAndExtraKeysAreNamed)
{
    Json base = Json::parse(
        "{\"counts\":{\"rows\":10,\"gone\":1},\"timing\":{\"qps\":9}}");
    Json cur = Json::parse(
        "{\"counts\":{\"rows\":10,\"added\":2},\"timing\":{\"qps\":1}}");
    CompareSpec rules;
    rules.ignore.push_back("timing");
    CompareResult res = compareBaseline(base, cur, rules);
    ASSERT_FALSE(res.ok);
    ASSERT_EQ(res.failures.size(), 2u);
    EXPECT_EQ(res.failures[0].path, "counts.gone");
    EXPECT_NE(res.failures[0].message.find("missing from current run"),
              std::string::npos);
    EXPECT_EQ(res.failures[1].path, "counts.added");
    EXPECT_NE(res.failures[1].message.find("extra key not in baseline"),
              std::string::npos);
}

TEST(Baseline, TolerancesAndExactRules)
{
    Json base = Json::parse(
        "{\"accuracy\":{\"nat\":80.0},\"counts\":{\"rows\":10}}");
    Json cur = Json::parse(
        "{\"accuracy\":{\"nat\":82.0},\"counts\":{\"rows\":10}}");
    CompareSpec rules;
    rules.absTol.emplace_back("accuracy", 5.0);
    EXPECT_TRUE(compareBaseline(base, cur, rules).ok);

    rules.absTol.clear();
    rules.absTol.emplace_back("accuracy", 1.0);
    CompareResult res = compareBaseline(base, cur, rules);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.failures[0].path, "accuracy.nat");
    EXPECT_NE(res.failures[0].message.find("allowed abs_tol 1"),
              std::string::npos);

    // exact wins over a covering tolerance rule.
    rules.absTol.clear();
    rules.absTol.emplace_back("accuracy", 100.0);
    rules.exact.push_back("accuracy.nat");
    EXPECT_FALSE(compareBaseline(base, cur, rules).ok);
}

TEST(Baseline, PathMatchingIsPrefixSafe)
{
    EXPECT_TRUE(pathMatches("counts", "counts.rows"));
    EXPECT_TRUE(pathMatches("phases", "phases[2]"));
    EXPECT_FALSE(pathMatches("counts", "counts_extra"));
    EXPECT_FALSE(pathMatches("counts.rows", "counts"));
}

// ---------------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------------

TEST(EventJournal, SequencedLinesAndStableDigest)
{
    std::string dir = tmpDir("journal");
    ensureDir(dir);
    uint64_t d1 = 0, d2 = 0;
    std::string text1;
    for (int round = 0; round < 2; ++round) {
        EventJournal j(dir + "/events.jsonl");
        Json detail = Json::object();
        detail.set("value", Json(7));
        j.emit("first", detail);
        j.emit("second");
        EXPECT_EQ(j.count(), 2u);
        j.close();
        if (round == 0) {
            d1 = j.digest();
            text1 = readAll(dir + "/events.jsonl");
        } else {
            d2 = j.digest();
        }
    }
    EXPECT_EQ(d1, d2);
    EXPECT_EQ(text1,
              "{\"seq\":0,\"type\":\"first\",\"value\":7}\n"
              "{\"seq\":1,\"type\":\"second\"}\n");
    EXPECT_EQ(readAll(dir + "/events.jsonl"), text1);
}

// ---------------------------------------------------------------------------
// End to end: headline faults + same-seed determinism
// ---------------------------------------------------------------------------

/** A fast scenario exercising the three headline faults: corrupted
 * checkpoint load (transient and persistent), a cache-eviction
 * storm, and thread-pool starvation, plus a malformed request. */
ScenarioSpec
e2eSpec()
{
    return parseScenario(Json::parse(R"({
      "name": "e2e",
      "seed": 31,
      "model": {"arch": "convnet_tiny", "base_width": 4,
                "calibrate_batches": 1},
      "data": {"classes": 3, "size": 8, "train": 32, "test": 32},
      "serving": {"max_batch": 8, "micro_batch": 4},
      "session": {"load_retries": 1},
      "phases": [
        {"type": "steady", "batches": 3, "requests_per_batch": 2,
         "rows_per_request": 3},
        {"type": "soak", "cycles": 2, "batches_per_cycle": 1,
         "requests_per_batch": 2, "rows_per_request": 3,
         "checkpoint_every": 1}
      ],
      "faults": [
        {"type": "cache_storm", "phase": 0, "at": 0, "storms": 2},
        {"type": "starve_pool", "phase": 0, "at": 1},
        {"type": "malformed_request", "phase": 0, "at": 2,
         "kind": "wrong_rank"},
        {"type": "corrupt_checkpoint", "phase": 1, "at": 0,
         "mode": "bitflip"},
        {"type": "corrupt_checkpoint", "phase": 1, "at": 1,
         "mode": "truncate", "persistent": true}
      ]
    })"));
}

uint64_t
countMetric(const Json &metrics, const std::string &key)
{
    const Json *counts = metrics.find("counts");
    const Json *v = counts->find(key);
    return static_cast<uint64_t>(v->asNumber());
}

TEST(ScenarioRunner, HeadlineFaultsRecoverAndRerunsAreByteIdentical)
{
    std::string out1 = tmpDir("e2e_a");
    std::string out2 = tmpDir("e2e_b");
    RunResult r1 = ScenarioRunner(e2eSpec(), out1).run();
    RunResult r2 = ScenarioRunner(e2eSpec(), out2).run();

    // Every injected fault was survived.
    EXPECT_TRUE(r1.faultsRecovered);
    EXPECT_EQ(countMetric(r1.metrics, "faults_injected"), 5u);
    EXPECT_EQ(countMetric(r1.metrics, "faults_recovered"), 5u);
    EXPECT_EQ(countMetric(r1.metrics, "degraded"), 1u);
    EXPECT_GE(countMetric(r1.metrics, "load_retries"), 2u);
    EXPECT_EQ(countMetric(r1.metrics, "rejected_requests"), 1u);
    EXPECT_EQ(countMetric(r1.metrics, "cache_storms"), 1u);

    // Same-seed reruns: byte-identical journals (different --out
    // dirs), identical digests and counts.
    EXPECT_EQ(readAll(out1 + "/e2e/events.jsonl"),
              readAll(out2 + "/e2e/events.jsonl"));
    EXPECT_EQ(r1.metrics.find("digests")->dump(),
              r2.metrics.find("digests")->dump());
    EXPECT_EQ(r1.metrics.find("counts")->dump(),
              r2.metrics.find("counts")->dump());

    // The evidence bundle is complete.
    EXPECT_FALSE(readAll(out1 + "/e2e/run.json").empty());
    EXPECT_FALSE(readAll(out1 + "/e2e/metrics.json").empty());
    EXPECT_FALSE(readAll(out1 + "/e2e/model.ckpt").empty());
}

TEST(ScenarioRunner, BaselineCompareCatchesCountDrift)
{
    std::string out = tmpDir("e2e_drift");
    ScenarioSpec spec = e2eSpec();
    RunResult r = ScenarioRunner(spec, out).run();

    CompareSpec rules;
    rules.exact.push_back("counts");
    rules.ignore.push_back("timing");
    rules.ignore.push_back("digests.events");
    rules.absTol.emplace_back("accuracy", 100.0);
    EXPECT_TRUE(compareBaseline(r.metrics, r.metrics, rules).ok);

    // Tamper with one count: the diff names the drifted key.
    Json tampered = Json::parse(r.metrics.dump());
    Json counts = *tampered.find("counts");
    counts.set("faults_recovered",
               Json(countMetric(r.metrics, "faults_recovered") - 1));
    tampered.set("counts", counts);
    CompareResult res = compareBaseline(tampered, r.metrics, rules);
    ASSERT_FALSE(res.ok);
    EXPECT_EQ(res.failures[0].path, "counts.faults_recovered");
}

} // namespace
} // namespace harness
} // namespace twoinone
