/**
 * @file
 * Tests for the adversarial suite: attack invariants (ball membership,
 * loss increase, effectiveness), trainer behaviour, and the evaluation
 * harness.
 */

#include <gtest/gtest.h>

#include "adversarial/autoattack.hh"
#include "adversarial/bandits.hh"
#include "adversarial/cw.hh"
#include "adversarial/epgd.hh"
#include "adversarial/evaluation.hh"
#include "adversarial/fgsm.hh"
#include "adversarial/pgd.hh"
#include "adversarial/trainer.hh"
#include "nn/batchnorm.hh"
#include "nn/model_zoo.hh"
#include "tensor/ops.hh"

namespace twoinone {
namespace {

/** Small fixture: a tiny net trained briefly on a tiny dataset. */
class AdversarialFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        rng_ = std::make_unique<Rng>(77);
        SyntheticConfig dcfg;
        dcfg.trainSize = 256;
        dcfg.testSize = 96;
        dcfg.seed = 5;
        data_ = makeSynthetic(dcfg, "test");

        ModelConfig mcfg;
        mcfg.baseWidth = 4;
        mcfg.precisions = PrecisionSet({4, 8});
        net_ = std::make_unique<Network>(preActResNetMini(mcfg, *rng_));

        TrainConfig tcfg;
        tcfg.method = TrainMethod::Natural;
        tcfg.epochs = 4;
        tcfg.batchSize = 32;
        tcfg.lr = 0.08f;
        Trainer trainer(*net_, tcfg);
        trainer.fit(data_.train);
        net_->setPrecision(0);
    }

    std::unique_ptr<Rng> rng_;
    DatasetPair data_;
    std::unique_ptr<Network> net_;
};

TEST_F(AdversarialFixture, ModelLearnedTheTask)
{
    double acc = naturalAccuracy(*net_, data_.test);
    EXPECT_GT(acc, 60.0);
}

TEST_F(AdversarialFixture, PgdStaysInEpsBall)
{
    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 10);
    PgdAttack attack(cfg);
    Dataset b = data_.test.batch(0, 16);
    Tensor adv = attack.perturb(*net_, b.images, b.labels, *rng_);
    EXPECT_LE(ops::linfDistance(b.images, adv), cfg.eps + 1e-5f);
    EXPECT_GE(*std::min_element(adv.data(), adv.data() + adv.size()),
              0.0f);
    EXPECT_LE(*std::max_element(adv.data(), adv.data() + adv.size()),
              1.0f);
}

TEST_F(AdversarialFixture, PgdIncreasesLoss)
{
    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 10);
    PgdAttack attack(cfg);
    Dataset b = data_.test.batch(0, 32);

    std::vector<float> clean = perSampleCeLoss(*net_, b.images, b.labels);
    Tensor adv = attack.perturb(*net_, b.images, b.labels, *rng_);
    std::vector<float> attacked = perSampleCeLoss(*net_, adv, b.labels);

    double clean_mean = 0.0, adv_mean = 0.0;
    for (size_t i = 0; i < clean.size(); ++i) {
        clean_mean += clean[i];
        adv_mean += attacked[i];
    }
    EXPECT_GT(adv_mean, clean_mean);
}

TEST_F(AdversarialFixture, PgdBeatsNaturalAccuracy)
{
    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 20);
    PgdAttack attack(cfg);
    double nat = naturalAccuracy(*net_, data_.test);
    double rob = robustAccuracy(*net_, attack, data_.test, 0, 0, *rng_);
    EXPECT_LT(rob, nat);
}

TEST_F(AdversarialFixture, MoreStepsIsNoWeaker)
{
    Dataset sub = data_.test.batch(0, 64);
    AttackConfig weak = AttackConfig::fromEps255(8.0f, 2.0f, 2);
    AttackConfig strong = AttackConfig::fromEps255(8.0f, 2.0f, 20);
    weak.randomStart = strong.randomStart = false;
    PgdAttack a_weak(weak), a_strong(strong);
    Rng r1(1), r2(1);
    double acc_weak =
        robustAccuracy(*net_, a_weak, sub, 0, 0, r1);
    double acc_strong =
        robustAccuracy(*net_, a_strong, sub, 0, 0, r2);
    EXPECT_LE(acc_strong, acc_weak + 5.0);
}

TEST_F(AdversarialFixture, FgsmIsOneStep)
{
    AttackConfig cfg;
    cfg.eps = 8.0f / 255.0f;
    FgsmAttack attack(cfg);
    Dataset b = data_.test.batch(0, 8);
    Tensor adv = attack.perturb(*net_, b.images, b.labels, *rng_);
    // Every changed pixel moved by exactly eps (unless clamped).
    int moved = 0;
    for (size_t i = 0; i < adv.size(); ++i) {
        float d = std::fabs(adv[i] - b.images[i]);
        if (d > 1e-6f) {
            ++moved;
            EXPECT_LE(d, cfg.eps + 1e-5f);
        }
    }
    EXPECT_GT(moved, 0);
}

TEST_F(AdversarialFixture, FgsmRsStaysInBall)
{
    AttackConfig cfg;
    cfg.eps = 8.0f / 255.0f;
    cfg.alpha = 1.25f * cfg.eps;
    FgsmRsAttack attack(cfg);
    Dataset b = data_.test.batch(0, 8);
    Tensor adv = attack.perturb(*net_, b.images, b.labels, *rng_);
    EXPECT_LE(ops::linfDistance(b.images, adv), cfg.eps + 1e-5f);
}

TEST_F(AdversarialFixture, CwInfStaysInBallAndHurts)
{
    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 15);
    CwInfAttack attack(cfg);
    Dataset b = data_.test.batch(0, 48);
    Tensor adv = attack.perturb(*net_, b.images, b.labels, *rng_);
    EXPECT_LE(ops::linfDistance(b.images, adv), cfg.eps + 1e-5f);

    std::vector<int> pred_clean = net_->predict(b.images);
    std::vector<int> pred_adv = net_->predict(adv);
    int clean_ok = 0, adv_ok = 0;
    for (size_t i = 0; i < b.labels.size(); ++i) {
        clean_ok += (pred_clean[i] == b.labels[i]);
        adv_ok += (pred_adv[i] == b.labels[i]);
    }
    EXPECT_LE(adv_ok, clean_ok);
}

TEST_F(AdversarialFixture, AutoAttackNoWeakerThanSinglePgd)
{
    Dataset sub = data_.test.batch(0, 64);
    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 10);
    PgdAttack pgd(cfg);
    AutoAttackLite aa(cfg);
    Rng r1(3), r2(3);
    double acc_pgd = robustAccuracy(*net_, pgd, sub, 0, 0, r1);
    double acc_aa = robustAccuracy(*net_, aa, sub, 0, 0, r2);
    EXPECT_LE(acc_aa, acc_pgd + 5.0);
}

TEST_F(AdversarialFixture, BanditsUsesNoGradientsAndStaysInBall)
{
    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 12);
    BanditsAttack attack(cfg);
    Dataset b = data_.test.batch(0, 16);
    Tensor adv = attack.perturb(*net_, b.images, b.labels, *rng_);
    EXPECT_LE(ops::linfDistance(b.images, adv), cfg.eps + 1e-5f);
}

TEST_F(AdversarialFixture, EpgdRestoresActivePrecision)
{
    net_->setPrecision(8);
    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 3);
    EpgdAttack attack(cfg, net_->precisionSet());
    Dataset b = data_.test.batch(0, 8);
    attack.perturb(*net_, b.images, b.labels, *rng_);
    EXPECT_EQ(net_->activePrecision(), 8);
    net_->setPrecision(0);
}

TEST_F(AdversarialFixture, TransferMatrixDiagonalIsWorst)
{
    // Transferred attacks should on average beat same-precision
    // attacks in robust accuracy (paper Fig. 1 observation 2).
    PrecisionSet set({4, 8});
    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 10);
    PgdAttack attack(cfg);
    Dataset sub = data_.test.batch(0, 64);
    auto m = transferMatrix(*net_, attack, sub, set, *rng_);

    double diag = (m[0][0] + m[1][1]) / 2.0;
    double off = (m[0][1] + m[1][0]) / 2.0;
    EXPECT_GE(off, diag - 5.0);
}

TEST(Trainer, MethodNames)
{
    EXPECT_EQ(trainMethodName(TrainMethod::Pgd7), "PGD-7");
    EXPECT_EQ(trainMethodName(TrainMethod::FgsmRs), "FGSM-RS");
    EXPECT_EQ(trainMethodName(TrainMethod::Free), "Free");
}

TEST(Trainer, NaturalTrainingImprovesAccuracy)
{
    Rng rng(31);
    SyntheticConfig dcfg;
    dcfg.numClasses = 4;
    dcfg.trainSize = 192;
    dcfg.testSize = 96;
    DatasetPair data = makeSynthetic(dcfg, "t");

    ModelConfig mcfg;
    mcfg.baseWidth = 4;
    mcfg.numClasses = 4;
    Network net = convNetTiny(mcfg, rng);
    double before = naturalAccuracy(net, data.test);

    TrainConfig tcfg;
    tcfg.method = TrainMethod::Natural;
    tcfg.epochs = 6;
    tcfg.batchSize = 32;
    tcfg.lr = 0.08f;
    Trainer trainer(net, tcfg);
    trainer.fit(data.train);
    net.setPrecision(0);
    double after = naturalAccuracy(net, data.test);
    EXPECT_GT(after, before);
    EXPECT_GT(after, 50.0);
}

TEST(Trainer, RpsTrainingTouchesAllSbnBanks)
{
    Rng rng(32);
    SyntheticConfig dcfg;
    dcfg.trainSize = 128;
    dcfg.testSize = 32;
    DatasetPair data = makeSynthetic(dcfg, "t");

    ModelConfig mcfg;
    mcfg.baseWidth = 4;
    mcfg.precisions = PrecisionSet({4, 8});
    Network net = convNetTiny(mcfg, rng);

    TrainConfig tcfg;
    tcfg.method = TrainMethod::Fgsm;
    tcfg.rps = true;
    tcfg.epochs = 6;
    tcfg.batchSize = 16;
    Trainer trainer(net, tcfg);
    trainer.fit(data.train);

    // The SBN of the first BN layer must have moved in banks 1 and 2
    // (precision banks) but not in bank 0 (full precision, unused).
    auto *bn = dynamic_cast<SwitchableBatchNorm2d *>(&net.layer(1));
    ASSERT_NE(bn, nullptr);
    float moved1 = 0.0f, moved2 = 0.0f, moved0 = 0.0f;
    for (int c = 0; c < bn->channels(); ++c) {
        moved0 += std::fabs(bn->runningMean(0)[static_cast<size_t>(c)]);
        moved1 += std::fabs(bn->runningMean(1)[static_cast<size_t>(c)]);
        moved2 += std::fabs(bn->runningMean(2)[static_cast<size_t>(c)]);
    }
    EXPECT_EQ(moved0, 0.0f);
    EXPECT_GT(moved1, 0.0f);
    EXPECT_GT(moved2, 0.0f);
}

TEST(Trainer, FreeTakesMultipleStepsPerBatch)
{
    Rng rng(33);
    SyntheticConfig dcfg;
    dcfg.trainSize = 64;
    dcfg.testSize = 32;
    DatasetPair data = makeSynthetic(dcfg, "t");

    ModelConfig mcfg;
    mcfg.baseWidth = 4;
    Network net = convNetTiny(mcfg, rng);

    TrainConfig tcfg;
    tcfg.method = TrainMethod::Free;
    tcfg.epochs = 1;
    tcfg.batchSize = 32;
    tcfg.freeReplays = 4;
    Trainer trainer(net, tcfg);
    trainer.fit(data.train);
    // 2 batches x 4 replays.
    EXPECT_EQ(trainer.stepsTaken(), 8);
}

TEST(Evaluation, RpsAccuraciesAreWellFormed)
{
    Rng rng(34);
    SyntheticConfig dcfg;
    dcfg.trainSize = 96;
    dcfg.testSize = 64;
    DatasetPair data = makeSynthetic(dcfg, "t");

    ModelConfig mcfg;
    mcfg.baseWidth = 4;
    mcfg.precisions = PrecisionSet({4, 8});
    Network net = convNetTiny(mcfg, rng);

    double nat = rpsNaturalAccuracy(net, data.test, net.precisionSet(),
                                    rng);
    EXPECT_GE(nat, 0.0);
    EXPECT_LE(nat, 100.0);

    AttackConfig cfg = AttackConfig::fromEps255(8.0f, 2.0f, 2);
    PgdAttack attack(cfg);
    double rob = rpsRobustAccuracy(net, attack, data.test,
                                   net.precisionSet(), rng);
    EXPECT_GE(rob, 0.0);
    EXPECT_LE(rob, 100.0);
}

TEST(Data, SyntheticDatasetsAreWellFormed)
{
    DatasetPair p = makeCifar10Like(0.25);
    EXPECT_EQ(p.train.numClasses, 10);
    EXPECT_EQ(p.train.size(), 256);
    EXPECT_EQ(p.test.size(), 128);
    for (int label : p.train.labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, 10);
    }
    for (size_t i = 0; i < p.train.images.size(); ++i) {
        EXPECT_GE(p.train.images[i], 0.0f);
        EXPECT_LE(p.train.images[i], 1.0f);
    }
}

TEST(Data, AllFourStandInsGenerate)
{
    EXPECT_GT(makeCifar10Like(0.1).train.size(), 0);
    EXPECT_EQ(makeCifar100Like(0.1).train.numClasses, 20);
    EXPECT_EQ(makeSvhnLike(0.1).train.numClasses, 10);
    EXPECT_EQ(makeImageNetLike(0.1).train.images.dim(2), 12);
}

TEST(Data, GenerationIsDeterministicPerSeed)
{
    DatasetPair a = makeCifar10Like(0.1, 99);
    DatasetPair b = makeCifar10Like(0.1, 99);
    EXPECT_EQ(a.train.labels, b.train.labels);
    for (size_t i = 0; i < a.train.images.size(); ++i)
        EXPECT_EQ(a.train.images[i], b.train.images[i]);
}

TEST(Data, BatchSlicingMatchesSource)
{
    DatasetPair p = makeCifar10Like(0.1);
    Dataset b = p.train.batch(3, 5);
    EXPECT_EQ(b.size(), 5);
    EXPECT_EQ(b.labels[0], p.train.labels[3]);
    Tensor row = p.train.images.slice0(3, 1);
    for (size_t i = 0; i < row.size(); ++i)
        EXPECT_EQ(b.images[i], row[i]);
}

} // namespace
} // namespace twoinone
