/**
 * @file
 * The serving autotuner: searches the joint serving configuration
 * space (ServingGenome — batch geometry, age close, plan replicas,
 * precision-set composition + draw weights, scheduling policy) with
 * the generic evolutionary loop (optimizer/evolutionary.hh
 * evolveGenome over a ServingSearchSpace) against a hybrid objective:
 *
 *  - **Analytical precision/layer terms**: per-row cycle costs from
 *    `Accelerator::sweep` (PerformancePredictor, static-scale
 *    activation quantization — the calibrated serving datapath),
 *    weighted by the genome's precision draw distribution.
 *  - **Deterministic serving simulation** for the batching/replica/
 *    policy terms: a virtual-time event model of the Server's batch
 *    formation (size close / age close / flush, shard parallelism
 *    over a *nominal* worker count, per-batch switch+dispatch
 *    overhead, a two-tenant deadline round for the scheduling
 *    policy). Doubles only, no clocks, no thread-pool reads — the
 *    objective (and therefore the winning genome and TuningArtifact
 *    bytes) is a pure function of the tuning seed and the model.
 *
 * Measured probes — short `BatchExecutor::execute` runs on the live
 * model, memoized per batch geometry — calibrate a cycles→ns factor
 * on the default configuration and report the predicted-vs-measured
 * error per evaluated candidate, keeping the cost model falsifiable.
 * Probe timings feed *only* the reports, never the search or the
 * artifact.
 */

#ifndef TWOINONE_TUNE_AUTOTUNER_HH
#define TWOINONE_TUNE_AUTOTUNER_HH

#include <cstdint>
#include <vector>

#include "optimizer/serving_space.hh"
#include "serve/runtime.hh"
#include "tune/artifact.hh"

namespace twoinone {

class Session;

namespace tune {

/** Autotuner budget and knobs. */
struct TuneConfig
{
    /** Search seed (the artifact records it; same seed + same model =
     * same winning genome and artifact bytes). */
    uint64_t seed = 97;
    /** Evolutionary population per cycle. */
    int population = 12;
    /** Evolutionary cycles. */
    int cycles = 6;
    /** Run measured probes and fill the per-candidate error reports.
     * Off = pure analytical tuning (same winner; empty measurements —
     * the probes never feed the search). */
    bool measuredProbes = true;
    /** Rows per measured probe (clamped to the probed geometry's
     * maxBatch). */
    int probeRows = 16;
    /** Upper bound on searched maxBatch. */
    int maxBatchCap = 128;
};

/** One evaluated candidate with its predicted-vs-measured report. */
struct CandidateReport
{
    ServingGenome genome;
    /** Hybrid objective value (the search's cost). */
    double cost = 0.0;
    /** Calibrated per-row prediction at the probed precision (ns). */
    double predictedRowNs = 0.0;
    /** Measured per-row probe at the same geometry+precision (ns);
     * 0 when probes are disabled. */
    double measuredRowNs = 0.0;
    /** |predicted - measured| / measured * 100; 0 when unprobed. */
    double errorPct = 0.0;
};

/** Outcome of one autotune() run. */
struct TuneResult
{
    /** The deterministic winner (persist via checkpoint::SaveOptions
     * or TuningArtifact::bytes()). */
    TuningArtifact artifact;
    /** Winner's objective value. */
    double bestCost = 0.0;
    /** Best cost per cycle (convergence trace). */
    std::vector<double> costHistory;
    /** Distinct genomes the cost functor evaluated, in first-seen
     * order, each with its predicted-vs-measured report. */
    std::vector<CandidateReport> candidates;
    /** Cost-functor invocations (>= candidates.size(); duplicate
     * genomes re-use their memoized evaluation). */
    size_t evaluated = 0;
    /** Mean errorPct over probed candidates (0 when probes are off). */
    double meanErrorPct = 0.0;
    bool found = false;
};

/**
 * Tune @p session's serving configuration. Reads the model
 * architecture (for the analytical cost) and — when
 * cfg.measuredProbes — executes short probe batches through a
 * BatchExecutor on the session's network+engine; the session's
 * serving config itself is not modified (apply the winner via
 * applyGenome / checkpoint round-trip). The session must have a
 * non-empty SessionConfig::inputShape.
 */
TuneResult autotune(Session &session, const TuneConfig &cfg = TuneConfig());

/**
 * Apply @p genome's session-scoped knobs (batch geometry, replicas,
 * precision draw distribution) to @p serving in place. The
 * server-scoped knobs (max-delay, scheduling policy) live in
 * ServerConfig — serve::Server::addTenant adopts them from the first
 * tenant's artifact.
 */
void applyGenome(const ServingGenome &genome, serve::ServeConfig &serving);

} // namespace tune
} // namespace twoinone

#endif // TWOINONE_TUNE_AUTOTUNER_HH
