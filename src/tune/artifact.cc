/**
 * @file
 * TuningArtifact serialization.
 */

#include "tune/artifact.hh"

namespace twoinone {
namespace tune {

bool
TuningArtifact::operator==(const TuningArtifact &o) const
{
    return version == o.version && seed == o.seed &&
           genome == o.genome && predictedCost == o.predictedCost;
}

void
TuningArtifact::write(io::Writer &w) const
{
    w.u32(version);
    w.u64(seed);
    w.i32(genome.maxBatch);
    w.i32(genome.microBatch);
    w.f32(static_cast<float>(genome.maxDelayUs));
    w.i32(genome.replicas);
    w.i32(genome.policy);
    w.intVec(genome.drawBits);
    w.intVec(genome.drawWeights);
    w.f32(predictedCost);
}

TuningArtifact
TuningArtifact::read(io::Reader &r)
{
    TuningArtifact a;
    a.version = r.u32();
    if (a.version != kTuningVersion)
        throw io::CheckpointError(
            "unsupported tuning artifact version " +
            std::to_string(a.version) + " (this build reads version " +
            std::to_string(kTuningVersion) + ")");
    a.seed = r.u64();
    a.genome.maxBatch = r.i32();
    a.genome.microBatch = r.i32();
    a.genome.maxDelayUs = static_cast<double>(r.f32());
    a.genome.replicas = r.i32();
    a.genome.policy = r.i32();
    a.genome.drawBits = r.intVec();
    a.genome.drawWeights = r.intVec();
    a.predictedCost = r.f32();
    if (a.genome.maxBatch <= 0 || a.genome.microBatch <= 0 ||
        a.genome.microBatch > a.genome.maxBatch ||
        a.genome.maxDelayUs < 0.0 || a.genome.replicas < 0 ||
        (a.genome.policy != 0 && a.genome.policy != 1) ||
        a.genome.drawBits.empty() ||
        a.genome.drawWeights.size() != a.genome.drawBits.size())
        throw io::CheckpointError(
            "corrupt tuning artifact: invalid serving genome");
    return a;
}

std::vector<uint8_t>
TuningArtifact::bytes() const
{
    io::Writer w;
    write(w);
    return w.bytes();
}

TuningArtifact
TuningArtifact::fromBytes(const std::vector<uint8_t> &bytes)
{
    io::Reader r(bytes.data(), bytes.size());
    TuningArtifact a = read(r);
    if (!r.atEnd())
        throw io::CheckpointError(
            "corrupt tuning artifact: trailing bytes");
    return a;
}

} // namespace tune
} // namespace twoinone
