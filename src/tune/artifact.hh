/**
 * @file
 * TuningArtifact — the versioned, byte-deterministic record of a
 * serving-autotuner run: the winning ServingGenome, the seed that
 * found it, and its predicted (analytical) cost.
 *
 * The artifact deliberately carries only *deterministic* values:
 * measured probe timings never enter it, so the same tuning seed on
 * the same model reproduces the same artifact bytes on any machine —
 * the bit-tight acceptance contract of the autotuner. It serializes
 * through io::Writer/Reader and rides inside a checkpoint as the
 * tuning section (io/checkpoint kFlagTuning), which
 * Session::fromCheckpoint and serve::Server auto-apply.
 */

#ifndef TWOINONE_TUNE_ARTIFACT_HH
#define TWOINONE_TUNE_ARTIFACT_HH

#include <cstdint>
#include <vector>

#include "io/serialize.hh"
#include "optimizer/serving_space.hh"

namespace twoinone {
namespace tune {

/** Current tuning-artifact format version. */
constexpr uint32_t kTuningVersion = 1;

/**
 * The persisted outcome of one autotune() run.
 */
struct TuningArtifact
{
    uint32_t version = kTuningVersion;
    /** Search seed the winner was found with. */
    uint64_t seed = 0;
    /** The winning serving configuration. */
    ServingGenome genome;
    /** The winner's analytical objective value (f32 on disk — the
     * io layer has no f64 primitive). */
    float predictedCost = 0.0f;

    bool operator==(const TuningArtifact &o) const;
    bool operator!=(const TuningArtifact &o) const
    {
        return !(*this == o);
    }

    /** Append the artifact to @p w (the checkpoint tuning section). */
    void write(io::Writer &w) const;

    /** Parse one artifact at @p r's cursor; throws
     * io::CheckpointError on malformation or a future version. */
    static TuningArtifact read(io::Reader &r);

    /** Standalone serialized form (tests, the tune CLI --save). */
    std::vector<uint8_t> bytes() const;
    static TuningArtifact fromBytes(const std::vector<uint8_t> &bytes);
};

} // namespace tune
} // namespace twoinone

#endif // TWOINONE_TUNE_ARTIFACT_HH
