/**
 * @file
 * Serving autotuner implementation.
 *
 * Cost-model constants are expressed relative to the *default
 * configuration's* analytical per-row cost, so the same constants are
 * meaningful from the test-sized tiny nets to the bench models. The
 * virtual-time simulation uses a nominal worker count (kSimWorkers)
 * instead of the live thread pool on purpose: the objective must be a
 * pure function of (seed, model) so the winning genome — and the
 * TuningArtifact bytes — reproduce across TWOINONE_THREADS settings
 * and machines.
 */

#include "tune/autotuner.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include "accel/accelerator.hh"
#include "common/logging.hh"
#include "optimizer/evolutionary.hh"
#include "serve/session.hh"
#include "workloads/layer_shape.hh"

namespace twoinone {
namespace tune {

namespace {

/** Nominal shard workers of the virtual-time sim (NOT the live pool:
 * determinism across thread settings). */
constexpr int kSimWorkers = 4;
/** Per-batch overhead (precision switch + dispatch), in units of the
 * default config's per-row cost. */
constexpr double kOverheadRows = 2.0;
/** Per-shard dispatch cost, in default-row units. */
constexpr double kShardRows = 0.25;
/** Synthetic request size of the sim (rows per request — matches the
 * serving benches). */
constexpr int kSimRowsPerReq = 4;
/** Requests simulated per evaluation. */
constexpr int kSimRequests = 64;
/** Weight of the scheduling-round term in the objective. */
constexpr double kSchedWeight = 0.25;
/** Robustness penalties: precision-set coverage and draw skew (the
 * paper's Fig. 11 trade-off — a tuner chasing pure throughput would
 * otherwise collapse the RPS defense to its cheapest candidate). */
constexpr double kCoverPenalty = 0.12;
constexpr double kSkewPenalty = 0.08;

/**
 * Walk a NetworkSpec into the predictor's NetworkWorkload: every
 * weight-bearing layer becomes a ConvShape (preact blocks expand to
 * their two 3x3 convolutions plus the 1x1 shortcut when present —
 * mirroring PreActBlock's construction); pooling/stride updates the
 * tracked activation geometry.
 */
NetworkWorkload
workloadFromSpec(const NetworkSpec &spec,
                 const std::vector<int> &input_shape)
{
    TWOINONE_ASSERT(input_shape.size() == 3,
                    "serving autotune expects a [C, H, W] image shape");
    int ch = input_shape[0];
    int h = input_shape[1];
    int w = input_shape[2];

    NetworkWorkload wl;
    wl.name = "serving";
    auto conv = [&](const std::string &name, int in, int out, int k,
                    int stride, int pad) {
        ConvShape s;
        s.name = name;
        s.n = 1;
        s.k = out;
        s.c = in;
        s.r = k;
        s.s = k;
        s.stride = stride;
        s.oy = (h + 2 * pad - k) / stride + 1;
        s.ox = (w + 2 * pad - k) / stride + 1;
        wl.layers.push_back(s);
        ch = out;
        h = s.oy;
        w = s.ox;
    };

    for (size_t i = 0; i < spec.layers.size(); ++i) {
        const LayerSpec &ls = spec.layers[i];
        const std::string tag = "L" + std::to_string(i);
        if (ls.kind == "conv2d") {
            conv(tag, ls.args[0], ls.args[1], ls.args[2], ls.args[3],
                 ls.args[4]);
        } else if (ls.kind == "preact") {
            int in = ls.args[0], out = ls.args[1], stride = ls.args[2];
            int h0 = h, w0 = w;
            conv(tag + ".conv1", in, out, 3, stride, 1);
            conv(tag + ".conv2", out, out, 3, 1, 1);
            if (stride != 1 || in != out) {
                // The 1x1 shortcut reads the block input geometry.
                int sh = h, sw = w;
                h = h0;
                w = w0;
                conv(tag + ".shortcut", in, out, 1, stride, 0);
                h = sh;
                w = sw;
            }
        } else if (ls.kind == "linear") {
            wl.layers.push_back(ConvShape::fullyConnected(
                tag, ls.args[0], ls.args[1], 1));
            ch = ls.args[1];
            h = 1;
            w = 1;
        } else if (ls.kind == "gap") {
            h = 1;
            w = 1;
        } else if (ls.kind == "avgpool2x2") {
            h = std::max(1, h / 2);
            w = std::max(1, w / 2);
        }
        // sbn / relu / actquant / flatten: geometry-preserving.
    }
    TWOINONE_ASSERT(!wl.layers.empty(),
                    "network spec has no predictable layers");
    return wl;
}

/** Semantic validity against the model set (the seed genome may sit
 * off the search grids; children are grid-valid by construction). */
bool
usable(const ServingGenome &g, const PrecisionSet &model_set)
{
    if (g.maxBatch <= 0 || g.microBatch <= 0 ||
        g.microBatch > g.maxBatch || g.maxDelayUs < 0.0 ||
        g.replicas < 0 || (g.policy != 0 && g.policy != 1))
        return false;
    if (g.drawBits.empty() ||
        g.drawWeights.size() != g.drawBits.size())
        return false;
    for (size_t i = 0; i < g.drawBits.size(); ++i) {
        if (!model_set.contains(g.drawBits[i]))
            return false;
        if (g.drawWeights[i] <= 0)
            return false;
    }
    return true;
}

/** Draw-weighted mean of the per-precision row costs. */
double
weightedRowCost(const ServingGenome &g,
                const std::map<int, double> &row_cycles)
{
    double num = 0.0, den = 0.0;
    for (size_t i = 0; i < g.drawBits.size(); ++i) {
        double w = static_cast<double>(g.drawWeights[i]);
        num += w * row_cycles.at(g.drawBits[i]);
        den += w;
    }
    return num / den;
}

/**
 * Virtual-time single-tenant serving round: requests of kSimRowsPerReq
 * rows arrive at a fixed near-saturation gap (derived from the
 * *default* config's row cost, so cheaper precision mixes genuinely
 * buy headroom); batches close by size, age, or end-of-stream flush —
 * the Server::closeable rules — and execute with shard parallelism
 * over the nominal workers. Returns mean latency + amortized makespan
 * (both ns-equivalent; relative scale is all the search needs).
 */
double
servingRoundCost(const ServingGenome &g, double row_ns,
                 double default_row_ns)
{
    const double overhead_ns = kOverheadRows * default_row_ns;
    const double shard_ns = kShardRows * default_row_ns;
    const double gap =
        1.05 * default_row_ns * static_cast<double>(kSimRowsPerReq);
    const double delay_ns = g.maxDelayUs * 1000.0;
    const int max_reqs = std::max(1, g.maxBatch / kSimRowsPerReq);

    double server_free = 0.0, total_latency = 0.0, done_at = 0.0;
    int next = 0;
    while (next < kSimRequests) {
        double first_arr = next * gap;
        double ready = std::max(first_arr, server_free);
        // Whole requests already waiting when the server frees up.
        int count = 1;
        while (count < max_reqs && next + count < kSimRequests &&
               (next + count) * gap <= ready)
            ++count;
        double close = ready;
        if (count < max_reqs && next + count < kSimRequests) {
            // Partial batch: wait for the age close (or the flush at
            // end of stream when age closing is disabled).
            double age_close = delay_ns > 0.0
                                   ? first_arr + delay_ns
                                   : std::numeric_limits<double>::infinity();
            while (count < max_reqs && next + count < kSimRequests &&
                   (next + count) * gap <= age_close)
                ++count;
            if (count == max_reqs) {
                close = std::max(ready, (next + count - 1) * gap);
            } else if (std::isfinite(age_close)) {
                close = std::max(ready, age_close);
            } else {
                close = std::max(ready,
                                 (kSimRequests - 1) * gap); // flush
            }
        }
        int rows = count * kSimRowsPerReq;
        int shards = (rows + g.microBatch - 1) / g.microBatch;
        int repl = g.replicas > 0 ? g.replicas : kSimWorkers;
        int groups = std::max(1, std::min({kSimWorkers, repl, shards}));
        int shards_per_group = (shards + groups - 1) / groups;
        double compute =
            shards_per_group *
                (g.microBatch * row_ns + shard_ns) +
            overhead_ns;
        double done = close + compute;
        for (int i = 0; i < count; ++i)
            total_latency += done - (next + i) * gap;
        server_free = done;
        done_at = done;
        next += count;
    }
    double mean_latency =
        total_latency / static_cast<double>(kSimRequests);
    double makespan_per_req =
        done_at / static_cast<double>(kSimRequests);
    return mean_latency + makespan_per_req;
}

/**
 * Two-tenant scheduling round: tenant A's batches carry a deadline of
 * 2.2 batch times, tenant B's none; both arrive faster than one
 * server drains, so the pick order matters. EDF trades B's latency
 * for A's deadline hits; round-robin the reverse — the term that
 * makes SchedulingPolicy genuinely searchable.
 */
double
schedulingRoundCost(const ServingGenome &g, double batch_ns)
{
    const int nb = 8; // batches per tenant
    const double gap = 1.1 * batch_ns;
    const double deadline_after = 2.2 * batch_ns;
    const double miss_penalty = 3.0 * batch_ns;

    int next_a = 0, next_b = 0, cursor = 0;
    double t = 0.0, latency = 0.0;
    int misses = 0;
    while (next_a < nb || next_b < nb) {
        double arr_a = next_a < nb
                           ? next_a * gap
                           : std::numeric_limits<double>::infinity();
        double arr_b = next_b < nb
                           ? next_b * gap
                           : std::numeric_limits<double>::infinity();
        double now = std::max(t, std::min(arr_a, arr_b));
        bool a_ready = arr_a <= now;
        bool b_ready = arr_b <= now;
        bool pick_a;
        if (a_ready != b_ready) {
            pick_a = a_ready;
        } else if (g.policy == 1) {
            pick_a = true; // EDF: only A carries deadlines
        } else {
            pick_a = cursor == 0; // round-robin
            cursor = 1 - cursor;
        }
        double arr = pick_a ? arr_a : arr_b;
        double done = std::max(now, arr) + batch_ns;
        latency += done - arr;
        if (pick_a) {
            if (done > arr + deadline_after)
                ++misses;
            ++next_a;
        } else {
            ++next_b;
        }
        t = done;
    }
    return latency / static_cast<double>(2 * nb) +
           misses * miss_penalty / static_cast<double>(nb);
}

/** Coverage + skew robustness penalty (multiplicative, >= 0). */
double
robustnessPenalty(const ServingGenome &g, size_t model_candidates)
{
    double cover = static_cast<double>(g.drawBits.size()) /
                   static_cast<double>(model_candidates);
    double pen = kCoverPenalty * (1.0 - cover);
    if (g.drawBits.size() > 1) {
        double total = 0.0;
        for (int w : g.drawWeights)
            total += static_cast<double>(w);
        double entropy = 0.0;
        for (int w : g.drawWeights) {
            double p = static_cast<double>(w) / total;
            entropy -= p * std::log(p);
        }
        double max_entropy =
            std::log(static_cast<double>(g.drawBits.size()));
        pen += kSkewPenalty * (1.0 - entropy / max_entropy);
    }
    return pen;
}

/** The probe precision: the genome's most-weighted candidate (ties
 * to the larger width, matching the calibration anchor). */
int
probeBits(const ServingGenome &g)
{
    size_t best = 0;
    for (size_t i = 1; i < g.drawBits.size(); ++i)
        if (g.drawWeights[i] >= g.drawWeights[best])
            best = i;
    return g.drawBits[best];
}

/** Wall-clock one executed probe batch; returns ns per row. */
double
measureRowNs(serve::BatchExecutor &exec, int bits, int rows)
{
    std::vector<float> input(static_cast<size_t>(rows) *
                             exec.rowElems());
    // Deterministic synthetic pixels (the value pattern is irrelevant
    // to timing; no Rng so probe count never perturbs other streams).
    for (size_t i = 0; i < input.size(); ++i)
        input[i] =
            0.25f * static_cast<float>(i % 17) / 17.0f - 0.125f;
    std::vector<float> output(static_cast<size_t>(rows) *
                              exec.outCols());
    std::vector<const float *> src(static_cast<size_t>(rows));
    std::vector<float *> dst(static_cast<size_t>(rows));
    for (int r = 0; r < rows; ++r) {
        src[static_cast<size_t>(r)] =
            input.data() + static_cast<size_t>(r) * exec.rowElems();
        dst[static_cast<size_t>(r)] =
            output.data() + static_cast<size_t>(r) * exec.outCols();
    }
    exec.installPrecision(bits);
    exec.execute(src.data(), dst.data(), rows); // warm-up (arenas)
    auto start = std::chrono::steady_clock::now();
    exec.execute(src.data(), dst.data(), rows);
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    return ns / static_cast<double>(rows);
}

} // namespace

void
applyGenome(const ServingGenome &genome, serve::ServeConfig &serving)
{
    serving.maxBatch = genome.maxBatch;
    serving.microBatch = genome.microBatch;
    serving.replicas = genome.replicas;
    serving.drawBits = genome.drawBits;
    serving.drawWeights.assign(genome.drawWeights.begin(),
                               genome.drawWeights.end());
}

TuneResult
autotune(Session &session, const TuneConfig &cfg)
{
    Network &net = session.network();
    const std::vector<int> &input_shape = session.config().inputShape;
    TWOINONE_ASSERT(!input_shape.empty(),
                    "autotune needs SessionConfig::inputShape");
    const PrecisionSet &model_set = session.engine().set();

    // Analytical per-row cycle cost at every candidate precision:
    // one sweep, static-scale activations (the calibrated serving
    // datapath the probes run on).
    NetworkWorkload wl = workloadFromSpec(net.spec(), input_shape);
    Accelerator accel(AcceleratorKind::TwoInOne,
                      Accelerator::defaultAreaBudget(),
                      TechModel::defaults());
    std::vector<NetworkPrediction> preds =
        accel.sweep(wl, model_set, ActQuantMode::StaticScale);
    std::map<int, double> row_cycles;
    for (size_t i = 0; i < model_set.bits().size(); ++i)
        row_cycles[model_set.bits()[i]] = preds[i].totalCycles;

    // Seed genome = the session's current serving config (uniform
    // full-set draw, round-robin, the Server's default age close).
    const serve::ServeConfig &cur = session.config().serving;
    ServingGenome seed;
    seed.maxBatch = cur.maxBatch;
    seed.microBatch = cur.microBatch;
    seed.maxDelayUs = 1000.0;
    seed.replicas = cur.replicas;
    seed.policy = 0;
    if (cur.drawBits.empty()) {
        seed.drawBits = model_set.bits();
        seed.drawWeights.assign(seed.drawBits.size(), 1);
    } else {
        seed.drawBits = cur.drawBits;
        seed.drawWeights.assign(seed.drawBits.size(), 1);
        for (size_t i = 0; i < cur.drawWeights.size() &&
                           i < seed.drawWeights.size();
             ++i)
            seed.drawWeights[i] = std::max(
                1, static_cast<int>(cur.drawWeights[i]));
    }
    const double default_row = weightedRowCost(seed, row_cycles);

    ServingSearchSpace space(model_set.bits(), cfg.maxBatchCap);

    TuneResult result;
    std::map<std::string, size_t> seen; // genome key -> candidate idx

    auto objective = [&](const ServingGenome &g) {
        if (!usable(g, model_set))
            return std::numeric_limits<double>::infinity();
        std::string key = g.describe();
        auto it = seen.find(key);
        if (it != seen.end())
            return result.candidates[it->second].cost;
        double row = weightedRowCost(g, row_cycles);
        double serving = servingRoundCost(g, row, default_row);
        int repl = g.replicas > 0 ? g.replicas : kSimWorkers;
        int groups = std::max(
            1, std::min({kSimWorkers, repl,
                         (g.maxBatch + g.microBatch - 1) /
                             g.microBatch}));
        double batch_ns = g.maxBatch * row / groups +
                          kOverheadRows * default_row;
        double sched = schedulingRoundCost(g, batch_ns);
        double cost = (serving + kSchedWeight * sched) *
                      (1.0 + robustnessPenalty(g, model_set.size()));
        CandidateReport rep;
        rep.genome = g;
        rep.cost = cost;
        seen.emplace(std::move(key), result.candidates.size());
        result.candidates.push_back(std::move(rep));
        return cost;
    };

    EvoConfig evo;
    evo.populationSize = cfg.population;
    evo.totalCycles = cfg.cycles;
    evo.seed = cfg.seed;
    EvolveOutcome<ServingGenome> out =
        evolveGenome<ServingGenome>(space, seed, evo, objective);

    result.evaluated = out.evaluated;
    result.costHistory = std::move(out.costHistory);
    result.found = out.found;
    result.bestCost = out.bestCost;
    result.artifact.seed = cfg.seed;
    result.artifact.genome = out.found ? out.best : seed;
    result.artifact.predictedCost =
        static_cast<float>(out.found ? out.bestCost : 0.0);

    // Measured probes: calibrate cycles -> ns on the *current*
    // geometry at the model's widest candidate, then probe each
    // distinct candidate's geometry at its dominant precision. The
    // probes fill the falsifiability report only — nothing measured
    // feeds the search above or the artifact bytes.
    if (cfg.measuredProbes && out.found) {
        struct GeomProbe
        {
            double rowNs = 0.0;
        };
        std::map<std::string, GeomProbe> probes;
        auto probe = [&](const ServingGenome &g, int bits) {
            std::string key = std::to_string(g.maxBatch) + "/" +
                              std::to_string(g.microBatch) + "/" +
                              std::to_string(g.replicas) + "/" +
                              std::to_string(bits);
            auto pit = probes.find(key);
            if (pit != probes.end())
                return pit->second.rowNs;
            serve::ServeConfig pc = cur;
            pc.maxBatch = g.maxBatch;
            pc.microBatch = g.microBatch;
            pc.replicas = g.replicas;
            pc.lazyPlanWarmup = true;
            pc.drawBits.clear();
            pc.drawWeights.clear();
            serve::BatchExecutor exec(net, session.engine(),
                                      input_shape, pc);
            int rows = std::min(cfg.probeRows, g.maxBatch);
            double ns = measureRowNs(exec, bits, std::max(1, rows));
            probes.emplace(std::move(key), GeomProbe{ns});
            return ns;
        };

        int anchor_bits = model_set.maxBits();
        double anchor_ns = probe(seed, anchor_bits);
        double kappa = anchor_ns / row_cycles.at(anchor_bits);

        double err_sum = 0.0;
        size_t probed = 0;
        for (CandidateReport &rep : result.candidates) {
            if (!std::isfinite(rep.cost))
                continue;
            int bits = probeBits(rep.genome);
            rep.measuredRowNs = probe(rep.genome, bits);
            rep.predictedRowNs = kappa * row_cycles.at(bits);
            if (rep.measuredRowNs > 0.0) {
                rep.errorPct =
                    std::abs(rep.predictedRowNs - rep.measuredRowNs) /
                    rep.measuredRowNs * 100.0;
                err_sum += rep.errorPct;
                ++probed;
            }
        }
        if (probed > 0)
            result.meanErrorPct =
                err_sum / static_cast<double>(probed);
    }
    return result;
}

} // namespace tune
} // namespace twoinone
