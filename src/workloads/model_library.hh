/**
 * @file
 * The six evaluation networks of the paper's accelerator benchmarks
 * (Sec. 4.1.2): WideResNet-32 / ResNet-18 on CIFAR (32x32 inputs) and
 * AlexNet / VGG-16 / ResNet-18 / ResNet-50 on ImageNet (224x224
 * inputs), expressed as layer-shape workloads for the simulator.
 */

#ifndef TWOINONE_WORKLOADS_MODEL_LIBRARY_HH
#define TWOINONE_WORKLOADS_MODEL_LIBRARY_HH

#include "workloads/layer_shape.hh"

namespace twoinone {
namespace workloads {

/** AlexNet on 224x224 ImageNet inputs (5 conv + 3 FC). */
NetworkWorkload alexNet(int batch = 1);

/** VGG-16 on 224x224 ImageNet inputs (13 conv + 3 FC). */
NetworkWorkload vgg16(int batch = 1);

/** ResNet-18 on 224x224 ImageNet inputs (incl. projection convs). */
NetworkWorkload resNet18ImageNet(int batch = 1);

/** ResNet-50 on 224x224 ImageNet inputs (bottleneck blocks). */
NetworkWorkload resNet50(int batch = 1);

/** ResNet-18 on 32x32 CIFAR inputs. */
NetworkWorkload resNet18Cifar(int batch = 1);

/** WideResNet-32 (widen factor 10) on 32x32 CIFAR inputs. */
NetworkWorkload wideResNet32Cifar(int batch = 1);

/** PreActResNet-18 on 32x32 CIFAR inputs (RPS algorithm workload). */
NetworkWorkload preActResNet18Cifar(int batch = 1);

/** All six accelerator-benchmark networks in the paper's Fig. 7/8
 * order: ResNet-18 (CIFAR), WideResNet-32 (CIFAR), ResNet-18
 * (ImageNet), ResNet-50, VGG-16, AlexNet. */
std::vector<NetworkWorkload> benchmarkSuite(int batch = 1);

} // namespace workloads
} // namespace twoinone

#endif // TWOINONE_WORKLOADS_MODEL_LIBRARY_HH
