/**
 * @file
 * The six evaluation networks of the paper's accelerator benchmarks
 * (Sec. 4.1.2): WideResNet-32 / ResNet-18 on CIFAR (32x32 inputs) and
 * AlexNet / VGG-16 / ResNet-18 / ResNet-50 on ImageNet (224x224
 * inputs), expressed as layer-shape workloads for the simulator.
 */

#ifndef TWOINONE_WORKLOADS_MODEL_LIBRARY_HH
#define TWOINONE_WORKLOADS_MODEL_LIBRARY_HH

#include "nn/network.hh"
#include "workloads/layer_shape.hh"

namespace twoinone {
namespace workloads {

/** AlexNet on 224x224 ImageNet inputs (5 conv + 3 FC). */
NetworkWorkload alexNet(int batch = 1);

/** VGG-16 on 224x224 ImageNet inputs (13 conv + 3 FC). */
NetworkWorkload vgg16(int batch = 1);

/** ResNet-18 on 224x224 ImageNet inputs (incl. projection convs). */
NetworkWorkload resNet18ImageNet(int batch = 1);

/** ResNet-50 on 224x224 ImageNet inputs (bottleneck blocks). */
NetworkWorkload resNet50(int batch = 1);

/** ResNet-18 on 32x32 CIFAR inputs. */
NetworkWorkload resNet18Cifar(int batch = 1);

/** WideResNet-32 (widen factor 10) on 32x32 CIFAR inputs. */
NetworkWorkload wideResNet32Cifar(int batch = 1);

/** PreActResNet-18 on 32x32 CIFAR inputs (RPS algorithm workload). */
NetworkWorkload preActResNet18Cifar(int batch = 1);

/** All six accelerator-benchmark networks in the paper's Fig. 7/8
 * order: ResNet-18 (CIFAR), WideResNet-32 (CIFAR), ResNet-18
 * (ImageNet), ResNet-50, VGG-16, AlexNet. */
std::vector<NetworkWorkload> benchmarkSuite(int batch = 1);

/** @name Servable big-model stand-ins
 *
 * The shapes above feed the accelerator simulator; these builders
 * make the same architectures *runnable* — live Networks echoing each
 * big model's stage structure (stage count and per-stage block
 * counts) at a scaled base width, so end-to-end serving, streaming
 * warm starts, and cache budgets are measured on real forwards
 * instead of synthetic layer lists. At the default width the
 * ResNet-50 stand-in carries ~1.4M weights — a code cache across the
 * rps4to16 candidates runs to tens of MB, big enough that full
 * hydration vs streaming shows up in peak RSS. Input images are
 * [3, hw, hw] with hw divisible by 2^(stages-1) (default serving
 * shape: 32x32).
 */
/** @{ */

/** ResNet-18 stage structure (blocks 2-2-2-2). */
Network servableResNet18(Rng &rng, int base_width = 16,
                         int num_classes = 100);

/** ResNet-50 stage structure (blocks 3-4-6-3) — the ImageNet-class
 * headline shape for streaming/budget benchmarks. */
Network servableResNet50(Rng &rng, int base_width = 16,
                         int num_classes = 100);

/** WideResNet-32 stage structure (3 stages x 5 blocks, 2x width). */
Network servableWideResNet32(Rng &rng, int base_width = 16,
                             int num_classes = 100);

/** @} */

} // namespace workloads
} // namespace twoinone

#endif // TWOINONE_WORKLOADS_MODEL_LIBRARY_HH
