/**
 * @file
 * Layer-shape descriptors for the accelerator simulator.
 *
 * A ConvShape captures the seven-dimensional loop nest of a
 * convolutional (or, with R=S=OY=OX=1, fully connected) layer:
 * N (batch), K (output channels), C (input channels), OY/OX (output
 * spatial), R/S (kernel spatial), plus stride. These are the
 * dimensions every dataflow in src/accel tiles.
 */

#ifndef TWOINONE_WORKLOADS_LAYER_SHAPE_HH
#define TWOINONE_WORKLOADS_LAYER_SHAPE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace twoinone {

/**
 * Seven-dimensional convolution layer shape.
 */
struct ConvShape
{
    std::string name;
    int n = 1;      ///< Batch size.
    int k = 1;      ///< Output channels.
    int c = 1;      ///< Input channels.
    int oy = 1;     ///< Output rows.
    int ox = 1;     ///< Output columns.
    int r = 1;      ///< Kernel rows.
    int s = 1;      ///< Kernel columns.
    int stride = 1; ///< Spatial stride.

    /** Total multiply-accumulate count of the layer. */
    uint64_t macs() const;

    /** Weight element count (K*C*R*S). */
    uint64_t weightCount() const;

    /** Input element count including the halo (N*C*IY*IX). */
    uint64_t inputCount() const;

    /** Output element count (N*K*OY*OX). */
    uint64_t outputCount() const;

    /** Input rows consumed (OY*stride + R - stride). */
    int inY() const;

    /** Input columns consumed. */
    int inX() const;

    /** Make a fully connected layer shape. */
    static ConvShape fullyConnected(const std::string &name, int in,
                                    int out, int batch = 1);
};

/**
 * A full-network workload: ordered layer shapes plus a display name.
 */
struct NetworkWorkload
{
    std::string name;
    std::vector<ConvShape> layers;

    /** Total MACs over all layers. */
    uint64_t totalMacs() const;
};

} // namespace twoinone

#endif // TWOINONE_WORKLOADS_LAYER_SHAPE_HH
