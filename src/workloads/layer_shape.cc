/**
 * @file
 * ConvShape implementation.
 */

#include "workloads/layer_shape.hh"

namespace twoinone {

uint64_t
ConvShape::macs() const
{
    return static_cast<uint64_t>(n) * k * c * oy * ox * r * s;
}

uint64_t
ConvShape::weightCount() const
{
    return static_cast<uint64_t>(k) * c * r * s;
}

uint64_t
ConvShape::inputCount() const
{
    return static_cast<uint64_t>(n) * c * inY() * inX();
}

uint64_t
ConvShape::outputCount() const
{
    return static_cast<uint64_t>(n) * k * oy * ox;
}

int
ConvShape::inY() const
{
    return oy * stride + r - stride;
}

int
ConvShape::inX() const
{
    return ox * stride + s - stride;
}

ConvShape
ConvShape::fullyConnected(const std::string &name, int in, int out,
                          int batch)
{
    ConvShape fc;
    fc.name = name;
    fc.n = batch;
    fc.k = out;
    fc.c = in;
    return fc;
}

uint64_t
NetworkWorkload::totalMacs() const
{
    uint64_t total = 0;
    for (const ConvShape &l : layers)
        total += l.macs();
    return total;
}

} // namespace twoinone
