/**
 * @file
 * Layer-shape definitions of the evaluation networks.
 *
 * Shapes follow the original architectures (AlexNet: Krizhevsky'12
 * single-tower variant; VGG-16: Simonyan'14 configuration D;
 * ResNets: He'15; WideResNet: Zagoruyko'16 with widen factor 10).
 */

#include "workloads/model_library.hh"

#include "common/logging.hh"
#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv2d.hh"
#include "nn/linear.hh"
#include "nn/pooling.hh"
#include "nn/residual.hh"

namespace twoinone {
namespace workloads {

namespace {

/** Convenience conv-shape constructor. */
ConvShape
conv(const std::string &name, int batch, int k, int c, int out_hw, int r,
     int stride = 1)
{
    ConvShape s;
    s.name = name;
    s.n = batch;
    s.k = k;
    s.c = c;
    s.oy = out_hw;
    s.ox = out_hw;
    s.r = r;
    s.s = r;
    s.stride = stride;
    return s;
}

/** Basic-block residual stage (two 3x3 convs per block). */
void
basicStage(std::vector<ConvShape> &layers, const std::string &prefix,
           int batch, int blocks, int k, int c_in, int hw, bool downsample)
{
    for (int b = 0; b < blocks; ++b) {
        int c = (b == 0) ? c_in : k;
        int stride = (b == 0 && downsample) ? 2 : 1;
        layers.push_back(conv(prefix + "_b" + std::to_string(b) + "_conv1",
                              batch, k, c, hw, 3, stride));
        layers.push_back(conv(prefix + "_b" + std::to_string(b) + "_conv2",
                              batch, k, k, hw, 3, 1));
        if (b == 0 && (downsample || c_in != k)) {
            layers.push_back(conv(prefix + "_proj", batch, k, c_in, hw, 1,
                                  stride));
        }
    }
}

/** Bottleneck residual stage (1x1 -> 3x3 -> 1x1 per block). */
void
bottleneckStage(std::vector<ConvShape> &layers, const std::string &prefix,
                int batch, int blocks, int mid, int c_in, int hw,
                bool downsample)
{
    int out = mid * 4;
    for (int b = 0; b < blocks; ++b) {
        int c = (b == 0) ? c_in : out;
        int stride = (b == 0 && downsample) ? 2 : 1;
        std::string base = prefix + "_b" + std::to_string(b);
        layers.push_back(conv(base + "_conv1", batch, mid, c, hw, 1,
                              stride));
        layers.push_back(conv(base + "_conv2", batch, mid, mid, hw, 3, 1));
        layers.push_back(conv(base + "_conv3", batch, out, mid, hw, 1, 1));
        if (b == 0) {
            layers.push_back(conv(prefix + "_proj", batch, out, c_in, hw,
                                  1, stride));
        }
    }
}

} // namespace

NetworkWorkload
alexNet(int batch)
{
    NetworkWorkload w;
    w.name = "AlexNet";
    // conv2/4/5 are 2-way grouped in the original two-tower AlexNet;
    // the halved input-channel counts reflect that.
    w.layers.push_back(conv("conv1", batch, 96, 3, 55, 11, 4));
    w.layers.push_back(conv("conv2", batch, 256, 48, 27, 5, 1));
    w.layers.push_back(conv("conv3", batch, 384, 256, 13, 3, 1));
    w.layers.push_back(conv("conv4", batch, 384, 192, 13, 3, 1));
    w.layers.push_back(conv("conv5", batch, 256, 192, 13, 3, 1));
    w.layers.push_back(ConvShape::fullyConnected("fc6", 256 * 6 * 6, 4096,
                                                 batch));
    w.layers.push_back(ConvShape::fullyConnected("fc7", 4096, 4096, batch));
    w.layers.push_back(ConvShape::fullyConnected("fc8", 4096, 1000, batch));
    return w;
}

NetworkWorkload
vgg16(int batch)
{
    NetworkWorkload w;
    w.name = "VGG-16";
    w.layers.push_back(conv("conv1_1", batch, 64, 3, 224, 3));
    w.layers.push_back(conv("conv1_2", batch, 64, 64, 224, 3));
    w.layers.push_back(conv("conv2_1", batch, 128, 64, 112, 3));
    w.layers.push_back(conv("conv2_2", batch, 128, 128, 112, 3));
    w.layers.push_back(conv("conv3_1", batch, 256, 128, 56, 3));
    w.layers.push_back(conv("conv3_2", batch, 256, 256, 56, 3));
    w.layers.push_back(conv("conv3_3", batch, 256, 256, 56, 3));
    w.layers.push_back(conv("conv4_1", batch, 512, 256, 28, 3));
    w.layers.push_back(conv("conv4_2", batch, 512, 512, 28, 3));
    w.layers.push_back(conv("conv4_3", batch, 512, 512, 28, 3));
    w.layers.push_back(conv("conv5_1", batch, 512, 512, 14, 3));
    w.layers.push_back(conv("conv5_2", batch, 512, 512, 14, 3));
    w.layers.push_back(conv("conv5_3", batch, 512, 512, 14, 3));
    w.layers.push_back(ConvShape::fullyConnected("fc6", 512 * 7 * 7, 4096,
                                                 batch));
    w.layers.push_back(ConvShape::fullyConnected("fc7", 4096, 4096, batch));
    w.layers.push_back(ConvShape::fullyConnected("fc8", 4096, 1000, batch));
    return w;
}

NetworkWorkload
resNet18ImageNet(int batch)
{
    NetworkWorkload w;
    w.name = "ResNet-18";
    w.layers.push_back(conv("conv1", batch, 64, 3, 112, 7, 2));
    basicStage(w.layers, "stage1", batch, 2, 64, 64, 56, false);
    basicStage(w.layers, "stage2", batch, 2, 128, 64, 28, true);
    basicStage(w.layers, "stage3", batch, 2, 256, 128, 14, true);
    basicStage(w.layers, "stage4", batch, 2, 512, 256, 7, true);
    w.layers.push_back(ConvShape::fullyConnected("fc", 512, 1000, batch));
    return w;
}

NetworkWorkload
resNet50(int batch)
{
    NetworkWorkload w;
    w.name = "ResNet-50";
    w.layers.push_back(conv("conv1", batch, 64, 3, 112, 7, 2));
    bottleneckStage(w.layers, "stage1", batch, 3, 64, 64, 56, false);
    bottleneckStage(w.layers, "stage2", batch, 4, 128, 256, 28, true);
    bottleneckStage(w.layers, "stage3", batch, 6, 256, 512, 14, true);
    bottleneckStage(w.layers, "stage4", batch, 3, 512, 1024, 7, true);
    w.layers.push_back(ConvShape::fullyConnected("fc", 2048, 1000, batch));
    return w;
}

NetworkWorkload
resNet18Cifar(int batch)
{
    NetworkWorkload w;
    w.name = "ResNet-18(CIFAR)";
    w.layers.push_back(conv("conv1", batch, 64, 3, 32, 3, 1));
    basicStage(w.layers, "stage1", batch, 2, 64, 64, 32, false);
    basicStage(w.layers, "stage2", batch, 2, 128, 64, 16, true);
    basicStage(w.layers, "stage3", batch, 2, 256, 128, 8, true);
    basicStage(w.layers, "stage4", batch, 2, 512, 256, 4, true);
    w.layers.push_back(ConvShape::fullyConnected("fc", 512, 10, batch));
    return w;
}

NetworkWorkload
wideResNet32Cifar(int batch)
{
    // Depth 32 = 6n+2 with n = 5 blocks per stage, widen factor 10.
    NetworkWorkload w;
    w.name = "WideResNet-32";
    w.layers.push_back(conv("conv1", batch, 16, 3, 32, 3, 1));
    basicStage(w.layers, "stage1", batch, 5, 160, 16, 32, false);
    basicStage(w.layers, "stage2", batch, 5, 320, 160, 16, true);
    basicStage(w.layers, "stage3", batch, 5, 640, 320, 8, true);
    w.layers.push_back(ConvShape::fullyConnected("fc", 640, 10, batch));
    return w;
}

NetworkWorkload
preActResNet18Cifar(int batch)
{
    NetworkWorkload w = resNet18Cifar(batch);
    w.name = "PreActResNet-18";
    return w;
}

namespace {

/** Servable residual skeleton with per-stage block counts: stem conv
 * -> PreActBlock stages (channels double per stage, stride 2 between
 * stages) -> SBN + ReLU + ActQuant -> global average pool -> linear
 * classifier. The mirror of model_zoo's uniform-depth skeleton, but
 * parameterized the way the big models actually are (ResNet-50 is
 * 3-4-6-3, not n-n-n-n). */
Network
servableNet(const std::vector<int> &blocks, int base_width,
            int num_classes, Rng &rng)
{
    Network net(PrecisionSet::rps4to16());
    int banks = net.bnBanks();

    net.add(std::make_unique<Conv2d>(3, base_width, 3, 1, 1, false,
                                     rng));
    int in_ch = base_width;
    for (size_t s = 0; s < blocks.size(); ++s) {
        int out_ch = base_width << s;
        for (int b = 0; b < blocks[s]; ++b) {
            int stride = (s > 0 && b == 0) ? 2 : 1;
            net.add(std::make_unique<PreActBlock>(in_ch, out_ch,
                                                  stride, banks, rng));
            in_ch = out_ch;
        }
    }
    net.add(std::make_unique<SwitchableBatchNorm2d>(in_ch, banks));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<ActQuant>());
    net.add(std::make_unique<GlobalAvgPool>());
    net.add(std::make_unique<Linear>(in_ch, num_classes, true, rng));
    return net;
}

} // namespace

Network
servableResNet18(Rng &rng, int base_width, int num_classes)
{
    return servableNet({2, 2, 2, 2}, base_width, num_classes, rng);
}

Network
servableResNet50(Rng &rng, int base_width, int num_classes)
{
    return servableNet({3, 4, 6, 3}, base_width, num_classes, rng);
}

Network
servableWideResNet32(Rng &rng, int base_width, int num_classes)
{
    return servableNet({5, 5, 5}, base_width * 2, num_classes, rng);
}

std::vector<NetworkWorkload>
benchmarkSuite(int batch)
{
    return {
        resNet18Cifar(batch), wideResNet32Cifar(batch),
        resNet18ImageNet(batch), resNet50(batch), vgg16(batch),
        alexNet(batch),
    };
}

} // namespace workloads
} // namespace twoinone
