/**
 * @file
 * Implementation of tensor operations.
 *
 * Element-wise ops run through ThreadPool::parallelFor above a size
 * threshold (disjoint writes, so results are identical for any thread
 * count); the matmul variants dispatch to the gemm backend (blocked +
 * parallel by default, TWOINONE_BACKEND=naive for the reference
 * path). Summing reductions stay serial: their double accumulators
 * depend on summation order and they are cheap O(n) passes. Max
 * reductions (maxAbs/maxVal) are exact under any combination order,
 * so they parallelize over fixed-size chunks whose boundaries do not
 * depend on the thread count (serial under the naive backend).
 */

#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hh"
#include "tensor/gemm.hh"

namespace twoinone {
namespace ops {

namespace {

void
checkSameShape(const Tensor &a, const Tensor &b, const char *what)
{
    TWOINONE_ASSERT(a.sameShape(b), what, ": shape mismatch");
}

// Minimum elements per chunk for element-wise parallelism; ranges at
// or below this run inline (the parallelFor grain cutoff).
constexpr int64_t kElemGrain = 1 << 15;

/** Run f(lo, hi) over [0, n) chunks, parallel for large tensors. */
template <typename F>
void
parallelElems(size_t n, F &&f)
{
    ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(n), kElemGrain,
        [&f](int64_t lo, int64_t hi) {
            f(static_cast<size_t>(lo), static_cast<size_t>(hi));
        });
}

/**
 * max over f(a[i]) starting from 0, reduced over fixed
 * kElemGrain-sized chunks whose boundaries do not depend on the
 * thread count. Float max is exact under any combination order, so
 * the result is bit-identical to the serial reference, which the
 * naive backend keeps.
 */
template <typename F>
float
maxReduce(const Tensor &a, F &&f)
{
    const int64_t n = static_cast<int64_t>(a.size());
    const float *p = a.data();
    if (gemm::activeBackend() == gemm::Backend::Naive || n <= kElemGrain) {
        float m = 0.0f;
        for (int64_t i = 0; i < n; ++i)
            m = std::max(m, f(p[i]));
        return m;
    }
    int64_t nchunks = (n + kElemGrain - 1) / kElemGrain;
    std::vector<float> partial(static_cast<size_t>(nchunks), 0.0f);
    ThreadPool::global().parallelFor(
        0, nchunks, 1, [&](int64_t lo, int64_t hi) {
            for (int64_t c = lo; c < hi; ++c) {
                int64_t b = c * kElemGrain;
                int64_t e = std::min(n, b + kElemGrain);
                float m = 0.0f;
                for (int64_t i = b; i < e; ++i)
                    m = std::max(m, f(p[i]));
                partial[static_cast<size_t>(c)] = m;
            }
        });
    float m = 0.0f;
    for (float v : partial)
        m = std::max(m, v);
    return m;
}

} // namespace

void
gatedParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)> &fn)
{
    if (gemm::activeBackend() != gemm::Backend::Naive)
        ThreadPool::global().parallelFor(0, n, grain, fn);
    else
        fn(0, n);
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    Tensor out;
    addInto(a, b, out);
    return out;
}

void
addInto(const Tensor &a, const Tensor &b, Tensor &out)
{
    checkSameShape(a, b, "add");
    out.ensure(a.shape());
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            out[i] = a[i] + b[i];
    });
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "sub");
    Tensor out(a.shape());
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            out[i] = a[i] - b[i];
    });
    return out;
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "mul");
    Tensor out(a.shape());
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            out[i] = a[i] * b[i];
    });
    return out;
}

Tensor
addScalar(const Tensor &a, float s)
{
    Tensor out(a.shape());
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            out[i] = a[i] + s;
    });
    return out;
}

Tensor
mulScalar(const Tensor &a, float s)
{
    Tensor out(a.shape());
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            out[i] = a[i] * s;
    });
    return out;
}

Tensor &
addInPlace(Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "addInPlace");
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            a[i] += b[i];
    });
    return a;
}

Tensor &
subInPlace(Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "subInPlace");
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            a[i] -= b[i];
    });
    return a;
}

Tensor &
axpyInPlace(Tensor &a, float s, const Tensor &b)
{
    checkSameShape(a, b, "axpyInPlace");
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            a[i] += s * b[i];
    });
    return a;
}

Tensor &
mulScalarInPlace(Tensor &a, float s)
{
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            a[i] *= s;
    });
    return a;
}

Tensor &
clampInPlace(Tensor &a, float lo_v, float hi_v)
{
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            a[i] = std::min(hi_v, std::max(lo_v, a[i]));
    });
    return a;
}

Tensor
sign(const Tensor &a)
{
    Tensor out(a.shape());
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            out[i] = (a[i] > 0.0f) ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
    });
    return out;
}

Tensor
abs(const Tensor &a)
{
    Tensor out(a.shape());
    parallelElems(a.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            out[i] = std::fabs(a[i]);
    });
    return out;
}

Tensor
clamp(const Tensor &a, float lo, float hi)
{
    Tensor out = a;
    clampInPlace(out, lo, hi);
    return out;
}

float
sum(const Tensor &a)
{
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += a[i];
    return static_cast<float>(s);
}

float
mean(const Tensor &a)
{
    if (a.size() == 0)
        return 0.0f;
    return sum(a) / static_cast<float>(a.size());
}

float
maxAbs(const Tensor &a)
{
    return maxReduce(a, [](float v) { return std::fabs(v); });
}

float
maxVal(const Tensor &a)
{
    return maxReduce(a, [](float v) { return v; });
}

int
argmaxRow(const Tensor &logits, int row)
{
    TWOINONE_ASSERT(logits.ndim() == 2, "argmaxRow expects rank-2 logits");
    int cols = logits.dim(1);
    int best = 0;
    float best_v = logits.at2(row, 0);
    for (int j = 1; j < cols; ++j) {
        float v = logits.at2(row, j);
        if (v > best_v) {
            best_v = v;
            best = j;
        }
    }
    return best;
}

float
linfDistance(const Tensor &a, const Tensor &b)
{
    TWOINONE_ASSERT(a.sameShape(b), "linfDistance shape mismatch");
    float m = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

float
l2Norm(const Tensor &a)
{
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += static_cast<double>(a[i]) * a[i];
    return static_cast<float>(std::sqrt(s));
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    TWOINONE_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmul rank");
    TWOINONE_ASSERT(a.dim(1) == b.dim(0), "matmul inner-dim mismatch");
    int m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    gemm::sgemm(false, false, m, n, k, a.data(), k, b.data(), n, c.data(),
                n);
    return c;
}

Tensor
matmulTransposeB(const Tensor &a, const Tensor &b)
{
    Tensor c;
    matmulTransposeBInto(a, b, c);
    return c;
}

void
matmulTransposeBInto(const Tensor &a, const Tensor &b, Tensor &c)
{
    TWOINONE_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmulTB rank");
    TWOINONE_ASSERT(a.dim(1) == b.dim(1), "matmulTB inner-dim mismatch");
    int m = a.dim(0), k = a.dim(1), n = b.dim(0);
    c.ensure({m, n});
    gemm::sgemm(false, true, m, n, k, a.data(), k, b.data(), k, c.data(),
                n);
}

Tensor
matmulTransposeA(const Tensor &a, const Tensor &b)
{
    TWOINONE_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmulTA rank");
    TWOINONE_ASSERT(a.dim(0) == b.dim(0), "matmulTA inner-dim mismatch");
    int m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({k, n});
    // Output is [k, n] = A^T [k, m] * B [m, n]: the reduction runs
    // over m, and A is stored [m, k] so lda is the output row count.
    gemm::sgemm(true, false, k, n, m, a.data(), k, b.data(), n, c.data(),
                n);
    return c;
}

void
projectLinf(const Tensor &center, float eps, Tensor &x)
{
    TWOINONE_ASSERT(center.sameShape(x), "projectLinf shape mismatch");
    parallelElems(x.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
            float lo_v = center[i] - eps;
            float hi_v = center[i] + eps;
            x[i] = std::min(hi_v, std::max(lo_v, x[i]));
        }
    });
}

} // namespace ops
} // namespace twoinone
