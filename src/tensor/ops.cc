/**
 * @file
 * Implementation of tensor operations.
 */

#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>

namespace twoinone {
namespace ops {

namespace {

void
checkSameShape(const Tensor &a, const Tensor &b, const char *what)
{
    TWOINONE_ASSERT(a.sameShape(b), what, ": shape mismatch");
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "add");
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "sub");
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "mul");
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] * b[i];
    return out;
}

Tensor
addScalar(const Tensor &a, float s)
{
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + s;
    return out;
}

Tensor
mulScalar(const Tensor &a, float s)
{
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] * s;
    return out;
}

Tensor &
addInPlace(Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "addInPlace");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] += b[i];
    return a;
}

Tensor &
subInPlace(Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "subInPlace");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] -= b[i];
    return a;
}

Tensor &
axpyInPlace(Tensor &a, float s, const Tensor &b)
{
    checkSameShape(a, b, "axpyInPlace");
    for (size_t i = 0; i < a.size(); ++i)
        a[i] += s * b[i];
    return a;
}

Tensor &
mulScalarInPlace(Tensor &a, float s)
{
    for (size_t i = 0; i < a.size(); ++i)
        a[i] *= s;
    return a;
}

Tensor &
clampInPlace(Tensor &a, float lo, float hi)
{
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = std::min(hi, std::max(lo, a[i]));
    return a;
}

Tensor
sign(const Tensor &a)
{
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = (a[i] > 0.0f) ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
    return out;
}

Tensor
abs(const Tensor &a)
{
    Tensor out(a.shape());
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = std::fabs(a[i]);
    return out;
}

Tensor
clamp(const Tensor &a, float lo, float hi)
{
    Tensor out = a;
    clampInPlace(out, lo, hi);
    return out;
}

float
sum(const Tensor &a)
{
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += a[i];
    return static_cast<float>(s);
}

float
mean(const Tensor &a)
{
    if (a.size() == 0)
        return 0.0f;
    return sum(a) / static_cast<float>(a.size());
}

float
maxAbs(const Tensor &a)
{
    float m = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i]));
    return m;
}

int
argmaxRow(const Tensor &logits, int row)
{
    TWOINONE_ASSERT(logits.ndim() == 2, "argmaxRow expects rank-2 logits");
    int cols = logits.dim(1);
    int best = 0;
    float best_v = logits.at2(row, 0);
    for (int j = 1; j < cols; ++j) {
        float v = logits.at2(row, j);
        if (v > best_v) {
            best_v = v;
            best = j;
        }
    }
    return best;
}

float
linfDistance(const Tensor &a, const Tensor &b)
{
    TWOINONE_ASSERT(a.sameShape(b), "linfDistance shape mismatch");
    float m = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(a[i] - b[i]));
    return m;
}

float
l2Norm(const Tensor &a)
{
    double s = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        s += static_cast<double>(a[i]) * a[i];
    return static_cast<float>(std::sqrt(s));
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    TWOINONE_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmul rank");
    TWOINONE_ASSERT(a.dim(1) == b.dim(0), "matmul inner-dim mismatch");
    int m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({m, n});
    for (int i = 0; i < m; ++i) {
        for (int p = 0; p < k; ++p) {
            float av = a.at2(i, p);
            if (av == 0.0f)
                continue;
            const float *brow = b.data() + static_cast<size_t>(p) * n;
            float *crow = c.data() + static_cast<size_t>(i) * n;
            for (int j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmulTransposeB(const Tensor &a, const Tensor &b)
{
    TWOINONE_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmulTB rank");
    TWOINONE_ASSERT(a.dim(1) == b.dim(1), "matmulTB inner-dim mismatch");
    int m = a.dim(0), k = a.dim(1), n = b.dim(0);
    Tensor c({m, n});
    for (int i = 0; i < m; ++i) {
        const float *arow = a.data() + static_cast<size_t>(i) * k;
        for (int j = 0; j < n; ++j) {
            const float *brow = b.data() + static_cast<size_t>(j) * k;
            double s = 0.0;
            for (int p = 0; p < k; ++p)
                s += static_cast<double>(arow[p]) * brow[p];
            c.at2(i, j) = static_cast<float>(s);
        }
    }
    return c;
}

Tensor
matmulTransposeA(const Tensor &a, const Tensor &b)
{
    TWOINONE_ASSERT(a.ndim() == 2 && b.ndim() == 2, "matmulTA rank");
    TWOINONE_ASSERT(a.dim(0) == b.dim(0), "matmulTA inner-dim mismatch");
    int m = a.dim(0), k = a.dim(1), n = b.dim(1);
    Tensor c({k, n});
    for (int i = 0; i < m; ++i) {
        const float *arow = a.data() + static_cast<size_t>(i) * k;
        const float *brow = b.data() + static_cast<size_t>(i) * n;
        for (int p = 0; p < k; ++p) {
            float av = arow[p];
            if (av == 0.0f)
                continue;
            float *crow = c.data() + static_cast<size_t>(p) * n;
            for (int j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

void
projectLinf(const Tensor &center, float eps, Tensor &x)
{
    TWOINONE_ASSERT(center.sameShape(x), "projectLinf shape mismatch");
    for (size_t i = 0; i < x.size(); ++i) {
        float lo = center[i] - eps;
        float hi = center[i] + eps;
        x[i] = std::min(hi, std::max(lo, x[i]));
    }
}

} // namespace ops
} // namespace twoinone
