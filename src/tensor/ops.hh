/**
 * @file
 * Elementwise / reduction / linear-algebra operations on Tensor.
 *
 * All functions are shape-checked (panic on mismatch) and allocate
 * fresh outputs except the *InPlace variants used on hot paths of the
 * training loop and the attacks.
 *
 * The matmul variants dispatch to the gemm backend (blocked/parallel
 * by default, TWOINONE_BACKEND=naive for the reference path) and the
 * element-wise ops parallelize across the global ThreadPool above a
 * size threshold; see tensor/gemm.hh for the determinism contract.
 */

#ifndef TWOINONE_TENSOR_OPS_HH
#define TWOINONE_TENSOR_OPS_HH

#include <cstdint>
#include <functional>

#include "tensor/tensor.hh"

namespace twoinone {
namespace ops {

/**
 * Run fn(lo, hi) over [0, n) on the global thread pool above
 * @p grain elements, serial under TWOINONE_BACKEND=naive — the one
 * backend-gated chunking helper shared by the quantizer passes and
 * the nn-layer epilogues. Callers must make fn's writes disjoint so
 * results are identical for any thread count.
 */
void gatedParallelFor(int64_t n, int64_t grain,
                      const std::function<void(int64_t, int64_t)> &fn);

/** @name Elementwise binary ops (shapes must match) */
/** @{ */
Tensor add(const Tensor &a, const Tensor &b);
/** out = a + b into a caller-owned buffer (reshaped as needed) — the
 * allocation-free form the serving plan's residual join runs on;
 * add() wraps it, so both are bit-identical. @p out must not alias
 * the inputs. */
void addInto(const Tensor &a, const Tensor &b, Tensor &out);
Tensor sub(const Tensor &a, const Tensor &b);
Tensor mul(const Tensor &a, const Tensor &b);
/** @} */

/** @name Elementwise scalar ops */
/** @{ */
Tensor addScalar(const Tensor &a, float s);
Tensor mulScalar(const Tensor &a, float s);
/** @} */

/** @name In-place updates (a is mutated and returned by reference) */
/** @{ */
Tensor &addInPlace(Tensor &a, const Tensor &b);
Tensor &subInPlace(Tensor &a, const Tensor &b);
/** a += s * b  (axpy). */
Tensor &axpyInPlace(Tensor &a, float s, const Tensor &b);
Tensor &mulScalarInPlace(Tensor &a, float s);
/** Clamp every element into [lo, hi]. */
Tensor &clampInPlace(Tensor &a, float lo, float hi);
/** @} */

/** Elementwise sign: -1 / 0 / +1. */
Tensor sign(const Tensor &a);

/** Elementwise absolute value. */
Tensor abs(const Tensor &a);

/** Clamp copy. */
Tensor clamp(const Tensor &a, float lo, float hi);

/** @name Reductions */
/** @{ */
float sum(const Tensor &a);
float mean(const Tensor &a);
/** Maximum |a[i]| (0 for empty). Parallel over fixed-size chunks —
 * float max is exact under any combination order, so the result is
 * bit-identical to the serial reference (which TWOINONE_BACKEND=naive
 * forces). */
float maxAbs(const Tensor &a);
/** Maximum of max(a[i], 0) — the unsigned-quantizer range; same
 * chunked-parallel reduction as maxAbs. */
float maxVal(const Tensor &a);
/** Index of the maximum element of a rank-1 tensor or a row. */
int argmaxRow(const Tensor &logits, int row);
/** L-infinity distance between two same-shape tensors. */
float linfDistance(const Tensor &a, const Tensor &b);
/** L2 norm of all elements. */
float l2Norm(const Tensor &a);
/** @} */

/**
 * Row-major matrix multiply: C[m,n] = A[m,k] * B[k,n].
 */
Tensor matmul(const Tensor &a, const Tensor &b);

/**
 * Matrix multiply with transposed second operand:
 * C[m,n] = A[m,k] * B[n,k]^T. Used by Linear backward.
 *
 * Accumulates in float like the other two variants (the seed
 * accumulated this one in double; the backends keep all three
 * consistent — see tensor/gemm.hh).
 */
Tensor matmulTransposeB(const Tensor &a, const Tensor &b);

/** matmulTransposeB into a caller-owned buffer (reshaped as needed) —
 * the allocation-free form Linear's plan step runs on; the allocating
 * overload wraps it, so both hit the same backend dispatch. */
void matmulTransposeBInto(const Tensor &a, const Tensor &b, Tensor &out);

/**
 * Matrix multiply with transposed first operand:
 * C[k,n] = A[m,k]^T * B[m,n]. Used by Linear weight gradients.
 */
Tensor matmulTransposeA(const Tensor &a, const Tensor &b);

/**
 * Project b onto the L-infinity ball of radius eps centered at a,
 * in place on b (the PGD projection step).
 */
void projectLinf(const Tensor &center, float eps, Tensor &x);

} // namespace ops
} // namespace twoinone

#endif // TWOINONE_TENSOR_OPS_HH
