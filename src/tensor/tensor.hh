/**
 * @file
 * A minimal dense float tensor used by the DNN substrate.
 *
 * Tensors are contiguous row-major (NCHW for 4-D activations) float32
 * buffers with a dynamic shape of up to four dimensions. The library
 * deliberately avoids views/strides: every operation produces or
 * mutates a contiguous buffer, which keeps the manual backward passes
 * in src/nn easy to audit.
 */

#ifndef TWOINONE_TENSOR_TENSOR_HH
#define TWOINONE_TENSOR_TENSOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"

namespace twoinone {

/**
 * Dense, contiguous, row-major float tensor.
 */
class Tensor
{
  public:
    /** Empty tensor (rank 0, no elements). */
    Tensor() = default;

    /** Zero-filled tensor of the given shape. */
    explicit Tensor(std::vector<int> shape);

    /** Tensor of the given shape filled with a constant. */
    Tensor(std::vector<int> shape, float fill);

    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&) noexcept = default;
    Tensor &operator=(Tensor &&) = default;

    /** @name Factory helpers */
    /** @{ */
    static Tensor zeros(std::vector<int> shape);
    static Tensor ones(std::vector<int> shape);
    static Tensor full(std::vector<int> shape, float value);
    /** I.i.d. normal entries: mean 0, given stddev. */
    static Tensor randn(std::vector<int> shape, Rng &rng,
                        float stddev = 1.0f);
    /** I.i.d. uniform entries in [lo, hi). */
    static Tensor uniform(std::vector<int> shape, Rng &rng, float lo,
                          float hi);
    /** @} */

    /** Number of dimensions. */
    int ndim() const { return static_cast<int>(shape_.size()); }

    /** Size along dimension i (panics when out of range). */
    int dim(int i) const;

    /** Total number of elements. */
    size_t size() const { return data_.size(); }

    /** Whether the tensor holds no elements. */
    bool empty() const { return data_.empty(); }

    /** The full shape vector. */
    const std::vector<int> &shape() const { return shape_; }

    /** True when both tensors have identical shape vectors. */
    bool sameShape(const Tensor &other) const;

    /** @name Element access */
    /** @{ */
    float &operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    /** 2-D indexed access (panics unless ndim()==2). */
    float &at2(int i, int j);
    float at2(int i, int j) const;

    /** 4-D indexed access (panics unless ndim()==4). */
    float &at4(int n, int c, int h, int w);
    float at4(int n, int c, int h, int w) const;
    /** @} */

    /** Raw data pointers. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Set every element to a constant. */
    void fill(float value);

    /**
     * Reshape this tensor in place to @p shape, reallocating only
     * when the element count changes. Element values are unspecified
     * afterwards — this is the buffer-reuse primitive for hot-path
     * scratch tensors (e.g. Conv2d's im2col cache).
     */
    void ensure(const std::vector<int> &shape);

    /** Reinterpret as a new shape with the same element count. */
    Tensor reshape(std::vector<int> new_shape) const;

    /**
     * Slice along dim 0: elements [start, start+len) of the leading
     * dimension, copied into a new tensor.
     */
    Tensor slice0(int start, int len) const;

    /** Copy @p src into rows [start, start+src.dim(0)) along dim 0. */
    void setSlice0(int start, const Tensor &src);

    /**
     * Process-wide count of float-buffer allocations: constructions
     * and copies with a non-empty payload, plus every ensure()/
     * reshape() that had to grow past the existing capacity. The
     * serving plan's zero-allocation contract (serve/execution_plan)
     * is asserted against the delta of this counter: a warmed plan
     * forward must leave it unchanged.
     */
    static uint64_t allocationCount();

  private:
    std::vector<int> shape_;
    std::vector<float> data_;

    static size_t numel(const std::vector<int> &shape);
    static void noteAllocation();
};

} // namespace twoinone

#endif // TWOINONE_TENSOR_TENSOR_HH
