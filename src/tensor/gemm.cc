/**
 * @file
 * GEMM backend implementation.
 *
 * The blocked path follows the classic Goto/BLIS decomposition:
 *
 *   for jc in NC column blocks of C
 *     for pc in KC blocks of the reduction dimension
 *       pack B[pc, jc] into NR-wide, k-major panels          (shared)
 *       parallelFor over (MC row block, JC column group):    (threads)
 *         pack A[ic, pc] into MR-wide, k-major panels        (private)
 *         for each NR panel x MR panel: MR x NR micro-kernel
 *
 * Parallelism is only over disjoint (row block, column group) tiles
 * of C, so each element of C is written by exactly one thread and its
 * accumulation order (k within KC blocks, KC blocks in order) is
 * independent of the thread count.
 */

#include "tensor/gemm.hh"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#ifdef __AVX2__
#include <immintrin.h>
#endif

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "tensor/ops.hh"

namespace twoinone {
namespace gemm {

namespace {

// Blocking parameters. MR x NR is the register tile (6 x 16 floats:
// twelve 8-wide accumulator vectors on AVX2); MC x KC is the packed A
// block (96 KiB, comfortably L2-resident); KC x NC bounds the packed
// B panel at 1 MiB.
constexpr int MR = 6;
constexpr int NR = 16;
constexpr int MC = 96;
constexpr int KC = 256;
constexpr int NC = 1024;

// Products up to this many multiply-adds skip packing entirely: the
// naive loops beat the blocked kernel's setup cost at this size.
constexpr int64_t kSmallProduct = 16 * 1024;

Backend &
backendSlot()
{
    static Backend b = [] {
        const char *env = std::getenv("TWOINONE_BACKEND");
        if (env && std::string(env) == "naive")
            return Backend::Naive;
        if (env && std::string(env) != "blocked")
            TWOINONE_WARN("unknown TWOINONE_BACKEND=", env,
                          ", using blocked");
        return Backend::Blocked;
    }();
    return b;
}

/** Initialize C rows for a non-accumulating call: bias or zero. */
void
initOutput(int m, int n, float *c, int ldc, const float *row_bias)
{
    for (int i = 0; i < m; ++i) {
        float *crow = c + static_cast<size_t>(i) * ldc;
        float v = row_bias ? row_bias[i] : 0.0f;
        for (int j = 0; j < n; ++j)
            crow[j] = v;
    }
}

/**
 * Reference loops restricted to output rows [i0, i1). Every variant
 * iterates each C element's reduction in ascending p order, so the
 * per-element accumulation — and therefore the result — is identical
 * whether the rows run serially ([0, m) in one call) or split across
 * threads by the light parallel small-product path.
 */
void
sgemmNaiveRows(bool trans_a, bool trans_b, int i0, int i1, int n, int k,
               const float *a, int lda, const float *b, int ldb, float *c,
               int ldc, bool accumulate, const float *row_bias)
{
    if (i1 <= i0 || n <= 0)
        return;
    if (!accumulate) {
        initOutput(i1 - i0, n, c + static_cast<size_t>(i0) * ldc, ldc,
                   row_bias ? row_bias + i0 : nullptr);
    }

    // All variants accumulate in float, matching the blocked kernel's
    // precision (the seed's matmulTransposeB used double — see
    // ISSUE 1 satellite: consistent accumulation across variants).
    if (!trans_a && !trans_b) {
        // C[i,j] += A[i,p] * B[p,j]; saxpy over rows of B.
        for (int i = i0; i < i1; ++i) {
            const float *arow = a + static_cast<size_t>(i) * lda;
            float *crow = c + static_cast<size_t>(i) * ldc;
            for (int p = 0; p < k; ++p) {
                float av = arow[p];
                const float *brow = b + static_cast<size_t>(p) * ldb;
                for (int j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    } else if (!trans_a && trans_b) {
        // C[i,j] += dot(A row i, B row j).
        for (int i = i0; i < i1; ++i) {
            const float *arow = a + static_cast<size_t>(i) * lda;
            float *crow = c + static_cast<size_t>(i) * ldc;
            for (int j = 0; j < n; ++j) {
                const float *brow = b + static_cast<size_t>(j) * ldb;
                float s = 0.0f;
                for (int p = 0; p < k; ++p)
                    s += arow[p] * brow[p];
                crow[j] += s;
            }
        }
    } else if (trans_a && !trans_b) {
        // C[i,j] += A[p,i] * B[p,j]; saxpy over rows of B per output
        // row (p ascending per element, same as the old p-outer form).
        for (int i = i0; i < i1; ++i) {
            float *crow = c + static_cast<size_t>(i) * ldc;
            for (int p = 0; p < k; ++p) {
                float av = a[static_cast<size_t>(p) * lda + i];
                const float *brow = b + static_cast<size_t>(p) * ldb;
                for (int j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    } else {
        // Double transpose (unused by the ops layer, kept complete).
        for (int i = i0; i < i1; ++i) {
            float *crow = c + static_cast<size_t>(i) * ldc;
            for (int j = 0; j < n; ++j) {
                float s = 0.0f;
                for (int p = 0; p < k; ++p)
                    s += a[static_cast<size_t>(p) * lda + i] *
                         b[static_cast<size_t>(j) * ldb + p];
                crow[j] += s;
            }
        }
    }
}

void
sgemmNaive(bool trans_a, bool trans_b, int m, int n, int k, const float *a,
           int lda, const float *b, int ldb, float *c, int ldc,
           bool accumulate, const float *row_bias)
{
    sgemmNaiveRows(trans_a, trans_b, 0, m, n, k, a, lda, b, ldb, c, ldc,
                   accumulate, row_bias);
}

/**
 * Row chunk of the light parallel small-product path: sized so one
 * chunk carries at least ~8K multiply-adds, keeping dispatch overhead
 * negligible and letting genuinely tiny products run inline.
 */
int64_t
lightGrainRows(int n, int k)
{
    return std::max<int64_t>(
        1, (int64_t{1} << 13) / std::max<int64_t>(
               1, 2 * static_cast<int64_t>(n) * k));
}

/**
 * Pack an mc x kc block of op(A) into MR-wide k-major panels,
 * zero-padding the ragged final panel to MR rows.
 */
void
packA(bool trans_a, const float *a, int lda, int i0, int p0, int mc, int kc,
      float *dst)
{
    for (int i = 0; i < mc; i += MR) {
        int mr = mc - i < MR ? mc - i : MR;
        if (!trans_a) {
            const float *src = a + static_cast<size_t>(i0 + i) * lda + p0;
            for (int p = 0; p < kc; ++p) {
                for (int ir = 0; ir < mr; ++ir)
                    dst[ir] = src[static_cast<size_t>(ir) * lda + p];
                for (int ir = mr; ir < MR; ++ir)
                    dst[ir] = 0.0f;
                dst += MR;
            }
        } else {
            const float *src = a + static_cast<size_t>(p0) * lda + i0 + i;
            for (int p = 0; p < kc; ++p) {
                for (int ir = 0; ir < mr; ++ir)
                    dst[ir] = src[ir];
                for (int ir = mr; ir < MR; ++ir)
                    dst[ir] = 0.0f;
                src += lda;
                dst += MR;
            }
        }
    }
}

/**
 * Pack a kc x nc block of op(B) into NR-wide k-major panels,
 * zero-padding the ragged final panel to NR columns.
 */
void
packB(bool trans_b, const float *b, int ldb, int p0, int j0, int kc, int nc,
      float *dst)
{
    for (int j = 0; j < nc; j += NR) {
        int nr = nc - j < NR ? nc - j : NR;
        if (!trans_b) {
            const float *src = b + static_cast<size_t>(p0) * ldb + j0 + j;
            for (int p = 0; p < kc; ++p) {
                for (int jr = 0; jr < nr; ++jr)
                    dst[jr] = src[jr];
                for (int jr = nr; jr < NR; ++jr)
                    dst[jr] = 0.0f;
                src += ldb;
                dst += NR;
            }
        } else {
            const float *src = b + static_cast<size_t>(j0 + j) * ldb + p0;
            for (int p = 0; p < kc; ++p) {
                for (int jr = 0; jr < nr; ++jr)
                    dst[jr] = src[static_cast<size_t>(jr) * ldb + p];
                for (int jr = nr; jr < NR; ++jr)
                    dst[jr] = 0.0f;
                dst += NR;
            }
        }
    }
}

/**
 * MR x NR register-tile kernel over a kc-long packed panel pair.
 *
 * On GCC/Clang the tile is held in generic 8-wide vector-extension
 * registers (MR * NR/8 accumulators + two B vectors + one broadcast:
 * 15 of 16 ymm registers on AVX2), which compiles to NR-wide FMAs —
 * plain scalar loops get stack-spilled accumulators instead (GCC
 * reports "complicated access pattern" and emits xmm-only code,
 * ~8x slower). Both forms accumulate each output element strictly in
 * k order; within one build the kernel is deterministic for any
 * thread count (across builds/compilers FMA contraction may round
 * differently — that is covered by the tests' 1e-4 tolerance, not by
 * the bit-identical guarantee).
 */
#if defined(__GNUC__) || defined(__clang__)

typedef float Vec8 __attribute__((vector_size(32)));
static_assert(NR == 16, "micro-kernel assumes NR == 2 x 8-wide vectors");

inline void
microKernel(int kc, const float *__restrict ap, const float *__restrict bp,
            float *__restrict out)
{
    Vec8 acc0[MR] = {}, acc1[MR] = {};
    for (int p = 0; p < kc; ++p) {
        const float *av = ap + static_cast<size_t>(p) * MR;
        Vec8 b0, b1;
        __builtin_memcpy(&b0, bp + static_cast<size_t>(p) * NR,
                         sizeof(b0));
        __builtin_memcpy(&b1, bp + static_cast<size_t>(p) * NR + 8,
                         sizeof(b1));
        for (int ir = 0; ir < MR; ++ir) {
            float s = av[ir];
            Vec8 a = {s, s, s, s, s, s, s, s};
            acc0[ir] += a * b0;
            acc1[ir] += a * b1;
        }
    }
    for (int ir = 0; ir < MR; ++ir) {
        __builtin_memcpy(out + ir * NR, &acc0[ir], sizeof(Vec8));
        __builtin_memcpy(out + ir * NR + 8, &acc1[ir], sizeof(Vec8));
    }
}

#else // scalar fallback, same accumulation order

inline void
microKernel(int kc, const float *__restrict ap, const float *__restrict bp,
            float *__restrict out)
{
    float acc[MR][NR] = {};
    for (int p = 0; p < kc; ++p) {
        const float *av = ap + static_cast<size_t>(p) * MR;
        const float *bv = bp + static_cast<size_t>(p) * NR;
        for (int ir = 0; ir < MR; ++ir) {
            float aval = av[ir];
            for (int jr = 0; jr < NR; ++jr)
                acc[ir][jr] += aval * bv[jr];
        }
    }
    for (int ir = 0; ir < MR; ++ir)
        for (int jr = 0; jr < NR; ++jr)
            out[ir * NR + jr] = acc[ir][jr];
}

#endif

void
sgemmBlocked(bool trans_a, bool trans_b, int m, int n, int k, const float *a,
             int lda, const float *b, int ldb, float *c, int ldc,
             bool accumulate, const float *row_bias)
{
    if (m <= 0 || n <= 0)
        return;
    if (k <= 0) {
        if (!accumulate)
            initOutput(m, n, c, ldc, row_bias);
        return;
    }
    if (static_cast<int64_t>(m) * n * k <= kSmallProduct) {
        // Below the packing cutoff the naive loops win on setup cost,
        // but they need not run serially: rows of C are disjoint, so
        // split them across the pool (each chunk >= ~8K MACs; genuinely
        // tiny products still run inline via the grain rule, and
        // nested calls — e.g. per-image conv GEMMs inside a
        // batch-parallel loop — inline as always). Per-element
        // accumulation order is unchanged, so the result is
        // bit-identical to the serial reference for any thread count.
        ThreadPool::global().parallelFor(
            0, m, lightGrainRows(n, k), [&](int64_t lo, int64_t hi) {
                sgemmNaiveRows(trans_a, trans_b, static_cast<int>(lo),
                               static_cast<int>(hi), n, k, a, lda, b,
                               ldb, c, ldc, accumulate, row_bias);
            });
        return;
    }

    // Per-calling-thread packed-B buffer, reused across calls.
    thread_local std::vector<float> bpack;
    int mblocks = (m + MC - 1) / MC;
    // Work items are (MC row block) x (JC-column group) pairs so that
    // short-fat products (m <= MC: every Conv2d per-image GEMM) still
    // spread across threads. Column groups are NR-panel-aligned and
    // each item packs its own A block (thread-local, amortized across
    // the consecutive groups of one row block), so outputs stay
    // disjoint and the per-element accumulation order is unchanged.
    constexpr int JC = 8 * NR; // columns per work item

    for (int jc = 0; jc < n; jc += NC) {
        int nc = n - jc < NC ? n - jc : NC;
        int nc_padded = (nc + NR - 1) / NR * NR;
        int jgroups = (nc + JC - 1) / JC;
        for (int pc = 0; pc < k; pc += KC) {
            int kc = k - pc < KC ? k - pc : KC;
            bpack.resize(static_cast<size_t>(nc_padded) * kc);
            packB(trans_b, b, ldb, pc, jc, kc, nc, bpack.data());

            // First KC block of a non-accumulating call stores (and
            // applies the bias); every later block adds.
            bool first = pc == 0 && !accumulate;
            const float *bias = pc == 0 ? row_bias : nullptr;
            const float *bp = bpack.data();

            ThreadPool::global().parallelFor(
                0, static_cast<int64_t>(mblocks) * jgroups, 1,
                [&, first, bias, bp, jc, nc, pc, kc,
                 jgroups](int64_t ilo, int64_t ihi) {
                    thread_local std::vector<float> apack;
                    apack.resize(static_cast<size_t>(MC) * KC);
                    float acc[MR * NR];
                    int packed_bi = -1;
                    for (int64_t item = ilo; item < ihi; ++item) {
                        int bi = static_cast<int>(item / jgroups);
                        int jg = static_cast<int>(item % jgroups);
                        int ic = bi * MC;
                        int mc = m - ic < MC ? m - ic : MC;
                        if (bi != packed_bi) {
                            packA(trans_a, a, lda, ic, pc, mc, kc,
                                  apack.data());
                            packed_bi = bi;
                        }
                        int jlo = jg * JC;
                        int jhi = nc < jlo + JC ? nc : jlo + JC;
                        for (int j = jlo; j < jhi; j += NR) {
                            int nr = nc - j < NR ? nc - j : NR;
                            const float *bpanel =
                                bp + static_cast<size_t>(j / NR) * kc * NR;
                            for (int i = 0; i < mc; i += MR) {
                                int mr = mc - i < MR ? mc - i : MR;
                                const float *apanel =
                                    apack.data() +
                                    static_cast<size_t>(i / MR) * kc * MR;
                                microKernel(kc, apanel, bpanel, acc);
                                for (int ir = 0; ir < mr; ++ir) {
                                    int row = ic + i + ir;
                                    float *crow =
                                        c +
                                        static_cast<size_t>(row) * ldc +
                                        jc + j;
                                    const float *accrow = acc + ir * NR;
                                    if (first) {
                                        float bv =
                                            bias ? bias[row] : 0.0f;
                                        for (int jr = 0; jr < nr; ++jr)
                                            crow[jr] = accrow[jr] + bv;
                                    } else {
                                        for (int jr = 0; jr < nr; ++jr)
                                            crow[jr] += accrow[jr];
                                    }
                                }
                            }
                        }
                    }
                });
        }
    }
}

} // namespace

Backend
activeBackend()
{
    return backendSlot();
}

void
setActiveBackend(Backend b)
{
    backendSlot() = b;
}

const char *
backendName(Backend b)
{
    return b == Backend::Naive ? "naive" : "blocked";
}

void
sgemm(Backend backend, bool trans_a, bool trans_b, int m, int n, int k,
      const float *a, int lda, const float *b, int ldb, float *c, int ldc,
      bool accumulate, const float *row_bias)
{
    TWOINONE_ASSERT(!(accumulate && row_bias),
                    "sgemm row_bias requires accumulate == false");
    if (backend == Backend::Naive)
        sgemmNaive(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc,
                   accumulate, row_bias);
    else
        sgemmBlocked(trans_a, trans_b, m, n, k, a, lda, b, ldb, c, ldc,
                     accumulate, row_bias);
}

void
sgemm(bool trans_a, bool trans_b, int m, int n, int k, const float *a,
      int lda, const float *b, int ldb, float *c, int ldc, bool accumulate,
      const float *row_bias)
{
    sgemm(activeBackend(), trans_a, trans_b, m, n, k, a, lda, b, ldb, c,
          ldc, accumulate, row_bias);
}

bool
smallGemmRunsParallel(int m, int n, int k)
{
    if (static_cast<int64_t>(m) * n * k > kSmallProduct)
        return false; // not a small product: blocked path
    return activeBackend() == Backend::Blocked &&
           ThreadPool::global().threads() > 1 &&
           !ThreadPool::inParallelRegion() && m > lightGrainRows(n, k);
}

// ---------------------------------------------------------------------------
// Integer GEMM: C[m,n](int64) = A[m,k] * B[n,k]^T over grid codes.
// ---------------------------------------------------------------------------

namespace {

/**
 * Rows [i0, i1) of the integer product with explicit product and
 * accumulator types. Narrow (<= 16-bit) operand pairs multiply in
 * int32 — the worst-case product (2^15-1) * (2^16-1) still fits — so
 * the compiler can vectorize the multiplies and only the adds widen.
 * Columns run in tiles of four with independent accumulators: the
 * shared A-row loads amortize and the four dot products keep more
 * vector lanes busy. Integer arithmetic is exact, so the tiling, any
 * (PT, ACC) combination, and any row chunking agree bit-for-bit
 * whenever nothing can overflow.
 */
template <typename AT, typename BT, typename PT, typename ACC>
void
igemmRowsTransB(int64_t i0, int64_t i1, int n, int k, const AT *a, int lda,
                const BT *b, int ldb, int64_t *c, int ldc)
{
    for (int64_t i = i0; i < i1; ++i) {
        const AT *arow = a + static_cast<size_t>(i) * lda;
        int64_t *crow = c + static_cast<size_t>(i) * ldc;
        int j = 0;
        for (; j + 4 <= n; j += 4) {
            const BT *b0 = b + static_cast<size_t>(j) * ldb;
            const BT *b1 = b0 + ldb;
            const BT *b2 = b1 + ldb;
            const BT *b3 = b2 + ldb;
            ACC a0 = 0, a1 = 0, a2 = 0, a3 = 0;
            for (int p = 0; p < k; ++p) {
                PT av = static_cast<PT>(arow[p]);
                a0 += static_cast<ACC>(av * static_cast<PT>(b0[p]));
                a1 += static_cast<ACC>(av * static_cast<PT>(b1[p]));
                a2 += static_cast<ACC>(av * static_cast<PT>(b2[p]));
                a3 += static_cast<ACC>(av * static_cast<PT>(b3[p]));
            }
            crow[j] = static_cast<int64_t>(a0);
            crow[j + 1] = static_cast<int64_t>(a1);
            crow[j + 2] = static_cast<int64_t>(a2);
            crow[j + 3] = static_cast<int64_t>(a3);
        }
        for (; j < n; ++j) {
            const BT *brow = b + static_cast<size_t>(j) * ldb;
            ACC acc = 0;
            for (int p = 0; p < k; ++p) {
                acc += static_cast<ACC>(static_cast<PT>(arow[p]) *
                                        static_cast<PT>(brow[p]));
            }
            crow[j] = static_cast<int64_t>(acc);
        }
    }
}

/** Worst-case |accumulator| bound of a w_bits x a_bits reduction of
 * length k (computed in double: the bound itself may exceed int64 for
 * absurd inputs, and only the <= INT32_MAX comparison matters).
 * w_bits == 1 is the binary {-1, +1} grid whose magnitude is 1, not
 * 2^0 - 1 = 0 (matches LinearQuantizer::signedQmax). */
inline bool
int32AccumulationFits(int w_bits, int a_bits, int k)
{
    double qw = (w_bits == 1)
                    ? 1.0
                    : static_cast<double>((1LL << (w_bits - 1)) - 1);
    double qa = static_cast<double>((1LL << a_bits) - 1);
    return qw * qa * static_cast<double>(k) <=
           static_cast<double>(std::numeric_limits<int32_t>::max());
}

template <typename AT, typename BT, typename PT>
void
igemmDispatch(int m, int n, int k, const AT *a, int lda, const BT *b,
              int ldb, int64_t *c, int ldc, bool acc32)
{
    if (m <= 0 || n <= 0)
        return;
    int64_t grain =
        std::max<int64_t>(1, (int64_t{1} << 15) /
                                 std::max<int64_t>(
                                     1, static_cast<int64_t>(n) * k));
    ops::gatedParallelFor(m, grain, [&](int64_t lo, int64_t hi) {
        if (acc32) {
            igemmRowsTransB<AT, BT, PT, int32_t>(lo, hi, n, k, a, lda,
                                                 b, ldb, c, ldc);
        } else {
            igemmRowsTransB<AT, BT, PT, int64_t>(lo, hi, n, k, a, lda,
                                                 b, ldb, c, ldc);
        }
    });
}

} // namespace

void
igemmTransB(int m, int n, int k, const int8_t *a, int lda,
            const uint8_t *b, int ldb, int64_t *c, int ldc, int w_bits,
            int a_bits)
{
    TWOINONE_ASSERT(w_bits >= 1 && w_bits <= 8 && a_bits >= 1 &&
                        a_bits <= 8,
                    "int8 igemm needs codes of <= 8 bits");
    igemmDispatch<int8_t, uint8_t, int32_t>(
        m, n, k, a, lda, b, ldb, c, ldc,
        int32AccumulationFits(w_bits, a_bits, k));
}

void
igemmTransB(int m, int n, int k, const int16_t *a, int lda,
            const uint16_t *b, int ldb, int64_t *c, int ldc, int w_bits,
            int a_bits)
{
    TWOINONE_ASSERT(w_bits >= 1 && w_bits <= 16 && a_bits >= 1 &&
                        a_bits <= 16,
                    "int16 igemm needs codes of <= 16 bits");
    igemmDispatch<int16_t, uint16_t, int32_t>(
        m, n, k, a, lda, b, ldb, c, ldc,
        int32AccumulationFits(w_bits, a_bits, k));
}

void
igemmTransB(int m, int n, int k, const int32_t *a, int lda,
            const int32_t *b, int ldb, int64_t *c, int ldc)
{
    // Wide-code variant (post-quantization integer tensors): 64-bit
    // products and accumulation throughout.
    igemmDispatch<int32_t, int32_t, int64_t>(m, n, k, a, lda, b, ldb, c,
                                             ldc, /*acc32=*/false);
}

// ---------------------------------------------------------------------------
// Serving int8 kernel (compiled execution plans).
// ---------------------------------------------------------------------------

namespace {

#ifdef __AVX2__

inline int32_t
hsum8(__m256i v)
{
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
    return _mm_cvtsi128_si32(s);
}

/**
 * Rows [i0, i1) of the int8 product: widen both operands to int16
 * lanes and vpmaddwd them — exact (products <= 127 * 255 fit int16 x
 * int16 -> int32 pairs; pair sums <= 64770 fit int32), so the result
 * is bit-identical to the scalar reference. Four columns share each
 * A-row load; int32 accumulation is guarded by the caller's overflow
 * bound.
 */
void
igemm8MaddRows(int64_t i0, int64_t i1, int n, int k, const int8_t *a,
               int lda, const uint8_t *b, int ldb, int64_t *c, int ldc)
{
    for (int64_t i = i0; i < i1; ++i) {
        const int8_t *ar = a + static_cast<size_t>(i) * lda;
        int64_t *cr = c + static_cast<size_t>(i) * ldc;
        int j = 0;
        for (; j + 4 <= n; j += 4) {
            const uint8_t *b0 = b + static_cast<size_t>(j) * ldb;
            const uint8_t *b1 = b0 + ldb;
            const uint8_t *b2 = b1 + ldb;
            const uint8_t *b3 = b2 + ldb;
            __m256i s0 = _mm256_setzero_si256();
            __m256i s1 = s0, s2 = s0, s3 = s0;
            int p = 0;
            for (; p + 16 <= k; p += 16) {
                __m256i av = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(ar + p)));
                s0 = _mm256_add_epi32(
                    s0, _mm256_madd_epi16(
                            av, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                                    reinterpret_cast<const __m128i *>(
                                        b0 + p)))));
                s1 = _mm256_add_epi32(
                    s1, _mm256_madd_epi16(
                            av, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                                    reinterpret_cast<const __m128i *>(
                                        b1 + p)))));
                s2 = _mm256_add_epi32(
                    s2, _mm256_madd_epi16(
                            av, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                                    reinterpret_cast<const __m128i *>(
                                        b2 + p)))));
                s3 = _mm256_add_epi32(
                    s3, _mm256_madd_epi16(
                            av, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                                    reinterpret_cast<const __m128i *>(
                                        b3 + p)))));
            }
            int32_t a0 = hsum8(s0), a1 = hsum8(s1), a2 = hsum8(s2),
                    a3 = hsum8(s3);
            for (; p < k; ++p) {
                int32_t av = ar[p];
                a0 += av * b0[p];
                a1 += av * b1[p];
                a2 += av * b2[p];
                a3 += av * b3[p];
            }
            cr[j] = a0;
            cr[j + 1] = a1;
            cr[j + 2] = a2;
            cr[j + 3] = a3;
        }
        for (; j < n; ++j) {
            const uint8_t *br = b + static_cast<size_t>(j) * ldb;
            __m256i s0 = _mm256_setzero_si256();
            int p = 0;
            for (; p + 16 <= k; p += 16) {
                __m256i av = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(ar + p)));
                s0 = _mm256_add_epi32(
                    s0, _mm256_madd_epi16(
                            av, _mm256_cvtepu8_epi16(_mm_loadu_si128(
                                    reinterpret_cast<const __m128i *>(
                                        br + p)))));
            }
            int32_t acc = hsum8(s0);
            for (; p < k; ++p)
                acc += static_cast<int32_t>(ar[p]) * br[p];
            cr[j] = acc;
        }
    }
}

#endif // __AVX2__

} // namespace

void
igemmTransB8Serve(int m, int n, int k, const int8_t *a, int lda,
                  const uint8_t *b, int ldb, int64_t *c, int ldc,
                  int w_bits, int a_bits)
{
    TWOINONE_ASSERT(w_bits >= 1 && w_bits <= 8 && a_bits >= 1 &&
                        a_bits <= 8,
                    "int8 serve igemm needs codes of <= 8 bits");
#ifdef __AVX2__
    // 8-bit operands over any practical k fit int32 accumulation; the
    // reference kernel handles the (absurd) overflow case.
    if (int32AccumulationFits(w_bits, a_bits, k)) {
        if (m <= 0 || n <= 0)
            return;
        int64_t grain = std::max<int64_t>(
            1, (int64_t{1} << 15) /
                   std::max<int64_t>(1, static_cast<int64_t>(n) * k));
        ops::gatedParallelFor(m, grain, [&](int64_t lo, int64_t hi) {
            igemm8MaddRows(lo, hi, n, k, a, lda, b, ldb, c, ldc);
        });
        return;
    }
#endif
    igemmTransB(m, n, k, a, lda, b, ldb, c, ldc, w_bits, a_bits);
}

} // namespace gemm
} // namespace twoinone
