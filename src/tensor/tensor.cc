/**
 * @file
 * Implementation of the dense Tensor class.
 */

#include "tensor/tensor.hh"

#include <atomic>
#include <numeric>

namespace twoinone {

namespace {

// Buffer allocations since process start (relaxed: the counter is a
// diagnostic, not a synchronization point).
std::atomic<uint64_t> g_tensor_allocs{0};

} // namespace

uint64_t
Tensor::allocationCount()
{
    return g_tensor_allocs.load(std::memory_order_relaxed);
}

void
Tensor::noteAllocation()
{
    g_tensor_allocs.fetch_add(1, std::memory_order_relaxed);
}

size_t
Tensor::numel(const std::vector<int> &shape)
{
    size_t n = 1;
    for (int d : shape) {
        TWOINONE_ASSERT(d >= 0, "negative tensor dimension ", d);
        n *= static_cast<size_t>(d);
    }
    return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(numel(shape_), 0.0f)
{
    if (!data_.empty())
        noteAllocation();
}

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)), data_(numel(shape_), fill)
{
    if (!data_.empty())
        noteAllocation();
}

Tensor::Tensor(const Tensor &other)
    : shape_(other.shape_), data_(other.data_)
{
    if (!data_.empty())
        noteAllocation();
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this == &other)
        return *this;
    if (other.data_.size() > data_.capacity())
        noteAllocation();
    shape_ = other.shape_;
    data_ = other.data_;
    return *this;
}

Tensor
Tensor::zeros(std::vector<int> shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::ones(std::vector<int> shape)
{
    return Tensor(std::move(shape), 1.0f);
}

Tensor
Tensor::full(std::vector<int> shape, float value)
{
    return Tensor(std::move(shape), value);
}

Tensor
Tensor::randn(std::vector<int> shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape));
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

Tensor
Tensor::uniform(std::vector<int> shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (size_t i = 0; i < t.size(); ++i)
        t[i] = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

int
Tensor::dim(int i) const
{
    TWOINONE_ASSERT(i >= 0 && i < ndim(), "dim index ", i, " out of rank ",
                    ndim());
    return shape_[static_cast<size_t>(i)];
}

bool
Tensor::sameShape(const Tensor &other) const
{
    return shape_ == other.shape_;
}

float &
Tensor::at2(int i, int j)
{
    TWOINONE_ASSERT(ndim() == 2, "at2 on rank-", ndim(), " tensor");
    return data_[static_cast<size_t>(i) * shape_[1] + j];
}

float
Tensor::at2(int i, int j) const
{
    TWOINONE_ASSERT(ndim() == 2, "at2 on rank-", ndim(), " tensor");
    return data_[static_cast<size_t>(i) * shape_[1] + j];
}

float &
Tensor::at4(int n, int c, int h, int w)
{
    TWOINONE_ASSERT(ndim() == 4, "at4 on rank-", ndim(), " tensor");
    return data_[((static_cast<size_t>(n) * shape_[1] + c) * shape_[2] + h) *
                     shape_[3] +
                 w];
}

float
Tensor::at4(int n, int c, int h, int w) const
{
    TWOINONE_ASSERT(ndim() == 4, "at4 on rank-", ndim(), " tensor");
    return data_[((static_cast<size_t>(n) * shape_[1] + c) * shape_[2] + h) *
                     shape_[3] +
                 w];
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::ensure(const std::vector<int> &shape)
{
    if (shape_ == shape)
        return;
    size_t n = numel(shape);
    if (n != data_.size()) {
        if (n > data_.capacity())
            noteAllocation();
        data_.resize(n);
    }
    shape_ = shape;
}

Tensor
Tensor::reshape(std::vector<int> new_shape) const
{
    TWOINONE_ASSERT(numel(new_shape) == size(),
                    "reshape element-count mismatch");
    Tensor t;
    t.shape_ = std::move(new_shape);
    t.data_ = data_;
    if (!t.data_.empty())
        noteAllocation();
    return t;
}

Tensor
Tensor::slice0(int start, int len) const
{
    TWOINONE_ASSERT(ndim() >= 1, "slice0 on rank-0 tensor");
    TWOINONE_ASSERT(start >= 0 && start + len <= dim(0),
                    "slice0 range [", start, ",", start + len,
                    ") out of dim0=", dim(0));
    size_t stride = size() / static_cast<size_t>(dim(0));
    std::vector<int> out_shape = shape_;
    out_shape[0] = len;
    Tensor out(out_shape);
    std::copy(data_.begin() + static_cast<long>(start * stride),
              data_.begin() + static_cast<long>((start + len) * stride),
              out.data_.begin());
    return out;
}

void
Tensor::setSlice0(int start, const Tensor &src)
{
    TWOINONE_ASSERT(ndim() >= 1 && src.ndim() == ndim(),
                    "setSlice0 rank mismatch");
    for (int i = 1; i < ndim(); ++i) {
        TWOINONE_ASSERT(dim(i) == src.dim(i),
                        "setSlice0 trailing-shape mismatch at dim ", i);
    }
    TWOINONE_ASSERT(start >= 0 && start + src.dim(0) <= dim(0),
                    "setSlice0 range out of bounds");
    size_t stride = size() / static_cast<size_t>(dim(0));
    std::copy(src.data_.begin(), src.data_.end(),
              data_.begin() + static_cast<long>(start * stride));
}

} // namespace twoinone
