/**
 * @file
 * Single-precision GEMM backends: a cache-blocked, packed, parallel
 * kernel (default) and a retained naive triple-loop reference.
 *
 * The backend is selected once per process from TWOINONE_BACKEND
 * ("naive" forces the reference path; anything else, or unset, means
 * blocked) and can be overridden programmatically by benches/tests
 * via setActiveBackend().
 *
 * Determinism contract: for a fixed backend, results are
 * bit-identical across TWOINONE_THREADS settings. The blocked kernel
 * accumulates each output element strictly in k order within KC-sized
 * blocks and parallelizes only over disjoint row blocks of C, so the
 * summation order never depends on the thread count. The naive and
 * blocked backends both accumulate in float (no double, no Kahan) but
 * in different orders, so they agree only to float rounding — the
 * tests bound this at 1e-4 relative error (see tests/test_gemm.cc).
 */

#ifndef TWOINONE_TENSOR_GEMM_HH
#define TWOINONE_TENSOR_GEMM_HH

#include <cstdint>

namespace twoinone {
namespace gemm {

/** Which GEMM implementation services ops::matmul* and Conv2d. */
enum class Backend {
    Naive,   ///< Reference triple loops, always serial.
    Blocked, ///< Packed MC/KC/NC-tiled kernels, parallel row blocks.
};

/** Process-wide backend (TWOINONE_BACKEND, read once, overridable). */
Backend activeBackend();

/** Override the backend (benches/tests; not thread-safe vs running kernels). */
void setActiveBackend(Backend b);

/** Human-readable backend name ("naive" / "blocked"). */
const char *backendName(Backend b);

/**
 * C[m,n] = op(A) * op(B) (+ C when @p accumulate) (+ row bias).
 *
 * Row-major storage everywhere.
 *  - trans_a == false: A is [m,k] with leading dimension @p lda.
 *    trans_a == true:  A is stored [k,m] (lda >= m) and used as A^T.
 *  - trans_b == false: B is [k,n] with leading dimension @p ldb.
 *    trans_b == true:  B is stored [n,k] (ldb >= k) and used as B^T.
 *  - C is [m,n] with leading dimension @p ldc.
 *
 * When @p accumulate is false, C is overwritten; when true, the
 * product is added to the existing C. @p row_bias, when non-null,
 * points at m floats and row_bias[i] is added to every element of row
 * i exactly once — only legal with accumulate == false (the Conv2d
 * fused bias epilogue).
 *
 * Dispatches to the active backend.
 */
void sgemm(bool trans_a, bool trans_b, int m, int n, int k, const float *a,
           int lda, const float *b, int ldb, float *c, int ldc,
           bool accumulate = false, const float *row_bias = nullptr);

/** Explicit-backend variant of sgemm (benchmark harness). */
void sgemm(Backend backend, bool trans_a, bool trans_b, int m, int n, int k,
           const float *a, int lda, const float *b, int ldb, float *c,
           int ldc, bool accumulate = false,
           const float *row_bias = nullptr);

/**
 * True when a small product (m*n*k at or below the blocked path's
 * packing cutoff) dispatches to the light row-parallel naive path
 * instead of the serial reference loops — decided by the same grain
 * rule sgemm uses, so benches can report which path a shape takes.
 */
bool smallGemmRunsParallel(int m, int n, int k);

/** @name Integer GEMM (the quantized-execution kernels)
 *
 * C[m,n] = A[m,k] * B[n,k]^T over integer grid codes — the layout of
 * Conv2d (weights x im2col columns) and Linear (weights x batch). The
 * operands are narrow codes: signed weights (int8/int16) against
 * unsigned activations (uint8/uint16), plus a wide int32 x int32
 * variant for post-quantization integer tensors whose codes have
 * outgrown 16 bits (e.g. average-pool partial sums). The output is
 * always int64.
 *
 * Accumulation runs in int32 whenever the worst-case magnitude bound
 * qmax_w * qmax_a * k fits, and falls back to int64 otherwise — both
 * exact, so results are bit-identical regardless. Rows of C are
 * computed thread-pool-parallel above a work grain;
 * TWOINONE_BACKEND=naive forces the serial reference loops. Integer
 * addition is associative, so every path agrees bit-for-bit.
 */
/** @{ */
void igemmTransB(int m, int n, int k, const int8_t *a, int lda,
                 const uint8_t *b, int ldb, int64_t *c, int ldc,
                 int w_bits, int a_bits);
void igemmTransB(int m, int n, int k, const int16_t *a, int lda,
                 const uint16_t *b, int ldb, int64_t *c, int ldc,
                 int w_bits, int a_bits);
void igemmTransB(int m, int n, int k, const int32_t *a, int lda,
                 const int32_t *b, int ldb, int64_t *c, int ldc);
/** @} */

/**
 * Serving-path int8 GEMM: same contract and bit-identical results as
 * the int8 igemmTransB (integer accumulation is exact under any
 * order), implemented with an AVX2 madd microkernel when the build
 * targets one (j-tiled scalar kernel otherwise). This is the kernel
 * compiled execution plans dispatch their <= 8-bit convolutions to;
 * the per-layer reference loops keep igemmTransB so the serving
 * datapath always has a plain reference to diff against.
 */
void igemmTransB8Serve(int m, int n, int k, const int8_t *a, int lda,
                       const uint8_t *b, int ldb, int64_t *c, int ldc,
                       int w_bits, int a_bits);

} // namespace gemm
} // namespace twoinone

#endif // TWOINONE_TENSOR_GEMM_HH
