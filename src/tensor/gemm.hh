/**
 * @file
 * Single-precision GEMM backends: a cache-blocked, packed, parallel
 * kernel (default) and a retained naive triple-loop reference.
 *
 * The backend is selected once per process from TWOINONE_BACKEND
 * ("naive" forces the reference path; anything else, or unset, means
 * blocked) and can be overridden programmatically by benches/tests
 * via setActiveBackend().
 *
 * Determinism contract: for a fixed backend, results are
 * bit-identical across TWOINONE_THREADS settings. The blocked kernel
 * accumulates each output element strictly in k order within KC-sized
 * blocks and parallelizes only over disjoint row blocks of C, so the
 * summation order never depends on the thread count. The naive and
 * blocked backends both accumulate in float (no double, no Kahan) but
 * in different orders, so they agree only to float rounding — the
 * tests bound this at 1e-4 relative error (see tests/test_gemm.cc).
 */

#ifndef TWOINONE_TENSOR_GEMM_HH
#define TWOINONE_TENSOR_GEMM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace twoinone {
namespace gemm {

/** Which GEMM implementation services ops::matmul* and Conv2d. */
enum class Backend {
    Naive,   ///< Reference triple loops, always serial.
    Blocked, ///< Packed MC/KC/NC-tiled kernels, parallel row blocks.
};

/** Process-wide backend (TWOINONE_BACKEND, read once, overridable). */
Backend activeBackend();

/** Override the backend (benches/tests; not thread-safe vs running kernels). */
void setActiveBackend(Backend b);

/** Human-readable backend name ("naive" / "blocked"). */
const char *backendName(Backend b);

/**
 * C[m,n] = op(A) * op(B) (+ C when @p accumulate) (+ row bias).
 *
 * Row-major storage everywhere.
 *  - trans_a == false: A is [m,k] with leading dimension @p lda.
 *    trans_a == true:  A is stored [k,m] (lda >= m) and used as A^T.
 *  - trans_b == false: B is [k,n] with leading dimension @p ldb.
 *    trans_b == true:  B is stored [n,k] (ldb >= k) and used as B^T.
 *  - C is [m,n] with leading dimension @p ldc.
 *
 * When @p accumulate is false, C is overwritten; when true, the
 * product is added to the existing C. @p row_bias, when non-null,
 * points at m floats and row_bias[i] is added to every element of row
 * i exactly once — only legal with accumulate == false (the Conv2d
 * fused bias epilogue).
 *
 * Dispatches to the active backend.
 */
void sgemm(bool trans_a, bool trans_b, int m, int n, int k, const float *a,
           int lda, const float *b, int ldb, float *c, int ldc,
           bool accumulate = false, const float *row_bias = nullptr);

/** Explicit-backend variant of sgemm (benchmark harness). */
void sgemm(Backend backend, bool trans_a, bool trans_b, int m, int n, int k,
           const float *a, int lda, const float *b, int ldb, float *c,
           int ldc, bool accumulate = false,
           const float *row_bias = nullptr);

/**
 * True when a small product (m*n*k at or below the blocked path's
 * packing cutoff) dispatches to the light row-parallel naive path
 * instead of the serial reference loops — decided by the same grain
 * rule sgemm uses, so benches can report which path a shape takes.
 */
bool smallGemmRunsParallel(int m, int n, int k);

/** @name Integer GEMM (the quantized-execution kernels)
 *
 * C[m,n] = A[m,k] * B[n,k]^T over integer grid codes — the layout of
 * Conv2d (weights x im2col columns) and Linear (weights x batch). The
 * operands are narrow codes: signed weights (int8/int16) against
 * unsigned activations (uint8/uint16), plus a wide int32 x int32
 * variant for post-quantization integer tensors whose codes have
 * outgrown 16 bits (e.g. average-pool partial sums). The output is
 * always int64.
 *
 * Accumulation runs in int32 whenever the worst-case magnitude bound
 * qmax_w * qmax_a * k fits, and falls back to int64 otherwise — both
 * exact, so results are bit-identical regardless. Rows of C are
 * computed thread-pool-parallel above a work grain;
 * TWOINONE_BACKEND=naive forces the serial reference loops. Integer
 * addition is associative, so every path agrees bit-for-bit.
 */
/** @{ */
void igemmTransB(int m, int n, int k, const int8_t *a, int lda,
                 const uint8_t *b, int ldb, int64_t *c, int ldc,
                 int w_bits, int a_bits);
void igemmTransB(int m, int n, int k, const int16_t *a, int lda,
                 const uint16_t *b, int ldb, int64_t *c, int ldc,
                 int w_bits, int a_bits);
void igemmTransB(int m, int n, int k, const int32_t *a, int lda,
                 const int32_t *b, int ldb, int64_t *c, int ldc);
/** @} */

/** @name Packed integer GEMM (tile-ordered weights + SIMD dispatch)
 *
 * The Goto-style fast path of the integer kernels: weight codes are
 * packed once per (layer, precision) into tile-ordered, cache-resident
 * buffers (PackedIntWeights) and the per-forward GEMM runs a
 * register-tiled microkernel selected once per process from the CPU's
 * capabilities (IsaTier): AVX-512/VNNI `vpdpbusd`/`vpdpwssd` when
 * available, AVX2 `maddubs`/`madd` otherwise, plain packed loops as
 * the always-available scalar reference. Every tier accumulates
 * exactly (int32 windows sized so no partial sum can overflow, spilled
 * to int64), so all tiers and the unpacked igemmTransB reference are
 * bit-identical at every bit width — the determinism contract the
 * scalar-vs-SIMD CI gate enforces.
 */
/** @{ */

/** SIMD tier of the packed integer kernels. Ordered: a tier implies
 * every lower one. */
enum class IsaTier {
    Scalar = 0,     ///< Packed reference loops, any CPU.
    Avx2 = 1,       ///< 256-bit maddubs/madd microkernels.
    Avx512Vnni = 2, ///< 512-bit vpdpbusd/vpdpwssd microkernels.
};

/** The tier the running CPU supports (cpuid, detected once). */
IsaTier detectedIsaTier();

/** Process-wide tier the packed kernels dispatch to: the detected
 * tier, unless lowered by TWOINONE_ISA (= "scalar" / "avx2" /
 * "avx512vnni"; read once) or setActiveIsaTier(). Requests above the
 * detected tier clamp down with a warning. */
IsaTier activeIsaTier();

/** Override the dispatch tier (benches/tests; clamped to the detected
 * tier; not thread-safe vs running kernels). */
void setActiveIsaTier(IsaTier t);

/** Human-readable tier name ("scalar" / "avx2" / "avx512vnni"). */
const char *isaTierName(IsaTier t);

/** Rows per packed tile: one AVX-512 int32 accumulator of output
 * channels; AVX2 processes a tile as two 8-channel halves. */
constexpr int kPackTileM = 16;

/**
 * Weight codes packed for the microkernels: rows (output channels) in
 * tiles of kPackTileM, the reduction dimension in groups of 4 (int8
 * pairs-of-pairs for vpdpbusd/maddubs, bits <= 8 only) and of 2
 * (int16 pairs for madd/vpdpwssd, all bit widths), zero-padded to full
 * tiles/groups so the kernels never branch on ragged edges. rowSum
 * holds each row's code sum — the exact correction term the 16-bit
 * activation path's bias trick adds back (a_u16 = (a ^ 0x8000) +
 * 32768).
 */
struct PackedIntWeights
{
    int m = 0;    ///< Output rows (channels).
    int k = 0;    ///< Reduction length.
    int bits = 0; ///< Weight-code precision packed at.
    int tiles = 0;
    int groups8 = 0;  ///< ceil(k / 4); p8 is empty when bits > 8.
    int groups16 = 0; ///< ceil(k / 2).
    /** [tile][group8][kPackTileM][4] signed codes. */
    std::vector<int8_t> p8;
    /** [tile][group16][kPackTileM][2] signed codes. */
    std::vector<int16_t> p16;
    /** Per-row code sums over the real k (pads excluded). */
    std::vector<int64_t> rowSum;

    bool empty() const { return m == 0; }
    size_t bytes() const
    {
        return p8.size() * sizeof(int8_t) + p16.size() * sizeof(int16_t) +
               rowSum.size() * sizeof(int64_t);
    }
    void clear()
    {
        *this = PackedIntWeights();
    }
};

/**
 * Pack @p m x @p k row-major weight codes (int32 grid codes of
 * @p w_bits precision) into @p out. Deterministic: repacking identical
 * codes reproduces an identical buffer.
 */
void packWeights(const int32_t *codes, int m, int k, int w_bits,
                 PackedIntWeights &out);

/**
 * C[w.m, n] = packed(W) * B[n, k]^T — the packed counterpart of the
 * narrow igemmTransB overloads, bit-identical to them (exact integer
 * accumulation in every tier). The uint8_t overload needs w.bits <= 8
 * and a_bits <= 8; the uint16_t overload serves every width up to 16.
 * Columns of C parallelize over the thread pool above a work grain
 * (serial under TWOINONE_BACKEND=naive), like igemmTransB's rows.
 */
void igemmPackedTransB(const PackedIntWeights &w, int n, const uint8_t *b,
                       int ldb, int64_t *c, int ldc, int a_bits);
void igemmPackedTransB(const PackedIntWeights &w, int n, const uint16_t *b,
                       int ldb, int64_t *c, int ldc, int a_bits);

/**
 * C[n, w.m] = A[n, k] * packed(W)^T over *wide* unsigned activation
 * codes (int32 storage, up to 30 bits — the classifier head behind
 * GlobalAvgPool, whose codes outgrow 16 bits): each activation splits
 * into a low-15-bit and a high part staged through @p stage, and two
 * packed int16 passes recombine exactly in int64 — bit-identical to
 * the wide int32 igemmTransB reference. Note the transposed output
 * layout (C is [n, m], the Linear accumulator layout).
 */
void igemmPackedWideTransA(const PackedIntWeights &w, int n,
                           const int32_t *a, int lda, int64_t *c, int ldc,
                           int a_bits, std::vector<uint16_t> &stage);

/** @} */

/**
 * Serving-path int8 GEMM: same contract and bit-identical results as
 * the int8 igemmTransB (integer accumulation is exact under any
 * order), implemented with an AVX2 madd microkernel when the build
 * targets one (j-tiled scalar kernel otherwise). This is the kernel
 * compiled execution plans dispatch their <= 8-bit convolutions to;
 * the per-layer reference loops keep igemmTransB so the serving
 * datapath always has a plain reference to diff against.
 */
void igemmTransB8Serve(int m, int n, int k, const int8_t *a, int lda,
                       const uint8_t *b, int ldb, int64_t *c, int ldc,
                       int w_bits, int a_bits);

} // namespace gemm
} // namespace twoinone

#endif // TWOINONE_TENSOR_GEMM_HH
