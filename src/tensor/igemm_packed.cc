/**
 * @file
 * Packed integer GEMM kernel family with runtime ISA dispatch.
 *
 * Layout (see PackedIntWeights in gemm.hh): weight rows in tiles of
 * kPackTileM output channels, the reduction dimension in zero-padded
 * groups of 4 int8 codes (p8, <= 8-bit weights) and of 2 int16 codes
 * (p16, every width). One group of one tile is a contiguous 64-byte
 * vector register's worth of weights:
 *
 *   p8  group: [ch0 k0..k3][ch1 k0..k3] ... [ch15 k0..k3]
 *   p16 group: [ch0 k0 k1 ][ch1 k0 k1 ] ... [ch15 k0 k1 ]
 *
 * so one `vpdpbusd` (resp. `vpmaddwd`) against a broadcast of the
 * activation group computes a partial dot for all 16 channels at
 * once. Activation rows are consumed unpacked — they change every
 * forward, weights are packed once per (layer, precision) — and the
 * ragged final k-group loads only the real bytes (the matching weight
 * lanes are zero, so no padded activation stride is needed).
 *
 * Exactness argument, which is what makes every tier bit-identical:
 * integer accumulation is exact as long as nothing overflows, and
 * overflow is excluded per path —
 *  - int8/vpdpbusd: products <= 127 * 255 fit int16 words, the dword
 *    accumulator is guarded by the qw * qa * k <= INT32_MAX bound
 *    (scalar int64 fallback otherwise);
 *  - maddubs: pair sums saturate int16, so the AVX2 tier only takes
 *    it when 2 * qw * qa <= 32767 and otherwise runs the int16-packed
 *    kernel on widened activations;
 *  - int16/vpmaddwd: pair sums <= 2 * 32767 * 32768 fit int32; group
 *    results accumulate in an int32 window of
 *    floor(INT32_MAX / (2 * qw * qa_eff)) groups before spilling into
 *    int64 lanes, so no partial sum can ever wrap;
 *  - 16-bit activations exceed int16 lanes, so they are biased on the
 *    fly (a ^ 0x8000 = a - 32768) and the exact correction
 *    32768 * rowSum is added back at the int64 store;
 *  - wide (> 16-bit) activations split into low-15-bit and high parts
 *    and recombine as lo + (hi << 15) in int64.
 */

#include "tensor/gemm.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "common/logging.hh"
#include "tensor/ops.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define TWOINONE_X86_KERNELS 1
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
// GCC 12 false positive: the unmasked AVX-512 intrinsics pass
// _mm512_undefined_epi32() as the masked builtins' src operand and
// -Wmaybe-uninitialized flags it (GCC PR 105593).
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#endif

namespace twoinone {
namespace gemm {

namespace {

IsaTier
detectIsa()
{
#ifdef TWOINONE_X86_KERNELS
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") &&
        __builtin_cpu_supports("avx512vnni"))
        return IsaTier::Avx512Vnni;
    if (__builtin_cpu_supports("avx2"))
        return IsaTier::Avx2;
#endif
    return IsaTier::Scalar;
}

struct IsaState
{
    IsaTier detected;
    IsaTier active;
};

IsaState &
isaSlot()
{
    static IsaState s = [] {
        IsaState st{detectIsa(), detectIsa()};
        const char *env = std::getenv("TWOINONE_ISA");
        if (env) {
            std::string v(env);
            IsaTier want = st.detected;
            if (v == "scalar")
                want = IsaTier::Scalar;
            else if (v == "avx2")
                want = IsaTier::Avx2;
            else if (v == "avx512" || v == "vnni" || v == "avx512vnni")
                want = IsaTier::Avx512Vnni;
            else
                TWOINONE_WARN("unknown TWOINONE_ISA=", env, ", using ",
                              isaTierName(st.detected));
            if (want > st.detected) {
                TWOINONE_WARN("TWOINONE_ISA=", env,
                              " not supported by this CPU, using ",
                              isaTierName(st.detected));
                want = st.detected;
            }
            st.active = want;
        }
        return st;
    }();
    return s;
}

/** Signed symmetric grid magnitude (w_bits == 1 is the {-1,+1} binary
 * grid — magnitude 1, matching LinearQuantizer::signedQmax). */
inline int64_t
signedQmaxOf(int w_bits)
{
    return w_bits <= 1 ? 1 : (int64_t{1} << (w_bits - 1)) - 1;
}

/** Load @p n (1..4) activation bytes into a little-endian dword;
 * missing bytes are zero (their weight lanes are zero pads). */
inline uint32_t
loadActWord8(const uint8_t *p, int n)
{
    uint32_t v = 0;
    std::memcpy(&v, p, static_cast<size_t>(n));
    return v;
}

/** int16-path epilogue, one output column: apply the 16-bit bias
 * correction, the wide-split shift, and scatter (ct = false) or
 * contiguous-store (ct = true) the tile's rows. */
inline void
storePackedCol(const PackedIntWeights &w, int row0, int rows, int j,
               const int64_t res[kPackTileM], int64_t *c, int ldc, bool ct,
               bool biased, int shift, bool accumulate)
{
    for (int ch = 0; ch < rows; ++ch) {
        int64_t v = res[ch];
        if (biased)
            v += w.rowSum[static_cast<size_t>(row0 + ch)] << 15;
        v <<= shift;
        int64_t *dst = ct ? c + static_cast<size_t>(j) * ldc + row0 + ch
                          : c + static_cast<size_t>(row0 + ch) * ldc + j;
        if (accumulate)
            *dst += v;
        else
            *dst = v;
    }
}

/** Column work grain: one chunk carries >= ~32K multiply-adds. */
inline int64_t
columnGrain(int m, int k)
{
    return std::max<int64_t>(
        1, (int64_t{1} << 15) /
               std::max<int64_t>(1, static_cast<int64_t>(m) * k));
}

// ---------------------------------------------------------------------------
// Scalar tier: plain loops over the packed layout. Performance is not
// the point — this is the always-available reference every SIMD tier
// must match bit-for-bit (exact int64 accumulation).
// ---------------------------------------------------------------------------

void
kernelScalarU8(const PackedIntWeights &w, int jlo, int jhi,
               const uint8_t *b, int ldb, int64_t *c, int ldc)
{
    for (int t = 0; t < w.tiles; ++t) {
        const int8_t *wt =
            w.p8.data() + static_cast<size_t>(t) * w.groups8 * kPackTileM * 4;
        const int row0 = t * kPackTileM;
        const int rows = std::min(kPackTileM, w.m - row0);
        for (int j = jlo; j < jhi; ++j) {
            const uint8_t *bj = b + static_cast<size_t>(j) * ldb;
            int64_t acc[kPackTileM] = {};
            for (int g = 0; g < w.groups8; ++g) {
                const int8_t *wp =
                    wt + static_cast<size_t>(g) * kPackTileM * 4;
                const int base = g * 4;
                const int lim = std::min(4, w.k - base);
                for (int ch = 0; ch < rows; ++ch)
                    for (int e = 0; e < lim; ++e)
                        acc[ch] += static_cast<int32_t>(wp[ch * 4 + e]) *
                                   static_cast<int32_t>(bj[base + e]);
            }
            for (int ch = 0; ch < rows; ++ch)
                c[static_cast<size_t>(row0 + ch) * ldc + j] = acc[ch];
        }
    }
}

void
kernelScalarU16(const PackedIntWeights &w, int jlo, int jhi,
                const uint16_t *b, int ldb, int64_t *c, int ldc, bool ct,
                int shift, bool accumulate)
{
    for (int t = 0; t < w.tiles; ++t) {
        const int16_t *wt =
            w.p16.data() +
            static_cast<size_t>(t) * w.groups16 * kPackTileM * 2;
        const int row0 = t * kPackTileM;
        const int rows = std::min(kPackTileM, w.m - row0);
        for (int j = jlo; j < jhi; ++j) {
            const uint16_t *bj = b + static_cast<size_t>(j) * ldb;
            int64_t acc[kPackTileM] = {};
            for (int g = 0; g < w.groups16; ++g) {
                const int16_t *wp =
                    wt + static_cast<size_t>(g) * kPackTileM * 2;
                const int base = g * 2;
                const int lim = std::min(2, w.k - base);
                for (int ch = 0; ch < rows; ++ch)
                    for (int e = 0; e < lim; ++e)
                        acc[ch] += static_cast<int64_t>(wp[ch * 2 + e]) *
                                   static_cast<int64_t>(bj[base + e]);
            }
            for (int ch = 0; ch < rows; ++ch) {
                int64_t v = acc[ch] << shift;
                int64_t *dst =
                    ct ? c + static_cast<size_t>(j) * ldc + row0 + ch
                       : c + static_cast<size_t>(row0 + ch) * ldc + j;
                if (accumulate)
                    *dst += v;
                else
                    *dst = v;
            }
        }
    }
}

#ifdef TWOINONE_X86_KERNELS

// ---------------------------------------------------------------------------
// AVX-512/VNNI tier. Function-level target attributes: the kernels
// compile (and runtime-dispatch correctly) even in builds without
// -march=native, e.g. the sanitizer CI jobs.
// ---------------------------------------------------------------------------

/** int8 x uint8 via vpdpbusd (non-saturating: byte products fit the
 * int16 intermediates, dword accumulation is exact). int32
 * accumulators — the caller guarantees qw * qa * k <= INT32_MAX. */
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
kernelVnniU8(const PackedIntWeights &w, int jlo, int jhi, const uint8_t *b,
             int ldb, int64_t *c, int ldc)
{
    const int full_g = w.k / 4;
    const int tail = w.k - full_g * 4;
    for (int t = 0; t < w.tiles; ++t) {
        const int8_t *wt =
            w.p8.data() + static_cast<size_t>(t) * w.groups8 * kPackTileM * 4;
        const int row0 = t * kPackTileM;
        const int rows = std::min(kPackTileM, w.m - row0);
        int j = jlo;
        for (; j + 4 <= jhi; j += 4) {
            const uint8_t *b0 = b + static_cast<size_t>(j) * ldb;
            const uint8_t *b1 = b0 + ldb;
            const uint8_t *b2 = b1 + ldb;
            const uint8_t *b3 = b2 + ldb;
            __m512i a0 = _mm512_setzero_si512();
            __m512i a1 = a0, a2 = a0, a3 = a0;
            const int8_t *wp = wt;
            for (int g = 0; g < full_g; ++g, wp += kPackTileM * 4) {
                __m512i wv = _mm512_loadu_si512(wp);
                uint32_t v0, v1, v2, v3;
                std::memcpy(&v0, b0 + g * 4, 4);
                std::memcpy(&v1, b1 + g * 4, 4);
                std::memcpy(&v2, b2 + g * 4, 4);
                std::memcpy(&v3, b3 + g * 4, 4);
                a0 = _mm512_dpbusd_epi32(
                    a0, _mm512_set1_epi32(static_cast<int>(v0)), wv);
                a1 = _mm512_dpbusd_epi32(
                    a1, _mm512_set1_epi32(static_cast<int>(v1)), wv);
                a2 = _mm512_dpbusd_epi32(
                    a2, _mm512_set1_epi32(static_cast<int>(v2)), wv);
                a3 = _mm512_dpbusd_epi32(
                    a3, _mm512_set1_epi32(static_cast<int>(v3)), wv);
            }
            if (tail) {
                __m512i wv = _mm512_loadu_si512(wp);
                a0 = _mm512_dpbusd_epi32(
                    a0,
                    _mm512_set1_epi32(static_cast<int>(
                        loadActWord8(b0 + full_g * 4, tail))),
                    wv);
                a1 = _mm512_dpbusd_epi32(
                    a1,
                    _mm512_set1_epi32(static_cast<int>(
                        loadActWord8(b1 + full_g * 4, tail))),
                    wv);
                a2 = _mm512_dpbusd_epi32(
                    a2,
                    _mm512_set1_epi32(static_cast<int>(
                        loadActWord8(b2 + full_g * 4, tail))),
                    wv);
                a3 = _mm512_dpbusd_epi32(
                    a3,
                    _mm512_set1_epi32(static_cast<int>(
                        loadActWord8(b3 + full_g * 4, tail))),
                    wv);
            }
            alignas(64) int32_t r0[16], r1[16], r2[16], r3[16];
            _mm512_store_si512(r0, a0);
            _mm512_store_si512(r1, a1);
            _mm512_store_si512(r2, a2);
            _mm512_store_si512(r3, a3);
            for (int ch = 0; ch < rows; ++ch) {
                int64_t *crow = c + static_cast<size_t>(row0 + ch) * ldc;
                crow[j] = r0[ch];
                crow[j + 1] = r1[ch];
                crow[j + 2] = r2[ch];
                crow[j + 3] = r3[ch];
            }
        }
        for (; j < jhi; ++j) {
            const uint8_t *bj = b + static_cast<size_t>(j) * ldb;
            __m512i acc = _mm512_setzero_si512();
            const int8_t *wp = wt;
            for (int g = 0; g < full_g; ++g, wp += kPackTileM * 4) {
                uint32_t v;
                std::memcpy(&v, bj + g * 4, 4);
                acc = _mm512_dpbusd_epi32(
                    acc, _mm512_set1_epi32(static_cast<int>(v)),
                    _mm512_loadu_si512(wp));
            }
            if (tail) {
                acc = _mm512_dpbusd_epi32(
                    acc,
                    _mm512_set1_epi32(static_cast<int>(
                        loadActWord8(bj + full_g * 4, tail))),
                    _mm512_loadu_si512(wp));
            }
            alignas(64) int32_t r[16];
            _mm512_store_si512(r, acc);
            for (int ch = 0; ch < rows; ++ch)
                c[static_cast<size_t>(row0 + ch) * ldc + j] = r[ch];
        }
    }
}

/** Widen-add an int32 accumulator into its two int64 halves and reset
 * it (the spill-window boundary). Free function, not a lambda: GCC
 * does not propagate the enclosing function's target attribute into
 * lambdas, which breaks non-march=native (sanitizer) builds. */
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) inline void
spillAcc512(__m512i &acc32, __m512i &lo64, __m512i &hi64)
{
    lo64 = _mm512_add_epi64(
        lo64, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(acc32)));
    hi64 = _mm512_add_epi64(
        hi64, _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(acc32, 1)));
    acc32 = _mm512_setzero_si512();
}

__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) inline void
storeCol512(const PackedIntWeights &w, int row0, int rows, int j,
            __m512i lo64, __m512i hi64, int64_t *c, int ldc, bool ct,
            bool biased, int shift, bool accumulate)
{
    alignas(64) int64_t res[kPackTileM];
    _mm512_store_si512(res, lo64);
    _mm512_store_si512(res + 8, hi64);
    storePackedCol(w, row0, rows, j, res, c, ldc, ct, biased, shift,
                   accumulate);
}

/** int16-packed kernel via vpdpwssd with windowed int32 -> int64
 * spills; serves the >= 12-bit conv path, the biased 16-bit
 * activation case and both wide-split Linear passes. Four columns in
 * flight in the main loop — a single vpdpwssd chain per column is
 * latency-bound, four independent chains keep the port busy. */
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni"))) void
kernelVnniU16(const PackedIntWeights &w, int jlo, int jhi,
              const uint16_t *b, int ldb, int64_t *c, int ldc, bool ct,
              bool biased, int spill, int shift, bool accumulate)
{
    const int full_g = w.k / 2;
    const int tail = w.k - full_g * 2;
    const uint32_t bias_mask = biased ? 0x80008000u : 0u;
    for (int t = 0; t < w.tiles; ++t) {
        const int16_t *wt =
            w.p16.data() +
            static_cast<size_t>(t) * w.groups16 * kPackTileM * 2;
        const int row0 = t * kPackTileM;
        const int rows = std::min(kPackTileM, w.m - row0);
        int j = jlo;
        for (; j + 4 <= jhi; j += 4) {
            const uint16_t *b0 = b + static_cast<size_t>(j) * ldb;
            const uint16_t *b1 = b0 + ldb;
            const uint16_t *b2 = b1 + ldb;
            const uint16_t *b3 = b2 + ldb;
            const __m512i z = _mm512_setzero_si512();
            __m512i a0 = z, a1 = z, a2 = z, a3 = z;
            __m512i l0 = z, l1 = z, l2 = z, l3 = z;
            __m512i h0 = z, h1 = z, h2 = z, h3 = z;
            int since = 0;
            const int16_t *wp = wt;
            for (int g = 0; g < full_g; ++g, wp += kPackTileM * 2) {
                const __m512i wv = _mm512_loadu_si512(wp);
                uint32_t v0, v1, v2, v3;
                std::memcpy(&v0, b0 + g * 2, 4);
                std::memcpy(&v1, b1 + g * 2, 4);
                std::memcpy(&v2, b2 + g * 2, 4);
                std::memcpy(&v3, b3 + g * 2, 4);
                a0 = _mm512_dpwssd_epi32(
                    a0, wv,
                    _mm512_set1_epi32(static_cast<int>(v0 ^ bias_mask)));
                a1 = _mm512_dpwssd_epi32(
                    a1, wv,
                    _mm512_set1_epi32(static_cast<int>(v1 ^ bias_mask)));
                a2 = _mm512_dpwssd_epi32(
                    a2, wv,
                    _mm512_set1_epi32(static_cast<int>(v2 ^ bias_mask)));
                a3 = _mm512_dpwssd_epi32(
                    a3, wv,
                    _mm512_set1_epi32(static_cast<int>(v3 ^ bias_mask)));
                if (++since == spill) {
                    spillAcc512(a0, l0, h0);
                    spillAcc512(a1, l1, h1);
                    spillAcc512(a2, l2, h2);
                    spillAcc512(a3, l3, h3);
                    since = 0;
                }
            }
            if (tail) { // pad lane: act 0 x weight 0
                const __m512i wv = _mm512_loadu_si512(wp);
                a0 = _mm512_dpwssd_epi32(
                    a0, wv,
                    _mm512_set1_epi32(static_cast<int>(
                        static_cast<uint32_t>(b0[full_g * 2]) ^
                        bias_mask)));
                a1 = _mm512_dpwssd_epi32(
                    a1, wv,
                    _mm512_set1_epi32(static_cast<int>(
                        static_cast<uint32_t>(b1[full_g * 2]) ^
                        bias_mask)));
                a2 = _mm512_dpwssd_epi32(
                    a2, wv,
                    _mm512_set1_epi32(static_cast<int>(
                        static_cast<uint32_t>(b2[full_g * 2]) ^
                        bias_mask)));
                a3 = _mm512_dpwssd_epi32(
                    a3, wv,
                    _mm512_set1_epi32(static_cast<int>(
                        static_cast<uint32_t>(b3[full_g * 2]) ^
                        bias_mask)));
            }
            spillAcc512(a0, l0, h0);
            spillAcc512(a1, l1, h1);
            spillAcc512(a2, l2, h2);
            spillAcc512(a3, l3, h3);
            storeCol512(w, row0, rows, j, l0, h0, c, ldc, ct, biased,
                        shift, accumulate);
            storeCol512(w, row0, rows, j + 1, l1, h1, c, ldc, ct, biased,
                        shift, accumulate);
            storeCol512(w, row0, rows, j + 2, l2, h2, c, ldc, ct, biased,
                        shift, accumulate);
            storeCol512(w, row0, rows, j + 3, l3, h3, c, ldc, ct, biased,
                        shift, accumulate);
        }
        for (; j < jhi; ++j) {
            const uint16_t *bj = b + static_cast<size_t>(j) * ldb;
            __m512i acc32 = _mm512_setzero_si512();
            __m512i lo64 = _mm512_setzero_si512();
            __m512i hi64 = _mm512_setzero_si512();
            int since = 0;
            const int16_t *wp = wt;
            for (int g = 0; g < full_g; ++g, wp += kPackTileM * 2) {
                uint32_t aw;
                std::memcpy(&aw, bj + g * 2, 4);
                acc32 = _mm512_dpwssd_epi32(
                    acc32, _mm512_loadu_si512(wp),
                    _mm512_set1_epi32(static_cast<int>(aw ^ bias_mask)));
                if (++since == spill) {
                    spillAcc512(acc32, lo64, hi64);
                    since = 0;
                }
            }
            if (tail) {
                const uint32_t aw = bj[full_g * 2];
                acc32 = _mm512_dpwssd_epi32(
                    acc32, _mm512_loadu_si512(wp),
                    _mm512_set1_epi32(static_cast<int>(aw ^ bias_mask)));
            }
            spillAcc512(acc32, lo64, hi64);
            storeCol512(w, row0, rows, j, lo64, hi64, c, ldc, ct, biased,
                        shift, accumulate);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 tier.
// ---------------------------------------------------------------------------

/** int8 x uint8 via maddubs + madd(ones). Only exact while the int16
 * pair sums cannot saturate: the caller dispatches here when
 * 2 * qw * qa <= 32767 (and falls back to the int16-packed kernel on
 * widened activations otherwise). int32 accumulators, caller-bounded. */
__attribute__((target("avx2"))) void
kernelAvx2U8(const PackedIntWeights &w, int jlo, int jhi, const uint8_t *b,
             int ldb, int64_t *c, int ldc)
{
    const __m256i ones = _mm256_set1_epi16(1);
    const int full_g = w.k / 4;
    const int tail = w.k - full_g * 4;
    for (int t = 0; t < w.tiles; ++t) {
        const int8_t *wt =
            w.p8.data() + static_cast<size_t>(t) * w.groups8 * kPackTileM * 4;
        const int row0 = t * kPackTileM;
        const int rows = std::min(kPackTileM, w.m - row0);
        for (int j = jlo; j < jhi; ++j) {
            const uint8_t *bj = b + static_cast<size_t>(j) * ldb;
            __m256i acca = _mm256_setzero_si256(); // channels 0..7
            __m256i accb = _mm256_setzero_si256(); // channels 8..15
            const int8_t *wp = wt;
            for (int g = 0; g < full_g; ++g, wp += kPackTileM * 4) {
                uint32_t v;
                std::memcpy(&v, bj + g * 4, 4);
                __m256i bc = _mm256_set1_epi32(static_cast<int>(v));
                __m256i wva = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(wp));
                __m256i wvb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(wp + 32));
                acca = _mm256_add_epi32(
                    acca,
                    _mm256_madd_epi16(_mm256_maddubs_epi16(bc, wva), ones));
                accb = _mm256_add_epi32(
                    accb,
                    _mm256_madd_epi16(_mm256_maddubs_epi16(bc, wvb), ones));
            }
            if (tail) {
                __m256i bc = _mm256_set1_epi32(static_cast<int>(
                    loadActWord8(bj + full_g * 4, tail)));
                __m256i wva = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(wp));
                __m256i wvb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(wp + 32));
                acca = _mm256_add_epi32(
                    acca,
                    _mm256_madd_epi16(_mm256_maddubs_epi16(bc, wva), ones));
                accb = _mm256_add_epi32(
                    accb,
                    _mm256_madd_epi16(_mm256_maddubs_epi16(bc, wvb), ones));
            }
            alignas(32) int32_t ra[8], rb[8];
            _mm256_store_si256(reinterpret_cast<__m256i *>(ra), acca);
            _mm256_store_si256(reinterpret_cast<__m256i *>(rb), accb);
            for (int ch = 0; ch < rows; ++ch)
                c[static_cast<size_t>(row0 + ch) * ldc + j] =
                    ch < 8 ? ra[ch] : rb[ch - 8];
        }
    }
}

/** int8 activations through the int16-packed weights (the
 * maddubs-unsafe combos, e.g. 8w x 8a): widen two uint8 activations
 * into the madd act word. int32 accumulators, caller-bounded. */
__attribute__((target("avx2"))) void
kernelAvx2U8ViaI16(const PackedIntWeights &w, int jlo, int jhi,
                   const uint8_t *b, int ldb, int64_t *c, int ldc)
{
    const int full_g = w.k / 2;
    const int tail = w.k - full_g * 2;
    for (int t = 0; t < w.tiles; ++t) {
        const int16_t *wt =
            w.p16.data() +
            static_cast<size_t>(t) * w.groups16 * kPackTileM * 2;
        const int row0 = t * kPackTileM;
        const int rows = std::min(kPackTileM, w.m - row0);
        for (int j = jlo; j < jhi; ++j) {
            const uint8_t *bj = b + static_cast<size_t>(j) * ldb;
            __m256i acca = _mm256_setzero_si256();
            __m256i accb = _mm256_setzero_si256();
            const int16_t *wp = wt;
            for (int g = 0; g < full_g; ++g, wp += kPackTileM * 2) {
                uint32_t aw = static_cast<uint32_t>(bj[g * 2]) |
                              (static_cast<uint32_t>(bj[g * 2 + 1]) << 16);
                __m256i bc = _mm256_set1_epi32(static_cast<int>(aw));
                acca = _mm256_add_epi32(
                    acca, _mm256_madd_epi16(
                              _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i *>(wp)),
                              bc));
                accb = _mm256_add_epi32(
                    accb,
                    _mm256_madd_epi16(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(wp + 16)),
                        bc));
            }
            if (tail) {
                __m256i bc = _mm256_set1_epi32(
                    static_cast<int>(bj[full_g * 2]));
                acca = _mm256_add_epi32(
                    acca, _mm256_madd_epi16(
                              _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i *>(wp)),
                              bc));
                accb = _mm256_add_epi32(
                    accb,
                    _mm256_madd_epi16(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(wp + 16)),
                        bc));
            }
            alignas(32) int32_t ra[8], rb[8];
            _mm256_store_si256(reinterpret_cast<__m256i *>(ra), acca);
            _mm256_store_si256(reinterpret_cast<__m256i *>(rb), accb);
            for (int ch = 0; ch < rows; ++ch)
                c[static_cast<size_t>(row0 + ch) * ldc + j] =
                    ch < 8 ? ra[ch] : rb[ch - 8];
        }
    }
}

/** AVX2 spill: widen-add the two int32 accumulators (channels 0..7
 * and 8..15) into four int64 quarters and reset them. Free function
 * for the same target-attribute-vs-lambda reason as spillAcc512. */
__attribute__((target("avx2"))) inline void
spillAcc256(__m256i &acc32a, __m256i &acc32b, __m256i acc64[4])
{
    acc64[0] = _mm256_add_epi64(
        acc64[0], _mm256_cvtepi32_epi64(_mm256_castsi256_si128(acc32a)));
    acc64[1] = _mm256_add_epi64(
        acc64[1],
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(acc32a, 1)));
    acc64[2] = _mm256_add_epi64(
        acc64[2], _mm256_cvtepi32_epi64(_mm256_castsi256_si128(acc32b)));
    acc64[3] = _mm256_add_epi64(
        acc64[3],
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(acc32b, 1)));
    acc32a = _mm256_setzero_si256();
    acc32b = _mm256_setzero_si256();
}

/** AVX2 counterpart of kernelVnniU16 (madd + add, windowed spills). */
__attribute__((target("avx2"))) void
kernelAvx2U16(const PackedIntWeights &w, int jlo, int jhi,
              const uint16_t *b, int ldb, int64_t *c, int ldc, bool ct,
              bool biased, int spill, int shift, bool accumulate)
{
    const int full_g = w.k / 2;
    const int tail = w.k - full_g * 2;
    const uint32_t bias_mask = biased ? 0x80008000u : 0u;
    for (int t = 0; t < w.tiles; ++t) {
        const int16_t *wt =
            w.p16.data() +
            static_cast<size_t>(t) * w.groups16 * kPackTileM * 2;
        const int row0 = t * kPackTileM;
        const int rows = std::min(kPackTileM, w.m - row0);
        for (int j = jlo; j < jhi; ++j) {
            const uint16_t *bj = b + static_cast<size_t>(j) * ldb;
            __m256i acc32a = _mm256_setzero_si256(); // channels 0..7
            __m256i acc32b = _mm256_setzero_si256(); // channels 8..15
            __m256i acc64[4] = {
                _mm256_setzero_si256(), _mm256_setzero_si256(),
                _mm256_setzero_si256(), _mm256_setzero_si256()};
            int since = 0;
            const int16_t *wp = wt;
            for (int g = 0; g < full_g; ++g, wp += kPackTileM * 2) {
                uint32_t aw;
                std::memcpy(&aw, bj + g * 2, 4);
                __m256i bc =
                    _mm256_set1_epi32(static_cast<int>(aw ^ bias_mask));
                acc32a = _mm256_add_epi32(
                    acc32a, _mm256_madd_epi16(
                                _mm256_loadu_si256(
                                    reinterpret_cast<const __m256i *>(wp)),
                                bc));
                acc32b = _mm256_add_epi32(
                    acc32b,
                    _mm256_madd_epi16(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(wp + 16)),
                        bc));
                if (++since == spill) {
                    spillAcc256(acc32a, acc32b, acc64);
                    since = 0;
                }
            }
            if (tail) {
                const uint32_t aw = bj[full_g * 2];
                __m256i bc =
                    _mm256_set1_epi32(static_cast<int>(aw ^ bias_mask));
                acc32a = _mm256_add_epi32(
                    acc32a, _mm256_madd_epi16(
                                _mm256_loadu_si256(
                                    reinterpret_cast<const __m256i *>(wp)),
                                bc));
                acc32b = _mm256_add_epi32(
                    acc32b,
                    _mm256_madd_epi16(
                        _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(wp + 16)),
                        bc));
            }
            spillAcc256(acc32a, acc32b, acc64);
            alignas(32) int64_t res[16];
            _mm256_store_si256(reinterpret_cast<__m256i *>(res), acc64[0]);
            _mm256_store_si256(reinterpret_cast<__m256i *>(res + 4),
                               acc64[1]);
            _mm256_store_si256(reinterpret_cast<__m256i *>(res + 8),
                               acc64[2]);
            _mm256_store_si256(reinterpret_cast<__m256i *>(res + 12),
                               acc64[3]);
            storePackedCol(w, row0, rows, j, res, c, ldc, ct, biased,
                           shift, accumulate);
        }
    }
}

#endif // TWOINONE_X86_KERNELS

/** Shared int16-path dispatch: the u16 public entry (ct = false) and
 * both wide-split passes (ct = true) funnel here. */
void
runPackedU16(const PackedIntWeights &w, int n, const uint16_t *b, int ldb,
             int64_t *c, int ldc, bool ct, bool biased, int spill,
             int shift, bool accumulate)
{
    if (n <= 0 || w.m <= 0)
        return;
    const IsaTier tier = activeIsaTier();
    ops::gatedParallelFor(
        n, columnGrain(w.m, w.k), [&](int64_t lo, int64_t hi) {
            const int jlo = static_cast<int>(lo);
            const int jhi = static_cast<int>(hi);
#ifdef TWOINONE_X86_KERNELS
            if (tier == IsaTier::Avx512Vnni) {
                kernelVnniU16(w, jlo, jhi, b, ldb, c, ldc, ct, biased,
                              spill, shift, accumulate);
                return;
            }
            if (tier == IsaTier::Avx2) {
                kernelAvx2U16(w, jlo, jhi, b, ldb, c, ldc, ct, biased,
                              spill, shift, accumulate);
                return;
            }
#endif
            kernelScalarU16(w, jlo, jhi, b, ldb, c, ldc, ct, shift,
                            accumulate);
        });
}

/** int32 spill window: how many int16 madd group results (each
 * bounded by 2 * qw * qa_eff) accumulate before widening to int64. */
inline int
spillWindow(int64_t qw, int64_t qa_eff)
{
    int64_t bound = 2 * qw * std::max<int64_t>(1, qa_eff);
    return static_cast<int>(std::max<int64_t>(
        1, std::numeric_limits<int32_t>::max() / bound));
}

} // namespace

IsaTier
detectedIsaTier()
{
    return isaSlot().detected;
}

IsaTier
activeIsaTier()
{
    return isaSlot().active;
}

void
setActiveIsaTier(IsaTier t)
{
    isaSlot().active = std::min(t, isaSlot().detected);
}

const char *
isaTierName(IsaTier t)
{
    switch (t) {
    case IsaTier::Avx512Vnni:
        return "avx512vnni";
    case IsaTier::Avx2:
        return "avx2";
    default:
        return "scalar";
    }
}

void
packWeights(const int32_t *codes, int m, int k, int w_bits,
            PackedIntWeights &out)
{
    TWOINONE_ASSERT(m >= 0 && k >= 0 && w_bits >= 1 && w_bits <= 16,
                    "packWeights needs codes of 1..16 bits");
    out.m = m;
    out.k = k;
    out.bits = w_bits;
    out.tiles = (m + kPackTileM - 1) / kPackTileM;
    out.groups8 = w_bits <= 8 ? (k + 3) / 4 : 0;
    out.groups16 = (k + 1) / 2;
    out.rowSum.assign(static_cast<size_t>(out.tiles) * kPackTileM, 0);
    out.p8.assign(static_cast<size_t>(out.tiles) * out.groups8 *
                      kPackTileM * 4,
                  0);
    out.p16.assign(static_cast<size_t>(out.tiles) * out.groups16 *
                       kPackTileM * 2,
                   0);
    for (int row = 0; row < m; ++row) {
        const int t = row / kPackTileM;
        const int ch = row % kPackTileM;
        const int32_t *src = codes + static_cast<size_t>(row) * k;
        int64_t sum = 0;
        for (int p = 0; p < k; ++p) {
            const int32_t v = src[p];
            sum += v;
            if (!out.p8.empty())
                out.p8[(static_cast<size_t>(t) * out.groups8 + p / 4) *
                           (kPackTileM * 4) +
                       ch * 4 + p % 4] = static_cast<int8_t>(v);
            out.p16[(static_cast<size_t>(t) * out.groups16 + p / 2) *
                        (kPackTileM * 2) +
                    ch * 2 + p % 2] = static_cast<int16_t>(v);
        }
        out.rowSum[static_cast<size_t>(t) * kPackTileM + ch] = sum;
    }
}

void
igemmPackedTransB(const PackedIntWeights &w, int n, const uint8_t *b,
                  int ldb, int64_t *c, int ldc, int a_bits)
{
    TWOINONE_ASSERT(!w.empty(), "packed igemm on empty weights");
    TWOINONE_ASSERT(w.bits <= 8 && a_bits >= 1 && a_bits <= 8,
                    "packed int8 igemm needs codes of <= 8 bits");
    if (n <= 0 || w.m <= 0)
        return;
    const int64_t qw = signedQmaxOf(w.bits);
    const int64_t qa = (int64_t{1} << a_bits) - 1;
    const bool fits32 =
        qw * qa * w.k <= std::numeric_limits<int32_t>::max();
    const IsaTier tier = activeIsaTier();
    const bool maddubs_safe = 2 * qw * qa <= 32767;
    ops::gatedParallelFor(
        n, columnGrain(w.m, w.k), [&](int64_t lo, int64_t hi) {
            const int jlo = static_cast<int>(lo);
            const int jhi = static_cast<int>(hi);
#ifdef TWOINONE_X86_KERNELS
            if (fits32 && tier == IsaTier::Avx512Vnni) {
                kernelVnniU8(w, jlo, jhi, b, ldb, c, ldc);
                return;
            }
            if (fits32 && tier == IsaTier::Avx2) {
                if (maddubs_safe)
                    kernelAvx2U8(w, jlo, jhi, b, ldb, c, ldc);
                else
                    kernelAvx2U8ViaI16(w, jlo, jhi, b, ldb, c, ldc);
                return;
            }
#else
            (void)fits32;
            (void)maddubs_safe;
            (void)tier;
#endif
            kernelScalarU8(w, jlo, jhi, b, ldb, c, ldc);
        });
}

void
igemmPackedTransB(const PackedIntWeights &w, int n, const uint16_t *b,
                  int ldb, int64_t *c, int ldc, int a_bits)
{
    TWOINONE_ASSERT(!w.empty(), "packed igemm on empty weights");
    TWOINONE_ASSERT(w.bits <= 16 && a_bits >= 1 && a_bits <= 16,
                    "packed int16 igemm needs codes of <= 16 bits");
    // 16-bit activations exceed the int16 madd lanes: bias them on the
    // fly (a - 32768 fits) and add 32768 * rowSum back at the store.
    const bool biased = a_bits == 16;
    const int64_t qa_eff =
        biased ? 32768 : (int64_t{1} << a_bits) - 1;
    runPackedU16(w, n, b, ldb, c, ldc, /*ct=*/false, biased,
                 spillWindow(signedQmaxOf(w.bits), qa_eff), /*shift=*/0,
                 /*accumulate=*/false);
}

void
igemmPackedWideTransA(const PackedIntWeights &w, int n, const int32_t *a,
                      int lda, int64_t *c, int ldc, int a_bits,
                      std::vector<uint16_t> &stage)
{
    TWOINONE_ASSERT(!w.empty(), "packed igemm on empty weights");
    TWOINONE_ASSERT(w.bits <= 16 && a_bits >= 1 && a_bits <= 30,
                    "packed wide igemm needs unsigned codes of <= 30 bits");
    if (n <= 0 || w.m <= 0)
        return;
    const bool two = a_bits > 15;
    const size_t nk = static_cast<size_t>(n) * w.k;
    stage.resize(two ? 2 * nk : nk);
    uint16_t *lo = stage.data();
    uint16_t *hi = two ? lo + nk : nullptr;
    ops::gatedParallelFor(
        n, std::max<int64_t>(1, (int64_t{1} << 15) /
                                    std::max(1, w.k)),
        [&](int64_t r0, int64_t r1) {
            for (int64_t r = r0; r < r1; ++r) {
                const int32_t *ar = a + static_cast<size_t>(r) * lda;
                uint16_t *lr = lo + static_cast<size_t>(r) * w.k;
                if (two) {
                    uint16_t *hr = hi + static_cast<size_t>(r) * w.k;
                    for (int p = 0; p < w.k; ++p) {
                        const uint32_t v = static_cast<uint32_t>(ar[p]);
                        lr[p] = static_cast<uint16_t>(v & 0x7fff);
                        hr[p] = static_cast<uint16_t>(v >> 15);
                    }
                } else {
                    for (int p = 0; p < w.k; ++p)
                        lr[p] = static_cast<uint16_t>(ar[p]);
                }
            }
        });
    const int64_t qw = signedQmaxOf(w.bits);
    const int64_t qa = (int64_t{1} << a_bits) - 1;
    const int64_t qa_lo = std::min<int64_t>(qa, 0x7fff);
    runPackedU16(w, n, lo, w.k, c, ldc, /*ct=*/true, /*biased=*/false,
                 spillWindow(qw, qa_lo), /*shift=*/0,
                 /*accumulate=*/false);
    if (two) {
        const int64_t qa_hi = qa >> 15;
        runPackedU16(w, n, hi, w.k, c, ldc, /*ct=*/true, /*biased=*/false,
                     spillWindow(qw, qa_hi), /*shift=*/15,
                     /*accumulate=*/true);
    }
}

} // namespace gemm
} // namespace twoinone
