/**
 * @file
 * TwoInOneSystem implementation.
 */

#include "core/system.hh"

namespace twoinone {

TwoInOneSystem::TwoInOneSystem(Network &model, NetworkWorkload hw_workload,
                               PrecisionSet set, AcceleratorKind kind,
                               uint64_t seed)
    : controller_(model, std::move(set), seed),
      hwWorkload_(std::move(hw_workload)),
      accel_(kind, Accelerator::defaultAreaBudget(),
             TechModel::defaults())
{
}

InferenceStats
TwoInOneSystem::classify(const Tensor &x)
{
    InferenceStats stats;
    stats.predictions = controller_.classify(x);
    stats.precision = controller_.lastPrecision();
    NetworkPrediction np =
        accel_.run(hwWorkload_, stats.precision, stats.precision);
    stats.cycles = np.totalCycles;
    stats.energyPj = np.totalEnergyPj;
    return stats;
}

double
TwoInOneSystem::energyPjAt(int bits) const
{
    return accel_.run(hwWorkload_, bits, bits).totalEnergyPj;
}

double
TwoInOneSystem::cyclesAt(int bits) const
{
    return accel_.run(hwWorkload_, bits, bits).totalCycles;
}

double
TwoInOneSystem::avgEnergyPjPerInference() const
{
    const PrecisionSet &set = controller_.precisionSet();
    double sum = 0.0;
    for (int q : set.bits())
        sum += energyPjAt(q);
    return sum / static_cast<double>(set.size());
}

double
TwoInOneSystem::avgFps() const
{
    const PrecisionSet &set = controller_.precisionSet();
    double clock = accel_.predictor().tech().clockGhz;
    double sum = 0.0;
    for (int q : set.bits()) {
        double cycles = cyclesAt(q);
        sum += clock * 1e9 / cycles;
    }
    return sum / static_cast<double>(set.size());
}

} // namespace twoinone
