/**
 * @file
 * TwoInOneSystem: the full co-designed stack — an RPS-trained model
 * switched in situ by an RpsController, executed on the
 * precision-scalable accelerator model, with per-inference latency
 * and energy accounting. This is the integration point the paper's
 * title promises: one system winning both robustness and efficiency.
 */

#ifndef TWOINONE_CORE_SYSTEM_HH
#define TWOINONE_CORE_SYSTEM_HH

#include "accel/accelerator.hh"
#include "core/rps.hh"

namespace twoinone {

/**
 * Result of one classify() call on the system.
 */
struct InferenceStats
{
    /** Precision the RPS controller drew. */
    int precision = 0;
    /** Accelerator cycles for this inference. */
    double cycles = 0.0;
    /** Accelerator energy for this inference, pJ. */
    double energyPj = 0.0;
    /** Class predictions. */
    std::vector<int> predictions;
};

/**
 * The integrated 2-in-1 system.
 */
class TwoInOneSystem
{
  public:
    /**
     * @param model RPS-trained network (functional behaviour).
     * @param hw_workload Layer shapes of the deployed model on the
     *        accelerator (timing/energy behaviour). The mini model
     *        and the workload are decoupled so laptop-scale models
     *        can be costed as their full-scale counterparts.
     * @param set Inference candidate precision set.
     * @param kind Accelerator design (default: the 2-in-1 design).
     * @param seed RPS sampler seed.
     */
    TwoInOneSystem(Network &model, NetworkWorkload hw_workload,
                   PrecisionSet set,
                   AcceleratorKind kind = AcceleratorKind::TwoInOne,
                   uint64_t seed = 99);

    /** Classify a batch at a random precision, with cost accounting. */
    InferenceStats classify(const Tensor &x);

    /** Expected energy per inference averaged over the active set. */
    double avgEnergyPjPerInference() const;

    /** Expected frames/s averaged over the active set. */
    double avgFps() const;

    /** Energy at one specific precision (helper for sweeps). */
    double energyPjAt(int bits) const;

    /** Cycles at one specific precision. */
    double cyclesAt(int bits) const;

    RpsController &controller() { return controller_; }
    const Accelerator &accelerator() const { return accel_; }
    const NetworkWorkload &hwWorkload() const { return hwWorkload_; }

  private:
    RpsController controller_;
    NetworkWorkload hwWorkload_;
    Accelerator accel_;
};

} // namespace twoinone

#endif // TWOINONE_CORE_SYSTEM_HH
