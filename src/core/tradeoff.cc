/**
 * @file
 * Trade-off controller implementation.
 */

#include "core/tradeoff.hh"

#include "adversarial/evaluation.hh"
#include "common/logging.hh"

namespace twoinone {

const char *
safetyConditionName(SafetyCondition c)
{
    switch (c) {
      case SafetyCondition::Hostile: return "hostile";
      case SafetyCondition::Elevated: return "elevated";
      case SafetyCondition::Normal: return "normal";
      case SafetyCondition::Safe: return "safe";
    }
    TWOINONE_PANIC("unknown SafetyCondition");
}

PrecisionSet
precisionSetFor(SafetyCondition c)
{
    switch (c) {
      case SafetyCondition::Hostile: return PrecisionSet::rps4to16();
      case SafetyCondition::Elevated: return PrecisionSet::rps4to12();
      case SafetyCondition::Normal: return PrecisionSet::rps4to8();
      case SafetyCondition::Safe: return PrecisionSet::static4();
    }
    TWOINONE_PANIC("unknown SafetyCondition");
}

std::vector<TradeoffPoint>
evaluateTradeoffCurve(TwoInOneSystem &system, const Dataset &data,
                      Attack &attack, Rng &rng)
{
    PrecisionSet restore = system.controller().precisionSet();
    Network &net = system.controller().network();

    std::vector<TradeoffPoint> points;
    double worst_energy = 0.0;
    for (SafetyCondition c :
         {SafetyCondition::Hostile, SafetyCondition::Elevated,
          SafetyCondition::Normal, SafetyCondition::Safe}) {
        PrecisionSet set = precisionSetFor(c);
        system.controller().setPrecisionSet(set);

        TradeoffPoint p;
        p.setName = set.name();
        p.naturalAccuracy = rpsNaturalAccuracy(net, data, set, rng);
        p.robustAccuracy = rpsRobustAccuracy(net, attack, data, set, rng);
        p.avgEnergyPj = system.avgEnergyPjPerInference();
        worst_energy = std::max(worst_energy, p.avgEnergyPj);
        points.push_back(std::move(p));
    }

    for (TradeoffPoint &p : points) {
        TWOINONE_ASSERT(p.avgEnergyPj > 0.0, "degenerate energy");
        p.normalizedEfficiency = worst_energy / p.avgEnergyPj;
    }

    system.controller().setPrecisionSet(restore);
    return points;
}

} // namespace twoinone
