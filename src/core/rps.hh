/**
 * @file
 * RPS inference controller — the runtime half of paper Alg. 1.
 *
 * The controller owns the random precision sampler: every
 * classification draws a precision from the candidate set, switches
 * the model in situ (weights, activations and SBN bank), and runs
 * inference. It is also the hook for the instant robustness-
 * efficiency trade-off of Sec. 2.5: swapping the candidate set at
 * run time needs no retraining.
 */

#ifndef TWOINONE_CORE_RPS_HH
#define TWOINONE_CORE_RPS_HH

#include "adversarial/trainer.hh"
#include "nn/network.hh"

namespace twoinone {

/**
 * Runtime random-precision-switch controller for one network.
 */
class RpsController
{
  public:
    /**
     * @param net RPS-trained network (must be bound to a superset of
     *        every candidate set used at run time).
     * @param set Initial inference candidate set.
     * @param seed Sampler seed.
     */
    RpsController(Network &net, PrecisionSet set, uint64_t seed = 99);

    /** Draw the next inference precision (Alg. 1 line 16). */
    int samplePrecision();

    /**
     * Classify a batch at a freshly drawn random precision.
     * The drawn precision is left active (see lastPrecision()).
     */
    std::vector<int> classify(const Tensor &x);

    /** Precision used by the most recent classify(). */
    int lastPrecision() const { return lastPrecision_; }

    /** The active candidate set. */
    const PrecisionSet &precisionSet() const { return set_; }

    /**
     * Instant trade-off switch (Sec. 2.5): replace the candidate set.
     * Every member must be one the network was trained for.
     */
    void setPrecisionSet(PrecisionSet set);

    Network &network() { return net_; }

  private:
    Network &net_;
    PrecisionSet set_;
    Rng rng_;
    int lastPrecision_ = 0;

    void validateSet(const PrecisionSet &set) const;
};

/**
 * Convenience: run the full RPS recipe — adversarial training with
 * random precision switching (Alg. 1 training) — returning the
 * trained network's final training loss.
 */
float rpsTrain(Network &net, const Dataset &train,
               TrainConfig cfg);

} // namespace twoinone

#endif // TWOINONE_CORE_RPS_HH
