/**
 * @file
 * Instant robustness-efficiency trade-off controller (paper Sec. 2.5
 * and Fig. 11): without retraining, the deployed system switches
 * between candidate precision sets — higher sets for hostile
 * environments, lower sets or a static low precision for safe,
 * battery-constrained operation.
 */

#ifndef TWOINONE_CORE_TRADEOFF_HH
#define TWOINONE_CORE_TRADEOFF_HH

#include "adversarial/attack.hh"
#include "core/system.hh"
#include "data/synthetic.hh"

namespace twoinone {

/** Environment condition driving the trade-off policy. */
enum class SafetyCondition
{
    Hostile,  ///< Full candidate set (max robustness).
    Elevated, ///< Mid-range set.
    Normal,   ///< Low-precision set (efficiency-leaning).
    Safe,     ///< Static low precision (max efficiency).
};

/** Condition name for reports. */
const char *safetyConditionName(SafetyCondition c);

/** The paper's Fig. 11 precision set for a condition. */
PrecisionSet precisionSetFor(SafetyCondition c);

/**
 * One evaluated trade-off operating point.
 */
struct TradeoffPoint
{
    std::string setName;
    double naturalAccuracy = 0.0;
    double robustAccuracy = 0.0;
    /** Average energy per inference, pJ. */
    double avgEnergyPj = 0.0;
    /** Energy efficiency normalized to the least efficient point. */
    double normalizedEfficiency = 1.0;
};

/**
 * Evaluate the Fig. 11 trade-off curve on a trained system.
 *
 * @param system The deployed 2-in-1 system (its controller's set is
 *        switched through every condition and restored afterwards).
 * @param data Evaluation dataset.
 * @param attack Attack used for robust accuracy.
 * @param rng Randomness for attack and samplers.
 * @return One point per SafetyCondition, in declaration order.
 */
std::vector<TradeoffPoint>
evaluateTradeoffCurve(TwoInOneSystem &system, const Dataset &data,
                      Attack &attack, Rng &rng);

} // namespace twoinone

#endif // TWOINONE_CORE_TRADEOFF_HH
