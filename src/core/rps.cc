/**
 * @file
 * RpsController implementation.
 */

#include "core/rps.hh"

namespace twoinone {

RpsController::RpsController(Network &net, PrecisionSet set, uint64_t seed)
    : net_(net), set_(std::move(set)), rng_(seed)
{
    validateSet(set_);
}

void
RpsController::validateSet(const PrecisionSet &set) const
{
    TWOINONE_ASSERT(!set.empty(), "empty inference precision set");
    for (int q : set.bits()) {
        TWOINONE_ASSERT(net_.precisionSet().contains(q),
                        "inference precision ", q,
                        " outside the trained set ",
                        net_.precisionSet().name());
    }
}

int
RpsController::samplePrecision()
{
    return set_.sample(rng_);
}

std::vector<int>
RpsController::classify(const Tensor &x)
{
    lastPrecision_ = samplePrecision();
    net_.setPrecision(lastPrecision_);
    return net_.predict(x);
}

void
RpsController::setPrecisionSet(PrecisionSet set)
{
    validateSet(set);
    set_ = std::move(set);
}

float
rpsTrain(Network &net, const Dataset &train, TrainConfig cfg)
{
    cfg.rps = true;
    Trainer trainer(net, cfg);
    return trainer.fit(train);
}

} // namespace twoinone
