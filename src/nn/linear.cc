/**
 * @file
 * Linear layer implementation.
 */

#include "nn/linear.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/gemm.hh"
#include "tensor/ops.hh"

namespace twoinone {

Linear::Linear(int in_features, int out_features, bool bias, Rng &rng)
    : inFeatures_(in_features), outFeatures_(out_features), hasBias_(bias),
      weight_(Tensor::randn({out_features, in_features}, rng,
                            static_cast<float>(std::sqrt(2.0 / in_features)))),
      bias_(bias ? Tensor::zeros({out_features}) : Tensor())
{
    TWOINONE_ASSERT(in_features > 0 && out_features > 0,
                    "bad Linear geometry");
}

Tensor
Linear::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() == 2 && x.dim(1) == inFeatures_,
                    "Linear input shape mismatch");
    QuantResult wq_local;
    const QuantResult &wq = quantizedWeight(quant_.weightBits, wq_local);
    if (&wq == weightCache()) {
        steMask_ = &wq.steMask;
    } else {
        ownedSteMask_ = wq.steMask;
        steMask_ = &ownedSteMask_;
    }
    cachedInput_ = x;

    Tensor out = ops::matmulTransposeB(x, wq.values);
    if (hasBias_) {
        // Rows are disjoint, so the bias add parallelizes over the
        // batch; the naive reference backend keeps it serial.
        int n = out.dim(0);
        float *o = out.data();
        const float *b = bias_.value.data();
        int64_t grain_rows = std::max<int64_t>(1, (1 << 15) / outFeatures_);
        ops::gatedParallelFor(n, grain_rows, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                float *row = o + static_cast<size_t>(i) * outFeatures_;
                for (int j = 0; j < outFeatures_; ++j)
                    row[j] += b[j];
            }
        });
    }
    return out;
}

QuantAct
Linear::forwardQuantized(QuantAct &x)
{
    int wbits = quant_.weightBits;
    if (wbits <= 0 || !x.hasCodes())
        return Layer::forwardQuantized(x);
    TWOINONE_ASSERT(x.q.shape.size() == 2 && x.q.shape[1] == inFeatures_,
                    "Linear quantized input shape mismatch");
    int n = x.q.shape[0];

    QuantTensor wlocal;
    const QuantTensor &wq = quantizedCodes(wbits, wlocal);

    // acc[N, out] = Xq[N, in] * Wq[out, in]^T, exact int64.
    accBuf_.resize(static_cast<size_t>(n) * outFeatures_);
    gemm::igemmTransB(n, outFeatures_, inFeatures_, x.q.codes.data(),
                      inFeatures_, wq.codes.data(), inFeatures_,
                      accBuf_.data(), outFeatures_);

    float dq = wq.scale * x.q.scale;
    const float *b = hasBias_ ? bias_.value.data() : nullptr;
    Tensor out({n, outFeatures_});
    float *o = out.data();
    for (int64_t i = 0; i < static_cast<int64_t>(n) * outFeatures_; ++i) {
        o[i] = static_cast<float>(accBuf_[static_cast<size_t>(i)]) * dq +
               (b ? b[i % outFeatures_] : 0.0f);
    }

    if (quantTrace_) {
        tracedW_ = wq;
        tracedA_ = x.q;
        tracedAcc_ = accBuf_;
    }
    return QuantAct(std::move(out));
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInput_.empty(), "Linear backward before forward");
    TWOINONE_ASSERT(grad_out.ndim() == 2 && grad_out.dim(1) == outFeatures_,
                    "Linear grad_out shape mismatch");

    // dW = grad_out^T x input, masked by the STE.
    TWOINONE_ASSERT(steMask_ != nullptr, "Linear backward before forward");
    const Tensor &mask = *steMask_;
    Tensor dw = ops::matmulTransposeA(grad_out, cachedInput_);
    for (size_t i = 0; i < weight_.grad.size(); ++i)
        weight_.grad[i] += dw[i] * mask[i];

    if (hasBias_) {
        int n = grad_out.dim(0);
        for (int j = 0; j < outFeatures_; ++j) {
            double s = 0.0;
            for (int i = 0; i < n; ++i)
                s += grad_out.at2(i, j);
            bias_.grad[static_cast<size_t>(j)] += static_cast<float>(s);
        }
    }

    QuantResult wq_local;
    const QuantResult &wq = quantizedWeight(quant_.weightBits, wq_local);
    return ops::matmul(grad_out, wq.values);
}

void
Linear::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&weight_);
    if (hasBias_)
        out.push_back(&bias_);
}

void
Linear::collectWeightQuantized(std::vector<WeightQuantizedLayer *> &out)
{
    out.push_back(this);
}

void
Linear::setWeightCache(const QuantResult *cache)
{
    // See Conv2d::setWeightCache: fail fast on a stale backward
    // instead of dangling into freed cache storage.
    if (cache == nullptr && steMask_ != &ownedSteMask_)
        steMask_ = nullptr;
    WeightQuantizedLayer::setWeightCache(cache);
}

std::string
Linear::describe() const
{
    std::ostringstream oss;
    oss << "Linear(" << inFeatures_ << "->" << outFeatures_ << ")";
    return oss.str();
}

} // namespace twoinone
