/**
 * @file
 * Linear layer implementation.
 */

#include "nn/linear.hh"

#include <cmath>
#include <sstream>

#include "tensor/ops.hh"

namespace twoinone {

Linear::Linear(int in_features, int out_features, bool bias, Rng &rng)
    : inFeatures_(in_features), outFeatures_(out_features), hasBias_(bias),
      weight_(Tensor::randn({out_features, in_features}, rng,
                            static_cast<float>(std::sqrt(2.0 / in_features)))),
      bias_(bias ? Tensor::zeros({out_features}) : Tensor())
{
    TWOINONE_ASSERT(in_features > 0 && out_features > 0,
                    "bad Linear geometry");
}

Tensor
Linear::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() == 2 && x.dim(1) == inFeatures_,
                    "Linear input shape mismatch");
    QuantResult wq =
        LinearQuantizer::fakeQuantSymmetric(weight_.value, quant_.weightBits);
    cachedSteMask_ = wq.steMask;
    cachedInput_ = x;

    Tensor out = ops::matmulTransposeB(x, wq.values);
    if (hasBias_) {
        int n = out.dim(0);
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < outFeatures_; ++j)
                out.at2(i, j) += bias_.value[static_cast<size_t>(j)];
        }
    }
    return out;
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInput_.empty(), "Linear backward before forward");
    TWOINONE_ASSERT(grad_out.ndim() == 2 && grad_out.dim(1) == outFeatures_,
                    "Linear grad_out shape mismatch");

    // dW = grad_out^T x input, masked by the STE.
    Tensor dw = ops::matmulTransposeA(grad_out, cachedInput_);
    for (size_t i = 0; i < weight_.grad.size(); ++i)
        weight_.grad[i] += dw[i] * cachedSteMask_[i];

    if (hasBias_) {
        int n = grad_out.dim(0);
        for (int j = 0; j < outFeatures_; ++j) {
            double s = 0.0;
            for (int i = 0; i < n; ++i)
                s += grad_out.at2(i, j);
            bias_.grad[static_cast<size_t>(j)] += static_cast<float>(s);
        }
    }

    QuantResult wq =
        LinearQuantizer::fakeQuantSymmetric(weight_.value, quant_.weightBits);
    return ops::matmul(grad_out, wq.values);
}

void
Linear::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&weight_);
    if (hasBias_)
        out.push_back(&bias_);
}

std::string
Linear::describe() const
{
    std::ostringstream oss;
    oss << "Linear(" << inFeatures_ << "->" << outFeatures_ << ")";
    return oss.str();
}

} // namespace twoinone
