/**
 * @file
 * Linear layer implementation.
 */

#include "nn/linear.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "serve/execution_plan.hh"
#include "tensor/gemm.hh"
#include "tensor/ops.hh"

namespace twoinone {

Linear::Linear(int in_features, int out_features, bool bias, Rng &rng)
    : inFeatures_(in_features), outFeatures_(out_features), hasBias_(bias),
      weight_(Tensor::randn({out_features, in_features}, rng,
                            static_cast<float>(std::sqrt(2.0 / in_features)))),
      bias_(bias ? Tensor::zeros({out_features}) : Tensor())
{
    TWOINONE_ASSERT(in_features > 0 && out_features > 0,
                    "bad Linear geometry");
}

Tensor
Linear::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() == 2 && x.dim(1) == inFeatures_,
                    "Linear input shape mismatch");
    QuantResult wq_local;
    const QuantResult &wq = quantizedWeight(quant_.weightBits, wq_local);
    if (&wq == weightCache()) {
        steMask_ = &wq.steMask;
    } else {
        ownedSteMask_ = wq.steMask;
        steMask_ = &ownedSteMask_;
    }
    cachedInput_ = x;

    Tensor out = ops::matmulTransposeB(x, wq.values);
    if (hasBias_)
        addBiasRows(out);
    return out;
}

void
Linear::addBiasRows(Tensor &out) const
{
    // Rows are disjoint, so the bias add parallelizes over the
    // batch; the naive reference backend keeps it serial.
    int n = out.dim(0);
    float *o = out.data();
    const float *b = bias_.value.data();
    int64_t grain_rows = std::max<int64_t>(1, (1 << 15) / outFeatures_);
    ops::gatedParallelFor(n, grain_rows, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            float *row = o + static_cast<size_t>(i) * outFeatures_;
            for (int j = 0; j < outFeatures_; ++j)
                row[j] += b[j];
        }
    });
}

void
Linear::inferFloatInto(const Tensor &x, QuantResult &wq_scratch,
                       Tensor &out)
{
    TWOINONE_ASSERT(x.ndim() == 2 && x.dim(1) == inFeatures_,
                    "Linear input shape mismatch");
    // At full precision the masters feed the GEMM directly (see
    // Conv2d::inferFloatInto); quantized precisions run the same
    // cache/requantize dispatch as forward().
    if (quant_.weightBits <= 0) {
        ops::matmulTransposeBInto(x, weight_.value, out);
    } else {
        const QuantResult &wq =
            quantizedWeight(quant_.weightBits, wq_scratch);
        ops::matmulTransposeBInto(x, wq.values, out);
    }
    if (hasBias_)
        addBiasRows(out);
}

QuantAct
Linear::forwardQuantized(QuantAct &x)
{
    if (quant_.weightBits <= 0 || !x.hasCodes())
        return Layer::forwardQuantized(x);

    QuantTensor wlocal;
    const QuantTensor &wq = quantizedCodes(quant_.weightBits, wlocal);
    Tensor out;
    inferQuantInto(x.q, wq, iscratch_, out);
    return QuantAct(std::move(out));
}

void
Linear::inferQuantInto(const QuantTensor &xq, const QuantTensor &wq,
                       IntGemmScratch &s, Tensor &out)
{
    TWOINONE_ASSERT(xq.shape.size() == 2 && xq.shape[1] == inFeatures_,
                    "Linear quantized input shape mismatch");
    int n = xq.shape[0];

    // acc[N, out] = Xq[N, in] * Wq[out, in]^T, exact int64. Fast path:
    // tile-packed weights through the wide-split int16 kernels — the
    // classifier head's activation codes arrive from GlobalAvgPool
    // wider than 16 bits, so they run as lo/hi int16 passes. The
    // reference rows stay the datapath under the naive backend and the
    // forced-scalar tier (and for operand widths outside the packed
    // kernels' range), bit-identical either way.
    s.acc.resize(static_cast<size_t>(n) * outFeatures_);
    bool pack_valid = s.packedFrom == wq.codes.data() &&
                      s.packedBits == wq.bits &&
                      s.packedVersion == masterWeightVersion();
    if (!pack_valid)
        s.packedKinds = 0;
    const gemm::PackedIntWeights *pack = nullptr;
    if (gemm::activeBackend() == gemm::Backend::Blocked &&
        gemm::activeIsaTier() != gemm::IsaTier::Scalar && wq.bits >= 1 &&
        wq.bits <= 16 && !xq.isSigned && xq.bits >= 1 && xq.bits <= 30) {
        const gemm::PackedIntWeights *inst = weightPacked();
        if (inst && !inst->empty() && inst->bits == wq.bits &&
            inst->m == outFeatures_ && inst->k == inFeatures_ &&
            weightCodes() == &wq) {
            pack = inst;
        } else {
            if (!(s.packedKinds & IntGemmScratch::kPackTiled)) {
                gemm::packWeights(wq.codes.data(), outFeatures_,
                                  inFeatures_, wq.bits, s.wpack);
                s.packedKinds |= IntGemmScratch::kPackTiled;
            }
            pack = &s.wpack;
        }
    }
    s.packedFrom = wq.codes.data();
    s.packedBits = wq.bits;
    s.packedVersion = masterWeightVersion();
    if (pack) {
        gemm::igemmPackedWideTransA(*pack, n, xq.codes.data(),
                                    inFeatures_, s.acc.data(),
                                    outFeatures_, xq.bits, s.wide16);
    } else {
        gemm::igemmTransB(n, outFeatures_, inFeatures_, xq.codes.data(),
                          inFeatures_, wq.codes.data(), inFeatures_,
                          s.acc.data(), outFeatures_);
    }

    float dq = wq.scale * xq.scale;
    const float *b = hasBias_ ? bias_.value.data() : nullptr;
    out.ensure({n, outFeatures_});
    float *o = out.data();
    int64_t grain_rows =
        std::max<int64_t>(1, (1 << 15) / std::max(1, outFeatures_));
    ops::gatedParallelFor(n, grain_rows, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo * outFeatures_; i < hi * outFeatures_; ++i)
            o[i] = static_cast<float>(s.acc[static_cast<size_t>(i)]) * dq +
                   (b ? b[i % outFeatures_] : 0.0f);
    });

    if (quantTrace_) {
        tracedW_ = wq;
        tracedA_ = xq;
        tracedAcc_ = s.acc;
    }
}

void
Linear::emitPlanSteps(serve::PlanBuilder &b)
{
    int in = b.top();
    int out = b.newValue();
    int sid = b.newScratch();
    if (b.mode() == serve::PlanMode::Quantized) {
        b.addStep("linear[int] " + describe(),
                  [this, in, out, sid](serve::ExecutionPlan &p) {
                      serve::Value &vi = p.value(in);
                      serve::Value &vo = p.value(out);
                      serve::LayerScratch &ls = p.scratch(sid);
                      vo.reset();
                      if (quant_.weightBits > 0 && vi.hasCodes) {
                          const QuantTensor &wq = quantizedCodes(
                              quant_.weightBits, ls.wcodes);
                          inferQuantInto(vi.q, wq, ls.ig, vo.dense);
                      } else {
                          inferFloatInto(vi.denseView(), ls.wq,
                                         vo.dense);
                      }
                      vo.denseReady = true;
                  });
    } else {
        b.addStep("linear " + describe(),
                  [this, in, out, sid](serve::ExecutionPlan &p) {
                      serve::Value &vi = p.value(in);
                      serve::Value &vo = p.value(out);
                      serve::LayerScratch &ls = p.scratch(sid);
                      vo.reset();
                      inferFloatInto(vi.denseView(), ls.wq, vo.dense);
                      vo.denseReady = true;
                  });
    }
    b.setTop(out);
}

Tensor
Linear::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInput_.empty(), "Linear backward before forward");
    TWOINONE_ASSERT(grad_out.ndim() == 2 && grad_out.dim(1) == outFeatures_,
                    "Linear grad_out shape mismatch");

    // dW = grad_out^T x input, masked by the STE.
    TWOINONE_ASSERT(steMask_ != nullptr, "Linear backward before forward");
    const Tensor &mask = *steMask_;
    Tensor dw = ops::matmulTransposeA(grad_out, cachedInput_);
    for (size_t i = 0; i < weight_.grad.size(); ++i)
        weight_.grad[i] += dw[i] * mask[i];

    if (hasBias_) {
        int n = grad_out.dim(0);
        for (int j = 0; j < outFeatures_; ++j) {
            double s = 0.0;
            for (int i = 0; i < n; ++i)
                s += grad_out.at2(i, j);
            bias_.grad[static_cast<size_t>(j)] += static_cast<float>(s);
        }
    }

    QuantResult wq_local;
    const QuantResult &wq = quantizedWeight(quant_.weightBits, wq_local);
    return ops::matmul(grad_out, wq.values);
}

void
Linear::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&weight_);
    if (hasBias_)
        out.push_back(&bias_);
}

void
Linear::collectWeightQuantized(std::vector<WeightQuantizedLayer *> &out)
{
    out.push_back(this);
}

void
Linear::setWeightCache(const QuantResult *cache)
{
    // See Conv2d::setWeightCache: fail fast on a stale backward
    // instead of dangling into freed cache storage.
    if (cache == nullptr && steMask_ != &ownedSteMask_)
        steMask_ = nullptr;
    WeightQuantizedLayer::setWeightCache(cache);
}

std::string
Linear::describe() const
{
    std::ostringstream oss;
    oss << "Linear(" << inFeatures_ << "->" << outFeatures_ << ")";
    return oss.str();
}

LayerSpec
Linear::spec() const
{
    return {"linear", {inFeatures_, outFeatures_, hasBias_ ? 1 : 0}};
}

void
Linear::collectState(const std::string &prefix, StateDict &out)
{
    out.push_back({prefix + ".weight", &weight_.value, nullptr, nullptr,
                   nullptr});
    if (hasBias_)
        out.push_back({prefix + ".bias", &bias_.value, nullptr, nullptr,
                       nullptr});
}

} // namespace twoinone
