/**
 * @file
 * SwitchableBatchNorm2d implementation.
 */

#include "nn/batchnorm.hh"

#include <cmath>
#include <sstream>

#include "serve/execution_plan.hh"

namespace twoinone {

SwitchableBatchNorm2d::SwitchableBatchNorm2d(int channels, int num_banks,
                                             float momentum, float eps)
    : channels_(channels), momentum_(momentum), eps_(eps)
{
    TWOINONE_ASSERT(channels > 0 && num_banks > 0, "bad SBN geometry");
    banks_.reserve(static_cast<size_t>(num_banks));
    for (int i = 0; i < num_banks; ++i)
        banks_.emplace_back(channels);
    bankTrained_.assign(static_cast<size_t>(num_banks), 0);
}

int
SwitchableBatchNorm2d::activeBankIndex() const
{
    int idx = quant_.bnIndex;
    TWOINONE_ASSERT(idx >= 0 && idx < numBanks(), "SBN bank ", idx,
                    " out of ", numBanks());
    return idx;
}

SwitchableBatchNorm2d::Bank &
SwitchableBatchNorm2d::activeBank()
{
    return banks_[static_cast<size_t>(activeBankIndex())];
}

Tensor
SwitchableBatchNorm2d::forward(const Tensor &x, bool train)
{
    TWOINONE_ASSERT(x.ndim() == 4 && x.dim(1) == channels_,
                    "SBN input shape mismatch");
    // Post-training-quantization semantics: a bank no training pass
    // has ever touched aliases the full-precision bank 0. Training a
    // bank claims it.
    int requested = activeBankIndex();
    int use = (train || bankTrained_[static_cast<size_t>(requested)])
                  ? requested
                  : 0;
    if (train)
        bankTrained_[static_cast<size_t>(use)] = 1;
    Bank &bank = banks_[static_cast<size_t>(use)];
    int n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
    size_t m = static_cast<size_t>(n) * h * w;
    TWOINONE_ASSERT(m > 0, "SBN over empty spatial extent");

    cachedInput_ = x;
    cachedTrain_ = train;
    cachedBank_ = use;
    cachedMean_.assign(static_cast<size_t>(c), 0.0f);
    cachedInvStd_.assign(static_cast<size_t>(c), 0.0f);

    Tensor out(x.shape());
    cachedXhat_ = Tensor(x.shape());

    for (int ci = 0; ci < c; ++ci) {
        float mean, var;
        if (train) {
            double s = 0.0;
            for (int ni = 0; ni < n; ++ni)
                for (int y = 0; y < h; ++y)
                    for (int xx = 0; xx < w; ++xx)
                        s += x.at4(ni, ci, y, xx);
            mean = static_cast<float>(s / static_cast<double>(m));
            double v = 0.0;
            for (int ni = 0; ni < n; ++ni) {
                for (int y = 0; y < h; ++y) {
                    for (int xx = 0; xx < w; ++xx) {
                        double d = x.at4(ni, ci, y, xx) - mean;
                        v += d * d;
                    }
                }
            }
            var = static_cast<float>(v / static_cast<double>(m));
            // Update the active bank's running statistics only.
            size_t cs = static_cast<size_t>(ci);
            bank.runningMean[cs] =
                (1.0f - momentum_) * bank.runningMean[cs] + momentum_ * mean;
            bank.runningVar[cs] =
                (1.0f - momentum_) * bank.runningVar[cs] + momentum_ * var;
        } else {
            mean = bank.runningMean[static_cast<size_t>(ci)];
            var = bank.runningVar[static_cast<size_t>(ci)];
        }

        float inv_std = 1.0f / std::sqrt(var + eps_);
        cachedMean_[static_cast<size_t>(ci)] = mean;
        cachedInvStd_[static_cast<size_t>(ci)] = inv_std;
        float g = bank.gamma.value[static_cast<size_t>(ci)];
        float b = bank.beta.value[static_cast<size_t>(ci)];
        for (int ni = 0; ni < n; ++ni) {
            for (int y = 0; y < h; ++y) {
                for (int xx = 0; xx < w; ++xx) {
                    float xhat = (x.at4(ni, ci, y, xx) - mean) * inv_std;
                    cachedXhat_.at4(ni, ci, y, xx) = xhat;
                    out.at4(ni, ci, y, xx) = g * xhat + b;
                }
            }
        }
    }
    return out;
}

QuantAct
SwitchableBatchNorm2d::forwardQuantized(QuantAct &xa)
{
    Tensor out;
    inferenceInto(xa.denseView(), out, /*fuse_relu=*/false);
    return QuantAct(std::move(out));
}

void
SwitchableBatchNorm2d::inferenceInto(const Tensor &x, Tensor &out,
                                     bool fuse_relu)
{
    TWOINONE_ASSERT(x.ndim() == 4 && x.dim(1) == channels_,
                    "SBN input shape mismatch");
    // Same bank-aliasing rule as the eval forward: untrained banks
    // fall back to the full-precision statistics.
    int requested = activeBankIndex();
    int use = bankTrained_[static_cast<size_t>(requested)] ? requested : 0;
    const Bank &bank = banks_[static_cast<size_t>(use)];

    int n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
    size_t plane = static_cast<size_t>(h) * w;
    out.ensure(x.shape());
    const float *in = x.data();
    float *o = out.data();
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            size_t cs = static_cast<size_t>(ci);
            // Exactly the eval forward's arithmetic (bit-identical
            // rounding), minus the xhat/input caches. The fused
            // rectify clamps the identical per-element value.
            float mean = bank.runningMean[cs];
            float inv_std = 1.0f /
                            std::sqrt(bank.runningVar[cs] + eps_);
            float g = bank.gamma.value[cs];
            float b = bank.beta.value[cs];
            const float *src =
                in + (static_cast<size_t>(ni) * c + cs) * plane;
            float *dst = o + (static_cast<size_t>(ni) * c + cs) * plane;
            if (fuse_relu) {
                for (size_t t = 0; t < plane; ++t) {
                    float xhat = (src[t] - mean) * inv_std;
                    float v = g * xhat + b;
                    dst[t] = v > 0.0f ? v : 0.0f;
                }
            } else {
                for (size_t t = 0; t < plane; ++t) {
                    float xhat = (src[t] - mean) * inv_std;
                    dst[t] = g * xhat + b;
                }
            }
        }
    }
}

void
SwitchableBatchNorm2d::emitPlanSteps(serve::PlanBuilder &b)
{
    int in = b.top();
    int out = b.newValue();
    b.addStep("sbn", [this, in, out](serve::ExecutionPlan &p) {
        serve::Value &vi = p.value(in);
        serve::Value &vo = p.value(out);
        vo.reset();
        inferenceInto(vi.denseView(), vo.dense, /*fuse_relu=*/false);
        vo.denseReady = true;
    });
    b.setTop(out);
}

void
SwitchableBatchNorm2d::emitFusedBnRelu(serve::PlanBuilder &b)
{
    int in = b.top();
    int out = b.newValue();
    b.addStep("sbn+relu", [this, in, out](serve::ExecutionPlan &p) {
        serve::Value &vi = p.value(in);
        serve::Value &vo = p.value(out);
        vo.reset();
        inferenceInto(vi.denseView(), vo.dense, /*fuse_relu=*/true);
        vo.denseReady = true;
    });
    b.setTop(out);
}

Tensor
SwitchableBatchNorm2d::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInput_.empty(), "SBN backward before forward");
    TWOINONE_ASSERT(grad_out.sameShape(cachedInput_),
                    "SBN grad shape mismatch");
    Bank &bank = banks_[static_cast<size_t>(cachedBank_)];
    int n = grad_out.dim(0), c = channels_, h = grad_out.dim(2),
        w = grad_out.dim(3);
    double m = static_cast<double>(n) * h * w;

    Tensor grad_in(grad_out.shape());
    for (int ci = 0; ci < c; ++ci) {
        size_t cs = static_cast<size_t>(ci);
        float g = bank.gamma.value[cs];
        float inv_std = cachedInvStd_[cs];

        double dgamma = 0.0, dbeta = 0.0;
        for (int ni = 0; ni < n; ++ni) {
            for (int y = 0; y < h; ++y) {
                for (int xx = 0; xx < w; ++xx) {
                    float go = grad_out.at4(ni, ci, y, xx);
                    dgamma += go * cachedXhat_.at4(ni, ci, y, xx);
                    dbeta += go;
                }
            }
        }
        bank.gamma.grad[cs] += static_cast<float>(dgamma);
        bank.beta.grad[cs] += static_cast<float>(dbeta);

        if (!cachedTrain_) {
            // Eval mode: statistics are constants.
            for (int ni = 0; ni < n; ++ni)
                for (int y = 0; y < h; ++y)
                    for (int xx = 0; xx < w; ++xx)
                        grad_in.at4(ni, ci, y, xx) =
                            grad_out.at4(ni, ci, y, xx) * g * inv_std;
            continue;
        }

        // Training mode: batch statistics depend on the input.
        for (int ni = 0; ni < n; ++ni) {
            for (int y = 0; y < h; ++y) {
                for (int xx = 0; xx < w; ++xx) {
                    float go = grad_out.at4(ni, ci, y, xx);
                    float xhat = cachedXhat_.at4(ni, ci, y, xx);
                    double term = m * go - dbeta - xhat * dgamma;
                    grad_in.at4(ni, ci, y, xx) = static_cast<float>(
                        (g * inv_std / m) * term);
                }
            }
        }
    }
    return grad_in;
}

void
SwitchableBatchNorm2d::collectParameters(std::vector<Parameter *> &out)
{
    for (Bank &b : banks_) {
        out.push_back(&b.gamma);
        out.push_back(&b.beta);
    }
}

const Tensor &
SwitchableBatchNorm2d::runningMean(int bank) const
{
    TWOINONE_ASSERT(bank >= 0 && bank < numBanks(), "bad SBN bank");
    return banks_[static_cast<size_t>(bank)].runningMean;
}

const Tensor &
SwitchableBatchNorm2d::runningVar(int bank) const
{
    TWOINONE_ASSERT(bank >= 0 && bank < numBanks(), "bad SBN bank");
    return banks_[static_cast<size_t>(bank)].runningVar;
}

std::string
SwitchableBatchNorm2d::describe() const
{
    std::ostringstream oss;
    oss << "SBN(" << channels_ << ", banks=" << numBanks() << ")";
    return oss.str();
}

LayerSpec
SwitchableBatchNorm2d::spec() const
{
    // momentum/eps stay at their construction defaults throughout the
    // model zoo and only shape training, not a restored inference
    // state, so the spec carries the geometry only.
    return {"sbn", {channels_, numBanks()}};
}

void
SwitchableBatchNorm2d::collectState(const std::string &prefix,
                                    StateDict &out)
{
    for (int i = 0; i < numBanks(); ++i) {
        Bank &b = banks_[static_cast<size_t>(i)];
        std::string bank = prefix + ".bank" + std::to_string(i);
        out.push_back({bank + ".gamma", &b.gamma.value, nullptr, nullptr,
                       nullptr});
        out.push_back({bank + ".beta", &b.beta.value, nullptr, nullptr,
                       nullptr});
        out.push_back({bank + ".running_mean", &b.runningMean, nullptr,
                       nullptr, nullptr});
        out.push_back({bank + ".running_var", &b.runningVar, nullptr,
                       nullptr, nullptr});
    }
    out.push_back({prefix + ".trained", nullptr, nullptr, &bankTrained_,
                   nullptr});
}

std::string
SwitchableBatchNorm2d::checkState(int required_banks) const
{
    // forward/inferenceInto index bankTrained_ by the active bank —
    // a flag vector of any other length reads out of bounds.
    if (bankTrained_.size() != banks_.size())
        return "SBN trained flags inconsistent (" +
               std::to_string(bankTrained_.size()) + " flags vs " +
               std::to_string(banks_.size()) + " banks)";
    // Switching to any candidate selects bank 1 + indexOf(bits):
    // fewer banks than the candidate set demands would abort inside
    // activeBankIndex at inference time — reject at load instead.
    if (numBanks() < required_banks)
        return "SBN holds " + std::to_string(numBanks()) + " banks, " +
               "the candidate set requires " +
               std::to_string(required_banks);
    return std::string();
}

} // namespace twoinone
