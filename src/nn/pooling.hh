/**
 * @file
 * Pooling and shape-adapter layers.
 */

#ifndef TWOINONE_NN_POOLING_HH
#define TWOINONE_NN_POOLING_HH

#include "nn/layer.hh"

namespace twoinone {

/**
 * Global average pooling: [N,C,H,W] -> [N,C].
 */
class GlobalAvgPool : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

    /**
     * Integer-exact pooled codes: summing the grid codes and folding
     * 1/(H*W) into the scale keeps the value on an integer grid
     * (wider codes, scale / HW), so the classifier head can stay on
     * the integer datapath. Falls back to the float path when the
     * input carries no codes.
     */
    QuantAct forwardQuantized(QuantAct &x) override;

    void emitPlanSteps(serve::PlanBuilder &b) override;

    /** @name Allocation-free plan kernels (shared with the legacy
     * paths) */
    /** @{ */
    void inferFloatInto(const Tensor &x, Tensor &out) const;
    void inferQuantInto(const QuantTensor &xq, QuantTensor &out) const;
    /** @} */

    std::string describe() const override { return "GlobalAvgPool"; }
    LayerSpec spec() const override { return {"gap", {}}; }

  private:
    std::vector<int> cachedInShape_;
};

/**
 * Non-overlapping 2x2 average pooling: [N,C,H,W] -> [N,C,H/2,W/2].
 */
class AvgPool2x2 : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    void emitPlanSteps(serve::PlanBuilder &b) override;
    /** Pool into a caller-owned buffer (the allocation-free plan
     * form; forward wraps it). */
    void inferFloatInto(const Tensor &x, Tensor &out) const;
    std::string describe() const override { return "AvgPool2x2"; }
    LayerSpec spec() const override { return {"avgpool2x2", {}}; }

  private:
    std::vector<int> cachedInShape_;
};

/**
 * Flatten: [N, ...] -> [N, prod(...)].
 */
class Flatten : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    void emitPlanSteps(serve::PlanBuilder &b) override;
    std::string describe() const override { return "Flatten"; }
    LayerSpec spec() const override { return {"flatten", {}}; }

  private:
    std::vector<int> cachedInShape_;
};

} // namespace twoinone

#endif // TWOINONE_NN_POOLING_HH
