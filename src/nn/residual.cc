/**
 * @file
 * PreActBlock implementation with hand-written two-branch backward.
 */

#include "nn/residual.hh"

#include <sstream>

#include "serve/execution_plan.hh"
#include "tensor/ops.hh"

namespace twoinone {

PreActBlock::PreActBlock(int in_channels, int out_channels, int stride,
                         int bn_banks, Rng &rng)
    : bn1_(in_channels, bn_banks),
      conv1_(in_channels, out_channels, 3, stride, 1, false, rng),
      bn2_(out_channels, bn_banks),
      conv2_(out_channels, out_channels, 3, 1, 1, false, rng),
      inChannels_(in_channels), outChannels_(out_channels), stride_(stride)
{
    if (stride != 1 || in_channels != out_channels) {
        convSc_ = std::make_unique<Conv2d>(in_channels, out_channels, 1,
                                           stride, 0, false, rng);
    }
}

Tensor
PreActBlock::forward(const Tensor &x, bool train)
{
    Tensor h = q1_.forward(relu1_.forward(bn1_.forward(x, train), train),
                           train);
    Tensor sc = convSc_ ? convSc_->forward(h, train) : x;
    Tensor y = conv1_.forward(h, train);
    y = q2_.forward(relu2_.forward(bn2_.forward(y, train), train), train);
    y = conv2_.forward(y, train);
    return ops::add(y, sc);
}

QuantAct
PreActBlock::forwardQuantized(QuantAct &x)
{
    // Mirrors forward(): BN / ReLU / the residual add stay in float;
    // q1/q2 emit integer codes consumed by the convs' int datapath.
    QuantAct h = bn1_.forwardQuantized(x);
    h = relu1_.forwardQuantized(h);
    h = q1_.forwardQuantized(h);

    QuantAct sc;
    if (convSc_) {
        sc = convSc_->forwardQuantized(h);
    } else {
        sc.dense = x.denseView();
    }
    QuantAct y = conv1_.forwardQuantized(h);
    y = bn2_.forwardQuantized(y);
    y = relu2_.forwardQuantized(y);
    y = q2_.forwardQuantized(y);
    y = conv2_.forwardQuantized(y);
    return QuantAct(ops::add(y.denseView(), sc.denseView()));
}

void
PreActBlock::emitPlanSteps(serve::PlanBuilder &b)
{
    // Mirrors forwardQuantized()'s composition; SBN+ReLU pairs run
    // fused (identical per-element values).
    int x = b.top();

    // h = q1(relu1(bn1(x)))
    bn1_.emitFusedBnRelu(b);
    q1_.emitPlanSteps(b);
    int h = b.top();

    // Shortcut branch: projection conv from h, or the identity x.
    int sc;
    if (convSc_) {
        convSc_->emitPlanSteps(b);
        sc = b.top();
        b.setTop(h);
    } else {
        sc = x;
    }

    // Main branch: conv2(q2(relu2(bn2(conv1(h))))).
    conv1_.emitPlanSteps(b);
    bn2_.emitFusedBnRelu(b);
    q2_.emitPlanSteps(b);
    conv2_.emitPlanSteps(b);
    int y = b.top();

    int out = b.newValue();
    b.addStep("residual join", [y, sc, out](serve::ExecutionPlan &p) {
        serve::Value &vy = p.value(y);
        serve::Value &vsc = p.value(sc);
        serve::Value &vo = p.value(out);
        vo.reset();
        ops::addInto(vy.denseView(), vsc.denseView(), vo.dense);
        vo.denseReady = true;
    });
    b.setTop(out);
}

Tensor
PreActBlock::backward(const Tensor &grad_out)
{
    // Main branch: conv2 <- q2 <- relu2 <- bn2 <- conv1.
    Tensor g = conv2_.backward(grad_out);
    g = bn2_.backward(relu2_.backward(q2_.backward(g)));
    Tensor gh = conv1_.backward(g);

    // Shortcut branch joins at h (projection) or at x (identity).
    if (convSc_) {
        Tensor gh_sc = convSc_->backward(grad_out);
        ops::addInPlace(gh, gh_sc);
        return bn1_.backward(relu1_.backward(q1_.backward(gh)));
    }
    Tensor gx = bn1_.backward(relu1_.backward(q1_.backward(gh)));
    ops::addInPlace(gx, grad_out);
    return gx;
}

void
PreActBlock::collectParameters(std::vector<Parameter *> &out)
{
    bn1_.collectParameters(out);
    conv1_.collectParameters(out);
    bn2_.collectParameters(out);
    conv2_.collectParameters(out);
    if (convSc_)
        convSc_->collectParameters(out);
}

void
PreActBlock::collectWeightQuantized(std::vector<WeightQuantizedLayer *> &out)
{
    conv1_.collectWeightQuantized(out);
    conv2_.collectWeightQuantized(out);
    if (convSc_)
        convSc_->collectWeightQuantized(out);
}

void
PreActBlock::collectActQuant(std::vector<ActQuant *> &out)
{
    q1_.collectActQuant(out);
    q2_.collectActQuant(out);
}

void
PreActBlock::setQuantState(const QuantState &qs)
{
    Layer::setQuantState(qs);
    bn1_.setQuantState(qs);
    relu1_.setQuantState(qs);
    q1_.setQuantState(qs);
    conv1_.setQuantState(qs);
    bn2_.setQuantState(qs);
    relu2_.setQuantState(qs);
    q2_.setQuantState(qs);
    conv2_.setQuantState(qs);
    if (convSc_)
        convSc_->setQuantState(qs);
}

std::string
PreActBlock::describe() const
{
    std::ostringstream oss;
    oss << "PreActBlock(" << inChannels_ << "->" << outChannels_
        << ", s=" << stride_ << (convSc_ ? ", proj" : "") << ")";
    return oss.str();
}

LayerSpec
PreActBlock::spec() const
{
    // The projection shortcut is derived (stride/channel change), so
    // the constructor arguments fully determine the block.
    return {"preact",
            {inChannels_, outChannels_, stride_, bn1_.numBanks()}};
}

void
PreActBlock::collectState(const std::string &prefix, StateDict &out)
{
    bn1_.collectState(prefix + ".bn1", out);
    q1_.collectState(prefix + ".q1", out);
    conv1_.collectState(prefix + ".conv1", out);
    bn2_.collectState(prefix + ".bn2", out);
    q2_.collectState(prefix + ".q2", out);
    conv2_.collectState(prefix + ".conv2", out);
    if (convSc_)
        convSc_->collectState(prefix + ".conv_sc", out);
}

std::string
PreActBlock::checkState(int required_banks) const
{
    for (const Layer *l :
         {static_cast<const Layer *>(&bn1_),
          static_cast<const Layer *>(&q1_),
          static_cast<const Layer *>(&bn2_),
          static_cast<const Layer *>(&q2_)}) {
        std::string err = l->checkState(required_banks);
        if (!err.empty())
            return err;
    }
    return std::string();
}

} // namespace twoinone
