/**
 * @file
 * Model zoo builders.
 */

#include "nn/model_zoo.hh"

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv2d.hh"
#include "nn/linear.hh"
#include "nn/pooling.hh"
#include "nn/residual.hh"

namespace twoinone {

namespace {

/**
 * Shared residual-network skeleton:
 * stem conv -> stages of PreActBlocks (stride 2 between stages) ->
 * final SBN+ReLU -> global average pool -> linear classifier.
 */
Network
buildResidualNet(const ModelConfig &cfg, int base_width, int stages,
                 int blocks_per_stage, Rng &rng)
{
    Network net(cfg.precisions);
    int banks = net.bnBanks();

    net.add(std::make_unique<Conv2d>(cfg.inChannels, base_width, 3, 1, 1,
                                     false, rng));
    int in_ch = base_width;
    for (int s = 0; s < stages; ++s) {
        int out_ch = base_width << s;
        for (int b = 0; b < blocks_per_stage; ++b) {
            int stride = (s > 0 && b == 0) ? 2 : 1;
            net.add(std::make_unique<PreActBlock>(in_ch, out_ch, stride,
                                                  banks, rng));
            in_ch = out_ch;
        }
    }
    net.add(std::make_unique<SwitchableBatchNorm2d>(in_ch, banks));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<ActQuant>());
    net.add(std::make_unique<GlobalAvgPool>());
    net.add(std::make_unique<Linear>(in_ch, cfg.numClasses, true, rng));
    return net;
}

} // namespace

Network
preActResNetMini(const ModelConfig &cfg, Rng &rng)
{
    return buildResidualNet(cfg, cfg.baseWidth, cfg.numStages,
                            cfg.blocksPerStage, rng);
}

Network
wideResNetMini(const ModelConfig &cfg, Rng &rng)
{
    return buildResidualNet(cfg, cfg.baseWidth * 2, cfg.numStages,
                            cfg.blocksPerStage, rng);
}

Network
resNetMini(const ModelConfig &cfg, Rng &rng)
{
    // Deeper stand-in: one extra stage, 1.5x stem width.
    ModelConfig deep = cfg;
    return buildResidualNet(deep, (cfg.baseWidth * 3) / 2,
                            cfg.numStages + 1, cfg.blocksPerStage, rng);
}

Network
convNetTiny(const ModelConfig &cfg, Rng &rng)
{
    Network net(cfg.precisions);
    int banks = net.bnBanks();
    int w = cfg.baseWidth;

    net.add(std::make_unique<Conv2d>(cfg.inChannels, w, 3, 1, 1, false,
                                     rng));
    net.add(std::make_unique<SwitchableBatchNorm2d>(w, banks));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<ActQuant>());
    net.add(std::make_unique<Conv2d>(w, 2 * w, 3, 2, 1, false, rng));
    net.add(std::make_unique<SwitchableBatchNorm2d>(2 * w, banks));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<ActQuant>());
    net.add(std::make_unique<GlobalAvgPool>());
    net.add(std::make_unique<Linear>(2 * w, cfg.numClasses, true, rng));
    return net;
}

} // namespace twoinone
