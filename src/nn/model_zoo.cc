/**
 * @file
 * Model zoo builders.
 */

#include "nn/model_zoo.hh"

#include "io/serialize.hh"
#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv2d.hh"
#include "nn/linear.hh"
#include "nn/pooling.hh"
#include "nn/residual.hh"

namespace twoinone {

namespace {

/**
 * Shared residual-network skeleton:
 * stem conv -> stages of PreActBlocks (stride 2 between stages) ->
 * final SBN+ReLU -> global average pool -> linear classifier.
 */
Network
buildResidualNet(const ModelConfig &cfg, int base_width, int stages,
                 int blocks_per_stage, Rng &rng)
{
    Network net(cfg.precisions);
    int banks = net.bnBanks();

    net.add(std::make_unique<Conv2d>(cfg.inChannels, base_width, 3, 1, 1,
                                     false, rng));
    int in_ch = base_width;
    for (int s = 0; s < stages; ++s) {
        int out_ch = base_width << s;
        for (int b = 0; b < blocks_per_stage; ++b) {
            int stride = (s > 0 && b == 0) ? 2 : 1;
            net.add(std::make_unique<PreActBlock>(in_ch, out_ch, stride,
                                                  banks, rng));
            in_ch = out_ch;
        }
    }
    net.add(std::make_unique<SwitchableBatchNorm2d>(in_ch, banks));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<ActQuant>());
    net.add(std::make_unique<GlobalAvgPool>());
    net.add(std::make_unique<Linear>(in_ch, cfg.numClasses, true, rng));
    return net;
}

} // namespace

Network
preActResNetMini(const ModelConfig &cfg, Rng &rng)
{
    return buildResidualNet(cfg, cfg.baseWidth, cfg.numStages,
                            cfg.blocksPerStage, rng);
}

Network
wideResNetMini(const ModelConfig &cfg, Rng &rng)
{
    return buildResidualNet(cfg, cfg.baseWidth * 2, cfg.numStages,
                            cfg.blocksPerStage, rng);
}

Network
resNetMini(const ModelConfig &cfg, Rng &rng)
{
    // Deeper stand-in: one extra stage, 1.5x stem width.
    ModelConfig deep = cfg;
    return buildResidualNet(deep, (cfg.baseWidth * 3) / 2,
                            cfg.numStages + 1, cfg.blocksPerStage, rng);
}

namespace {

/** The spec argument at @p i, or a CheckpointError when absent. */
int
specArg(const LayerSpec &spec, size_t i)
{
    if (i >= spec.args.size())
        throw io::CheckpointError("layer spec \"" + spec.kind +
                                  "\" is missing argument " +
                                  std::to_string(i));
    return spec.args[i];
}

/** specArg constrained to a strictly positive geometry value — layer
 * constructors assert (and abort) on non-positive geometry, but a
 * bad value in an artifact is the caller's recoverable problem. */
int
specArgPos(const LayerSpec &spec, size_t i)
{
    int v = specArg(spec, i);
    if (v <= 0)
        throw io::CheckpointError(
            "layer spec \"" + spec.kind + "\" argument " +
            std::to_string(i) + " must be positive, got " +
            std::to_string(v));
    return v;
}

} // namespace

LayerPtr
buildLayerFromSpec(const LayerSpec &spec, Rng &rng)
{
    const std::string &k = spec.kind;
    if (k == "conv2d") {
        int padding = specArg(spec, 4);
        if (padding < 0)
            throw io::CheckpointError(
                "conv2d spec has negative padding");
        return std::make_unique<Conv2d>(
            specArgPos(spec, 0), specArgPos(spec, 1),
            specArgPos(spec, 2), specArgPos(spec, 3), padding,
            specArg(spec, 5) != 0, rng);
    }
    if (k == "linear") {
        return std::make_unique<Linear>(specArgPos(spec, 0),
                                        specArgPos(spec, 1),
                                        specArg(spec, 2) != 0, rng);
    }
    if (k == "sbn") {
        return std::make_unique<SwitchableBatchNorm2d>(
            specArgPos(spec, 0), specArgPos(spec, 1));
    }
    if (k == "preact") {
        return std::make_unique<PreActBlock>(
            specArgPos(spec, 0), specArgPos(spec, 1),
            specArgPos(spec, 2), specArgPos(spec, 3), rng);
    }
    if (k == "relu")
        return std::make_unique<ReLU>();
    if (k == "actquant")
        return std::make_unique<ActQuant>();
    if (k == "gap")
        return std::make_unique<GlobalAvgPool>();
    if (k == "avgpool2x2")
        return std::make_unique<AvgPool2x2>();
    if (k == "flatten")
        return std::make_unique<Flatten>();
    throw io::CheckpointError("unknown layer kind \"" + k +
                              "\" in network spec (artifact from an "
                              "incompatible library version?)");
}

PrecisionSet
precisionSetFromSpec(const std::vector<int> &bits)
{
    if (bits.empty())
        return PrecisionSet();
    for (size_t i = 0; i < bits.size(); ++i) {
        if (bits[i] < 1 || bits[i] > 16)
            throw io::CheckpointError(
                "artifact precision " + std::to_string(bits[i]) +
                " outside [1, 16]");
        if (i > 0 && bits[i] <= bits[i - 1])
            throw io::CheckpointError(
                "artifact precision set is not strictly increasing");
    }
    return PrecisionSet(bits);
}

Network
buildFromSpec(const NetworkSpec &spec)
{
    // The weight init stream is irrelevant: spec-built networks exist
    // to receive persisted state, which overwrites every tensor the
    // initializer touched.
    Rng rng(1);
    Network net(precisionSetFromSpec(spec.precisions));
    for (const LayerSpec &ls : spec.layers)
        net.add(buildLayerFromSpec(ls, rng));
    return net;
}

Network
convNetTiny(const ModelConfig &cfg, Rng &rng)
{
    Network net(cfg.precisions);
    int banks = net.bnBanks();
    int w = cfg.baseWidth;

    net.add(std::make_unique<Conv2d>(cfg.inChannels, w, 3, 1, 1, false,
                                     rng));
    net.add(std::make_unique<SwitchableBatchNorm2d>(w, banks));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<ActQuant>());
    net.add(std::make_unique<Conv2d>(w, 2 * w, 3, 2, 1, false, rng));
    net.add(std::make_unique<SwitchableBatchNorm2d>(2 * w, banks));
    net.add(std::make_unique<ReLU>());
    net.add(std::make_unique<ActQuant>());
    net.add(std::make_unique<GlobalAvgPool>());
    net.add(std::make_unique<Linear>(2 * w, cfg.numClasses, true, rng));
    return net;
}

} // namespace twoinone
