/**
 * @file
 * Loss implementations.
 */

#include "nn/loss.hh"

#include <cmath>

#include "common/logging.hh"

namespace twoinone {

Tensor
softmax(const Tensor &logits)
{
    TWOINONE_ASSERT(logits.ndim() == 2, "softmax expects rank-2 logits");
    int n = logits.dim(0), k = logits.dim(1);
    Tensor out(logits.shape());
    for (int i = 0; i < n; ++i) {
        float mx = logits.at2(i, 0);
        for (int j = 1; j < k; ++j)
            mx = std::max(mx, logits.at2(i, j));
        double denom = 0.0;
        for (int j = 0; j < k; ++j)
            denom += std::exp(static_cast<double>(logits.at2(i, j) - mx));
        for (int j = 0; j < k; ++j) {
            out.at2(i, j) = static_cast<float>(
                std::exp(static_cast<double>(logits.at2(i, j) - mx)) /
                denom);
        }
    }
    return out;
}

float
SoftmaxCrossEntropy::forward(const Tensor &logits,
                             const std::vector<int> &labels)
{
    TWOINONE_ASSERT(logits.ndim() == 2, "SCE expects rank-2 logits");
    TWOINONE_ASSERT(static_cast<int>(labels.size()) == logits.dim(0),
                    "SCE labels/batch mismatch");
    probs_ = softmax(logits);
    labels_ = labels;
    int n = logits.dim(0);
    double loss = 0.0;
    for (int i = 0; i < n; ++i) {
        int y = labels[static_cast<size_t>(i)];
        TWOINONE_ASSERT(y >= 0 && y < logits.dim(1), "label out of range");
        loss -= std::log(
            std::max(1e-12, static_cast<double>(probs_.at2(i, y))));
    }
    return static_cast<float>(loss / n);
}

Tensor
SoftmaxCrossEntropy::backward() const
{
    TWOINONE_ASSERT(!probs_.empty(), "SCE backward before forward");
    int n = probs_.dim(0), k = probs_.dim(1);
    Tensor grad = probs_;
    float inv_n = 1.0f / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
        grad.at2(i, labels_[static_cast<size_t>(i)]) -= 1.0f;
        for (int j = 0; j < k; ++j)
            grad.at2(i, j) *= inv_n;
    }
    return grad;
}

float
CwMarginLoss::forward(const Tensor &logits, const std::vector<int> &labels)
{
    TWOINONE_ASSERT(logits.ndim() == 2, "CW expects rank-2 logits");
    TWOINONE_ASSERT(static_cast<int>(labels.size()) == logits.dim(0),
                    "CW labels/batch mismatch");
    logits_ = logits;
    labels_ = labels;
    int n = logits.dim(0), k = logits.dim(1);
    runnerUp_.assign(static_cast<size_t>(n), 0);
    active_.assign(static_cast<size_t>(n), false);

    double loss = 0.0;
    for (int i = 0; i < n; ++i) {
        int y = labels[static_cast<size_t>(i)];
        float best_other = -1e30f;
        int best_j = -1;
        for (int j = 0; j < k; ++j) {
            if (j == y)
                continue;
            if (logits.at2(i, j) > best_other) {
                best_other = logits.at2(i, j);
                best_j = j;
            }
        }
        runnerUp_[static_cast<size_t>(i)] = best_j;
        float margin = logits.at2(i, y) - best_other;
        if (margin > -kappa_) {
            active_[static_cast<size_t>(i)] = true;
            loss += -margin; // maximizing -> shrink the margin
        } else {
            loss += kappa_;
        }
    }
    return static_cast<float>(loss / n);
}

Tensor
CwMarginLoss::backward() const
{
    TWOINONE_ASSERT(!logits_.empty(), "CW backward before forward");
    int n = logits_.dim(0);
    Tensor grad(logits_.shape());
    float inv_n = 1.0f / static_cast<float>(n);
    for (int i = 0; i < n; ++i) {
        if (!active_[static_cast<size_t>(i)])
            continue;
        int y = labels_[static_cast<size_t>(i)];
        int r = runnerUp_[static_cast<size_t>(i)];
        grad.at2(i, y) -= inv_n;
        grad.at2(i, r) += inv_n;
    }
    return grad;
}

} // namespace twoinone
