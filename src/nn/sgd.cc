/**
 * @file
 * SGD implementation.
 */

#include "nn/sgd.hh"

#include <stdexcept>
#include <string>

namespace twoinone {

Sgd::Sgd(float lr, float momentum, float weight_decay)
    : lr_(lr), momentum_(momentum), weightDecay_(weight_decay)
{
}

void
Sgd::step(const std::vector<Parameter *> &params)
{
    for (Parameter *p : params) {
        auto it = velocity_.find(p);
        if (it == velocity_.end()) {
            it = velocity_.emplace(p, Tensor::zeros(p->value.shape()))
                     .first;
        }
        Tensor &v = it->second;
        for (size_t i = 0; i < p->value.size(); ++i) {
            float g = p->grad[i] + weightDecay_ * p->value[i];
            v[i] = momentum_ * v[i] + g;
            p->value[i] -= lr_ * v[i];
        }
        // Committed update: advance the version so weight caches
        // (RpsEngine) can tell this parameter's masters moved.
        p->bumpVersion();
    }
}

std::vector<Tensor>
Sgd::exportVelocity(const std::vector<Parameter *> &params) const
{
    std::vector<Tensor> out;
    out.reserve(params.size());
    for (Parameter *p : params) {
        auto it = velocity_.find(p);
        out.push_back(it != velocity_.end()
                          ? it->second
                          : Tensor::zeros(p->value.shape()));
    }
    return out;
}

void
Sgd::importVelocity(const std::vector<Parameter *> &params,
                    std::vector<Tensor> velocity)
{
    if (velocity.size() != params.size())
        throw std::invalid_argument(
            "velocity count " + std::to_string(velocity.size()) +
            " does not match " + std::to_string(params.size()) +
            " parameters");
    for (size_t i = 0; i < params.size(); ++i) {
        if (velocity[i].shape() != params[i]->value.shape())
            throw std::invalid_argument(
                "velocity shape mismatch at parameter " +
                std::to_string(i));
    }
    velocity_.clear();
    for (size_t i = 0; i < params.size(); ++i)
        velocity_.emplace(params[i], std::move(velocity[i]));
}

} // namespace twoinone
