/**
 * @file
 * SGD implementation.
 */

#include "nn/sgd.hh"

namespace twoinone {

Sgd::Sgd(float lr, float momentum, float weight_decay)
    : lr_(lr), momentum_(momentum), weightDecay_(weight_decay)
{
}

void
Sgd::step(const std::vector<Parameter *> &params)
{
    for (Parameter *p : params) {
        auto it = velocity_.find(p);
        if (it == velocity_.end()) {
            it = velocity_.emplace(p, Tensor::zeros(p->value.shape()))
                     .first;
        }
        Tensor &v = it->second;
        for (size_t i = 0; i < p->value.size(); ++i) {
            float g = p->grad[i] + weightDecay_ * p->value[i];
            v[i] = momentum_ * v[i] + g;
            p->value[i] -= lr_ * v[i];
        }
        // Committed update: advance the version so weight caches
        // (RpsEngine) can tell this parameter's masters moved.
        p->bumpVersion();
    }
}

} // namespace twoinone
