/**
 * @file
 * Network: an ordered stack of layers plus the precision-switch
 * machinery that RPS relies on.
 *
 * A Network is bound to a PrecisionSet. setPrecision(q) fake-quantizes
 * all weights/activations at q bits and selects the SBN bank for q;
 * setPrecision(0) restores full precision (bank 0). Networks therefore
 * hold set.size()+1 SBN banks: bank 0 for full precision, banks 1..n
 * for each candidate precision.
 */

#ifndef TWOINONE_NN_NETWORK_HH
#define TWOINONE_NN_NETWORK_HH

#include <memory>
#include <vector>

#include "nn/activation.hh"
#include "nn/layer.hh"
#include "quant/precision.hh"
#include "serve/execution_plan.hh"

namespace twoinone {

/**
 * Machine-readable construction spec of a whole network: the bound
 * candidate precisions plus each layer's LayerSpec, in network order.
 * The serialized architecture section of a model checkpoint —
 * model_zoo's buildFromSpec() reconstructs an identically shaped
 * Network from it without C++ code changes.
 */
struct NetworkSpec
{
    std::vector<int> precisions;
    std::vector<LayerSpec> layers;
};

/**
 * Sequential network with precision switching.
 */
class Network
{
  public:
    Network() = default;

    /** Bind the candidate precision set (defines SBN bank mapping). */
    explicit Network(PrecisionSet set) : precisionSet_(std::move(set)) {}

    Network(Network &&) = default;
    Network &operator=(Network &&) = default;

    /** Append a layer (takes ownership). */
    void add(LayerPtr layer);

    /** Number of layers. */
    size_t numLayers() const { return layers_.size(); }

    /** Access layer i. */
    Layer &layer(size_t i);

    /** Full forward pass. */
    Tensor forward(const Tensor &x, bool train);

    /**
     * Inference forward on the integer-code datapath: the network
     * input is quantized first (at max(actBits, 16), so the stem conv
     * consumes integer codes without measurable input noise),
     * ActQuant layers emit QuantTensor codes (static scales when
     * calibrated), Conv2d / Linear consume them through the integer
     * GEMM kernels, and float-domain layers compose through the dense
     * view. Matches forward() within the rounding tolerance
     * documented in the README's quantized-execution section.
     * Routes through the compiled quantized plan when plan execution
     * is enabled (bit-identical either way).
     */
    Tensor forwardQuantized(const Tensor &x);

    /** Full backward pass; returns gradient wrt the network input. */
    Tensor backward(const Tensor &grad_out);

    /** All learnable parameters. */
    std::vector<Parameter *> parameters();

    /** All weight-quantizing layers (Conv2d/Linear, recursively), in
     * network order — the cache targets of RpsEngine. */
    std::vector<WeightQuantizedLayer *> weightQuantizedLayers();

    /** All activation quantizers (recursively), in network order —
     * the calibration targets. */
    std::vector<ActQuant *> actQuantLayers();

    /** The network's construction spec (precisions + layer specs). */
    NetworkSpec spec() const;

    /** Collect every layer's serializable state, named
     * "layers.<i>.<...>" in network order — the checkpoint writer's
     * and loader's shared view of the model (see StateEntry). */
    void collectState(StateDict &out);

    /** Every layer's post-restore invariant check (Layer::checkState):
     * empty when consistent, else the first violation found, prefixed
     * with the offending layer's index. */
    std::string checkState() const;

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** Number of learnable scalars. */
    size_t parameterCount();

    /** The bound candidate set. */
    const PrecisionSet &precisionSet() const { return precisionSet_; }

    /** Number of SBN banks networks built against this set need. */
    int bnBanks() const;

    /**
     * Switch the active precision.
     *
     * @param bits Candidate precision (must be in the bound set) or 0
     *             for full precision.
     */
    void setPrecision(int bits);

    /** Currently active precision (0 = full). */
    int activePrecision() const { return activeBits_; }

    /** Predicted class per row for a batch. Routes through the
     * compiled float plan when plan execution is enabled. */
    std::vector<int> predict(const Tensor &x);

    /** Predicted class per row, via the integer datapath. */
    std::vector<int> predictQuantized(const Tensor &x);

    /** The input quantizer feeding the stem conv on the integer
     * datapath (not part of the layer stack; applied only by
     * forwardQuantized / the quantized plan). */
    ActQuant &inputQuant() { return *inputQuant_; }

    /**
     * Compile this network into an execution plan: one flat,
     * allocation-free step list over a preallocated arena, executing
     * at whatever precision is active when run (see
     * serve/execution_plan.hh). @p precisions are the candidates the
     * warm-up dry passes size buffers for (must be within the bound
     * set); @p max_input_shape is the largest [N, C, H, W] batch the
     * plan will serve. @p warm_all = false defers each candidate's
     * warm-up to its first real run (lazy compilation — see
     * ExecutionPlan::compile).
     */
    std::unique_ptr<serve::ExecutionPlan>
    compile(const PrecisionSet &precisions, serve::PlanMode mode,
            const std::vector<int> &max_input_shape,
            bool warm_all = true);

    /**
     * Route the inference entry points (predict, forwardQuantized,
     * predictQuantized) through internally compiled plans — one per
     * mode, compiled lazily on first use for inputs of
     * @p max_input_shape's trailing dims and batch <= its dim 0
     * (anything else falls back to the legacy loops, bit-identical).
     * forward() itself keeps the legacy layer loop: training and the
     * attacks need the backward caches a plan does not populate.
     */
    void enablePlanExecution(const std::vector<int> &max_input_shape);

    /** Drop the compiled plans and return every entry point to the
     * legacy loops. */
    void disablePlanExecution();

    /** Whether plan routing is enabled. */
    bool planExecutionEnabled() const { return planExec_; }

    /** The max input shape plan routing is configured for (empty
     * when disabled). */
    const std::vector<int> &planMaxShape() const { return planMaxShape_; }

  private:
    PrecisionSet precisionSet_;
    std::vector<LayerPtr> layers_;
    int activeBits_ = 0;

    /** Heap-allocated so compiled plan steps can hold a stable
     * pointer across Network moves; pinned to the unit image range
     * (dataset images and the attacks' perturbed inputs live in
     * [0, 1]), so input quantization needs no per-batch reduction and
     * is independent of batch composition. */
    std::unique_ptr<ActQuant> inputQuant_ = makeInputQuant();

    static std::unique_ptr<ActQuant>
    makeInputQuant()
    {
        auto q = std::make_unique<ActQuant>();
        q->setFixedRange(1.0f);
        return q;
    }

    bool planExec_ = false;
    std::vector<int> planMaxShape_;
    std::unique_ptr<serve::ExecutionPlan> planFloat_;
    std::unique_ptr<serve::ExecutionPlan> planQuant_;

    /** The internal plan serving @p x in @p mode, compiled on first
     * use; nullptr when plan execution is off or @p x does not fit
     * the compiled shape. */
    serve::ExecutionPlan *planFor(serve::PlanMode mode, const Tensor &x);
};

} // namespace twoinone

#endif // TWOINONE_NN_NETWORK_HH
