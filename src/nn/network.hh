/**
 * @file
 * Network: an ordered stack of layers plus the precision-switch
 * machinery that RPS relies on.
 *
 * A Network is bound to a PrecisionSet. setPrecision(q) fake-quantizes
 * all weights/activations at q bits and selects the SBN bank for q;
 * setPrecision(0) restores full precision (bank 0). Networks therefore
 * hold set.size()+1 SBN banks: bank 0 for full precision, banks 1..n
 * for each candidate precision.
 */

#ifndef TWOINONE_NN_NETWORK_HH
#define TWOINONE_NN_NETWORK_HH

#include <memory>
#include <vector>

#include "nn/layer.hh"
#include "quant/precision.hh"

namespace twoinone {

/**
 * Sequential network with precision switching.
 */
class Network
{
  public:
    Network() = default;

    /** Bind the candidate precision set (defines SBN bank mapping). */
    explicit Network(PrecisionSet set) : precisionSet_(std::move(set)) {}

    Network(Network &&) = default;
    Network &operator=(Network &&) = default;

    /** Append a layer (takes ownership). */
    void add(LayerPtr layer);

    /** Number of layers. */
    size_t numLayers() const { return layers_.size(); }

    /** Access layer i. */
    Layer &layer(size_t i);

    /** Full forward pass. */
    Tensor forward(const Tensor &x, bool train);

    /**
     * Inference forward on the integer-code datapath: ActQuant layers
     * emit QuantTensor codes (static scales when calibrated), Conv2d /
     * Linear consume them through the integer GEMM kernels, and
     * float-domain layers compose through the dense view. Matches
     * forward() within the rounding tolerance documented in the
     * README's quantized-execution section; layers without codes
     * (e.g. the stem conv) run their float path unchanged.
     */
    Tensor forwardQuantized(const Tensor &x);

    /** Full backward pass; returns gradient wrt the network input. */
    Tensor backward(const Tensor &grad_out);

    /** All learnable parameters. */
    std::vector<Parameter *> parameters();

    /** All weight-quantizing layers (Conv2d/Linear, recursively), in
     * network order — the cache targets of RpsEngine. */
    std::vector<WeightQuantizedLayer *> weightQuantizedLayers();

    /** All activation quantizers (recursively), in network order —
     * the calibration targets. */
    std::vector<ActQuant *> actQuantLayers();

    /** Zero all parameter gradients. */
    void zeroGrad();

    /** Number of learnable scalars. */
    size_t parameterCount();

    /** The bound candidate set. */
    const PrecisionSet &precisionSet() const { return precisionSet_; }

    /** Number of SBN banks networks built against this set need. */
    int bnBanks() const;

    /**
     * Switch the active precision.
     *
     * @param bits Candidate precision (must be in the bound set) or 0
     *             for full precision.
     */
    void setPrecision(int bits);

    /** Currently active precision (0 = full). */
    int activePrecision() const { return activeBits_; }

    /** Predicted class per row for a batch. */
    std::vector<int> predict(const Tensor &x);

    /** Predicted class per row, via the integer datapath. */
    std::vector<int> predictQuantized(const Tensor &x);

  private:
    PrecisionSet precisionSet_;
    std::vector<LayerPtr> layers_;
    int activeBits_ = 0;
};

} // namespace twoinone

#endif // TWOINONE_NN_NETWORK_HH
