/**
 * @file
 * 2-D convolution layer with im2col forward and explicit backward.
 *
 * Master weights stay full precision; when QuantState::weightBits > 0
 * the forward pass runs on fake-quantized weights and the backward pass
 * routes the weight gradient through the straight-through estimator
 * back onto the master weights (standard quantization-aware training,
 * as used by the paper's linear quantizer [34]).
 */

#ifndef TWOINONE_NN_CONV2D_HH
#define TWOINONE_NN_CONV2D_HH

#include "nn/layer.hh"

namespace twoinone {

/**
 * Conv2d: NCHW convolution, square kernel, zero padding, no dilation.
 */
class Conv2d : public Layer, public WeightQuantizedLayer
{
  public:
    /**
     * @param in_channels Input channel count C.
     * @param out_channels Output channel count K.
     * @param kernel Kernel side length (R = S = kernel).
     * @param stride Stride in both spatial dims.
     * @param padding Zero padding in both spatial dims.
     * @param bias Whether to learn a per-output-channel bias.
     * @param rng Weight initialization stream (He normal).
     */
    Conv2d(int in_channels, int out_channels, int kernel, int stride,
           int padding, bool bias, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

    /**
     * Integer-datapath forward: consumes unsigned activation codes
     * (<= 16 bit) and the installed QuantTensor weight codes, packs
     * both to the narrowest operand width (int8/uint8 under 8 bits,
     * int16/uint16 otherwise), accumulates in int32/int64 via
     * gemm::igemmTransB, and dequantizes the integer outputs with the
     * combined scale (bias fused). Falls back to the float forward
     * when the input carries no codes or weight quantization is off.
     */
    QuantAct forwardQuantized(QuantAct &x) override;

    void emitPlanSteps(serve::PlanBuilder &b) override;

    /** @name Allocation-free plan kernels
     * Shared with the legacy paths so plan forwards are bit-identical
     * by construction. */
    /** @{ */
    /**
     * Float inference forward into caller-owned buffers: weights from
     * the installed cache / a fresh fake-quantization into
     * @p wq_scratch (the masters directly at full precision), im2col
     * into @p cols, fused GEMM+bias into @p out.
     */
    void inferFloatInto(const Tensor &x, QuantResult &wq_scratch,
                        Tensor &cols, Tensor &out);
    /** Whether the integer datapath can consume these input codes at
     * the active weight precision. */
    bool intPathEligible(const QuantTensor &xq) const;
    /**
     * Integer inference forward: int im2col + igemm + fused
     * dequant/bias into @p out, packing through @p s (packed weights
     * are cached in @p s across calls while the weights stand still).
     * With @p serve the <= 8-bit product dispatches to the serving
     * SIMD kernel (gemm::igemmTransB8Serve) instead of the reference
     * loops — bit-identical either way (integer accumulation is
     * exact); plan steps pass true, the legacy loop keeps the
     * reference kernel.
     */
    void inferQuantInto(const QuantTensor &xq, const QuantTensor &wq,
                        IntGemmScratch &s, Tensor &out,
                        bool serve = false);
    /** @} */

    void collectParameters(std::vector<Parameter *> &out) override;
    void collectWeightQuantized(
        std::vector<WeightQuantizedLayer *> &out) override;
    std::string describe() const override;
    LayerSpec spec() const override;
    void collectState(const std::string &prefix, StateDict &out) override;

    const Tensor &masterWeight() const override { return weight_.value; }
    uint64_t masterWeightVersion() const override
    {
        return weight_.version;
    }
    void setWeightCache(const QuantResult *cache) override;

    /** Weight tensor shape [K, C, R, S]. */
    Parameter &weight() { return weight_; }
    /** Bias tensor shape [K] (empty when bias disabled). */
    Parameter &bias() { return bias_; }

    int inChannels() const { return inChannels_; }
    int outChannels() const { return outChannels_; }
    int kernel() const { return kernel_; }
    int stride() const { return stride_; }
    int padding() const { return padding_; }

    /** Output spatial size for a given input size. */
    int outSize(int in_size) const;

  private:
    int inChannels_;
    int outChannels_;
    int kernel_;
    int stride_;
    int padding_;
    bool hasBias_;

    Parameter weight_;
    Parameter bias_;

    // Forward caches for backward. cachedCols_/dcolsBuf_/dwBuf_ are
    // reused across iterations (Tensor::ensure) instead of being
    // reallocated every step. steMask_ points at the engine-owned
    // cache entry when one is installed (stable while installed) and
    // at ownedSteMask_ on the uncached path — no weight-sized mask
    // copy per cached forward.
    Tensor cachedCols_;    // im2col matrix [N*OH*OW, C*R*S]
    const Tensor *steMask_ = nullptr; // STE mask of quantized weights
    Tensor ownedSteMask_;  // mask storage for the uncached path
    Tensor dcolsBuf_;      // input-gradient columns [N*OH*OW, C*R*S]
    Tensor dwBuf_;         // weight-gradient GEMM output [K, C*R*S]
    std::vector<int> cachedInShape_;
    int cachedOh_ = 0;
    int cachedOw_ = 0;

    // Integer-path scratch for the legacy per-layer loop, reused
    // across forwards (plan steps carry their own IntGemmScratch).
    IntGemmScratch iscratch_;

    /** The fused per-image GEMM+bias loop shared by forward() and
     * inferFloatInto(): out[K, OH*OW] slabs from W[K, patch] x
     * cols[OH*OW, patch]^T. @p out must already have its shape. */
    void runFloatGemm(const float *w2d, int n, int oh, int ow,
                      const Tensor &cols, Tensor &out) const;

    /**
     * im2col into the reused cols buffer: [N,C,H,W] ->
     * [N*OH*OW, C*R*S], parallel over the batch dimension.
     */
    void im2colInto(const Tensor &x, int oh, int ow, Tensor &cols) const;

    /**
     * col2im: scatter-accumulate cols [N*OH*OW, C*R*S] into the
     * zero-initialized x [N,C,H,W], parallel over the batch dimension
     * (each image's slab is disjoint).
     */
    void col2imInto(const Tensor &cols, int oh, int ow, Tensor &x) const;
};

} // namespace twoinone

#endif // TWOINONE_NN_CONV2D_HH
