/**
 * @file
 * Network implementation.
 */

#include "nn/network.hh"

#include "tensor/ops.hh"

namespace twoinone {

void
Network::add(LayerPtr layer)
{
    TWOINONE_ASSERT(layer != nullptr, "adding null layer");
    layers_.push_back(std::move(layer));
}

Layer &
Network::layer(size_t i)
{
    TWOINONE_ASSERT(i < layers_.size(), "layer index out of range");
    return *layers_[i];
}

Tensor
Network::forward(const Tensor &x, bool train)
{
    TWOINONE_ASSERT(!layers_.empty(), "forward through empty network");
    Tensor h = x;
    for (auto &l : layers_)
        h = l->forward(h, train);
    return h;
}

Tensor
Network::forwardQuantized(const Tensor &x)
{
    TWOINONE_ASSERT(!layers_.empty(), "forward through empty network");
    QuantAct h(x);
    for (auto &l : layers_)
        h = l->forwardQuantized(h);
    return h.denseView();
}

Tensor
Network::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!layers_.empty(), "backward through empty network");
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Parameter *>
Network::parameters()
{
    std::vector<Parameter *> out;
    for (auto &l : layers_)
        l->collectParameters(out);
    return out;
}

std::vector<WeightQuantizedLayer *>
Network::weightQuantizedLayers()
{
    std::vector<WeightQuantizedLayer *> out;
    for (auto &l : layers_)
        l->collectWeightQuantized(out);
    return out;
}

std::vector<ActQuant *>
Network::actQuantLayers()
{
    std::vector<ActQuant *> out;
    for (auto &l : layers_)
        l->collectActQuant(out);
    return out;
}

void
Network::zeroGrad()
{
    for (auto &l : layers_)
        l->zeroGrad();
}

size_t
Network::parameterCount()
{
    size_t n = 0;
    for (Parameter *p : parameters())
        n += p->value.size();
    return n;
}

int
Network::bnBanks() const
{
    return static_cast<int>(precisionSet_.size()) + 1;
}

void
Network::setPrecision(int bits)
{
    QuantState qs;
    if (bits == 0) {
        qs.weightBits = 0;
        qs.actBits = 0;
        qs.bnIndex = 0;
    } else {
        TWOINONE_ASSERT(precisionSet_.contains(bits), "precision ", bits,
                        " not in bound set ", precisionSet_.name());
        qs.weightBits = bits;
        qs.actBits = bits;
        qs.bnIndex = 1 + precisionSet_.indexOf(bits);
    }
    activeBits_ = bits;
    for (auto &l : layers_)
        l->setQuantState(qs);
}

std::vector<int>
Network::predict(const Tensor &x)
{
    Tensor logits = forward(x, /*train=*/false);
    std::vector<int> preds(static_cast<size_t>(logits.dim(0)));
    for (int i = 0; i < logits.dim(0); ++i)
        preds[static_cast<size_t>(i)] = ops::argmaxRow(logits, i);
    return preds;
}

std::vector<int>
Network::predictQuantized(const Tensor &x)
{
    Tensor logits = forwardQuantized(x);
    std::vector<int> preds(static_cast<size_t>(logits.dim(0)));
    for (int i = 0; i < logits.dim(0); ++i)
        preds[static_cast<size_t>(i)] = ops::argmaxRow(logits, i);
    return preds;
}

} // namespace twoinone
