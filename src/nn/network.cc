/**
 * @file
 * Network implementation.
 */

#include "nn/network.hh"

#include <algorithm>

#include "tensor/ops.hh"

namespace twoinone {

void
Network::add(LayerPtr layer)
{
    TWOINONE_ASSERT(layer != nullptr, "adding null layer");
    layers_.push_back(std::move(layer));
}

Layer &
Network::layer(size_t i)
{
    TWOINONE_ASSERT(i < layers_.size(), "layer index out of range");
    return *layers_[i];
}

Tensor
Network::forward(const Tensor &x, bool train)
{
    TWOINONE_ASSERT(!layers_.empty(), "forward through empty network");
    Tensor h = x;
    for (auto &l : layers_)
        h = l->forward(h, train);
    return h;
}

Tensor
Network::forwardQuantized(const Tensor &x)
{
    TWOINONE_ASSERT(!layers_.empty(), "forward through empty network");
    if (serve::ExecutionPlan *p = planFor(serve::PlanMode::Quantized, x))
        return p->run(x);
    QuantAct h(x);
    // Quantize the network input so the stem conv joins the integer
    // path (at full precision the raw input flows through unchanged).
    if (activeBits_ > 0)
        h = inputQuant_->forwardQuantized(h);
    for (auto &l : layers_)
        h = l->forwardQuantized(h);
    return h.denseView();
}

Tensor
Network::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!layers_.empty(), "backward through empty network");
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

std::vector<Parameter *>
Network::parameters()
{
    std::vector<Parameter *> out;
    for (auto &l : layers_)
        l->collectParameters(out);
    return out;
}

std::vector<WeightQuantizedLayer *>
Network::weightQuantizedLayers()
{
    std::vector<WeightQuantizedLayer *> out;
    for (auto &l : layers_)
        l->collectWeightQuantized(out);
    return out;
}

std::vector<ActQuant *>
Network::actQuantLayers()
{
    std::vector<ActQuant *> out;
    for (auto &l : layers_)
        l->collectActQuant(out);
    return out;
}

NetworkSpec
Network::spec() const
{
    NetworkSpec s;
    s.precisions = precisionSet_.bits();
    s.layers.reserve(layers_.size());
    for (const auto &l : layers_)
        s.layers.push_back(l->spec());
    return s;
}

void
Network::collectState(StateDict &out)
{
    for (size_t i = 0; i < layers_.size(); ++i)
        layers_[i]->collectState("layers." + std::to_string(i), out);
}

std::string
Network::checkState() const
{
    for (size_t i = 0; i < layers_.size(); ++i) {
        std::string err = layers_[i]->checkState(bnBanks());
        if (!err.empty())
            return "layers." + std::to_string(i) + ": " + err;
    }
    return std::string();
}

void
Network::zeroGrad()
{
    for (auto &l : layers_)
        l->zeroGrad();
}

size_t
Network::parameterCount()
{
    size_t n = 0;
    for (Parameter *p : parameters())
        n += p->value.size();
    return n;
}

int
Network::bnBanks() const
{
    return static_cast<int>(precisionSet_.size()) + 1;
}

void
Network::setPrecision(int bits)
{
    QuantState qs;
    if (bits == 0) {
        qs.weightBits = 0;
        qs.actBits = 0;
        qs.bnIndex = 0;
    } else {
        TWOINONE_ASSERT(precisionSet_.contains(bits), "precision ", bits,
                        " not in bound set ", precisionSet_.name());
        qs.weightBits = bits;
        qs.actBits = bits;
        qs.bnIndex = 1 + precisionSet_.indexOf(bits);
    }
    activeBits_ = bits;
    for (auto &l : layers_)
        l->setQuantState(qs);
    // The input quantizer floors at 16 bits regardless of how narrow
    // the candidate is: the stem conv still consumes integer codes
    // (the int16 kernels take up to 16-bit operands), while input
    // quantization noise stays well below the activation grids of
    // every candidate, preserving the documented int-vs-float forward
    // tolerance.
    QuantState qs_in = qs;
    qs_in.actBits = bits > 0 ? std::max(bits, 16) : 0;
    inputQuant_->setQuantState(qs_in);
}

namespace {

std::vector<int>
argmaxRows(const Tensor &logits)
{
    std::vector<int> preds(static_cast<size_t>(logits.dim(0)));
    for (int i = 0; i < logits.dim(0); ++i)
        preds[static_cast<size_t>(i)] = ops::argmaxRow(logits, i);
    return preds;
}

} // namespace

std::vector<int>
Network::predict(const Tensor &x)
{
    if (serve::ExecutionPlan *p = planFor(serve::PlanMode::Float, x))
        return argmaxRows(p->run(x));
    return argmaxRows(forward(x, /*train=*/false));
}

std::vector<int>
Network::predictQuantized(const Tensor &x)
{
    if (serve::ExecutionPlan *p = planFor(serve::PlanMode::Quantized, x))
        return argmaxRows(p->run(x));
    return argmaxRows(forwardQuantized(x));
}

std::unique_ptr<serve::ExecutionPlan>
Network::compile(const PrecisionSet &precisions, serve::PlanMode mode,
                 const std::vector<int> &max_input_shape, bool warm_all)
{
    return serve::ExecutionPlan::compile(*this, precisions, mode,
                                         max_input_shape, warm_all);
}

void
Network::enablePlanExecution(const std::vector<int> &max_input_shape)
{
    TWOINONE_ASSERT(!max_input_shape.empty() && max_input_shape[0] > 0,
                    "plan execution needs a max input shape");
    if (planExec_ && planMaxShape_ == max_input_shape)
        return;
    planMaxShape_ = max_input_shape;
    planFloat_.reset();
    planQuant_.reset();
    planExec_ = true;
}

void
Network::disablePlanExecution()
{
    planExec_ = false;
    planFloat_.reset();
    planQuant_.reset();
    planMaxShape_.clear();
}

serve::ExecutionPlan *
Network::planFor(serve::PlanMode mode, const Tensor &x)
{
    if (!planExec_)
        return nullptr;
    if (x.ndim() != static_cast<int>(planMaxShape_.size()) ||
        x.dim(0) > planMaxShape_[0])
        return nullptr;
    for (size_t i = 1; i < planMaxShape_.size(); ++i) {
        if (x.dim(static_cast<int>(i)) != planMaxShape_[i])
            return nullptr;
    }
    std::unique_ptr<serve::ExecutionPlan> &slot =
        mode == serve::PlanMode::Float ? planFloat_ : planQuant_;
    if (!slot)
        slot = compile(precisionSet_, mode, planMaxShape_);
    return slot.get();
}

} // namespace twoinone
