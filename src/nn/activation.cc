/**
 * @file
 * Activation layer implementations.
 */

#include "nn/activation.hh"

#include "tensor/ops.hh"

namespace twoinone {

Tensor
ReLU::forward(const Tensor &x, bool train)
{
    (void)train;
    cachedMask_ = Tensor(x.shape());
    Tensor out(x.shape());
    for (size_t i = 0; i < x.size(); ++i) {
        bool pos = x[i] > 0.0f;
        cachedMask_[i] = pos ? 1.0f : 0.0f;
        out[i] = pos ? x[i] : 0.0f;
    }
    return out;
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedMask_.empty(), "ReLU backward before forward");
    return ops::mul(grad_out, cachedMask_);
}

Tensor
ActQuant::forward(const Tensor &x, bool train)
{
    (void)train;
    QuantResult r = LinearQuantizer::fakeQuantUnsigned(x, quant_.actBits);
    cachedMask_ = r.steMask;
    return r.values;
}

Tensor
ActQuant::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedMask_.empty(), "ActQuant backward before forward");
    return ops::mul(grad_out, cachedMask_);
}

} // namespace twoinone
