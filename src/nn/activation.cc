/**
 * @file
 * Activation layer implementations.
 */

#include "nn/activation.hh"

#include <algorithm>
#include <cmath>

#include "quant/quant_tensor.hh"
#include "serve/execution_plan.hh"
#include "tensor/ops.hh"

namespace twoinone {

Tensor
ReLU::forward(const Tensor &x, bool train)
{
    (void)train;
    cachedMask_ = Tensor(x.shape());
    Tensor out(x.shape());
    for (size_t i = 0; i < x.size(); ++i) {
        bool pos = x[i] > 0.0f;
        cachedMask_[i] = pos ? 1.0f : 0.0f;
        out[i] = pos ? x[i] : 0.0f;
    }
    return out;
}

Tensor
ReLU::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedMask_.empty(), "ReLU backward before forward");
    return ops::mul(grad_out, cachedMask_);
}

QuantAct
ReLU::forwardQuantized(QuantAct &x)
{
    // Inference datapath: a single rectify pass, no gradient mask.
    Tensor out;
    inferenceInto(x.denseView(), out);
    return QuantAct(std::move(out));
}

void
ReLU::inferenceInto(const Tensor &x, Tensor &out) const
{
    out.ensure(x.shape());
    const float *src = x.data();
    float *dst = out.data();
    for (size_t i = 0; i < x.size(); ++i)
        dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void
ReLU::emitPlanSteps(serve::PlanBuilder &b)
{
    int in = b.top();
    int out = b.newValue();
    b.addStep("relu", [this, in, out](serve::ExecutionPlan &p) {
        serve::Value &vi = p.value(in);
        serve::Value &vo = p.value(out);
        vo.reset();
        inferenceInto(vi.denseView(), vo.dense);
        vo.denseReady = true;
    });
    b.setTop(out);
}

void
ActQuant::setCalibrationBanks(int banks)
{
    TWOINONE_ASSERT(banks >= 1, "need at least one range bank");
    calibMax_.assign(static_cast<size_t>(banks), 0.0f);
    calibRecorded_.assign(static_cast<size_t>(banks), 0);
}

void
ActQuant::beginCalibration()
{
    TWOINONE_ASSERT(!calibMax_.empty(),
                    "setCalibrationBanks before beginCalibration");
    recording_ = true;
}

void
ActQuant::endCalibration()
{
    recording_ = false;
}

bool
ActQuant::bankCalibrated(int bank) const
{
    return bank >= 0 && static_cast<size_t>(bank) < calibRecorded_.size() &&
           calibRecorded_[static_cast<size_t>(bank)];
}

float
ActQuant::staticMaxOrNegative() const
{
    if (fixedMax_ > 0.0f)
        return fixedMax_;
    if (!staticScale_ || recording_ || !bankCalibrated(quant_.bnIndex))
        return -1.0f;
    return calibMax_[static_cast<size_t>(quant_.bnIndex)];
}

Tensor
ActQuant::forward(const Tensor &x, bool train)
{
    (void)train;
    if (quant_.actBits > 0 && recording_) {
        // Observe the pre-quantization range of the active bank; the
        // forward itself stays dynamic while recording — the observed
        // max IS the dynamic range, so one reduction serves both.
        size_t bank = static_cast<size_t>(quant_.bnIndex);
        TWOINONE_ASSERT(bank < calibMax_.size(),
                        "calibration bank out of range");
        float max_v = ops::maxVal(x);
        if (!calibRecorded_[bank] || max_v > calibMax_[bank])
            calibMax_[bank] = max_v;
        calibRecorded_[bank] = 1;
        QuantResult r = LinearQuantizer::fakeQuantUnsignedStatic(
            x, quant_.actBits, max_v);
        cachedMask_ = r.steMask;
        return r.values;
    }

    float static_max = staticMaxOrNegative();
    QuantResult r =
        (quant_.actBits > 0 && static_max >= 0.0f)
            ? LinearQuantizer::fakeQuantUnsignedStatic(x, quant_.actBits,
                                                       static_max)
            : LinearQuantizer::fakeQuantUnsigned(x, quant_.actBits);
    cachedMask_ = r.steMask;
    return r.values;
}

QuantAct
ActQuant::forwardQuantized(QuantAct &x)
{
    if (quant_.actBits <= 0)
        return QuantAct(x.denseView());

    QuantAct out;
    inferQuantInto(x.denseView(), out.q);
    // The float view stays unmaterialized: integer consumers (Conv2d,
    // Linear, GlobalAvgPool) take the codes, and anything else
    // materializes on demand through denseView().
    return out;
}

void
ActQuant::inferQuantInto(const Tensor &x, QuantTensor &out_q)
{
    float static_max = staticMaxOrNegative();
    float max_v = static_max >= 0.0f ? static_max : ops::maxVal(x);
    QuantTensor::quantizeUnsignedInto(x, quant_.actBits, max_v, out_q);
}

void
ActQuant::inferFloatInto(const Tensor &x, Tensor &out)
{
    int bits = quant_.actBits;
    float max_v;
    if (bits > 0 && recording_) {
        // Mirror forward()'s recording branch: observe the dynamic
        // range of the active bank, then quantize against it.
        size_t bank = static_cast<size_t>(quant_.bnIndex);
        TWOINONE_ASSERT(bank < calibMax_.size(),
                        "calibration bank out of range");
        max_v = ops::maxVal(x);
        if (!calibRecorded_[bank] || max_v > calibMax_[bank])
            calibMax_[bank] = max_v;
        calibRecorded_[bank] = 1;
    } else {
        float static_max = staticMaxOrNegative();
        max_v = (bits > 0 && static_max < 0.0f) ? ops::maxVal(x)
                                                : static_max;
    }
    // The shared static grid pass (no STE mask — no inference
    // consumer reads one), bit-identical to forward(eval)'s values.
    LinearQuantizer::fakeQuantUnsignedStaticValuesInto(x, bits, max_v,
                                                       out);
}

void
ActQuant::emitPlanSteps(serve::PlanBuilder &b)
{
    int in = b.top();
    int out = b.newValue();
    if (b.mode() == serve::PlanMode::Quantized) {
        b.addStep("actquant[codes]",
                  [this, in, out](serve::ExecutionPlan &p) {
                      serve::Value &vi = p.value(in);
                      serve::Value &vo = p.value(out);
                      vo.reset();
                      if (quant_.actBits <= 0) {
                          vo.alias = &vi.denseView();
                          return;
                      }
                      inferQuantInto(vi.denseView(), vo.q);
                      vo.hasCodes = true;
                  });
    } else {
        b.addStep("actquant", [this, in, out](serve::ExecutionPlan &p) {
            serve::Value &vi = p.value(in);
            serve::Value &vo = p.value(out);
            vo.reset();
            if (quant_.actBits <= 0) {
                vo.alias = &vi.denseView();
                return;
            }
            inferFloatInto(vi.denseView(), vo.dense);
            vo.denseReady = true;
        });
    }
    b.setTop(out);
}

void
ActQuant::collectActQuant(std::vector<ActQuant *> &out)
{
    out.push_back(this);
}

void
ActQuant::collectState(const std::string &prefix, StateDict &out)
{
    out.push_back({prefix + ".calib_max", nullptr, &calibMax_, nullptr,
                   nullptr});
    out.push_back({prefix + ".calib_recorded", nullptr, nullptr,
                   &calibRecorded_, nullptr});
    out.push_back({prefix + ".static_scale", nullptr, nullptr, nullptr,
                   &staticScale_});
}

std::string
ActQuant::checkState(int required_banks) const
{
    // staticMaxOrNegative reads calibMax_[bank] behind a bound check
    // on calibRecorded_ — the two banks must stay the same length.
    if (calibMax_.size() != calibRecorded_.size())
        return "ActQuant calibration banks inconsistent (" +
               std::to_string(calibMax_.size()) + " maxima vs " +
               std::to_string(calibRecorded_.size()) + " flags)";
    // Calibration is all-or-nothing per quantizer: empty banks mean
    // never calibrated (dynamic ranges), but sized banks must cover
    // every bank the candidate set can select — a short vector would
    // silently degrade some candidates to dynamic scale, breaking the
    // bit-for-bit reproduction a checkpoint promises.
    if (!calibMax_.empty() &&
        calibMax_.size() < static_cast<size_t>(required_banks))
        return "ActQuant calibration banks cover " +
               std::to_string(calibMax_.size()) + " of " +
               std::to_string(required_banks) + " required banks";
    return std::string();
}

Tensor
ActQuant::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedMask_.empty(), "ActQuant backward before forward");
    return ops::mul(grad_out, cachedMask_);
}

} // namespace twoinone
