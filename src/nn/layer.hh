/**
 * @file
 * Layer abstraction for the DNN substrate.
 *
 * Every layer implements an explicit forward pass (caching whatever it
 * needs) and an explicit backward pass returning the gradient with
 * respect to its input while accumulating parameter gradients. Both
 * adversarial attacks (input gradients) and training (parameter
 * gradients) are served by the same backward path.
 *
 * Quantization is threaded through layers via QuantState: layers that
 * hold weights fake-quantize them in forward when weightBits > 0, and
 * ActQuant layers fake-quantize activations when actBits > 0. SBN
 * layers switch their statistics bank on QuantState::bnIndex.
 */

#ifndef TWOINONE_NN_LAYER_HH
#define TWOINONE_NN_LAYER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quant/linear_quantizer.hh"
#include "quant/quant_tensor.hh"
#include "tensor/gemm.hh"
#include "tensor/tensor.hh"

namespace twoinone {

class ActQuant;

namespace serve {
class PlanBuilder;
}

/**
 * Reusable integer-datapath scratch: packed narrow operands plus the
 * wide accumulators. The legacy per-layer loops own one per layer;
 * compiled plans (serve/execution_plan.hh) own one per emitted step
 * so plan replicas can run concurrently.
 */
struct IntGemmScratch
{
    std::vector<int8_t> w8;
    std::vector<int16_t> w16;
    std::vector<uint8_t> a8;
    std::vector<uint16_t> a16;
    std::vector<int64_t> acc;

    /** Locally built tile-packed weights (gemm::packWeights) — the
     * fallback when no engine-owned pack is installed on the layer
     * (uncached precisions, detached engines). Keyed by the same
     * packedFrom/packedBits/packedVersion fields as w8/w16. */
    gemm::PackedIntWeights wpack;
    /** Staging buffer of igemmPackedWideTransA's lo/hi activation
     * split (the Linear wide path); reused across forwards. */
    std::vector<uint16_t> wide16;

    /** Which staged representations were actually built under the
     * current pack key (a forward builds only the one its path needs,
     * so a key match alone does not prove a given buffer is fresh). */
    enum : int { kPackW8 = 1, kPackW16 = 2, kPackTiled = 4 };

    /** @name Weight-pack cache key
     * Identifies the weight codes w8/w16/wpack were packed from, so
     * repeated forwards against unchanged weights (the serving steady
     * state) skip the repack: same source buffer, same precision,
     * same master-weight version. A re-quantization into the same
     * buffer at the same (bits, version) reproduces identical codes,
     * so a pointer match cannot go stale without a version bump.
     * packedKinds marks which of w8/w16/wpack hold that key's codes. */
    /** @{ */
    const void *packedFrom = nullptr;
    int packedBits = 0;
    uint64_t packedVersion = 0;
    int packedKinds = 0;
    /** @} */

    /** @name im2col gather table (serving path)
     * Per-image source index of every [position, patch] column
     * element (-1 = zero padding), precomputed once per input
     * geometry: the serving gather is then one flat indexed copy per
     * image instead of the reference path's nested address
     * arithmetic. Tables are geometry-pure, so they are *shared*
     * through a process-wide registry (see conv2d.cc): every plan
     * replica of the same conv geometry points at one table instead
     * of building its own copy, shrinking the per-worker arena. */
    /** @{ */
    std::shared_ptr<const std::vector<int32_t>> gather;
    int gatherH = 0;
    int gatherW = 0;
    /** @} */
};

/**
 * Machine-readable construction spec of a layer: a kind tag plus the
 * integer constructor arguments. The serializable counterpart of
 * describe() — model_zoo's buildLayerFromSpec() reconstructs the layer
 * from it (fresh weights; checkpoint loading then restores the state),
 * so a persisted network round-trips without C++ code changes.
 */
struct LayerSpec
{
    std::string kind;
    std::vector<int> args;
};

/**
 * One serializable piece of layer state, referenced *in place*: the
 * checkpoint writer reads through the pointer and the loader writes
 * back through the same pointer on a freshly built layer, so one
 * collection pass serves both directions. Exactly one payload pointer
 * is set per entry. Names are stable ("layers.3.bn1.bank2.gamma") —
 * they are the checkpoint's lookup keys across sessions.
 */
struct StateEntry
{
    std::string name;
    /** f32 tensor payload (weights, BN statistics). */
    Tensor *tensor = nullptr;
    /** f32 vector payload (calibration range maxima). */
    std::vector<float> *floats = nullptr;
    /** u8 vector payload (per-bank trained/recorded flags). */
    std::vector<char> *flags = nullptr;
    /** Single-bool payload (mode switches, e.g. static scale). */
    bool *flag = nullptr;
};

using StateDict = std::vector<StateEntry>;

/**
 * The active quantization configuration of a network.
 */
struct QuantState
{
    /** Weight precision; 0 disables weight quantization. */
    int weightBits = 0;
    /** Activation precision; 0 disables activation quantization. */
    int actBits = 0;
    /** Which switchable-BN statistics bank is active. */
    int bnIndex = 0;
};

/**
 * A learnable parameter: master value plus accumulated gradient.
 *
 * version counts committed updates to value: the optimizer bumps it
 * after every applied step, and caches keyed on the master weights
 * (RpsEngine) compare it against the version they quantized to skip
 * re-quantizing untouched layers. Code that mutates value directly
 * (tests, manual surgery) should call bumpVersion() — or fall back to
 * a full cache refresh.
 */
struct Parameter
{
    Tensor value;
    Tensor grad;
    uint64_t version = 0;

    explicit Parameter(Tensor v)
        : value(std::move(v)), grad(Tensor::zeros(value.shape()))
    {
    }

    void bumpVersion() { ++version; }
};

/**
 * An activation value flowing through Network::forwardQuantized: the
 * canonical integer codes (when the producing layer emitted them —
 * ActQuant with a quantized precision active, or an integer-exact
 * transform like GlobalAvgPool) plus a float view materialized from
 * the codes only when a float-domain consumer (BN, ReLU, the residual
 * add) actually needs it.
 */
struct QuantAct
{
    /** Float view; may be empty while codes are valid. */
    Tensor dense;
    /** Integer codes + scale (empty when the value is float-only). */
    QuantTensor q;

    QuantAct() = default;
    explicit QuantAct(Tensor d) : dense(std::move(d)) {}

    bool hasCodes() const { return !q.empty(); }

    /** The float view, materialized from the codes on first use. */
    const Tensor &
    denseView()
    {
        if (dense.empty() && !q.empty())
            q.dequantizeInto(dense);
        return dense;
    }
};

/**
 * Interface of layers that fake-quantize a weight tensor (Conv2d,
 * Linear). RpsEngine discovers these through
 * Layer::collectWeightQuantized and installs pre-quantized weights so
 * a precision switch becomes a cache install instead of a
 * re-quantization pass over the master weights.
 */
class WeightQuantizedLayer
{
  public:
    virtual ~WeightQuantizedLayer() = default;

    /** The master (full-precision) weight tensor. */
    virtual const Tensor &masterWeight() const = 0;

    /** Version counter of the master weights (Parameter::version) —
     * the staleness signal RpsEngine's dirty refresh keys on. */
    virtual uint64_t masterWeightVersion() const = 0;

    /**
     * Install an externally owned pre-quantized weight entry, or
     * clear it with nullptr. While installed and matching the
     * layer's active weightBits, forward/backward use the cached
     * values/mask instead of re-running fakeQuantSymmetric; at any
     * other active precision the layer falls back to re-quantizing
     * the masters. The pointee must stay valid and in sync with the
     * master weights while installed. Layers override to also drop
     * state that points into the entry when it is cleared (the
     * storage may be about to be freed).
     */
    virtual void setWeightCache(const QuantResult *cache)
    {
        weightCache_ = cache;
    }

    /** The installed cache entry (nullptr when none). */
    const QuantResult *weightCache() const { return weightCache_; }

    /**
     * Install the canonical integer weight codes alongside the float
     * entry (or clear with nullptr). forwardQuantized consumes these
     * directly; the same lifetime/sync contract as setWeightCache
     * applies.
     */
    void setWeightCodes(const QuantTensor *codes) { weightCodes_ = codes; }

    /** The installed integer weight codes (nullptr when none). */
    const QuantTensor *weightCodes() const { return weightCodes_; }

    /**
     * Install engine-owned tile-packed weights alongside the codes
     * (or clear with nullptr). When present and matching the active
     * precision, the integer forward skips its local scratch repack
     * and feeds the packed SIMD kernels directly — the pack is built
     * once per (layer, precision) by RpsEngine. Same lifetime/sync
     * contract as setWeightCache.
     */
    void setWeightPacked(const gemm::PackedIntWeights *packed)
    {
        weightPacked_ = packed;
    }

    /** The installed tile-packed weights (nullptr when none). */
    const gemm::PackedIntWeights *weightPacked() const
    {
        return weightPacked_;
    }

    /** @name Cache accounting
     * Counted per quantized-weight lookup (forward and backward, any
     * path) while the active precision is quantized: a hit used an
     * installed entry, a miss re-quantized the masters. Atomic:
     * serving-plan replicas look weights up concurrently from
     * multiple pool threads. */
    /** @{ */
    uint64_t cacheHits() const
    {
        return cacheHits_.load(std::memory_order_relaxed);
    }
    uint64_t cacheMisses() const
    {
        return cacheMisses_.load(std::memory_order_relaxed);
    }
    void resetCacheStats()
    {
        cacheHits_.store(0, std::memory_order_relaxed);
        cacheMisses_.store(0, std::memory_order_relaxed);
    }
    /** @} */

    /**
     * Record the integer operands of the next quantized forward
     * (weights and activations as consumed) for the bit-serial
     * cross-checks; clearing also drops the recorded copies.
     */
    void setQuantTrace(bool on);

    /** Last traced integer operands (valid after a traced
     * forwardQuantized that took the integer path). */
    const QuantTensor &tracedWeightCodes() const { return tracedW_; }
    const QuantTensor &tracedActCodes() const { return tracedA_; }
    /** Last traced integer accumulator outputs, row-major in the
     * layer's output shape. */
    const std::vector<int64_t> &tracedAccumulators() const
    {
        return tracedAcc_;
    }

  protected:
    /**
     * The quantized weights to run on: the installed cache entry when
     * present (after checking its precision against @p bits), else a
     * fresh fake-quantization of the master weights stored in
     * @p local.
     */
    const QuantResult &quantizedWeight(int bits, QuantResult &local) const;

    /**
     * The integer weight codes to run on: the installed codes when
     * they match @p bits, else a fresh quantization stored in
     * @p local. Same hit/miss accounting as quantizedWeight.
     */
    const QuantTensor &quantizedCodes(int bits, QuantTensor &local) const;

    bool quantTrace_ = false;
    QuantTensor tracedW_;
    QuantTensor tracedA_;
    std::vector<int64_t> tracedAcc_;

  private:
    const QuantResult *weightCache_ = nullptr;
    const QuantTensor *weightCodes_ = nullptr;
    const gemm::PackedIntWeights *weightPacked_ = nullptr;
    mutable std::atomic<uint64_t> cacheHits_{0};
    mutable std::atomic<uint64_t> cacheMisses_{0};
};

/**
 * Abstract base class of all layers.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Run the layer forward.
     *
     * @param x Input activations.
     * @param train Training mode (affects BN statistics and caching).
     * @return Output activations.
     */
    virtual Tensor forward(const Tensor &x, bool train) = 0;

    /**
     * Run the layer backward.
     *
     * @param grad_out Gradient of the loss wrt this layer's output.
     * @return Gradient of the loss wrt this layer's input.
     *
     * Parameter gradients are *accumulated* into Parameter::grad.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /**
     * Inference-only forward on the integer-code representation.
     *
     * Layers with an integer datapath (Conv2d/Linear consuming codes,
     * ActQuant producing them, GlobalAvgPool transforming them
     * exactly) override this; the default materializes the float view
     * and runs the ordinary forward, so any layer mix composes. May
     * materialize @p x's float view in place (hence non-const).
     */
    virtual QuantAct forwardQuantized(QuantAct &x);

    /**
     * Emit this layer's inference steps into a plan under
     * construction (serve/execution_plan.hh): read the builder's
     * current value id, append steps computing this layer's output
     * into arena values, and leave the output id on top. Emitted
     * steps must be bit-identical to forward(eval) (PlanMode::Float)
     * or forwardQuantized (PlanMode::Quantized) — layers share their
     * *Into kernels between both paths to guarantee it. The default
     * emits a fallback step that runs the legacy (allocating) layer
     * forward, so any layer mix compiles.
     */
    virtual void emitPlanSteps(serve::PlanBuilder &b);

    /**
     * The layer's construction spec (see LayerSpec): enough to
     * rebuild an identically shaped layer through model_zoo's
     * buildLayerFromSpec. Composites return one spec for the whole
     * block.
     */
    virtual LayerSpec spec() const = 0;

    /**
     * Collect this layer's serializable state under @p prefix (see
     * StateEntry): master weights, BN banks + trained flags,
     * calibration range banks. Default: stateless. Entries reference
     * the live members, so the same pass serves checkpoint save (read
     * through the pointers) and load (write through them). Loading
     * writes parameters in place without bumping Parameter::version —
     * restore state before attaching an RpsEngine, or refresh() after.
     */
    virtual void collectState(const std::string &prefix, StateDict &out);

    /**
     * Post-restore invariant check: returns an empty string when the
     * layer's state is consistent, else a description of the
     * violation. The checkpoint loader runs this after writing
     * restored blobs through collectState's pointers — tensor blobs
     * are shape-checked at restore, but vector/flag blobs take
     * whatever length the artifact carried, and a checksum-valid yet
     * inconsistent artifact must fail the load, not abort (or read
     * out of bounds) at inference. @p required_banks is the bank
     * count the network's candidate set demands (Network::bnBanks):
     * switching to any candidate indexes SBN statistics and
     * calibration banks up to that bound. Default: no vector state,
     * always consistent.
     */
    virtual std::string
    checkState(int required_banks) const
    {
        (void)required_banks;
        return std::string();
    }

    /** Collect pointers to all learnable parameters (default: none). */
    virtual void collectParameters(std::vector<Parameter *> &out);

    /** Collect the weight-quantizing layers inside this layer
     * (default: none; composites recurse). */
    virtual void collectWeightQuantized(std::vector<WeightQuantizedLayer *> &out);

    /** Collect the activation-quantizer layers inside this layer
     * (default: none; composites recurse) — the calibration targets. */
    virtual void collectActQuant(std::vector<ActQuant *> &out);

    /** Zero all accumulated parameter gradients. */
    void zeroGrad();

    /** Propagate the active quantization state (default: store it). */
    virtual void setQuantState(const QuantState &qs) { quant_ = qs; }

    /** The layer's current quantization state. */
    const QuantState &quantState() const { return quant_; }

    /** Short human-readable description for debugging. */
    virtual std::string describe() const = 0;

  protected:
    QuantState quant_;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace twoinone

#endif // TWOINONE_NN_LAYER_HH
