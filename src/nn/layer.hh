/**
 * @file
 * Layer abstraction for the DNN substrate.
 *
 * Every layer implements an explicit forward pass (caching whatever it
 * needs) and an explicit backward pass returning the gradient with
 * respect to its input while accumulating parameter gradients. Both
 * adversarial attacks (input gradients) and training (parameter
 * gradients) are served by the same backward path.
 *
 * Quantization is threaded through layers via QuantState: layers that
 * hold weights fake-quantize them in forward when weightBits > 0, and
 * ActQuant layers fake-quantize activations when actBits > 0. SBN
 * layers switch their statistics bank on QuantState::bnIndex.
 */

#ifndef TWOINONE_NN_LAYER_HH
#define TWOINONE_NN_LAYER_HH

#include <memory>
#include <string>
#include <vector>

#include "quant/linear_quantizer.hh"
#include "tensor/tensor.hh"

namespace twoinone {

/**
 * The active quantization configuration of a network.
 */
struct QuantState
{
    /** Weight precision; 0 disables weight quantization. */
    int weightBits = 0;
    /** Activation precision; 0 disables activation quantization. */
    int actBits = 0;
    /** Which switchable-BN statistics bank is active. */
    int bnIndex = 0;
};

/**
 * A learnable parameter: master value plus accumulated gradient.
 */
struct Parameter
{
    Tensor value;
    Tensor grad;

    explicit Parameter(Tensor v)
        : value(std::move(v)), grad(Tensor::zeros(value.shape()))
    {
    }
};

/**
 * Interface of layers that fake-quantize a weight tensor (Conv2d,
 * Linear). RpsEngine discovers these through
 * Layer::collectWeightQuantized and installs pre-quantized weights so
 * a precision switch becomes a cache install instead of a
 * re-quantization pass over the master weights.
 */
class WeightQuantizedLayer
{
  public:
    virtual ~WeightQuantizedLayer() = default;

    /** The master (full-precision) weight tensor. */
    virtual const Tensor &masterWeight() const = 0;

    /**
     * Install an externally owned pre-quantized weight entry, or
     * clear it with nullptr. While installed and matching the
     * layer's active weightBits, forward/backward use the cached
     * values/mask instead of re-running fakeQuantSymmetric; at any
     * other active precision the layer falls back to re-quantizing
     * the masters. The pointee must stay valid and in sync with the
     * master weights while installed. Layers override to also drop
     * state that points into the entry when it is cleared (the
     * storage may be about to be freed).
     */
    virtual void setWeightCache(const QuantResult *cache)
    {
        weightCache_ = cache;
    }

    /** The installed cache entry (nullptr when none). */
    const QuantResult *weightCache() const { return weightCache_; }

  protected:
    /**
     * The quantized weights to run on: the installed cache entry when
     * present (after checking its precision against @p bits), else a
     * fresh fake-quantization of the master weights stored in
     * @p local.
     */
    const QuantResult &quantizedWeight(int bits, QuantResult &local) const;

  private:
    const QuantResult *weightCache_ = nullptr;
};

/**
 * Abstract base class of all layers.
 */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Run the layer forward.
     *
     * @param x Input activations.
     * @param train Training mode (affects BN statistics and caching).
     * @return Output activations.
     */
    virtual Tensor forward(const Tensor &x, bool train) = 0;

    /**
     * Run the layer backward.
     *
     * @param grad_out Gradient of the loss wrt this layer's output.
     * @return Gradient of the loss wrt this layer's input.
     *
     * Parameter gradients are *accumulated* into Parameter::grad.
     */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** Collect pointers to all learnable parameters (default: none). */
    virtual void collectParameters(std::vector<Parameter *> &out);

    /** Collect the weight-quantizing layers inside this layer
     * (default: none; composites recurse). */
    virtual void collectWeightQuantized(std::vector<WeightQuantizedLayer *> &out);

    /** Zero all accumulated parameter gradients. */
    void zeroGrad();

    /** Propagate the active quantization state (default: store it). */
    virtual void setQuantState(const QuantState &qs) { quant_ = qs; }

    /** The layer's current quantization state. */
    const QuantState &quantState() const { return quant_; }

    /** Short human-readable description for debugging. */
    virtual std::string describe() const = 0;

  protected:
    QuantState quant_;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace twoinone

#endif // TWOINONE_NN_LAYER_HH
