/**
 * @file
 * Model zoo: laptop-scale stand-ins for the paper's evaluation
 * networks, preserving the architecture family (pre-activation
 * residual networks, widened variants) at a trainable size.
 *
 * The substitutions are recorded in DESIGN.md §1:
 *  - PreActResNet-18  -> preActResNetMini  (3 stages of PreActBlocks)
 *  - WideResNet-32    -> wideResNetMini    (same, widened channels)
 *  - ResNet-50        -> resNetMini        (deeper stem for the
 *                                           ImageNet-like dataset)
 * convNetTiny is a plain conv net for quickstart/unit tests.
 */

#ifndef TWOINONE_NN_MODEL_ZOO_HH
#define TWOINONE_NN_MODEL_ZOO_HH

#include "nn/network.hh"

namespace twoinone {

/**
 * Construction parameters shared by the zoo builders.
 */
struct ModelConfig
{
    /** Input channels (3 for all synthetic datasets). */
    int inChannels = 3;
    /** Number of classes. */
    int numClasses = 10;
    /** Base channel width of the first stage. */
    int baseWidth = 8;
    /** Residual blocks per stage. */
    int blocksPerStage = 1;
    /** Number of stages (each after the first downsamples 2x). */
    int numStages = 3;
    /** Candidate precisions the model must support. */
    PrecisionSet precisions = PrecisionSet::rps4to16();
};

/** Pre-activation residual network (PreActResNet-18 stand-in). */
Network preActResNetMini(const ModelConfig &cfg, Rng &rng);

/** Widened pre-activation residual network (WideResNet-32 stand-in:
 * 2x the base width of preActResNetMini). */
Network wideResNetMini(const ModelConfig &cfg, Rng &rng);

/** Deeper residual network for the ImageNet-like dataset (ResNet-50
 * stand-in: extra stage and wider stem). */
Network resNetMini(const ModelConfig &cfg, Rng &rng);

/** Small plain conv net (quickstart and fast unit tests). */
Network convNetTiny(const ModelConfig &cfg, Rng &rng);

/**
 * Reconstruct one layer from its serialized spec (the inverse of
 * Layer::spec). Weights are freshly initialized from @p rng — the
 * checkpoint loader overwrites them with the persisted state. Throws
 * io::CheckpointError on an unknown kind or a malformed argument list
 * (an artifact from an incompatible library version).
 */
LayerPtr buildLayerFromSpec(const LayerSpec &spec, Rng &rng);

/**
 * Validate candidate bit-widths from a serialized artifact and build
 * the PrecisionSet: the set's constructor treats bad input as a
 * library bug (panic), but artifact contents are caller data — this
 * throws io::CheckpointError instead.
 */
PrecisionSet precisionSetFromSpec(const std::vector<int> &bits);

/**
 * Reconstruct a whole network from its serialized spec: bind the
 * candidate precision set and rebuild every layer in order. The
 * resulting network is architecturally identical to the one the spec
 * was taken from; checkpoint loading then restores its state.
 */
Network buildFromSpec(const NetworkSpec &spec);

} // namespace twoinone

#endif // TWOINONE_NN_MODEL_ZOO_HH
