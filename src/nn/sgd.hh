/**
 * @file
 * SGD with momentum and weight decay — the optimizer used by every
 * adversarial training method in the paper's training setup [48, 65].
 */

#ifndef TWOINONE_NN_SGD_HH
#define TWOINONE_NN_SGD_HH

#include <unordered_map>
#include <vector>

#include "nn/layer.hh"

namespace twoinone {

/**
 * Stochastic gradient descent with classical momentum.
 */
class Sgd
{
  public:
    /**
     * @param lr Learning rate.
     * @param momentum Momentum coefficient (0 disables).
     * @param weight_decay L2 penalty coefficient (0 disables).
     */
    explicit Sgd(float lr, float momentum = 0.9f,
                 float weight_decay = 5e-4f);

    /** Apply one update to every parameter; gradients are consumed
     * (not zeroed — call zeroGrad on the network afterwards). */
    void step(const std::vector<Parameter *> &params);

    float lr() const { return lr_; }
    void setLr(float lr) { lr_ = lr; }

  private:
    float lr_;
    float momentum_;
    float weightDecay_;
    std::unordered_map<Parameter *, Tensor> velocity_;
};

} // namespace twoinone

#endif // TWOINONE_NN_SGD_HH
