/**
 * @file
 * SGD with momentum and weight decay — the optimizer used by every
 * adversarial training method in the paper's training setup [48, 65].
 */

#ifndef TWOINONE_NN_SGD_HH
#define TWOINONE_NN_SGD_HH

#include <unordered_map>
#include <vector>

#include "nn/layer.hh"

namespace twoinone {

/**
 * Stochastic gradient descent with classical momentum.
 */
class Sgd
{
  public:
    /**
     * @param lr Learning rate.
     * @param momentum Momentum coefficient (0 disables).
     * @param weight_decay L2 penalty coefficient (0 disables).
     */
    explicit Sgd(float lr, float momentum = 0.9f,
                 float weight_decay = 5e-4f);

    /** Apply one update to every parameter; gradients are consumed
     * (not zeroed — call zeroGrad on the network afterwards). */
    void step(const std::vector<Parameter *> &params);

    float lr() const { return lr_; }
    void setLr(float lr) { lr_ = lr; }
    float momentum() const { return momentum_; }
    float weightDecay() const { return weightDecay_; }

    /** @name Optimizer-state persistence
     * The velocity buffers in @p params order, so checkpoints can
     * carry the training trajectory: a reloaded run resumes
     * bit-identically instead of restarting its momentum from zero.
     * Parameters never stepped export all-zero velocity (what step()
     * would have seeded). importVelocity replaces the state wholesale;
     * a count or shape mismatch against @p params throws
     * io::CheckpointError via the checkpoint layer — here it is
     * validated and reported with std::invalid_argument. */
    /** @{ */
    std::vector<Tensor>
    exportVelocity(const std::vector<Parameter *> &params) const;
    void importVelocity(const std::vector<Parameter *> &params,
                        std::vector<Tensor> velocity);
    /** @} */

  private:
    float lr_;
    float momentum_;
    float weightDecay_;
    std::unordered_map<Parameter *, Tensor> velocity_;
};

} // namespace twoinone

#endif // TWOINONE_NN_SGD_HH
