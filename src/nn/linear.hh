/**
 * @file
 * Fully connected layer with quantization-aware forward/backward.
 */

#ifndef TWOINONE_NN_LINEAR_HH
#define TWOINONE_NN_LINEAR_HH

#include "nn/layer.hh"

namespace twoinone {

/**
 * Linear: y = x W^T + b over rank-2 inputs [N, in].
 */
class Linear : public Layer, public WeightQuantizedLayer
{
  public:
    /**
     * @param in_features Input feature count.
     * @param out_features Output feature count.
     * @param bias Whether to learn a bias.
     * @param rng Initialization stream (He normal).
     */
    Linear(int in_features, int out_features, bool bias, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

    /**
     * Integer-datapath forward: consumes activation codes of any
     * width (the classifier head sits behind GlobalAvgPool, whose
     * integer partial sums outgrow 16 bits) through the wide
     * int32 x int32 igemm, dequantizing with the combined scale.
     * Falls back to the float forward when the input carries no codes
     * or weight quantization is off.
     */
    QuantAct forwardQuantized(QuantAct &x) override;

    void collectParameters(std::vector<Parameter *> &out) override;
    void collectWeightQuantized(
        std::vector<WeightQuantizedLayer *> &out) override;
    std::string describe() const override;

    const Tensor &masterWeight() const override { return weight_.value; }
    uint64_t masterWeightVersion() const override
    {
        return weight_.version;
    }
    void setWeightCache(const QuantResult *cache) override;

    Parameter &weight() { return weight_; }
    Parameter &bias() { return bias_; }

    int inFeatures() const { return inFeatures_; }
    int outFeatures() const { return outFeatures_; }

  private:
    int inFeatures_;
    int outFeatures_;
    bool hasBias_;
    Parameter weight_; // [out, in]
    Parameter bias_;   // [out]

    Tensor cachedInput_;
    // STE mask for backward: points at the engine-owned cache entry
    // when installed, else at ownedSteMask_ (see Conv2d).
    const Tensor *steMask_ = nullptr;
    Tensor ownedSteMask_;
    // Integer-path accumulator scratch.
    std::vector<int64_t> accBuf_;
};

} // namespace twoinone

#endif // TWOINONE_NN_LINEAR_HH
