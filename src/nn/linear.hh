/**
 * @file
 * Fully connected layer with quantization-aware forward/backward.
 */

#ifndef TWOINONE_NN_LINEAR_HH
#define TWOINONE_NN_LINEAR_HH

#include "nn/layer.hh"

namespace twoinone {

/**
 * Linear: y = x W^T + b over rank-2 inputs [N, in].
 */
class Linear : public Layer, public WeightQuantizedLayer
{
  public:
    /**
     * @param in_features Input feature count.
     * @param out_features Output feature count.
     * @param bias Whether to learn a bias.
     * @param rng Initialization stream (He normal).
     */
    Linear(int in_features, int out_features, bool bias, Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;

    /**
     * Integer-datapath forward: consumes activation codes of any
     * width (the classifier head sits behind GlobalAvgPool, whose
     * integer partial sums outgrow 16 bits) through the wide
     * int32 x int32 igemm, dequantizing with the combined scale.
     * Falls back to the float forward when the input carries no codes
     * or weight quantization is off.
     */
    QuantAct forwardQuantized(QuantAct &x) override;

    void emitPlanSteps(serve::PlanBuilder &b) override;

    /** @name Allocation-free plan kernels
     * Shared with the legacy paths so plan forwards are bit-identical
     * by construction. */
    /** @{ */
    /** Float inference forward into a caller-owned buffer (weights
     * from the installed cache / a fresh fake-quantization into
     * @p wq_scratch; the masters directly at full precision). */
    void inferFloatInto(const Tensor &x, QuantResult &wq_scratch,
                        Tensor &out);
    /** Wide integer inference forward: int32 igemm + fused
     * dequant/bias into @p out, accumulating through @p s. */
    void inferQuantInto(const QuantTensor &xq, const QuantTensor &wq,
                        IntGemmScratch &s, Tensor &out);
    /** @} */

    void collectParameters(std::vector<Parameter *> &out) override;
    void collectWeightQuantized(
        std::vector<WeightQuantizedLayer *> &out) override;
    std::string describe() const override;
    LayerSpec spec() const override;
    void collectState(const std::string &prefix, StateDict &out) override;

    const Tensor &masterWeight() const override { return weight_.value; }
    uint64_t masterWeightVersion() const override
    {
        return weight_.version;
    }
    void setWeightCache(const QuantResult *cache) override;

    Parameter &weight() { return weight_; }
    Parameter &bias() { return bias_; }

    int inFeatures() const { return inFeatures_; }
    int outFeatures() const { return outFeatures_; }

  private:
    int inFeatures_;
    int outFeatures_;
    bool hasBias_;
    Parameter weight_; // [out, in]
    Parameter bias_;   // [out]

    Tensor cachedInput_;
    // STE mask for backward: points at the engine-owned cache entry
    // when installed, else at ownedSteMask_ (see Conv2d).
    const Tensor *steMask_ = nullptr;
    Tensor ownedSteMask_;
    // Integer-path scratch for the legacy loop (plan steps carry
    // their own IntGemmScratch).
    IntGemmScratch iscratch_;

    /** The batch-parallel bias add shared by forward() and
     * inferFloatInto(). */
    void addBiasRows(Tensor &out) const;
};

} // namespace twoinone

#endif // TWOINONE_NN_LINEAR_HH
