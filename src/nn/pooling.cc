/**
 * @file
 * Pooling layer implementations.
 */

#include "nn/pooling.hh"

#include <algorithm>

#include "serve/execution_plan.hh"

namespace twoinone {

Tensor
GlobalAvgPool::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() == 4, "GlobalAvgPool expects NCHW");
    cachedInShape_ = x.shape();
    Tensor out;
    inferFloatInto(x, out);
    return out;
}

void
GlobalAvgPool::inferFloatInto(const Tensor &x, Tensor &out) const
{
    TWOINONE_ASSERT(x.ndim() == 4, "GlobalAvgPool expects NCHW");
    int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    float inv = 1.0f / static_cast<float>(h * w);
    out.ensure({n, c});
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            double s = 0.0;
            for (int y = 0; y < h; ++y)
                for (int xx = 0; xx < w; ++xx)
                    s += x.at4(ni, ci, y, xx);
            out.at2(ni, ci) = static_cast<float>(s) * inv;
        }
    }
}

Tensor
GlobalAvgPool::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInShape_.empty(),
                    "GlobalAvgPool backward before forward");
    int n = cachedInShape_[0], c = cachedInShape_[1], h = cachedInShape_[2],
        w = cachedInShape_[3];
    float inv = 1.0f / static_cast<float>(h * w);
    Tensor grad_in(cachedInShape_);
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            float g = grad_out.at2(ni, ci) * inv;
            for (int y = 0; y < h; ++y)
                for (int xx = 0; xx < w; ++xx)
                    grad_in.at4(ni, ci, y, xx) = g;
        }
    }
    return grad_in;
}

QuantAct
GlobalAvgPool::forwardQuantized(QuantAct &x)
{
    if (!x.hasCodes())
        return Layer::forwardQuantized(x);
    QuantAct out;
    inferQuantInto(x.q, out.q);
    return out;
}

void
GlobalAvgPool::inferQuantInto(const QuantTensor &xq,
                              QuantTensor &out) const
{
    TWOINONE_ASSERT(xq.shape.size() == 4,
                    "GlobalAvgPool expects NCHW codes");
    int n = xq.shape[0], c = xq.shape[1], h = xq.shape[2],
        w = xq.shape[3];
    int hw = h * w;

    out.shape = {n, c};
    out.codes.resize(static_cast<size_t>(n) * c);
    // mean = (sum of codes) * scale / HW: integer partial sums with
    // the averaging divisor folded into the scale. The summed codes
    // need ceil(log2(HW)) extra bits.
    out.scale = xq.scale / static_cast<float>(hw);
    int extra = 0;
    while ((1 << extra) < hw)
        ++extra;
    out.bits = xq.bits + extra;
    out.isSigned = xq.isSigned;

    const int32_t *in = xq.codes.data();
    int32_t *o = out.codes.data();
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            const int32_t *plane =
                in + (static_cast<size_t>(ni) * c + ci) * hw;
            int64_t s = 0;
            for (int t = 0; t < hw; ++t)
                s += plane[t];
            o[static_cast<size_t>(ni) * c + ci] =
                static_cast<int32_t>(s);
        }
    }
}

void
GlobalAvgPool::emitPlanSteps(serve::PlanBuilder &b)
{
    int in = b.top();
    int out = b.newValue();
    if (b.mode() == serve::PlanMode::Quantized) {
        b.addStep("gap[int]", [this, in, out](serve::ExecutionPlan &p) {
            serve::Value &vi = p.value(in);
            serve::Value &vo = p.value(out);
            vo.reset();
            if (vi.hasCodes) {
                inferQuantInto(vi.q, vo.q);
                vo.hasCodes = true;
            } else {
                inferFloatInto(vi.denseView(), vo.dense);
                vo.denseReady = true;
            }
        });
    } else {
        b.addStep("gap", [this, in, out](serve::ExecutionPlan &p) {
            serve::Value &vi = p.value(in);
            serve::Value &vo = p.value(out);
            vo.reset();
            inferFloatInto(vi.denseView(), vo.dense);
            vo.denseReady = true;
        });
    }
    b.setTop(out);
}

Tensor
AvgPool2x2::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() == 4, "AvgPool2x2 expects NCHW");
    TWOINONE_ASSERT(x.dim(2) % 2 == 0 && x.dim(3) % 2 == 0,
                    "AvgPool2x2 needs even spatial dims");
    cachedInShape_ = x.shape();
    Tensor out;
    inferFloatInto(x, out);
    return out;
}

void
AvgPool2x2::inferFloatInto(const Tensor &x, Tensor &out) const
{
    TWOINONE_ASSERT(x.ndim() == 4, "AvgPool2x2 expects NCHW");
    TWOINONE_ASSERT(x.dim(2) % 2 == 0 && x.dim(3) % 2 == 0,
                    "AvgPool2x2 needs even spatial dims");
    int n = x.dim(0), c = x.dim(1), h = x.dim(2) / 2, w = x.dim(3) / 2;
    out.ensure({n, c, h, w});
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            for (int y = 0; y < h; ++y) {
                for (int xx = 0; xx < w; ++xx) {
                    float s = x.at4(ni, ci, 2 * y, 2 * xx) +
                              x.at4(ni, ci, 2 * y, 2 * xx + 1) +
                              x.at4(ni, ci, 2 * y + 1, 2 * xx) +
                              x.at4(ni, ci, 2 * y + 1, 2 * xx + 1);
                    out.at4(ni, ci, y, xx) = 0.25f * s;
                }
            }
        }
    }
}

void
AvgPool2x2::emitPlanSteps(serve::PlanBuilder &b)
{
    int in = b.top();
    int out = b.newValue();
    b.addStep("avgpool2x2", [this, in, out](serve::ExecutionPlan &p) {
        serve::Value &vi = p.value(in);
        serve::Value &vo = p.value(out);
        vo.reset();
        inferFloatInto(vi.denseView(), vo.dense);
        vo.denseReady = true;
    });
    b.setTop(out);
}

Tensor
AvgPool2x2::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInShape_.empty(),
                    "AvgPool2x2 backward before forward");
    Tensor grad_in(cachedInShape_);
    int n = grad_out.dim(0), c = grad_out.dim(1), h = grad_out.dim(2),
        w = grad_out.dim(3);
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            for (int y = 0; y < h; ++y) {
                for (int xx = 0; xx < w; ++xx) {
                    float g = 0.25f * grad_out.at4(ni, ci, y, xx);
                    grad_in.at4(ni, ci, 2 * y, 2 * xx) = g;
                    grad_in.at4(ni, ci, 2 * y, 2 * xx + 1) = g;
                    grad_in.at4(ni, ci, 2 * y + 1, 2 * xx) = g;
                    grad_in.at4(ni, ci, 2 * y + 1, 2 * xx + 1) = g;
                }
            }
        }
    }
    return grad_in;
}

Tensor
Flatten::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() >= 2, "Flatten expects rank >= 2");
    cachedInShape_ = x.shape();
    int n = x.dim(0);
    int rest = static_cast<int>(x.size()) / n;
    return x.reshape({n, rest});
}

void
Flatten::emitPlanSteps(serve::PlanBuilder &b)
{
    int in = b.top();
    int out = b.newValue();
    b.addStep("flatten", [in, out](serve::ExecutionPlan &p) {
        serve::Value &vi = p.value(in);
        serve::Value &vo = p.value(out);
        vo.reset();
        const Tensor &x = vi.denseView();
        int n = x.dim(0);
        int rest = static_cast<int>(x.size()) / n;
        vo.dense.ensure({n, rest});
        std::copy(x.data(), x.data() + x.size(), vo.dense.data());
        vo.denseReady = true;
    });
    b.setTop(out);
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInShape_.empty(),
                    "Flatten backward before forward");
    return grad_out.reshape(cachedInShape_);
}

} // namespace twoinone
