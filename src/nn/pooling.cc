/**
 * @file
 * Pooling layer implementations.
 */

#include "nn/pooling.hh"

namespace twoinone {

Tensor
GlobalAvgPool::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() == 4, "GlobalAvgPool expects NCHW");
    cachedInShape_ = x.shape();
    int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    float inv = 1.0f / static_cast<float>(h * w);
    Tensor out({n, c});
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            double s = 0.0;
            for (int y = 0; y < h; ++y)
                for (int xx = 0; xx < w; ++xx)
                    s += x.at4(ni, ci, y, xx);
            out.at2(ni, ci) = static_cast<float>(s) * inv;
        }
    }
    return out;
}

Tensor
GlobalAvgPool::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInShape_.empty(),
                    "GlobalAvgPool backward before forward");
    int n = cachedInShape_[0], c = cachedInShape_[1], h = cachedInShape_[2],
        w = cachedInShape_[3];
    float inv = 1.0f / static_cast<float>(h * w);
    Tensor grad_in(cachedInShape_);
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            float g = grad_out.at2(ni, ci) * inv;
            for (int y = 0; y < h; ++y)
                for (int xx = 0; xx < w; ++xx)
                    grad_in.at4(ni, ci, y, xx) = g;
        }
    }
    return grad_in;
}

QuantAct
GlobalAvgPool::forwardQuantized(QuantAct &x)
{
    if (!x.hasCodes())
        return Layer::forwardQuantized(x);
    TWOINONE_ASSERT(x.q.shape.size() == 4,
                    "GlobalAvgPool expects NCHW codes");
    int n = x.q.shape[0], c = x.q.shape[1], h = x.q.shape[2],
        w = x.q.shape[3];
    int hw = h * w;

    QuantAct out;
    out.q.shape = {n, c};
    out.q.codes.assign(static_cast<size_t>(n) * c, 0);
    // mean = (sum of codes) * scale / HW: integer partial sums with
    // the averaging divisor folded into the scale. The summed codes
    // need ceil(log2(HW)) extra bits.
    out.q.scale = x.q.scale / static_cast<float>(hw);
    int extra = 0;
    while ((1 << extra) < hw)
        ++extra;
    out.q.bits = x.q.bits + extra;
    out.q.isSigned = x.q.isSigned;

    const int32_t *in = x.q.codes.data();
    int32_t *o = out.q.codes.data();
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            const int32_t *plane =
                in + (static_cast<size_t>(ni) * c + ci) * hw;
            int64_t s = 0;
            for (int t = 0; t < hw; ++t)
                s += plane[t];
            o[static_cast<size_t>(ni) * c + ci] =
                static_cast<int32_t>(s);
        }
    }
    return out;
}

Tensor
AvgPool2x2::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() == 4, "AvgPool2x2 expects NCHW");
    TWOINONE_ASSERT(x.dim(2) % 2 == 0 && x.dim(3) % 2 == 0,
                    "AvgPool2x2 needs even spatial dims");
    cachedInShape_ = x.shape();
    int n = x.dim(0), c = x.dim(1), h = x.dim(2) / 2, w = x.dim(3) / 2;
    Tensor out({n, c, h, w});
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            for (int y = 0; y < h; ++y) {
                for (int xx = 0; xx < w; ++xx) {
                    float s = x.at4(ni, ci, 2 * y, 2 * xx) +
                              x.at4(ni, ci, 2 * y, 2 * xx + 1) +
                              x.at4(ni, ci, 2 * y + 1, 2 * xx) +
                              x.at4(ni, ci, 2 * y + 1, 2 * xx + 1);
                    out.at4(ni, ci, y, xx) = 0.25f * s;
                }
            }
        }
    }
    return out;
}

Tensor
AvgPool2x2::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInShape_.empty(),
                    "AvgPool2x2 backward before forward");
    Tensor grad_in(cachedInShape_);
    int n = grad_out.dim(0), c = grad_out.dim(1), h = grad_out.dim(2),
        w = grad_out.dim(3);
    for (int ni = 0; ni < n; ++ni) {
        for (int ci = 0; ci < c; ++ci) {
            for (int y = 0; y < h; ++y) {
                for (int xx = 0; xx < w; ++xx) {
                    float g = 0.25f * grad_out.at4(ni, ci, y, xx);
                    grad_in.at4(ni, ci, 2 * y, 2 * xx) = g;
                    grad_in.at4(ni, ci, 2 * y, 2 * xx + 1) = g;
                    grad_in.at4(ni, ci, 2 * y + 1, 2 * xx) = g;
                    grad_in.at4(ni, ci, 2 * y + 1, 2 * xx + 1) = g;
                }
            }
        }
    }
    return grad_in;
}

Tensor
Flatten::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() >= 2, "Flatten expects rank >= 2");
    cachedInShape_ = x.shape();
    int n = x.dim(0);
    int rest = static_cast<int>(x.size()) / n;
    return x.reshape({n, rest});
}

Tensor
Flatten::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedInShape_.empty(),
                    "Flatten backward before forward");
    return grad_out.reshape(cachedInShape_);
}

} // namespace twoinone
