/**
 * @file
 * Activation layers: ReLU and the activation fake-quantizer (ActQuant).
 *
 * ActQuant is the in-network hook for RPS activation quantization: it
 * applies unsigned linear fake quantization at QuantState::actBits and
 * passes gradients through the straight-through estimator.
 */

#ifndef TWOINONE_NN_ACTIVATION_HH
#define TWOINONE_NN_ACTIVATION_HH

#include "nn/layer.hh"

namespace twoinone {

/**
 * Elementwise rectified linear unit.
 */
class ReLU : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    /** Inference-only rectify: no backward mask is built. */
    QuantAct forwardQuantized(QuantAct &x) override;
    void emitPlanSteps(serve::PlanBuilder &b) override;
    std::string describe() const override { return "ReLU"; }
    LayerSpec spec() const override { return {"relu", {}}; }

    /** Rectify into a caller-owned buffer (the allocation-free plan
     * form; forwardQuantized wraps it). */
    void inferenceInto(const Tensor &x, Tensor &out) const;

  private:
    Tensor cachedMask_;
};

/**
 * Activation fake quantization with STE backward.
 *
 * Identity when the active QuantState::actBits is zero.
 *
 * Range modes: by default the quantization range is dynamic — the
 * scale comes from the input batch's own maximum, one reduction pass
 * per forward. After a calibration pass (quant/calibration.hh) records
 * per-precision range maxima into this layer's banks (indexed by
 * QuantState::bnIndex, mirroring SBN), static-scale mode replaces the
 * reduction with a table lookup, making the cached forward fully
 * quantization-free. The static path is bit-identical to the dynamic
 * one whenever the recorded maximum equals the observed one; with
 * static mode off (the default), behaviour is exactly the dynamic
 * path.
 */
class ActQuant : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    QuantAct forwardQuantized(QuantAct &x) override;
    void emitPlanSteps(serve::PlanBuilder &b) override;
    void collectActQuant(std::vector<ActQuant *> &out) override;
    std::string describe() const override { return "ActQuant"; }
    LayerSpec spec() const override { return {"actquant", {}}; }
    /** Calibration range banks + recorded flags + static-scale mode —
     * persisting them is what lets a reloaded model serve on the
     * quantization-free static-scale path without re-calibrating. */
    void collectState(const std::string &prefix, StateDict &out) override;
    std::string checkState(int required_banks) const override;

    /** @name Allocation-free plan kernels
     * Both are bit-identical to the legacy paths: inferFloatInto
     * reproduces forward(eval)'s values (same range selection, same
     * grid pass, no STE mask), inferQuantInto reproduces
     * forwardQuantized's codes. */
    /** @{ */
    void inferFloatInto(const Tensor &x, Tensor &out);
    void inferQuantInto(const Tensor &x, QuantTensor &out_q);
    /** @} */

    /** @name Calibration interface (driven by Calibrator) */
    /** @{ */
    /** Size the range banks (bank 0 = full precision, unused). */
    void setCalibrationBanks(int banks);
    /** Start recording observed maxima into the active bank; forwards
     * keep quantizing dynamically while recording. */
    void beginCalibration();
    /** Stop recording. */
    void endCalibration();
    /** Enable/disable static-scale mode (needs recorded banks). */
    void setStaticScale(bool on) { staticScale_ = on; }
    bool staticScale() const { return staticScale_; }
    /** Pin the quantization range to [0, max_v] permanently,
     * overriding calibration and dynamic ranges (the network input
     * quantizer's image-range mode: dataset images live in [0, 1] by
     * contract, so no per-batch reduction is needed and results do
     * not depend on batch composition). Pass <= 0 to unpin. */
    void setFixedRange(float max_v) { fixedMax_ = max_v; }
    /** Recorded per-bank maxima (tests/diagnostics). */
    const std::vector<float> &calibrationMax() const { return calibMax_; }
    /** Whether the bank for the active quant state holds a recorded
     * range. */
    bool bankCalibrated(int bank) const;
    /** @} */

  private:
    Tensor cachedMask_;

    std::vector<float> calibMax_;
    std::vector<char> calibRecorded_;
    bool recording_ = false;
    bool staticScale_ = false;
    float fixedMax_ = -1.0f;

    /** The static range for the active state, or a negative value
     * when the dynamic path must run. */
    float staticMaxOrNegative() const;
};

} // namespace twoinone

#endif // TWOINONE_NN_ACTIVATION_HH
