/**
 * @file
 * Activation layers: ReLU and the activation fake-quantizer (ActQuant).
 *
 * ActQuant is the in-network hook for RPS activation quantization: it
 * applies unsigned linear fake quantization at QuantState::actBits and
 * passes gradients through the straight-through estimator.
 */

#ifndef TWOINONE_NN_ACTIVATION_HH
#define TWOINONE_NN_ACTIVATION_HH

#include "nn/layer.hh"

namespace twoinone {

/**
 * Elementwise rectified linear unit.
 */
class ReLU : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string describe() const override { return "ReLU"; }

  private:
    Tensor cachedMask_;
};

/**
 * Activation fake quantization with STE backward.
 *
 * Identity when the active QuantState::actBits is zero.
 */
class ActQuant : public Layer
{
  public:
    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string describe() const override { return "ActQuant"; }

  private:
    Tensor cachedMask_;
};

} // namespace twoinone

#endif // TWOINONE_NN_ACTIVATION_HH
