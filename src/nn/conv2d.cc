/**
 * @file
 * Conv2d implementation (im2col + GEMM, explicit gradients).
 */

#include "nn/conv2d.hh"

#include <cmath>
#include <sstream>

#include "tensor/ops.hh"

namespace twoinone {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, bool bias, Rng &rng)
    : inChannels_(in_channels), outChannels_(out_channels), kernel_(kernel),
      stride_(stride), padding_(padding), hasBias_(bias),
      weight_(Tensor::randn(
          {out_channels, in_channels, kernel, kernel}, rng,
          static_cast<float>(
              std::sqrt(2.0 / (in_channels * kernel * kernel))))),
      bias_(bias ? Tensor::zeros({out_channels}) : Tensor())
{
    TWOINONE_ASSERT(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                        stride > 0 && padding >= 0,
                    "bad Conv2d geometry");
}

int
Conv2d::outSize(int in_size) const
{
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
}

Tensor
Conv2d::im2col(const Tensor &x, int oh, int ow) const
{
    int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    int patch = c * kernel_ * kernel_;
    Tensor cols({n * oh * ow, patch});
    float *out = cols.data();
    const float *in = x.data();
    for (int ni = 0; ni < n; ++ni) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                float *dst = out +
                             (static_cast<size_t>(ni) * oh * ow +
                              static_cast<size_t>(oy) * ow + ox) *
                                 patch;
                int iy0 = oy * stride_ - padding_;
                int ix0 = ox * stride_ - padding_;
                for (int ci = 0; ci < c; ++ci) {
                    const float *src =
                        in + (static_cast<size_t>(ni) * c + ci) * h * w;
                    for (int ky = 0; ky < kernel_; ++ky) {
                        int iy = iy0 + ky;
                        for (int kx = 0; kx < kernel_; ++kx) {
                            int ix = ix0 + kx;
                            float v = 0.0f;
                            if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                v = src[static_cast<size_t>(iy) * w + ix];
                            *dst++ = v;
                        }
                    }
                }
            }
        }
    }
    return cols;
}

Tensor
Conv2d::col2im(const Tensor &cols, const std::vector<int> &in_shape, int oh,
               int ow) const
{
    int n = in_shape[0], c = in_shape[1], h = in_shape[2], w = in_shape[3];
    int patch = c * kernel_ * kernel_;
    Tensor x(in_shape);
    float *out = x.data();
    const float *in = cols.data();
    for (int ni = 0; ni < n; ++ni) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                const float *src = in +
                                   (static_cast<size_t>(ni) * oh * ow +
                                    static_cast<size_t>(oy) * ow + ox) *
                                       patch;
                int iy0 = oy * stride_ - padding_;
                int ix0 = ox * stride_ - padding_;
                for (int ci = 0; ci < c; ++ci) {
                    float *dst =
                        out + (static_cast<size_t>(ni) * c + ci) * h * w;
                    for (int ky = 0; ky < kernel_; ++ky) {
                        int iy = iy0 + ky;
                        for (int kx = 0; kx < kernel_; ++kx) {
                            int ix = ix0 + kx;
                            float v = *src++;
                            if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                dst[static_cast<size_t>(iy) * w + ix] += v;
                        }
                    }
                }
            }
        }
    }
    return x;
}

Tensor
Conv2d::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() == 4 && x.dim(1) == inChannels_,
                    "Conv2d input shape mismatch");
    int n = x.dim(0);
    int oh = outSize(x.dim(2));
    int ow = outSize(x.dim(3));
    TWOINONE_ASSERT(oh > 0 && ow > 0, "Conv2d output collapsed to zero");

    // Fake-quantize the master weights when a precision is active.
    QuantResult wq =
        LinearQuantizer::fakeQuantSymmetric(weight_.value, quant_.weightBits);
    cachedSteMask_ = wq.steMask;

    cachedCols_ = im2col(x, oh, ow);
    cachedInShape_ = x.shape();
    cachedOh_ = oh;
    cachedOw_ = ow;

    int patch = inChannels_ * kernel_ * kernel_;
    Tensor w2d = wq.values.reshape({outChannels_, patch});
    // [N*OH*OW, patch] x [K, patch]^T -> [N*OH*OW, K]
    Tensor out2d = ops::matmulTransposeB(cachedCols_, w2d);

    Tensor out({n, outChannels_, oh, ow});
    for (int ni = 0; ni < n; ++ni) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                int row = (ni * oh + oy) * ow + ox;
                for (int k = 0; k < outChannels_; ++k) {
                    float v = out2d.at2(row, k);
                    if (hasBias_)
                        v += bias_.value[static_cast<size_t>(k)];
                    out.at4(ni, k, oy, ox) = v;
                }
            }
        }
    }
    return out;
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedCols_.empty(), "Conv2d backward before forward");
    int n = grad_out.dim(0);
    int oh = cachedOh_, ow = cachedOw_;
    TWOINONE_ASSERT(grad_out.dim(1) == outChannels_ && grad_out.dim(2) == oh &&
                        grad_out.dim(3) == ow,
                    "Conv2d grad_out shape mismatch");
    int patch = inChannels_ * kernel_ * kernel_;

    // Reorder grad_out into [N*OH*OW, K].
    Tensor g2d({n * oh * ow, outChannels_});
    for (int ni = 0; ni < n; ++ni) {
        for (int oy = 0; oy < oh; ++oy) {
            for (int ox = 0; ox < ow; ++ox) {
                int row = (ni * oh + oy) * ow + ox;
                for (int k = 0; k < outChannels_; ++k)
                    g2d.at2(row, k) = grad_out.at4(ni, k, oy, ox);
            }
        }
    }

    // Weight gradient: dW[k, patch] = g2d^T x cols.
    Tensor dw2d = ops::matmulTransposeA(g2d, cachedCols_);
    // STE: gradients flow to master weights where quantization did not
    // clip.
    for (int k = 0; k < outChannels_; ++k) {
        for (int p = 0; p < patch; ++p) {
            size_t idx = static_cast<size_t>(k) * patch + p;
            weight_.grad[idx] += dw2d.at2(k, p) * cachedSteMask_[idx];
        }
    }

    if (hasBias_) {
        for (int k = 0; k < outChannels_; ++k) {
            double s = 0.0;
            for (int r = 0; r < n * oh * ow; ++r)
                s += g2d.at2(r, k);
            bias_.grad[static_cast<size_t>(k)] += static_cast<float>(s);
        }
    }

    // Input gradient: dCols = g2d x Wq; then col2im.
    QuantResult wq =
        LinearQuantizer::fakeQuantSymmetric(weight_.value, quant_.weightBits);
    Tensor w2d = wq.values.reshape({outChannels_, patch});
    Tensor dcols = ops::matmul(g2d, w2d);
    return col2im(dcols, cachedInShape_, oh, ow);
}

void
Conv2d::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&weight_);
    if (hasBias_)
        out.push_back(&bias_);
}

std::string
Conv2d::describe() const
{
    std::ostringstream oss;
    oss << "Conv2d(" << inChannels_ << "->" << outChannels_ << ", k="
        << kernel_ << ", s=" << stride_ << ", p=" << padding_ << ")";
    return oss.str();
}

} // namespace twoinone
