/**
 * @file
 * Conv2d implementation (im2col + GEMM, explicit gradients).
 *
 * The GEMM layout is fused with the NCHW tensor layout: forward runs
 * one [K, C*R*S] x [OH*OW, C*R*S]^T product per image whose output
 * lands directly in that image's [K, OH, OW] slab (bias added in the
 * same pass), and backward reads grad_out's per-image [K, OH*OW]
 * slabs in place. There is no [N*OH*OW, K] <-> NCHW repack loop
 * anywhere. Batch images are independent, so im2col / col2im / the
 * per-image GEMMs parallelize over the batch dimension; the weight
 * gradient accumulates over images in fixed batch order to keep
 * results independent of the thread count.
 */

#include "nn/conv2d.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <sstream>

#include "common/thread_pool.hh"
#include "serve/execution_plan.hh"
#include "tensor/gemm.hh"
#include "tensor/ops.hh"

namespace twoinone {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, bool bias, Rng &rng)
    : inChannels_(in_channels), outChannels_(out_channels), kernel_(kernel),
      stride_(stride), padding_(padding), hasBias_(bias),
      weight_(Tensor::randn(
          {out_channels, in_channels, kernel, kernel}, rng,
          static_cast<float>(
              std::sqrt(2.0 / (in_channels * kernel * kernel))))),
      bias_(bias ? Tensor::zeros({out_channels}) : Tensor())
{
    TWOINONE_ASSERT(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                        stride > 0 && padding >= 0,
                    "bad Conv2d geometry");
}

int
Conv2d::outSize(int in_size) const
{
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
}

void
Conv2d::im2colInto(const Tensor &x, int oh, int ow, Tensor &cols) const
{
    int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    int patch = c * kernel_ * kernel_;
    cols.ensure({n * oh * ow, patch});
    float *out = cols.data();
    const float *in = x.data();
    ThreadPool::global().parallelFor(0, n, 1, [&](int64_t nlo,
                                                  int64_t nhi) {
        for (int64_t ni = nlo; ni < nhi; ++ni) {
            for (int oy = 0; oy < oh; ++oy) {
                for (int ox = 0; ox < ow; ++ox) {
                    float *dst = out +
                                 (static_cast<size_t>(ni) * oh * ow +
                                  static_cast<size_t>(oy) * ow + ox) *
                                     patch;
                    int iy0 = oy * stride_ - padding_;
                    int ix0 = ox * stride_ - padding_;
                    for (int ci = 0; ci < c; ++ci) {
                        const float *src =
                            in + (static_cast<size_t>(ni) * c + ci) * h * w;
                        for (int ky = 0; ky < kernel_; ++ky) {
                            int iy = iy0 + ky;
                            for (int kx = 0; kx < kernel_; ++kx) {
                                int ix = ix0 + kx;
                                float v = 0.0f;
                                if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                    v = src[static_cast<size_t>(iy) * w +
                                            ix];
                                *dst++ = v;
                            }
                        }
                    }
                }
            }
        }
    });
}

void
Conv2d::col2imInto(const Tensor &cols, int oh, int ow, Tensor &x) const
{
    int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
    int patch = c * kernel_ * kernel_;
    float *out = x.data();
    const float *in = cols.data();
    ThreadPool::global().parallelFor(0, n, 1, [&](int64_t nlo,
                                                  int64_t nhi) {
        for (int64_t ni = nlo; ni < nhi; ++ni) {
            for (int oy = 0; oy < oh; ++oy) {
                for (int ox = 0; ox < ow; ++ox) {
                    const float *src = in +
                                       (static_cast<size_t>(ni) * oh * ow +
                                        static_cast<size_t>(oy) * ow + ox) *
                                           patch;
                    int iy0 = oy * stride_ - padding_;
                    int ix0 = ox * stride_ - padding_;
                    for (int ci = 0; ci < c; ++ci) {
                        float *dst =
                            out + (static_cast<size_t>(ni) * c + ci) * h * w;
                        for (int ky = 0; ky < kernel_; ++ky) {
                            int iy = iy0 + ky;
                            for (int kx = 0; kx < kernel_; ++kx) {
                                int ix = ix0 + kx;
                                float v = *src++;
                                if (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                    dst[static_cast<size_t>(iy) * w + ix] +=
                                        v;
                            }
                        }
                    }
                }
            }
        }
    });
}

Tensor
Conv2d::forward(const Tensor &x, bool train)
{
    (void)train;
    TWOINONE_ASSERT(x.ndim() == 4 && x.dim(1) == inChannels_,
                    "Conv2d input shape mismatch");
    int n = x.dim(0);
    int oh = outSize(x.dim(2));
    int ow = outSize(x.dim(3));
    TWOINONE_ASSERT(oh > 0 && ow > 0, "Conv2d output collapsed to zero");

    // Quantized weights: the RpsEngine-installed cache entry when
    // present, else a fresh fake-quantization of the masters. A cache
    // hit keeps a pointer into the engine-owned entry (stable while
    // installed) instead of copying the weight-sized mask.
    QuantResult wq_local;
    const QuantResult &wq = quantizedWeight(quant_.weightBits, wq_local);
    if (&wq == weightCache()) {
        steMask_ = &wq.steMask;
    } else {
        ownedSteMask_ = wq.steMask;
        steMask_ = &ownedSteMask_;
    }

    im2colInto(x, oh, ow, cachedCols_);
    cachedInShape_ = x.shape();
    cachedOh_ = oh;
    cachedOw_ = ow;

    // [K, C, R, S] is already contiguous [K, patch]: feed the (cached)
    // quantized buffer to the GEMM directly, no reshape copy.
    Tensor out({n, outChannels_, oh, ow});
    runFloatGemm(wq.values.data(), n, oh, ow, cachedCols_, out);
    return out;
}

void
Conv2d::runFloatGemm(const float *w2d, int n, int oh, int ow,
                     const Tensor &cols, Tensor &out) const
{
    int patch = inChannels_ * kernel_ * kernel_;
    int ohw = oh * ow;
    const float *bias = hasBias_ ? bias_.value.data() : nullptr;

    // Per image: out[K, OH*OW] = W[K, patch] * cols_n[OH*OW, patch]^T,
    // written straight into the NCHW slab with the bias fused in.
    ThreadPool::global().parallelFor(0, n, 1, [&](int64_t nlo,
                                                  int64_t nhi) {
        for (int64_t ni = nlo; ni < nhi; ++ni) {
            const float *cols_n = cols.data() +
                                  static_cast<size_t>(ni) * ohw * patch;
            float *out_n = out.data() +
                           static_cast<size_t>(ni) * outChannels_ * ohw;
            gemm::sgemm(false, true, outChannels_, ohw, patch, w2d,
                        patch, cols_n, patch, out_n, ohw,
                        /*accumulate=*/false, bias);
        }
    });
}

void
Conv2d::inferFloatInto(const Tensor &x, QuantResult &wq_scratch,
                       Tensor &cols, Tensor &out)
{
    TWOINONE_ASSERT(x.ndim() == 4 && x.dim(1) == inChannels_,
                    "Conv2d input shape mismatch");
    int n = x.dim(0);
    int oh = outSize(x.dim(2));
    int ow = outSize(x.dim(3));
    TWOINONE_ASSERT(oh > 0 && ow > 0, "Conv2d output collapsed to zero");

    // At full precision the masters feed the GEMM directly (the
    // fake-quant identity pass would only copy them); at quantized
    // precisions the same cache/requantize dispatch as forward().
    const float *w2d;
    if (quant_.weightBits <= 0) {
        w2d = weight_.value.data();
    } else {
        const QuantResult &wq =
            quantizedWeight(quant_.weightBits, wq_scratch);
        w2d = wq.values.data();
    }
    im2colInto(x, oh, ow, cols);
    out.ensure({n, outChannels_, oh, ow});
    runFloatGemm(w2d, n, oh, ow, cols, out);
}

namespace {

/**
 * One image's integer im2col: [C,H,W] codes -> [OH*OW, C*R*S] operand
 * columns (zero padding = code 0). A standalone function with value
 * parameters: the hot gather runs free of the batch dispatch's
 * closure indirection, and the per-(ci, ky) kx runs are branchless —
 * zero-fill the out-of-image prefix/suffix, cast-copy the interior.
 */
template <typename T>
void
im2colCodesImage(const int32_t *in, int c, int h, int w, int oh, int ow,
                 int kernel, int stride, int padding, T *out)
{
    for (int oy = 0; oy < oh; ++oy) {
        int iy0 = oy * stride - padding;
        for (int ox = 0; ox < ow; ++ox) {
            int ix0 = ox * stride - padding;
            // kx bounds shared by every (ci, ky): ix0+kx in [0, w),
            // clamped to the kernel (padding may exceed it).
            int kx_lo = ix0 < 0 ? -ix0 : 0;
            if (kx_lo > kernel)
                kx_lo = kernel;
            int kx_hi = kernel < w - ix0 ? kernel : w - ix0;
            if (kx_hi < kx_lo)
                kx_hi = kx_lo;
            T *dst = out + (static_cast<size_t>(oy) * ow + ox) *
                               (static_cast<size_t>(c) * kernel * kernel);
            for (int ci = 0; ci < c; ++ci) {
                const int32_t *plane =
                    in + static_cast<size_t>(ci) * h * w;
                for (int ky = 0; ky < kernel; ++ky) {
                    int iy = iy0 + ky;
                    T *d = dst +
                           (static_cast<size_t>(ci) * kernel + ky) *
                               kernel;
                    if (iy < 0 || iy >= h) {
                        for (int kx = 0; kx < kernel; ++kx)
                            d[kx] = 0;
                        continue;
                    }
                    const int32_t *src =
                        plane + static_cast<size_t>(iy) * w + ix0;
                    for (int kx = 0; kx < kx_lo; ++kx)
                        d[kx] = 0;
                    for (int kx = kx_lo; kx < kx_hi; ++kx)
                        d[kx] = static_cast<T>(src[kx]);
                    for (int kx = kx_hi; kx < kernel; ++kx)
                        d[kx] = 0;
                }
            }
        }
    }
}

/**
 * im2col over integer codes: [N,C,H,W] codes -> [N*OH*OW, C*R*S]
 * packed operand columns, parallel over the batch like the float
 * im2col.
 */
template <typename T>
void
im2colCodes(const int32_t *in, int n, int c, int h, int w, int oh, int ow,
            int kernel, int stride, int padding, T *out)
{
    int patch = c * kernel * kernel;
    ThreadPool::global().parallelFor(0, n, 1, [=](int64_t nlo,
                                                  int64_t nhi) {
        for (int64_t ni = nlo; ni < nhi; ++ni) {
            im2colCodesImage(in + static_cast<size_t>(ni) * c * h * w, c,
                             h, w, oh, ow, kernel, stride, padding,
                             out + static_cast<size_t>(ni) * oh * ow *
                                       patch);
        }
    });
}

/** Pack int32 codes into a narrower operand buffer. */
template <typename T>
void
packCodes(const std::vector<int32_t> &src, std::vector<T> &dst)
{
    dst.resize(src.size());
    for (size_t i = 0; i < src.size(); ++i)
        dst[i] = static_cast<T>(src[i]);
}

/**
 * Build the per-image im2col gather table: for every [position,
 * patch] column element the source offset within one [C,H,W] image
 * (-1 for zero padding). Geometry-only — computed once per compiled
 * input shape and reused by every serving forward.
 */
void
buildGatherTable(int c, int h, int w, int oh, int ow, int kernel,
                 int stride, int padding, std::vector<int32_t> &idx)
{
    int patch = c * kernel * kernel;
    idx.resize(static_cast<size_t>(oh) * ow * patch);
    int32_t *out = idx.data();
    for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
            int iy0 = oy * stride - padding;
            int ix0 = ox * stride - padding;
            for (int ci = 0; ci < c; ++ci) {
                for (int ky = 0; ky < kernel; ++ky) {
                    int iy = iy0 + ky;
                    for (int kx = 0; kx < kernel; ++kx) {
                        int ix = ix0 + kx;
                        bool in_img = iy >= 0 && iy < h && ix >= 0 &&
                                      ix < w;
                        *out++ = in_img
                                     ? (static_cast<int32_t>(ci) * h +
                                        iy) * w + ix
                                     : -1;
                    }
                }
            }
        }
    }
}

/**
 * The process-wide gather-table registry: tables are a pure function
 * of the conv/input geometry, so every scratch block (plan replicas,
 * per-layer legacy scratch) of the same geometry shares one
 * heap-allocated table instead of building its own copy — the big
 * per-worker arena saving for multi-replica serving. Entries are held
 * weakly: tables die with their last consumer instead of accumulating
 * for the life of the process. Mutex-guarded — first touch can come
 * from concurrent serving workers.
 */
std::shared_ptr<const std::vector<int32_t>>
sharedGatherTable(int c, int h, int w, int oh, int ow, int kernel,
                  int stride, int padding)
{
    using Key = std::array<int, 8>;
    static std::mutex mu;
    static std::map<Key, std::weak_ptr<const std::vector<int32_t>>> reg;

    Key key = {c, h, w, oh, ow, kernel, stride, padding};
    std::lock_guard<std::mutex> lock(mu);
    auto it = reg.find(key);
    if (it != reg.end()) {
        if (auto table = it->second.lock())
            return table;
    }
    // Miss: before building, sweep out map nodes whose tables died —
    // builds are rare, and without the sweep a long-lived process
    // would accumulate one dead node per geometry ever served.
    for (auto iter = reg.begin(); iter != reg.end();) {
        if (iter->second.expired())
            iter = reg.erase(iter);
        else
            ++iter;
    }
    auto table = std::make_shared<std::vector<int32_t>>();
    buildGatherTable(c, h, w, oh, ow, kernel, stride, padding, *table);
    reg[key] = table;
    return table;
}

/**
 * im2col via the precomputed gather table (serving path): one flat
 * indexed copy per image, parallel over the batch. Identical output
 * to im2colCodes — the table encodes the same source elements and
 * zero padding.
 */
template <typename T>
void
im2colGather(const int32_t *in, int n, size_t img_elems,
             const std::vector<int32_t> &idx, T *out)
{
    const int32_t *gi = idx.data();
    const size_t cols = idx.size();
    ThreadPool::global().parallelFor(0, n, 1, [=](int64_t nlo,
                                                  int64_t nhi) {
        for (int64_t ni = nlo; ni < nhi; ++ni) {
            const int32_t *src = in + static_cast<size_t>(ni) * img_elems;
            T *dst = out + static_cast<size_t>(ni) * cols;
            for (size_t t = 0; t < cols; ++t) {
                int32_t ix = gi[t];
                dst[t] = static_cast<T>(ix >= 0 ? src[ix] : 0);
            }
        }
    });
}

} // namespace

bool
Conv2d::intPathEligible(const QuantTensor &xq) const
{
    // The integer path needs weight quantization on and unsigned
    // activation codes of a width the narrow kernels take; anything
    // else composes through the float fallback.
    return quant_.weightBits > 0 && !xq.empty() && !xq.isSigned &&
           xq.bits <= 16;
}

QuantAct
Conv2d::forwardQuantized(QuantAct &x)
{
    if (!x.hasCodes() || !intPathEligible(x.q))
        return Layer::forwardQuantized(x);

    QuantTensor wlocal;
    const QuantTensor &wq = quantizedCodes(quant_.weightBits, wlocal);
    Tensor out;
    inferQuantInto(x.q, wq, iscratch_, out);
    return QuantAct(std::move(out));
}

void
Conv2d::inferQuantInto(const QuantTensor &xq, const QuantTensor &wq,
                       IntGemmScratch &s, Tensor &out, bool serve)
{
    int wbits = wq.bits;
    TWOINONE_ASSERT(xq.shape.size() == 4 && xq.shape[1] == inChannels_,
                    "Conv2d quantized input shape mismatch");
    int n = xq.shape[0], h = xq.shape[2], w = xq.shape[3];
    int oh = outSize(h), ow = outSize(w);
    TWOINONE_ASSERT(oh > 0 && ow > 0, "Conv2d output collapsed to zero");

    int patch = inChannels_ * kernel_ * kernel_;
    int ohw = oh * ow;
    s.acc.resize(static_cast<size_t>(n) * outChannels_ * ohw);
    int64_t *acc = s.acc.data();

    bool narrow8 = wbits <= 8 && xq.bits <= 8;
    bool pack_valid = s.packedFrom == wq.codes.data() &&
                      s.packedBits == wbits &&
                      s.packedVersion == masterWeightVersion();
    if (!pack_valid)
        s.packedKinds = 0;

    // Tile-packed fast path: an engine-installed pack when one matches
    // the codes in play, else a scratch-built pack under the same key.
    // The reference staging below stays the datapath under the naive
    // backend and the forced-scalar tier, so the packed kernels always
    // have an in-tree reference to diff against.
    const gemm::PackedIntWeights *pack = nullptr;
    const bool use_packed =
        gemm::activeBackend() == gemm::Backend::Blocked &&
        gemm::activeIsaTier() != gemm::IsaTier::Scalar;
    if (use_packed) {
        const gemm::PackedIntWeights *inst = weightPacked();
        if (inst && !inst->empty() && inst->bits == wbits &&
            inst->m == outChannels_ && inst->k == patch &&
            weightCodes() == &wq) {
            pack = inst;
        } else {
            if (!(s.packedKinds & IntGemmScratch::kPackTiled)) {
                gemm::packWeights(wq.codes.data(), outChannels_, patch,
                                  wbits, s.wpack);
                s.packedKinds |= IntGemmScratch::kPackTiled;
            }
            pack = &s.wpack;
        }
    }
    if (serve && (s.gatherH != h || s.gatherW != w || !s.gather)) {
        // Compiled-geometry gather table, shared across every scratch
        // block (plan replica) of this geometry: fetched from the
        // registry on first touch of this input shape, then reused by
        // every serving forward.
        s.gather = sharedGatherTable(inChannels_, h, w, oh, ow, kernel_,
                                     stride_, padding_);
        s.gatherH = h;
        s.gatherW = w;
    }
    size_t img_elems = static_cast<size_t>(inChannels_) * h * w;
    if (narrow8) {
        if (!pack && !(s.packedKinds & IntGemmScratch::kPackW8)) {
            packCodes(wq.codes, s.w8);
            s.packedKinds |= IntGemmScratch::kPackW8;
        }
        s.a8.resize(static_cast<size_t>(n) * ohw * patch);
        if (serve)
            im2colGather(xq.codes.data(), n, img_elems, *s.gather,
                         s.a8.data());
        else
            im2colCodes(xq.codes.data(), n, inChannels_, h, w, oh, ow,
                        kernel_, stride_, padding_, s.a8.data());
    } else {
        if (!pack && !(s.packedKinds & IntGemmScratch::kPackW16)) {
            packCodes(wq.codes, s.w16);
            s.packedKinds |= IntGemmScratch::kPackW16;
        }
        s.a16.resize(static_cast<size_t>(n) * ohw * patch);
        if (serve)
            im2colGather(xq.codes.data(), n, img_elems, *s.gather,
                         s.a16.data());
        else
            im2colCodes(xq.codes.data(), n, inChannels_, h, w, oh, ow,
                        kernel_, stride_, padding_, s.a16.data());
    }
    s.packedFrom = wq.codes.data();
    s.packedBits = wbits;
    s.packedVersion = masterWeightVersion();

    // Per image: acc[K, OH*OW] = Wq[K, patch] * cols_n[OH*OW, patch]^T
    // in exact integer arithmetic (igemm inlines when nested here).
    // The tile-packed kernels serve every width on the fast path;
    // results are bit-identical (exact integer accumulation).
    ThreadPool::global().parallelFor(0, n, 1, [&](int64_t nlo,
                                                  int64_t nhi) {
        for (int64_t ni = nlo; ni < nhi; ++ni) {
            int64_t *acc_n =
                acc + static_cast<size_t>(ni) * outChannels_ * ohw;
            if (narrow8) {
                const uint8_t *cols_n =
                    s.a8.data() + static_cast<size_t>(ni) * ohw * patch;
                if (pack) {
                    gemm::igemmPackedTransB(*pack, ohw, cols_n, patch,
                                            acc_n, ohw, xq.bits);
                } else if (serve) {
                    gemm::igemmTransB8Serve(outChannels_, ohw, patch,
                                            s.w8.data(), patch, cols_n,
                                            patch, acc_n, ohw, wbits,
                                            xq.bits);
                } else {
                    gemm::igemmTransB(outChannels_, ohw, patch,
                                      s.w8.data(), patch, cols_n, patch,
                                      acc_n, ohw, wbits, xq.bits);
                }
            } else {
                const uint16_t *cols_n =
                    s.a16.data() + static_cast<size_t>(ni) * ohw * patch;
                if (pack) {
                    gemm::igemmPackedTransB(*pack, ohw, cols_n, patch,
                                            acc_n, ohw, xq.bits);
                } else {
                    gemm::igemmTransB(outChannels_, ohw, patch,
                                      s.w16.data(), patch, cols_n, patch,
                                      acc_n, ohw, wbits, xq.bits);
                }
            }
        }
    });

    // Dequantize: out = acc * (w_scale * a_scale) + bias[k].
    float dq = wq.scale * xq.scale;
    const float *bias = hasBias_ ? bias_.value.data() : nullptr;
    out.ensure({n, outChannels_, oh, ow});
    float *o = out.data();
    int64_t rows = static_cast<int64_t>(n) * outChannels_;
    int64_t grain_rows = std::max<int64_t>(1, (1 << 15) / ohw);
    ops::gatedParallelFor(rows, grain_rows, [&](int64_t lo, int64_t hi) {
        for (int64_t row = lo; row < hi; ++row) {
            float b = bias ? bias[row % outChannels_] : 0.0f;
            const int64_t *arow = acc + row * ohw;
            float *orow = o + row * ohw;
            for (int t = 0; t < ohw; ++t)
                orow[t] = static_cast<float>(arow[t]) * dq + b;
        }
    });

    if (quantTrace_) {
        tracedW_ = wq;
        tracedA_ = xq;
        tracedAcc_ = s.acc;
    }
}

void
Conv2d::emitPlanSteps(serve::PlanBuilder &b)
{
    int in = b.top();
    int out = b.newValue();
    int sid = b.newScratch();
    if (b.mode() == serve::PlanMode::Quantized) {
        b.addStep("conv[int] " + describe(),
                  [this, in, out, sid](serve::ExecutionPlan &p) {
                      serve::Value &vi = p.value(in);
                      serve::Value &vo = p.value(out);
                      serve::LayerScratch &ls = p.scratch(sid);
                      vo.reset();
                      if (vi.hasCodes && intPathEligible(vi.q)) {
                          const QuantTensor &wq = quantizedCodes(
                              quant_.weightBits, ls.wcodes);
                          inferQuantInto(vi.q, wq, ls.ig, vo.dense,
                                         /*serve=*/true);
                      } else {
                          inferFloatInto(vi.denseView(), ls.wq, ls.t0,
                                         vo.dense);
                      }
                      vo.denseReady = true;
                  });
    } else {
        b.addStep("conv " + describe(),
                  [this, in, out, sid](serve::ExecutionPlan &p) {
                      serve::Value &vi = p.value(in);
                      serve::Value &vo = p.value(out);
                      serve::LayerScratch &ls = p.scratch(sid);
                      vo.reset();
                      inferFloatInto(vi.denseView(), ls.wq, ls.t0,
                                     vo.dense);
                      vo.denseReady = true;
                  });
    }
    b.setTop(out);
}

Tensor
Conv2d::backward(const Tensor &grad_out)
{
    TWOINONE_ASSERT(!cachedCols_.empty(), "Conv2d backward before forward");
    int n = grad_out.dim(0);
    int oh = cachedOh_, ow = cachedOw_;
    TWOINONE_ASSERT(grad_out.dim(1) == outChannels_ && grad_out.dim(2) == oh &&
                        grad_out.dim(3) == ow,
                    "Conv2d grad_out shape mismatch");
    int patch = inChannels_ * kernel_ * kernel_;
    int ohw = oh * ow;
    const float *g = grad_out.data();

    // Weight gradient: dW[K, patch] = sum_n grad_n[K, OH*OW] *
    // cols_n[OH*OW, patch]. Fixed batch order (serial over n, GEMM
    // parallel inside) keeps the accumulation deterministic.
    dwBuf_.ensure({outChannels_, patch});
    for (int ni = 0; ni < n; ++ni) {
        const float *grad_n = g + static_cast<size_t>(ni) * outChannels_ *
                                      ohw;
        const float *cols_n =
            cachedCols_.data() + static_cast<size_t>(ni) * ohw * patch;
        gemm::sgemm(false, false, outChannels_, patch, ohw, grad_n, ohw,
                    cols_n, patch, dwBuf_.data(), patch,
                    /*accumulate=*/ni > 0);
    }
    // STE: gradients flow to master weights where quantization did not
    // clip.
    {
        TWOINONE_ASSERT(steMask_ != nullptr,
                        "Conv2d backward before forward");
        float *wgrad = weight_.grad.data();
        const float *dw = dwBuf_.data();
        const float *mask = steMask_->data();
        ThreadPool::global().parallelFor(
            0, static_cast<int64_t>(weight_.grad.size()), 1 << 15,
            [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i)
                    wgrad[i] += dw[i] * mask[i];
            });
    }

    if (hasBias_) {
        // Per-channel reduction straight off the NCHW slabs; each
        // channel sums its images in batch order.
        float *bgrad = bias_.grad.data();
        ThreadPool::global().parallelFor(0, outChannels_, 1,
                                         [&](int64_t klo, int64_t khi) {
            for (int64_t k = klo; k < khi; ++k) {
                double s = 0.0;
                for (int ni = 0; ni < n; ++ni) {
                    const float *p =
                        g + (static_cast<size_t>(ni) * outChannels_ + k) *
                                ohw;
                    for (int t = 0; t < ohw; ++t)
                        s += p[t];
                }
                bgrad[k] += static_cast<float>(s);
            }
        });
    }

    // Input gradient: dcols_n[OH*OW, patch] = grad_n[K, OH*OW]^T *
    // Wq[K, patch]; then col2im. Per-image outputs are disjoint.
    QuantResult wq_local;
    const QuantResult &wq = quantizedWeight(quant_.weightBits, wq_local);
    const float *w2d = wq.values.data();
    dcolsBuf_.ensure({n * ohw, patch});
    ThreadPool::global().parallelFor(0, n, 1, [&](int64_t nlo,
                                                  int64_t nhi) {
        for (int64_t ni = nlo; ni < nhi; ++ni) {
            const float *grad_n =
                g + static_cast<size_t>(ni) * outChannels_ * ohw;
            float *dcols_n =
                dcolsBuf_.data() + static_cast<size_t>(ni) * ohw * patch;
            gemm::sgemm(true, false, ohw, patch, outChannels_, grad_n, ohw,
                        w2d, patch, dcols_n, patch);
        }
    });

    Tensor dx(cachedInShape_);
    col2imInto(dcolsBuf_, oh, ow, dx);
    return dx;
}

void
Conv2d::collectParameters(std::vector<Parameter *> &out)
{
    out.push_back(&weight_);
    if (hasBias_)
        out.push_back(&bias_);
}

void
Conv2d::collectWeightQuantized(std::vector<WeightQuantizedLayer *> &out)
{
    out.push_back(this);
}

void
Conv2d::setWeightCache(const QuantResult *cache)
{
    // Clearing the cache may precede freeing its storage; drop the
    // mask pointer into it so a stale backward fails fast instead of
    // reading freed memory. A mask owned by the layer stays valid.
    if (cache == nullptr && steMask_ != &ownedSteMask_)
        steMask_ = nullptr;
    WeightQuantizedLayer::setWeightCache(cache);
}

std::string
Conv2d::describe() const
{
    std::ostringstream oss;
    oss << "Conv2d(" << inChannels_ << "->" << outChannels_ << ", k="
        << kernel_ << ", s=" << stride_ << ", p=" << padding_ << ")";
    return oss.str();
}

LayerSpec
Conv2d::spec() const
{
    return {"conv2d",
            {inChannels_, outChannels_, kernel_, stride_, padding_,
             hasBias_ ? 1 : 0}};
}

void
Conv2d::collectState(const std::string &prefix, StateDict &out)
{
    out.push_back({prefix + ".weight", &weight_.value, nullptr, nullptr,
                   nullptr});
    if (hasBias_)
        out.push_back({prefix + ".bias", &bias_.value, nullptr, nullptr,
                       nullptr});
}

} // namespace twoinone
