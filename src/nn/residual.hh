/**
 * @file
 * Pre-activation residual block (He et al.), the building block of
 * PreActResNet-18 / WideResNet-32 that the paper evaluates RPS on.
 *
 * Structure (with optional projection shortcut on shape change):
 *
 *   h  = ActQuant(ReLU(SBN1(x)))
 *   sc = hasProjection ? ConvSc(h) : x
 *   y  = Conv2(ActQuant(ReLU(SBN2(Conv1(h))))) + sc
 *
 * The block composes the library's quantization-aware sub-layers, so a
 * precision switch flows into every conv and both SBN banks.
 */

#ifndef TWOINONE_NN_RESIDUAL_HH
#define TWOINONE_NN_RESIDUAL_HH

#include "nn/activation.hh"
#include "nn/batchnorm.hh"
#include "nn/conv2d.hh"

namespace twoinone {

/**
 * Pre-activation basic residual block.
 */
class PreActBlock : public Layer
{
  public:
    /**
     * @param in_channels Input channels.
     * @param out_channels Output channels.
     * @param stride Stride of the first conv (2 = downsample).
     * @param bn_banks SBN bank count (precision candidates + 1).
     * @param rng Initialization stream.
     */
    PreActBlock(int in_channels, int out_channels, int stride, int bn_banks,
                Rng &rng);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    /** Quantized-inference forward: SBN/ReLU/residual-add in float,
     * ActQuant emitting codes, convs on the integer datapath. */
    QuantAct forwardQuantized(QuantAct &x) override;
    /** Composite emitter: fused SBN+ReLU steps, ActQuant code
     * emission, conv steps for both branches, and one residual-join
     * step adding the branch outputs in the arena. */
    void emitPlanSteps(serve::PlanBuilder &b) override;
    void collectParameters(std::vector<Parameter *> &out) override;
    void collectWeightQuantized(
        std::vector<WeightQuantizedLayer *> &out) override;
    void collectActQuant(std::vector<ActQuant *> &out) override;
    void setQuantState(const QuantState &qs) override;
    std::string describe() const override;
    LayerSpec spec() const override;
    void collectState(const std::string &prefix, StateDict &out) override;
    std::string checkState(int required_banks) const override;

    bool hasProjection() const { return static_cast<bool>(convSc_); }

  private:
    SwitchableBatchNorm2d bn1_;
    ReLU relu1_;
    ActQuant q1_;
    Conv2d conv1_;
    SwitchableBatchNorm2d bn2_;
    ReLU relu2_;
    ActQuant q2_;
    Conv2d conv2_;
    std::unique_ptr<Conv2d> convSc_;

    int inChannels_;
    int outChannels_;
    int stride_;
};

} // namespace twoinone

#endif // TWOINONE_NN_RESIDUAL_HH
