/**
 * @file
 * Loss functions: softmax cross-entropy (training and PGD/FGSM
 * objectives) and the Carlini-Wagner margin loss (CW-Inf attack).
 */

#ifndef TWOINONE_NN_LOSS_HH
#define TWOINONE_NN_LOSS_HH

#include <vector>

#include "tensor/tensor.hh"

namespace twoinone {

/**
 * Mean softmax cross-entropy over a batch.
 */
class SoftmaxCrossEntropy
{
  public:
    /**
     * Compute the mean loss.
     *
     * @param logits [N, K] class scores.
     * @param labels N ground-truth class indices.
     */
    float forward(const Tensor &logits, const std::vector<int> &labels);

    /** Gradient of the mean loss wrt the logits: [N, K]. */
    Tensor backward() const;

    /** Per-row softmax probabilities from the last forward. */
    const Tensor &probs() const { return probs_; }

  private:
    Tensor probs_;
    std::vector<int> labels_;
};

/**
 * Carlini-Wagner margin loss: mean over the batch of
 * max(z_y - max_{j != y} z_j, -kappa); its maximization drives the
 * CW-Inf attack.
 */
class CwMarginLoss
{
  public:
    explicit CwMarginLoss(float kappa = 0.0f) : kappa_(kappa) {}

    /** Negative mean margin (so that *maximizing* it untargets y). */
    float forward(const Tensor &logits, const std::vector<int> &labels);

    /** Gradient wrt logits of the value returned by forward(). */
    Tensor backward() const;

  private:
    float kappa_;
    Tensor logits_;
    std::vector<int> labels_;
    std::vector<int> runnerUp_;
    std::vector<bool> active_;
};

/** Row-wise softmax of logits [N, K]. */
Tensor softmax(const Tensor &logits);

} // namespace twoinone

#endif // TWOINONE_NN_LOSS_HH
