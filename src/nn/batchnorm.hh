/**
 * @file
 * Switchable batch normalization (SBN).
 *
 * The paper equips RPS-trained models with switchable BN [25, 35]: one
 * independent bank of (gamma, beta, running mean, running var) per
 * candidate precision, so each precision sees statistics that match
 * its own quantization noise. A plain BatchNorm2d is the special case
 * of a single bank. The active bank is selected through
 * QuantState::bnIndex.
 *
 * At inference the BN multiply/add folds into the linear quantizer's
 * scale and the model bias (paper Sec. 2.4), so SBN adds no module to
 * the accelerator; here we keep it explicit for training fidelity.
 */

#ifndef TWOINONE_NN_BATCHNORM_HH
#define TWOINONE_NN_BATCHNORM_HH

#include "nn/layer.hh"

namespace twoinone {

/**
 * SwitchableBatchNorm2d over NCHW activations.
 */
class SwitchableBatchNorm2d : public Layer
{
  public:
    /**
     * @param channels Channel count C.
     * @param num_banks Number of independent statistics banks
     *                  (1 = plain BN).
     * @param momentum Running-statistics update rate.
     * @param eps Variance floor.
     */
    SwitchableBatchNorm2d(int channels, int num_banks,
                          float momentum = 0.1f, float eps = 1e-5f);

    Tensor forward(const Tensor &x, bool train) override;
    Tensor backward(const Tensor &grad_out) override;
    /** Inference-only normalize: the running-stats affine transform
     * as one fused per-channel multiply/add, with none of the
     * backward caches (input copy, xhat) the training forward keeps.
     * This is the form the accelerator executes — the BN multiply
     * folds into the quantizer scale (paper Sec. 2.4). */
    QuantAct forwardQuantized(QuantAct &x) override;
    void emitPlanSteps(serve::PlanBuilder &b) override;
    void collectParameters(std::vector<Parameter *> &out) override;
    std::string describe() const override;
    LayerSpec spec() const override;
    /** Banks in full: gamma/beta/running stats per bank plus the
     * trained flags — the flags drive the untrained-bank aliasing, so
     * a reloaded model reproduces inference bit-exactly. */
    void collectState(const std::string &prefix, StateDict &out) override;
    std::string checkState(int required_banks) const override;

    /**
     * The running-stats affine transform into a caller-owned buffer
     * (the allocation-free plan form; forwardQuantized wraps it).
     * With @p fuse_relu the rectify runs in the same pass — the
     * per-element value is computed identically and then clamped, so
     * the fused output is bit-identical to SBN-then-ReLU.
     */
    void inferenceInto(const Tensor &x, Tensor &out, bool fuse_relu);

    /** Emit one fused SBN+ReLU plan step (the compile peephole for a
     * BN immediately followed by a ReLU). */
    void emitFusedBnRelu(serve::PlanBuilder &b);

    int numBanks() const { return static_cast<int>(banks_.size()); }
    int channels() const { return channels_; }

    /** Running mean of a bank (test access). */
    const Tensor &runningMean(int bank) const;
    /** Running variance of a bank (test access). */
    const Tensor &runningVar(int bank) const;

  private:
    /** One per-precision statistics bank. */
    struct Bank
    {
        Parameter gamma;
        Parameter beta;
        Tensor runningMean;
        Tensor runningVar;

        explicit Bank(int channels)
            : gamma(Tensor::ones({channels})),
              beta(Tensor::zeros({channels})),
              runningMean(Tensor::zeros({channels})),
              runningVar(Tensor::ones({channels}))
        {
        }
    };

    int channels_;
    float momentum_;
    float eps_;
    std::vector<Bank> banks_;
    /** Whether a bank has ever been trained. Untrained banks alias
     * bank 0 (post-training quantization reuses the full-precision
     * statistics, the paper's Fig. 1 (a)-(c) protocol); banks become
     * independent once RPS training touches them. */
    std::vector<char> bankTrained_;

    // Forward caches.
    Tensor cachedInput_;
    Tensor cachedXhat_;
    std::vector<float> cachedInvStd_;
    std::vector<float> cachedMean_;
    bool cachedTrain_ = false;
    int cachedBank_ = 0;

    Bank &activeBank();
    int activeBankIndex() const;
};

} // namespace twoinone

#endif // TWOINONE_NN_BATCHNORM_HH
