/**
 * @file
 * Layer base-class shared behaviour.
 */

#include "nn/layer.hh"

#include "serve/execution_plan.hh"

namespace twoinone {

const QuantResult &
WeightQuantizedLayer::quantizedWeight(int bits, QuantResult &local) const
{
    // The installed entry only serves its own precision; a direct
    // Network::setPrecision to some other width (e.g. EPGD cycling
    // precisions mid-attack) falls back to re-quantizing the masters,
    // which is always correct, just uncached.
    if (weightCache_ && weightCache_->bits == bits) {
        if (bits > 0)
            cacheHits_.fetch_add(1, std::memory_order_relaxed);
        return *weightCache_;
    }
    if (bits > 0)
        cacheMisses_.fetch_add(1, std::memory_order_relaxed);
    local = LinearQuantizer::fakeQuantSymmetric(masterWeight(), bits);
    return local;
}

const QuantTensor &
WeightQuantizedLayer::quantizedCodes(int bits, QuantTensor &local) const
{
    if (weightCodes_ && weightCodes_->bits == bits) {
        cacheHits_.fetch_add(1, std::memory_order_relaxed);
        return *weightCodes_;
    }
    cacheMisses_.fetch_add(1, std::memory_order_relaxed);
    local = QuantTensor::quantizeSymmetric(masterWeight(), bits);
    return local;
}

void
WeightQuantizedLayer::setQuantTrace(bool on)
{
    quantTrace_ = on;
    if (!on) {
        tracedW_ = QuantTensor();
        tracedA_ = QuantTensor();
        tracedAcc_.clear();
        tracedAcc_.shrink_to_fit();
    }
}

QuantAct
Layer::forwardQuantized(QuantAct &x)
{
    // Default: materialize the float view and run the ordinary
    // inference forward. Codes do not propagate through layers
    // without an integer datapath.
    return QuantAct(forward(x.denseView(), /*train=*/false));
}

void
Layer::emitPlanSteps(serve::PlanBuilder &b)
{
    // Fallback for layers without an allocation-free emitter: run the
    // legacy layer forward (which allocates its output and mutates
    // the layer's forward caches) and move the result into the arena.
    // Correct for any layer, just not zero-allocation — and not safe
    // to run from concurrent plan replicas, which the fallback mark
    // tells the serving runtime.
    b.markFallback();
    int in = b.top();
    int out = b.newValue();
    b.addStep("fallback " + describe(),
              [this, in, out](serve::ExecutionPlan &p) {
                  serve::Value &vi = p.value(in);
                  serve::Value &vo = p.value(out);
                  vo.reset();
                  if (p.mode() == serve::PlanMode::Quantized) {
                      QuantAct xa;
                      if (vi.hasCodes)
                          xa.q = vi.q;
                      else
                          xa.dense = vi.denseView();
                      QuantAct ya = forwardQuantized(xa);
                      if (ya.hasCodes()) {
                          vo.q = std::move(ya.q);
                          vo.hasCodes = true;
                      }
                      if (!ya.dense.empty()) {
                          vo.dense = std::move(ya.dense);
                          vo.denseReady = true;
                      }
                  } else {
                      vo.dense =
                          forward(vi.denseView(), /*train=*/false);
                      vo.denseReady = true;
                  }
              });
    b.setTop(out);
}

void
Layer::collectState(const std::string &prefix, StateDict &out)
{
    (void)prefix;
    (void)out; // stateless layer
}

void
Layer::collectParameters(std::vector<Parameter *> &out)
{
    (void)out; // parameter-free layer
}

void
Layer::collectWeightQuantized(std::vector<WeightQuantizedLayer *> &out)
{
    (void)out; // no quantized weights
}

void
Layer::collectActQuant(std::vector<ActQuant *> &out)
{
    (void)out; // no activation quantizer
}

void
Layer::zeroGrad()
{
    std::vector<Parameter *> params;
    collectParameters(params);
    for (Parameter *p : params)
        p->grad.fill(0.0f);
}

} // namespace twoinone
