/**
 * @file
 * Layer base-class shared behaviour.
 */

#include "nn/layer.hh"

namespace twoinone {

void
Layer::collectParameters(std::vector<Parameter *> &out)
{
    (void)out; // parameter-free layer
}

void
Layer::zeroGrad()
{
    std::vector<Parameter *> params;
    collectParameters(params);
    for (Parameter *p : params)
        p->grad.fill(0.0f);
}

} // namespace twoinone
