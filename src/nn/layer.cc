/**
 * @file
 * Layer base-class shared behaviour.
 */

#include "nn/layer.hh"

namespace twoinone {

const QuantResult &
WeightQuantizedLayer::quantizedWeight(int bits, QuantResult &local) const
{
    // The installed entry only serves its own precision; a direct
    // Network::setPrecision to some other width (e.g. EPGD cycling
    // precisions mid-attack) falls back to re-quantizing the masters,
    // which is always correct, just uncached.
    if (weightCache_ && weightCache_->bits == bits)
        return *weightCache_;
    local = LinearQuantizer::fakeQuantSymmetric(masterWeight(), bits);
    return local;
}

void
Layer::collectParameters(std::vector<Parameter *> &out)
{
    (void)out; // parameter-free layer
}

void
Layer::collectWeightQuantized(std::vector<WeightQuantizedLayer *> &out)
{
    (void)out; // no quantized weights
}

void
Layer::zeroGrad()
{
    std::vector<Parameter *> params;
    collectParameters(params);
    for (Parameter *p : params)
        p->grad.fill(0.0f);
}

} // namespace twoinone
