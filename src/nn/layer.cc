/**
 * @file
 * Layer base-class shared behaviour.
 */

#include "nn/layer.hh"

namespace twoinone {

const QuantResult &
WeightQuantizedLayer::quantizedWeight(int bits, QuantResult &local) const
{
    // The installed entry only serves its own precision; a direct
    // Network::setPrecision to some other width (e.g. EPGD cycling
    // precisions mid-attack) falls back to re-quantizing the masters,
    // which is always correct, just uncached.
    if (weightCache_ && weightCache_->bits == bits) {
        if (bits > 0)
            ++cacheHits_;
        return *weightCache_;
    }
    if (bits > 0)
        ++cacheMisses_;
    local = LinearQuantizer::fakeQuantSymmetric(masterWeight(), bits);
    return local;
}

const QuantTensor &
WeightQuantizedLayer::quantizedCodes(int bits, QuantTensor &local) const
{
    if (weightCodes_ && weightCodes_->bits == bits) {
        ++cacheHits_;
        return *weightCodes_;
    }
    ++cacheMisses_;
    local = QuantTensor::quantizeSymmetric(masterWeight(), bits);
    return local;
}

void
WeightQuantizedLayer::setQuantTrace(bool on)
{
    quantTrace_ = on;
    if (!on) {
        tracedW_ = QuantTensor();
        tracedA_ = QuantTensor();
        tracedAcc_.clear();
        tracedAcc_.shrink_to_fit();
    }
}

QuantAct
Layer::forwardQuantized(QuantAct &x)
{
    // Default: materialize the float view and run the ordinary
    // inference forward. Codes do not propagate through layers
    // without an integer datapath.
    return QuantAct(forward(x.denseView(), /*train=*/false));
}

void
Layer::collectParameters(std::vector<Parameter *> &out)
{
    (void)out; // parameter-free layer
}

void
Layer::collectWeightQuantized(std::vector<WeightQuantizedLayer *> &out)
{
    (void)out; // no quantized weights
}

void
Layer::collectActQuant(std::vector<ActQuant *> &out)
{
    (void)out; // no activation quantizer
}

void
Layer::zeroGrad()
{
    std::vector<Parameter *> params;
    collectParameters(params);
    for (Parameter *p : params)
        p->grad.fill(0.0f);
}

} // namespace twoinone
