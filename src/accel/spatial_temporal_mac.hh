/**
 * @file
 * The paper's proposed spatial-temporal MAC-unit model (Sec. 3.2).
 *
 * Four groups of n bit-serial units (each unit <= 4-bit x 4-bit)
 * spatially tile the temporal units:
 *  - Opt-1 reorganizes the bit-level split so the n partial sums'
 *    equal-magnitude partial products share a group, cutting the
 *    cross-unit shifters from 4n to 4 (Eq. 4 -> Eq. 5);
 *  - Opt-2 fuses the per-unit shift-add of a group into one *group
 *    shift-add*, cutting the in-unit shifters by 1/n.
 * The result is the Fig. 3 "Ours" breakdown where shift-add drops to
 * 39.7% of the unit and multipliers claim 43.0%.
 *
 * Schedule (Sec. 3.2.1): p <= 4-bit -> every unit computes one
 * product in p cycles; 4 < p <= 8 -> hi/lo split, one product per
 * group-set in ceil(p/2) cycles; p > 8 -> temporal chunking into
 * <= 8-bit pieces. Asymmetric precisions follow the serial operand.
 */

#ifndef TWOINONE_ACCEL_SPATIAL_TEMPORAL_MAC_HH
#define TWOINONE_ACCEL_SPATIAL_TEMPORAL_MAC_HH

#include "accel/mac_unit.hh"

namespace twoinone {

/**
 * The 2-in-1 Accelerator's MAC-unit model.
 */
class SpatialTemporalMacModel : public MacUnitModel
{
  public:
    /** @param units_per_group Partial sums computed concurrently
     *        (n of Opt-1, default 4). */
    explicit SpatialTemporalMacModel(int units_per_group = 4)
        : unitsPerGroup_(units_per_group)
    {
    }

    std::string name() const override
    {
        return "2-in-1(spatial-temporal)";
    }

    MacAreaBreakdown area() const override;
    MacActivity activity() const override;
    double cyclesPerPass(int w_bits, int a_bits) const override;
    double productsPerPass(int w_bits, int a_bits) const override;
    double reductionWays(int w_bits, int a_bits) const override;

    int unitsPerGroup() const { return unitsPerGroup_; }

  private:
    int unitsPerGroup_;
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_SPATIAL_TEMPORAL_MAC_HH
