/**
 * @file
 * Spatial MAC-unit model in the style of Bit Fusion [67].
 *
 * Sixteen 2-bit BitBricks compose combinationally into products of
 * 2/4/8-bit operands; precisions outside {2,4,8} execute at the next
 * supported precision (paper Fig. 2 under-utilization observation);
 * precisions above 8-bit run the whole fusion unit four times
 * temporally. The per-brick compose shifters make shift-add 67% of
 * the unit area ([63]'s observation, paper Fig. 3).
 */

#ifndef TWOINONE_ACCEL_SPATIAL_MAC_HH
#define TWOINONE_ACCEL_SPATIAL_MAC_HH

#include "accel/mac_unit.hh"

namespace twoinone {

/**
 * Bit Fusion-style fusion-unit model (16 BitBricks).
 */
class SpatialMacModel : public MacUnitModel
{
  public:
    std::string name() const override { return "BitFusion(spatial)"; }

    MacAreaBreakdown area() const override;
    MacActivity activity() const override;
    double cyclesPerPass(int w_bits, int a_bits) const override;
    double productsPerPass(int w_bits, int a_bits) const override;
    int effectivePrecision(int bits) const override;
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_SPATIAL_MAC_HH
