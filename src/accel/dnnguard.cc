/**
 * @file
 * DNNGuard model implementation.
 */

#include "accel/dnnguard.hh"

#include <algorithm>

#include "common/logging.hh"

namespace twoinone {

double
DnnGuardModel::fixedMacUnitArea()
{
    // A fixed 16-bit MAC plus the per-PE share of DNNGuard's elastic
    // interconnect and buffer-management logic (the heterogeneous
    // orchestration hardware of [76]).
    return 1.2;
}

DnnGuardModel::DnnGuardModel(double mac_array_area, const TechModel &tech,
                             NetworkWorkload detector,
                             double elastic_efficiency)
    : macArrayArea_(mac_array_area), detector_(std::move(detector)),
      elasticEfficiency_(elastic_efficiency)
{
    (void)tech;
    TWOINONE_ASSERT(mac_array_area > 0.0, "non-positive area budget");
    TWOINONE_ASSERT(elastic_efficiency > 0.0 && elastic_efficiency <= 1.0,
                    "bad elastic efficiency");
    numUnits_ = static_cast<int>(mac_array_area / fixedMacUnitArea());
    TWOINONE_ASSERT(numUnits_ >= 1, "area budget below one MAC unit");
}

double
DnnGuardModel::totalCycles(const NetworkWorkload &target) const
{
    // Target and detector share the elastic array; total work is the
    // sum of both networks' MACs at one MAC/unit/cycle, scaled by the
    // elastic-partitioning utilization DNNGuard reports. The same
    // LPDDR-class memory roofline as the other accelerators applies,
    // at the design's fixed 16-bit datapath width.
    double total_macs = static_cast<double>(target.totalMacs()) +
                        static_cast<double>(detector_.totalMacs());
    double array_macs_per_cycle =
        static_cast<double>(numUnits_) * elasticEfficiency_;
    double compute = total_macs / array_macs_per_cycle;

    double traffic_bits = 0.0;
    auto add_net = [&](const NetworkWorkload &net) {
        for (const ConvShape &l : net.layers) {
            traffic_bits += 16.0 *
                            (static_cast<double>(l.weightCount()) +
                             static_cast<double>(l.inputCount()) +
                             static_cast<double>(l.outputCount()));
        }
    };
    add_net(target);
    add_net(detector_);
    double stall = traffic_bits / 512.0; // DRAM bits per cycle
    return std::max(compute, stall);
}

double
DnnGuardModel::fps(const NetworkWorkload &target, double clock_ghz) const
{
    double cycles = totalCycles(target);
    TWOINONE_ASSERT(cycles > 0.0, "degenerate workload");
    return clock_ghz * 1e9 / cycles;
}

double
DnnGuardModel::fpsPerArea(const NetworkWorkload &target,
                          double clock_ghz) const
{
    return fps(target, clock_ghz) / macArrayArea_;
}

} // namespace twoinone
