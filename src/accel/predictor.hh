/**
 * @file
 * Analytical performance/energy predictor for one accelerator
 * configuration — the reproduction of the DNN-Chip Predictor [90]
 * that the paper's optimizer queries for every candidate dataflow.
 *
 * Given a layer shape, an execution precision, a MAC-unit model, a
 * MAC-unit count and a dataflow, the predictor computes:
 *  - compute cycles (MAC throughput x spatial/intra-unit utilization),
 *  - per-level data traffic from tiling-based reuse analysis
 *    (loop-order aware: trailing irrelevant loops at a level retain
 *    the tile, earlier ones force a refetch — the "refresh location"
 *    logic of paper Alg. 2),
 *  - bandwidth-limited stall cycles (roofline over the levels),
 *  - energy = traffic x per-bit energies + MACs x MAC energy,
 *  - validity (buffer capacity and spatial-fit checks).
 */

#ifndef TWOINONE_ACCEL_PREDICTOR_HH
#define TWOINONE_ACCEL_PREDICTOR_HH

#include <string>

#include "accel/dataflow.hh"
#include "accel/mac_unit.hh"
#include "accel/memory_hierarchy.hh"
#include "workloads/layer_shape.hh"

namespace twoinone {

/** The three tensors whose movement the predictor tracks. */
enum class TensorKind : int
{
    Weight = 0,
    Input = 1,
    Output = 2,
};

constexpr int kNumTensors = 3;

/** Tensor name ("W", "I", "O"). */
const char *tensorName(TensorKind t);

/**
 * How the cost model charges per-layer activation re-quantization
 * (the step that brings a layer's outputs back onto the a_bits grid
 * before they feed the next layer).
 *
 * DynamicFakeQuant is the uncalibrated execution the nn library runs
 * by default: the range is derived from the tensor itself, so every
 * output element is read twice (max-reduction pass + grid pass) and
 * written once at the global buffer. StaticScale models the
 * calibrated datapath (quant/calibration.hh): the scale is a
 * constant folded into the BN multiply (paper Sec. 2.4), the
 * reduction pass disappears, and only the read+write of the grid
 * pass remains.
 */
enum class ActQuantMode
{
    DynamicFakeQuant,
    StaticScale,
};

/**
 * Prediction for one layer at one precision under one dataflow.
 */
struct LayerPrediction
{
    bool valid = false;
    std::string invalidReason;

    double computeCycles = 0.0;
    double stallCycles = 0.0; ///< max(0, bottleneck - compute)
    double totalCycles = 0.0;

    /** Spatial utilization of the MAC array, in (0, 1]. */
    double spatialUtilization = 0.0;
    /** Intra-unit reduction utilization, in (0, 1]. */
    double intraUtilization = 0.0;

    /** Bits moved through each level (RF, NoC, GB, DRAM). */
    std::array<double, kNumLevels> trafficBits{};

    double macEnergyPj = 0.0;
    /** Energy per level, pJ. */
    std::array<double, kNumLevels> memEnergyPj{};

    /** Activation re-quantization overhead (per ActQuantMode),
     * already folded into totalCycles / totalEnergyPj(). */
    double actQuantCycles = 0.0;
    double actQuantEnergyPj = 0.0;

    double totalEnergyPj() const;
};

/**
 * Prediction aggregated over a full network.
 *
 * accumulate() folds per-layer predictions serially in layer order —
 * the one accumulation used by every (possibly parallel) sweep, so
 * totals are independent of how the per-layer work was chunked.
 */
struct NetworkPrediction
{
    double totalCycles = 0.0;
    double totalEnergyPj = 0.0;
    double macEnergyPj = 0.0;
    std::array<double, kNumLevels> memEnergyPj{};
    int invalidLayers = 0;

    /** Frames (batches) per second at the given clock. */
    double fps(double clock_ghz, int batch) const;
    /** Inferences per Joule. */
    double inferencesPerJoule(int batch) const;

    /** Fold @p n per-layer predictions, in order, into the totals
     * (invalid layers are counted, not summed). */
    static NetworkPrediction accumulate(const LayerPrediction *preds,
                                        size_t n);
};

/**
 * The predictor: immutable configuration, pure predict calls.
 */
class PerformancePredictor
{
  public:
    /**
     * @param mac MAC-unit model (not owned; must outlive).
     * @param hierarchy Memory hierarchy specification.
     * @param tech Technology constants.
     * @param num_units MAC-unit count of the array.
     */
    PerformancePredictor(const MacUnitModel &mac,
                         MemoryHierarchy hierarchy, const TechModel &tech,
                         int num_units);

    /** Predict one layer at a (weight, activation) precision. */
    LayerPrediction
    predictLayer(const ConvShape &shape, int w_bits, int a_bits,
                 const Dataflow &df,
                 ActQuantMode mode = ActQuantMode::DynamicFakeQuant) const;

    /**
     * Predict one layer under @p candidate, falling back to the
     * always-valid streaming mapping when the candidate is invalid
     * at this precision (capacity validity depends on the precision)
     * — the shared select-probe-fallback cell of every
     * default-mapping sweep (predictNetworkDefault,
     * Accelerator::run, Accelerator::sweep).
     */
    LayerPrediction predictLayerWithFallback(
        const ConvShape &shape, int w_bits, int a_bits,
        const Dataflow &candidate,
        ActQuantMode mode = ActQuantMode::DynamicFakeQuant) const;

    /** Predict a network, one dataflow per layer. */
    NetworkPrediction
    predictNetwork(const NetworkWorkload &net, int w_bits, int a_bits,
                   const std::vector<Dataflow> &dataflows,
                   ActQuantMode mode = ActQuantMode::DynamicFakeQuant) const;

    /** Predict a network with greedy default dataflows. */
    NetworkPrediction predictNetworkDefault(
        const NetworkWorkload &net, int w_bits, int a_bits,
        ActQuantMode mode = ActQuantMode::DynamicFakeQuant) const;

    int numUnits() const { return numUnits_; }
    const MacUnitModel &mac() const { return mac_; }
    const MemoryHierarchy &hierarchy() const { return hierarchy_; }
    const TechModel &tech() const { return tech_; }

    /** Is a tensor dependent on a loop dimension? */
    static bool dimRelevant(TensorKind t, Dim d);

    /** Is a dimension a reduction dim (C, R, S)? */
    static bool isReductionDim(Dim d);

  private:
    const MacUnitModel &mac_;
    MemoryHierarchy hierarchy_;
    const TechModel &tech_;
    int numUnits_;

    /** Tile footprint (elements) of a tensor at a level. */
    double footprintElements(TensorKind t, const ConvShape &shape,
                             const Dataflow &df, Level l) const;

    /**
     * Refetch multiplier for a tensor at a retention level: the
     * product of trip counts of loops above @p retention that cannot
     * be reused (loop-order aware per level).
     */
    double refetchFactor(TensorKind t, const Dataflow &df,
                         Level retention) const;
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_PREDICTOR_HH
