/**
 * @file
 * MacArraySimulator implementation.
 *
 * Schedule: every output pixel's reduction (over C, R, S) is chopped
 * into passes of `reduction ways` operand pairs (the unit's Opt-1
 * concurrency at the active precision). Units process one pass per
 * wave; a wave costs the Sec. 3.2.1 cycle count for the precision.
 * Waves sweep the output space until every pixel's reduction is
 * accumulated — mirroring how the dispatcher feeds the real array.
 */

#include "accel/array_sim.hh"

#include <algorithm>

#include "common/logging.hh"

namespace twoinone {

IntTensor
IntTensor::zeros(std::vector<int> shape)
{
    IntTensor t;
    size_t n = 1;
    for (int d : shape) {
        TWOINONE_ASSERT(d > 0, "bad IntTensor dim");
        n *= static_cast<size_t>(d);
    }
    t.shape = std::move(shape);
    t.data.assign(n, 0);
    return t;
}

int64_t &
IntTensor::at(std::initializer_list<int> idx)
{
    TWOINONE_ASSERT(idx.size() == shape.size(), "IntTensor rank");
    size_t flat = 0;
    size_t i = 0;
    for (int v : idx) {
        TWOINONE_ASSERT(v >= 0 && v < shape[i], "IntTensor index");
        flat = flat * static_cast<size_t>(shape[i]) +
               static_cast<size_t>(v);
        ++i;
    }
    return data[flat];
}

int64_t
IntTensor::at(std::initializer_list<int> idx) const
{
    return const_cast<IntTensor *>(this)->at(idx);
}

IntTensor
IntTensor::fromCodes(const QuantTensor &q)
{
    TWOINONE_ASSERT(!q.empty(), "empty QuantTensor");
    IntTensor t;
    t.shape = q.shape;
    t.data.assign(q.codes.begin(), q.codes.end());
    return t;
}

ArraySimResult
MacArraySimulator::runConv(const QuantTensor &weights,
                           const QuantTensor &input, int stride,
                           int padding) const
{
    TWOINONE_ASSERT(weights.isSigned, "weight codes must be symmetric");
    return runConv(IntTensor::fromCodes(weights),
                   IntTensor::fromCodes(input), stride, padding,
                   weights.bits, input.bits);
}

MacArraySimulator::MacArraySimulator(int num_units, int units_per_group)
    : numUnits_(num_units), unitsPerGroup_(units_per_group),
      datapath_(units_per_group)
{
    TWOINONE_ASSERT(num_units >= 1, "need at least one unit");
}

ArraySimResult
MacArraySimulator::runConv(const IntTensor &weights,
                           const IntTensor &input, int stride,
                           int padding, int w_bits, int a_bits) const
{
    TWOINONE_ASSERT(weights.shape.size() == 4, "weights are [K,C,R,S]");
    TWOINONE_ASSERT(input.shape.size() == 3, "input is [C,IY,IX]");
    int k = weights.shape[0], c = weights.shape[1], r = weights.shape[2],
        s = weights.shape[3];
    TWOINONE_ASSERT(input.shape[0] == c, "channel mismatch");
    int iy = input.shape[1], ix = input.shape[2];
    int oy = (iy + 2 * padding - r) / stride + 1;
    int ox = (ix + 2 * padding - s) / stride + 1;
    TWOINONE_ASSERT(oy > 0 && ox > 0, "empty output");

    // Pairs a unit consumes per pass at this precision (Opt-1).
    int p = std::max(w_bits, a_bits);
    int ways = (p <= 4) ? 4 * unitsPerGroup_ : unitsPerGroup_;
    int pass_cycles =
        GroupedMacDatapath::cyclesForPrecision(w_bits, a_bits);

    ArraySimResult res;
    res.output = IntTensor::zeros({k, oy, ox});

    // Work queue: every output pixel owns reduction_len operand
    // pairs, issued in chunks of `ways`.
    int reduction_len = c * r * s;
    int passes_per_pixel = (reduction_len + ways - 1) / ways;
    int64_t total_pixels = static_cast<int64_t>(k) * oy * ox;
    int64_t total_passes = total_pixels * passes_per_pixel;

    // Units execute in lockstep waves of up to numUnits_ passes.
    res.cycles = static_cast<uint64_t>(
        (total_passes + numUnits_ - 1) / numUnits_ *
        static_cast<int64_t>(pass_cycles));

    std::vector<int64_t> wa(static_cast<size_t>(ways));
    std::vector<int64_t> ab(static_cast<size_t>(ways));
    for (int ki = 0; ki < k; ++ki) {
        for (int y = 0; y < oy; ++y) {
            for (int x = 0; x < ox; ++x) {
                int64_t acc = 0;
                int filled = 0;
                auto flush = [&]() {
                    if (filled == 0)
                        return;
                    wa.resize(static_cast<size_t>(filled));
                    ab.resize(static_cast<size_t>(filled));
                    acc += datapath_.macReduce(
                        wa, ab, std::max(w_bits, a_bits), nullptr);
                    res.macs += static_cast<uint64_t>(filled);
                    res.idleMacSlots +=
                        static_cast<uint64_t>(ways - filled);
                    wa.resize(static_cast<size_t>(ways));
                    ab.resize(static_cast<size_t>(ways));
                    filled = 0;
                };
                for (int ci = 0; ci < c; ++ci) {
                    for (int ry = 0; ry < r; ++ry) {
                        for (int sx = 0; sx < s; ++sx) {
                            int in_y = y * stride - padding + ry;
                            int in_x = x * stride - padding + sx;
                            int64_t a_val = 0;
                            if (in_y >= 0 && in_y < iy && in_x >= 0 &&
                                in_x < ix) {
                                a_val = input.at({ci, in_y, in_x});
                            }
                            wa[static_cast<size_t>(filled)] =
                                weights.at({ki, ci, ry, sx});
                            ab[static_cast<size_t>(filled)] = a_val;
                            if (++filled == ways)
                                flush();
                        }
                    }
                }
                flush();
                res.output.at({ki, y, x}) = acc;
            }
        }
    }
    return res;
}

} // namespace twoinone
