/**
 * @file
 * Bit-true, cycle-accurate models of the arithmetic datapaths inside
 * the three MAC-unit families the paper studies (Sec. 3.2):
 *
 *  - BitSerialMultiplier: one temporal (Stripes-style) unit. One
 *    operand is held in parallel, the other is streamed LSB-first one
 *    bit per cycle through an AND array followed by a shift-add.
 *  - composeSpatial: the Bit Fusion composition — a product of wide
 *    operands built from 2-bit x 2-bit partial products combined with
 *    shifts (Eq. 4 of the paper).
 *  - GroupedMacDatapath: the paper's proposed MAC unit — n partial
 *    sums split hi/lo (Eq. 5), partial products of equal magnitude
 *    reduced *first* inside a group (Opt-1) and shifted once per
 *    group through the fused group shift-add (Opt-2).
 *
 * These models exist to prove functional equivalence with plain
 * integer arithmetic at every supported precision; the performance /
 * area / energy numbers live in the MacUnitModel classes.
 */

#ifndef TWOINONE_ACCEL_BITSERIAL_HH
#define TWOINONE_ACCEL_BITSERIAL_HH

#include <cstdint>
#include <vector>

namespace twoinone {

/**
 * Cycle-accurate bit-serial multiplier (one temporal unit).
 *
 * Computes a * b for signed operands by streaming |a|'s bits LSB
 * first; each cycle adds (bit ? |b| << t : 0) into the accumulator.
 * Sign is resolved at the end (sign-magnitude datapath, as in
 * serial designs that avoid two's-complement correction logic).
 */
class BitSerialMultiplier
{
  public:
    /**
     * @param serial_bits Width of the streamed operand in bits.
     */
    explicit BitSerialMultiplier(int serial_bits);

    /** Load operands and reset the datapath. */
    void load(int64_t a, int64_t b);

    /** Advance one cycle; returns true while work remains. */
    bool step();

    /** True when all serial bits have been consumed. */
    bool done() const { return cycle_ >= serialBits_; }

    /** Cycles consumed so far. */
    int cyclesElapsed() const { return cycle_; }

    /** The signed product (valid once done()). */
    int64_t result() const;

    /** Convenience: run to completion and return the product. */
    int64_t multiply(int64_t a, int64_t b);

  private:
    int serialBits_;
    uint64_t aMag_ = 0;
    uint64_t bMag_ = 0;
    int signProduct_ = 1;
    uint64_t acc_ = 0;
    int cycle_ = 0;
};

/**
 * Spatial (Bit Fusion style) composition: decompose a p-bit x p-bit
 * product into ceil(p/2)^2 2-bit x 2-bit partial products and fuse
 * them with shifts (paper Eq. 4). Returns the exact product.
 *
 * @param a Signed multiplicand, |a| < 2^(p-1).
 * @param b Signed multiplier.
 * @param bits Operand precision p (2..16).
 * @param brick_ops_out When non-null, receives the number of 2-bit
 *                      bricks consumed (utilization accounting).
 */
int64_t composeSpatial(int64_t a, int64_t b, int bits,
                       int *brick_ops_out = nullptr);

/**
 * The proposed grouped MAC datapath (Opt-1 + Opt-2).
 *
 * Computes sum_i a_i * b_i for n operand pairs at precision p:
 *  - p <= 4: each pair maps onto one bit-serial unit directly;
 *  - 4 < p <= 8: each operand splits into (hi m-bit, lo m-bit) with
 *    m = ceil(p/2); the four magnitude classes (HH, HL, LH, LL) form
 *    the four groups; partial products of one group are *summed
 *    first* and shifted *once* (Eq. 5), so only 4 group shifters are
 *    exercised instead of 4n unit shifters;
 *  - p > 8: operands split into <= 8-bit chunks executed temporally
 *    and accumulated (paper Sec. 3.2.1 scheduling).
 */
class GroupedMacDatapath
{
  public:
    /**
     * @param units_per_group Number of bit-serial units per group
     *        (n, the partial-sum count of Opt-1).
     */
    explicit GroupedMacDatapath(int units_per_group = 4);

    /**
     * Exact multi-operand MAC at the given precision.
     *
     * @param a Multiplicands (size <= units_per_group).
     * @param b Multipliers (same size).
     * @param bits Operand precision (1..16).
     * @param cycles_out When non-null, receives the cycle count the
     *        schedule of Sec. 3.2.1 needs for this precision.
     */
    int64_t macReduce(const std::vector<int64_t> &a,
                      const std::vector<int64_t> &b, int bits,
                      int *cycles_out = nullptr) const;

    /**
     * Cycle count of one pass at a (possibly asymmetric) precision,
     * per the spatial-temporal schedule: cycles follow the serial
     * operand's sub-precision.
     */
    static int cyclesForPrecision(int w_bits, int a_bits);

  private:
    int unitsPerGroup_;
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_BITSERIAL_HH
