/**
 * @file
 * Technology model: per-component area and per-access energy
 * constants used by every MAC-unit and memory model.
 *
 * The paper's numbers come from a commercial 28 nm flow (Design
 * Compiler + PrimeTime + a foundry memory compiler). That flow is not
 * available here, so this model is *calibrated*: the MAC component
 * constants are fit so that (a) the area breakdowns of the three
 * MAC-unit designs match the paper's Fig. 3 and (b) the synthesized
 * MAC-unit ratios of Sec. 3.2.3 (2.3x throughput/area and 4.88x
 * energy-efficiency/op over Bit Fusion at 8-bit) are reproduced. The
 * memory energy ratios (RF : NoC : SRAM : DRAM) follow the widely
 * used Eyeriss/DNN-Chip-Predictor relative-access-cost tables.
 * DESIGN.md §1 records this substitution.
 */

#ifndef TWOINONE_ACCEL_TECH_MODEL_HH
#define TWOINONE_ACCEL_TECH_MODEL_HH

namespace twoinone {

/**
 * Area/energy constants of the modeled 28 nm-class process.
 */
struct TechModel
{
    /** @name Memory access energy, pJ per bit */
    /** @{ */
    double rfEnergyPerBit = 0.015;  ///< Register-file access.
    double nocEnergyPerBit = 0.15;  ///< One array-level hop.
    double sramEnergyPerBit = 0.60; ///< Global-buffer access.
    double dramEnergyPerBit = 8.0;  ///< Off-chip (LPDDR4-class).
    /** @} */

    /** Energy per unit of active MAC area per cycle, pJ. */
    double macEnergyScale = 0.15;

    /** Clock frequency used to convert cycles to seconds. */
    double clockGhz = 1.0;

    /** Default instance shared by the benches. */
    static const TechModel &defaults();
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_TECH_MODEL_HH
