/**
 * @file
 * PerformancePredictor implementation.
 */

#include "accel/predictor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace twoinone {

const char *
tensorName(TensorKind t)
{
    static const char *names[kNumTensors] = {"W", "I", "O"};
    return names[static_cast<int>(t)];
}

double
LayerPrediction::totalEnergyPj() const
{
    double e = macEnergyPj + actQuantEnergyPj;
    for (double m : memEnergyPj)
        e += m;
    return e;
}

double
NetworkPrediction::fps(double clock_ghz, int batch) const
{
    if (totalCycles <= 0.0)
        return 0.0;
    double seconds = totalCycles / (clock_ghz * 1e9);
    return static_cast<double>(batch) / seconds;
}

double
NetworkPrediction::inferencesPerJoule(int batch) const
{
    if (totalEnergyPj <= 0.0)
        return 0.0;
    return static_cast<double>(batch) / (totalEnergyPj * 1e-12);
}

NetworkPrediction
NetworkPrediction::accumulate(const LayerPrediction *preds, size_t n)
{
    NetworkPrediction np;
    for (size_t i = 0; i < n; ++i) {
        const LayerPrediction &lp = preds[i];
        if (!lp.valid) {
            ++np.invalidLayers;
            continue;
        }
        np.totalCycles += lp.totalCycles;
        np.totalEnergyPj += lp.totalEnergyPj();
        np.macEnergyPj += lp.macEnergyPj;
        for (int lv = 0; lv < kNumLevels; ++lv) {
            np.memEnergyPj[static_cast<size_t>(lv)] +=
                lp.memEnergyPj[static_cast<size_t>(lv)];
        }
    }
    return np;
}

PerformancePredictor::PerformancePredictor(const MacUnitModel &mac,
                                           MemoryHierarchy hierarchy,
                                           const TechModel &tech,
                                           int num_units)
    : mac_(mac), hierarchy_(std::move(hierarchy)), tech_(tech),
      numUnits_(num_units)
{
    TWOINONE_ASSERT(num_units > 0, "need at least one MAC unit");
}

bool
PerformancePredictor::dimRelevant(TensorKind t, Dim d)
{
    switch (t) {
      case TensorKind::Weight:
        return d == Dim::K || d == Dim::C || d == Dim::R || d == Dim::S;
      case TensorKind::Input:
        // Inputs depend on OY/OX through the sliding window and on
        // R/S through the halo.
        return d == Dim::N || d == Dim::C || d == Dim::OY ||
               d == Dim::OX || d == Dim::R || d == Dim::S;
      case TensorKind::Output:
        return d == Dim::N || d == Dim::K || d == Dim::OY || d == Dim::OX;
    }
    TWOINONE_PANIC("unknown TensorKind");
}

bool
PerformancePredictor::isReductionDim(Dim d)
{
    return d == Dim::C || d == Dim::R || d == Dim::S;
}

double
PerformancePredictor::footprintElements(TensorKind t,
                                        const ConvShape &shape,
                                        const Dataflow &df, Level l) const
{
    auto ext = [&](Dim d) {
        return static_cast<double>(
            std::min<int64_t>(df.tileExtent(d, l),
                              Dataflow::shapeExtent(shape, d)));
    };
    switch (t) {
      case TensorKind::Weight:
        return ext(Dim::K) * ext(Dim::C) * ext(Dim::R) * ext(Dim::S);
      case TensorKind::Input: {
        // Halo: iy = oy*stride + r - stride.
        double iy = ext(Dim::OY) * shape.stride + ext(Dim::R) -
                    shape.stride;
        double ix = ext(Dim::OX) * shape.stride + ext(Dim::S) -
                    shape.stride;
        return ext(Dim::N) * ext(Dim::C) * iy * ix;
      }
      case TensorKind::Output:
        return ext(Dim::N) * ext(Dim::K) * ext(Dim::OY) * ext(Dim::OX);
    }
    TWOINONE_PANIC("unknown TensorKind");
}

double
PerformancePredictor::refetchFactor(TensorKind t, const Dataflow &df,
                                    Level retention) const
{
    // Walk the temporal levels above the retention level. At each
    // level, loops run outermost-first in the stored order; trailing
    // (innermost) loops irrelevant to the tensor leave the retained
    // tile untouched — the "refresh location" sits just outside them.
    // Any irrelevant loop outside a relevant one forces a refetch of
    // the whole tile per iteration.
    double refetch = 1.0;
    for (int lv = static_cast<int>(retention) + 1; lv < kNumLevels;
         ++lv) {
        Level level = static_cast<Level>(lv);
        if (level == Level::Noc)
            continue; // spatial level: parallel units, not iterations
        const auto &ord = df.order[static_cast<size_t>(lv)];

        // Find the innermost *relevant* loop position.
        int innermost_relevant = -1;
        for (int i = kNumDims - 1; i >= 0; --i) {
            Dim d = ord[static_cast<size_t>(i)];
            if (dimRelevant(t, d) && df.trips(level, d) > 1) {
                innermost_relevant = i;
                break;
            }
        }
        for (int i = 0; i < kNumDims; ++i) {
            Dim d = ord[static_cast<size_t>(i)];
            int trip = df.trips(level, d);
            if (trip <= 1)
                continue;
            if (dimRelevant(t, d)) {
                // Relevant loop: iterates over fresh data.
                refetch *= trip;
            } else if (i < innermost_relevant) {
                // Irrelevant loop outside a relevant loop: the tile
                // is evicted and refetched every iteration.
                refetch *= trip;
            }
            // Irrelevant loops inside every relevant loop reuse the
            // retained tile: factor 1.
        }
    }
    return refetch;
}

LayerPrediction
PerformancePredictor::predictLayer(const ConvShape &shape, int w_bits,
                                   int a_bits, const Dataflow &df,
                                   ActQuantMode mode) const
{
    LayerPrediction p;

    if (!df.covers(shape)) {
        p.invalidReason = "dataflow does not cover the layer extent";
        return p;
    }

    // --- Validity: spatial fit ------------------------------------
    int64_t spatial = df.spatialUnits();
    if (spatial > numUnits_) {
        p.invalidReason = "NoC tiling exceeds MAC-unit count";
        return p;
    }

    const double out_bits = 16.0; // partial-sum precision on the wire

    // --- Validity: buffer capacities -------------------------------
    double gb_bits = 0.0;
    double rf_bits = 0.0;
    for (int ti = 0; ti < kNumTensors; ++ti) {
        TensorKind t = static_cast<TensorKind>(ti);
        double bits = (t == TensorKind::Weight)
                          ? w_bits
                          : (t == TensorKind::Input ? a_bits : out_bits);
        gb_bits += footprintElements(t, shape, df, Level::Gb) * bits;
        // The RF of *every active unit* holds its own tile.
        rf_bits += footprintElements(t, shape, df, Level::Rf) * bits *
                   static_cast<double>(spatial);
    }
    if (hierarchy_.level(Level::Gb).capacityBits > 0.0 &&
        gb_bits > hierarchy_.level(Level::Gb).capacityBits) {
        p.invalidReason = "global-buffer tile overflows capacity";
        return p;
    }
    if (hierarchy_.level(Level::Rf).capacityBits > 0.0 &&
        rf_bits > hierarchy_.level(Level::Rf).capacityBits) {
        p.invalidReason = "register-file tile overflows capacity";
        return p;
    }

    // --- Compute cycles --------------------------------------------
    double padded_macs =
        static_cast<double>(shape.macs()) * df.paddingFactor(shape);
    p.spatialUtilization =
        static_cast<double>(spatial) / static_cast<double>(numUnits_);

    // Intra-unit reduction parallelism must be fed by the RF-level
    // reduction tile (Opt-1's R/S/C operands).
    double rf_reduction =
        static_cast<double>(df.tileExtent(Dim::C, Level::Rf)) *
        static_cast<double>(df.tileExtent(Dim::R, Level::Rf)) *
        static_cast<double>(df.tileExtent(Dim::S, Level::Rf));
    double ways = mac_.reductionWays(w_bits, a_bits);
    p.intraUtilization = std::min(1.0, rf_reduction / ways);

    double per_unit_macs_per_cycle =
        mac_.macsPerCycle(w_bits, a_bits) * p.intraUtilization;
    double array_macs_per_cycle =
        per_unit_macs_per_cycle * static_cast<double>(spatial);
    TWOINONE_ASSERT(array_macs_per_cycle > 0.0, "zero array throughput");
    p.computeCycles = padded_macs / array_macs_per_cycle;

    // --- Traffic ----------------------------------------------------
    // DRAM <-> GB: footprint at GB refetched per the DRAM loops.
    // GB -> RF (over the NoC): footprint at RF per active unit,
    //   refetched per the GB + DRAM loops; spatial multicast of
    //   shared data across units is free for irrelevant NoC dims.
    auto bits_of = [&](TensorKind t) {
        return (t == TensorKind::Weight)
                   ? static_cast<double>(w_bits)
                   : (t == TensorKind::Input ? static_cast<double>(a_bits)
                                             : out_bits);
    };

    double dram_traffic = 0.0;
    double noc_traffic = 0.0;
    for (int ti = 0; ti < kNumTensors; ++ti) {
        TensorKind t = static_cast<TensorKind>(ti);
        double b = bits_of(t);

        double gb_tile = footprintElements(t, shape, df, Level::Gb) * b;
        double d_traffic = gb_tile * refetchFactor(t, df, Level::Gb);

        // Spatial fan-out: units mapped to relevant NoC dims each
        // need distinct data; irrelevant NoC dims multicast.
        double fanout = 1.0;
        for (int d = 0; d < kNumDims; ++d) {
            Dim dim = static_cast<Dim>(d);
            if (dimRelevant(t, dim))
                fanout *= df.trips(Level::Noc, dim);
        }
        double rf_tile = footprintElements(t, shape, df, Level::Rf) * b;
        double n_traffic =
            rf_tile * fanout * refetchFactor(t, df, Level::Rf);

        if (t == TensorKind::Output) {
            // Partial sums cross the boundary once per reduction
            // refetch, and each refetch is a read-modify-write. A
            // MAC unit with w-way intra-unit reduction (Opt-1)
            // accumulates w partials locally before one writeback,
            // cutting the array-level partial-sum movement by 1/w —
            // the paper's "better output reuse" advantage.
            double ways = std::max(1.0, mac_.reductionWays(w_bits,
                                                           a_bits));
            d_traffic = std::max(d_traffic, gb_tile);
            n_traffic = std::max(n_traffic, rf_tile * fanout);
            d_traffic = 2.0 * d_traffic - gb_tile;
            n_traffic =
                (2.0 * n_traffic - rf_tile * fanout) / ways +
                rf_tile * fanout * (1.0 - 1.0 / ways);
        }
        dram_traffic += d_traffic;
        noc_traffic += n_traffic;
    }

    // RF accesses: every MAC reads one weight and one activation.
    double rf_traffic =
        padded_macs * (static_cast<double>(w_bits) + a_bits);
    // GB port sees DRAM fills plus NoC drains.
    double gb_traffic = dram_traffic + noc_traffic;

    p.trafficBits[static_cast<size_t>(Level::Rf)] = rf_traffic;
    p.trafficBits[static_cast<size_t>(Level::Noc)] = noc_traffic;
    p.trafficBits[static_cast<size_t>(Level::Gb)] = gb_traffic;
    p.trafficBits[static_cast<size_t>(Level::Dram)] = dram_traffic;

    // --- Stalls (roofline over bandwidths) --------------------------
    double bottleneck = p.computeCycles;
    for (int lv = 0; lv < kNumLevels; ++lv) {
        double bw = hierarchy_.levels[static_cast<size_t>(lv)]
                        .bandwidthBitsPerCycle;
        if (bw > 0.0) {
            bottleneck = std::max(
                bottleneck,
                p.trafficBits[static_cast<size_t>(lv)] / bw);
        }
    }
    p.totalCycles = bottleneck;
    p.stallCycles = bottleneck - p.computeCycles;

    // --- Activation re-quantization overhead -------------------------
    // Every output element is brought back onto the a_bits grid at
    // the global buffer before feeding the next layer. Dynamic range
    // derivation reads the tensor twice (max reduction + grid pass)
    // and writes once; a calibrated static scale folds into the BN
    // multiply and leaves just the grid pass's read + write.
    {
        double touches = (mode == ActQuantMode::DynamicFakeQuant) ? 3.0
                                                                  : 2.0;
        double rq_bits = touches * static_cast<double>(shape.outputCount()) *
                         static_cast<double>(a_bits);
        const MemoryLevelSpec &gb = hierarchy_.level(Level::Gb);
        if (gb.bandwidthBitsPerCycle > 0.0)
            p.actQuantCycles = rq_bits / gb.bandwidthBitsPerCycle;
        p.actQuantEnergyPj = rq_bits * gb.energyPerBit;
        p.totalCycles += p.actQuantCycles;
    }

    // --- Energy ------------------------------------------------------
    p.macEnergyPj = static_cast<double>(shape.macs()) *
                    mac_.energyPerMac(w_bits, a_bits, tech_);
    for (int lv = 0; lv < kNumLevels; ++lv) {
        p.memEnergyPj[static_cast<size_t>(lv)] =
            p.trafficBits[static_cast<size_t>(lv)] *
            hierarchy_.levels[static_cast<size_t>(lv)].energyPerBit;
    }

    p.valid = true;
    return p;
}

NetworkPrediction
PerformancePredictor::predictNetwork(
    const NetworkWorkload &net, int w_bits, int a_bits,
    const std::vector<Dataflow> &dataflows, ActQuantMode mode) const
{
    TWOINONE_ASSERT(dataflows.size() == net.layers.size(),
                    "one dataflow per layer required");
    // Per-layer predictions are independent pure computations, so
    // they run on the thread pool with deterministic chunking; the
    // totals then accumulate serially in layer order, keeping the
    // result bit-identical to the serial path for any thread count.
    const int64_t n = static_cast<int64_t>(net.layers.size());
    std::vector<LayerPrediction> preds(net.layers.size());
    ThreadPool::global().parallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            size_t li = static_cast<size_t>(i);
            preds[li] = predictLayer(net.layers[li], w_bits, a_bits,
                                     dataflows[li], mode);
        }
    });
    return NetworkPrediction::accumulate(preds.data(), preds.size());
}

LayerPrediction
PerformancePredictor::predictLayerWithFallback(
    const ConvShape &shape, int w_bits, int a_bits,
    const Dataflow &candidate, ActQuantMode mode) const
{
    LayerPrediction lp = predictLayer(shape, w_bits, a_bits, candidate,
                                      mode);
    if (!lp.valid) {
        lp = predictLayer(shape, w_bits, a_bits,
                          Dataflow::minimalFallback(shape), mode);
    }
    return lp;
}

NetworkPrediction
PerformancePredictor::predictNetworkDefault(const NetworkWorkload &net,
                                            int w_bits, int a_bits,
                                            ActQuantMode mode) const
{
    // Greedy selection + fallback prediction per layer, parallel with
    // deterministic per-layer chunking; serial in-order accumulation.
    const int64_t n = static_cast<int64_t>(net.layers.size());
    std::vector<LayerPrediction> preds(net.layers.size());
    ThreadPool::global().parallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const ConvShape &l = net.layers[static_cast<size_t>(i)];
            preds[static_cast<size_t>(i)] = predictLayerWithFallback(
                l, w_bits, a_bits,
                Dataflow::greedyDefault(l, numUnits_), mode);
        }
    });
    return NetworkPrediction::accumulate(preds.data(), preds.size());
}

} // namespace twoinone
