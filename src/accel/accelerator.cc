/**
 * @file
 * Accelerator facade implementation.
 */

#include "accel/accelerator.hh"

#include "accel/spatial_mac.hh"
#include "accel/spatial_temporal_mac.hh"
#include "accel/temporal_mac.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace twoinone {

const char *
acceleratorName(AcceleratorKind k)
{
    switch (k) {
      case AcceleratorKind::TwoInOne: return "2-in-1";
      case AcceleratorKind::Stripes: return "Stripes";
      case AcceleratorKind::BitFusion: return "BitFusion";
    }
    TWOINONE_PANIC("unknown AcceleratorKind");
}

namespace {

MacUnitModelPtr
makeMac(AcceleratorKind kind)
{
    switch (kind) {
      case AcceleratorKind::TwoInOne:
        return std::make_unique<SpatialTemporalMacModel>();
      case AcceleratorKind::Stripes:
        return std::make_unique<TemporalMacModel>();
      case AcceleratorKind::BitFusion:
        return std::make_unique<SpatialMacModel>();
    }
    TWOINONE_PANIC("unknown AcceleratorKind");
}

} // namespace

double
Accelerator::defaultAreaBudget()
{
    return 256.0 * 2.3;
}

Accelerator::Accelerator(AcceleratorKind kind, double mac_array_area,
                         const TechModel &tech)
    : kind_(kind), macArrayArea_(mac_array_area), mac_(makeMac(kind))
{
    TWOINONE_ASSERT(mac_array_area > 0.0, "non-positive area budget");
    numUnits_ = static_cast<int>(mac_array_area / mac_->area().total() +
                                 1e-6);
    TWOINONE_ASSERT(numUnits_ >= 1, "area budget below one MAC unit");
    predictor_ = std::make_unique<PerformancePredictor>(
        *mac_, MemoryHierarchy::makeDefault(tech, numUnits_), tech,
        numUnits_);
}

DataflowFreedom
Accelerator::freedom() const
{
    // Paper Sec. 3.1.3: Bit Fusion's tool only optimizes the GB loop
    // order; Stripes' dataflow is optimized with our optimizer
    // (Sec. 4.1.2), as is ours.
    return (kind_ == AcceleratorKind::BitFusion)
               ? DataflowFreedom::GbOrderOnly
               : DataflowFreedom::Full;
}

Dataflow
Accelerator::defaultLayerDataflow(const ConvShape &shape) const
{
    if (kind_ == AcceleratorKind::BitFusion)
        return Dataflow::bitFusionFixed(shape, numUnits_);
    return Dataflow::greedyDefault(shape, numUnits_);
}

NetworkPrediction
Accelerator::run(const NetworkWorkload &net, int w_bits, int a_bits,
                 ActQuantMode mode) const
{
    // Mapping selection + prediction per layer through the shared
    // fallback cell, parallel with deterministic per-layer chunking;
    // serial in-order accumulation.
    const int64_t n = static_cast<int64_t>(net.layers.size());
    std::vector<LayerPrediction> preds(net.layers.size());
    ThreadPool::global().parallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const ConvShape &l = net.layers[static_cast<size_t>(i)];
            preds[static_cast<size_t>(i)] =
                predictor_->predictLayerWithFallback(
                    l, w_bits, a_bits, defaultLayerDataflow(l), mode);
        }
    });
    return NetworkPrediction::accumulate(preds.data(), preds.size());
}

std::vector<NetworkPrediction>
Accelerator::sweep(const NetworkWorkload &net, const PrecisionSet &set,
                   ActQuantMode mode) const
{
    const int64_t nlayers = static_cast<int64_t>(net.layers.size());
    const int64_t nprec = static_cast<int64_t>(set.size());
    // One flat (precision, layer) task grid over the same fallback
    // cell as run(), fixed grain-1 chunking. The per-precision totals
    // then accumulate serially in layer order, so
    // sweep()[i] == run(net, q_i, q_i) exactly.
    std::vector<LayerPrediction> preds(
        static_cast<size_t>(nlayers * nprec));
    ThreadPool::global().parallelFor(
        0, nlayers * nprec, 1, [&](int64_t lo, int64_t hi) {
            for (int64_t t = lo; t < hi; ++t) {
                int bits = set.bits()[static_cast<size_t>(t / nlayers)];
                const ConvShape &l =
                    net.layers[static_cast<size_t>(t % nlayers)];
                preds[static_cast<size_t>(t)] =
                    predictor_->predictLayerWithFallback(
                        l, bits, bits, defaultLayerDataflow(l), mode);
            }
        });

    std::vector<NetworkPrediction> out(static_cast<size_t>(nprec));
    for (int64_t p = 0; p < nprec; ++p) {
        out[static_cast<size_t>(p)] = NetworkPrediction::accumulate(
            preds.data() + p * nlayers, static_cast<size_t>(nlayers));
    }
    return out;
}

LayerPrediction
Accelerator::runLayer(const ConvShape &shape, int w_bits, int a_bits,
                      const Dataflow &df) const
{
    return predictor_->predictLayer(shape, w_bits, a_bits, df);
}

} // namespace twoinone
