/**
 * @file
 * Accelerator facade implementation.
 */

#include "accel/accelerator.hh"

#include "accel/spatial_mac.hh"
#include "accel/spatial_temporal_mac.hh"
#include "accel/temporal_mac.hh"
#include "common/logging.hh"

namespace twoinone {

const char *
acceleratorName(AcceleratorKind k)
{
    switch (k) {
      case AcceleratorKind::TwoInOne: return "2-in-1";
      case AcceleratorKind::Stripes: return "Stripes";
      case AcceleratorKind::BitFusion: return "BitFusion";
    }
    TWOINONE_PANIC("unknown AcceleratorKind");
}

namespace {

MacUnitModelPtr
makeMac(AcceleratorKind kind)
{
    switch (kind) {
      case AcceleratorKind::TwoInOne:
        return std::make_unique<SpatialTemporalMacModel>();
      case AcceleratorKind::Stripes:
        return std::make_unique<TemporalMacModel>();
      case AcceleratorKind::BitFusion:
        return std::make_unique<SpatialMacModel>();
    }
    TWOINONE_PANIC("unknown AcceleratorKind");
}

} // namespace

double
Accelerator::defaultAreaBudget()
{
    return 256.0 * 2.3;
}

Accelerator::Accelerator(AcceleratorKind kind, double mac_array_area,
                         const TechModel &tech)
    : kind_(kind), macArrayArea_(mac_array_area), mac_(makeMac(kind))
{
    TWOINONE_ASSERT(mac_array_area > 0.0, "non-positive area budget");
    numUnits_ = static_cast<int>(mac_array_area / mac_->area().total() +
                                 1e-6);
    TWOINONE_ASSERT(numUnits_ >= 1, "area budget below one MAC unit");
    predictor_ = std::make_unique<PerformancePredictor>(
        *mac_, MemoryHierarchy::makeDefault(tech, numUnits_), tech,
        numUnits_);
}

DataflowFreedom
Accelerator::freedom() const
{
    // Paper Sec. 3.1.3: Bit Fusion's tool only optimizes the GB loop
    // order; Stripes' dataflow is optimized with our optimizer
    // (Sec. 4.1.2), as is ours.
    return (kind_ == AcceleratorKind::BitFusion)
               ? DataflowFreedom::GbOrderOnly
               : DataflowFreedom::Full;
}

Dataflow
Accelerator::defaultLayerDataflow(const ConvShape &shape) const
{
    if (kind_ == AcceleratorKind::BitFusion)
        return Dataflow::bitFusionFixed(shape, numUnits_);
    return Dataflow::greedyDefault(shape, numUnits_);
}

NetworkPrediction
Accelerator::run(const NetworkWorkload &net, int w_bits, int a_bits) const
{
    std::vector<Dataflow> dfs;
    dfs.reserve(net.layers.size());
    for (const ConvShape &l : net.layers) {
        Dataflow df = defaultLayerDataflow(l);
        if (!predictor_->predictLayer(l, w_bits, a_bits, df).valid)
            df = Dataflow::minimalFallback(l);
        dfs.push_back(std::move(df));
    }
    return predictor_->predictNetwork(net, w_bits, a_bits, dfs);
}

LayerPrediction
Accelerator::runLayer(const ConvShape &shape, int w_bits, int a_bits,
                      const Dataflow &df) const
{
    return predictor_->predictLayer(shape, w_bits, a_bits, df);
}

} // namespace twoinone
