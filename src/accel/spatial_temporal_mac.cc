/**
 * @file
 * Spatial-temporal MAC model implementation.
 *
 * Area calibration: total 1.0 normalized unit (the reference the
 * other designs are normalized against) with the Fig. 3 breakdown
 * (43.0% multiplier / 39.7% shift-add / 17.2% registers). The fused
 * group shift-add keeps the shift-add activity at 1.0.
 */

#include "accel/spatial_temporal_mac.hh"

#include "accel/bitserial.hh"
#include "common/logging.hh"

namespace twoinone {

MacAreaBreakdown
SpatialTemporalMacModel::area() const
{
    MacAreaBreakdown a;
    const double total = 1.0;
    a.multiplier = total * 0.430;
    a.shiftAdd = total * 0.397;
    a.registers = total * 0.172;
    return a;
}

MacActivity
SpatialTemporalMacModel::activity() const
{
    MacActivity act;
    // Opt-2's group shift-add runs once per group instead of once per
    // unit, so the shift-add switching stays at baseline.
    act.shiftAdd = 1.0;
    return act;
}

double
SpatialTemporalMacModel::cyclesPerPass(int w_bits, int a_bits) const
{
    return static_cast<double>(
        GroupedMacDatapath::cyclesForPrecision(w_bits, a_bits));
}

double
SpatialTemporalMacModel::productsPerPass(int w_bits, int a_bits) const
{
    int p = std::max(w_bits, a_bits);
    TWOINONE_ASSERT(p >= 1 && p <= 16, "precision out of range");
    if (p <= 4) {
        // All 4n bit-serial units compute independent products.
        return 4.0 * unitsPerGroup_;
    }
    // Hi/lo split: each product occupies one unit in each of the four
    // magnitude groups; above 8-bit the chunk passes are already part
    // of cyclesPerPass.
    return static_cast<double>(unitsPerGroup_);
}

double
SpatialTemporalMacModel::reductionWays(int w_bits, int a_bits) const
{
    // Opt-1: the unit's concurrent products are partial sums of the
    // *same* output pixel (weights from different R/S/C).
    return productsPerPass(w_bits, a_bits);
}

} // namespace twoinone
