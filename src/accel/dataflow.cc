/**
 * @file
 * Dataflow implementation.
 */

#include "accel/dataflow.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace twoinone {

const char *
dimName(Dim d)
{
    static const char *names[kNumDims] = {"N", "K", "C", "OY",
                                          "OX", "R", "S"};
    return names[static_cast<int>(d)];
}

const char *
levelName(Level l)
{
    static const char *names[kNumLevels] = {"RF", "NoC", "GB", "DRAM"};
    return names[static_cast<int>(l)];
}

Dataflow::Dataflow()
{
    for (auto &per_level : tiling)
        per_level.fill(1);
    for (auto &per_level : order) {
        for (int i = 0; i < kNumDims; ++i)
            per_level[static_cast<size_t>(i)] = static_cast<Dim>(i);
    }
}

int
Dataflow::trips(Level l, Dim d) const
{
    return tiling[static_cast<size_t>(l)][static_cast<size_t>(d)];
}

int &
Dataflow::trips(Level l, Dim d)
{
    return tiling[static_cast<size_t>(l)][static_cast<size_t>(d)];
}

int64_t
Dataflow::tileExtent(Dim d, Level l) const
{
    int64_t e = 1;
    for (int lv = 0; lv <= static_cast<int>(l); ++lv)
        e *= trips(static_cast<Level>(lv), d);
    return e;
}

int64_t
Dataflow::paddedExtent(Dim d) const
{
    return tileExtent(d, Level::Dram);
}

int64_t
Dataflow::spatialUnits() const
{
    int64_t p = 1;
    for (int d = 0; d < kNumDims; ++d)
        p *= trips(Level::Noc, static_cast<Dim>(d));
    return p;
}

int
Dataflow::shapeExtent(const ConvShape &shape, Dim d)
{
    switch (d) {
      case Dim::N: return shape.n;
      case Dim::K: return shape.k;
      case Dim::C: return shape.c;
      case Dim::OY: return shape.oy;
      case Dim::OX: return shape.ox;
      case Dim::R: return shape.r;
      case Dim::S: return shape.s;
    }
    TWOINONE_PANIC("unknown Dim");
}

bool
Dataflow::covers(const ConvShape &shape) const
{
    for (int d = 0; d < kNumDims; ++d) {
        Dim dim = static_cast<Dim>(d);
        if (paddedExtent(dim) < shapeExtent(shape, dim))
            return false;
    }
    return true;
}

double
Dataflow::paddingFactor(const ConvShape &shape) const
{
    double padded = 1.0, real = 1.0;
    for (int d = 0; d < kNumDims; ++d) {
        Dim dim = static_cast<Dim>(d);
        padded *= static_cast<double>(paddedExtent(dim));
        real *= static_cast<double>(shapeExtent(shape, dim));
    }
    TWOINONE_ASSERT(real > 0.0, "degenerate shape");
    return padded / real;
}

std::string
Dataflow::describe() const
{
    std::ostringstream oss;
    for (int l = kNumLevels - 1; l >= 0; --l) {
        Level lv = static_cast<Level>(l);
        oss << levelName(lv) << ": ";
        for (int i = 0; i < kNumDims; ++i) {
            Dim d = order[static_cast<size_t>(l)][static_cast<size_t>(i)];
            int t = trips(lv, d);
            if (t > 1)
                oss << dimName(d) << "x" << t << " ";
        }
        oss << "\n";
    }
    return oss.str();
}

namespace {

/** Smallest factor split: choose t <= limit maximizing coverage. */
int
takeTile(int remaining, int limit)
{
    return std::max(1, std::min(remaining, limit));
}

/** ceil(a/b) for positive ints. */
int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

/**
 * Grow the GB tiles under the current RF/NoC tiling — reduction dims
 * first (weight residency kills the refetch factor), then outputs —
 * while a conservative 16-bit footprint estimate stays within half of
 * the default 512 KB buffer. Then fill DRAM trips to cover the layer
 * and install the default loop orders.
 */
void
growGbAndFinish(Dataflow &df, const ConvShape &shape)
{
    const double gb_budget_bits = 0.5 * 512.0 * 1024.0 * 8.0;
    auto footprint16 = [&]() {
        double kext = static_cast<double>(std::min<int64_t>(
            df.tileExtent(Dim::K, Level::Gb), shape.k));
        double cext = static_cast<double>(std::min<int64_t>(
            df.tileExtent(Dim::C, Level::Gb), shape.c));
        double oyext = static_cast<double>(std::min<int64_t>(
            df.tileExtent(Dim::OY, Level::Gb), shape.oy));
        double oxext = static_cast<double>(std::min<int64_t>(
            df.tileExtent(Dim::OX, Level::Gb), shape.ox));
        double w = kext * cext * shape.r * shape.s;
        double iy = oyext * shape.stride + shape.r - shape.stride;
        double ix = oxext * shape.stride + shape.s - shape.stride;
        double i = cext * iy * ix;
        double o = kext * oyext * oxext;
        return (w + i + o) * 16.0;
    };

    // Cover R/S fully at GB (they are small and enable weight reuse).
    df.trips(Level::Gb, Dim::R) =
        ceilDiv(shape.r, static_cast<int>(df.tileExtent(Dim::R,
                                                        Level::Noc)));
    df.trips(Level::Gb, Dim::S) =
        ceilDiv(shape.s, static_cast<int>(df.tileExtent(Dim::S,
                                                        Level::Noc)));
    const Dim grow_order[] = {Dim::C, Dim::K, Dim::OY, Dim::OX};
    bool grew = true;
    while (grew && footprint16() < gb_budget_bits) {
        grew = false;
        for (Dim d : grow_order) {
            int inner = static_cast<int>(df.tileExtent(d, Level::Noc));
            int remaining =
                ceilDiv(Dataflow::shapeExtent(shape, d), inner);
            if (df.trips(Level::Gb, d) >= remaining)
                continue;
            df.trips(Level::Gb, d) =
                std::min(remaining, df.trips(Level::Gb, d) * 2);
            if (footprint16() > gb_budget_bits) {
                // Undo the growth that crossed the budget.
                df.trips(Level::Gb, d) =
                    std::max(1, df.trips(Level::Gb, d) / 2);
            } else {
                grew = true;
            }
        }
    }

    // DRAM level: whatever remains of every dimension.
    for (int d = 0; d < kNumDims; ++d) {
        Dim dim = static_cast<Dim>(d);
        int covered = static_cast<int>(df.tileExtent(dim, Level::Gb));
        df.trips(Level::Dram, dim) =
            ceilDiv(Dataflow::shapeExtent(shape, dim), covered);
    }

    // Default loop orders: reduction dims innermost at GB/DRAM (good
    // output reuse); the optimizer permutes these.
    std::array<Dim, kNumDims> temporal_order = {
        Dim::N, Dim::K, Dim::OY, Dim::OX, Dim::C, Dim::R, Dim::S};
    df.order[static_cast<size_t>(Level::Gb)] = temporal_order;
    df.order[static_cast<size_t>(Level::Dram)] = temporal_order;
    df.order[static_cast<size_t>(Level::Rf)] = temporal_order;
}

} // namespace

Dataflow
Dataflow::minimalFallback(const ConvShape &shape)
{
    Dataflow df;
    for (int d = 0; d < kNumDims; ++d) {
        Dim dim = static_cast<Dim>(d);
        df.trips(Level::Dram, dim) = shapeExtent(shape, dim);
    }
    return df;
}

Dataflow
Dataflow::bitFusionFixed(const ConvShape &shape, int64_t pe_budget)
{
    Dataflow df;

    // RF level as in the adaptive mapping (Bit Fusion has no
    // intra-unit reduction, so a modest tile suffices).
    df.trips(Level::Rf, Dim::R) = takeTile(shape.r, 3);
    df.trips(Level::Rf, Dim::S) = takeTile(shape.s, 3);
    df.trips(Level::Rf, Dim::C) = takeTile(shape.c, 4);

    int side = 16;
    while (static_cast<int64_t>(side) * side > pe_budget && side > 1)
        side /= 2;
    // The fixed assignment maps K down one array side and output
    // pixels (OX, then OY) down the other; layers whose extents do
    // not fill the grid under-utilize it (FC layers, tiny feature
    // maps) — the inflexibility the paper criticizes.
    int k_t = std::min(side, std::max(shape.k, 1));
    int ox_t = std::min(side, std::max(shape.ox, 1));
    int oy_t = std::min(std::max(side / ox_t, 1),
                        std::max(shape.oy, 1));
    df.trips(Level::Noc, Dim::K) = k_t;
    df.trips(Level::Noc, Dim::OX) = ox_t;
    df.trips(Level::Noc, Dim::OY) = oy_t;

    growGbAndFinish(df, shape);
    return df;
}

Dataflow
Dataflow::greedyDefault(const ConvShape &shape, int64_t pe_budget,
                        int64_t rf_reduction)
{
    Dataflow df;

    // RF level: reduction dims feed the intra-unit partial sums; the
    // C tile grows until R*S*C covers the target reduction ways (16
    // for the proposed MAC at <=4-bit), so 1x1 convolutions keep the
    // unit fully fed.
    int rf_r = takeTile(shape.r, 3);
    int rf_s = takeTile(shape.s, 3);
    int target = static_cast<int>(std::max<int64_t>(1, rf_reduction));
    int rf_c = takeTile(shape.c, ceilDiv(target, rf_r * rf_s));
    df.trips(Level::Rf, Dim::R) = rf_r;
    df.trips(Level::Rf, Dim::S) = rf_s;
    df.trips(Level::Rf, Dim::C) = rf_c;

    // NoC level: spread K then OX then OY spatially.
    int64_t budget = std::max<int64_t>(1, pe_budget);
    int noc_k = takeTile(shape.k, static_cast<int>(std::min<int64_t>(
                                      budget, 64)));
    budget = std::max<int64_t>(1, budget / noc_k);
    int noc_ox = takeTile(shape.ox, static_cast<int>(budget));
    budget = std::max<int64_t>(1, budget / noc_ox);
    int noc_oy = takeTile(shape.oy, static_cast<int>(budget));
    df.trips(Level::Noc, Dim::K) = noc_k;
    df.trips(Level::Noc, Dim::OX) = noc_ox;
    df.trips(Level::Noc, Dim::OY) = noc_oy;

    growGbAndFinish(df, shape);
    return df;
}

} // namespace twoinone
