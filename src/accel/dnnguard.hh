/**
 * @file
 * DNNGuard [76] baseline model — the robustness-aware accelerator the
 * paper compares against in Sec. 4.3.2.
 *
 * DNNGuard is an elastic heterogeneous accelerator that runs the
 * target DNN *and* an adversarial-sample detection network
 * concurrently, sharing the PE array and on-chip buffer. The model
 * here captures exactly that cost structure: a fixed-precision
 * (16-bit) MAC array whose throughput is split between the target
 * workload and the detection workload, plus an orchestration
 * efficiency factor for the elastic resource management. Defending
 * is therefore paid for in throughput — the contrast to the 2-in-1
 * approach, which defends inside the target model at low precision.
 */

#ifndef TWOINONE_ACCEL_DNNGUARD_HH
#define TWOINONE_ACCEL_DNNGUARD_HH

#include "accel/predictor.hh"

namespace twoinone {

/**
 * DNNGuard performance model.
 */
class DnnGuardModel
{
  public:
    /**
     * @param mac_array_area Area budget in normalized MAC-area units
     *        (same budget the other accelerators receive).
     * @param tech Technology constants.
     * @param detector Detection network run next to every inference
     *        (the paper's setting uses a ResNet-18-class detector).
     * @param elastic_efficiency Utilization of the elastic PE/buffer
     *        partitioning (< 1: orchestration overhead).
     */
    DnnGuardModel(double mac_array_area, const TechModel &tech,
                  NetworkWorkload detector,
                  double elastic_efficiency = 0.35);

    /** MAC units (fixed 16-bit, one MAC/cycle each). */
    int numUnits() const { return numUnits_; }

    double macArrayArea() const { return macArrayArea_; }

    /**
     * Cycles to run one inference of @p target including the
     * concurrent detector execution.
     */
    double totalCycles(const NetworkWorkload &target) const;

    /** Frames per second on the target network. */
    double fps(const NetworkWorkload &target, double clock_ghz) const;

    /** Throughput normalized by the MAC-array area. */
    double fpsPerArea(const NetworkWorkload &target,
                      double clock_ghz) const;

  private:
    double macArrayArea_;
    int numUnits_;
    NetworkWorkload detector_;
    double elasticEfficiency_;

    /** Area of one fixed-precision 16-bit MAC unit (normalized). */
    static double fixedMacUnitArea();
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_DNNGUARD_HH
