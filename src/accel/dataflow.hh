/**
 * @file
 * Dataflow descriptor: the tiling strategy (per-level tiling factors
 * and loop orders) across the accelerator's memory hierarchy, in the
 * Eyeriss nomenclature the paper adopts (Sec. 3.1.3) — RF (inside a
 * MAC unit), NoC (the spatial MAC array), global buffer, and DRAM.
 */

#ifndef TWOINONE_ACCEL_DATAFLOW_HH
#define TWOINONE_ACCEL_DATAFLOW_HH

#include <array>
#include <cstdint>
#include <string>

#include "workloads/layer_shape.hh"

namespace twoinone {

/** The seven loop dimensions of a convolution. */
enum class Dim : int
{
    N = 0,
    K = 1,
    C = 2,
    OY = 3,
    OX = 4,
    R = 5,
    S = 6,
};

/** Number of loop dimensions. */
constexpr int kNumDims = 7;

/** Short dimension name ("N", "K", ...). */
const char *dimName(Dim d);

/** Memory-hierarchy levels, innermost first. */
enum class Level : int
{
    Rf = 0,   ///< Register file inside a MAC unit.
    Noc = 1,  ///< Spatial tiling across the MAC array.
    Gb = 2,   ///< Global buffer (SRAM).
    Dram = 3, ///< Off-chip memory.
};

/** Number of hierarchy levels. */
constexpr int kNumLevels = 4;

/** Level name ("RF", "NoC", "GB", "DRAM"). */
const char *levelName(Level l);

/**
 * A complete dataflow: per-level trip counts for every dimension plus
 * a per-level loop order (outermost loop first).
 *
 * The product of a dimension's trip counts across all levels must
 * cover the layer's extent (padding allowed: product >= extent, with
 * the overhang modeled as utilization loss by the predictor).
 */
struct Dataflow
{
    /** tiling[level][dim] = trip count of that loop. */
    std::array<std::array<int, kNumDims>, kNumLevels> tiling;

    /** order[level][i] = i-th loop at that level, outermost first
     * (meaningful for the temporal levels RF, GB, DRAM). */
    std::array<std::array<Dim, kNumDims>, kNumLevels> order;

    Dataflow();

    /** Trip count accessor. */
    int trips(Level l, Dim d) const;
    int &trips(Level l, Dim d);

    /** Cumulative tile extent of dim d up to and including level l. */
    int64_t tileExtent(Dim d, Level l) const;

    /** Padded total extent of dim d (across all levels). */
    int64_t paddedExtent(Dim d) const;

    /** Spatial parallelism: product of all NoC trip counts. */
    int64_t spatialUnits() const;

    /** True when every padded extent covers the layer's extent. */
    bool covers(const ConvShape &shape) const;

    /** Padding overhead: padded MACs / real MACs (>= 1). */
    double paddingFactor(const ConvShape &shape) const;

    /** Human-readable multi-line description. */
    std::string describe() const;

    /**
     * A simple valid default: reduction dims at RF, K/OY/OX spread
     * spatially up to @p pe_budget units, the remainder split between
     * GB and DRAM so the GB tile stays within @p gb_budget_hint
     * elements per tensor (heuristic, not optimal — the evolutionary
     * optimizer improves on it).
     */
    static Dataflow greedyDefault(const ConvShape &shape,
                                  int64_t pe_budget,
                                  int64_t rf_reduction = 16);

    /**
     * A guaranteed-valid fallback: every loop at DRAM, single MAC
     * unit, trivial tiles everywhere else. Traffic-heavy but always
     * fits any buffer; used when a candidate mapping overflows.
     */
    static Dataflow minimalFallback(const ConvShape &shape);

    /**
     * Bit Fusion's fixed NoC mapping (paper Sec. 3.1.3): a 16x16
     * systolic-style assignment of K x OX to the array regardless of
     * the layer, causing under-utilization when a layer's extents do
     * not fill it. The GB level grows capacity-aware like
     * greedyDefault; only the GB loop order is ever re-optimized.
     */
    static Dataflow bitFusionFixed(const ConvShape &shape,
                                   int64_t pe_budget);

    /** The extent of dim d in a shape. */
    static int shapeExtent(const ConvShape &shape, Dim d);
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_DATAFLOW_HH
