/**
 * @file
 * Default technology model instance.
 */

#include "accel/tech_model.hh"

namespace twoinone {

const TechModel &
TechModel::defaults()
{
    static const TechModel instance;
    return instance;
}

} // namespace twoinone
