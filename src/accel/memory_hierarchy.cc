/**
 * @file
 * Default memory-hierarchy construction.
 */

#include "accel/memory_hierarchy.hh"

namespace twoinone {

MemoryHierarchy
MemoryHierarchy::makeDefault(const TechModel &tech, int num_units)
{
    MemoryHierarchy h;

    // Register file: 2 Kb per MAC unit (operand tiles + partials for
    // the intra-unit reduction of Opt-1).
    h.level(Level::Rf).capacityBits = 2048.0 * num_units;
    h.level(Level::Rf).bandwidthBitsPerCycle = 64.0 * num_units;
    h.level(Level::Rf).energyPerBit = tech.rfEnergyPerBit;

    // NoC: transport only; per-unit injection bandwidth.
    h.level(Level::Noc).capacityBits = 0.0;
    h.level(Level::Noc).bandwidthBitsPerCycle = 16.0 * num_units;
    h.level(Level::Noc).energyPerBit = tech.nocEnergyPerBit;

    // Global buffer: 512 KB shared SRAM, wide port.
    h.level(Level::Gb).capacityBits = 512.0 * 1024.0 * 8.0;
    h.level(Level::Gb).bandwidthBitsPerCycle = 1024.0;
    h.level(Level::Gb).energyPerBit = tech.sramEnergyPerBit;

    // DRAM: unbounded capacity, LPDDR-class bandwidth (64 GB/s at
    // the 1 GHz reference clock).
    h.level(Level::Dram).capacityBits = 0.0;
    h.level(Level::Dram).bandwidthBitsPerCycle = 512.0;
    h.level(Level::Dram).energyPerBit = tech.dramEnergyPerBit;

    return h;
}

} // namespace twoinone
