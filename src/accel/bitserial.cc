/**
 * @file
 * Bit-true datapath implementations.
 */

#include "accel/bitserial.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace twoinone {

namespace {

/** Magnitude and sign of a signed operand. */
inline uint64_t
magnitude(int64_t v, int *sign)
{
    if (v < 0) {
        *sign = -1;
        return static_cast<uint64_t>(-v);
    }
    *sign = 1;
    return static_cast<uint64_t>(v);
}

/** ceil(x / y) for positive ints. */
inline int
ceilDiv(int x, int y)
{
    return (x + y - 1) / y;
}

} // namespace

BitSerialMultiplier::BitSerialMultiplier(int serial_bits)
    : serialBits_(serial_bits)
{
    TWOINONE_ASSERT(serial_bits >= 1 && serial_bits <= 32,
                    "bad serial width ", serial_bits);
}

void
BitSerialMultiplier::load(int64_t a, int64_t b)
{
    int sa = 1, sb = 1;
    aMag_ = magnitude(a, &sa);
    bMag_ = magnitude(b, &sb);
    TWOINONE_ASSERT(aMag_ < (1ULL << serialBits_),
                    "serial operand exceeds unit width");
    signProduct_ = sa * sb;
    acc_ = 0;
    cycle_ = 0;
}

bool
BitSerialMultiplier::step()
{
    if (done())
        return false;
    // One cycle: AND the current serial bit with the parallel operand
    // and add the shifted partial into the accumulator.
    if ((aMag_ >> cycle_) & 1ULL)
        acc_ += bMag_ << cycle_;
    ++cycle_;
    return !done();
}

int64_t
BitSerialMultiplier::result() const
{
    TWOINONE_ASSERT(done(), "result read before completion");
    return signProduct_ * static_cast<int64_t>(acc_);
}

int64_t
BitSerialMultiplier::multiply(int64_t a, int64_t b)
{
    load(a, b);
    while (step()) {
    }
    return result();
}

int64_t
composeSpatial(int64_t a, int64_t b, int bits, int *brick_ops_out)
{
    TWOINONE_ASSERT(bits >= 1 && bits <= 16, "composeSpatial bits ", bits);
    int sa = 1, sb = 1;
    uint64_t am = magnitude(a, &sa);
    uint64_t bm = magnitude(b, &sb);
    TWOINONE_ASSERT(am < (1ULL << bits) && bm < (1ULL << bits),
                    "operand exceeds declared precision");

    // Decompose magnitudes into 2-bit digits (the BitBricks).
    int digits = ceilDiv(bits, 2);
    int bricks = 0;
    uint64_t acc = 0;
    for (int i = 0; i < digits; ++i) {
        uint64_t ad = (am >> (2 * i)) & 0x3ULL;
        for (int j = 0; j < digits; ++j) {
            uint64_t bd = (bm >> (2 * j)) & 0x3ULL;
            // Every brick position is exercised regardless of the
            // digit values (the hardware cannot skip zeros).
            ++bricks;
            acc += (ad * bd) << (2 * (i + j));
        }
    }
    if (brick_ops_out)
        *brick_ops_out = bricks;
    return sa * sb * static_cast<int64_t>(acc);
}

GroupedMacDatapath::GroupedMacDatapath(int units_per_group)
    : unitsPerGroup_(units_per_group)
{
    TWOINONE_ASSERT(units_per_group >= 1, "need at least one unit");
}

int
GroupedMacDatapath::cyclesForPrecision(int w_bits, int a_bits)
{
    TWOINONE_ASSERT(w_bits >= 1 && w_bits <= 16 && a_bits >= 1 &&
                        a_bits <= 16,
                    "precision out of range");
    int p = std::max(w_bits, a_bits);
    if (p <= 8) {
        // The streamed operand is the shorter one; operands above
        // 4-bit split hi/lo so the serial length is the sub-precision.
        int q = std::min(w_bits, a_bits);
        return (q <= 4) ? q : ceilDiv(q, 2);
    }
    // Above 8-bit: temporal chunking into <=8-bit pieces (Sec. 3.2.1).
    int chunks_w = ceilDiv(w_bits, 8);
    int chunks_a = ceilDiv(a_bits, 8);
    int sub_w = ceilDiv(w_bits, chunks_w);
    int sub_a = ceilDiv(a_bits, chunks_a);
    return chunks_w * chunks_a * cyclesForPrecision(sub_w, sub_a);
}

int64_t
GroupedMacDatapath::macReduce(const std::vector<int64_t> &a,
                              const std::vector<int64_t> &b, int bits,
                              int *cycles_out) const
{
    TWOINONE_ASSERT(a.size() == b.size(), "operand count mismatch");
    // Capacity: at <=4-bit all 4n bit-serial units take independent
    // pairs; above that each pair occupies one unit per group.
    int capacity = (bits <= 4) ? 4 * unitsPerGroup_ : unitsPerGroup_;
    TWOINONE_ASSERT(static_cast<int>(a.size()) <= capacity,
                    "more partial sums than the unit's capacity");
    TWOINONE_ASSERT(bits >= 1 && bits <= 16, "bits out of range");

    if (cycles_out)
        *cycles_out = cyclesForPrecision(bits, bits);

    if (bits <= 4) {
        // Each pair maps onto one bit-serial unit directly.
        int64_t sum = 0;
        BitSerialMultiplier unit(bits);
        for (size_t i = 0; i < a.size(); ++i)
            sum += unit.multiply(a[i], b[i]);
        return sum;
    }

    if (bits <= 8) {
        // Eq. 5: group the equal-magnitude partial products, reduce
        // first, shift once per group (Opt-1 + Opt-2).
        int m = ceilDiv(bits, 2);
        uint64_t lo_mask = (1ULL << m) - 1;
        BitSerialMultiplier unit(m);
        int64_t hh = 0, hl = 0, lh = 0, ll = 0;
        for (size_t i = 0; i < a.size(); ++i) {
            int sa = 1, sb = 1;
            uint64_t am = magnitude(a[i], &sa);
            uint64_t bm = magnitude(b[i], &sb);
            int sign = sa * sb;
            int64_t ah = static_cast<int64_t>(am >> m);
            int64_t al = static_cast<int64_t>(am & lo_mask);
            int64_t bh = static_cast<int64_t>(bm >> m);
            int64_t bl = static_cast<int64_t>(bm & lo_mask);
            // The group adders reduce signed partial products before
            // the single group shift.
            hh += sign * unit.multiply(ah, bh);
            hl += sign * unit.multiply(ah, bl);
            lh += sign * unit.multiply(al, bh);
            ll += sign * unit.multiply(al, bl);
        }
        // Group shifts as multiplications: the sums can be negative,
        // and left-shifting a negative value is UB in C++17.
        return hh * (int64_t{1} << (2 * m)) +
               (hl + lh) * (int64_t{1} << m) + ll;
    }

    // bits > 8: temporal chunking of each operand into two halves of
    // h bits; the four cross terms run sequentially on the MAC unit
    // and accumulate into the (wider) output register.
    int h = ceilDiv(bits, 2);
    uint64_t lo_mask = (1ULL << h) - 1;
    int64_t total = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        int sa = 1, sb = 1;
        uint64_t am = magnitude(a[i], &sa);
        uint64_t bm = magnitude(b[i], &sb);
        int sign = sa * sb;
        int64_t ah = static_cast<int64_t>(am >> h);
        int64_t al = static_cast<int64_t>(am & lo_mask);
        int64_t bh = static_cast<int64_t>(bm >> h);
        int64_t bl = static_cast<int64_t>(bm & lo_mask);
        int64_t hh = macReduce({ah}, {bh}, h, nullptr);
        int64_t hl = macReduce({ah}, {bl}, h, nullptr);
        int64_t lh = macReduce({al}, {bh}, h, nullptr);
        int64_t ll = macReduce({al}, {bl}, h, nullptr);
        total += sign * (hh * (int64_t{1} << (2 * h)) +
                         (hl + lh) * (int64_t{1} << h) + ll);
    }
    return total;
}

} // namespace twoinone
