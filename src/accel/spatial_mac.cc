/**
 * @file
 * Spatial (Bit Fusion) MAC model implementation.
 *
 * Area calibration: total 2.3 normalized units (so that the proposed
 * design's 2.3x throughput/area at 8-bit, Sec. 3.2.3, holds at equal
 * 8-bit throughput per unit) with the Fig. 3 breakdown
 * (26.5% / 67.0% / 6.5%). The shift-add activity factor 2.6 is
 * calibrated so the energy-efficiency/op gap at 8-bit is ~4.88x.
 */

#include "accel/spatial_mac.hh"

#include "common/logging.hh"

namespace twoinone {

MacAreaBreakdown
SpatialMacModel::area() const
{
    MacAreaBreakdown a;
    const double total = 2.3;
    a.multiplier = total * 0.265;
    a.shiftAdd = total * 0.670;
    a.registers = total * 0.065;
    return a;
}

MacActivity
SpatialMacModel::activity() const
{
    MacActivity act;
    // The dynamic compose/decompose network switches heavily ([63]:
    // 79% of the unit's power).
    act.shiftAdd = 2.6;
    return act;
}

int
SpatialMacModel::effectivePrecision(int bits) const
{
    TWOINONE_ASSERT(bits >= 1 && bits <= 16, "precision out of range");
    if (bits <= 2)
        return 2;
    if (bits <= 4)
        return 4;
    if (bits <= 8)
        return 8;
    return 16;
}

double
SpatialMacModel::cyclesPerPass(int w_bits, int a_bits) const
{
    int p = std::max(effectivePrecision(w_bits),
                     effectivePrecision(a_bits));
    // Above 8-bit the fusion unit executes four 8-bit passes
    // temporally (paper Sec. 3.1.1).
    return (p <= 8) ? 1.0 : 4.0;
}

double
SpatialMacModel::productsPerPass(int w_bits, int a_bits) const
{
    int we = effectivePrecision(w_bits);
    int ae = effectivePrecision(a_bits);
    if (we > 8 || ae > 8)
        return 1.0; // whole unit over four passes
    // Bricks per product = (we/2) * (ae/2); 16 bricks total.
    double bricks = (we / 2.0) * (ae / 2.0);
    return 16.0 / bricks;
}

} // namespace twoinone
