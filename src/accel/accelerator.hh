/**
 * @file
 * Accelerator facade: bundles a MAC-unit model, an iso-area MAC-array
 * sizing, the shared memory hierarchy and a performance predictor
 * into one of the three accelerators the paper compares —
 * the 2-in-1 Accelerator, Stripes [37] and Bit Fusion [67].
 *
 * Iso-area setup (paper Sec. 4.1.2): all three accelerators receive
 * the same MAC-array area budget and the same memory configuration;
 * the unit count follows from each design's per-unit area. Dataflow
 * freedom also follows the paper: ours and Stripes are fully
 * optimizable, Bit Fusion's tool only reorders the global-buffer
 * loops over a fixed NoC mapping (Sec. 3.1.3).
 */

#ifndef TWOINONE_ACCEL_ACCELERATOR_HH
#define TWOINONE_ACCEL_ACCELERATOR_HH

#include <memory>

#include "accel/predictor.hh"
#include "quant/precision.hh"

namespace twoinone {

/** Which accelerator design. */
enum class AcceleratorKind
{
    TwoInOne,
    Stripes,
    BitFusion,
};

/** Design name for reports. */
const char *acceleratorName(AcceleratorKind k);

/** How much of the dataflow the design's mapper may optimize. */
enum class DataflowFreedom
{
    Full,        ///< Loop order + tiling at every level.
    GbOrderOnly, ///< Only the global-buffer loop order (Bit Fusion).
};

/**
 * One configured accelerator instance.
 */
class Accelerator
{
  public:
    /**
     * @param kind Design selector.
     * @param mac_array_area Area budget in normalized MAC-area units
     *        (the proposed MAC unit = 1.0).
     * @param tech Technology constants.
     */
    Accelerator(AcceleratorKind kind, double mac_array_area,
                const TechModel &tech);

    AcceleratorKind kind() const { return kind_; }
    const char *name() const { return acceleratorName(kind_); }

    /** The design's dataflow-optimization freedom. */
    DataflowFreedom freedom() const;

    const MacUnitModel &mac() const { return *mac_; }
    int numUnits() const { return numUnits_; }
    double macArrayArea() const { return macArrayArea_; }
    const PerformancePredictor &predictor() const { return *predictor_; }

    /** Run a network with the design's native default dataflows
     * (adaptive greedy for ours/Stripes, the fixed 16x16 NoC mapping
     * for Bit Fusion). @p mode selects how activation
     * re-quantization is charged: dynamic fake-quant (default) or
     * the calibrated static-scale datapath. */
    NetworkPrediction
    run(const NetworkWorkload &net, int w_bits, int a_bits,
        ActQuantMode mode = ActQuantMode::DynamicFakeQuant) const;

    /** The design's native default mapping for one layer. */
    Dataflow defaultLayerDataflow(const ConvShape &shape) const;

    /** Run one layer under an explicit dataflow. */
    LayerPrediction runLayer(const ConvShape &shape, int w_bits,
                             int a_bits, const Dataflow &df) const;

    /**
     * Run a network at every candidate precision of @p set (weights
     * and activations at the same width, the RPS execution model),
     * parallelized over layers x precisions on the global thread
     * pool with deterministic chunking. Entry i is the prediction at
     * set.bits()[i] and is bit-identical to run(net, q, q, mode).
     */
    std::vector<NetworkPrediction>
    sweep(const NetworkWorkload &net, const PrecisionSet &set,
          ActQuantMode mode = ActQuantMode::DynamicFakeQuant) const;

    /** The default area budget shared by all benches: a 256-unit
     * Bit Fusion array (256 x 2.3 normalized units). */
    static double defaultAreaBudget();

  private:
    AcceleratorKind kind_;
    double macArrayArea_;
    MacUnitModelPtr mac_;
    int numUnits_;
    std::unique_ptr<PerformancePredictor> predictor_;
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_ACCELERATOR_HH
