/**
 * @file
 * Shared MacUnitModel behaviour.
 */

#include "accel/mac_unit.hh"

#include "common/logging.hh"

namespace twoinone {

double
MacAreaBreakdown::shiftAddFraction() const
{
    double t = total();
    return (t > 0.0) ? shiftAdd / t : 0.0;
}

double
MacUnitModel::reductionWays(int w_bits, int a_bits) const
{
    (void)w_bits;
    (void)a_bits;
    return 1.0;
}

double
MacUnitModel::macsPerCycle(int w_bits, int a_bits) const
{
    double c = cyclesPerPass(w_bits, a_bits);
    TWOINONE_ASSERT(c > 0.0, "non-positive pass cycles");
    return productsPerPass(w_bits, a_bits) / c;
}

double
MacUnitModel::macsPerCyclePerArea(int w_bits, int a_bits) const
{
    double a = area().total();
    TWOINONE_ASSERT(a > 0.0, "non-positive unit area");
    return macsPerCycle(w_bits, a_bits) / a;
}

double
MacUnitModel::energyPerMac(int w_bits, int a_bits,
                           const TechModel &tech) const
{
    const MacAreaBreakdown a = area();
    const MacActivity act = activity();
    double active_area = a.multiplier * act.multiplier +
                         a.shiftAdd * act.shiftAdd +
                         a.registers * act.registers;
    double energy_per_cycle = active_area * tech.macEnergyScale;
    double products = productsPerPass(w_bits, a_bits);
    TWOINONE_ASSERT(products > 0.0, "non-positive products per pass");
    return energy_per_cycle * cyclesPerPass(w_bits, a_bits) / products;
}

} // namespace twoinone
