/**
 * @file
 * Temporal MAC model implementation.
 *
 * Area calibration: total 0.45 normalized units with the Fig. 3
 * breakdown (9.4% multiplier / 60.9% shift-add / 29.7% registers).
 */

#include "accel/temporal_mac.hh"

#include "common/logging.hh"

namespace twoinone {

MacAreaBreakdown
TemporalMacModel::area() const
{
    MacAreaBreakdown a;
    const double total = 0.45;
    a.multiplier = total * 0.094;
    a.shiftAdd = total * 0.609;
    a.registers = total * 0.297;
    return a;
}

MacActivity
TemporalMacModel::activity() const
{
    MacActivity act;
    // The max-precision shifter/accumulator toggles every cycle.
    act.shiftAdd = 1.5;
    return act;
}

double
TemporalMacModel::cyclesPerPass(int w_bits, int a_bits) const
{
    (void)w_bits; // weights are held in parallel form
    TWOINONE_ASSERT(a_bits >= 1 && a_bits <= maxBits_,
                    "temporal unit asked for ", a_bits, "-bit serial");
    return static_cast<double>(a_bits);
}

double
TemporalMacModel::productsPerPass(int w_bits, int a_bits) const
{
    (void)w_bits;
    (void)a_bits;
    return 1.0;
}

} // namespace twoinone
