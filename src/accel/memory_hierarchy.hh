/**
 * @file
 * Memory-hierarchy specification: capacities, bandwidths, and access
 * energies of RF / NoC / global buffer / DRAM. Every accelerator in
 * the comparison (ours, Stripes, Bit Fusion) is built with the *same*
 * hierarchy, matching the paper's iso-memory/iso-array-area setup
 * (Sec. 4.1.2).
 */

#ifndef TWOINONE_ACCEL_MEMORY_HIERARCHY_HH
#define TWOINONE_ACCEL_MEMORY_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <string>

#include "accel/dataflow.hh"
#include "accel/tech_model.hh"

namespace twoinone {

/**
 * One memory level's physical parameters.
 */
struct MemoryLevelSpec
{
    /** Capacity in bits (0 = unbounded, e.g. DRAM; NoC is transport
     * only and also 0). */
    double capacityBits = 0.0;
    /** Sustained bandwidth in bits per cycle. */
    double bandwidthBitsPerCycle = 0.0;
    /** Access energy in pJ per bit. */
    double energyPerBit = 0.0;
};

/**
 * The four-level hierarchy the predictor walks.
 */
struct MemoryHierarchy
{
    std::array<MemoryLevelSpec, kNumLevels> levels;

    const MemoryLevelSpec &level(Level l) const
    {
        return levels[static_cast<size_t>(l)];
    }
    MemoryLevelSpec &level(Level l)
    {
        return levels[static_cast<size_t>(l)];
    }

    /**
     * The default configuration used by all benches: 512-bit RF per
     * MAC unit, 16 KB/unit-scaled NoC bandwidth, a 512 KB global
     * buffer, and DDR-class DRAM bandwidth.
     *
     * @param tech Source of per-bit energies.
     * @param num_units MAC-unit count (scales RF capacity and NoC
     *        bandwidth, which are per-unit resources).
     */
    static MemoryHierarchy makeDefault(const TechModel &tech,
                                       int num_units);
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_MEMORY_HIERARCHY_HH
