/**
 * @file
 * Abstract MAC-unit performance/area/energy model.
 *
 * A MacUnitModel answers, for every (weight precision, activation
 * precision) pair: how many cycles one pass takes, how many MAC
 * operations the pass completes, what the unit's area breakdown is,
 * and how much energy one MAC costs. The three concrete models —
 * temporal (Stripes), spatial (Bit Fusion) and the proposed
 * spatial-temporal design — live in their own files.
 */

#ifndef TWOINONE_ACCEL_MAC_UNIT_HH
#define TWOINONE_ACCEL_MAC_UNIT_HH

#include <memory>
#include <string>

#include "accel/tech_model.hh"

namespace twoinone {

/**
 * Area of one MAC unit split into the paper's Fig. 3 components
 * (normalized area units; 1.0 = the proposed MAC unit's total).
 */
struct MacAreaBreakdown
{
    double multiplier = 0.0; ///< Multiplier / AND-array area.
    double shiftAdd = 0.0;   ///< Shifters + accumulators/adders.
    double registers = 0.0;  ///< Pipeline and operand registers.

    double total() const { return multiplier + shiftAdd + registers; }

    /** Fraction of total occupied by the shift-add logic. */
    double shiftAddFraction() const;
};

/**
 * Per-component switching-activity factors, the energy calibration
 * knob (see tech_model.hh).
 */
struct MacActivity
{
    double multiplier = 1.0;
    double shiftAdd = 1.0;
    double registers = 0.8;
};

/**
 * Abstract precision-scalable MAC-unit model.
 */
class MacUnitModel
{
  public:
    virtual ~MacUnitModel() = default;

    /** Design name for reports. */
    virtual std::string name() const = 0;

    /** Static area breakdown of one unit. */
    virtual MacAreaBreakdown area() const = 0;

    /** Switching-activity calibration of this design. */
    virtual MacActivity activity() const = 0;

    /**
     * Cycles of one pass at the given precisions.
     * A "pass" is the unit's natural repetition period.
     */
    virtual double cyclesPerPass(int w_bits, int a_bits) const = 0;

    /** MAC operations completed by one pass. */
    virtual double productsPerPass(int w_bits, int a_bits) const = 0;

    /**
     * Intra-unit parallelism over *reduction* operands: how many
     * distinct (weight, activation) pairs of the same output a pass
     * consumes. 1 for designs whose parallelism is over independent
     * outputs.
     */
    virtual double reductionWays(int w_bits, int a_bits) const;

    /**
     * The precision the unit actually executes when asked for
     * @p bits (spatial designs round up to a supported precision;
     * see paper Fig. 2 discussion).
     */
    virtual int effectivePrecision(int bits) const { return bits; }

    /** Throughput: MACs per cycle of one unit. */
    double macsPerCycle(int w_bits, int a_bits) const;

    /** Throughput normalized by unit area. */
    double macsPerCyclePerArea(int w_bits, int a_bits) const;

    /**
     * Energy of one MAC operation, pJ.
     *
     * Modeled as (active area x activity x scale) per cycle, spread
     * over the MACs one pass completes.
     */
    double energyPerMac(int w_bits, int a_bits,
                        const TechModel &tech) const;
};

using MacUnitModelPtr = std::unique_ptr<MacUnitModel>;

} // namespace twoinone

#endif // TWOINONE_ACCEL_MAC_UNIT_HH
