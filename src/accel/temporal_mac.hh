/**
 * @file
 * Temporal (bit-serial) MAC-unit model in the style of Stripes [37].
 *
 * One operand (the activation) streams one bit per cycle through an
 * AND array, a shifter and an accumulator sized for the *maximum*
 * supported precision (16-bit) — which is exactly why the shift-add
 * logic dominates the unit's area (paper Fig. 3, ~60.9%, and the
 * "90% of area" observation of [67] for 16-bit serial units).
 */

#ifndef TWOINONE_ACCEL_TEMPORAL_MAC_HH
#define TWOINONE_ACCEL_TEMPORAL_MAC_HH

#include "accel/mac_unit.hh"

namespace twoinone {

/**
 * Stripes-style bit-serial MAC unit model.
 */
class TemporalMacModel : public MacUnitModel
{
  public:
    /** @param max_bits Highest supported precision (default 16). */
    explicit TemporalMacModel(int max_bits = 16) : maxBits_(max_bits) {}

    std::string name() const override { return "Stripes(temporal)"; }

    MacAreaBreakdown area() const override;
    MacActivity activity() const override;
    double cyclesPerPass(int w_bits, int a_bits) const override;
    double productsPerPass(int w_bits, int a_bits) const override;

    int maxBits() const { return maxBits_; }

  private:
    int maxBits_;
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_TEMPORAL_MAC_HH
