/**
 * @file
 * Cycle-stepped functional simulation of the 2-in-1 MAC array.
 *
 * The analytical predictor (predictor.hh) answers "how fast/with how
 * much energy"; this simulator answers "is the datapath *correct* and
 * does its schedule really take that many cycles". It executes a
 * quantized convolution layer on an array of grouped spatial-temporal
 * MAC units (bit-true GroupedMacDatapath arithmetic, the Sec. 3.2.1
 * schedule cycle by cycle) and reports the exact integer outputs plus
 * the cycle count, so tests can check both against the nn library's
 * quantized execution and against the predictor's compute model.
 */

#ifndef TWOINONE_ACCEL_ARRAY_SIM_HH
#define TWOINONE_ACCEL_ARRAY_SIM_HH

#include <cstdint>
#include <vector>

#include "accel/bitserial.hh"
#include "quant/quant_tensor.hh"
#include "workloads/layer_shape.hh"

namespace twoinone {

/**
 * Integer feature map / weight container for the simulator:
 * row-major [C, H, W] (activations) or [K, C, R, S] (weights).
 */
struct IntTensor
{
    std::vector<int> shape;
    std::vector<int64_t> data;

    int64_t &at(std::initializer_list<int> idx);
    int64_t at(std::initializer_list<int> idx) const;
    size_t size() const { return data.size(); }

    static IntTensor zeros(std::vector<int> shape);

    /** Copy a QuantTensor's codes (the canonical quantized form) —
     * the simulator consumes codes directly, no float re-pass. */
    static IntTensor fromCodes(const QuantTensor &q);
};

/**
 * Result of simulating one layer on the array.
 */
struct ArraySimResult
{
    /** Exact integer outputs [K, OY, OX]. */
    IntTensor output;
    /** Cycles the schedule consumed. */
    uint64_t cycles = 0;
    /** MAC operations executed (excluding idle-lane padding). */
    uint64_t macs = 0;
    /** MAC slots wasted to under-filled passes. */
    uint64_t idleMacSlots = 0;
};

/**
 * The array simulator: num_units grouped MAC units stepping in
 * lockstep waves.
 */
class MacArraySimulator
{
  public:
    /**
     * @param num_units MAC units in the array.
     * @param units_per_group Partial sums per unit pass (Opt-1's n).
     */
    explicit MacArraySimulator(int num_units, int units_per_group = 4);

    /**
     * Execute a conv layer (batch 1).
     *
     * @param weights Integer weight codes [K, C, R, S], |w| < 2^(p-1).
     * @param input Integer activation codes [C, IY, IX].
     * @param stride Convolution stride.
     * @param padding Zero padding.
     * @param w_bits Weight precision.
     * @param a_bits Activation precision.
     */
    ArraySimResult runConv(const IntTensor &weights,
                           const IntTensor &input, int stride,
                           int padding, int w_bits, int a_bits) const;

    /**
     * Execute a conv layer straight from canonical quantized tensors:
     * the same int codes the nn library's forwardQuantized consumes
     * (e.g. out of the RpsEngine cache and an ActQuant), with the
     * precisions taken from the QuantTensors themselves. @p weights
     * is [K,C,R,S]; @p input is one image [C,IY,IX].
     */
    ArraySimResult runConv(const QuantTensor &weights,
                           const QuantTensor &input, int stride,
                           int padding) const;

    int numUnits() const { return numUnits_; }

  private:
    int numUnits_;
    int unitsPerGroup_;
    GroupedMacDatapath datapath_;
};

} // namespace twoinone

#endif // TWOINONE_ACCEL_ARRAY_SIM_HH
