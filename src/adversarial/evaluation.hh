/**
 * @file
 * Evaluation harness: natural accuracy, robust accuracy under a given
 * attack with independent attack/inference precisions (the Fig. 1
 * transfer matrix), and RPS random-precision inference evaluation
 * (Alg. 1 lines 14-19).
 */

#ifndef TWOINONE_ADVERSARIAL_EVALUATION_HH
#define TWOINONE_ADVERSARIAL_EVALUATION_HH

#include "adversarial/attack.hh"
#include "data/synthetic.hh"
#include "serve/session.hh"

namespace twoinone {

/**
 * Natural (clean) accuracy of the network at its active precision.
 *
 * @param net Network under test.
 * @param data Evaluation dataset.
 * @param batch_size Evaluation batch size.
 * @return Accuracy percentage in [0, 100].
 */
double naturalAccuracy(Network &net, const Dataset &data,
                       int batch_size = 64);

/**
 * Robust accuracy with explicit attack / inference precisions.
 *
 * The attack is generated against the model quantized to
 * @p attack_bits, then evaluated with the model quantized to
 * @p infer_bits — off-diagonal settings measure transferability
 * (paper Fig. 1).
 *
 * @param net Network under test (precision is restored on return).
 * @param attack Attack to run.
 * @param data Evaluation dataset.
 * @param attack_bits Precision used for attack generation (0 = FP).
 * @param infer_bits Precision used for inference (0 = FP).
 * @param rng Attack randomness.
 * @param batch_size Evaluation batch size.
 * @return Robust accuracy percentage.
 */
double robustAccuracy(Network &net, Attack &attack, const Dataset &data,
                      int attack_bits, int infer_bits, Rng &rng,
                      int batch_size = 64);

/**
 * RPS-inference robust accuracy (Alg. 1 RPS Inference).
 *
 * Per batch, the adversary samples an attack precision and the
 * defender independently samples an inference precision, both
 * uniformly from the session's candidate set — the paper's default
 * threat model where the adversary knows and uses the same candidate
 * set (Sec. 4.1.1). Precision switches run through the session's
 * engine cache; predictions run plan-routed.
 *
 * @param s Deployed model under test.
 * @param attack Attack to run.
 * @param data Evaluation dataset.
 * @param rng Randomness for both samplers.
 * @param batch_size Evaluation batch size (one precision draw each).
 * @return Robust accuracy percentage.
 */
double rpsRobustAccuracy(Session &s, Attack &attack, const Dataset &data,
                         Rng &rng, int batch_size = 16);

/**
 * Network-level convenience: wires a temporary Session (engine cache
 * on @p set, plan-routed predictions) around @p net, runs the Session
 * overload, and restores the network's precision and plan routing.
 */
double rpsRobustAccuracy(Network &net, Attack &attack, const Dataset &data,
                         const PrecisionSet &set, Rng &rng,
                         int batch_size = 16);

/**
 * RPS natural accuracy: random inference precision per batch, clean
 * inputs.
 */
double rpsNaturalAccuracy(Session &s, const Dataset &data, Rng &rng,
                          int batch_size = 16);

/** Network-level convenience (see rpsRobustAccuracy). */
double rpsNaturalAccuracy(Network &net, const Dataset &data,
                          const PrecisionSet &set, Rng &rng,
                          int batch_size = 16);

/**
 * RPS natural accuracy served from the integer datapath
 * (Network::forwardQuantized through the engine's cached int codes) —
 * what the bit-serial accelerator would actually compute. Matches
 * rpsNaturalAccuracy up to the documented int-vs-float rounding
 * tolerance; calibrate the session first for the quantization-free
 * static-scale path.
 */
double rpsNaturalAccuracyQuantized(Session &s, const Dataset &data,
                                   Rng &rng, int batch_size = 16);

/** Network-level convenience (see rpsRobustAccuracy). */
double rpsNaturalAccuracyQuantized(Network &net, const Dataset &data,
                                   const PrecisionSet &set, Rng &rng,
                                   int batch_size = 16);

/**
 * The Fig. 1 transferability matrix.
 *
 * entry[i][j] = robust accuracy when attacking at set[i] and
 * inferring at set[j].
 */
std::vector<std::vector<double>>
transferMatrix(Network &net, Attack &attack, const Dataset &data,
               const PrecisionSet &set, Rng &rng, int batch_size = 64);

} // namespace twoinone

#endif // TWOINONE_ADVERSARIAL_EVALUATION_HH
