/**
 * @file
 * E-PGD: the paper's customized adaptive attack (Tab. 6, Sec. 4.2.3).
 *
 * The adversary is assumed to know the full RPS precision set and
 * attacks the *ensemble* of all candidate precisions: every PGD step
 * follows the gradient of the summed cross-entropy over the model
 * quantized to each precision in the set, making the perturbation
 * aware of all precisions simultaneously.
 */

#ifndef TWOINONE_ADVERSARIAL_EPGD_HH
#define TWOINONE_ADVERSARIAL_EPGD_HH

#include "adversarial/attack.hh"

namespace twoinone {

/**
 * Ensemble-over-precisions PGD.
 */
class EpgdAttack : public Attack
{
  public:
    /**
     * @param cfg Shared attack parameters.
     * @param precisions Candidate set assumed known to the adversary.
     */
    EpgdAttack(AttackConfig cfg, PrecisionSet precisions)
        : Attack(cfg), precisions_(std::move(precisions))
    {
    }

    Tensor perturb(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Rng &rng) override;

    std::string name() const override;

  private:
    PrecisionSet precisions_;
};

} // namespace twoinone

#endif // TWOINONE_ADVERSARIAL_EPGD_HH
