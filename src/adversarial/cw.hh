/**
 * @file
 * CW-Inf attack (Carlini & Wagner [8]): PGD-style L-infinity iterations
 * maximizing the CW margin objective instead of cross-entropy, matching
 * the paper's Tab. 5 "CW-Inf" rows.
 */

#ifndef TWOINONE_ADVERSARIAL_CW_HH
#define TWOINONE_ADVERSARIAL_CW_HH

#include "adversarial/attack.hh"

namespace twoinone {

/**
 * L-infinity Carlini-Wagner margin attack.
 */
class CwInfAttack : public Attack
{
  public:
    /**
     * @param cfg Shared attack parameters.
     * @param kappa Confidence margin of the CW objective.
     */
    explicit CwInfAttack(AttackConfig cfg, float kappa = 0.0f)
        : Attack(cfg), kappa_(kappa)
    {
    }

    Tensor perturb(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Rng &rng) override;

    std::string name() const override { return "CW-Inf"; }

  private:
    float kappa_;
};

} // namespace twoinone

#endif // TWOINONE_ADVERSARIAL_CW_HH
