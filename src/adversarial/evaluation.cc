/**
 * @file
 * Evaluation harness implementation.
 */

#include "adversarial/evaluation.hh"

#include "common/stats.hh"
#include "quant/rps_engine.hh"

namespace twoinone {

namespace {

/** Iterate a dataset in batches, invoking fn(batch_x, batch_labels). */
template <typename Fn>
void
forEachBatch(const Dataset &data, int batch_size, Fn &&fn)
{
    int n = data.size();
    for (int start = 0; start < n; start += batch_size) {
        int len = std::min(batch_size, n - start);
        Dataset b = data.batch(start, len);
        fn(b.images, b.labels);
    }
}

/**
 * RAII: route the network's inference entry points through compiled
 * plans for the duration of an evaluation (predict and
 * predictQuantized execute the flat allocation-free step list instead
 * of the per-layer loops — bit-identical outputs), restoring the
 * previous routing state — including a caller-installed plan shape —
 * on scope exit. Attack generation inside the scope is unaffected:
 * forward()/backward() keep the legacy loops. A no-op on an empty
 * dataset (there is nothing to size a plan for).
 */
class ScopedPlanExecution
{
  public:
    ScopedPlanExecution(Network &net, const Dataset &data,
                        int batch_size)
        : net_(net), touched_(data.size() > 0),
          wasEnabled_(net.planExecutionEnabled()),
          prevShape_(net.planMaxShape())
    {
        if (!touched_)
            return;
        std::vector<int> shape = data.images.shape();
        shape[0] = std::min(batch_size, data.size());
        net_.enablePlanExecution(shape);
    }

    ~ScopedPlanExecution()
    {
        if (!touched_)
            return;
        if (wasEnabled_)
            net_.enablePlanExecution(prevShape_);
        else
            net_.disablePlanExecution();
    }

  private:
    Network &net_;
    bool touched_;
    bool wasEnabled_;
    std::vector<int> prevShape_;
};

} // namespace

double
naturalAccuracy(Network &net, const Dataset &data, int batch_size)
{
    ScopedPlanExecution plans(net, data, batch_size);
    Accuracy acc;
    forEachBatch(data, batch_size,
                 [&](const Tensor &x, const std::vector<int> &y) {
                     std::vector<int> pred = net.predict(x);
                     for (size_t i = 0; i < y.size(); ++i)
                         acc.add(pred[i] == y[i]);
                 });
    return acc.percent();
}

double
robustAccuracy(Network &net, Attack &attack, const Dataset &data,
               int attack_bits, int infer_bits, Rng &rng, int batch_size)
{
    int restore = net.activePrecision();
    Accuracy acc;
    forEachBatch(data, batch_size,
                 [&](const Tensor &x, const std::vector<int> &y) {
                     net.setPrecision(attack_bits);
                     Tensor x_adv = attack.perturb(net, x, y, rng);
                     net.setPrecision(infer_bits);
                     std::vector<int> pred = net.predict(x_adv);
                     for (size_t i = 0; i < y.size(); ++i)
                         acc.add(pred[i] == y[i]);
                 });
    net.setPrecision(restore);
    return acc.percent();
}

double
rpsRobustAccuracy(Session &s, Attack &attack, const Dataset &data,
                  Rng &rng, int batch_size)
{
    // Inference predictions run plan-routed through the session; the
    // attack's forward/backward passes keep the legacy loops they
    // need (Session only reroutes the inference entry points).
    Accuracy acc;
    const PrecisionSet &set = s.candidates();
    forEachBatch(data, batch_size,
                 [&](const Tensor &x, const std::vector<int> &y) {
                     // Adversary and defender sample independently
                     // (paper Sec. 4.1.1 threat model).
                     int attack_bits = set.sample(rng);
                     int infer_bits = set.sample(rng);
                     s.switchPrecision(attack_bits);
                     Tensor x_adv =
                         attack.perturb(s.network(), x, y, rng);
                     s.switchPrecision(infer_bits);
                     std::vector<int> pred = s.predict(x_adv);
                     for (size_t i = 0; i < y.size(); ++i)
                         acc.add(pred[i] == y[i]);
                 });
    return acc.percent();
}

double
rpsNaturalAccuracy(Session &s, const Dataset &data, Rng &rng,
                   int batch_size)
{
    Accuracy acc;
    forEachBatch(data, batch_size,
                 [&](const Tensor &x, const std::vector<int> &y) {
                     s.switchRandom(rng);
                     std::vector<int> pred = s.predict(x);
                     for (size_t i = 0; i < y.size(); ++i)
                         acc.add(pred[i] == y[i]);
                 });
    return acc.percent();
}

double
rpsNaturalAccuracyQuantized(Session &s, const Dataset &data, Rng &rng,
                            int batch_size)
{
    Accuracy acc;
    forEachBatch(data, batch_size,
                 [&](const Tensor &x, const std::vector<int> &y) {
                     s.switchRandom(rng);
                     std::vector<int> pred = s.predictQuantized(x);
                     for (size_t i = 0; i < y.size(); ++i)
                         acc.add(pred[i] == y[i]);
                 });
    return acc.percent();
}

namespace {

/**
 * The shared shape of the Network-level conveniences: wire a
 * temporary attached Session (engine cache on @p set, plan-routed
 * predictions), run @p fn against it, then restore the network's
 * precision; the Session destructor restores the plan routing. The
 * old five-step wiring, now an internal detail.
 */
template <typename Fn>
double
withSession(Network &net, const PrecisionSet &set, Fn &&fn)
{
    TWOINONE_ASSERT(!set.empty(), "RPS evaluation needs a precision set");
    int restore = net.activePrecision();
    double out;
    {
        SessionConfig cfg;
        cfg.cacheSet = set;
        Session s = Session::attach(net, cfg);
        out = fn(s);
    }
    net.setPrecision(restore);
    return out;
}

} // namespace

double
rpsRobustAccuracy(Network &net, Attack &attack, const Dataset &data,
                  const PrecisionSet &set, Rng &rng, int batch_size)
{
    return withSession(net, set, [&](Session &s) {
        return rpsRobustAccuracy(s, attack, data, rng, batch_size);
    });
}

double
rpsNaturalAccuracy(Network &net, const Dataset &data,
                   const PrecisionSet &set, Rng &rng, int batch_size)
{
    return withSession(net, set, [&](Session &s) {
        return rpsNaturalAccuracy(s, data, rng, batch_size);
    });
}

double
rpsNaturalAccuracyQuantized(Network &net, const Dataset &data,
                            const PrecisionSet &set, Rng &rng,
                            int batch_size)
{
    return withSession(net, set, [&](Session &s) {
        return rpsNaturalAccuracyQuantized(s, data, rng, batch_size);
    });
}

std::vector<std::vector<double>>
transferMatrix(Network &net, Attack &attack, const Dataset &data,
               const PrecisionSet &set, Rng &rng, int batch_size)
{
    size_t k = set.size();
    std::vector<std::vector<double>> m(k, std::vector<double>(k, 0.0));
    for (size_t i = 0; i < k; ++i) {
        for (size_t j = 0; j < k; ++j) {
            m[i][j] = robustAccuracy(net, attack, data, set.bits()[i],
                                     set.bits()[j], rng, batch_size);
        }
    }
    return m;
}

} // namespace twoinone
