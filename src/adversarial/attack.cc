/**
 * @file
 * Shared attack helpers.
 */

#include "adversarial/attack.hh"

#include <cmath>

#include "tensor/ops.hh"

namespace twoinone {

AttackConfig
AttackConfig::fromEps255(float eps255, float alpha255, int steps)
{
    AttackConfig cfg;
    cfg.eps = eps255 / 255.0f;
    cfg.alpha = alpha255 / 255.0f;
    cfg.steps = steps;
    return cfg;
}

float
ceInputGradient(Network &net, const Tensor &x,
                const std::vector<int> &labels, bool train_mode,
                Tensor &grad_out)
{
    Tensor logits = net.forward(x, train_mode);
    SoftmaxCrossEntropy loss;
    float l = loss.forward(logits, labels);
    grad_out = net.backward(loss.backward());
    return l;
}

std::vector<float>
perSampleCeLoss(Network &net, const Tensor &x,
                const std::vector<int> &labels)
{
    Tensor logits = net.forward(x, /*train=*/false);
    Tensor probs = softmax(logits);
    std::vector<float> out(labels.size());
    for (size_t i = 0; i < labels.size(); ++i) {
        float p = probs.at2(static_cast<int>(i), labels[i]);
        out[i] = -std::log(std::max(1e-12f, p));
    }
    return out;
}

} // namespace twoinone
