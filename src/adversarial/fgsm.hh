/**
 * @file
 * FGSM (Goodfellow et al. [24]) and FGSM-RS (Wong et al., "Fast is
 * better than free" [78]) attacks — both one-step sign attacks; RS adds
 * a random start and a step size alpha > eps clipped back to the ball.
 */

#ifndef TWOINONE_ADVERSARIAL_FGSM_HH
#define TWOINONE_ADVERSARIAL_FGSM_HH

#include "adversarial/attack.hh"

namespace twoinone {

/**
 * One-step fast gradient sign method.
 */
class FgsmAttack : public Attack
{
  public:
    explicit FgsmAttack(AttackConfig cfg) : Attack(cfg) {}

    Tensor perturb(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Rng &rng) override;

    std::string name() const override { return "FGSM"; }
};

/**
 * FGSM with random start (the fast adversarial-training attack).
 */
class FgsmRsAttack : public Attack
{
  public:
    explicit FgsmRsAttack(AttackConfig cfg) : Attack(cfg)
    {
        cfg_.randomStart = true;
    }

    Tensor perturb(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Rng &rng) override;

    std::string name() const override { return "FGSM-RS"; }
};

} // namespace twoinone

#endif // TWOINONE_ADVERSARIAL_FGSM_HH
