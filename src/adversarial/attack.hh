/**
 * @file
 * Attack abstractions shared by all adversarial attacks.
 *
 * Every attack perturbs a batch of inputs within an L-infinity ball of
 * radius eps (the paper's threat model) against the network *at its
 * currently active precision* — precision switching between attack
 * generation and inference is what the transferability experiments
 * (paper Fig. 1) and RPS inference exploit.
 */

#ifndef TWOINONE_ADVERSARIAL_ATTACK_HH
#define TWOINONE_ADVERSARIAL_ATTACK_HH

#include <string>
#include <vector>

#include "nn/loss.hh"
#include "nn/network.hh"

namespace twoinone {

/**
 * Shared attack hyper-parameters. Epsilons follow the paper's
 * convention of being expressed on the 0-255 pixel scale.
 */
struct AttackConfig
{
    /** L-inf radius (0-1 scale). Default 8/255. */
    float eps = 8.0f / 255.0f;
    /** Step size (0-1 scale). Default 2/255. */
    float alpha = 2.0f / 255.0f;
    /** Iteration count. */
    int steps = 20;
    /** Random restarts (best per-sample result kept). */
    int restarts = 1;
    /** Start from a uniform random point in the eps-ball. */
    bool randomStart = true;
    /** Valid input range. */
    float clampLo = 0.0f;
    float clampHi = 1.0f;
    /** Run the model in training mode while generating (used during
     * adversarial training, where gradients w.r.t. batch statistics
     * are the convention). */
    bool trainMode = false;

    /** Convenience: build from an epsilon on the 0-255 scale. */
    static AttackConfig fromEps255(float eps255, float alpha255,
                                   int steps);
};

/**
 * Abstract adversarial attack.
 */
class Attack
{
  public:
    explicit Attack(AttackConfig cfg) : cfg_(cfg) {}
    virtual ~Attack() = default;

    /**
     * Produce adversarial examples for a batch.
     *
     * @param net Target network (attacked at its active precision).
     * @param x Clean inputs [N,C,H,W] in [clampLo, clampHi].
     * @param labels Ground-truth labels.
     * @param rng Randomness for starts/exploration.
     * @return Adversarial inputs, same shape as x, within the eps
     *         ball and the valid range.
     */
    virtual Tensor perturb(Network &net, const Tensor &x,
                           const std::vector<int> &labels, Rng &rng) = 0;

    /** Attack name for reports, e.g. "PGD-20". */
    virtual std::string name() const = 0;

    const AttackConfig &config() const { return cfg_; }
    AttackConfig &config() { return cfg_; }

  protected:
    AttackConfig cfg_;
};

/**
 * Compute the cross-entropy loss and its gradient wrt the input.
 *
 * @param net Network (run at its active precision).
 * @param x Input batch.
 * @param labels Ground truth.
 * @param train_mode Forward in training mode (batch statistics).
 * @param grad_out Receives dLoss/dx.
 * @return Mean loss.
 */
float ceInputGradient(Network &net, const Tensor &x,
                      const std::vector<int> &labels, bool train_mode,
                      Tensor &grad_out);

/**
 * Per-sample cross-entropy losses of the network on a batch
 * (no gradients). Used for per-sample restart selection.
 */
std::vector<float> perSampleCeLoss(Network &net, const Tensor &x,
                                   const std::vector<int> &labels);

} // namespace twoinone

#endif // TWOINONE_ADVERSARIAL_ATTACK_HH
