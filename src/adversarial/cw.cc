/**
 * @file
 * CW-Inf implementation.
 */

#include "adversarial/cw.hh"

#include "tensor/ops.hh"

namespace twoinone {

Tensor
CwInfAttack::perturb(Network &net, const Tensor &x,
                     const std::vector<int> &labels, Rng &rng)
{
    Tensor x_adv = x;
    if (cfg_.randomStart) {
        for (size_t i = 0; i < x_adv.size(); ++i)
            x_adv[i] += static_cast<float>(rng.uniform(-cfg_.eps, cfg_.eps));
        ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
    }

    CwMarginLoss loss(kappa_);
    for (int t = 0; t < cfg_.steps; ++t) {
        Tensor logits = net.forward(x_adv, cfg_.trainMode);
        loss.forward(logits, labels);
        Tensor grad = net.backward(loss.backward());
        for (size_t i = 0; i < x_adv.size(); ++i) {
            float s = (grad[i] > 0.0f) ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f);
            x_adv[i] += cfg_.alpha * s;
        }
        ops::projectLinf(x, cfg_.eps, x_adv);
        ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
    }
    return x_adv;
}

} // namespace twoinone
