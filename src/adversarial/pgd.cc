/**
 * @file
 * PGD attack implementation with per-sample restart selection.
 */

#include "adversarial/pgd.hh"

#include <sstream>

#include "tensor/ops.hh"

namespace twoinone {

Tensor
PgdAttack::perturb(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Rng &rng)
{
    int n = x.dim(0);
    size_t sample_sz = x.size() / static_cast<size_t>(n);

    Tensor best = x;
    std::vector<float> best_loss(static_cast<size_t>(n), -1e30f);

    for (int r = 0; r < std::max(1, cfg_.restarts); ++r) {
        Tensor x_adv = x;
        if (cfg_.randomStart) {
            for (size_t i = 0; i < x_adv.size(); ++i) {
                x_adv[i] += static_cast<float>(
                    rng.uniform(-cfg_.eps, cfg_.eps));
            }
            ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
        }

        for (int t = 0; t < cfg_.steps; ++t) {
            Tensor grad;
            ceInputGradient(net, x_adv, labels, cfg_.trainMode, grad);
            for (size_t i = 0; i < x_adv.size(); ++i) {
                float s = (grad[i] > 0.0f)
                              ? 1.0f
                              : (grad[i] < 0.0f ? -1.0f : 0.0f);
                x_adv[i] += cfg_.alpha * s;
            }
            ops::projectLinf(x, cfg_.eps, x_adv);
            ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
        }

        std::vector<float> losses = perSampleCeLoss(net, x_adv, labels);
        for (int i = 0; i < n; ++i) {
            if (losses[static_cast<size_t>(i)] >
                best_loss[static_cast<size_t>(i)]) {
                best_loss[static_cast<size_t>(i)] =
                    losses[static_cast<size_t>(i)];
                for (size_t k = 0; k < sample_sz; ++k) {
                    best[static_cast<size_t>(i) * sample_sz + k] =
                        x_adv[static_cast<size_t>(i) * sample_sz + k];
                }
            }
        }
    }
    return best;
}

std::string
PgdAttack::name() const
{
    std::ostringstream oss;
    oss << "PGD-" << cfg_.steps;
    return oss.str();
}

} // namespace twoinone
