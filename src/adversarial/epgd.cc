/**
 * @file
 * E-PGD implementation. Note the attack restores the network's active
 * precision on exit, so evaluation code can keep switching freely.
 */

#include "adversarial/epgd.hh"

#include <sstream>

#include "tensor/ops.hh"

namespace twoinone {

Tensor
EpgdAttack::perturb(Network &net, const Tensor &x,
                    const std::vector<int> &labels, Rng &rng)
{
    TWOINONE_ASSERT(!precisions_.empty(), "E-PGD needs a precision set");
    int restore_bits = net.activePrecision();

    Tensor x_adv = x;
    if (cfg_.randomStart) {
        for (size_t i = 0; i < x_adv.size(); ++i)
            x_adv[i] += static_cast<float>(rng.uniform(-cfg_.eps, cfg_.eps));
        ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
    }

    for (int t = 0; t < cfg_.steps; ++t) {
        // Ensemble gradient: mean of the CE gradients across all
        // candidate precisions (gradient of the averaged objective).
        Tensor total = Tensor::zeros(x.shape());
        for (int q : precisions_.bits()) {
            net.setPrecision(q);
            Tensor grad;
            ceInputGradient(net, x_adv, labels, cfg_.trainMode, grad);
            ops::addInPlace(total, grad);
        }
        for (size_t i = 0; i < x_adv.size(); ++i) {
            float s = (total[i] > 0.0f) ? 1.0f
                                        : (total[i] < 0.0f ? -1.0f : 0.0f);
            x_adv[i] += cfg_.alpha * s;
        }
        ops::projectLinf(x, cfg_.eps, x_adv);
        ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
    }

    net.setPrecision(restore_bits);
    return x_adv;
}

std::string
EpgdAttack::name() const
{
    std::ostringstream oss;
    oss << "E-PGD-" << cfg_.steps;
    return oss.str();
}

} // namespace twoinone
