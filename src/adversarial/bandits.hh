/**
 * @file
 * Bandits attack (Ilyas et al. [33]): gradient-free black-box attack
 * estimating the input gradient with a bandit prior and two-point
 * finite differences — only forward passes are issued against the
 * model, so it probes the obfuscated-gradient question the paper
 * raises in Sec. 4.2.2.
 */

#ifndef TWOINONE_ADVERSARIAL_BANDITS_HH
#define TWOINONE_ADVERSARIAL_BANDITS_HH

#include "adversarial/attack.hh"

namespace twoinone {

/**
 * Bandits-TD style prior-guided finite-difference attack.
 */
class BanditsAttack : public Attack
{
  public:
    /**
     * @param cfg Shared attack parameters (steps = query rounds).
     * @param fd_eta Finite-difference probe length.
     * @param prior_lr Prior exploration update rate.
     * @param prior_exploration Exploration radius mixed into probes.
     */
    BanditsAttack(AttackConfig cfg, float fd_eta = 0.1f,
                  float prior_lr = 1.0f, float prior_exploration = 1.0f)
        : Attack(cfg), fdEta_(fd_eta), priorLr_(prior_lr),
          priorExploration_(prior_exploration)
    {
    }

    Tensor perturb(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Rng &rng) override;

    std::string name() const override { return "Bandits"; }

  private:
    float fdEta_;
    float priorLr_;
    float priorExploration_;
};

} // namespace twoinone

#endif // TWOINONE_ADVERSARIAL_BANDITS_HH
