/**
 * @file
 * APGD and the AutoAttack-lite ensemble.
 */

#include "adversarial/autoattack.hh"

#include <sstream>

#include "tensor/ops.hh"

namespace twoinone {

float
ApgdAttack::lossGrad(Network &net, const Tensor &x,
                     const std::vector<int> &labels, Tensor &grad) const
{
    Tensor logits = net.forward(x, cfg_.trainMode);
    if (objective_ == Objective::CrossEntropy) {
        SoftmaxCrossEntropy loss;
        float l = loss.forward(logits, labels);
        grad = net.backward(loss.backward());
        return l;
    }
    CwMarginLoss loss(0.0f);
    float l = loss.forward(logits, labels);
    grad = net.backward(loss.backward());
    return l;
}

Tensor
ApgdAttack::perturb(Network &net, const Tensor &x,
                    const std::vector<int> &labels, Rng &rng)
{
    Tensor x_adv = x;
    if (cfg_.randomStart) {
        for (size_t i = 0; i < x_adv.size(); ++i)
            x_adv[i] += static_cast<float>(rng.uniform(-cfg_.eps, cfg_.eps));
        ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
    }

    // APGD schedule: start at 2*eps, halve when the objective stops
    // improving over a patience window; keep the best iterate.
    float step = 2.0f * cfg_.eps;
    int patience = std::max(3, cfg_.steps / 5);
    int since_improve = 0;

    Tensor best = x_adv;
    Tensor grad;
    float best_loss = lossGrad(net, x_adv, labels, grad);
    Tensor momentum = Tensor::zeros(x.shape());

    for (int t = 0; t < cfg_.steps; ++t) {
        // Momentum step (alpha-blend of previous direction and grad
        // sign, as in APGD's z-update).
        for (size_t i = 0; i < x_adv.size(); ++i) {
            float s = (grad[i] > 0.0f) ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f);
            momentum[i] = 0.75f * momentum[i] + 0.25f * s;
            x_adv[i] += step * momentum[i];
        }
        ops::projectLinf(x, cfg_.eps, x_adv);
        ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);

        float l = lossGrad(net, x_adv, labels, grad);
        if (l > best_loss) {
            best_loss = l;
            best = x_adv;
            since_improve = 0;
        } else if (++since_improve >= patience) {
            step = std::max(step * 0.5f, cfg_.eps / 16.0f);
            x_adv = best; // restart from the best iterate
            since_improve = 0;
        }
    }
    return best;
}

std::string
ApgdAttack::name() const
{
    std::ostringstream oss;
    oss << "APGD-"
        << (objective_ == Objective::CrossEntropy ? "CE" : "CW");
    return oss.str();
}

Tensor
AutoAttackLite::perturb(Network &net, const Tensor &x,
                        const std::vector<int> &labels, Rng &rng)
{
    ApgdAttack ce(cfg_, ApgdAttack::Objective::CrossEntropy);
    ApgdAttack cw(cfg_, ApgdAttack::Objective::CwMargin);

    Tensor adv_ce = ce.perturb(net, x, labels, rng);
    Tensor adv_cw = cw.perturb(net, x, labels, rng);

    // Per-sample worst case: prefer the variant that fools the model;
    // break ties by cross-entropy loss.
    std::vector<int> pred_ce = net.predict(adv_ce);
    std::vector<int> pred_cw = net.predict(adv_cw);
    std::vector<float> loss_ce = perSampleCeLoss(net, adv_ce, labels);
    std::vector<float> loss_cw = perSampleCeLoss(net, adv_cw, labels);

    int n = x.dim(0);
    size_t sample_sz = x.size() / static_cast<size_t>(n);
    Tensor out = adv_ce;
    for (int i = 0; i < n; ++i) {
        size_t is = static_cast<size_t>(i);
        bool ce_fools = pred_ce[is] != labels[is];
        bool cw_fools = pred_cw[is] != labels[is];
        bool take_cw =
            (cw_fools && !ce_fools) ||
            (cw_fools == ce_fools && loss_cw[is] > loss_ce[is]);
        if (take_cw) {
            for (size_t k = 0; k < sample_sz; ++k)
                out[is * sample_sz + k] = adv_cw[is * sample_sz + k];
        }
    }
    return out;
}

} // namespace twoinone
