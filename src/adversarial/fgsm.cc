/**
 * @file
 * FGSM / FGSM-RS implementations.
 */

#include "adversarial/fgsm.hh"

#include "tensor/ops.hh"

namespace twoinone {

Tensor
FgsmAttack::perturb(Network &net, const Tensor &x,
                    const std::vector<int> &labels, Rng &rng)
{
    (void)rng;
    Tensor grad;
    ceInputGradient(net, x, labels, cfg_.trainMode, grad);
    Tensor x_adv = x;
    for (size_t i = 0; i < x_adv.size(); ++i) {
        float s = (grad[i] > 0.0f) ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f);
        x_adv[i] += cfg_.eps * s;
    }
    ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
    return x_adv;
}

Tensor
FgsmRsAttack::perturb(Network &net, const Tensor &x,
                      const std::vector<int> &labels, Rng &rng)
{
    Tensor x_adv = x;
    for (size_t i = 0; i < x_adv.size(); ++i)
        x_adv[i] += static_cast<float>(rng.uniform(-cfg_.eps, cfg_.eps));
    ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);

    Tensor grad;
    ceInputGradient(net, x_adv, labels, cfg_.trainMode, grad);
    // FGSM-RS convention: alpha = 1.25 * eps, then project to the ball.
    float alpha = (cfg_.alpha > 0.0f) ? cfg_.alpha : 1.25f * cfg_.eps;
    for (size_t i = 0; i < x_adv.size(); ++i) {
        float s = (grad[i] > 0.0f) ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f);
        x_adv[i] += alpha * s;
    }
    ops::projectLinf(x, cfg_.eps, x_adv);
    ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
    return x_adv;
}

} // namespace twoinone
