/**
 * @file
 * Bandits attack implementation (queries only, no model gradients).
 */

#include "adversarial/bandits.hh"

#include <cmath>

#include "tensor/ops.hh"

namespace twoinone {

Tensor
BanditsAttack::perturb(Network &net, const Tensor &x,
                       const std::vector<int> &labels, Rng &rng)
{
    Tensor x_adv = x;
    Tensor prior = Tensor::zeros(x.shape());

    auto batch_loss = [&](const Tensor &probe) {
        return perSampleCeLoss(net, probe, labels);
    };

    int n = x.dim(0);
    size_t sample_sz = x.size() / static_cast<size_t>(n);

    for (int t = 0; t < cfg_.steps; ++t) {
        // Exploration direction.
        Tensor u = Tensor::randn(x.shape(), rng);
        float u_scale = priorExploration_ /
                        std::sqrt(static_cast<float>(sample_sz));

        // Two-point finite difference along (prior + delta*u).
        Tensor probe_plus = x_adv;
        Tensor probe_minus = x_adv;
        for (size_t i = 0; i < x.size(); ++i) {
            float dir = prior[i] + u_scale * u[i];
            probe_plus[i] += fdEta_ * dir;
            probe_minus[i] -= fdEta_ * dir;
        }
        ops::clampInPlace(probe_plus, cfg_.clampLo, cfg_.clampHi);
        ops::clampInPlace(probe_minus, cfg_.clampLo, cfg_.clampHi);

        std::vector<float> l_plus = batch_loss(probe_plus);
        std::vector<float> l_minus = batch_loss(probe_minus);

        // Per-sample derivative estimate updates the prior along u.
        for (int s = 0; s < n; ++s) {
            float est = (l_plus[static_cast<size_t>(s)] -
                         l_minus[static_cast<size_t>(s)]) /
                        (2.0f * fdEta_);
            for (size_t k = 0; k < sample_sz; ++k) {
                size_t idx = static_cast<size_t>(s) * sample_sz + k;
                prior[idx] += priorLr_ * est * u_scale * u[idx];
            }
        }

        // Gradient-sign step along the prior.
        for (size_t i = 0; i < x.size(); ++i) {
            float sgn = (prior[i] > 0.0f)
                            ? 1.0f
                            : (prior[i] < 0.0f ? -1.0f : 0.0f);
            x_adv[i] += cfg_.alpha * sgn;
        }
        ops::projectLinf(x, cfg_.eps, x_adv);
        ops::clampInPlace(x_adv, cfg_.clampLo, cfg_.clampHi);
    }
    return x_adv;
}

} // namespace twoinone
