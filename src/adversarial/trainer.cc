/**
 * @file
 * Trainer implementation (Alg. 1 of the paper when cfg.rps is set).
 */

#include "adversarial/trainer.hh"

#include <numeric>

#include "adversarial/fgsm.hh"
#include "adversarial/pgd.hh"
#include "quant/rps_engine.hh"
#include "tensor/ops.hh"

namespace twoinone {

std::string
trainMethodName(TrainMethod m)
{
    switch (m) {
      case TrainMethod::Natural: return "Natural";
      case TrainMethod::Fgsm: return "FGSM";
      case TrainMethod::FgsmRs: return "FGSM-RS";
      case TrainMethod::Pgd7: return "PGD-7";
      case TrainMethod::Free: return "Free";
    }
    TWOINONE_PANIC("unknown TrainMethod");
}

Trainer::Trainer(Network &net, TrainConfig cfg)
    : net_(net), cfg_(cfg), sgd_(cfg.lr, cfg.momentum, cfg.weightDecay),
      rng_(cfg.seed)
{
    if (cfg_.rps) {
        TWOINONE_ASSERT(!net_.precisionSet().empty(),
                        "RPS training needs a bound precision set");
    }
}

Trainer::~Trainer() = default;

Tensor
Trainer::makeAdversarial(const Tensor &x, const std::vector<int> &y)
{
    AttackConfig acfg;
    acfg.eps = cfg_.eps;
    acfg.alpha = cfg_.alpha;
    acfg.trainMode = true;
    acfg.restarts = 1;

    switch (cfg_.method) {
      case TrainMethod::Natural:
        return x;
      case TrainMethod::Fgsm: {
        FgsmAttack attack(acfg);
        return attack.perturb(net_, x, y, rng_);
      }
      case TrainMethod::FgsmRs: {
        acfg.alpha = 1.25f * cfg_.eps;
        FgsmRsAttack attack(acfg);
        return attack.perturb(net_, x, y, rng_);
      }
      case TrainMethod::Pgd7: {
        acfg.steps = cfg_.pgdSteps;
        PgdAttack attack(acfg);
        return attack.perturb(net_, x, y, rng_);
      }
      case TrainMethod::Free:
        TWOINONE_PANIC("Free handled by freeEpoch");
    }
    TWOINONE_PANIC("unknown TrainMethod");
}

void
Trainer::switchPrecision(int bits)
{
    // Through the engine when one is attached: a cache install
    // instead of a re-quantization pass, bit-identical either way.
    if (engine_)
        engine_->setPrecision(bits);
    else
        net_.setPrecision(bits);
}

void
Trainer::syncEngine()
{
    if (!engine_)
        return;
    // The optimizer bumped every touched Parameter's version;
    // refreshDirty re-quantizes exactly those layers, so the cache
    // never serves codes from before the step.
    if (engine_->refreshDirty() == 0)
        ++cleanRefreshes_;
}

float
Trainer::updateStep(const Tensor &x, const std::vector<int> &y)
{
    Tensor logits = net_.forward(x, /*train=*/true);
    SoftmaxCrossEntropy loss;
    float l = loss.forward(logits, y);
    net_.zeroGrad();
    net_.backward(loss.backward());
    sgd_.step(net_.parameters());
    net_.zeroGrad();
    syncEngine();
    ++steps_;
    return l;
}

float
Trainer::freeEpoch(const Dataset &train, const std::vector<int> &order)
{
    // Free adversarial training: the perturbation persists across the
    // m replays of each batch; every replay both updates the model and
    // takes an FGSM step on the perturbation "for free" from the same
    // backward pass.
    int n = train.size();
    int bs = std::min(cfg_.batchSize, n);
    double loss_sum = 0.0;
    int batches = 0;

    for (int start = 0; start + bs <= n; start += bs) {
        if (cfg_.rps) {
            switchPrecision(net_.precisionSet().sample(rng_));
        } else {
            switchPrecision(cfg_.staticPrecision);
        }
        Tensor x({bs, train.images.dim(1), train.images.dim(2),
                  train.images.dim(3)});
        std::vector<int> y(static_cast<size_t>(bs));
        for (int i = 0; i < bs; ++i) {
            int src = order[static_cast<size_t>(start + i)];
            x.setSlice0(i, train.images.slice0(src, 1));
            y[static_cast<size_t>(i)] = train.labels[static_cast<size_t>(src)];
        }

        Tensor delta = Tensor::zeros(x.shape());
        for (int replay = 0; replay < cfg_.freeReplays; ++replay) {
            Tensor x_adv = ops::add(x, delta);
            ops::clampInPlace(x_adv, 0.0f, 1.0f);

            Tensor logits = net_.forward(x_adv, /*train=*/true);
            SoftmaxCrossEntropy loss;
            float l = loss.forward(logits, y);
            net_.zeroGrad();
            Tensor input_grad = net_.backward(loss.backward());
            sgd_.step(net_.parameters());
            net_.zeroGrad();
            syncEngine();
            ++steps_;
            loss_sum += l;
            ++batches;

            // Free's perturbation update from the same gradients.
            for (size_t i = 0; i < delta.size(); ++i) {
                float s = (input_grad[i] > 0.0f)
                              ? 1.0f
                              : (input_grad[i] < 0.0f ? -1.0f : 0.0f);
                delta[i] += cfg_.eps * s;
                delta[i] = std::min(cfg_.eps,
                                    std::max(-cfg_.eps, delta[i]));
            }
        }
    }
    return batches ? static_cast<float>(loss_sum / batches) : 0.0f;
}

float
Trainer::fit(const Dataset &train)
{
    TWOINONE_ASSERT(train.size() > 0, "empty training set");
    int n = train.size();
    int bs = std::min(cfg_.batchSize, n);
    std::vector<int> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);

    // Cached RPS training (ISSUE 3 satellite): precision switches
    // install pre-quantized entries and every optimizer step
    // dirty-refreshes exactly the touched layers, so the cache never
    // serves stale codes. The engine lives for this fit only.
    if (cfg_.rps && cfg_.cachedEngine)
        engine_ = std::make_unique<RpsEngine>(net_);

    float last_epoch_loss = 0.0f;
    for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
        rng_.shuffle(order);

        if (cfg_.method == TrainMethod::Free) {
            last_epoch_loss = freeEpoch(train, order);
        } else {
            double loss_sum = 0.0;
            int batches = 0;
            for (int start = 0; start + bs <= n; start += bs) {
                // Alg. 1 line 5: sample the iteration's precision.
                if (cfg_.rps) {
                    switchPrecision(net_.precisionSet().sample(rng_));
                } else {
                    switchPrecision(cfg_.staticPrecision);
                }

                Tensor x({bs, train.images.dim(1), train.images.dim(2),
                          train.images.dim(3)});
                std::vector<int> y(static_cast<size_t>(bs));
                for (int i = 0; i < bs; ++i) {
                    int src = order[static_cast<size_t>(start + i)];
                    x.setSlice0(i, train.images.slice0(src, 1));
                    y[static_cast<size_t>(i)] =
                        train.labels[static_cast<size_t>(src)];
                }

                Tensor x_adv = makeAdversarial(x, y);
                loss_sum += updateStep(x_adv, y);
                ++batches;
            }
            last_epoch_loss =
                batches ? static_cast<float>(loss_sum / batches) : 0.0f;
        }

        if (cfg_.verbose) {
            TWOINONE_INFORM("epoch ", epoch + 1, "/", cfg_.epochs,
                            " method=", trainMethodName(cfg_.method),
                            cfg_.rps ? "+RPS" : "", " loss=",
                            last_epoch_loss);
        }
    }
    // Detach and drop the per-fit cache: the masters are
    // authoritative again for whoever uses the network next.
    engine_.reset();
    return last_epoch_loss;
}

} // namespace twoinone
