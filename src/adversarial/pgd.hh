/**
 * @file
 * Projected gradient descent attack (Madry et al. [48]) — the paper's
 * main white-box attack (PGD-20 / PGD-100 in Tabs. 1-4, PGD-7 as the
 * inner maximization of adversarial training).
 */

#ifndef TWOINONE_ADVERSARIAL_PGD_HH
#define TWOINONE_ADVERSARIAL_PGD_HH

#include "adversarial/attack.hh"

namespace twoinone {

/**
 * L-infinity PGD on the cross-entropy objective.
 */
class PgdAttack : public Attack
{
  public:
    explicit PgdAttack(AttackConfig cfg) : Attack(cfg) {}

    Tensor perturb(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Rng &rng) override;

    std::string name() const override;
};

} // namespace twoinone

#endif // TWOINONE_ADVERSARIAL_PGD_HH
