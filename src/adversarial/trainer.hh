/**
 * @file
 * Adversarial training (paper Sec. 2.1) and RPS training (Alg. 1).
 *
 * Four SOTA adversarial-training methods from the paper's setup —
 * FGSM [24], FGSM-RS [78], PGD-7 [48] and Free [65] — plus natural
 * training, each available with the RPS switch: when enabled, every
 * iteration samples a precision q from the model's candidate set,
 * generates the adversarial example at q, and updates the model at q
 * through the straight-through estimator, with SBN recording
 * per-precision statistics (exactly Alg. 1 of the paper).
 */

#ifndef TWOINONE_ADVERSARIAL_TRAINER_HH
#define TWOINONE_ADVERSARIAL_TRAINER_HH

#include <memory>

#include "adversarial/attack.hh"
#include "data/synthetic.hh"
#include "nn/sgd.hh"

namespace twoinone {

class RpsEngine;

/**
 * The adversarial-training method of the outer loop.
 */
enum class TrainMethod
{
    Natural,
    Fgsm,
    FgsmRs,
    Pgd7,
    Free,
};

/** Human-readable method name ("PGD-7", "FGSM-RS", ...). */
std::string trainMethodName(TrainMethod m);

/**
 * Training hyper-parameters.
 */
struct TrainConfig
{
    TrainMethod method = TrainMethod::Pgd7;
    int epochs = 6;
    int batchSize = 64;
    float lr = 0.05f;
    float momentum = 0.9f;
    float weightDecay = 5e-4f;
    /** Adversarial budget (0-1 scale), 8/255 by default. */
    float eps = 8.0f / 255.0f;
    /** Inner-maximization step size. */
    float alpha = 2.0f / 255.0f;
    /** PGD inner steps (paper: 7). */
    int pgdSteps = 7;
    /** Free replays m (paper setting: 4..8). */
    int freeReplays = 4;
    /** Enable RPS training (Alg. 1): random precision per iteration. */
    bool rps = false;
    /** When RPS is off, train at this precision (0 = full). */
    int staticPrecision = 0;
    /**
     * Route RPS precision switches through a per-fit RpsEngine weight
     * cache, refreshed per optimizer step via per-layer dirty flags
     * (Parameter::version), so every iteration's switch is a cache
     * install instead of a re-quantization pass. Bit-identical to the
     * uncached path — the cache stores exactly what fakeQuantSymmetric
     * would produce — so training trajectories do not change.
     */
    bool cachedEngine = true;
    uint64_t seed = 1;
    /** Print per-epoch progress to stderr. */
    bool verbose = false;
};

/**
 * Runs (RPS-)adversarial training on a network.
 */
class Trainer
{
  public:
    /**
     * @param net Network to train (bound precision set supplies the
     *            RPS candidates).
     * @param cfg Hyper-parameters.
     */
    Trainer(Network &net, TrainConfig cfg);
    ~Trainer(); // out of line: RpsEngine is incomplete here

    /** Train on a dataset; returns the final mean training loss. */
    float fit(const Dataset &train);

    /** Total optimizer steps taken so far. */
    int stepsTaken() const { return steps_; }

    /** Cache refreshes skipped because no layer was dirty (engine
     * accounting; 0 when the cached engine is off). */
    int cleanRefreshes() const { return cleanRefreshes_; }

    /** The trainer's optimizer — checkpointing reads its velocity
     * buffers (SaveOptions::optimizer) and a resumed run restores
     * them (Checkpoint::restoreOptimizer), so the momentum trajectory
     * survives the save/load boundary bit-identically. */
    Sgd &optimizer() { return sgd_; }
    const Sgd &optimizer() const { return sgd_; }

  private:
    Network &net_;
    TrainConfig cfg_;
    Sgd sgd_;
    Rng rng_;
    int steps_ = 0;
    int cleanRefreshes_ = 0;
    /** Per-fit weight cache (cfg.rps && cfg.cachedEngine). */
    std::unique_ptr<RpsEngine> engine_;

    /** Switch the training precision, through the engine when one is
     * attached. */
    void switchPrecision(int bits);

    /** Re-sync the engine cache after an optimizer step (dirty
     * layers only). */
    void syncEngine();

    /** Build the inner-maximization adversarial batch. */
    Tensor makeAdversarial(const Tensor &x, const std::vector<int> &y);

    /** One optimizer update on (x, y); returns the batch loss. */
    float updateStep(const Tensor &x, const std::vector<int> &y);

    /** One epoch of Free adversarial training over the dataset. */
    float freeEpoch(const Dataset &train,
                    const std::vector<int> &order);
};

} // namespace twoinone

#endif // TWOINONE_ADVERSARIAL_TRAINER_HH
