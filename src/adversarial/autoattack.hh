/**
 * @file
 * AutoAttack-lite: a parameter-free ensemble in the spirit of Croce &
 * Hein's AutoAttack [13], the paper's Tab. 5 "AutoAttack" rows.
 *
 * Full AutoAttack combines APGD-CE, APGD-DLR, FAB and Square. This
 * reproduction implements the two APGD members (with the momentum +
 * adaptive-step-halving schedule of APGD) on the cross-entropy and the
 * CW/DLR-style margin objectives and takes the per-sample worst case —
 * the components that dominate AutoAttack's strength against
 * non-obfuscated defenses. The substitution is recorded in DESIGN.md.
 */

#ifndef TWOINONE_ADVERSARIAL_AUTOATTACK_HH
#define TWOINONE_ADVERSARIAL_AUTOATTACK_HH

#include "adversarial/attack.hh"

namespace twoinone {

/**
 * APGD single run: momentum PGD with step halving on stagnation.
 */
class ApgdAttack : public Attack
{
  public:
    /** Objective selector. */
    enum class Objective { CrossEntropy, CwMargin };

    ApgdAttack(AttackConfig cfg, Objective obj)
        : Attack(cfg), objective_(obj)
    {
    }

    Tensor perturb(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Rng &rng) override;

    std::string name() const override;

  private:
    Objective objective_;

    /** Mean loss + input grad under the selected objective. */
    float lossGrad(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Tensor &grad) const;
};

/**
 * Worst-case ensemble of APGD-CE and APGD-CW.
 */
class AutoAttackLite : public Attack
{
  public:
    explicit AutoAttackLite(AttackConfig cfg) : Attack(cfg) {}

    Tensor perturb(Network &net, const Tensor &x,
                   const std::vector<int> &labels, Rng &rng) override;

    std::string name() const override { return "AutoAttack"; }
};

} // namespace twoinone

#endif // TWOINONE_ADVERSARIAL_AUTOATTACK_HH
