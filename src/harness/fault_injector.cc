/**
 * @file
 * Fault injector implementation.
 */

#include "harness/fault_injector.hh"

#include "common/rng.hh"
#include "io/serialize.hh"

namespace twoinone {
namespace harness {

namespace {

/** Mixes the fault coordinate into the scenario seed so two faults in
 * one run corrupt different bytes, deterministically. */
uint64_t
faultSeed(uint64_t seed, const FaultSpec &fault)
{
    return seed ^ 0x9e3779b97f4a7c15ULL ^
           (static_cast<uint64_t>(fault.phase) << 32) ^
           static_cast<uint64_t>(fault.at);
}

} // namespace

void
corruptBytes(std::vector<uint8_t> &bytes, const FaultSpec &fault,
             uint64_t seed)
{
    if (bytes.empty())
        return;
    if (fault.mode == "truncate") {
        bytes.resize(bytes.size() / 2);
        return;
    }
    Rng rng(faultSeed(seed, fault));
    int n = static_cast<int>(bytes.size());
    for (int i = 0; i < fault.flips; ++i) {
        int pos = rng.uniformInt(0, n - 1);
        int bit = rng.uniformInt(0, 7);
        bytes[static_cast<size_t>(pos)] ^=
            static_cast<uint8_t>(1u << bit);
    }
}

FaultInjector::FaultInjector(std::vector<FaultSpec> faults,
                             uint64_t seed)
    : faults_(std::move(faults)), seed_(seed),
      injected_(std::make_shared<uint64_t>(0))
{
}

FaultInjector::~FaultInjector() { disarm(); }

std::vector<const FaultSpec *>
FaultInjector::at(int phase, int point) const
{
    std::vector<const FaultSpec *> out;
    for (const FaultSpec &f : faults_) {
        if (f.phase == phase && f.at == point)
            out.push_back(&f);
    }
    return out;
}

bool
FaultInjector::anyInPhase(int phase) const
{
    for (const FaultSpec &f : faults_) {
        if (f.phase == phase)
            return true;
    }
    return false;
}

void
FaultInjector::armCorruptRead(const FaultSpec &fault,
                              const std::string &path)
{
    io::FaultHooks hooks;
    FaultSpec spec = fault;
    uint64_t seed = seed_;
    auto injected = injected_;
    // fired lives in the closure state: a transient fault corrupts
    // only the first read after arming — the retry sees clean bytes.
    auto fired = std::make_shared<bool>(false);
    hooks.onRead = [spec, seed, injected, fired,
                    path](const std::string &readPath,
                          std::vector<uint8_t> &bytes) {
        if (readPath != path)
            return;
        if (*fired && !spec.persistent)
            return;
        corruptBytes(bytes, spec, seed);
        if (!*fired)
            ++*injected; // one injection per arming, however many reads
        *fired = true;
    };
    io::setFaultHooks(std::move(hooks));
    armed_ = true;
}

void
FaultInjector::armTornWrite(const FaultSpec &fault,
                            const std::string &path)
{
    io::FaultHooks hooks;
    auto injected = injected_;
    auto fired = std::make_shared<bool>(false);
    (void)fault;
    // Atomic saves write "<path>.tmp" then rename — the hook sees the
    // temp path, so match both spellings.
    hooks.onWrite = [injected, fired, path](const std::string &writePath,
                                            size_t size) -> size_t {
        if ((writePath != path && writePath != path + ".tmp") || *fired)
            return size;
        *fired = true;
        ++*injected;
        return size / 2;
    };
    io::setFaultHooks(std::move(hooks));
    armed_ = true;
}

void
FaultInjector::disarm()
{
    if (armed_) {
        io::clearFaultHooks();
        armed_ = false;
    }
}

} // namespace harness
} // namespace twoinone
