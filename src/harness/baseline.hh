/**
 * @file
 * Baseline capture / compare for scenario evidence bundles.
 *
 * A baseline is simply a committed copy of a run's metrics.json. The
 * compare step flattens both documents to dotted leaf paths
 * ("counts.batches", "accuracy.natural_pct", "phases[2].rows") and
 * walks the union of keys under the scenario's CompareSpec rules:
 *
 *  - Keys matching an `ignore` prefix are skipped entirely — timing
 *    metrics live here, they are honest wall-clock noise.
 *  - Key-set equality is enforced on everything else: a key present
 *    on one side only is a failure *naming the key* ("missing from
 *    current run: counts.faults_injected"), because a silently
 *    dropped metric is how regressions hide.
 *  - Matching keys compare exactly by default (the harness's counts
 *    and digests are seed-deterministic, so exact is the right
 *    default), unless an `abs_tol` / `rel_tol` rule covers the key —
 *    accuracies go there, since float results legitimately differ
 *    across -march=native hosts. `exact` rules win over tolerances.
 *
 * Every violated rule becomes one human-readable line; the driver
 * prints them all and maps any failure to its compare-failed exit
 * code, so CI output says *what* drifted, not just "differs".
 */

#ifndef TWOINONE_HARNESS_BASELINE_HH
#define TWOINONE_HARNESS_BASELINE_HH

#include <string>
#include <utility>
#include <vector>

#include "harness/json.hh"
#include "harness/scenario.hh"

namespace twoinone {
namespace harness {

/** One violated compare rule. */
struct BaselineDiff
{
    std::string path;    ///< dotted metric path
    std::string message; ///< full human-readable line
};

struct CompareResult
{
    bool ok = true;
    std::vector<BaselineDiff> failures;
};

/**
 * Flatten a metrics document into (dotted path, leaf value) pairs in
 * document order. Objects nest with '.', arrays with "[i]"; only
 * leaves (null/bool/number/string) are emitted.
 */
std::vector<std::pair<std::string, Json>>
flattenMetrics(const Json &doc);

/** Compare @p current against @p baseline under @p rules. */
CompareResult compareBaseline(const Json &baseline, const Json &current,
                              const CompareSpec &rules);

/** Whether @p path equals @p rule or sits under it ("counts" covers
 * "counts.rows" and "counts[0]"). */
bool pathMatches(const std::string &rule, const std::string &path);

} // namespace harness
} // namespace twoinone

#endif // TWOINONE_HARNESS_BASELINE_HH
