/**
 * @file
 * Scenario parsing and validation.
 *
 * The checking style is deliberate: every field access goes through a
 * helper that knows the JSON path it is inspecting, every object is
 * swept for unknown keys after its known fields are consumed, and the
 * first violation throws SpecError with that path. A scenario author
 * always gets "which node, what's wrong, what's allowed" in one line.
 */

#include "harness/scenario.hh"

#include <algorithm>
#include <cctype>

#include "io/serialize.hh"

namespace twoinone {
namespace harness {

namespace {

/** The object at @p path (throws when absent or mistyped). */
const Json &
expectObject(const Json &j, const std::string &path)
{
    if (!j.isObject())
        throw SpecError(path, "expected an object");
    return j;
}

/** Reject members of @p obj not in @p allowed. */
void
rejectUnknownKeys(const Json &obj, const std::string &path,
                  std::initializer_list<const char *> allowed)
{
    for (const auto &kv : obj.members()) {
        bool known = false;
        for (const char *a : allowed) {
            if (kv.first == a) {
                known = true;
                break;
            }
        }
        if (!known) {
            std::string list;
            for (const char *a : allowed)
                list += list.empty() ? a : std::string(", ") + a;
            throw SpecError(path + "." + kv.first,
                            "unknown key (allowed: " + list + ")");
        }
    }
}

int
getInt(const Json &obj, const char *key, const std::string &path,
       int def, int lo, int hi)
{
    const Json *v = obj.find(key);
    if (v == nullptr)
        return def;
    std::string p = path + "." + key;
    if (!v->isNumber())
        throw SpecError(p, "expected an integer");
    double d = v->asNumber();
    if (d != static_cast<double>(static_cast<long long>(d)))
        throw SpecError(p, "expected an integer, got " +
                               formatJsonNumber(d));
    int n = static_cast<int>(d);
    if (n < lo || n > hi)
        throw SpecError(p, std::to_string(n) + " is out of range [" +
                               std::to_string(lo) + ", " +
                               std::to_string(hi) + "]");
    return n;
}

double
getNumber(const Json &obj, const char *key, const std::string &path,
          double def, double lo, double hi)
{
    const Json *v = obj.find(key);
    if (v == nullptr)
        return def;
    std::string p = path + "." + key;
    if (!v->isNumber())
        throw SpecError(p, "expected a number");
    double d = v->asNumber();
    if (d < lo || d > hi)
        throw SpecError(p, formatJsonNumber(d) +
                               " is out of range [" +
                               formatJsonNumber(lo) + ", " +
                               formatJsonNumber(hi) + "]");
    return d;
}

bool
getBool(const Json &obj, const char *key, const std::string &path,
        bool def)
{
    const Json *v = obj.find(key);
    if (v == nullptr)
        return def;
    if (!v->isBool())
        throw SpecError(path + "." + key, "expected true or false");
    return v->asBool();
}

std::string
getEnum(const Json &obj, const char *key, const std::string &path,
        const char *def, std::initializer_list<const char *> allowed)
{
    const Json *v = obj.find(key);
    std::string p = path + "." + key;
    std::string s;
    if (v == nullptr) {
        if (def == nullptr)
            throw SpecError(p, "missing required field");
        s = def;
    } else {
        if (!v->isString())
            throw SpecError(p, "expected a string");
        s = v->asString();
    }
    for (const char *a : allowed) {
        if (s == a)
            return s;
    }
    std::string list;
    for (const char *a : allowed)
        list += list.empty() ? a : std::string(" | ") + a;
    throw SpecError(p, "\"" + s + "\" is not one of: " + list);
}

ModelSpec
parseModel(const Json &j, const std::string &path)
{
    const Json &obj = expectObject(j, path);
    rejectUnknownKeys(obj, path,
                      {"arch", "base_width", "precisions",
                       "train_epochs", "train_method",
                       "calibrate_batches"});
    ModelSpec m;
    m.arch = getEnum(obj, "arch", path, "convnet_tiny",
                     {"convnet_tiny", "preact_mini", "wide_mini"});
    m.baseWidth = getInt(obj, "base_width", path, 4, 1, 64);
    m.trainEpochs = getInt(obj, "train_epochs", path, 0, 0, 64);
    m.trainMethod = getEnum(obj, "train_method", path, "natural",
                            {"natural", "fgsm", "pgd7", "free"});
    m.calibrateBatches =
        getInt(obj, "calibrate_batches", path, 0, 0, 64);
    if (const Json *p = obj.find("precisions")) {
        std::string pp = path + ".precisions";
        if (!p->isArray() || p->items().empty())
            throw SpecError(pp, "expected a non-empty array of "
                                "bit-widths");
        int prev = 0;
        for (size_t i = 0; i < p->items().size(); ++i) {
            const Json &e = p->items()[i];
            std::string ep = pp + "[" + std::to_string(i) + "]";
            if (!e.isNumber())
                throw SpecError(ep, "expected an integer bit-width");
            int b = static_cast<int>(e.asNumber());
            if (b < 1 || b > 16)
                throw SpecError(ep, std::to_string(b) +
                                        " is out of range [1, 16]");
            if (b <= prev)
                throw SpecError(ep, "bit-widths must be strictly "
                                    "increasing");
            prev = b;
            m.precisions.push_back(b);
        }
    }
    return m;
}

DataSpec
parseData(const Json &j, const std::string &path)
{
    const Json &obj = expectObject(j, path);
    rejectUnknownKeys(obj, path, {"classes", "size", "train", "test"});
    DataSpec d;
    d.classes = getInt(obj, "classes", path, 10, 2, 1000);
    d.size = getInt(obj, "size", path, 8, 4, 64);
    d.train = getInt(obj, "train", path, 128, 0, 100000);
    d.test = getInt(obj, "test", path, 64, 16, 100000);
    return d;
}

ServingSpec
parseServing(const Json &j, const std::string &path)
{
    const Json &obj = expectObject(j, path);
    rejectUnknownKeys(obj, path,
                      {"max_batch", "micro_batch", "mode", "replicas",
                       "lazy_warmup", "async", "sessions",
                       "max_delay_us", "deadline_us", "policy",
                       "draw_bits", "draw_weights"});
    ServingSpec s;
    s.maxBatch = getInt(obj, "max_batch", path, 32, 1, 4096);
    s.microBatch = getInt(obj, "micro_batch", path, 8, 1, 4096);
    if (s.microBatch > s.maxBatch)
        throw SpecError(path + ".micro_batch",
                        std::to_string(s.microBatch) +
                            " exceeds max_batch " +
                            std::to_string(s.maxBatch));
    s.mode = getEnum(obj, "mode", path, "quantized",
                     {"quantized", "float"});
    s.replicas = getInt(obj, "replicas", path, 0, 0, 256);
    s.lazyWarmup = getBool(obj, "lazy_warmup", path, true);
    s.async = getBool(obj, "async", path, false);
    s.sessions = getInt(obj, "sessions", path, 1, 1, 64);
    s.maxDelayUs = getInt(obj, "max_delay_us", path, 0, 0, 10000000);
    s.deadlineUs = getInt(obj, "deadline_us", path, 0, 0, 10000000);
    s.policy = getEnum(obj, "policy", path, "round_robin",
                       {"round_robin", "edf"});
    if (const Json *db = obj.find("draw_bits")) {
        std::string dp = path + ".draw_bits";
        if (!db->isArray() || db->items().empty())
            throw SpecError(dp, "expected a non-empty array of "
                                "bit-widths");
        int prev = 0;
        for (size_t i = 0; i < db->items().size(); ++i) {
            const Json &e = db->items()[i];
            std::string ep = dp + "[" + std::to_string(i) + "]";
            if (!e.isNumber())
                throw SpecError(ep, "expected an integer bit-width");
            int b = static_cast<int>(e.asNumber());
            if (b < 1 || b > 16)
                throw SpecError(ep, std::to_string(b) +
                                        " is out of range [1, 16]");
            if (b <= prev)
                throw SpecError(ep, "bit-widths must be strictly "
                                    "increasing");
            prev = b;
            s.drawBits.push_back(b);
        }
    }
    if (const Json *dw = obj.find("draw_weights")) {
        std::string wp = path + ".draw_weights";
        if (s.drawBits.empty())
            throw SpecError(wp, "draw_weights requires draw_bits");
        if (!dw->isArray() ||
            dw->items().size() != s.drawBits.size())
            throw SpecError(wp, "expected one weight per draw_bits "
                                "entry (" +
                                    std::to_string(s.drawBits.size()) +
                                    ")");
        for (size_t i = 0; i < dw->items().size(); ++i) {
            const Json &e = dw->items()[i];
            std::string ep = wp + "[" + std::to_string(i) + "]";
            if (!e.isNumber() || e.asNumber() <= 0.0)
                throw SpecError(ep, "expected a positive weight");
            s.drawWeights.push_back(e.asNumber());
        }
    } else if (!s.drawBits.empty()) {
        s.drawWeights.assign(s.drawBits.size(), 1.0);
    }
    if (!s.async && s.policy != "round_robin")
        throw SpecError(path + ".policy",
                        "scheduling policy only applies to async "
                        "serving");
    if (!s.async && s.sessions > 1)
        throw SpecError(path + ".sessions",
                        "multi-session serving requires "
                        "\"async\": true");
    if (!s.async && (s.maxDelayUs > 0 || s.deadlineUs > 0))
        throw SpecError(path + ".async",
                        "max_delay_us / deadline_us only apply to "
                        "async serving");
    return s;
}

TuningSpec
parseTuning(const Json &j, const std::string &path)
{
    const Json &obj = expectObject(j, path);
    rejectUnknownKeys(obj, path,
                      {"cycles", "population", "probe_requests",
                       "apply"});
    TuningSpec t;
    t.enabled = true;
    t.cycles = getInt(obj, "cycles", path, 3, 1, 64);
    // The evolutionary loop needs at least 4 genomes per cycle.
    t.population = getInt(obj, "population", path, 8, 4, 64);
    t.probeRequests =
        getInt(obj, "probe_requests", path, 8, 0, 1024);
    t.apply = getBool(obj, "apply", path, false);
    return t;
}

SessionSpec
parseSession(const Json &j, const std::string &path)
{
    const Json &obj = expectObject(j, path);
    rejectUnknownKeys(obj, path,
                      {"load_retries", "retry_backoff_ms", "stream",
                       "cache_budget_pct", "pinned_bits"});
    SessionSpec s;
    s.loadRetries = getInt(obj, "load_retries", path, 1, 0, 16);
    s.retryBackoffMs =
        getInt(obj, "retry_backoff_ms", path, 0, 0, 10000);
    s.stream = getBool(obj, "stream", path, false);
    s.cacheBudgetPct =
        getInt(obj, "cache_budget_pct", path, 0, 0, 100);
    if (const Json *pb = obj.find("pinned_bits")) {
        std::string pp = path + ".pinned_bits";
        if (!pb->isArray() || pb->items().empty())
            throw SpecError(pp, "expected a non-empty array of "
                                "bit-widths");
        int prev = 0;
        for (size_t i = 0; i < pb->items().size(); ++i) {
            const Json &e = pb->items()[i];
            std::string ep = pp + "[" + std::to_string(i) + "]";
            if (!e.isNumber())
                throw SpecError(ep, "expected an integer bit-width");
            int b = static_cast<int>(e.asNumber());
            if (b < 1 || b > 16)
                throw SpecError(ep, std::to_string(b) +
                                        " is out of range [1, 16]");
            if (b <= prev)
                throw SpecError(ep, "bit-widths must be strictly "
                                    "increasing");
            prev = b;
            s.pinnedBits.push_back(b);
        }
    }
    return s;
}

AttackSpec
parseAttack(const Json &j, const std::string &path)
{
    const Json &obj = expectObject(j, path);
    rejectUnknownKeys(obj, path, {"kind", "steps", "eps255", "alpha255"});
    AttackSpec a;
    a.kind = getEnum(obj, "kind", path, "pgd", {"pgd", "epgd", "fgsm"});
    a.steps = getInt(obj, "steps", path, 5, 1, 100);
    a.eps255 = getNumber(obj, "eps255", path, 8.0, 0.25, 64.0);
    a.alpha255 = getNumber(obj, "alpha255", path, 2.0, 0.25, 64.0);
    return a;
}

PhaseSpec
parsePhase(const Json &j, const std::string &path, int max_batch)
{
    const Json &obj = expectObject(j, path);
    PhaseSpec p;
    p.type = getEnum(obj, "type", path, nullptr,
                     {"steady", "bursty", "adversarial", "soak"});
    if (p.type == "steady") {
        rejectUnknownKeys(obj, path,
                          {"type", "batches", "requests_per_batch",
                           "rows_per_request"});
        p.batches = getInt(obj, "batches", path, 4, 1, 100000);
        p.requestsPerBatch =
            getInt(obj, "requests_per_batch", path, 4, 1, 1024);
        p.rowsPerRequest =
            getInt(obj, "rows_per_request", path, 4, 1, max_batch);
    } else if (p.type == "bursty") {
        rejectUnknownKeys(obj, path,
                          {"type", "bursts", "burst_requests",
                           "rows_per_request"});
        p.bursts = getInt(obj, "bursts", path, 2, 1, 100000);
        p.burstRequests =
            getInt(obj, "burst_requests", path, 8, 1, 4096);
        p.rowsPerRequest =
            getInt(obj, "rows_per_request", path, 4, 1, max_batch);
    } else if (p.type == "adversarial") {
        rejectUnknownKeys(obj, path,
                          {"type", "batches", "rows_per_request",
                           "attack"});
        p.batches = getInt(obj, "batches", path, 4, 1, 100000);
        p.rowsPerRequest =
            getInt(obj, "rows_per_request", path, 8, 1, max_batch);
        if (const Json *a = obj.find("attack"))
            p.attack = parseAttack(*a, path + ".attack");
    } else { // soak
        rejectUnknownKeys(obj, path,
                          {"type", "cycles", "batches_per_cycle",
                           "requests_per_batch", "rows_per_request",
                           "checkpoint_every"});
        p.cycles = getInt(obj, "cycles", path, 2, 1, 100000);
        p.batchesPerCycle =
            getInt(obj, "batches_per_cycle", path, 2, 1, 100000);
        p.requestsPerBatch =
            getInt(obj, "requests_per_batch", path, 4, 1, 1024);
        p.rowsPerRequest =
            getInt(obj, "rows_per_request", path, 4, 1, max_batch);
        p.checkpointEvery =
            getInt(obj, "checkpoint_every", path, 1, 1, 100000);
    }
    return p;
}

FaultSpec
parseFault(const Json &j, const std::string &path,
           const std::vector<PhaseSpec> &phases)
{
    const Json &obj = expectObject(j, path);
    FaultSpec f;
    f.type = getEnum(obj, "type", path, nullptr,
                     {"corrupt_checkpoint", "torn_save", "cache_storm",
                      "starve_pool", "malformed_request",
                      "memory_pressure"});
    int nphases = static_cast<int>(phases.size());
    f.phase = getInt(obj, "phase", path, 0, 0, nphases - 1);
    const PhaseSpec &ph = phases[static_cast<size_t>(f.phase)];
    f.at = getInt(obj, "at", path, 0, 0, ph.points() - 1);

    if (f.type == "corrupt_checkpoint") {
        rejectUnknownKeys(obj, path,
                          {"type", "phase", "at", "mode", "flips",
                           "persistent"});
        f.mode = getEnum(obj, "mode", path, "bitflip",
                         {"bitflip", "truncate"});
        f.flips = getInt(obj, "flips", path, 3, 1, 64);
        f.persistent = getBool(obj, "persistent", path, false);
    } else if (f.type == "torn_save") {
        rejectUnknownKeys(obj, path, {"type", "phase", "at"});
    } else if (f.type == "cache_storm") {
        rejectUnknownKeys(obj, path, {"type", "phase", "at", "storms"});
        f.storms = getInt(obj, "storms", path, 3, 1, 100);
    } else if (f.type == "memory_pressure") {
        rejectUnknownKeys(obj, path,
                          {"type", "phase", "at", "budget_pct",
                           "storms"});
        f.budgetPct = getInt(obj, "budget_pct", path, 40, 1, 100);
        f.storms = getInt(obj, "storms", path, 3, 1, 100);
    } else if (f.type == "starve_pool") {
        rejectUnknownKeys(obj, path, {"type", "phase", "at"});
    } else { // malformed_request
        rejectUnknownKeys(obj, path, {"type", "phase", "at", "kind"});
        f.kind = getEnum(obj, "kind", path, "oversized",
                         {"oversized", "wrong_shape", "wrong_rank"});
    }

    // Checkpoint faults need a phase that saves/loads checkpoints.
    if ((f.type == "corrupt_checkpoint" || f.type == "torn_save") &&
        ph.type != "soak")
        throw SpecError(path + ".phase",
                        f.type + " requires a soak phase, phase " +
                            std::to_string(f.phase) + " is \"" +
                            ph.type + "\"");
    return f;
}

CompareSpec
parseCompare(const Json &j, const std::string &path)
{
    const Json &obj = expectObject(j, path);
    rejectUnknownKeys(obj, path,
                      {"exact", "abs_tol", "rel_tol", "ignore"});
    CompareSpec c;
    auto keyList = [&](const char *key, std::vector<std::string> &out) {
        const Json *v = obj.find(key);
        if (v == nullptr)
            return;
        std::string p = path + "." + key;
        if (!v->isArray())
            throw SpecError(p, "expected an array of metric paths");
        for (size_t i = 0; i < v->items().size(); ++i) {
            const Json &e = v->items()[i];
            if (!e.isString())
                throw SpecError(p + "[" + std::to_string(i) + "]",
                                "expected a metric path string");
            out.push_back(e.asString());
        }
    };
    keyList("exact", c.exact);
    keyList("ignore", c.ignore);
    auto tolMap = [&](const char *key,
                      std::vector<std::pair<std::string, double>> &out) {
        const Json *v = obj.find(key);
        if (v == nullptr)
            return;
        std::string p = path + "." + key;
        if (!v->isObject())
            throw SpecError(p, "expected an object of "
                               "{\"metric.path\": tolerance}");
        for (const auto &kv : v->members()) {
            if (!kv.second.isNumber() || kv.second.asNumber() < 0)
                throw SpecError(p + "." + kv.first,
                                "expected a non-negative tolerance");
            out.emplace_back(kv.first, kv.second.asNumber());
        }
    };
    tolMap("abs_tol", c.absTol);
    tolMap("rel_tol", c.relTol);
    return c;
}

} // namespace

int
PhaseSpec::points() const
{
    if (type == "bursty")
        return bursts;
    if (type == "soak")
        return cycles;
    return batches;
}

ScenarioSpec
parseScenario(const Json &doc)
{
    const Json &obj = expectObject(doc, "$");
    rejectUnknownKeys(obj, "$",
                      {"name", "seed", "model", "data", "serving",
                       "session", "tuning", "phases", "faults",
                       "compare"});

    ScenarioSpec s;
    s.echo = doc;

    const Json *name = obj.find("name");
    if (name == nullptr)
        throw SpecError("$.name", "missing required field");
    if (!name->isString() || name->asString().empty())
        throw SpecError("$.name", "expected a non-empty string");
    for (char c : name->asString()) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
            c != '_')
            throw SpecError("$.name",
                            "only [A-Za-z0-9_-] allowed (the name "
                            "becomes the evidence-bundle directory)");
    }
    s.name = name->asString();
    s.seed = static_cast<uint64_t>(
        getInt(obj, "seed", "$", 2021, 0, 1 << 30));

    if (const Json *m = obj.find("model"))
        s.model = parseModel(*m, "$.model");
    if (const Json *d = obj.find("data"))
        s.data = parseData(*d, "$.data");
    if (const Json *v = obj.find("serving"))
        s.serving = parseServing(*v, "$.serving");
    if (const Json *v = obj.find("session"))
        s.session = parseSession(*v, "$.session");
    if (const Json *v = obj.find("tuning"))
        s.tuning = parseTuning(*v, "$.tuning");

    // The draw distribution must be a subset of the model's candidate
    // set (the serving runtime asserts this; a spec violation must be
    // a SpecError). {4,5,6,8,12,16} is PrecisionSet::rps4to16, the
    // default when $.model.precisions is absent.
    if (!s.serving.drawBits.empty()) {
        std::vector<int> bound = s.model.precisions.empty()
                                     ? std::vector<int>{4, 5, 6, 8,
                                                        12, 16}
                                     : s.model.precisions;
        for (size_t i = 0; i < s.serving.drawBits.size(); ++i) {
            int b = s.serving.drawBits[i];
            if (std::find(bound.begin(), bound.end(), b) ==
                bound.end())
                throw SpecError(
                    "$.serving.draw_bits[" + std::to_string(i) + "]",
                    std::to_string(b) +
                        " is not in the model's candidate set");
        }
    }

    // Pinned cache precisions face the same bound: the Session maps
    // an out-of-set pin to a runtime ServeError, a spec asking for
    // one must be a SpecError.
    if (!s.session.pinnedBits.empty()) {
        std::vector<int> bound = s.model.precisions.empty()
                                     ? std::vector<int>{4, 5, 6, 8,
                                                        12, 16}
                                     : s.model.precisions;
        for (size_t i = 0; i < s.session.pinnedBits.size(); ++i) {
            int b = s.session.pinnedBits[i];
            if (std::find(bound.begin(), bound.end(), b) ==
                bound.end())
                throw SpecError(
                    "$.session.pinned_bits[" + std::to_string(i) +
                        "]",
                    std::to_string(b) +
                        " is not in the model's candidate set");
        }
    }

    const Json *phases = obj.find("phases");
    if (phases == nullptr)
        throw SpecError("$.phases", "missing required field");
    if (!phases->isArray() || phases->items().empty())
        throw SpecError("$.phases",
                        "expected a non-empty array of phases");
    for (size_t i = 0; i < phases->items().size(); ++i)
        s.phases.push_back(
            parsePhase(phases->items()[i],
                       "$.phases[" + std::to_string(i) + "]",
                       s.serving.maxBatch));

    if (const Json *faults = obj.find("faults")) {
        if (!faults->isArray())
            throw SpecError("$.faults", "expected an array of faults");
        for (size_t i = 0; i < faults->items().size(); ++i)
            s.faults.push_back(
                parseFault(faults->items()[i],
                           "$.faults[" + std::to_string(i) + "]",
                           s.phases));
    }

    // starve_pool pins the *calling* thread to serial execution
    // (thread-local ScopedSerial); the async server computes on its
    // own dispatcher thread, which the fault could never reach — a
    // spec asking for both is wrong, not silently ineffective.
    if (s.serving.async) {
        for (size_t i = 0; i < s.faults.size(); ++i) {
            if (s.faults[i].type == "starve_pool")
                throw SpecError(
                    "$.faults[" + std::to_string(i) + "]",
                    "starve_pool cannot reach the async dispatcher "
                    "thread — use synchronous serving");
        }
    }

    if (const Json *c = obj.find("compare"))
        s.compare = parseCompare(*c, "$.compare");

    return s;
}

ScenarioSpec
loadScenario(const std::string &path)
{
    std::vector<uint8_t> bytes = io::readFile(path);
    std::string text(reinterpret_cast<const char *>(bytes.data()),
                     bytes.size());
    Json doc;
    try {
        doc = Json::parse(text);
    } catch (const JsonError &e) {
        throw SpecError("$", path + ": " + e.what());
    }
    return parseScenario(doc);
}

} // namespace harness
} // namespace twoinone
