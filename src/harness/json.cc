/**
 * @file
 * JSON parser / writer implementation.
 */

#include "harness/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

namespace twoinone {
namespace harness {

namespace {

/** Recursive-descent parser over a text buffer with line:column
 * error reporting. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the top-level value");
        return v;
    }

  private:
    const std::string &text_;
    size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        size_t line = 1, col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw JsonError(msg + " (line " + std::to_string(line) +
                        ", column " + std::to_string(col) + ")");
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', found '" +
                 text_[pos_] + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return Json(string());
        case 't':
            if (!consumeLiteral("true"))
                fail("malformed literal");
            return Json(true);
        case 'f':
            if (!consumeLiteral("false"))
                fail("malformed literal");
            return Json(false);
        case 'n':
            if (!consumeLiteral("null"))
                fail("malformed literal");
            return Json();
        default:
            return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json obj = Json::object();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        for (;;) {
            skipWs();
            if (peek() != '"')
                fail("expected a string object key");
            std::string key = string();
            if (obj.find(key) != nullptr)
                fail("duplicate object key \"" + key + "\"");
            skipWs();
            expect(':');
            obj.set(std::move(key), value());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return obj;
            }
            fail("expected ',' or '}' in object");
        }
    }

    Json
    array()
    {
        expect('[');
        Json arr = Json::array();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        for (;;) {
            arr.push(value());
            skipWs();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return arr;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
            case '"':
                out.push_back('"');
                break;
            case '\\':
                out.push_back('\\');
                break;
            case '/':
                out.push_back('/');
                break;
            case 'b':
                out.push_back('\b');
                break;
            case 'f':
                out.push_back('\f');
                break;
            case 'n':
                out.push_back('\n');
                break;
            case 'r':
                out.push_back('\r');
                break;
            case 't':
                out.push_back('\t');
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate halves
                // are passed through as-is; specs never carry them).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (cp >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((cp >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3F)));
                }
                break;
            }
            default:
                fail("unknown escape character");
            }
        }
    }

    Json
    number()
    {
        size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
            digits = true;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (!digits)
            fail("malformed number");
        try {
            return Json(std::stod(text_.substr(start, pos_ - start)));
        } catch (const std::exception &) {
            fail("number out of range");
        }
    }
};

} // namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

Json
Json::parse(const std::string &text)
{
    return Parser(text).parse();
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        throw JsonError("value is not a bool");
    return bool_;
}

double
Json::asNumber() const
{
    if (type_ != Type::Number)
        throw JsonError("value is not a number");
    return num_;
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        throw JsonError("value is not a string");
    return str_;
}

const std::vector<Json> &
Json::items() const
{
    if (type_ != Type::Array)
        throw JsonError("value is not an array");
    return arr_;
}

void
Json::push(Json v)
{
    if (type_ != Type::Array)
        throw JsonError("push() on a non-array");
    arr_.push_back(std::move(v));
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (type_ != Type::Object)
        throw JsonError("value is not an object");
    return obj_;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        throw JsonError("find() on a non-object");
    for (const auto &kv : obj_) {
        if (kv.first == key)
            return &kv.second;
    }
    return nullptr;
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ != Type::Object)
        throw JsonError("set() on a non-object");
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

size_t
Json::size() const
{
    switch (type_) {
    case Type::Array:
        return arr_.size();
    case Type::Object:
        return obj_.size();
    case Type::String:
        return str_.size();
    default:
        return 0;
    }
}

std::string
formatJsonNumber(double v)
{
    if (std::isnan(v) || std::isinf(v))
        return "null"; // JSON has no NaN/Inf; null keeps output parsable
    double rounded = std::nearbyint(v);
    if (rounded == v && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g",
                  std::numeric_limits<double>::max_digits10, v);
    return buf;
}

std::string
quoteJsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\b':
            out += "\\b";
            break;
        case '\f':
            out += "\\f";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent >= 0) {
            out.push_back('\n');
            out.append(static_cast<size_t>(indent * d), ' ');
        }
    };
    switch (type_) {
    case Type::Null:
        out += "null";
        break;
    case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Type::Number:
        out += formatJsonNumber(num_);
        break;
    case Type::String:
        out += quoteJsonString(str_);
        break;
    case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back(']');
        break;
    case Type::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        for (size_t i = 0; i < obj_.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            out += quoteJsonString(obj_[i].first);
            out.push_back(':');
            if (indent >= 0)
                out.push_back(' ');
            obj_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

} // namespace harness
} // namespace twoinone
