/**
 * @file
 * Event journal implementation.
 */

#include "harness/event_journal.hh"

#include <cstdio>

#include "common/logging.hh"

namespace twoinone {
namespace harness {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t
fnv1aFold(uint64_t h, const std::string &bytes)
{
    for (char c : bytes) {
        h ^= static_cast<uint8_t>(c);
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

EventJournal::EventJournal(const std::string &path)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc),
      digest_(kFnvOffset)
{
    if (!out_)
        TWOINONE_PANIC("cannot open event journal for writing: ",
                       path);
}

EventJournal::~EventJournal() { close(); }

void
EventJournal::emit(const std::string &type, Json detail)
{
    TWOINONE_ASSERT(detail.isObject() || detail.isNull(),
                    "event detail must be an object or null");
    Json line = Json::object();
    line.set("seq", Json(seq_));
    line.set("type", Json(type));
    if (detail.isObject()) {
        for (const auto &kv : detail.members())
            line.set(kv.first, kv.second);
    }
    std::string text = line.dump();
    text.push_back('\n');
    digest_ = fnv1aFold(digest_, text);
    out_ << text;
    out_.flush();
    ++seq_;
}

std::string
EventJournal::digestHex() const
{
    return digestToHex(digest_);
}

void
EventJournal::close()
{
    if (out_.is_open()) {
        out_.flush();
        out_.close();
    }
}

std::string
digestToHex(uint64_t digest)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(digest));
    return buf;
}

} // namespace harness
} // namespace twoinone
