/**
 * @file
 * Declarative scenario specs for the robustness harness.
 *
 * A scenario is a JSON document describing one deterministic run
 * against a deployed twoinone::Session: the model and synthetic
 * dataset to stand up, the serving configuration, an ordered list of
 * traffic phases (steady / bursty / adversarial with live EPGD attack
 * measurement / soak with periodic checkpoint save-reload cycles),
 * and a list of deterministic fault injections pinned to points
 * inside those phases. parseScenario() validates the whole document
 * before anything runs: an unknown key, a missing required field, or
 * an out-of-range value throws SpecError with the JSON path of the
 * offending node ("$.phases[2].batches: ...") — one actionable line,
 * never a stack trace. The driver maps SpecError to its own exit
 * code so CI can tell "your spec is wrong" from "your run regressed".
 */

#ifndef TWOINONE_HARNESS_SCENARIO_HH
#define TWOINONE_HARNESS_SCENARIO_HH

#include <string>
#include <vector>

#include "harness/json.hh"

namespace twoinone {
namespace harness {

/** A scenario document failed validation. path() is the JSON path of
 * the offending node ("$", "$.model.arch", "$.faults[1].at"). */
class SpecError : public std::runtime_error
{
  public:
    SpecError(std::string path, const std::string &what)
        : std::runtime_error(path + ": " + what),
          path_(std::move(path))
    {
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Model + dataset stood up for the run. */
struct ModelSpec
{
    std::string arch = "convnet_tiny"; ///< convnet_tiny | preact_mini
                                       ///< | wide_mini
    int baseWidth = 4;
    std::vector<int> precisions;  ///< empty = rps4to16
    int trainEpochs = 0;          ///< quick PGD-free natural epochs
    std::string trainMethod = "natural"; ///< natural|fgsm|pgd7|free
    int calibrateBatches = 0;     ///< static-scale calibration batches
};

struct DataSpec
{
    int classes = 10;
    int size = 8; ///< square image side
    int train = 128;
    int test = 64;
};

struct ServingSpec
{
    int maxBatch = 32;
    int microBatch = 8;
    std::string mode = "quantized"; ///< quantized | float
    int replicas = 0;
    bool lazyWarmup = true;
    /** Route traffic through the async serve::Server (deterministic
     * under the harness ManualClock) instead of the synchronous
     * drain. */
    bool async = false;
    /** Tenant sessions multiplexed over the model (async only;
     * tenants share the engine, round-robin traffic). */
    int sessions = 1;
    /** Async batch-age close (ManualClock microseconds; 0 = close
     * partial batches only on flush). */
    int maxDelayUs = 0;
    /** Per-request deadline (ManualClock microseconds; 0 = none). */
    int deadlineUs = 0;
    /** Async batch-picking policy across tenants. */
    std::string policy = "round_robin"; ///< round_robin | edf
    /** Precision draw distribution for served batches (empty =
     * uniform over the model's candidate set, bit-identical to specs
     * predating the keys). */
    std::vector<int> drawBits;
    std::vector<double> drawWeights;
};

/** Serving-autotuner block: when present, the runner tunes the
 * deployed session (tune::autotune) after deployment and before the
 * traffic phases, journaling the selected genome. */
struct TuningSpec
{
    bool enabled = false; ///< set by the presence of the block
    int cycles = 3;
    int population = 8;
    /** Rows per measured probe batch (0 = analytical only — no
     * measured runs, no error report). */
    int probeRequests = 8;
    /** Re-save the artifact with the winner embedded and reload the
     * session through Session::fromCheckpoint, so the traffic phases
     * serve under the autotuned configuration. */
    bool apply = false;
};

struct SessionSpec
{
    int loadRetries = 1;
    int retryBackoffMs = 0;
    /** Route artifact loads through the streaming SectionReader
     * (lazy per-(layer, precision) hydration) instead of the eager
     * whole-file reader. */
    bool stream = false;
    /** Engine-cache byte budget as a percentage of the fully
     * populated cache (0 = unlimited). Applied after deployment, so
     * serving runs under LRU eviction from the first batch. */
    int cacheBudgetPct = 0;
    /** Precisions whose cells are exempt from eviction. Must be
     * members of the model's candidate set. */
    std::vector<int> pinnedBits;
};

/** One attack block inside an adversarial phase. */
struct AttackSpec
{
    std::string kind = "pgd"; ///< pgd | epgd | fgsm
    int steps = 5;
    double eps255 = 8.0;
    double alpha255 = 2.0;
};

/** One traffic phase. Which fields apply depends on type. */
struct PhaseSpec
{
    std::string type; ///< steady | bursty | adversarial | soak
    // steady / adversarial / soak
    int batches = 4;
    int requestsPerBatch = 4;
    int rowsPerRequest = 4;
    // bursty
    int bursts = 2;
    int burstRequests = 8;
    // adversarial
    AttackSpec attack;
    // soak
    int cycles = 2;
    int batchesPerCycle = 2;
    int checkpointEvery = 1;

    /** Points the phase iterates over (batches, bursts or cycles) —
     * the coordinate faults pin to. */
    int points() const;
};

/** One deterministic fault injection, pinned to (phase, at). */
struct FaultSpec
{
    std::string type; ///< corrupt_checkpoint | torn_save |
                      ///< cache_storm | starve_pool |
                      ///< malformed_request | memory_pressure
    int phase = 0;    ///< index into ScenarioSpec::phases
    int at = 0;       ///< point within the phase (batch/burst/cycle)
    // corrupt_checkpoint
    std::string mode = "bitflip"; ///< bitflip | truncate
    int flips = 3;
    bool persistent = false; ///< survive retries (rejection path)
    // cache_storm / memory_pressure
    int storms = 3;
    // memory_pressure: clamp the engine cache to this percentage of
    // its fully populated size, then drive `storms` full candidate
    // sweeps through the budgeted cache (an eviction storm).
    int budgetPct = 40;
    // malformed_request
    std::string kind = "oversized"; ///< oversized | wrong_shape |
                                    ///< wrong_rank
};

/** Baseline-compare rules (see harness/baseline.hh). */
struct CompareSpec
{
    /** Dotted metric paths that must match the baseline exactly. */
    std::vector<std::string> exact;
    /** path -> allowed absolute difference. */
    std::vector<std::pair<std::string, double>> absTol;
    /** path -> allowed relative difference (fraction). */
    std::vector<std::pair<std::string, double>> relTol;
    /** Metric key prefixes exempt from the key-set equality check
     * and from default-exact comparison (timing noise). */
    std::vector<std::string> ignore;
};

/** A fully validated scenario. */
struct ScenarioSpec
{
    std::string name;
    uint64_t seed = 2021;
    ModelSpec model;
    DataSpec data;
    ServingSpec serving;
    SessionSpec session;
    TuningSpec tuning;
    std::vector<PhaseSpec> phases;
    std::vector<FaultSpec> faults;
    CompareSpec compare;
    /** The parsed source document (echoed into run.json). */
    Json echo;
};

/** Validate and bind a parsed scenario document (throws SpecError
 * with the JSON path on the first violation). */
ScenarioSpec parseScenario(const Json &doc);

/** Convenience: read + parse + validate a scenario file (throws
 * SpecError / JsonError / io::CheckpointError for missing files). */
ScenarioSpec loadScenario(const std::string &path);

} // namespace harness
} // namespace twoinone

#endif // TWOINONE_HARNESS_SCENARIO_HH
