/**
 * @file
 * Minimal JSON value, parser and writer for the scenario harness.
 *
 * The harness lives and dies by reproducible artifacts: scenario
 * specs are declared as JSON, evidence bundles (run.json,
 * events.jsonl, metrics.json) are emitted as JSON, and baseline
 * diffing parses both sides back. The toolchain here is deliberately
 * dependency-free and deterministic:
 *
 *  - Objects preserve *insertion order* (a vector of pairs, not a
 *    map), so dump() of the same value is byte-stable and spec echoes
 *    keep the author's key order.
 *  - Numbers round-trip: integral values print without a decimal
 *    point, others via max_digits10 shortest-exact formatting.
 *  - Parse errors throw JsonError carrying line:column, so a broken
 *    scenario file points at the offending byte, not a stack trace.
 *
 * Scope: strict JSON (RFC 8259) minus \u surrogate pairs (kept as
 * two escaped code units) — scenario specs and metric bundles never
 * need them.
 */

#ifndef TWOINONE_HARNESS_JSON_HH
#define TWOINONE_HARNESS_JSON_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace twoinone {
namespace harness {

/** Malformed JSON text: message carries "line L, column C". */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * A JSON value. Cheap to copy at harness scales; objects keep
 * insertion order.
 */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() : type_(Type::Null) {}
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double v) : type_(Type::Number), num_(v) {}
    Json(int v) : type_(Type::Number), num_(v) {}
    Json(int64_t v)
        : type_(Type::Number), num_(static_cast<double>(v))
    {
    }
    Json(uint64_t v)
        : type_(Type::Number), num_(static_cast<double>(v))
    {
    }
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    /** Empty array / object factories. */
    static Json array();
    static Json object();

    /** Parse @p text (throws JsonError with line:column). */
    static Json parse(const std::string &text);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors (throw JsonError on a type mismatch). */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array access. */
    const std::vector<Json> &items() const;
    void push(Json v);

    /** Object access: members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &members() const;
    /** Pointer to the member value, or nullptr when absent. */
    const Json *find(const std::string &key) const;
    /** Insert or overwrite a member (insertion order preserved). */
    void set(const std::string &key, Json v);

    size_t size() const;

    /**
     * Serialize. indent < 0 = compact single line; indent >= 0 =
     * pretty-printed with that many spaces per level. Output is a
     * pure function of the value (stable member order, round-trip
     * number formatting) — evidence-bundle digests depend on this.
     */
    std::string dump(int indent = -1) const;

  private:
    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;

    void dumpTo(std::string &out, int indent, int depth) const;
};

/** Round-trip number formatting shared with the journal: integral
 * values print as integers, others shortest-exact. */
std::string formatJsonNumber(double v);

/** JSON string escaping (quotes included). */
std::string quoteJsonString(const std::string &s);

} // namespace harness
} // namespace twoinone

#endif // TWOINONE_HARNESS_JSON_HH
