/**
 * @file
 * Scenario runner implementation.
 */

#include "harness/runner.hh"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "adversarial/epgd.hh"
#include "adversarial/fgsm.hh"
#include "adversarial/pgd.hh"
#include "adversarial/trainer.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "io/checkpoint.hh"
#include "io/serialize.hh"
#include "nn/model_zoo.hh"
#include "quant/rps_engine.hh"
#include "tensor/gemm.hh"

namespace twoinone {
namespace harness {

namespace {

TrainMethod
trainMethodFromName(const std::string &name)
{
    if (name == "natural")
        return TrainMethod::Natural;
    if (name == "fgsm")
        return TrainMethod::Fgsm;
    if (name == "pgd7")
        return TrainMethod::Pgd7;
    if (name == "free")
        return TrainMethod::Free;
    TWOINONE_PANIC("unvalidated train method reached the runner: ",
                   name);
}

Network
buildModel(const ScenarioSpec &spec, Rng &rng)
{
    ModelConfig mc;
    mc.numClasses = spec.data.classes;
    mc.baseWidth = spec.model.baseWidth;
    if (!spec.model.precisions.empty())
        mc.precisions = PrecisionSet(spec.model.precisions);
    if (spec.model.arch == "preact_mini")
        return preActResNetMini(mc, rng);
    if (spec.model.arch == "wide_mini")
        return wideResNetMini(mc, rng);
    return convNetTiny(mc, rng);
}

std::unique_ptr<Attack>
buildAttack(const AttackSpec &as, const PrecisionSet &candidates)
{
    AttackConfig cfg = AttackConfig::fromEps255(
        static_cast<float>(as.eps255),
        static_cast<float>(as.alpha255), as.steps);
    if (as.kind == "epgd")
        return std::make_unique<EpgdAttack>(cfg, candidates);
    if (as.kind == "fgsm")
        return std::make_unique<FgsmAttack>(cfg);
    return std::make_unique<PgdAttack>(cfg);
}

/** argmax per logit row. */
std::vector<int>
argmaxRows(const Tensor &logits)
{
    int n = logits.dim(0);
    int stride = n > 0 ? static_cast<int>(logits.size()) / n : 0;
    std::vector<int> out(static_cast<size_t>(n));
    const float *p = logits.data();
    for (int i = 0; i < n; ++i) {
        const float *row = p + static_cast<size_t>(i) * stride;
        int best = 0;
        for (int j = 1; j < stride; ++j) {
            if (row[j] > row[best])
                best = j;
        }
        out[static_cast<size_t>(i)] = best;
    }
    return out;
}

/** Copy rows [start, start+len) of a [N, ...] tensor. */
Tensor
sliceRows(const Tensor &src, int start, int len)
{
    std::vector<int> shape = src.shape();
    shape[0] = len;
    Tensor out(shape);
    size_t rowElems = src.size() / static_cast<size_t>(src.dim(0));
    std::memcpy(out.data(),
                src.data() + static_cast<size_t>(start) * rowElems,
                static_cast<size_t>(len) * rowElems * sizeof(float));
    return out;
}

} // namespace

namespace {

/** Journaled error strings must not depend on where the bundle lives
 * (same-seed runs into different --out dirs are digest-identical), so
 * every occurrence of the bundle path becomes a placeholder. */
std::string
scrubBundlePath(std::string s, const std::string &bundle)
{
    for (size_t pos = s.find(bundle); pos != std::string::npos;
         pos = s.find(bundle, pos)) {
        s.replace(pos, bundle.size(), "<bundle>");
        pos += std::strlen("<bundle>");
    }
    return s;
}

} // namespace

void
ensureDir(const std::string &path)
{
    std::string cur;
    for (size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            cur.push_back(path[i]);
            continue;
        }
        if (i < path.size())
            cur.push_back('/');
        if (cur.empty() || cur == "/")
            continue;
        if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST)
            TWOINONE_PANIC("cannot create directory ", cur, ": ",
                           std::strerror(errno));
    }
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        TWOINONE_PANIC("cannot open ", path, " for writing");
    out << text;
    out.flush();
    TWOINONE_ASSERT(static_cast<bool>(out), "short write to ", path);
}

ScenarioRunner::ScenarioRunner(ScenarioSpec spec, std::string outDir)
    : spec_(std::move(spec)), outDir_(std::move(outDir)),
      attackRng_(spec_.seed ^ 0xADF0ULL)
{
    bundle_ = outDir_ + "/" + spec_.name;
    ckptPath_ = bundle_ + "/model.ckpt";
}

RunResult
ScenarioRunner::run()
{
    setUp();
    deploySession();
    if (spec_.tuning.enabled)
        runTuning();
    for (size_t i = 0; i < spec_.phases.size(); ++i)
        runPhase(static_cast<int>(i));
    foldSession();
    journal_->emit("run_complete",
                   [&] {
                       Json d = Json::object();
                       d.set("phases",
                             Json(static_cast<uint64_t>(
                                 spec_.phases.size())));
                       d.set("faults_injected",
                             Json(injector_->injected()));
                       d.set("faults_recovered",
                             Json(injector_->recovered()));
                       return d;
                   }());
    journal_->close();

    RunResult res;
    res.metrics = buildMetrics();
    res.bundleDir = bundle_;
    res.metricsPath = bundle_ + "/metrics.json";
    res.faultsRecovered =
        injector_->injected() == injector_->recovered();
    writeTextFile(res.metricsPath, res.metrics.dump(2) + "\n");
    return res;
}

void
ScenarioRunner::setUp()
{
    ensureDir(bundle_);

    Json run = Json::object();
    run.set("harness_format", Json(1));
    run.set("name", Json(spec_.name));
    run.set("seed", Json(spec_.seed));
    run.set("isa_tier",
            Json(gemm::isaTierName(gemm::activeIsaTier())));
    run.set("spec", spec_.echo);
    writeTextFile(bundle_ + "/run.json", run.dump(2) + "\n");

    journal_ =
        std::make_unique<EventJournal>(bundle_ + "/events.jsonl");
    injector_ =
        std::make_unique<FaultInjector>(spec_.faults, spec_.seed);

    SyntheticConfig dc;
    dc.numClasses = spec_.data.classes;
    dc.height = spec_.data.size;
    dc.width = spec_.data.size;
    dc.trainSize = spec_.data.train;
    dc.testSize = spec_.data.test;
    dc.seed = spec_.seed ^ 0xDA7AULL;
    data_ = makeSynthetic(dc, spec_.name + "-data");

    Json d = Json::object();
    d.set("classes", Json(spec_.data.classes));
    d.set("train", Json(spec_.data.train));
    d.set("test", Json(spec_.data.test));
    journal_->emit("dataset", std::move(d));
}

void
ScenarioRunner::deploySession()
{
    Rng mrng(spec_.seed ^ 0x30DE1ULL);
    Network net = buildModel(spec_, mrng);
    {
        Json d = Json::object();
        d.set("arch", Json(spec_.model.arch));
        d.set("precisions", Json(net.precisionSet().name()));
        journal_->emit("model", std::move(d));
    }

    if (spec_.model.trainEpochs > 0) {
        TrainConfig tc;
        tc.method = trainMethodFromName(spec_.model.trainMethod);
        tc.epochs = spec_.model.trainEpochs;
        tc.batchSize = 32;
        tc.rps = true;
        tc.seed = spec_.seed ^ 0x7EA1ULL;
        Trainer trainer(net, tc);
        trainer.fit(data_.train);
        Json d = Json::object();
        d.set("method", Json(spec_.model.trainMethod));
        d.set("epochs", Json(spec_.model.trainEpochs));
        d.set("steps", Json(trainer.stepsTaken()));
        journal_->emit("train", std::move(d));
    }

    // Persist through a temporary owning session so deployment takes
    // the same artifact-load path production does.
    {
        Session staging = Session::fromNetwork(std::move(net));
        if (spec_.model.calibrateBatches > 0) {
            std::vector<Tensor> batches;
            int rows = std::min(16, data_.train.size());
            int span = std::max(1, data_.train.size() - rows + 1);
            for (int i = 0; i < spec_.model.calibrateBatches; ++i) {
                int start = (i * rows) % span;
                batches.push_back(
                    data_.train.batch(start, rows).images);
            }
            staging.calibrate(batches);
            Json d = Json::object();
            d.set("batches", Json(spec_.model.calibrateBatches));
            journal_->emit("calibrate", std::move(d));
        }
        staging.save(ckptPath_);
        ++ckptSaves_;
        journal_->emit("checkpoint_save", [&] {
            Json d = Json::object();
            d.set("artifact", Json("model.ckpt"));
            d.set("stage", Json("deploy"));
            return d;
        }());
    }

    session_.emplace(loadSession());
    ++ckptLoads_;
    journal_->emit("session_deploy", [&] {
        Json d = Json::object();
        d.set("candidates", Json(session_->candidates().name()));
        d.set("mode", Json(spec_.serving.mode));
        d.set("async", Json(spec_.serving.async));
        if (spec_.session.stream)
            d.set("stream", Json(true));
        if (spec_.session.cacheBudgetPct > 0)
            d.set("cache_budget_pct",
                  Json(spec_.session.cacheBudgetPct));
        if (spec_.serving.async)
            d.set("sessions", Json(spec_.serving.sessions));
        return d;
    }());
    if (spec_.serving.async)
        rebuildServer();
}

void
ScenarioRunner::teardownServer()
{
    // The Server and the extra tenants hold references into the live
    // session's network and engine — they must die first.
    server_.reset();
    extraTenants_.clear();
    tenantIds_.clear();
    tenantTraceMarks_.clear();
}

void
ScenarioRunner::rebuildServer()
{
    teardownServer();

    serve::ServerConfig sc;
    sc.clock = &clock_;
    sc.maxBatchDelayUs = static_cast<double>(spec_.serving.maxDelayUs);
    sc.defaultDeadlineUs =
        static_cast<uint64_t>(spec_.serving.deadlineUs);
    sc.policy = spec_.serving.policy == "edf"
                    ? serve::SchedulingPolicy::EarliestDeadlineFirst
                    : serve::SchedulingPolicy::RoundRobin;
    server_ = std::make_unique<serve::Server>(sc);

    // One image of the synthetic set fixes the request geometry.
    std::vector<int> shape;
    for (int i = 1; i < data_.test.images.ndim(); ++i)
        shape.push_back(data_.test.images.dim(i));

    tenantIds_.push_back(server_->addTenant(*session_, shape));
    for (int i = 1; i < spec_.serving.sessions; ++i) {
        // Extra tenants share the deployed model and engine but draw
        // their batch precisions from their own seeded streams.
        SessionConfig cfg;
        cfg.serving = session_->config().serving;
        cfg.serving.seed = spec_.seed + static_cast<uint64_t>(i);
        extraTenants_.push_back(Session::attach(
            session_->network(), session_->engine(), std::move(cfg)));
    }
    for (Session &t : extraTenants_)
        tenantIds_.push_back(server_->addTenant(t, shape));
    tenantTraceMarks_.assign(tenantIds_.size(), 0);
}

tune::TuneResult
ScenarioRunner::runTuning()
{
    tune::TuneConfig tc;
    // Derived from the scenario seed, so same spec + seed = same
    // winning genome and artifact bytes.
    tc.seed = spec_.seed ^ 0x7C3EULL;
    tc.population = spec_.tuning.population;
    tc.cycles = spec_.tuning.cycles;
    tc.measuredProbes = spec_.tuning.probeRequests > 0;
    tc.probeRows = std::max(1, spec_.tuning.probeRequests);
    tune::TuneResult res = tune::autotune(*session_, tc);

    tuned_ = true;
    tuneCandidates_ = static_cast<uint64_t>(res.candidates.size());
    tuneEvaluated_ = static_cast<uint64_t>(res.evaluated);
    tuneMeanErrPct_ = res.meanErrorPct;
    tunePredictedCost_ =
        static_cast<double>(res.artifact.predictedCost);
    tuneSelected_ = res.artifact.genome.describe();

    // Measured probe values never reach the journal: events stay a
    // pure function of the spec + seed on one machine.
    Json d = Json::object();
    d.set("genome", Json(tuneSelected_));
    d.set("predicted_cost", Json(tunePredictedCost_));
    d.set("candidates", Json(tuneCandidates_));
    d.set("evaluated", Json(tuneEvaluated_));
    d.set("cycles", Json(spec_.tuning.cycles));
    d.set("population", Json(spec_.tuning.population));
    d.set("found", Json(res.found));
    journal_->emit("tuning_selected", std::move(d));

    if (spec_.tuning.apply && res.found) {
        // Embed the winner and take the production path: re-save the
        // artifact, reload through Session::fromCheckpoint (which
        // auto-applies the genome), rebuild the async Server (which
        // adopts the server-scoped knobs from the tenant's artifact).
        session_->setTuningArtifact(res.artifact);
        session_->save(ckptPath_);
        ++ckptSaves_;
        journal_->emit("checkpoint_save", [&] {
            Json sd = Json::object();
            sd.set("artifact", Json("model.ckpt"));
            sd.set("stage", Json("tuned"));
            return sd;
        }());
        foldSession();
        bool async = server_ != nullptr;
        teardownServer();
        session_ = loadSession();
        ++ckptLoads_;
        if (async)
            rebuildServer();
        tuneApplied_ = true;
        const serve::ServeConfig &applied =
            session_->config().serving;
        Json a = Json::object();
        a.set("max_batch", Json(applied.maxBatch));
        a.set("micro_batch", Json(applied.microBatch));
        a.set("replicas", Json(applied.replicas));
        a.set("policy",
              Json(res.artifact.genome.policy == 1 ? "edf"
                                                   : "round_robin"));
        a.set("max_delay_us", Json(res.artifact.genome.maxDelayUs));
        journal_->emit("tuning_applied", std::move(a));
    }
    return res;
}

tune::TuneResult
ScenarioRunner::tuneOnly()
{
    setUp();
    deploySession();
    spec_.tuning.enabled = true; // the subcommand implies tuning
    tune::TuneResult res = runTuning();
    foldSession();
    journal_->close();
    writeTextFile(bundle_ + "/metrics.json",
                  buildMetrics().dump(2) + "\n");
    return res;
}

Session
ScenarioRunner::loadSession()
{
    SessionConfig cfg;
    cfg.serving.maxBatch = spec_.serving.maxBatch;
    cfg.serving.microBatch = spec_.serving.microBatch;
    cfg.serving.mode = spec_.serving.mode == "float"
                           ? serve::PlanMode::Float
                           : serve::PlanMode::Quantized;
    cfg.serving.seed = spec_.seed;
    cfg.serving.replicas = spec_.serving.replicas;
    cfg.serving.lazyPlanWarmup = spec_.serving.lazyWarmup;
    cfg.serving.drawBits = spec_.serving.drawBits;
    cfg.serving.drawWeights.assign(spec_.serving.drawWeights.begin(),
                                   spec_.serving.drawWeights.end());
    // The request image geometry, for the async Server and the
    // autotuner's probes/analytical workload.
    for (int i = 1; i < data_.test.images.ndim(); ++i)
        cfg.inputShape.push_back(data_.test.images.dim(i));
    cfg.loadRetries = spec_.session.loadRetries;
    cfg.loadRetryBackoffMs = spec_.session.retryBackoffMs;
    cfg.streamArtifact = spec_.session.stream;
    cfg.pinnedBits = spec_.session.pinnedBits;
    cfg.onLoadRetry = [this](int attempt, const std::string &error) {
        ++loadRetries_;
        Json d = Json::object();
        d.set("attempt", Json(attempt));
        d.set("error", Json(scrubBundlePath(error, bundle_)));
        journal_->emit("load_retry", std::move(d));
    };
    Session s = Session::fromCheckpoint(ckptPath_, std::move(cfg));
    if (spec_.session.cacheBudgetPct > 0) {
        // The spec budget is a percentage of the fully populated
        // cache: fill it once to measure, then clamp — serving runs
        // under LRU eviction from the first batch.
        RpsEngine &eng = s.engine();
        for (int bits : s.candidates().bits())
            eng.setPrecision(bits);
        EngineCacheConfig ec = eng.cacheConfig();
        ec.budgetBytes =
            eng.cacheBytes() *
            static_cast<size_t>(spec_.session.cacheBudgetPct) / 100;
        eng.setCacheConfig(std::move(ec));
    }
    return s;
}

Dataset
ScenarioRunner::takeBatch(int rows)
{
    TWOINONE_ASSERT(rows <= data_.test.size(),
                    "scenario traffic batch exceeds the test set");
    if (cursor_ + rows > data_.test.size())
        cursor_ = 0;
    Dataset b = data_.test.batch(cursor_, rows);
    cursor_ += rows;
    return b;
}

void
ScenarioRunner::foldSession()
{
    if (!session_)
        return;
    if (server_) {
        // Async: the Server carries the stats and per-tenant traces;
        // the deployed session's sync runtime was never built. flush()
        // has quiesced the dispatcher at every fold point. Traces
        // concatenate in tenant order — deterministic.
        serve::ServeStats s = server_->stats();
        accRequests_ += s.requests;
        accRows_ += s.rows;
        accBatches_ += s.batches;
        accRejected_ += s.rejected;
        accShed_ += s.shed;
        accWall_ += s.wallSeconds;
        accRebuilds_ += session_->engine().columnRebuilds();
        accEvictions_ += session_->engine().cacheEvictions();
        accHydrations_ += session_->engine().cellHydrations();
        for (serve::Server::TenantId id : tenantIds_) {
            const std::vector<int> &tr = server_->precisionTrace(id);
            trace_.insert(trace_.end(), tr.begin(), tr.end());
        }
        return;
    }
    serve::ServeStats s = session_->stats();
    accRequests_ += s.requests;
    accRows_ += s.rows;
    accBatches_ += s.batches;
    accRejected_ += s.rejected;
    accWall_ += s.wallSeconds;
    accRebuilds_ += session_->engine().columnRebuilds();
    accEvictions_ += session_->engine().cacheEvictions();
    accHydrations_ += session_->engine().cellHydrations();
    const std::vector<int> &tr = session_->precisionTrace();
    trace_.insert(trace_.end(), tr.begin(), tr.end());
    traceMark_ = 0;
}

Json
ScenarioRunner::traceDelta()
{
    Json arr = Json::array();
    if (server_) {
        // Per-tenant deltas since the last journal mark, flattened in
        // tenant order (the dispatcher is quiesced by flush() at
        // every journal point).
        for (size_t t = 0; t < tenantIds_.size(); ++t) {
            const std::vector<int> &tr =
                server_->precisionTrace(tenantIds_[t]);
            for (size_t i = tenantTraceMarks_[t]; i < tr.size(); ++i)
                arr.push(Json(tr[i]));
            tenantTraceMarks_[t] = tr.size();
        }
        return arr;
    }
    const std::vector<int> &tr = session_->precisionTrace();
    for (size_t i = traceMark_; i < tr.size(); ++i)
        arr.push(Json(tr[i]));
    traceMark_ = tr.size();
    return arr;
}

void
ScenarioRunner::runPhase(int index)
{
    const PhaseSpec &ps = spec_.phases[static_cast<size_t>(index)];
    {
        Json d = Json::object();
        d.set("phase", Json(index));
        d.set("kind", Json(ps.type));
        d.set("points", Json(ps.points()));
        journal_->emit("phase_start", std::move(d));
    }

    if (ps.type == "steady") {
        for (int b = 0; b < ps.batches; ++b) {
            applyFaults(index, b);
            steadyPoint(index, b, ps.requestsPerBatch,
                        ps.rowsPerRequest);
        }
    } else if (ps.type == "bursty") {
        for (int burst = 0; burst < ps.bursts; ++burst) {
            applyFaults(index, burst);
            steadyPoint(index, burst, ps.burstRequests,
                        ps.rowsPerRequest);
        }
    } else if (ps.type == "adversarial") {
        for (int b = 0; b < ps.batches; ++b) {
            applyFaults(index, b);
            adversarialPoint(index, b, ps);
        }
    } else { // soak
        for (int cycle = 0; cycle < ps.cycles; ++cycle) {
            applyFaults(index, cycle);
            soakCycle(index, cycle, ps);
        }
    }

    Json d = Json::object();
    d.set("phase", Json(index));
    journal_->emit("phase_end", std::move(d));
}

std::vector<Tensor>
ScenarioRunner::serveRequests(std::vector<Tensor> xs, bool starved)
{
    std::vector<Tensor> out;
    out.reserve(xs.size());
    if (server_) {
        std::vector<std::future<serve::Reply>> futs;
        futs.reserve(xs.size());
        for (size_t i = 0; i < xs.size(); ++i) {
            // Round-robin the tenants: every session sees traffic and
            // the dispatcher's fair scheduling is exercised.
            serve::Server::TenantId tenant =
                tenantIds_[i % tenantIds_.size()];
            futs.push_back(
                server_->submit(tenant, std::move(xs[i])));
        }
        server_->flush();
        for (auto &f : futs) {
            try {
                out.push_back(std::move(f.get().y));
            } catch (const serve::ServeError &) {
                // Shed (deadline/shutdown) — already counted by the
                // Server; the caller skips its accuracy rows.
                out.emplace_back();
            }
        }
        return out;
    }
    std::vector<size_t> ids;
    ids.reserve(xs.size());
    for (Tensor &x : xs)
        ids.push_back(session_->submit(std::move(x)));
    if (starved) {
        ThreadPool::ScopedSerial serial;
        session_->drain();
    } else {
        session_->drain();
    }
    for (size_t id : ids)
        out.push_back(session_->result(id));
    session_->clearServed();
    return out;
}

void
ScenarioRunner::steadyPoint(int phase, int point, int nRequests,
                            int rowsPerRequest)
{
    std::vector<Tensor> xs;
    std::vector<std::vector<int>> labels;
    xs.reserve(static_cast<size_t>(nRequests));
    for (int r = 0; r < nRequests; ++r) {
        Dataset b = takeBatch(rowsPerRequest);
        xs.push_back(b.images);
        labels.push_back(b.labels);
    }
    bool starved = starveNextDrain_;
    starveNextDrain_ = false;
    std::vector<Tensor> ys = serveRequests(std::move(xs), starved);
    for (size_t r = 0; r < ys.size(); ++r) {
        if (ys[r].empty())
            continue; // shed
        std::vector<int> pred = argmaxRows(ys[r]);
        for (size_t i = 0; i < pred.size(); ++i) {
            ++natTotal_;
            if (pred[i] == labels[r][i])
                ++natCorrect_;
        }
    }

    Json d = Json::object();
    d.set("phase", Json(phase));
    d.set("point", Json(point));
    d.set("requests", Json(nRequests));
    d.set("rows", Json(nRequests * rowsPerRequest));
    d.set("precisions", traceDelta());
    journal_->emit("point", std::move(d));

    if (starved) {
        // The drain completed inline on the starved pool — the
        // runtime degraded to serial execution without shedding work.
        injector_->noteRecovered();
        Json r = Json::object();
        r.set("kind", Json("starve_pool"));
        r.set("phase", Json(phase));
        r.set("point", Json(point));
        r.set("via", Json("serial_drain"));
        journal_->emit("fault_recovered", std::move(r));
    }
}

void
ScenarioRunner::adversarialPoint(int phase, int point,
                                 const PhaseSpec &ps)
{
    int rows = ps.requestsPerBatch * ps.rowsPerRequest;
    Dataset clean = takeBatch(rows);

    // The adversary samples its own generation precision from the
    // candidate set (the paper's threat model) and crafts against the
    // live network; serving then draws independent batch precisions —
    // the robust-accuracy gap under live switching is the defense.
    int attackBits = session_->candidates().sample(attackRng_);
    session_->switchPrecision(attackBits);
    std::unique_ptr<Attack> attack =
        buildAttack(ps.attack, session_->candidates());
    Tensor adv = attack->perturb(session_->network(), clean.images,
                                 clean.labels, attackRng_);

    std::vector<Tensor> xs;
    xs.reserve(static_cast<size_t>(ps.requestsPerBatch));
    for (int r = 0; r < ps.requestsPerBatch; ++r)
        xs.push_back(sliceRows(adv, r * ps.rowsPerRequest,
                               ps.rowsPerRequest));
    std::vector<Tensor> ys =
        serveRequests(std::move(xs), /*starved=*/false);
    uint64_t correct = 0;
    for (int r = 0; r < ps.requestsPerBatch; ++r) {
        const Tensor &logits = ys[static_cast<size_t>(r)];
        if (logits.empty())
            continue; // shed
        std::vector<int> pred = argmaxRows(logits);
        for (size_t i = 0; i < pred.size(); ++i) {
            ++robTotal_;
            size_t idx =
                static_cast<size_t>(r * ps.rowsPerRequest) + i;
            if (pred[i] == clean.labels[idx]) {
                ++robCorrect_;
                ++correct;
            }
        }
    }

    Json d = Json::object();
    d.set("phase", Json(phase));
    d.set("point", Json(point));
    d.set("attack", Json(ps.attack.kind));
    d.set("attack_bits", Json(attackBits));
    d.set("rows", Json(rows));
    d.set("correct", Json(correct));
    d.set("precisions", traceDelta());
    journal_->emit("attack_point", std::move(d));
}

void
ScenarioRunner::soakCycle(int phase, int cycle, const PhaseSpec &ps)
{
    for (int b = 0; b < ps.batchesPerCycle; ++b)
        steadyPoint(phase, cycle * ps.batchesPerCycle + b,
                    ps.requestsPerBatch, ps.rowsPerRequest);
    if ((cycle + 1) % ps.checkpointEvery == 0) {
        saveCheckpoint(phase, cycle);
        reloadSession(phase, cycle);
    }
}

void
ScenarioRunner::applyFaults(int phase, int point)
{
    for (const FaultSpec *f : injector_->at(phase, point)) {
        Json d = Json::object();
        d.set("kind", Json(f->type));
        d.set("phase", Json(phase));
        d.set("point", Json(point));

        if (f->type == "cache_storm") {
            uint64_t before = session_->engine().columnRebuilds();
            for (int s = 0; s < f->storms; ++s) {
                session_->engine().detach();
                session_->engine().refresh();
            }
            ++cacheStorms_;
            injector_->noteInjected();
            d.set("storms", Json(f->storms));
            d.set("rebuilds",
                  Json(session_->engine().columnRebuilds() - before));
            journal_->emit("fault_injected", std::move(d));
            // The engine rebuilt its full cache each storm; serving
            // continues from the refreshed cells.
            injector_->noteRecovered();
            Json r = Json::object();
            r.set("kind", Json("cache_storm"));
            r.set("via", Json("cache_rebuild"));
            journal_->emit("fault_recovered", std::move(r));
        } else if (f->type == "memory_pressure") {
            // Lift any active budget, fill the cache to measure its
            // true full size, clamp it to the fault's budget, then
            // drive full candidate sweeps through the budgeted cache
            // — an eviction storm. The budget stays in force
            // afterwards, so the remaining traffic keeps serving
            // under memory pressure.
            RpsEngine &eng = session_->engine();
            EngineCacheConfig ec = eng.cacheConfig();
            ec.budgetBytes = 0;
            eng.setCacheConfig(ec);
            for (int bits : session_->candidates().bits())
                eng.setPrecision(bits);
            ec.budgetBytes =
                eng.cacheBytes() *
                static_cast<size_t>(f->budgetPct) / 100;
            eng.setCacheConfig(ec);
            for (int s = 0; s < f->storms; ++s) {
                for (int bits : session_->candidates().bits())
                    eng.setPrecision(bits);
            }
            ++memPressure_;
            injector_->noteInjected();
            d.set("budget_pct", Json(f->budgetPct));
            d.set("storms", Json(f->storms));
            journal_->emit("fault_injected", std::move(d));
            // Recovered = the LRU held the byte invariant through
            // the storm; serving continues inside the budget. (Cell
            // byte sizes are ISA-tier-dependent, so eviction counts
            // never reach the journal — only the invariant does.)
            bool within = eng.cacheBytes() <= ec.budgetBytes;
            Json r = Json::object();
            r.set("kind", Json("memory_pressure"));
            r.set("via", Json("lru_eviction"));
            r.set("within_budget", Json(within));
            if (within) {
                injector_->noteRecovered();
                journal_->emit("fault_recovered", std::move(r));
            } else {
                journal_->emit("fault_unrecovered", std::move(r));
            }
        } else if (f->type == "starve_pool") {
            starveNextDrain_ = true;
            injector_->noteInjected();
            journal_->emit("fault_injected", std::move(d));
            // Recovery is journaled by the starved drain itself.
        } else if (f->type == "malformed_request") {
            journal_->emit("fault_injected", std::move(d));
            injectMalformedRequest(*f, phase, point);
        } else if (f->type == "torn_save") {
            pendingTorn_ = f;
            journal_->emit("fault_armed", std::move(d));
        } else { // corrupt_checkpoint
            pendingCorrupt_ = f;
            journal_->emit("fault_armed", std::move(d));
        }
    }
}

void
ScenarioRunner::injectMalformedRequest(const FaultSpec &f, int phase,
                                       int point)
{
    injector_->noteInjected();
    Tensor bad;
    if (f.kind == "oversized") {
        Dataset b = takeBatch(1);
        std::vector<int> shape = b.images.shape();
        shape[0] = spec_.serving.maxBatch + 1;
        bad = Tensor(shape, 0.5f);
    } else if (f.kind == "wrong_shape") {
        Dataset b = takeBatch(1);
        std::vector<int> shape = b.images.shape();
        shape[static_cast<size_t>(shape.size()) - 1] += 1;
        bad = Tensor(shape, 0.5f);
    } else { // wrong_rank
        bad = Tensor({2, 3}, 0.5f);
    }
    try {
        if (server_)
            server_->submit(tenantIds_[0], std::move(bad));
        else
            session_->submit(std::move(bad));
        // A malformed request that the runtime accepted is a real
        // robustness hole: leave the fault unrecovered.
        Json d = Json::object();
        d.set("kind", Json("malformed_request"));
        d.set("request", Json(f.kind));
        d.set("accepted", Json(true));
        journal_->emit("fault_unrecovered", std::move(d));
    } catch (const serve::ServeError &e) {
        injector_->noteRecovered();
        Json d = Json::object();
        d.set("kind", Json("malformed_request"));
        d.set("request", Json(f.kind));
        d.set("phase", Json(phase));
        d.set("point", Json(point));
        d.set("error", Json(scrubBundlePath(e.what(), bundle_)));
        journal_->emit("request_rejected", std::move(d));
    }
}

void
ScenarioRunner::saveCheckpoint(int phase, int point)
{
    const FaultSpec *torn = pendingTorn_;
    pendingTorn_ = nullptr;
    if (torn != nullptr)
        injector_->armTornWrite(*torn, ckptPath_);
    try {
        session_->save(ckptPath_);
        injector_->disarm();
        ++ckptSaves_;
        Json d = Json::object();
        d.set("artifact", Json("model.ckpt"));
        d.set("phase", Json(phase));
        d.set("point", Json(point));
        journal_->emit("checkpoint_save", std::move(d));
    } catch (const io::CheckpointError &e) {
        injector_->disarm();
        if (torn == nullptr)
            throw; // not ours — a genuine save failure
        Json d = Json::object();
        d.set("phase", Json(phase));
        d.set("point", Json(point));
        d.set("error", Json(scrubBundlePath(e.what(), bundle_)));
        journal_->emit("save_failed", std::move(d));
        // The save protocol is temp-file + rename: a torn write must
        // leave the previous artifact fully readable.
        bool intact = true;
        try {
            checkpoint::Checkpoint::read(ckptPath_);
        } catch (const io::CheckpointError &) {
            intact = false;
        }
        Json r = Json::object();
        r.set("kind", Json("torn_save"));
        r.set("target_intact", Json(intact));
        if (intact) {
            injector_->noteRecovered();
            journal_->emit("fault_recovered", std::move(r));
        } else {
            journal_->emit("fault_unrecovered", std::move(r));
        }
    }
}

void
ScenarioRunner::reloadSession(int phase, int point)
{
    const FaultSpec *corrupt = pendingCorrupt_;
    pendingCorrupt_ = nullptr;
    if (corrupt != nullptr)
        injector_->armCorruptRead(*corrupt, ckptPath_);
    uint64_t retriesBefore = loadRetries_;
    try {
        Session next = loadSession();
        injector_->disarm();
        foldSession();
        // The async server (and its tenant sessions) reference the
        // outgoing session's network and engine — tear down before
        // the replacement, rebuild over the new session after.
        bool async = server_ != nullptr;
        teardownServer();
        session_ = std::move(next);
        if (async)
            rebuildServer();
        ++ckptLoads_;
        Json d = Json::object();
        d.set("phase", Json(phase));
        d.set("point", Json(point));
        if (spec_.session.stream)
            d.set("stream", Json(true));
        journal_->emit("checkpoint_load", std::move(d));
        if (corrupt != nullptr) {
            // The corrupted read was survived via the retry budget.
            injector_->noteRecovered();
            Json r = Json::object();
            r.set("kind", Json("corrupt_checkpoint"));
            r.set("via", Json("load_retry"));
            r.set("retries",
                  Json(loadRetries_ - retriesBefore));
            journal_->emit("fault_recovered", std::move(r));
        }
    } catch (const io::CheckpointError &e) {
        injector_->disarm();
        if (corrupt == nullptr)
            throw; // not ours — a genuine artifact problem
        // Persistent corruption exhausted the retries: degrade by
        // keeping the previously deployed session serving.
        ++degraded_;
        injector_->noteRecovered();
        Json d = Json::object();
        d.set("phase", Json(phase));
        d.set("point", Json(point));
        d.set("error", Json(scrubBundlePath(e.what(), bundle_)));
        journal_->emit("load_failed", std::move(d));
        Json r = Json::object();
        r.set("kind", Json("corrupt_checkpoint"));
        r.set("via", Json("degraded_to_previous_session"));
        journal_->emit("fault_recovered", std::move(r));
    }
}

Json
ScenarioRunner::buildMetrics()
{
    Json counts = Json::object();
    counts.set("batches", Json(accBatches_));
    counts.set("rows", Json(accRows_));
    counts.set("requests", Json(accRequests_));
    counts.set("rejected_requests", Json(accRejected_));
    counts.set("shed_requests", Json(accShed_));
    counts.set("events", Json(journal_->count()));
    counts.set("precision_switches",
               Json(static_cast<uint64_t>(trace_.size())));
    counts.set("faults_injected", Json(injector_->injected()));
    counts.set("faults_recovered", Json(injector_->recovered()));
    counts.set("degraded", Json(degraded_));
    counts.set("checkpoint_saves", Json(ckptSaves_));
    counts.set("checkpoint_loads", Json(ckptLoads_));
    counts.set("load_retries", Json(loadRetries_));
    counts.set("cache_storms", Json(cacheStorms_));
    counts.set("column_rebuilds", Json(accRebuilds_));
    // Conditional: scenarios predating the streaming/budget features
    // keep their baseline key sets byte-for-byte.
    if (spec_.session.stream || spec_.session.cacheBudgetPct > 0 ||
        memPressure_ > 0) {
        counts.set("cache_evictions", Json(accEvictions_));
        counts.set("cell_hydrations", Json(accHydrations_));
        counts.set("memory_pressure_faults", Json(memPressure_));
    }

    // Precision-trace digest: FNV-1a over the sampled bit-widths as
    // little-endian u32s — machine-independent (pure RNG), so
    // baselines may exact-compare it.
    std::vector<uint8_t> traceBytes;
    traceBytes.reserve(trace_.size() * 4);
    for (int p : trace_) {
        uint32_t u = static_cast<uint32_t>(p);
        traceBytes.push_back(static_cast<uint8_t>(u & 0xFF));
        traceBytes.push_back(static_cast<uint8_t>((u >> 8) & 0xFF));
        traceBytes.push_back(static_cast<uint8_t>((u >> 16) & 0xFF));
        traceBytes.push_back(static_cast<uint8_t>((u >> 24) & 0xFF));
    }
    Json digests = Json::object();
    digests.set("events", Json(journal_->digestHex()));
    digests.set("precision_trace",
                Json(digestToHex(io::fnv1a(
                    traceBytes.data(), traceBytes.size()))));

    Json accuracy = Json::object();
    if (natTotal_ > 0)
        accuracy.set("natural_pct",
                     Json(100.0 * static_cast<double>(natCorrect_) /
                          static_cast<double>(natTotal_)));
    if (robTotal_ > 0)
        accuracy.set("robust_pct",
                     Json(100.0 * static_cast<double>(robCorrect_) /
                          static_cast<double>(robTotal_)));

    serve::ServeStats last =
        server_ ? server_->stats()
                : (session_ ? session_->stats() : serve::ServeStats());
    Json timing = Json::object();
    timing.set("wall_seconds", Json(accWall_));
    timing.set("qps", Json(accWall_ > 0.0
                               ? static_cast<double>(accRows_) /
                                     accWall_
                               : 0.0));
    timing.set("p50_us", Json(last.p50Us));
    timing.set("p99_us", Json(last.p99Us));
    timing.set("p999_us", Json(last.p999Us));

    Json m = Json::object();
    m.set("scenario", Json(spec_.name));
    m.set("seed", Json(spec_.seed));
    m.set("counts", std::move(counts));
    m.set("digests", std::move(digests));
    m.set("accuracy", std::move(accuracy));
    m.set("timing", std::move(timing));
    if (tuned_) {
        // Candidate counts and the winner ride on float cost ordering
        // (machine-dependent under -march=native): the section lives
        // outside "counts" so baselines can ignore it wholesale while
        // still exact-comparing the traffic counts.
        Json t = Json::object();
        t.set("selected", Json(tuneSelected_));
        t.set("predicted_cost", Json(tunePredictedCost_));
        t.set("candidates", Json(tuneCandidates_));
        t.set("evaluated", Json(tuneEvaluated_));
        t.set("mean_error_pct", Json(tuneMeanErrPct_));
        t.set("applied", Json(tuneApplied_));
        m.set("tuning", std::move(t));
    }
    return m;
}

} // namespace harness
} // namespace twoinone
