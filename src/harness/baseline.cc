/**
 * @file
 * Baseline diffing implementation.
 */

#include "harness/baseline.hh"

#include <cmath>

namespace twoinone {
namespace harness {

namespace {

void
flattenInto(const Json &node, const std::string &prefix,
            std::vector<std::pair<std::string, Json>> &out)
{
    switch (node.type()) {
    case Json::Type::Object:
        for (const auto &kv : node.members())
            flattenInto(kv.second,
                        prefix.empty() ? kv.first
                                       : prefix + "." + kv.first,
                        out);
        break;
    case Json::Type::Array: {
        const auto &items = node.items();
        for (size_t i = 0; i < items.size(); ++i)
            flattenInto(items[i],
                        prefix + "[" + std::to_string(i) + "]", out);
        break;
    }
    default:
        out.emplace_back(prefix, node);
    }
}

const Json *
lookup(const std::vector<std::pair<std::string, Json>> &flat,
       const std::string &path)
{
    for (const auto &kv : flat) {
        if (kv.first == path)
            return &kv.second;
    }
    return nullptr;
}

bool
matchesAny(const std::vector<std::string> &rules,
           const std::string &path)
{
    for (const auto &r : rules) {
        if (pathMatches(r, path))
            return true;
    }
    return false;
}

/** Render a leaf for a diff message. */
std::string
show(const Json &v)
{
    return v.dump();
}

bool
exactEqual(const Json &a, const Json &b)
{
    return a.type() == b.type() && a.dump() == b.dump();
}

} // namespace

bool
pathMatches(const std::string &rule, const std::string &path)
{
    if (rule == path)
        return true;
    if (path.size() <= rule.size() ||
        path.compare(0, rule.size(), rule) != 0)
        return false;
    char next = path[rule.size()];
    return next == '.' || next == '[';
}

std::vector<std::pair<std::string, Json>>
flattenMetrics(const Json &doc)
{
    std::vector<std::pair<std::string, Json>> out;
    flattenInto(doc, "", out);
    return out;
}

CompareResult
compareBaseline(const Json &baseline, const Json &current,
                const CompareSpec &rules)
{
    CompareResult res;
    auto fail = [&](const std::string &path, const std::string &msg) {
        res.ok = false;
        res.failures.push_back({path, msg});
    };

    auto base = flattenMetrics(baseline);
    auto cur = flattenMetrics(current);

    // Key-set equality (key order follows the documents).
    for (const auto &kv : base) {
        if (matchesAny(rules.ignore, kv.first))
            continue;
        if (lookup(cur, kv.first) == nullptr)
            fail(kv.first, "missing from current run: " + kv.first +
                               " (baseline has " + show(kv.second) +
                               ")");
    }
    for (const auto &kv : cur) {
        if (matchesAny(rules.ignore, kv.first))
            continue;
        if (lookup(base, kv.first) == nullptr)
            fail(kv.first,
                 "extra key not in baseline: " + kv.first +
                     " = " + show(kv.second) +
                     " (re-capture the baseline if this is intended)");
    }

    // Value rules on the shared keys.
    for (const auto &kv : base) {
        const std::string &path = kv.first;
        if (matchesAny(rules.ignore, path))
            continue;
        const Json *cv = lookup(cur, path);
        if (cv == nullptr)
            continue; // already reported as missing

        // Tolerance rules apply to numeric leaves not forced exact.
        bool forcedExact = matchesAny(rules.exact, path);
        const double *absTol = nullptr;
        const double *relTol = nullptr;
        if (!forcedExact) {
            for (const auto &rule : rules.absTol) {
                if (pathMatches(rule.first, path))
                    absTol = &rule.second;
            }
            for (const auto &rule : rules.relTol) {
                if (pathMatches(rule.first, path))
                    relTol = &rule.second;
            }
        }

        if ((absTol != nullptr || relTol != nullptr) &&
            kv.second.isNumber() && cv->isNumber()) {
            double b = kv.second.asNumber();
            double c = cv->asNumber();
            double diff = std::fabs(c - b);
            if (absTol != nullptr && diff <= *absTol)
                continue;
            if (relTol != nullptr &&
                diff <= *relTol * std::fabs(b))
                continue;
            std::string bound =
                absTol != nullptr
                    ? "abs_tol " + formatJsonNumber(*absTol)
                    : "rel_tol " + formatJsonNumber(*relTol);
            fail(path, path + ": " + formatJsonNumber(c) +
                           " differs from baseline " +
                           formatJsonNumber(b) + " by " +
                           formatJsonNumber(diff) + " (allowed " +
                           bound + ")");
            continue;
        }

        if (!exactEqual(kv.second, *cv))
            fail(path, path + ": " + show(*cv) +
                           " != baseline " + show(kv.second) +
                           " (exact match required)");
    }

    return res;
}

} // namespace harness
} // namespace twoinone
