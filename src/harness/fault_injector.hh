/**
 * @file
 * Deterministic fault injection for scenario runs.
 *
 * The injector owns the scenario's fault schedule and the mechanics
 * of making each fault happen at exactly the declared (phase, point)
 * coordinate, with corruption content derived from the scenario seed
 * — the same spec + seed always injects the same bytes, which is what
 * lets a baseline pin down "3 faults injected, 3 recovered" as an
 * exact-compare metric.
 *
 * Checkpoint faults go through the io::FaultHooks seam
 * (src/io/serialize.hh): armCorruptRead() installs a read hook that
 * flips bits in / truncates the artifact bytes the next time the
 * target path is read (every time, for persistent faults);
 * armTornWrite() installs a write hook that cuts the next write of
 * the target path at half its bytes, which together with the atomic
 * temp-file+rename save protocol must leave the previous artifact
 * intact. The runner arms before the save/load it wants to poison and
 * disarms right after — the hooks are process-global, so exactly one
 * site holds them at a time.
 *
 * Bookkeeping: injected() counts faults that actually fired,
 * recovered() counts the ones the serving stack survived (retry
 * succeeded, degradation path held, rejection was clean). A run with
 * injected() != recovered() is the harness's "fault unrecovered"
 * outcome — distinct exit code, CI-visible.
 */

#ifndef TWOINONE_HARNESS_FAULT_INJECTOR_HH
#define TWOINONE_HARNESS_FAULT_INJECTOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.hh"

namespace twoinone {
namespace harness {

class FaultInjector
{
  public:
    FaultInjector(std::vector<FaultSpec> faults, uint64_t seed);

    /** Clears any armed io hooks. */
    ~FaultInjector();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Faults scheduled at (phase, point), in declaration order. */
    std::vector<const FaultSpec *> at(int phase, int point) const;

    /** Whether any fault in the schedule targets @p phase. */
    bool anyInPhase(int phase) const;

    /**
     * Arm a read-corruption hook for @p fault against artifact
     * @p path: the next read of that path has its bytes corrupted
     * (bitflip or truncate per the spec); persistent faults corrupt
     * every subsequent read until disarm(). Counts one injection per
     * corrupted read, at most one per arming.
     */
    void armCorruptRead(const FaultSpec &fault, const std::string &path);

    /**
     * Arm a torn-write hook for @p fault against artifact @p path:
     * the next write of that path stops after half its bytes and
     * surfaces io::CheckpointError to the writer.
     */
    void armTornWrite(const FaultSpec &fault, const std::string &path);

    /** Remove any armed io hooks (idempotent). */
    void disarm();

    /** Faults that actually fired. */
    uint64_t injected() const { return *injected_; }
    /** Count a fault that fired outside the io-hook path (cache
     * storms, starvation, malformed requests). */
    void noteInjected() { ++*injected_; }

    /** Faults the stack survived. */
    uint64_t recovered() const { return recovered_; }
    void noteRecovered() { ++recovered_; }

  private:
    std::vector<FaultSpec> faults_;
    uint64_t seed_;
    /** Shared with the armed hook closures: a hook can fire while the
     * runner is mid-load, and the count must land here. */
    std::shared_ptr<uint64_t> injected_;
    uint64_t recovered_ = 0;
    bool armed_ = false;
};

/** Corrupt @p bytes in place per the fault spec: flip `flips` bits at
 * seed-deterministic positions, or truncate to half. Exposed for
 * tests. */
void corruptBytes(std::vector<uint8_t> &bytes, const FaultSpec &fault,
                  uint64_t seed);

} // namespace harness
} // namespace twoinone

#endif // TWOINONE_HARNESS_FAULT_INJECTOR_HH
