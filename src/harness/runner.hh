/**
 * @file
 * ScenarioRunner: executes one validated scenario spec end to end and
 * emits its evidence bundle.
 *
 * A run stands up the declared model (build → optional RPS
 * adversarial training → calibration), persists it, deploys it
 * through Session::fromCheckpoint (the same artifact-load path
 * production takes, retry budget included), then drives the declared
 * traffic phases against the live session while the FaultInjector
 * fires the scheduled faults. Everything observable lands in the
 * bundle directory:
 *
 *   <out>/<scenario-name>/
 *     run.json      — harness format version + the spec echo
 *     events.jsonl  — seq-numbered deterministic event journal
 *     metrics.json  — counts / digests / accuracy / timing summary
 *     model.ckpt    — the served artifact (soak cycles re-save it)
 *
 * Determinism contract: with a fixed spec + seed, counts, digests and
 * the precision trace are identical on every rerun, and events.jsonl
 * is byte-identical on the same machine (accuracy-bearing events
 * depend on float results, which vary across -march=native hosts —
 * baselines therefore exact-compare only the machine-independent
 * keys and tolerance-compare accuracies).
 *
 * Graceful-degradation contract: every injected fault must be
 * survived — a clean rejection, a successful retry, or an explicit
 * degradation (soak reload fails persistently → the previous session
 * keeps serving). RunResult::faultsRecovered reports whether that
 * held; the driver maps a violation to its own exit code.
 */

#ifndef TWOINONE_HARNESS_RUNNER_HH
#define TWOINONE_HARNESS_RUNNER_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.hh"
#include "data/synthetic.hh"
#include "harness/event_journal.hh"
#include "harness/fault_injector.hh"
#include "harness/scenario.hh"
#include "serve/server.hh"
#include "serve/session.hh"
#include "tune/autotuner.hh"

namespace twoinone {
namespace harness {

struct RunResult
{
    Json metrics;           ///< the metrics.json document
    std::string bundleDir;  ///< evidence bundle directory
    std::string metricsPath;///< bundleDir + "/metrics.json"
    bool faultsRecovered = true; ///< injected == recovered
};

class ScenarioRunner
{
  public:
    ScenarioRunner(ScenarioSpec spec, std::string outDir);

    /** Execute the scenario and write the evidence bundle. Throws
     * io::CheckpointError / serve::ServeError only for failures the
     * harness did not inject (those are run bugs, not scenario
     * outcomes). */
    RunResult run();

    /** Stand the scenario's model up (train / calibrate / deploy)
     * and run the serving autotuner only — no traffic phases. The
     * spec's tuning block supplies the budget when present (the
     * defaults otherwise); with apply the bundle's model.ckpt is
     * re-saved with the winner embedded. Backs the `twoinone-bench
     * tune` subcommand. */
    tune::TuneResult tuneOnly();

    /** The evidence-bundle directory this runner writes into. */
    const std::string &bundleDir() const { return bundle_; }

  private:
    void setUp();
    void deploySession();
    Session loadSession();

    /** Run tune::autotune on the deployed session per the spec's
     * tuning block, journal the selection, and (with apply) re-save +
     * reload so traffic serves under the winner. */
    tune::TuneResult runTuning();

    void runPhase(int index);
    void steadyPoint(int phase, int point, int nRequests,
                     int rowsPerRequest);
    void adversarialPoint(int phase, int point, const PhaseSpec &ps);
    void soakCycle(int phase, int cycle, const PhaseSpec &ps);

    /** Serve @p xs in order and return each request's logits (empty
     * tensor for a shed request). Routes through the async Server
     * (round-robin over the tenant sessions, then flush) when the
     * spec says "async", else through the synchronous drain —
     * @p starved wraps that drain in ScopedSerial. */
    std::vector<Tensor> serveRequests(std::vector<Tensor> xs,
                                      bool starved);

    /** (Re)build the async Server over the live session: tenant 0 is
     * the deployed session, tenants 1..n-1 attach to its network
     * sharing its engine. Called at deploy and after a soak reload
     * replaces the session. */
    void rebuildServer();

    /** Tear down the Server and its tenant sessions (before the
     * session they reference is replaced). */
    void teardownServer();

    /** Fire the faults scheduled at (phase, point). Checkpoint faults
     * arm and fire later, at the cycle's save/load. */
    void applyFaults(int phase, int point);
    void injectMalformedRequest(const FaultSpec &f, int phase,
                                int point);
    void saveCheckpoint(int phase, int point);
    void reloadSession(int phase, int point);

    /** Next @p rows consecutive test rows (wraps, never straddles). */
    Dataset takeBatch(int rows);
    /** Fold the live session's stats + trace into the accumulators
     * (before replacing or finishing). */
    void foldSession();
    /** Precisions sampled since the last journal mark. */
    Json traceDelta();

    Json buildMetrics();

    ScenarioSpec spec_;
    std::string outDir_;
    std::string bundle_;
    std::string ckptPath_;

    std::unique_ptr<EventJournal> journal_;
    std::unique_ptr<FaultInjector> injector_;
    std::optional<Session> session_;
    DatasetPair data_;
    Rng attackRng_;

    /** @name Async serving (spec_.serving.async)
     * The Server's time source is a ManualClock the runner never
     * advances: age closes and deadline expiries cannot fire on wall
     * time, so batch composition — and every journaled count and
     * digest — is a pure function of the spec + seed. */
    /** @{ */
    ManualClock clock_;
    std::vector<Session> extraTenants_; ///< tenants 1..n-1
    /** Declared after the tenants so the default destructor stops the
     * Server before any session it references dies. */
    std::unique_ptr<serve::Server> server_;
    std::vector<serve::Server::TenantId> tenantIds_;
    std::vector<size_t> tenantTraceMarks_; ///< journaled trace prefix
    /** @} */

    int cursor_ = 0;       ///< test-set traffic cursor
    size_t traceMark_ = 0; ///< journaled prefix of the live trace

    // Pending checkpoint faults (armed at the next save / load).
    const FaultSpec *pendingTorn_ = nullptr;
    const FaultSpec *pendingCorrupt_ = nullptr;
    bool starveNextDrain_ = false;

    // Accumulators across session replacements.
    uint64_t accRequests_ = 0, accRows_ = 0, accBatches_ = 0;
    uint64_t accRejected_ = 0, accShed_ = 0, accRebuilds_ = 0;
    double accWall_ = 0.0;
    std::vector<int> trace_;

    // Run counters.
    uint64_t ckptSaves_ = 0, ckptLoads_ = 0, loadRetries_ = 0;
    uint64_t cacheStorms_ = 0, degraded_ = 0;
    /** @name Byte-budgeted cache (session.stream / cache_budget_pct /
     * memory_pressure faults). Eviction and hydration totals fold
     * across session replacements like column_rebuilds; the metric
     * keys appear only when one of those features is active, so
     * scenarios predating them keep their baseline key sets. */
    /** @{ */
    uint64_t memPressure_ = 0;
    uint64_t accEvictions_ = 0, accHydrations_ = 0;
    /** @} */
    /** @name Autotuner outcome (metrics "tuning" section)
     * Candidate/evaluation counts and the winner depend on float cost
     * ordering, so baselines treat the section like timing: present,
     * never exact-compared across machines. */
    /** @{ */
    bool tuned_ = false, tuneApplied_ = false;
    uint64_t tuneCandidates_ = 0, tuneEvaluated_ = 0;
    double tuneMeanErrPct_ = 0.0, tunePredictedCost_ = 0.0;
    std::string tuneSelected_;
    /** @} */
    uint64_t natCorrect_ = 0, natTotal_ = 0;
    uint64_t robCorrect_ = 0, robTotal_ = 0;
};

/** mkdir -p equivalent (panics on a non-directory collision). */
void ensureDir(const std::string &path);

/** Write @p text to @p path (plain stream — io fault hooks must not
 * see bundle artifacts). */
void writeTextFile(const std::string &path, const std::string &text);

} // namespace harness
} // namespace twoinone

#endif // TWOINONE_HARNESS_RUNNER_HH
