/**
 * @file
 * Deterministic JSONL event journal — the evidence spine of a
 * scenario run.
 *
 * Every interesting thing a run does (phase transitions, served
 * batches with their sampled precisions, fault injections and how
 * they resolved, checkpoint saves/loads, request rejections) is
 * appended as one JSON object per line to events.jsonl. The journal
 * is *seed-deterministic by construction*: events carry a monotonic
 * sequence number and semantic payload only — no wall-clock
 * timestamps, no pointers, no latencies — so re-running the same
 * scenario with the same seed produces a byte-identical file. The
 * FNV-1a digest over the bytes (digest()) is the cheap equality
 * witness: the driver's --check-determinism mode runs a scenario
 * twice and compares digests, and baseline bundles record it so a
 * reviewer can tell two runs apart at a glance.
 *
 * Lines are written eagerly (a crashed run leaves a journal up to
 * the failure point) and folded into the running digest as they go.
 */

#ifndef TWOINONE_HARNESS_EVENT_JOURNAL_HH
#define TWOINONE_HARNESS_EVENT_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "harness/json.hh"

namespace twoinone {
namespace harness {

class EventJournal
{
  public:
    /** Open (truncate) @p path for appending events. */
    explicit EventJournal(const std::string &path);

    ~EventJournal();

    EventJournal(const EventJournal &) = delete;
    EventJournal &operator=(const EventJournal &) = delete;

    /**
     * Append one event: {"seq": N, "type": type, ...detail members}.
     * @p detail must be an object (or null for no payload).
     */
    void emit(const std::string &type, Json detail = Json());

    /** Events appended so far. */
    uint64_t count() const { return seq_; }

    /** Running FNV-1a digest over every byte written so far. */
    uint64_t digest() const { return digest_; }

    /** Digest as a fixed-width hex string (metrics/baseline field). */
    std::string digestHex() const;

    /** Flush and close the file (destructor does this too). */
    void close();

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream out_;
    uint64_t seq_ = 0;
    uint64_t digest_;
};

/** Fixed-width hex formatting shared by the trace digest. */
std::string digestToHex(uint64_t digest);

} // namespace harness
} // namespace twoinone

#endif // TWOINONE_HARNESS_EVENT_JOURNAL_HH
