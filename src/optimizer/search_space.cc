/**
 * @file
 * DataflowSpace implementation.
 */

#include "optimizer/search_space.hh"

#include <algorithm>

#include "common/logging.hh"

namespace twoinone {

namespace {

int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

/** Random trip count in [1, min(limit, extent)]. */
int
randomTrip(Rng &rng, int extent, int limit)
{
    int hi = std::max(1, std::min(extent, limit));
    return rng.uniformInt(1, hi);
}

} // namespace

DataflowSpace::DataflowSpace(const ConvShape &shape,
                             SearchConstraints constraints)
    : shape_(shape), constraints_(constraints)
{
    TWOINONE_ASSERT(constraints_.numUnits >= 1, "bad unit budget");
}

void
DataflowSpace::randomizeDimTiling(Dataflow &df, Dim d, Rng &rng) const
{
    int extent = Dataflow::shapeExtent(shape_, d);
    int t_rf = randomTrip(rng, extent, constraints_.maxTripRf);
    int rem = ceilDiv(extent, t_rf);
    int t_noc = randomTrip(rng, rem, constraints_.maxTripNoc);
    rem = ceilDiv(rem, t_noc);
    int t_gb = randomTrip(rng, rem, constraints_.maxTripGb);

    df.trips(Level::Rf, d) = t_rf;
    df.trips(Level::Noc, d) = t_noc;
    df.trips(Level::Gb, d) = t_gb;
    // DRAM trips are fixed by repair().
}

void
DataflowSpace::repair(Dataflow &df) const
{
    // Shrink the spatial mapping until it fits the array, pushing the
    // removed factors up into the GB level.
    while (df.spatialUnits() > constraints_.numUnits) {
        // Halve the largest NoC trip.
        Dim largest = Dim::N;
        int largest_trip = 1;
        for (int d = 0; d < kNumDims; ++d) {
            Dim dim = static_cast<Dim>(d);
            if (df.trips(Level::Noc, dim) > largest_trip) {
                largest_trip = df.trips(Level::Noc, dim);
                largest = dim;
            }
        }
        TWOINONE_ASSERT(largest_trip > 1, "cannot shrink NoC mapping");
        int halved = ceilDiv(largest_trip, 2);
        df.trips(Level::Noc, largest) = halved;
        df.trips(Level::Gb, largest) *= 2;
    }

    // Cover every dimension with DRAM trips.
    for (int d = 0; d < kNumDims; ++d) {
        Dim dim = static_cast<Dim>(d);
        int extent = Dataflow::shapeExtent(shape_, dim);
        int inner = static_cast<int>(df.tileExtent(dim, Level::Gb));
        df.trips(Level::Dram, dim) = std::max(1, ceilDiv(extent, inner));
    }
}

Dataflow
DataflowSpace::defaultDataflow() const
{
    if (constraints_.freedom == DataflowFreedom::GbOrderOnly)
        return Dataflow::bitFusionFixed(shape_, constraints_.numUnits);
    return Dataflow::greedyDefault(shape_, constraints_.numUnits);
}

Dataflow
DataflowSpace::random(Rng &rng) const
{
    if (constraints_.freedom == DataflowFreedom::GbOrderOnly) {
        // Fixed tiling (the design's native mapping); only the GB
        // loop order is searchable.
        Dataflow df = Dataflow::bitFusionFixed(shape_,
                                               constraints_.numUnits);
        auto &gb_order = df.order[static_cast<size_t>(Level::Gb)];
        std::vector<Dim> dims(gb_order.begin(), gb_order.end());
        rng.shuffle(dims);
        std::copy(dims.begin(), dims.end(), gb_order.begin());
        return df;
    }

    Dataflow df;
    for (int d = 0; d < kNumDims; ++d)
        randomizeDimTiling(df, static_cast<Dim>(d), rng);
    for (Level lv : {Level::Rf, Level::Gb, Level::Dram}) {
        auto &order = df.order[static_cast<size_t>(lv)];
        std::vector<Dim> dims(order.begin(), order.end());
        rng.shuffle(dims);
        std::copy(dims.begin(), dims.end(), order.begin());
    }
    repair(df);
    return df;
}

Dataflow
DataflowSpace::crossover(const Dataflow &a, const Dataflow &b,
                         Rng &rng) const
{
    Dataflow child = a;
    if (constraints_.freedom == DataflowFreedom::GbOrderOnly) {
        child.order[static_cast<size_t>(Level::Gb)] =
            b.order[static_cast<size_t>(Level::Gb)];
        return child;
    }

    if (rng.bernoulli(0.5)) {
        // Splice one level's loop order from b.
        Level lv = rng.bernoulli(0.5) ? Level::Gb : Level::Dram;
        child.order[static_cast<size_t>(lv)] =
            b.order[static_cast<size_t>(lv)];
    } else {
        // Splice one dimension's tiling factors from b.
        Dim d = static_cast<Dim>(rng.uniformInt(0, kNumDims - 1));
        for (int lv = 0; lv < kNumLevels; ++lv) {
            child.tiling[static_cast<size_t>(lv)][static_cast<size_t>(
                d)] = b.trips(static_cast<Level>(lv), d);
        }
    }
    repair(child);
    return child;
}

Dataflow
DataflowSpace::mutate(const Dataflow &a, Rng &rng) const
{
    Dataflow child = a;
    if (constraints_.freedom == DataflowFreedom::GbOrderOnly) {
        auto &order = child.order[static_cast<size_t>(Level::Gb)];
        int i = rng.uniformInt(0, kNumDims - 1);
        int j = rng.uniformInt(0, kNumDims - 1);
        std::swap(order[static_cast<size_t>(i)],
                  order[static_cast<size_t>(j)]);
        return child;
    }

    if (rng.bernoulli(0.5)) {
        // Permute one level's loop order.
        Level lv = rng.bernoulli(0.5) ? Level::Gb : Level::Dram;
        auto &order = child.order[static_cast<size_t>(lv)];
        int i = rng.uniformInt(0, kNumDims - 1);
        int j = rng.uniformInt(0, kNumDims - 1);
        std::swap(order[static_cast<size_t>(i)],
                  order[static_cast<size_t>(j)]);
    } else {
        // Re-randomize one dimension's tiling.
        Dim d = static_cast<Dim>(rng.uniformInt(0, kNumDims - 1));
        randomizeDimTiling(child, d, rng);
    }
    repair(child);
    return child;
}

} // namespace twoinone
