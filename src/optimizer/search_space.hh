/**
 * @file
 * Dataflow search space: random generation, crossover and mutation of
 * Dataflow genomes, exactly the operator set of paper Alg. 2 —
 * crossover splices one level's loop order or one dimension's tiling
 * factors between two designs; mutation re-randomizes one of them.
 */

#ifndef TWOINONE_OPTIMIZER_SEARCH_SPACE_HH
#define TWOINONE_OPTIMIZER_SEARCH_SPACE_HH

#include "accel/accelerator.hh"
#include "common/rng.hh"

namespace twoinone {

/** What the mapper is allowed to change (paper Sec. 3.1.3). */
struct SearchConstraints
{
    DataflowFreedom freedom = DataflowFreedom::Full;
    int numUnits = 256;
    /** Maximum trip count considered per level per dim. */
    int maxTripRf = 8;
    int maxTripNoc = 64;
    int maxTripGb = 16;
};

/**
 * Dataflow genome operations.
 */
class DataflowSpace
{
  public:
    DataflowSpace(const ConvShape &shape, SearchConstraints constraints);

    /** A uniformly random valid-shaped dataflow (coverage + spatial
     * budget guaranteed; buffer fit is checked by the predictor). */
    Dataflow random(Rng &rng) const;

    /** The greedy default mapping (used to seed the population so the
     * search never regresses below the baseline heuristic). */
    Dataflow defaultDataflow() const;

    /** Alg. 2 crossover: splice an order or a tiling column of b
     * into a copy of a. */
    Dataflow crossover(const Dataflow &a, const Dataflow &b,
                       Rng &rng) const;

    /** Alg. 2 mutation: re-randomize one order or one tiling column
     * of a copy of a. */
    Dataflow mutate(const Dataflow &a, Rng &rng) const;

    const ConvShape &shape() const { return shape_; }
    const SearchConstraints &constraints() const { return constraints_; }

  private:
    ConvShape shape_;
    SearchConstraints constraints_;

    /** Re-randomize the tiling of one dimension in place. */
    void randomizeDimTiling(Dataflow &df, Dim d, Rng &rng) const;

    /** Recompute DRAM trips so every dim is covered, and shrink the
     * NoC tiling until it fits the unit budget. */
    void repair(Dataflow &df) const;
};

} // namespace twoinone

#endif // TWOINONE_OPTIMIZER_SEARCH_SPACE_HH
