/**
 * @file
 * EvolutionarySearch implementation (paper Alg. 2).
 */

#include "optimizer/evolutionary.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace twoinone {

const char *
objectiveName(Objective o)
{
    switch (o) {
      case Objective::Latency: return "latency";
      case Objective::Energy: return "energy";
      case Objective::EnergyDelay: return "EDP";
    }
    TWOINONE_PANIC("unknown Objective");
}

EvolutionarySearch::EvolutionarySearch(
    const PerformancePredictor &predictor, EvoConfig cfg)
    : predictor_(predictor), cfg_(cfg)
{
    TWOINONE_ASSERT(cfg_.populationSize >= 4, "population too small");
    TWOINONE_ASSERT(cfg_.eliteFraction > 0.0 && cfg_.eliteFraction < 1.0,
                    "bad elite fraction");
}

double
EvolutionarySearch::cost(const ConvShape &shape, int w_bits, int a_bits,
                         const Dataflow &df) const
{
    LayerPrediction p = predictor_.predictLayer(shape, w_bits, a_bits, df);
    if (!p.valid)
        return std::numeric_limits<double>::infinity();
    switch (cfg_.objective) {
      case Objective::Latency:
        return p.totalCycles;
      case Objective::Energy:
        return p.totalEnergyPj();
      case Objective::EnergyDelay:
        return p.totalCycles * p.totalEnergyPj();
    }
    TWOINONE_PANIC("unknown Objective");
}

template <typename CostFn>
SearchResult
EvolutionarySearch::run(const DataflowSpace &space, CostFn &&fn) const
{
    // The generic Alg. 2 loop (evolutionary.hh), seeded with the
    // greedy default so the search never loses to the baseline
    // heuristic mapping. Same RNG stream as before the extraction.
    EvolveOutcome<Dataflow> o = evolveGenome<Dataflow>(
        space, space.defaultDataflow(), cfg_, std::forward<CostFn>(fn));
    SearchResult result;
    result.best = std::move(o.best);
    result.bestCost = o.bestCost;
    result.costHistory = std::move(o.costHistory);
    result.found = o.found;
    return result;
}

SearchResult
EvolutionarySearch::searchLayer(
    const ConvShape &shape, int w_bits, int a_bits,
    const SearchConstraints &constraints) const
{
    DataflowSpace space(shape, constraints);
    return run(space, [&](const Dataflow &df) {
        return cost(shape, w_bits, a_bits, df);
    });
}

SearchResult
EvolutionarySearch::searchLayerMultiPrecision(
    const ConvShape &shape, const PrecisionSet &set,
    const SearchConstraints &constraints) const
{
    TWOINONE_ASSERT(!set.empty(), "empty precision set");
    DataflowSpace space(shape, constraints);
    return run(space, [&](const Dataflow &df) {
        double sum = 0.0;
        for (int q : set.bits()) {
            double c = cost(shape, q, q, df);
            if (!std::isfinite(c))
                return c;
            sum += c;
        }
        return sum / static_cast<double>(set.size());
    });
}

std::vector<Dataflow>
optimizeNetworkDataflows(const Accelerator &accel,
                         const NetworkWorkload &net, int w_bits,
                         int a_bits, const EvoConfig &cfg)
{
    EvolutionarySearch search(accel.predictor(), cfg);
    SearchConstraints constraints;
    constraints.freedom = accel.freedom();
    constraints.numUnits = accel.numUnits();

    std::vector<Dataflow> out;
    out.reserve(net.layers.size());
    for (const ConvShape &layer : net.layers) {
        SearchResult r =
            search.searchLayer(layer, w_bits, a_bits, constraints);
        if (r.found) {
            out.push_back(r.best);
        } else {
            // Fall back to the greedy default mapping.
            out.push_back(
                Dataflow::greedyDefault(layer, accel.numUnits()));
        }
    }
    return out;
}

} // namespace twoinone
