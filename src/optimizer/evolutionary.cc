/**
 * @file
 * EvolutionarySearch implementation (paper Alg. 2).
 */

#include "optimizer/evolutionary.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace twoinone {

const char *
objectiveName(Objective o)
{
    switch (o) {
      case Objective::Latency: return "latency";
      case Objective::Energy: return "energy";
      case Objective::EnergyDelay: return "EDP";
    }
    TWOINONE_PANIC("unknown Objective");
}

EvolutionarySearch::EvolutionarySearch(
    const PerformancePredictor &predictor, EvoConfig cfg)
    : predictor_(predictor), cfg_(cfg)
{
    TWOINONE_ASSERT(cfg_.populationSize >= 4, "population too small");
    TWOINONE_ASSERT(cfg_.eliteFraction > 0.0 && cfg_.eliteFraction < 1.0,
                    "bad elite fraction");
}

double
EvolutionarySearch::cost(const ConvShape &shape, int w_bits, int a_bits,
                         const Dataflow &df) const
{
    LayerPrediction p = predictor_.predictLayer(shape, w_bits, a_bits, df);
    if (!p.valid)
        return std::numeric_limits<double>::infinity();
    switch (cfg_.objective) {
      case Objective::Latency:
        return p.totalCycles;
      case Objective::Energy:
        return p.totalEnergyPj();
      case Objective::EnergyDelay:
        return p.totalCycles * p.totalEnergyPj();
    }
    TWOINONE_PANIC("unknown Objective");
}

template <typename CostFn>
SearchResult
EvolutionarySearch::run(const DataflowSpace &space, CostFn &&fn) const
{
    Rng rng(cfg_.seed);
    struct Scored
    {
        Dataflow df;
        double cost;
    };
    std::vector<Scored> population;
    population.reserve(static_cast<size_t>(cfg_.populationSize));

    // Seed with the greedy default so the search never loses to the
    // baseline heuristic mapping.
    {
        Dataflow seed = space.defaultDataflow();
        double c = fn(seed);
        if (std::isfinite(c))
            population.push_back({std::move(seed), c});
    }

    // Initial population: keep drawing until enough valid designs
    // exist (bounded attempts, as random draws may overflow buffers).
    int attempts = 0;
    while (static_cast<int>(population.size()) < cfg_.populationSize &&
           attempts < cfg_.populationSize * 40) {
        ++attempts;
        Dataflow df = space.random(rng);
        double c = fn(df);
        if (std::isfinite(c))
            population.push_back({std::move(df), c});
    }

    SearchResult result;
    if (population.empty())
        return result; // no valid design found

    auto by_cost = [](const Scored &a, const Scored &b) {
        return a.cost < b.cost;
    };

    for (int cycle = 0; cycle < cfg_.totalCycles; ++cycle) {
        std::sort(population.begin(), population.end(), by_cost);
        result.costHistory.push_back(population.front().cost);

        // Top 30% survive (Alg. 2 line 3).
        size_t elite = std::max<size_t>(
            2, static_cast<size_t>(cfg_.eliteFraction *
                                   population.size()));
        elite = std::min(elite, population.size());
        population.resize(elite);

        // Refill with crossover + mutation children (lines 4-7).
        int guard = 0;
        while (static_cast<int>(population.size()) <
                   cfg_.populationSize &&
               guard < cfg_.populationSize * 40) {
            ++guard;
            const Dataflow &pa =
                population[static_cast<size_t>(rng.uniformInt(
                               0, static_cast<int>(elite) - 1))]
                    .df;
            const Dataflow &pb =
                population[static_cast<size_t>(rng.uniformInt(
                               0, static_cast<int>(elite) - 1))]
                    .df;
            Dataflow child = rng.bernoulli(0.5)
                                 ? space.crossover(pa, pb, rng)
                                 : space.mutate(pa, rng);
            double c = fn(child);
            if (std::isfinite(c))
                population.push_back({std::move(child), c});
        }
    }

    std::sort(population.begin(), population.end(), by_cost);
    result.best = population.front().df;
    result.bestCost = population.front().cost;
    result.costHistory.push_back(result.bestCost);
    result.found = true;
    return result;
}

SearchResult
EvolutionarySearch::searchLayer(
    const ConvShape &shape, int w_bits, int a_bits,
    const SearchConstraints &constraints) const
{
    DataflowSpace space(shape, constraints);
    return run(space, [&](const Dataflow &df) {
        return cost(shape, w_bits, a_bits, df);
    });
}

SearchResult
EvolutionarySearch::searchLayerMultiPrecision(
    const ConvShape &shape, const PrecisionSet &set,
    const SearchConstraints &constraints) const
{
    TWOINONE_ASSERT(!set.empty(), "empty precision set");
    DataflowSpace space(shape, constraints);
    return run(space, [&](const Dataflow &df) {
        double sum = 0.0;
        for (int q : set.bits()) {
            double c = cost(shape, q, q, df);
            if (!std::isfinite(c))
                return c;
            sum += c;
        }
        return sum / static_cast<double>(set.size());
    });
}

std::vector<Dataflow>
optimizeNetworkDataflows(const Accelerator &accel,
                         const NetworkWorkload &net, int w_bits,
                         int a_bits, const EvoConfig &cfg)
{
    EvolutionarySearch search(accel.predictor(), cfg);
    SearchConstraints constraints;
    constraints.freedom = accel.freedom();
    constraints.numUnits = accel.numUnits();

    std::vector<Dataflow> out;
    out.reserve(net.layers.size());
    for (const ConvShape &layer : net.layers) {
        SearchResult r =
            search.searchLayer(layer, w_bits, a_bits, constraints);
        if (r.found) {
            out.push_back(r.best);
        } else {
            // Fall back to the greedy default mapping.
            out.push_back(
                Dataflow::greedyDefault(layer, accel.numUnits()));
        }
    }
    return out;
}

} // namespace twoinone
