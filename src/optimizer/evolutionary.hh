/**
 * @file
 * Evolutionary dataflow search — paper Alg. 2.
 *
 * Population of random dataflows; each cycle keeps the top 30% by
 * predicted efficiency, then refills the population with crossover
 * and mutation children (invalid children — buffer overflow or
 * spatial misfit — are discarded), for a fixed number of cycles.
 */

#ifndef TWOINONE_OPTIMIZER_EVOLUTIONARY_HH
#define TWOINONE_OPTIMIZER_EVOLUTIONARY_HH

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "optimizer/search_space.hh"
#include "quant/precision.hh"

namespace twoinone {

/** Optimization objective (lower cost = better). */
enum class Objective
{
    Latency,    ///< Total cycles.
    Energy,     ///< Total energy.
    EnergyDelay ///< Energy-delay product.
};

/** Objective name for reports. */
const char *objectiveName(Objective o);

/**
 * Alg. 2 hyper-parameters.
 */
struct EvoConfig
{
    int populationSize = 36;
    int totalCycles = 12;
    double eliteFraction = 0.3;
    Objective objective = Objective::EnergyDelay;
    uint64_t seed = 123;
};

/**
 * Result of one search: the best dataflow, its cost, and the
 * best-cost trace per cycle (for convergence plots).
 */
struct SearchResult
{
    Dataflow best;
    double bestCost = 0.0;
    std::vector<double> costHistory;
    bool found = false;
};

/** Outcome of the generic evolutionary loop over any genome type. */
template <typename Genome>
struct EvolveOutcome
{
    Genome best{};
    double bestCost = 0.0;
    std::vector<double> costHistory;
    bool found = false;
    /** Genomes whose cost functor was evaluated (budget accounting). */
    size_t evaluated = 0;
};

/**
 * The Alg. 2 loop, generalized over the genome. @p Space must provide
 * the DataflowSpace operators — `Genome random(Rng&)`,
 * `Genome crossover(const Genome&, const Genome&, Rng&)` and
 * `Genome mutate(const Genome&, Rng&)` — and @p fn maps a genome to a
 * cost (lower is better; non-finite = invalid, discarded). The seed
 * genome joins the initial population first so the search never loses
 * to the caller's baseline. Deterministic: the RNG stream is a pure
 * function of cfg.seed and the space's operators, so the same seed
 * reproduces the same winner. EvolutionarySearch::run delegates here;
 * the serving autotuner reuses it over a ServingSearchSpace.
 */
template <typename Genome, typename Space, typename CostFn>
EvolveOutcome<Genome>
evolveGenome(const Space &space, const Genome &seed_genome,
             const EvoConfig &cfg, CostFn &&fn)
{
    TWOINONE_ASSERT(cfg.populationSize >= 4, "population too small");
    TWOINONE_ASSERT(cfg.eliteFraction > 0.0 && cfg.eliteFraction < 1.0,
                    "bad elite fraction");
    Rng rng(cfg.seed);
    struct Scored
    {
        Genome genome;
        double cost;
    };
    std::vector<Scored> population;
    population.reserve(static_cast<size_t>(cfg.populationSize));

    EvolveOutcome<Genome> result;

    // Seed with the baseline so the search never loses to it.
    {
        Genome seed = seed_genome;
        double c = fn(seed);
        ++result.evaluated;
        if (std::isfinite(c))
            population.push_back({std::move(seed), c});
    }

    // Initial population: keep drawing until enough valid designs
    // exist (bounded attempts, as random draws may be invalid).
    int attempts = 0;
    while (static_cast<int>(population.size()) < cfg.populationSize &&
           attempts < cfg.populationSize * 40) {
        ++attempts;
        Genome g = space.random(rng);
        double c = fn(g);
        ++result.evaluated;
        if (std::isfinite(c))
            population.push_back({std::move(g), c});
    }

    if (population.empty())
        return result; // no valid design found

    auto by_cost = [](const Scored &a, const Scored &b) {
        return a.cost < b.cost;
    };

    for (int cycle = 0; cycle < cfg.totalCycles; ++cycle) {
        std::sort(population.begin(), population.end(), by_cost);
        result.costHistory.push_back(population.front().cost);

        // Top eliteFraction survive (Alg. 2 line 3).
        size_t elite = std::max<size_t>(
            2, static_cast<size_t>(cfg.eliteFraction *
                                   population.size()));
        elite = std::min(elite, population.size());
        population.resize(elite);

        // Refill with crossover + mutation children (lines 4-7).
        int guard = 0;
        while (static_cast<int>(population.size()) <
                   cfg.populationSize &&
               guard < cfg.populationSize * 40) {
            ++guard;
            const Genome &pa =
                population[static_cast<size_t>(rng.uniformInt(
                               0, static_cast<int>(elite) - 1))]
                    .genome;
            const Genome &pb =
                population[static_cast<size_t>(rng.uniformInt(
                               0, static_cast<int>(elite) - 1))]
                    .genome;
            Genome child = rng.bernoulli(0.5)
                               ? space.crossover(pa, pb, rng)
                               : space.mutate(pa, rng);
            double c = fn(child);
            ++result.evaluated;
            if (std::isfinite(c))
                population.push_back({std::move(child), c});
        }
    }

    std::sort(population.begin(), population.end(), by_cost);
    result.best = population.front().genome;
    result.bestCost = population.front().cost;
    result.costHistory.push_back(result.bestCost);
    result.found = true;
    return result;
}

/**
 * The evolutionary search engine.
 */
class EvolutionarySearch
{
  public:
    /**
     * @param predictor Efficiency oracle (paper: DNN-Chip Predictor).
     * @param cfg Alg. 2 parameters.
     */
    EvolutionarySearch(const PerformancePredictor &predictor,
                       EvoConfig cfg);

    /** Search the dataflow for one layer at one precision. */
    SearchResult searchLayer(const ConvShape &shape, int w_bits,
                             int a_bits,
                             const SearchConstraints &constraints) const;

    /**
     * Search one dataflow that is best *on average across a precision
     * set* — the variable-precision objective RPS workloads need
     * (paper Sec. 3.1.3).
     */
    SearchResult
    searchLayerMultiPrecision(const ConvShape &shape,
                              const PrecisionSet &set,
                              const SearchConstraints &constraints) const;

    /** Cost of a dataflow under the configured objective; +inf when
     * invalid. */
    double cost(const ConvShape &shape, int w_bits, int a_bits,
                const Dataflow &df) const;

  private:
    const PerformancePredictor &predictor_;
    EvoConfig cfg_;

    /** Generic search over an arbitrary cost functor. */
    template <typename CostFn>
    SearchResult run(const DataflowSpace &space, CostFn &&fn) const;
};

/**
 * Optimize every layer of a network under an accelerator's dataflow
 * freedom; returns per-layer dataflows.
 */
std::vector<Dataflow>
optimizeNetworkDataflows(const Accelerator &accel,
                         const NetworkWorkload &net, int w_bits,
                         int a_bits, const EvoConfig &cfg);

} // namespace twoinone

#endif // TWOINONE_OPTIMIZER_EVOLUTIONARY_HH
