/**
 * @file
 * Evolutionary dataflow search — paper Alg. 2.
 *
 * Population of random dataflows; each cycle keeps the top 30% by
 * predicted efficiency, then refills the population with crossover
 * and mutation children (invalid children — buffer overflow or
 * spatial misfit — are discarded), for a fixed number of cycles.
 */

#ifndef TWOINONE_OPTIMIZER_EVOLUTIONARY_HH
#define TWOINONE_OPTIMIZER_EVOLUTIONARY_HH

#include "optimizer/search_space.hh"
#include "quant/precision.hh"

namespace twoinone {

/** Optimization objective (lower cost = better). */
enum class Objective
{
    Latency,    ///< Total cycles.
    Energy,     ///< Total energy.
    EnergyDelay ///< Energy-delay product.
};

/** Objective name for reports. */
const char *objectiveName(Objective o);

/**
 * Alg. 2 hyper-parameters.
 */
struct EvoConfig
{
    int populationSize = 36;
    int totalCycles = 12;
    double eliteFraction = 0.3;
    Objective objective = Objective::EnergyDelay;
    uint64_t seed = 123;
};

/**
 * Result of one search: the best dataflow, its cost, and the
 * best-cost trace per cycle (for convergence plots).
 */
struct SearchResult
{
    Dataflow best;
    double bestCost = 0.0;
    std::vector<double> costHistory;
    bool found = false;
};

/**
 * The evolutionary search engine.
 */
class EvolutionarySearch
{
  public:
    /**
     * @param predictor Efficiency oracle (paper: DNN-Chip Predictor).
     * @param cfg Alg. 2 parameters.
     */
    EvolutionarySearch(const PerformancePredictor &predictor,
                       EvoConfig cfg);

    /** Search the dataflow for one layer at one precision. */
    SearchResult searchLayer(const ConvShape &shape, int w_bits,
                             int a_bits,
                             const SearchConstraints &constraints) const;

    /**
     * Search one dataflow that is best *on average across a precision
     * set* — the variable-precision objective RPS workloads need
     * (paper Sec. 3.1.3).
     */
    SearchResult
    searchLayerMultiPrecision(const ConvShape &shape,
                              const PrecisionSet &set,
                              const SearchConstraints &constraints) const;

    /** Cost of a dataflow under the configured objective; +inf when
     * invalid. */
    double cost(const ConvShape &shape, int w_bits, int a_bits,
                const Dataflow &df) const;

  private:
    const PerformancePredictor &predictor_;
    EvoConfig cfg_;

    /** Generic search over an arbitrary cost functor. */
    template <typename CostFn>
    SearchResult run(const DataflowSpace &space, CostFn &&fn) const;
};

/**
 * Optimize every layer of a network under an accelerator's dataflow
 * freedom; returns per-layer dataflows.
 */
std::vector<Dataflow>
optimizeNetworkDataflows(const Accelerator &accel,
                         const NetworkWorkload &net, int w_bits,
                         int a_bits, const EvoConfig &cfg);

} // namespace twoinone

#endif // TWOINONE_OPTIMIZER_EVOLUTIONARY_HH
