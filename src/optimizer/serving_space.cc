/**
 * @file
 * ServingSearchSpace implementation.
 */

#include "optimizer/serving_space.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace twoinone {

bool
ServingGenome::operator==(const ServingGenome &o) const
{
    return maxBatch == o.maxBatch && microBatch == o.microBatch &&
           maxDelayUs == o.maxDelayUs && replicas == o.replicas &&
           policy == o.policy && drawBits == o.drawBits &&
           drawWeights == o.drawWeights;
}

std::string
ServingGenome::describe() const
{
    std::ostringstream os;
    os << "maxBatch=" << maxBatch << " microBatch=" << microBatch
       << " delayUs=" << maxDelayUs << " replicas=" << replicas
       << " policy=" << (policy == 1 ? "edf" : "rr") << " draw={";
    for (size_t i = 0; i < drawBits.size(); ++i) {
        if (i > 0)
            os << ",";
        os << drawBits[i] << ":"
           << (i < drawWeights.size() ? drawWeights[i] : 1);
    }
    os << "}";
    return os.str();
}

ServingSearchSpace::ServingSearchSpace(std::vector<int> model_bits,
                                       int max_batch_cap)
    : modelBits_(std::move(model_bits))
{
    TWOINONE_ASSERT(!modelBits_.empty(),
                    "serving search needs a model precision set");
    TWOINONE_ASSERT(
        std::is_sorted(modelBits_.begin(), modelBits_.end()),
        "model precision set must be ascending");
    for (int b : {8, 16, 32, 64, 128})
        if (b <= max_batch_cap)
            maxBatchGrid_.push_back(b);
    TWOINONE_ASSERT(!maxBatchGrid_.empty(), "max batch cap below 8");
    microBatchGrid_ = {1, 2, 4, 8, 16};
    delayGrid_ = {0.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0};
    replicaGrid_ = {0, 1, 2, 4, 8};
    weightGrid_ = {1, 2, 3, 4};
}

void
ServingSearchSpace::repair(ServingGenome &g) const
{
    // microBatch may not exceed maxBatch: clamp to the largest grid
    // point that fits (grid point 1 always does).
    if (g.microBatch > g.maxBatch) {
        int best = microBatchGrid_.front();
        for (int m : microBatchGrid_)
            if (m <= g.maxBatch && m > best)
                best = m;
        g.microBatch = best;
    }
}

void
ServingSearchSpace::randomDraw(ServingGenome &g, Rng &rng) const
{
    int n = static_cast<int>(modelBits_.size());
    int lo = std::min(2, n);
    int k = rng.uniformInt(lo, n);
    std::vector<int> idx(modelBits_.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = static_cast<int>(i);
    rng.shuffle(idx);
    idx.resize(static_cast<size_t>(k));
    std::sort(idx.begin(), idx.end());
    g.drawBits.clear();
    g.drawWeights.clear();
    for (int i : idx) {
        g.drawBits.push_back(modelBits_[static_cast<size_t>(i)]);
        g.drawWeights.push_back(rng.pick(weightGrid_));
    }
}

ServingGenome
ServingSearchSpace::random(Rng &rng) const
{
    ServingGenome g;
    g.maxBatch = rng.pick(maxBatchGrid_);
    g.microBatch = rng.pick(microBatchGrid_);
    g.maxDelayUs = rng.pick(delayGrid_);
    g.replicas = rng.pick(replicaGrid_);
    g.policy = rng.uniformInt(0, 1);
    randomDraw(g, rng);
    repair(g);
    return g;
}

ServingGenome
ServingSearchSpace::crossover(const ServingGenome &a,
                              const ServingGenome &b, Rng &rng) const
{
    ServingGenome c;
    c.maxBatch = rng.bernoulli(0.5) ? a.maxBatch : b.maxBatch;
    c.microBatch = rng.bernoulli(0.5) ? a.microBatch : b.microBatch;
    c.maxDelayUs = rng.bernoulli(0.5) ? a.maxDelayUs : b.maxDelayUs;
    c.replicas = rng.bernoulli(0.5) ? a.replicas : b.replicas;
    c.policy = rng.bernoulli(0.5) ? a.policy : b.policy;
    // The precision distribution moves as one unit: bits and weights
    // are meaningless apart.
    if (rng.bernoulli(0.5)) {
        c.drawBits = a.drawBits;
        c.drawWeights = a.drawWeights;
    } else {
        c.drawBits = b.drawBits;
        c.drawWeights = b.drawWeights;
    }
    repair(c);
    return c;
}

ServingGenome
ServingSearchSpace::mutate(const ServingGenome &a, Rng &rng) const
{
    ServingGenome m = a;
    switch (rng.uniformInt(0, 5)) {
      case 0: m.maxBatch = rng.pick(maxBatchGrid_); break;
      case 1: m.microBatch = rng.pick(microBatchGrid_); break;
      case 2: m.maxDelayUs = rng.pick(delayGrid_); break;
      case 3: m.replicas = rng.pick(replicaGrid_); break;
      case 4: m.policy = 1 - m.policy; break;
      case 5: randomDraw(m, rng); break;
    }
    repair(m);
    return m;
}

bool
ServingSearchSpace::valid(const ServingGenome &g) const
{
    auto inGrid = [](const auto &grid, auto v) {
        return std::find(grid.begin(), grid.end(), v) != grid.end();
    };
    if (!inGrid(maxBatchGrid_, g.maxBatch) ||
        !inGrid(microBatchGrid_, g.microBatch) ||
        !inGrid(delayGrid_, g.maxDelayUs) ||
        !inGrid(replicaGrid_, g.replicas))
        return false;
    if (g.policy != 0 && g.policy != 1)
        return false;
    if (g.microBatch > g.maxBatch)
        return false;
    if (g.drawBits.empty() ||
        g.drawWeights.size() != g.drawBits.size())
        return false;
    if (!std::is_sorted(g.drawBits.begin(), g.drawBits.end()))
        return false;
    for (size_t i = 0; i < g.drawBits.size(); ++i) {
        if (!inGrid(modelBits_, g.drawBits[i]))
            return false;
        if (i > 0 && g.drawBits[i] == g.drawBits[i - 1])
            return false;
        if (!inGrid(weightGrid_, g.drawWeights[i]))
            return false;
    }
    return true;
}

} // namespace twoinone
