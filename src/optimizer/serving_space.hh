/**
 * @file
 * Serving-configuration search space: the genome the serving
 * autotuner (src/tune) evolves with the generic Alg. 2 loop
 * (evolveGenome), mirroring DataflowSpace's operator set over the
 * joint serving knobs — batch geometry, age close, plan replicas,
 * precision-set composition + draw weights, and the tenant
 * scheduling policy.
 *
 * All knobs are drawn from small fixed grids so crossover/mutation
 * stay closed over valid configurations and the searched space is
 * enumerable in reports. Draw weights are integer grid points
 * (1..4), not floats: the genome — and therefore the TuningArtifact
 * bytes — serializes exactly, keeping the same-seed-same-artifact
 * acceptance bit-tight.
 */

#ifndef TWOINONE_OPTIMIZER_SERVING_SPACE_HH
#define TWOINONE_OPTIMIZER_SERVING_SPACE_HH

#include <string>
#include <vector>

#include "common/rng.hh"

namespace twoinone {

/**
 * One serving configuration under search. policy is an int (0 =
 * round-robin, 1 = earliest-deadline-first) rather than the serve
 * enum so the optimizer layer stays independent of src/serve.
 */
struct ServingGenome
{
    int maxBatch = 64;
    int microBatch = 8;
    /** Age close in microseconds; 0 disables age closing. */
    double maxDelayUs = 1000.0;
    /** Plan replicas; 0 = one per concurrent shard worker. */
    int replicas = 0;
    /** 0 = round-robin, 1 = earliest-deadline-first. */
    int policy = 0;
    /** Precision subset served from (ascending, >= 2 members when the
     * model set allows). */
    std::vector<int> drawBits;
    /** Integer draw weights parallel to drawBits (grid 1..4). */
    std::vector<int> drawWeights;

    bool operator==(const ServingGenome &o) const;
    bool operator!=(const ServingGenome &o) const { return !(*this == o); }

    /** Human-readable one-liner for reports/journals. */
    std::string describe() const;
};

/**
 * Genome operations over the serving knobs (the DataflowSpace
 * contract: random / crossover / mutate, all deterministic functions
 * of the Rng stream).
 */
class ServingSearchSpace
{
  public:
    /**
     * @param model_bits The model's full candidate precision set
     *        (ascending); drawBits subsets are drawn from it.
     * @param max_batch_cap Upper bound on searched maxBatch (admission
     *        and memory guard; grid points above it are excluded).
     */
    explicit ServingSearchSpace(std::vector<int> model_bits,
                                int max_batch_cap = 128);

    /** A uniformly random valid genome. */
    ServingGenome random(Rng &rng) const;

    /** Field-wise splice of two parents (drawBits + drawWeights move
     * as one unit), repaired to keep microBatch <= maxBatch. */
    ServingGenome crossover(const ServingGenome &a,
                            const ServingGenome &b, Rng &rng) const;

    /** Re-randomize one knob of a copy of @p a. */
    ServingGenome mutate(const ServingGenome &a, Rng &rng) const;

    /** Whether @p g is inside this space (grids + subset checks) —
     * the cost function rejects genomes from a different model set. */
    bool valid(const ServingGenome &g) const;

    const std::vector<int> &modelBits() const { return modelBits_; }
    const std::vector<int> &maxBatchGrid() const { return maxBatchGrid_; }
    const std::vector<int> &microBatchGrid() const
    {
        return microBatchGrid_;
    }
    const std::vector<double> &delayGrid() const { return delayGrid_; }
    const std::vector<int> &replicaGrid() const { return replicaGrid_; }
    const std::vector<int> &weightGrid() const { return weightGrid_; }

  private:
    std::vector<int> modelBits_;
    std::vector<int> maxBatchGrid_;
    std::vector<int> microBatchGrid_;
    std::vector<double> delayGrid_;
    std::vector<int> replicaGrid_;
    std::vector<int> weightGrid_;

    /** Random precision subset (>= 2 members when possible) + weights. */
    void randomDraw(ServingGenome &g, Rng &rng) const;

    /** Clamp microBatch to the largest grid point <= g.maxBatch. */
    void repair(ServingGenome &g) const;
};

} // namespace twoinone

#endif // TWOINONE_OPTIMIZER_SERVING_SPACE_HH
