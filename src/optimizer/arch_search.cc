/**
 * @file
 * Micro-architecture search implementation.
 */

#include "optimizer/arch_search.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace twoinone {

ArchSearchSpace
ArchSearchSpace::makeDefault(double total_area_budget)
{
    ArchSearchSpace s;
    s.totalAreaBudget = total_area_budget;
    double base = total_area_budget * 0.7;
    s.macArrayAreas = {base * 0.5, base * 0.75, base};
    double kb = 1024.0 * 8.0;
    s.gbCapacitiesBits = {256.0 * kb, 512.0 * kb, 1024.0 * kb};
    return s;
}

std::vector<ArchCandidate>
ArchSearchSpace::candidates() const
{
    std::vector<ArchCandidate> out;
    for (double area : macArrayAreas) {
        for (double gb : gbCapacitiesBits) {
            double total = area + gb * sramAreaPerBit;
            if (totalAreaBudget > 0.0 && total > totalAreaBudget)
                continue;
            out.push_back({area, gb});
        }
    }
    return out;
}

ArchSearchResult
searchMicroArchitecture(AcceleratorKind kind, const ArchSearchSpace &space,
                        const NetworkWorkload &net,
                        const PrecisionSet &precisions,
                        const EvoConfig &evo_cfg, const TechModel &tech)
{
    ArchSearchResult result;
    result.bestCost = std::numeric_limits<double>::infinity();

    for (const ArchCandidate &cand : space.candidates()) {
        Accelerator accel(kind, cand.macArrayArea, tech);

        // Apply the candidate's buffer size.
        MemoryHierarchy hierarchy =
            MemoryHierarchy::makeDefault(tech, accel.numUnits());
        hierarchy.level(Level::Gb).capacityBits = cand.gbCapacityBits;
        PerformancePredictor predictor(accel.mac(), hierarchy, tech,
                                       accel.numUnits());
        EvolutionarySearch search(predictor, evo_cfg);

        SearchConstraints constraints;
        constraints.freedom = DataflowFreedom::Full;
        constraints.numUnits = accel.numUnits();

        // Average optimized cost across precisions and layers.
        double total_cost = 0.0;
        bool ok = true;
        for (const ConvShape &layer : net.layers) {
            SearchResult r = search.searchLayerMultiPrecision(
                layer, precisions, constraints);
            if (!r.found) {
                ok = false;
                break;
            }
            total_cost += r.bestCost;
        }
        if (!ok)
            continue;

        result.evaluated.push_back({cand, total_cost});
        if (total_cost < result.bestCost) {
            result.bestCost = total_cost;
            result.best = cand;
            result.found = true;
        }
    }
    return result;
}

} // namespace twoinone
