/**
 * @file
 * Joint dataflow + micro-architecture search — the second mode of the
 * paper's automated optimizer (Sec. 3.3): a predefined design space
 * of MAC-array sizes and buffer sizes is explored under an area
 * budget, where each micro-architecture candidate is scored by its
 * average efficiency across the precision set after optimizing its
 * dataflow with Alg. 2.
 */

#ifndef TWOINONE_OPTIMIZER_ARCH_SEARCH_HH
#define TWOINONE_OPTIMIZER_ARCH_SEARCH_HH

#include "optimizer/evolutionary.hh"

namespace twoinone {

/**
 * One micro-architecture candidate.
 */
struct ArchCandidate
{
    /** MAC-array area in normalized units. */
    double macArrayArea = 0.0;
    /** Global-buffer capacity in bits. */
    double gbCapacityBits = 0.0;
};

/**
 * Design space: the cross product of array-area and buffer-size
 * choices whose estimated total area fits the budget.
 */
struct ArchSearchSpace
{
    std::vector<double> macArrayAreas;
    std::vector<double> gbCapacitiesBits;
    /** Total area budget; GB area is modeled as area-per-bit. */
    double totalAreaBudget = 0.0;
    /** SRAM density: normalized area units per bit. */
    double sramAreaPerBit = 4e-5;

    /** Default 3x3 grid around the bench configuration. */
    static ArchSearchSpace makeDefault(double total_area_budget);

    /** All candidates that fit the budget. */
    std::vector<ArchCandidate> candidates() const;
};

/**
 * Result of the joint search.
 */
struct ArchSearchResult
{
    ArchCandidate best;
    double bestCost = 0.0;
    /** Cost of every evaluated candidate (for reports). */
    std::vector<std::pair<ArchCandidate, double>> evaluated;
    bool found = false;
};

/**
 * Search micro-architectures for one accelerator kind over a
 * workload, scoring each candidate by the average optimized-dataflow
 * cost over the precision set.
 */
ArchSearchResult
searchMicroArchitecture(AcceleratorKind kind, const ArchSearchSpace &space,
                        const NetworkWorkload &net,
                        const PrecisionSet &precisions,
                        const EvoConfig &evo_cfg, const TechModel &tech);

} // namespace twoinone

#endif // TWOINONE_OPTIMIZER_ARCH_SEARCH_HH
