/**
 * @file
 * Versioned model artifacts: the single-file binary format that makes
 * a trained RPS model leave the process.
 *
 * A checkpoint is the unit of deployment for the paper's serving
 * story: a network trained once under random precision switch, then
 * shipped to an accelerator that serves it at randomly drawn
 * precisions. One file carries everything a fresh process needs to
 * reproduce the training process's inference bit-for-bit:
 *
 *   - the architecture spec (NetworkSpec: candidate precisions +
 *     per-layer construction specs), so the network is rebuilt from
 *     data, not C++ code;
 *   - every named state blob (master weights, SBN banks with their
 *     running statistics and trained flags, per-(ActQuant, precision)
 *     calibration range banks and the static-scale mode);
 *   - optionally the SGD velocity buffers, so a resumed training run
 *     continues its momentum trajectory bit-identically;
 *   - optionally the RpsEngine weight-code cache (integer codes +
 *     bit-packed STE masks per layer x candidate), so a loaded model
 *     warm-starts its engine without a single quantization pass.
 *
 * Format version 2 (little-endian) is *section-directory* framed so
 * readers can hydrate lazily (io/stream.hh):
 *
 *   magic "2IN1CKPT" (8) | format version u32 | flags u32
 *   section count u32
 *   per section: tag (4 raw bytes), a i32, b i32, offset u64,
 *                size u64, fnv1a64(section bytes) u64
 *   fnv1a64(header + directory) u64
 *   section payloads, back to back (offsets are absolute; sections
 *   tile the rest of the file exactly)
 *
 * Sections, in file order (a/b are -1 unless noted):
 *
 *   ARCH   precisions intVec; layer count u32;
 *          per layer: kind str, args intVec
 *   STAT   entry count u32; per entry: name str, dtype u8, payload
 *          (dtype 0 = f32 tensor, 1 = f32 vec, 2 = u8 vec, 3 = bool)
 *   MOMN   (flags bit 3) SGD velocity: count u32, then one f32
 *          tensor per network parameter, in Network::parameters()
 *          order
 *   CBIT   (flags bit 0) cached precisions intVec; cached layer
 *          count u32
 *   CELL   (flags bit 0; a = layer, b = bits) one engine cache cell:
 *          codes (shape intVec, scale f32, bits i32, signed u8,
 *          codes i32Vec), STE mask bit-packed u8Vec
 *   PACK   (flags bit 2; a = layer, b = bits; requires CBIT) the
 *          cell's tile-packed kernel weights: m/k/bits/tiles/groups8/
 *          groups16 i32 each, p8 u8Vec, p16 i16Vec, rowSum i64Vec
 *   TUNE   (flags bit 1) one tune::TuningArtifact (version u32,
 *          seed u64, serving genome, predicted cost f32)
 *
 * Every file byte is covered by a checksum: header + directory by the
 * directory hash, payload bytes by their section's hash. The eager
 * reader (Checkpoint::read) walks and verifies every section — the
 * whole-file integrity guarantee of format 1 is preserved — while the
 * streaming reader (StreamingCheckpoint) verifies the directory plus
 * only the sections it actually touches, each on first hydration.
 *
 * Malformed input (missing file, truncation, checksum mismatch,
 * unsupported version, incompatible spec) throws io::CheckpointError —
 * it is a recoverable caller-facing condition, not a library bug.
 */

#ifndef TWOINONE_IO_CHECKPOINT_HH
#define TWOINONE_IO_CHECKPOINT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/serialize.hh"
#include "io/stream.hh"
#include "nn/network.hh"
#include "nn/sgd.hh"
#include "quant/rps_engine.hh"
#include "tune/artifact.hh"

namespace twoinone {
namespace checkpoint {

/** Current checkpoint format version (the v2 section directory). */
constexpr uint32_t kFormatVersion = io::kStreamFormatVersion;

/** Save-time options. */
struct SaveOptions
{
    /** Serialize the engine's weight-code cache (when an engine is
     * passed): bigger file, zero-quantization warm start on load. */
    bool includeEngineCache = true;
    /** Also serialize each cache cell's tile-packed kernel weights
     * (requires the cache section): bigger file again, but a warm
     * start then installs ready-to-run packs — packBuilds() == 0, no
     * pack pass before the first served batch. */
    bool includeEnginePacks = false;
    /** Serving-autotuner artifact to embed as the tuning section
     * (null = none). Session::fromCheckpoint auto-applies it. */
    const tune::TuningArtifact *tuning = nullptr;
    /** Optimizer whose velocity buffers to persist (null = none).
     * restoreOptimizer() puts them back, so a reloaded training run
     * resumes its momentum trajectory bit-identically. */
    const Sgd *optimizer = nullptr;
};

/**
 * Write @p net (arch spec + full state) to @p path, optionally with
 * @p engine's weight-code cache. Non-const: state collection reads
 * through live member pointers and the engine brings stale cells
 * current before export. Throws io::CheckpointError on I/O failure.
 */
void save(const std::string &path, Network &net,
          RpsEngine *engine = nullptr,
          const SaveOptions &opts = SaveOptions());

/**
 * A parsed model artifact. read() validates framing and every
 * section checksum; instantiate()/restoreEngine() then rebuild the
 * live objects. Keeping the parsed form separate from the live
 * objects lets one read serve both the network and its engine without
 * touching the file twice.
 */
class Checkpoint
{
  public:
    /** Parse @p path eagerly — every section is hydrated and
     * checksum-verified (throws io::CheckpointError on any
     * malformation: missing file, truncation, bad magic, unsupported
     * version, checksum mismatch). */
    static Checkpoint read(const std::string &path);

    /** The architecture spec the artifact was saved from. */
    const NetworkSpec &spec() const { return spec_; }

    /**
     * Build a fresh Network from the spec and restore every state
     * blob into it. The result reproduces the saved model's inference
     * bit-for-bit. Throws io::CheckpointError when the artifact is
     * missing state the rebuilt network needs or shapes disagree.
     */
    Network instantiate() const;

    /** Whether the artifact carries a serialized engine cache. */
    bool hasEngineCache() const { return !cacheBits_.empty(); }

    /** Whether the cache section also carries tile packs. */
    bool hasEnginePacks() const { return !packs_.empty(); }

    /** Whether the artifact carries SGD velocity buffers. */
    bool hasOptimizerState() const { return hasMomentum_; }

    /**
     * Restore the persisted velocity buffers into @p opt, keyed by
     * @p net's parameter order (@p net must be the instantiate()d
     * network or one of identical architecture). Throws
     * io::CheckpointError when the artifact has no optimizer state or
     * the buffers do not match the network's parameters.
     */
    void restoreOptimizer(Sgd &opt, Network &net) const;

    /** The embedded tuning artifact, or null when the checkpoint has
     * no tuning section. */
    const tune::TuningArtifact *tuning() const { return tuning_.get(); }

    /**
     * Build an RpsEngine on @p net warm-started from the serialized
     * code cache: no quantization pass runs — every cell is imported
     * as built (columnRebuilds() == 0, and the first switch serves
     * with cacheMisses() == 0). Returns nullptr when the artifact has
     * no cache section. @p net must be the instantiate()d network (or
     * one of identical architecture); mismatches throw. The lvalue
     * overload copies the cells (the Checkpoint stays reusable); the
     * rvalue overload moves them into the engine — the multi-megabyte
     * code cache is not duplicated on the one-shot load path.
     */
    std::unique_ptr<RpsEngine> restoreEngine(Network &net) const &;
    std::unique_ptr<RpsEngine> restoreEngine(Network &net) &&;

  private:
    friend class StreamingCheckpoint;

    /** One named state blob (see StateEntry for the dtype mapping). */
    struct Blob
    {
        uint8_t dtype = 0;
        Tensor tensor;
        std::vector<float> floats;
        std::vector<char> flags;
        bool flag = false;
    };

    /** One serialized engine cache cell. */
    struct CacheCell
    {
        QuantTensor codes;
        std::vector<char> maskBytes; ///< STE mask, bit-packed
    };

    /** Parse the always-eager sections (ARCH, STAT, MOMN, TUNE) plus
     * the cache *metadata* (CBIT) from @p sr. Cell/pack payloads are
     * left untouched — the eager read() hydrates them next, the
     * streaming loader never does. */
    static Checkpoint parseEager(const io::SectionReader &sr);

    /** Shared restoreEngine body; @p consume moves the cell codes
     * out (rvalue overload) instead of copying them. */
    std::unique_ptr<RpsEngine> restoreEngineImpl(Network &net,
                                                 bool consume);

    NetworkSpec spec_;
    std::map<std::string, Blob> blobs_;
    /** Velocity tensors in Network::parameters() order (MOMN). */
    std::vector<Tensor> momentum_;
    bool hasMomentum_ = false;
    std::vector<int> cacheBits_;
    /** cells_[layer][precision index in cacheBits_]. */
    std::vector<std::vector<CacheCell>> cells_;
    /** packs_[layer][precision index], parallel to cells_; empty when
     * the artifact carries no pack section. */
    std::vector<std::vector<gemm::PackedIntWeights>> packs_;
    /** The tuning section, when present. */
    std::unique_ptr<tune::TuningArtifact> tuning_;
};

/**
 * The streaming load path: parse the directory plus the cheap
 * always-needed sections (arch spec, state blobs, optimizer state,
 * tuning) eagerly, and leave the dominant payload — the engine code
 * cells and tile packs — on disk, hydrated per (layer, precision) on
 * first touch through the RpsEngine's cell hydrator. Peak RSS of a
 * warm start drops from ~artifact size to ~model state + the cells
 * actually resident under the engine's byte budget.
 *
 * Corruption in a lazily hydrated cell is detected by its section
 * checksum at first touch; the engine then falls back to re-
 * quantizing the cell from the master weights, which is bit-identical
 * to the persisted codes — serving stays correct, the artifact just
 * loses its warm-start discount for that cell.
 */
class StreamingCheckpoint
{
  public:
    /** Open @p path: validate header + directory, hydrate the eager
     * sections (throws io::CheckpointError on malformation). */
    explicit StreamingCheckpoint(const std::string &path);

    const NetworkSpec &spec() const { return eager_.spec(); }

    /** Rebuild the network from the eagerly hydrated spec + state. */
    Network instantiate() const { return eager_.instantiate(); }

    bool hasEngineCache() const { return !cacheBits_.empty(); }
    bool hasOptimizerState() const { return eager_.hasOptimizerState(); }
    void restoreOptimizer(Sgd &opt, Network &net) const
    {
        eager_.restoreOptimizer(opt, net);
    }
    const tune::TuningArtifact *tuning() const { return eager_.tuning(); }

    /** The underlying section reader (hydration accounting:
     * bytesRead()/sectionsRead() tell how much of the artifact a
     * streaming warm start actually touched). */
    const io::SectionReader &reader() const { return *reader_; }

    /**
     * Build a DeferBuild engine on @p net whose cells hydrate lazily
     * from the artifact: each (layer, precision) cell is read,
     * checksum-verified, and imported on its first install — with
     * packs when the artifact carries them. Returns nullptr when
     * there is no cache section. Static over a shared_ptr because
     * the installed hydrator keeps @p self (and the open file) alive
     * for the engine's lifetime.
     */
    static std::unique_ptr<RpsEngine>
    restoreEngine(const std::shared_ptr<StreamingCheckpoint> &self,
                  Network &net);

  private:
    std::shared_ptr<io::SectionReader> reader_;
    /** The eager sections, parsed once (cells_/packs_ stay empty). */
    Checkpoint eager_;
    std::vector<int> cacheBits_;
    size_t cacheLayers_ = 0;
    bool hasPacks_ = false;
};

} // namespace checkpoint
} // namespace twoinone

#endif // TWOINONE_IO_CHECKPOINT_HH
