/**
 * @file
 * Versioned model artifacts: the single-file binary format that makes
 * a trained RPS model leave the process.
 *
 * A checkpoint is the unit of deployment for the paper's serving
 * story: a network trained once under random precision switch, then
 * shipped to an accelerator that serves it at randomly drawn
 * precisions. One file carries everything a fresh process needs to
 * reproduce the training process's inference bit-for-bit:
 *
 *   - the architecture spec (NetworkSpec: candidate precisions +
 *     per-layer construction specs), so the network is rebuilt from
 *     data, not C++ code;
 *   - every named state blob (master weights, SBN banks with their
 *     running statistics and trained flags, per-(ActQuant, precision)
 *     calibration range banks and the static-scale mode);
 *   - optionally the RpsEngine weight-code cache (integer codes +
 *     bit-packed STE masks per layer x candidate), so a loaded model
 *     warm-starts its engine without a single quantization pass.
 *
 * Layout (little-endian):
 *
 *   magic "2IN1CKPT" (8) | format version u32 | flags u32
 *   payload:
 *     ARCH   precisions intVec; layer count u32;
 *            per layer: kind str, args intVec
 *     STATE  entry count u32; per entry: name str, dtype u8, payload
 *            (dtype 0 = f32 tensor, 1 = f32 vec, 2 = u8 vec,
 *             3 = bool)
 *     CACHE  (flags bit 0) cached precisions intVec; layer count u32;
 *            per (layer, precision): codes (shape intVec, scale f32,
 *            bits i32, signed u8, codes i32Vec), STE mask bit-packed
 *            u8Vec
 *     PACKS  (flags bit 2; requires CACHE) per (layer, precision):
 *            m/k/bits/tiles/groups8/groups16 i32 each, p8 u8Vec,
 *            p16 i16Vec, rowSum i64Vec — the cell's tile-packed
 *            kernel weights, so a warm start skips the pack pass
 *     TUNING (flags bit 1) one tune::TuningArtifact (version u32,
 *            seed u64, serving genome, predicted cost f32)
 *   fnv1a64(header + payload) u64
 *
 * Malformed input (missing file, truncation, checksum mismatch,
 * unsupported version, incompatible spec) throws io::CheckpointError —
 * it is a recoverable caller-facing condition, not a library bug.
 */

#ifndef TWOINONE_IO_CHECKPOINT_HH
#define TWOINONE_IO_CHECKPOINT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "io/serialize.hh"
#include "nn/network.hh"
#include "quant/rps_engine.hh"
#include "tune/artifact.hh"

namespace twoinone {
namespace checkpoint {

/** Current checkpoint format version. */
constexpr uint32_t kFormatVersion = 1;

/** Save-time options. */
struct SaveOptions
{
    /** Serialize the engine's weight-code cache (when an engine is
     * passed): bigger file, zero-quantization warm start on load. */
    bool includeEngineCache = true;
    /** Also serialize each cache cell's tile-packed kernel weights
     * (requires the cache section): bigger file again, but a warm
     * start then installs ready-to-run packs — packBuilds() == 0, no
     * pack pass before the first served batch. */
    bool includeEnginePacks = false;
    /** Serving-autotuner artifact to embed as the tuning section
     * (null = none). Session::fromCheckpoint auto-applies it. */
    const tune::TuningArtifact *tuning = nullptr;
};

/**
 * Write @p net (arch spec + full state) to @p path, optionally with
 * @p engine's weight-code cache. Non-const: state collection reads
 * through live member pointers and the engine brings stale cells
 * current before export. Throws io::CheckpointError on I/O failure.
 */
void save(const std::string &path, Network &net,
          RpsEngine *engine = nullptr,
          const SaveOptions &opts = SaveOptions());

/**
 * A parsed model artifact. read() validates framing and the payload
 * checksum; instantiate()/restoreEngine() then rebuild the live
 * objects. Keeping the parsed form separate from the live objects
 * lets one read serve both the network and its engine without
 * touching the file twice.
 */
class Checkpoint
{
  public:
    /** Parse @p path (throws io::CheckpointError on any malformation:
     * missing file, truncation, bad magic, unsupported version,
     * checksum mismatch). */
    static Checkpoint read(const std::string &path);

    /** The architecture spec the artifact was saved from. */
    const NetworkSpec &spec() const { return spec_; }

    /**
     * Build a fresh Network from the spec and restore every state
     * blob into it. The result reproduces the saved model's inference
     * bit-for-bit. Throws io::CheckpointError when the artifact is
     * missing state the rebuilt network needs or shapes disagree.
     */
    Network instantiate() const;

    /** Whether the artifact carries a serialized engine cache. */
    bool hasEngineCache() const { return !cacheBits_.empty(); }

    /** Whether the cache section also carries tile packs. */
    bool hasEnginePacks() const { return !packs_.empty(); }

    /** The embedded tuning artifact, or null when the checkpoint has
     * no tuning section. */
    const tune::TuningArtifact *tuning() const { return tuning_.get(); }

    /**
     * Build an RpsEngine on @p net warm-started from the serialized
     * code cache: no quantization pass runs — every cell is imported
     * as built (columnRebuilds() == 0, and the first switch serves
     * with cacheMisses() == 0). Returns nullptr when the artifact has
     * no cache section. @p net must be the instantiate()d network (or
     * one of identical architecture); mismatches throw. The lvalue
     * overload copies the cells (the Checkpoint stays reusable); the
     * rvalue overload moves them into the engine — the multi-megabyte
     * code cache is not duplicated on the one-shot load path.
     */
    std::unique_ptr<RpsEngine> restoreEngine(Network &net) const &;
    std::unique_ptr<RpsEngine> restoreEngine(Network &net) &&;

  private:
    /** One named state blob (see StateEntry for the dtype mapping). */
    struct Blob
    {
        uint8_t dtype = 0;
        Tensor tensor;
        std::vector<float> floats;
        std::vector<char> flags;
        bool flag = false;
    };

    /** One serialized engine cache cell. */
    struct CacheCell
    {
        QuantTensor codes;
        std::vector<char> maskBytes; ///< STE mask, bit-packed
    };

    /** Shared restoreEngine body; @p consume moves the cell codes
     * out (rvalue overload) instead of copying them. */
    std::unique_ptr<RpsEngine> restoreEngineImpl(Network &net,
                                                 bool consume);

    NetworkSpec spec_;
    std::map<std::string, Blob> blobs_;
    std::vector<int> cacheBits_;
    /** cells_[layer][precision index in cacheBits_]. */
    std::vector<std::vector<CacheCell>> cells_;
    /** packs_[layer][precision index], parallel to cells_; empty when
     * the artifact carries no pack section. */
    std::vector<std::vector<gemm::PackedIntWeights>> packs_;
    /** The tuning section, when present. */
    std::unique_ptr<tune::TuningArtifact> tuning_;
};

} // namespace checkpoint
} // namespace twoinone

#endif // TWOINONE_IO_CHECKPOINT_HH
